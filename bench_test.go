// Benchmarks regenerating the paper's tables and figures as testing.B
// targets — one benchmark family per experiment (see DESIGN.md for the
// index). Each family sweeps query sizes as sub-benchmarks; custom metrics
// report the paper's counters (evaluated pairs, CCP pairs), simulated GPU
// milliseconds and normalized plan costs alongside wall-clock ns/op.
//
// Sizes are chosen so the full sweep finishes in minutes; cmd/mpdp-bench
// runs the same experiments at paper scale.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/parallel"
	"repro/internal/service"
	"repro/internal/workload"
)

const benchSeed = 1

func benchQuery(kind workload.Kind, n int) *cost.Query {
	rng := rand.New(rand.NewSource(benchSeed + int64(n)))
	q, err := workload.Generate(kind, n, rng)
	if err != nil {
		panic(err)
	}
	return q
}

// runExact benchmarks one exact optimizer on one query, reporting the
// paper's counters as custom metrics.
func runExact(b *testing.B, q *cost.Query, f dp.Func, threads int) {
	b.Helper()
	b.ReportAllocs()
	var stats dp.Stats
	for i := 0; i < b.N; i++ {
		p, st, err := f(dp.Input{Q: q, M: cost.DefaultModel(), Threads: threads})
		if err != nil {
			b.Fatal(err)
		}
		if p == nil {
			b.Fatal("nil plan")
		}
		stats = st
	}
	b.ReportMetric(float64(stats.Evaluated), "evaluated-pairs")
	b.ReportMetric(float64(stats.CCP), "ccp-pairs")
}

// --- Figure 2 / Figure 4: enumeration counters ---------------------------

func BenchmarkFig2Counters(b *testing.B) {
	q := benchQuery(workload.KindMB, 18)
	var rep dp.CounterReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = dp.Counters(dp.Input{Q: q, M: cost.DefaultModel()})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.CCP), "ccp-pairs")
	b.ReportMetric(float64(rep.MPDPEvaluated)/float64(rep.CCP), "mpdp-ratio")
	b.ReportMetric(float64(rep.DPSubEvaluated)/float64(rep.CCP), "dpsub-ratio")
	b.ReportMetric(float64(rep.DPSizeEvaluated)/float64(rep.CCP), "dpsize-ratio")
}

func BenchmarkFig4DPSubCounters(b *testing.B) {
	for _, n := range []int{10, 15, 20} {
		b.Run(fmt.Sprintf("star-%d", n), func(b *testing.B) {
			q := benchQuery(workload.KindStar, n)
			var rep dp.CounterReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = dp.Counters(dp.Input{Q: q, M: cost.DefaultModel()})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.DPSubEvaluated)/float64(rep.CCP), "evaluated-over-ccp")
		})
	}
}

// --- Figures 6-9: optimization time per topology -------------------------

// figureSuite lists the per-figure algorithm lineup with per-algorithm size
// caps (slower algorithms stop earlier, like the curves in the paper).
type benchAlg struct {
	name    string
	f       dp.Func
	threads int
	maxN    int
}

func figureAlgs() []benchAlg {
	nThreads := runtime.GOMAXPROCS(0)
	return []benchAlg{
		{"Postgres1CPU", dp.DPSize, 1, 14},
		{"DPCCP1CPU", dp.DPCCP, 1, 16},
		{"DPE", parallel.DPE, nThreads, 16},
		{"MPDPCPU", parallel.MPDP, nThreads, 18},
		{"MPDPSeq", dp.MPDP, 1, 18},
	}
}

func benchFigure(b *testing.B, kind workload.Kind, sizes []int) {
	for _, alg := range figureAlgs() {
		for _, n := range sizes {
			if n > alg.maxN {
				continue
			}
			b.Run(fmt.Sprintf("%s/n=%d", alg.name, n), func(b *testing.B) {
				q := benchQuery(kind, n)
				runExact(b, q, alg.f, alg.threads)
			})
		}
	}
	// GPU models, reporting simulated milliseconds.
	gpuAlgs := []struct {
		name string
		alg  core.Algorithm
	}{
		{"MPDPGPU", core.AlgMPDPGPU},
		{"DPSubGPU", core.AlgDPSubGPU},
		{"DPSizeGPU", core.AlgDPSizeGPU},
	}
	for _, g := range gpuAlgs {
		for _, n := range sizes {
			if n > 18 {
				continue
			}
			b.Run(fmt.Sprintf("%s/n=%d", g.name, n), func(b *testing.B) {
				q := benchQuery(kind, n)
				var sim float64
				for i := 0; i < b.N; i++ {
					res, err := core.Optimize(context.Background(), q, core.Options{Algorithm: g.alg})
					if err != nil {
						b.Fatal(err)
					}
					sim = res.GPU.SimTimeMS
				}
				b.ReportMetric(sim, "sim-ms")
			})
		}
	}
}

func BenchmarkFig6Star(b *testing.B)      { benchFigure(b, workload.KindStar, []int{10, 14, 18}) }
func BenchmarkFig7Snowflake(b *testing.B) { benchFigure(b, workload.KindSnowflake, []int{10, 14, 18}) }
func BenchmarkFig8Clique(b *testing.B)    { benchFigure(b, workload.KindClique, []int{8, 10, 12}) }
func BenchmarkFig9MusicBrainz(b *testing.B) {
	benchFigure(b, workload.KindMB, []int{10, 14, 18})
}

// --- Figure 10: execution vs optimization time ---------------------------

func BenchmarkFig10ExecOptRatio(b *testing.B) {
	for _, n := range []int{10, 14, 18} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			q := benchQuery(workload.KindMB, n)
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := core.Optimize(context.Background(), q, core.Options{Algorithm: core.AlgMPDPGPU})
				if err != nil {
					b.Fatal(err)
				}
				ratio = cost.EstimatedExecTimeMS(res.Plan.Cost) / res.GPU.SimTimeMS
			}
			b.ReportMetric(ratio, "exec-over-opt")
		})
	}
}

// --- Figure 11: JOB ------------------------------------------------------

func BenchmarkFig11JOB(b *testing.B) {
	queries := workload.JOBQueries(benchSeed)
	picks := []int{0, 12, 24, 28} // 5, 9, 11 and 17 relations
	for _, qi := range picks {
		jq := queries[qi]
		b.Run(fmt.Sprintf("%s-n%d/MPDP", jq.Name, jq.Rels), func(b *testing.B) {
			runExact(b, jq.Query, dp.MPDP, 1)
		})
		b.Run(fmt.Sprintf("%s-n%d/DPCCP", jq.Name, jq.Rels), func(b *testing.B) {
			runExact(b, jq.Query, dp.DPCCP, 1)
		})
	}
}

// --- Figure 12: CPU scalability ------------------------------------------

func BenchmarkFig12Scalability(b *testing.B) {
	q := benchQuery(workload.KindMB, 17)
	for _, threads := range []int{1, 2, 4, 8, 16} {
		if threads > runtime.GOMAXPROCS(0) {
			break
		}
		b.Run(fmt.Sprintf("MPDP/threads=%d", threads), func(b *testing.B) {
			runExact(b, q, parallel.MPDP, threads)
		})
		b.Run(fmt.Sprintf("DPE/threads=%d", threads), func(b *testing.B) {
			runExact(b, q, parallel.DPE, threads)
		})
	}
}

// --- Figure 13: AWS cost --------------------------------------------------

func BenchmarkFig13AWSCost(b *testing.B) {
	const (
		c5largeCentsPerHour = 8.5
		g4dnCentsPerHour    = 52.6
	)
	q := benchQuery(workload.KindStar, 16)
	b.Run("DPCCP-c5.large", func(b *testing.B) {
		var cents float64
		for i := 0; i < b.N; i++ {
			start := time.Now()
			_, _, err := dp.DPCCP(dp.Input{Q: q, M: cost.DefaultModel()})
			if err != nil {
				b.Fatal(err)
			}
			cents = time.Since(start).Hours() * c5largeCentsPerHour
		}
		b.ReportMetric(cents*1e6, "microcents")
	})
	b.Run("MPDP-GPU-g4dn", func(b *testing.B) {
		var cents float64
		for i := 0; i < b.N; i++ {
			cfg := gpusim.Config{Device: gpusim.TeslaT4(), FusedPrune: true, CCC: true}
			_, _, gs, err := gpusim.MPDPGPU(dp.Input{Q: q, M: cost.DefaultModel()}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			cents = gs.SimTimeMS / 3600.0 / 1000.0 * g4dnCentsPerHour
		}
		b.ReportMetric(cents*1e6, "microcents")
	})
}

// --- Tables 1 and 2: heuristic plan quality -------------------------------

func benchHeuristicTable(b *testing.B, kind workload.Kind, sizes []int) {
	suite := []struct {
		name string
		alg  core.Algorithm
		k    int
	}{
		{"GOO", core.AlgGOO, 0},
		{"IKKBZ", core.AlgIKKBZ, 0},
		{"LinDP", core.AlgLinDP, 0},
		{"GEQO", core.AlgGEQO, 0},
		{"IDP2-MPDP-15", core.AlgIDP2, 15},
		{"UnionDP-MPDP-15", core.AlgUnionDP, 15},
	}
	for _, n := range sizes {
		q := benchQuery(kind, n)
		// Reference: best plan across the suite (computed once, not timed).
		best := 0.0
		for _, s := range suite {
			res, err := core.Optimize(context.Background(), q, core.Options{Algorithm: s.alg, K: s.k, Timeout: 30 * time.Second})
			if err != nil {
				continue
			}
			if best == 0 || res.Plan.Cost < best {
				best = res.Plan.Cost
			}
		}
		for _, s := range suite {
			b.Run(fmt.Sprintf("%s/n=%d", s.name, n), func(b *testing.B) {
				var norm float64
				for i := 0; i < b.N; i++ {
					res, err := core.Optimize(context.Background(), q, core.Options{Algorithm: s.alg, K: s.k, Timeout: 30 * time.Second})
					if err != nil {
						b.Skip(err)
					}
					norm = res.Plan.Cost / best
				}
				b.ReportMetric(norm, "normalized-cost")
			})
		}
	}
}

func BenchmarkTable1Snowflake(b *testing.B) {
	benchHeuristicTable(b, workload.KindSnowflake, []int{30, 60, 100})
}

func BenchmarkTable2Star(b *testing.B) {
	benchHeuristicTable(b, workload.KindStar, []int{30, 60, 100})
}

// --- Optimizer-as-a-service: concurrent throughput ------------------------

// BenchmarkServiceThroughput measures service.Optimize under concurrent
// clients, cold (every request is a distinct 20-relation query and the
// cache is too small to help) versus warm (one repeated 20-relation query
// served from the plan cache). The warm/cold ns/op ratio is the cache's
// speedup; clients sweep 1..GOMAXPROCS.
func BenchmarkServiceThroughput(b *testing.B) {
	clientCounts := []int{1}
	for c := 2; c <= runtime.GOMAXPROCS(0); c *= 2 {
		clientCounts = append(clientCounts, c)
	}

	run := func(b *testing.B, clients int, next func(i int) *cost.Query, svc *service.Service) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		var idx atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(idx.Add(1)) - 1
					if i >= b.N {
						return
					}
					if _, err := svc.Optimize(context.Background(), next(i)); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		snap := svc.Counters().Snapshot()
		b.ReportMetric(100*snap.HitRate, "hit-%")
	}

	for _, clients := range clientCounts {
		b.Run(fmt.Sprintf("warm/clients=%d", clients), func(b *testing.B) {
			svc := service.New(service.Config{})
			defer svc.Close()
			q := benchQuery(workload.KindMB, 20)
			if _, err := svc.Optimize(context.Background(), q); err != nil { // prime the cache
				b.Fatal(err)
			}
			run(b, clients, func(int) *cost.Query { return q }, svc)
		})
		b.Run(fmt.Sprintf("cold/clients=%d", clients), func(b *testing.B) {
			// A tiny cache plus a rotating pool of distinct queries keeps
			// every request a miss.
			svc := service.New(service.Config{CacheShards: 1, CacheCapacity: 1})
			defer svc.Close()
			pool := make([]*cost.Query, 64)
			for i := range pool {
				rng := rand.New(rand.NewSource(benchSeed + int64(1000+i)))
				q, err := workload.Generate(workload.KindMB, 20, rng)
				if err != nil {
					b.Fatal(err)
				}
				pool[i] = q
			}
			run(b, clients, func(i int) *cost.Query { return pool[i%len(pool)] }, svc)
		})
	}
}

// --- §7.2.5: GPU enhancement ablation -------------------------------------

func BenchmarkAblationGPUEnhancements(b *testing.B) {
	q := benchQuery(workload.KindSnowflake, 16)
	variants := []struct {
		name string
		cfg  gpusim.Config
	}{
		{"baseline", gpusim.Config{Device: gpusim.GTX1080()}},
		{"fused-prune", gpusim.Config{Device: gpusim.GTX1080(), FusedPrune: true}},
		{"ccc", gpusim.Config{Device: gpusim.GTX1080(), CCC: true}},
		{"both", gpusim.Config{Device: gpusim.GTX1080(), FusedPrune: true, CCC: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				_, _, gs, err := gpusim.MPDPGPU(dp.Input{Q: q, M: cost.DefaultModel()}, v.cfg)
				if err != nil {
					b.Fatal(err)
				}
				sim = gs.SimTimeMS
			}
			b.ReportMetric(sim, "sim-ms")
		})
	}
}

// --- Distributed cluster: scaling and failover ----------------------------

// clusterBenchRow is one row of BENCH_cluster.json: throughput and cache
// behaviour at one cluster size (or under a mid-run node kill), so the perf
// trajectory of the cluster layer accumulates across commits.
//
// closed_loop_hit_ratio was called warm_hit_ratio before the open-loop
// harness (BENCH_load.json) existed; it is renamed so the old saturated
// closed-loop rows cannot be mistaken for the honest open-loop numbers,
// and it now counts only true cache hits — coalesced requests are
// concurrent misses sharing one optimization, not warm traffic, and the
// old accounting let them inflate the ratio to 1.0.
type clusterBenchRow struct {
	Name      string  `json:"name"`
	Nodes     int     `json:"nodes"`
	Replicas  int     `json:"replicas"`
	Clients   int     `json:"clients"`
	Requests  uint64  `json:"requests"`
	NsPerOp   float64 `json:"ns_per_op"`
	ReqPerSec float64 `json:"req_per_sec"`
	// Hits, Coalesced and Misses are this run's served-request breakdown
	// (deltas over the pre-run snapshot), reported separately so each can
	// be judged on its own.
	Hits              uint64  `json:"hits"`
	Coalesced         uint64  `json:"coalesced"`
	Misses            uint64  `json:"misses"`
	ClosedLoopHitRate float64 `json:"closed_loop_hit_ratio"`
	Failovers         uint64  `json:"failovers"`
	Deaths            uint64  `json:"deaths"`
}

// BenchmarkClusterThroughput is the legacy tier-2 closed-loop sweep:
// concurrent clients issue requests back-to-back at 1/2/4/8 nodes, and once
// more at 4 nodes with one node killed mid-run. Closed-loop numbers measure
// peak drain rate, not serving behaviour under offered load — each client
// politely waits for the previous answer, so the server can never fall
// behind (see BenchmarkClusterLoad for the open-loop harness). The stream
// mixes ~10% cold queries and ~20% isomorphic twins over the hot pool so
// the optimizer stays in the measurement. Results additionally land in
// BENCH_cluster.json next to the standard benchmark output.
func BenchmarkClusterThroughput(b *testing.B) {
	const replicas = 2
	clients := runtime.GOMAXPROCS(0)
	if clients < 2 {
		clients = 2
	}

	hot := make([]*cost.Query, 12)
	for i := range hot {
		rng := rand.New(rand.NewSource(benchSeed + int64(2000+i)))
		q, err := workload.Generate(workload.KindMB, 14, rng)
		if err != nil {
			b.Fatal(err)
		}
		hot[i] = q
	}

	// stream drives b.N requests from the client pool, killing victim (when
	// set) once the stream is halfway done. ~10% of requests are cold
	// (never-seen queries, guaranteed misses), ~20% isomorphic twins of a
	// hot query, the rest warm replays — so the ratio the run reports can
	// never be a vacuous 1.0.
	stream := func(b *testing.B, c *cluster.Cluster, victim string) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		var idx atomic.Int64
		var coldSeq atomic.Int64
		var killOnce sync.Once
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for {
					i := int(idx.Add(1)) - 1
					if i >= b.N {
						return
					}
					if victim != "" && i >= b.N/2 {
						killOnce.Do(func() { c.KillNode(victim) })
					}
					var q *cost.Query
					switch roll := rng.Intn(10); {
					case roll == 0:
						// Cold: a fresh MusicBrainz walk under a seed range
						// no other query uses.
						seed := benchSeed + 1_000_000 + coldSeq.Add(1)
						q = workload.MusicBrainzQuery(12, rand.New(rand.NewSource(seed)))
					case roll <= 2:
						// An isomorphic renaming must hit the same
						// clustered cache entry.
						base := hot[i%len(hot)]
						q = workload.PermuteQuery(base, rng.Perm(base.N()))
					default:
						q = hot[i%len(hot)]
					}
					if _, err := c.Optimize(context.Background(), q); err != nil {
						b.Errorf("request %d lost: %v", i, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		b.StopTimer()
	}

	// servedCounts sums the served-request breakdown over all nodes; the
	// benchmark diffs two sums so priming misses and earlier calibration
	// runs don't dilute the measured ratio. Coalesced requests are counted
	// on their own: they are concurrent misses riding one optimization,
	// and folding them into the warm side is how the old benchmark
	// reported 1.0 everywhere.
	servedCounts := func(c *cluster.Cluster) (hits, coalesced, misses uint64) {
		for _, ns := range c.Snapshot().PerNode {
			hits += ns.Hits
			coalesced += ns.Coalesced
			misses += ns.Misses
		}
		return hits, coalesced, misses
	}

	// The benchmark runner re-invokes each sub-benchmark while calibrating
	// b.N; keyed rows keep only the final (largest-b.N) run of each.
	rows := make(map[string]clusterBenchRow)
	var order []string
	record := func(b *testing.B, c *cluster.Cluster, name string, nodes int, preHits, preCoalesced, preMisses uint64) {
		hits, coalesced, misses := servedCounts(c)
		hits -= preHits
		coalesced -= preCoalesced
		misses -= preMisses
		hitRate := 0.0
		if served := hits + coalesced + misses; served > 0 {
			hitRate = float64(hits) / float64(served)
		}
		snap := c.Snapshot()
		b.ReportMetric(100*hitRate, "hit-%")
		nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		row := clusterBenchRow{
			Name:              name,
			Nodes:             nodes,
			Replicas:          replicas,
			Clients:           clients,
			Requests:          uint64(b.N),
			NsPerOp:           nsPerOp,
			Hits:              hits,
			Coalesced:         coalesced,
			Misses:            misses,
			ClosedLoopHitRate: hitRate,
			Failovers:         snap.Failovers,
			Deaths:            snap.Deaths,
		}
		if nsPerOp > 0 {
			row.ReqPerSec = 1e9 / nsPerOp
		}
		if _, seen := rows[name]; !seen {
			order = append(order, name)
		}
		rows[name] = row
	}

	newCluster := func(nodes int) *cluster.Cluster {
		perNode := runtime.GOMAXPROCS(0) / nodes
		if perNode < 1 {
			perNode = 1
		}
		c := cluster.New(cluster.Config{
			Nodes:    nodes,
			Replicas: replicas,
			Service:  service.Config{Workers: perNode},
		})
		for _, q := range hot { // warm every owner before the timer starts
			if _, err := c.Optimize(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
		return c
	}

	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			c := newCluster(nodes)
			defer c.Close()
			preHits, preCoalesced, preMisses := servedCounts(c)
			stream(b, c, "")
			record(b, c, fmt.Sprintf("nodes=%d", nodes), nodes, preHits, preCoalesced, preMisses)
		})
	}
	b.Run("nodekill/nodes=4", func(b *testing.B) {
		c := newCluster(4)
		defer c.Close()
		preHits, preCoalesced, preMisses := servedCounts(c)
		stream(b, c, c.AliveNodes()[0])
		record(b, c, "nodekill/nodes=4", 4, preHits, preCoalesced, preMisses)
	})

	ordered := make([]clusterBenchRow, 0, len(order))
	for _, name := range order {
		ordered = append(ordered, rows[name])
	}
	out, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_cluster.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_cluster.json (%d rows)", len(ordered))
}
