// BenchmarkCore is the tracked hot-path benchmark suite of the optimizer
// core: cold plan optimization (enumeration + costing, no service cache in
// front) swept over the paper's workload shapes, serial and parallel. Every
// run rewrites BENCH_core.json with ns/op, allocs/op and B/op per row so the
// core perf trajectory accumulates across commits, exactly like
// BENCH_cluster.json does for the cluster layer.
//
// BENCH_budget.json (committed) holds hard allocs/op ceilings for selected
// rows; the benchmark fails when a ceiling is exceeded, which is what the CI
// bench-core smoke step relies on to catch allocation regressions.
package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// coreBenchRow is one row of BENCH_core.json.
type coreBenchRow struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	N           int     `json:"n"`
	Algo        string  `json:"algo"`
	Threads     int     `json:"threads"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Evaluated   uint64  `json:"evaluated_pairs"`
	CCP         uint64  `json:"ccp_pairs"`
}

// coreBudget is the shape of BENCH_budget.json: row name -> ceiling.
type coreBudget struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// coreSweep lists the benchmarked (shape, size) grid. Clique stops at 15
// relations (Theta(3^n) enumeration); the other shapes run the full
// 10..20 sweep the issue tracks.
func coreSweep() []struct {
	kind  workload.Kind
	sizes []int
} {
	return []struct {
		kind  workload.Kind
		sizes []int
	}{
		{workload.KindChain, []int{10, 15, 20}},
		{workload.KindStar, []int{10, 15, 20}},
		{workload.KindClique, []int{10, 12, 15}},
		{workload.KindMB, []int{10, 15, 20}},
	}
}

func BenchmarkCore(b *testing.B) {
	type algo struct {
		name    string
		f       dp.Func
		threads int
	}
	algs := []algo{
		{"mpdp-seq", dp.MPDPGeneral, 1},
		{"dpccp-seq", dp.DPCCP, 1},
		{"mpdp-par", parallel.MPDP, 0},
	}

	// The bench runner re-invokes sub-benchmarks (an N=1 shakedown plus
	// the timed run, and calibration reruns under a duration-based
	// -benchtime); keyed rows keep the largest-b.N run of each.
	rows := make(map[string]coreBenchRow)
	var order []string

	for _, sw := range coreSweep() {
		for _, n := range sw.sizes {
			q := benchQuery(sw.kind, n)
			m := cost.DefaultModel()
			for _, alg := range algs {
				name := fmt.Sprintf("%s/n=%d/%s", sw.kind, n, alg.name)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					in := dp.Input{Q: q, M: m, Threads: alg.threads}
					// Warm one run outside the measured window so
					// one-time costs (lazy graph adjacency, runtime
					// growth) don't pollute the steady-state numbers.
					if _, _, err := alg.f(in); err != nil {
						b.Fatal(err)
					}
					var stats dp.Stats
					runtime.GC()
					var m0, m1 runtime.MemStats
					runtime.ReadMemStats(&m0)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						p, st, err := alg.f(in)
						if err != nil {
							b.Fatal(err)
						}
						if p == nil {
							b.Fatal("nil plan")
						}
						stats = st
					}
					b.StopTimer()
					runtime.ReadMemStats(&m1)
					nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
					allocs := float64(m1.Mallocs-m0.Mallocs) / float64(b.N)
					bytes := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(b.N)
					b.ReportMetric(allocs, "allocs/op-measured")
					prev, seen := rows[name]
					if !seen {
						order = append(order, name)
					}
					if seen && prev.Iters > b.N {
						return
					}
					rows[name] = coreBenchRow{
						Name:        name,
						Kind:        string(sw.kind),
						N:           n,
						Algo:        alg.name,
						Threads:     alg.threads,
						Iters:       b.N,
						NsPerOp:     nsPerOp,
						AllocsPerOp: allocs,
						BytesPerOp:  bytes,
						Evaluated:   stats.Evaluated,
						CCP:         stats.CCP,
					}
				})
			}
		}
	}

	ordered := make([]coreBenchRow, 0, len(order))
	for _, name := range order {
		ordered = append(ordered, rows[name])
	}
	out, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_core.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_core.json (%d rows)", len(ordered))

	// Enforce the committed allocation budget: any row named in
	// BENCH_budget.json must stay at or under its allocs/op ceiling.
	raw, err := os.ReadFile("BENCH_budget.json")
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		b.Fatal(err)
	}
	var budget map[string]coreBudget
	if err := json.Unmarshal(raw, &budget); err != nil {
		b.Fatalf("BENCH_budget.json: %v", err)
	}
	for name, limit := range budget {
		row, ok := rows[name]
		if !ok {
			// A -bench filter can exclude budget rows; only the rows that
			// actually ran are enforced (CI runs the full sweep).
			b.Logf("budget row %q not in this run", name)
			continue
		}
		if row.AllocsPerOp > limit.AllocsPerOp {
			b.Errorf("allocation budget exceeded: %s allocs/op = %.0f > budget %.0f",
				name, row.AllocsPerOp, limit.AllocsPerOp)
		}
	}
}
