// BenchmarkCore is the tracked hot-path benchmark suite of the optimizer
// core: cold plan optimization (enumeration + costing, no service cache in
// front) swept over the paper's workload shapes, serial and parallel. Every
// run rewrites BENCH_core.json with ns/op, allocs/op and B/op per row so the
// core perf trajectory accumulates across commits, exactly like
// BENCH_cluster.json does for the cluster layer.
//
// BENCH_budget.json (committed) holds hard ceilings for selected rows:
// allocs/op as an absolute ceiling, and ns/op as a regression *ratio*
// against a committed baseline (ns_per_op_baseline × ns_per_op_max_ratio).
// The benchmark fails when either gate trips, which is what the CI
// bench-core smoke step relies on to catch allocation and latency
// regressions. Ratios are generous (CI machines are noisy); they catch
// order-of-magnitude regressions, not percent-level drift — the nightly
// job's artifact trail is for the fine trend.
package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/workload"
)

// coreBenchRow is one row of BENCH_core.json.
type coreBenchRow struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	N           int     `json:"n"`
	Algo        string  `json:"algo"`
	Threads     int     `json:"threads"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Evaluated   uint64  `json:"evaluated_pairs"`
	CCP         uint64  `json:"ccp_pairs"`
	// GPUSimMS is the modeled device time of the mpdp-gpu rows (real
	// wall time is NsPerOp, as for every row).
	GPUSimMS float64 `json:"gpu_sim_ms,omitempty"`
}

// coreBudget is the shape of BENCH_budget.json: row name -> gates.
type coreBudget struct {
	// AllocsPerOp is the absolute allocs/op ceiling (0 disables the gate).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// NsPerOpBaseline is the committed reference latency; when non-zero,
	// the row fails if measured ns/op exceeds baseline × max_ratio.
	NsPerOpBaseline float64 `json:"ns_per_op_baseline,omitempty"`
	// NsPerOpMaxRatio is the allowed regression factor (0: 4).
	NsPerOpMaxRatio float64 `json:"ns_per_op_max_ratio,omitempty"`
}

// coreSweep lists the benchmarked (shape, size) grid. Clique stops at 15
// relations (Theta(3^n) enumeration) and cycles at 20 for the CPU
// enumerators (the full-cycle block costs 2^(n-1) real candidate visits);
// gpuSizes extends each shape into the GPU backend's band, where costing
// is output-sensitive and the lockstep volume is modeled (cycle/40 is the
// tracked headline row — the size the pre-backend router could only serve
// heuristically).
func coreSweep() []struct {
	kind     workload.Kind
	sizes    []int
	gpuSizes []int
} {
	return []struct {
		kind     workload.Kind
		sizes    []int
		gpuSizes []int
	}{
		{workload.KindChain, []int{10, 15, 20}, []int{20}},
		{workload.KindStar, []int{10, 15, 20}, []int{18}},
		{workload.KindClique, []int{10, 12, 15}, []int{15}},
		{workload.KindMB, []int{10, 15, 20}, []int{20}},
		{workload.KindCycle, []int{10, 15, 20}, []int{20, 40}},
	}
}

// benchGPUDevices is the simulated device count of the mpdp-gpu rows.
const benchGPUDevices = 2

// gpuBenchFunc adapts the multi-device GPU scheduler to the benchmark's
// dp.Func shape, capturing the last run's device model.
func gpuBenchFunc(simMS *float64) dp.Func {
	cfg := gpusim.DefaultConfig()
	cfg.Devices = benchGPUDevices
	return func(in dp.Input) (*plan.Node, dp.Stats, error) {
		p, st, gs, err := gpusim.MPDPGPUMulti(in, cfg)
		*simMS = gs.SimTimeMS
		return p, st, err
	}
}

func BenchmarkCore(b *testing.B) {
	type algo struct {
		name    string
		f       dp.Func
		threads int
		simMS   *float64 // non-nil for GPU rows
	}
	algs := []algo{
		{"mpdp-seq", dp.MPDPGeneral, 1, nil},
		{"dpccp-seq", dp.DPCCP, 1, nil},
		{"mpdp-par", parallel.MPDP, 0, nil},
	}
	var gpuSimMS float64
	gpuAlg := algo{"mpdp-gpu", gpuBenchFunc(&gpuSimMS), benchGPUDevices, &gpuSimMS}

	// The bench runner re-invokes sub-benchmarks (an N=1 shakedown plus
	// the timed run, and calibration reruns under a duration-based
	// -benchtime); keyed rows keep the largest-b.N run of each.
	rows := make(map[string]coreBenchRow)
	var order []string

	runRow := func(kind workload.Kind, n int, alg algo) {
		q := benchQuery(kind, n)
		m := cost.DefaultModel()
		name := fmt.Sprintf("%s/n=%d/%s", kind, n, alg.name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			in := dp.Input{Q: q, M: m, Threads: alg.threads}
			// Warm one run outside the measured window so one-time costs
			// (lazy graph adjacency, runtime growth) don't pollute the
			// steady-state numbers.
			if _, _, err := alg.f(in); err != nil {
				b.Fatal(err)
			}
			var stats dp.Stats
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, st, err := alg.f(in)
				if err != nil {
					b.Fatal(err)
				}
				if p == nil {
					b.Fatal("nil plan")
				}
				stats = st
			}
			b.StopTimer()
			runtime.ReadMemStats(&m1)
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			allocs := float64(m1.Mallocs-m0.Mallocs) / float64(b.N)
			bytes := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(b.N)
			b.ReportMetric(allocs, "allocs/op-measured")
			prev, seen := rows[name]
			if !seen {
				order = append(order, name)
			}
			if seen && prev.Iters > b.N {
				return
			}
			row := coreBenchRow{
				Name:        name,
				Kind:        string(kind),
				N:           n,
				Algo:        alg.name,
				Threads:     alg.threads,
				Iters:       b.N,
				NsPerOp:     nsPerOp,
				AllocsPerOp: allocs,
				BytesPerOp:  bytes,
				Evaluated:   stats.Evaluated,
				CCP:         stats.CCP,
			}
			if alg.simMS != nil {
				row.GPUSimMS = *alg.simMS
			}
			rows[name] = row
		})
	}

	for _, sw := range coreSweep() {
		for _, n := range sw.sizes {
			for _, alg := range algs {
				runRow(sw.kind, n, alg)
			}
		}
		for _, n := range sw.gpuSizes {
			runRow(sw.kind, n, gpuAlg)
		}
	}

	ordered := make([]coreBenchRow, 0, len(order))
	for _, name := range order {
		ordered = append(ordered, rows[name])
	}
	out, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_core.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_core.json (%d rows)", len(ordered))

	// Enforce the committed allocation budget: any row named in
	// BENCH_budget.json must stay at or under its allocs/op ceiling.
	raw, err := os.ReadFile("BENCH_budget.json")
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		b.Fatal(err)
	}
	var budget map[string]coreBudget
	if err := json.Unmarshal(raw, &budget); err != nil {
		b.Fatalf("BENCH_budget.json: %v", err)
	}
	for name, limit := range budget {
		row, ok := rows[name]
		if !ok {
			// A -bench filter can exclude budget rows; only the rows that
			// actually ran are enforced (CI runs the full sweep).
			b.Logf("budget row %q not in this run", name)
			continue
		}
		if limit.AllocsPerOp > 0 && row.AllocsPerOp > limit.AllocsPerOp {
			b.Errorf("allocation budget exceeded: %s allocs/op = %.0f > budget %.0f",
				name, row.AllocsPerOp, limit.AllocsPerOp)
		}
		if limit.NsPerOpBaseline > 0 {
			maxRatio := limit.NsPerOpMaxRatio
			if maxRatio == 0 {
				maxRatio = 4
			}
			if ratio := row.NsPerOp / limit.NsPerOpBaseline; ratio > maxRatio {
				b.Errorf("latency budget exceeded: %s ns/op = %.3g is %.1fx the committed baseline %.3g (max ratio %.1f)",
					name, row.NsPerOp, ratio, limit.NsPerOpBaseline, maxRatio)
			}
		}
	}
}
