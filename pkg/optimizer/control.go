package optimizer

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/httpapi"
	"repro/internal/service"
)

// This file is the SDK side of the servers' cache & catalog control
// surface (/v1/cache, /v1/catalog/stats). The Served driver answers from
// its in-process service; the Remote driver calls the wire API. InProcess
// has no cache, so it implements none of this — assert to CacheController
// to discover support at runtime.

// CacheEntryInfo describes one cached plan.
type CacheEntryInfo struct {
	// Fingerprint is the canonical cache identity (see Result.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	Shape       string `json:"shape"`
	Algorithm   string `json:"algorithm"`
	Backend     string `json:"backend"`
	Relations   int    `json:"relations"`
	// Hits counts exact-fingerprint cache hits served from the entry.
	Hits uint64 `json:"hits"`
	// Epoch is the catalog stats epoch the plan was costed under.
	Epoch uint64 `json:"epoch"`
	// SubEntries counts the subgraph-memo entries harvested from the plan.
	SubEntries int  `json:"sub_entries"`
	FellBack   bool `json:"fell_back"`
}

// CacheInfo summarizes a driver's plan cache: whole-plan and subplan
// counts, the current stats epoch, and the hottest entries. A Remote
// driver pointed at a cluster receives the ring-wide aggregate.
type CacheInfo struct {
	Plans       int              `json:"plans"`
	Capacity    int              `json:"capacity"`
	Shards      int              `json:"shards"`
	SubPlans    int              `json:"sub_plans"`
	SubCapacity int              `json:"sub_capacity"`
	StatsEpoch  uint64           `json:"stats_epoch"`
	Entries     []CacheEntryInfo `json:"entries"`
}

// InvalidateResult reports one targeted invalidation.
type InvalidateResult struct {
	Fingerprint string
	// Found reports whether any cache held the plan.
	Found bool
	// SubEntriesDropped counts the subgraph-memo entries dropped with it.
	SubEntriesDropped int
}

// StatsUpdate carries one relation's new statistics to UpdateStats.
type StatsUpdate struct {
	// Name is the schema relation to update (created if absent).
	Name string
	// Stats are the new statistics; zero optional fields keep previous
	// values server-side.
	Stats RelStats
	// Distinct updates per-column distinct counts (SQL-binding
	// selectivities); nil leaves them unchanged.
	Distinct map[string]float64
}

// CacheController is the cache & catalog control surface of the serving
// drivers. Served and Remote implement it; InProcess does not (it has no
// cache). Obtain it with a type assertion:
//
//	if cc, ok := opt.(optimizer.CacheController); ok { ... }
type CacheController interface {
	// CacheInfo summarizes the plan cache, listing the topN hottest
	// entries (0 lists none).
	CacheInfo(ctx context.Context, topN int) (*CacheInfo, error)
	// Invalidate drops the plan cached under the canonical fingerprint,
	// plus every subplan harvested from it.
	Invalidate(ctx context.Context, fingerprint string) (*InvalidateResult, error)
	// FlushCache drops every cached plan and subplan. Prefer UpdateStats
	// when the trigger is a statistics change: stale plans are then
	// re-costed lazily instead of discarded.
	FlushCache(ctx context.Context) error
	// UpdateStats installs updated relation statistics (Remote pushes them
	// into the server's SQL schema; Served keeps statistics caller-side in
	// its queries, so updates only signal the change) and bumps the
	// server's catalog stats epoch, returning the epoch before and after.
	// Plans cached under the old epoch are lazily re-costed on their next
	// probe.
	UpdateStats(ctx context.Context, updates []StatsUpdate) (oldEpoch, newEpoch uint64, err error)
}

// ErrStaleEpoch is returned when WithStatsEpoch asserted an epoch the
// server has moved past: statistics changed between the caller's read and
// its optimize.
var ErrStaleEpoch = errors.New("optimizer: server stats epoch moved past the asserted one")

// Both serving drivers implement the control surface.
var (
	_ CacheController = (*served)(nil)
	_ CacheController = (*remote)(nil)
)

func cacheInfoFromService(info service.CacheInfo) *CacheInfo {
	out := &CacheInfo{
		Plans:       info.Plans,
		Capacity:    info.Capacity,
		Shards:      info.Shards,
		SubPlans:    info.SubPlans,
		SubCapacity: info.SubCapacity,
		StatsEpoch:  info.StatsEpoch,
		Entries:     make([]CacheEntryInfo, len(info.Entries)),
	}
	for i, e := range info.Entries {
		out.Entries[i] = CacheEntryInfo{
			Fingerprint: e.Key,
			Shape:       e.Shape,
			Algorithm:   e.Algorithm,
			Backend:     e.Backend,
			Relations:   e.Relations,
			Hits:        e.Hits,
			Epoch:       e.Epoch,
			SubEntries:  e.SubEntries,
			FellBack:    e.FellBack,
		}
	}
	return out
}

// --- Served driver ---

// CacheInfo implements CacheController on the in-process service.
func (s *served) CacheInfo(_ context.Context, topN int) (*CacheInfo, error) {
	return cacheInfoFromService(s.svc.CacheInfo(topN)), nil
}

// Invalidate implements CacheController on the in-process service.
func (s *served) Invalidate(_ context.Context, fingerprint string) (*InvalidateResult, error) {
	found, subs := s.svc.Invalidate(fingerprint)
	return &InvalidateResult{Fingerprint: fingerprint, Found: found, SubEntriesDropped: subs}, nil
}

// FlushCache implements CacheController on the in-process service.
func (s *served) FlushCache(context.Context) error {
	s.svc.Flush()
	return nil
}

// UpdateStats implements CacheController. The Served driver's statistics
// live in the caller's queries (there is no server-side SQL schema), so
// the update payload itself has nothing to install — the call's effect is
// the epoch bump that tells the cache its cached costs are stale.
func (s *served) UpdateStats(_ context.Context, _ []StatsUpdate) (uint64, uint64, error) {
	old, cur := s.svc.BumpStatsEpoch()
	return old, cur, nil
}

// --- Remote driver ---

// controlRequest performs one control-plane call against the endpoints in
// order, returning the first endpoint's successful answer; unlike the
// optimize path it does not hedge — control calls are rare and cheap.
func (r *remote) controlRequest(ctx context.Context, method, path string, body []byte, out any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var errs []error
	for i := range r.endpoints {
		ep := r.endpoints[i]
		err := r.controlCall(ctx, ep, method, path, body, out)
		if err == nil {
			return nil
		}
		var re *RemoteError
		if errors.As(err, &re) && re.terminal() {
			return err
		}
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func (r *remote) controlCall(ctx context.Context, endpoint, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, endpoint+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("optimizer: %s: %w", endpoint, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("optimizer: %s: reading response: %w", endpoint, err)
	}
	if resp.StatusCode != http.StatusOK {
		re := &RemoteError{Status: resp.StatusCode, Endpoint: endpoint}
		var env httpapi.Error
		if json.Unmarshal(raw, &env) == nil && env.Code != "" {
			re.Code, re.Message, re.Detail = env.Code, env.Message, env.Detail
		} else {
			re.Code, re.Message = "http_error", string(raw)
		}
		return re
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("optimizer: %s: decoding response: %w", endpoint, err)
	}
	return nil
}

// CacheInfo implements CacheController over GET /v1/cache.
func (r *remote) CacheInfo(ctx context.Context, topN int) (*CacheInfo, error) {
	var out CacheInfo
	path := fmt.Sprintf("/v1/cache?top=%d", topN)
	if err := r.controlRequest(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Invalidate implements CacheController over DELETE /v1/cache/{fp}. A 404
// (no cache holds the fingerprint) is not an error: Found is false.
func (r *remote) Invalidate(ctx context.Context, fingerprint string) (*InvalidateResult, error) {
	var out httpapi.InvalidateResponse
	path := "/v1/cache/" + url.PathEscape(fingerprint)
	err := r.controlRequest(ctx, http.MethodDelete, path, nil, &out)
	if err != nil {
		var re *RemoteError
		if errors.As(err, &re) && re.Code == httpapi.CodeNotFound {
			return &InvalidateResult{Fingerprint: fingerprint}, nil
		}
		return nil, err
	}
	return &InvalidateResult{
		Fingerprint:       fingerprint,
		Found:             true,
		SubEntriesDropped: out.SubEntriesDropped,
	}, nil
}

// FlushCache implements CacheController over POST /v1/cache/flush.
func (r *remote) FlushCache(ctx context.Context) error {
	return r.controlRequest(ctx, http.MethodPost, "/v1/cache/flush", []byte("{}"), nil)
}

// UpdateStats implements CacheController over POST /v1/catalog/stats.
func (r *remote) UpdateStats(ctx context.Context, updates []StatsUpdate) (uint64, uint64, error) {
	req := httpapi.CatalogStatsRequest{Relations: make([]httpapi.CatalogRelStats, len(updates))}
	for i, u := range updates {
		rs := httpapi.CatalogRelStats{
			Name:     u.Name,
			Rows:     u.Stats.Rows,
			Width:    u.Stats.Width,
			Pages:    u.Stats.Pages,
			Distinct: u.Distinct,
		}
		if u.Stats.PKIndex {
			pk := true
			rs.PKIndex = &pk
		}
		req.Relations[i] = rs
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return 0, 0, err
	}
	var out httpapi.CatalogStatsResponse
	if err := r.controlRequest(ctx, http.MethodPost, "/v1/catalog/stats", body, &out); err != nil {
		return 0, 0, err
	}
	return out.OldEpoch, out.NewEpoch, nil
}
