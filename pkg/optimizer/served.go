package optimizer

import (
	"context"
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/service"
)

// ServedConfig tunes the in-process service behind the Served driver. The
// zero value selects the service defaults (see internal/service.Config).
type ServedConfig struct {
	// Workers is the optimization worker-pool size (0: GOMAXPROCS).
	Workers int
	// CacheCapacity is the total number of cached plans (0: 4096).
	CacheCapacity int
	// CacheShards is the plan-cache shard count (0: 16).
	CacheShards int
	// Timeout is the per-query budget before the heuristic fallback
	// (0: 30s).
	Timeout time.Duration
	// Threads is the CPU parallelism per optimization (0: all cores).
	Threads int
	// K is the sub-problem bound for IDP2/UnionDP (0: 15).
	K int
	// GPUDevices is the simulated GPU device count (0: 2).
	GPUDevices int
	// ExactLimit, when non-zero, overrides the CPU-parallel crossover
	// (mainly for tests that need to force long exact runs).
	ExactLimit int
}

// served wraps a service.Service.
type served struct {
	svc *service.Service
}

// Served starts an in-process optimizer service and returns it as an
// Optimizer: requests gain the canonical-fingerprint plan cache, request
// coalescing, the adaptive (algorithm, backend) router and the GPU
// batcher. Algorithm choice is the router's; WithAlgorithm is rejected
// with ErrServerRouted. Close shuts the worker pool down.
func Served(cfg ServedConfig) Optimizer {
	return &served{svc: service.New(service.Config{
		Workers:       cfg.Workers,
		CacheCapacity: cfg.CacheCapacity,
		CacheShards:   cfg.CacheShards,
		Timeout:       cfg.Timeout,
		Threads:       cfg.Threads,
		K:             cfg.K,
		ExactLimit:    cfg.ExactLimit,
		GPU:           backend.GPUConfig{Devices: cfg.GPUDevices},
	})}
}

func (s *served) Close() error {
	s.svc.Close()
	return nil
}

func (s *served) Optimize(ctx context.Context, q *Query, opts ...Option) (*Result, error) {
	o := applyOptions(opts)
	if o.algorithm != "" {
		return nil, ErrServerRouted
	}
	if o.epoch != 0 {
		if cur := s.svc.StatsEpoch(); cur != o.epoch {
			return nil, fmt.Errorf("%w (server %d, asserted %d)", ErrStaleEpoch, cur, o.epoch)
		}
	}
	var tr *obs.Trace
	if o.trace {
		if ctx == nil {
			ctx = context.Background()
		}
		tr = obs.NewTrace("")
		ctx = obs.WithTrace(ctx, tr)
	}
	res, err := s.svc.Optimize(ctx, q.q)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Cost:        res.Plan.Cost,
		Rows:        res.Plan.Rows,
		Algorithm:   Algorithm(res.Algorithm),
		Backend:     string(res.Backend),
		Shape:       string(res.Shape),
		Fingerprint: res.Key,
		CacheHit:    res.CacheHit,
		Coalesced:   res.Coalesced,
		FellBack:    res.FellBack,
		Elapsed:     res.Elapsed,
		Evaluated:   res.Stats.Evaluated,
		CCPPairs:    res.Stats.CCP,
		StatsEpoch:  res.Epoch,
	}
	if !res.CacheHit && !res.Coalesced && res.Stats.WarmSeeded > 0 {
		out.WarmStartSeeded = res.Stats.WarmSeeded
		interior := res.Stats.ConnectedSets - uint64(q.q.N())
		if total := res.Stats.WarmSeeded + interior; total > 0 {
			out.WarmStartFraction = float64(res.Stats.WarmSeeded) / float64(total)
		}
	}
	if res.GPU != nil {
		out.GPUDevices = res.GPU.Devices
		out.GPUSimMS = res.GPU.SimTimeMS
	}
	if o.explain {
		out.Explain = core.Explain(q.q, res.Plan)
	}
	if tr != nil {
		out.Trace = traceSpans(tr.Spans())
		out.TraceWallUS = tr.WallUS()
	}
	return out, nil
}

// Stats exposes the underlying service counters snapshot for
// observability (hit rate, per-backend routing, cancellations).
func (s *served) Stats() service.Snapshot { return s.svc.Counters().Snapshot() }
