// Package optimizer is the public SDK of the MPDP join-order optimizer: a
// stable, embeddable surface over the repository's internal enumeration,
// serving and cluster layers.
//
// The entry point is the Optimizer interface — a single context-first
// Optimize call — with three drivers:
//
//   - InProcess runs the algorithms directly in the caller's process
//     (wrapping internal/core): no cache, full per-call algorithm control.
//   - Served runs a concurrent optimizer service in-process (wrapping
//     internal/service): canonical-fingerprint plan cache, request
//     coalescing, adaptive (algorithm, backend) routing.
//   - Remote talks to one or more mpdp-serve / mpdp-cluster servers over
//     the versioned /v1 HTTP API, hedging across endpoints.
//
// Queries are built with NewQueryBuilder (or a shared Catalog), compiled
// from SQL with CompileSQL, or generated with the workload constructors.
// Cancelling the context passed to Optimize aborts the in-flight
// enumeration promptly on every driver, including across the wire.
//
// See API.md for the wire specification and a quickstart.
package optimizer

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Algorithm names one of the registered join-order optimizers.
type Algorithm string

// The algorithm registry. The constants mirror the internal registry; the
// wire API and the SDK accept exactly these names.
const (
	// Exact, sequential.
	AlgDPSize Algorithm = "dpsize" // PostgreSQL's standard DP
	AlgDPSub  Algorithm = "dpsub"
	AlgDPCCP  Algorithm = "dpccp"
	AlgMPDP   Algorithm = "mpdp"
	// Exact, CPU-parallel.
	AlgPDP          Algorithm = "pdp"
	AlgDPE          Algorithm = "dpe"
	AlgMPDPParallel Algorithm = "mpdp-cpu"
	// Exact, GPU execution model.
	AlgDPSizeGPU Algorithm = "dpsize-gpu"
	AlgDPSubGPU  Algorithm = "dpsub-gpu"
	AlgMPDPGPU   Algorithm = "mpdp-gpu"
	// Heuristics.
	AlgGEQO    Algorithm = "geqo"
	AlgGOO     Algorithm = "goo"
	AlgMinSel  Algorithm = "minsel"
	AlgIKKBZ   Algorithm = "ikkbz"
	AlgLinDP   Algorithm = "lindp"
	AlgIDP1    Algorithm = "idp1"
	AlgIDP2    Algorithm = "idp2-mpdp"
	AlgUnionDP Algorithm = "uniondp-mpdp"
	// AlgAuto picks the paper's recommended policy for the query size.
	AlgAuto Algorithm = "auto"
)

// Algorithms lists every registered optimizer name.
func Algorithms() []Algorithm {
	out := make([]Algorithm, 0, len(core.Algorithms()))
	for _, a := range core.Algorithms() {
		out = append(out, Algorithm(a))
	}
	return out
}

// IsExact reports whether the algorithm guarantees the optimal plan.
func (a Algorithm) IsExact() bool { return core.Algorithm(a).IsExact() }

// Valid reports whether a names a registered algorithm.
func (a Algorithm) Valid() bool {
	for _, b := range core.Algorithms() {
		if core.Algorithm(a) == b {
			return true
		}
	}
	return false
}

// Result is the outcome of one optimization, uniform across the three
// drivers. Cost and Fingerprint are always set; the enumeration counters
// (Evaluated, CCPPairs) are reported by the local drivers only.
type Result struct {
	// Cost and Rows of the chosen plan under the paper's cost model.
	Cost float64
	Rows float64
	// Algorithm that produced the plan and the execution Backend it ran on
	// (cpu-seq, cpu-parallel, gpu, heuristic; empty for InProcess runs of
	// explicitly chosen algorithms).
	Algorithm Algorithm
	Backend   string
	// Shape is the detected join-graph shape (chain, star, clique, tree,
	// general; empty for InProcess).
	Shape string
	// Fingerprint is the canonical join-graph fingerprint: the cache
	// identity shared by isomorphic queries with identical statistics.
	Fingerprint string
	// CacheHit/Coalesced/FellBack report the serving layers' behaviour.
	CacheHit  bool
	Coalesced bool
	FellBack  bool
	// Elapsed is the end-to-end latency observed by the driver.
	Elapsed time.Duration
	// Explain is the rendered plan tree, when requested with WithExplain.
	Explain string
	// Evaluated and CCPPairs are the paper's two enumeration counters
	// (local drivers only).
	Evaluated uint64
	CCPPairs  uint64
	// GPUDevices/GPUSimMS carry the simulated device work model when the
	// GPU backend produced the plan.
	GPUDevices int
	GPUSimMS   float64
	// WarmStartSeeded counts the connected subsets seeded from the serving
	// layer's subgraph memo before enumeration, and WarmStartFraction the
	// share of the walked connected-set lattice those seeds covered; both
	// are zero on cache hits and cold runs. StatsEpoch is the catalog
	// stats epoch the plan was produced under (serving drivers only).
	WarmStartSeeded   uint64
	WarmStartFraction float64
	StatsEpoch        uint64
	// Node and Failover are set when a Remote driver talked to a cluster.
	Node     string
	Failover bool
	// Trace is the request's phase breakdown, recorded when WithTrace was
	// passed (Served and Remote drivers; see OBSERVABILITY.md for the span
	// taxonomy). TraceWallUS is the wall time the trace covers.
	Trace       []TraceSpan
	TraceWallUS float64
}

// TraceSpan is one phase of a traced request: where the time went between
// the request entering the serving layer and its plan coming back. Spans
// with Sim set report modeled GPU time, not wall time.
type TraceSpan struct {
	// Phase names the pipeline stage (compile, cache_probe, queue_wait,
	// coalesce_wait, route, enumerate, materialize, replicate, gpu_*).
	Phase string `json:"phase"`
	// StartUS is the span's start relative to the trace's origin;
	// DurUS its duration. Both in microseconds.
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	// Sim marks modeled (simulated-GPU) time that did not occupy the
	// request's critical path wall-clock.
	Sim bool `json:"sim,omitempty"`
}

// traceSpans converts the internal span slice into the SDK's stable shape.
func traceSpans(spans []obs.Span) []TraceSpan {
	if len(spans) == 0 {
		return nil
	}
	out := make([]TraceSpan, len(spans))
	for i, s := range spans {
		out[i] = TraceSpan{Phase: s.Phase, StartUS: s.StartUS, DurUS: s.DurUS, Sim: s.Sim}
	}
	return out
}

// Optimizer is the single public optimization interface.
type Optimizer interface {
	// Optimize plans q. Cancelling ctx aborts the in-flight enumeration
	// promptly with the context's error. A nil ctx means
	// context.Background().
	Optimize(ctx context.Context, q *Query, opts ...Option) (*Result, error)
	// Close releases the driver's resources. Results remain valid.
	Close() error
}

// ErrServerRouted is returned when WithAlgorithm is passed to a driver
// whose algorithm choice is server-side (Served, Remote): the adaptive
// router picks the algorithm and backend per query shape.
var ErrServerRouted = errors.New("optimizer: algorithm selection is server-side for this driver; drop WithAlgorithm or use InProcess")

// callOptions collects the per-call options.
type callOptions struct {
	algorithm Algorithm
	timeout   time.Duration
	threads   int
	k         int
	seed      int64
	explain   bool
	gpuDev    int
	trace     bool
	epoch     uint64
}

// Option configures one Optimize call.
type Option func(*callOptions)

// WithAlgorithm selects the algorithm explicitly (InProcess driver only;
// the serving drivers route server-side and reject it).
func WithAlgorithm(a Algorithm) Option { return func(o *callOptions) { o.algorithm = a } }

// WithTimeout bounds the optimization's wall-clock budget, independently
// of the context's deadline. On the Served driver the service budget
// applies instead; on Remote the timeout is enforced through the context.
func WithTimeout(d time.Duration) Option { return func(o *callOptions) { o.timeout = d } }

// WithThreads sets the CPU parallelism for the parallel algorithms (0:
// all cores).
func WithThreads(n int) Option { return func(o *callOptions) { o.threads = n } }

// WithK bounds the sub-problem size of IDP2/UnionDP (0: 15).
func WithK(k int) Option { return func(o *callOptions) { o.k = k } }

// WithSeed seeds the randomized heuristics.
func WithSeed(s int64) Option { return func(o *callOptions) { o.seed = s } }

// WithExplain asks for the rendered plan tree in Result.Explain.
func WithExplain() Option { return func(o *callOptions) { o.explain = true } }

// WithGPUDevices sets the simulated device count for the *-gpu algorithms
// (InProcess driver only; 0 keeps the default).
func WithGPUDevices(n int) Option { return func(o *callOptions) { o.gpuDev = n } }

// WithStatsEpoch asserts the catalog stats epoch the caller planned
// against (as returned by CacheInfo or UpdateStats; epochs start at 1).
// The serving drivers reject the optimization with ErrStaleEpoch when the
// server's epoch has moved — statistics changed under the caller — which
// makes read-then-optimize sequences deterministic in tests. InProcess has
// no epoch and ignores it.
func WithStatsEpoch(epoch uint64) Option { return func(o *callOptions) { o.epoch = epoch } }

// WithTrace asks the serving drivers for the request's phase breakdown in
// Result.Trace: Served records it in-process, Remote forwards ?trace=1 so
// the server ships its spans back. InProcess has no serving pipeline and
// ignores it.
func WithTrace() Option { return func(o *callOptions) { o.trace = true } }

func applyOptions(opts []Option) callOptions {
	var o callOptions
	for _, f := range opts {
		f(&o)
	}
	return o
}
