package optimizer

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/httpapi"
)

// RemoteConfig tunes the HTTP client driver.
type RemoteConfig struct {
	// Endpoints are the base URLs of mpdp-serve or mpdp-cluster servers
	// (e.g. "http://10.0.0.1:8080"). At least one is required.
	Endpoints []string
	// HedgeDelay is how long to wait for the current endpoint before
	// launching a hedged attempt on the next one (0: 2s; negative
	// disables hedging — endpoints are then only tried on failure).
	HedgeDelay time.Duration
	// HTTPClient overrides the transport (nil: http.DefaultClient).
	HTTPClient *http.Client
}

// remote is the HTTP driver: it ships queries over the versioned /v1 wire
// API with per-node hedging — if the first endpoint has not answered
// within HedgeDelay, the same request is raced on the next endpoint and
// the first response wins, which rides out slow or dead nodes without
// waiting for a full timeout.
type remote struct {
	endpoints []string
	hedge     time.Duration
	client    *http.Client
	next      atomic.Uint64
}

// Remote returns the HTTP client driver for the given servers.
func Remote(cfg RemoteConfig) (Optimizer, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("optimizer: Remote requires at least one endpoint")
	}
	eps := make([]string, len(cfg.Endpoints))
	for i, e := range cfg.Endpoints {
		if e == "" {
			return nil, fmt.Errorf("optimizer: empty endpoint at index %d", i)
		}
		eps[i] = strings.TrimRight(e, "/")
	}
	hedge := cfg.HedgeDelay
	if hedge == 0 {
		hedge = 2 * time.Second
	}
	client := cfg.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	return &remote{endpoints: eps, hedge: hedge, client: client}, nil
}

func (r *remote) Close() error {
	r.client.CloseIdleConnections()
	return nil
}

// RemoteError is a structured error envelope returned by a server.
type RemoteError struct {
	Status   int
	Code     string
	Message  string
	Detail   string
	Endpoint string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("optimizer: %s answered %d %s: %s", e.Endpoint, e.Status, e.Code, e.Message)
}

// terminal reports whether retrying another endpoint is pointless: the
// servers are deterministic, so a request-level rejection (bad SQL,
// oversize, disconnected graph) will repeat everywhere.
func (e *RemoteError) terminal() bool {
	switch e.Status {
	case http.StatusBadRequest, http.StatusMethodNotAllowed,
		http.StatusRequestEntityTooLarge, http.StatusUnprocessableEntity,
		http.StatusNotFound, http.StatusConflict:
		return true
	}
	return false
}

func (r *remote) Optimize(ctx context.Context, q *Query, opts ...Option) (*Result, error) {
	o := applyOptions(opts)
	if o.algorithm != "" {
		return nil, ErrServerRouted
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	body, err := json.Marshal(httpapi.FromQuery(q.q))
	if err != nil {
		return nil, err
	}
	path := "/v1/optimize"
	if o.explain {
		path = "/v1/explain"
	}
	params := url.Values{}
	if o.trace {
		params.Set("trace", "1")
	}
	if o.epoch != 0 {
		params.Set("epoch", strconv.FormatUint(o.epoch, 10))
	}
	if len(params) > 0 {
		path += "?" + params.Encode()
	}

	start := time.Now()
	resp, err := r.hedged(ctx, path, body)
	if err != nil {
		var re *RemoteError
		if errors.As(err, &re) && re.Code == httpapi.CodeStaleEpoch {
			return nil, fmt.Errorf("%w (%s)", ErrStaleEpoch, re.Message)
		}
		return nil, err
	}
	out := &Result{
		Cost:              resp.Cost,
		Rows:              resp.Rows,
		Algorithm:         Algorithm(resp.Algorithm),
		Backend:           resp.Backend,
		Shape:             resp.Shape,
		Fingerprint:       resp.Fingerprint,
		CacheHit:          resp.CacheHit,
		Coalesced:         resp.Coalesced,
		FellBack:          resp.FellBack,
		Elapsed:           time.Since(start),
		Explain:           resp.Plan,
		GPUDevices:        resp.GPUDevices,
		GPUSimMS:          resp.GPUSimMS,
		Node:              resp.Node,
		Failover:          resp.Failover,
		WarmStartSeeded:   resp.WarmStartSeeded,
		WarmStartFraction: resp.WarmStartFraction,
		StatsEpoch:        resp.StatsEpoch,
		Trace:             traceSpans(resp.Trace),
		TraceWallUS:       resp.TraceWallUS,
	}
	return out, nil
}

// outcome is one endpoint attempt's result.
type outcome struct {
	resp *httpapi.Response
	err  error
}

// hedged races the request across endpoints: attempt i starts when
// attempt i-1 has neither answered nor failed within the hedge delay (or
// immediately when it failed). The first success cancels the rest.
func (r *remote) hedged(ctx context.Context, path string, body []byte) (*httpapi.Response, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(r.endpoints)
	results := make(chan outcome, n)
	// Rotate the starting endpoint per request to spread load.
	first := int(r.next.Add(1)-1) % n

	launch := func(i int) {
		ep := r.endpoints[(first+i)%n]
		go func() { results <- r.call(hctx, ep, path, body) }()
	}
	launch(0)
	launched, pending := 1, 1

	var timer *time.Timer
	var hedgeC <-chan time.Time
	if r.hedge > 0 && n > 1 {
		timer = time.NewTimer(r.hedge)
		defer timer.Stop()
		hedgeC = timer.C
	}

	var errs []error
	for {
		select {
		case out := <-results:
			if out.err == nil {
				return out.resp, nil
			}
			pending--
			errs = append(errs, out.err)
			var re *RemoteError
			if errors.As(out.err, &re) && re.terminal() {
				return nil, out.err
			}
			if launched < n {
				launch(launched)
				launched++
				pending++
			} else if pending == 0 {
				return nil, errors.Join(errs...)
			}
		case <-hedgeC:
			if launched < n {
				launch(launched)
				launched++
				pending++
				timer.Reset(r.hedge)
			}
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
}

// call performs one POST against one endpoint.
func (r *remote) call(ctx context.Context, endpoint, path string, body []byte) outcome {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint+path, bytes.NewReader(body))
	if err != nil {
		return outcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return outcome{err: fmt.Errorf("optimizer: %s: %w", endpoint, err)}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return outcome{err: fmt.Errorf("optimizer: %s: reading response: %w", endpoint, err)}
	}
	if resp.StatusCode != http.StatusOK {
		re := &RemoteError{Status: resp.StatusCode, Endpoint: endpoint}
		var env httpapi.Error
		if json.Unmarshal(raw, &env) == nil && env.Code != "" {
			re.Code, re.Message, re.Detail = env.Code, env.Message, env.Detail
		} else {
			re.Code, re.Message = "http_error", strings.TrimSpace(string(raw))
		}
		return outcome{err: re}
	}
	var wire httpapi.Response
	if err := json.Unmarshal(raw, &wire); err != nil {
		return outcome{err: fmt.Errorf("optimizer: %s: decoding response: %w", endpoint, err)}
	}
	return outcome{resp: &wire}
}
