package optimizer

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/sql"
)

// Query is one join-order optimization problem: relations with statistics
// plus a join graph whose edges carry predicate selectivities. Build one
// with NewQueryBuilder, Catalog.Query, CompileSQL or the workload
// constructors; a Query is immutable and safe to share across goroutines
// and drivers.
type Query struct {
	q *cost.Query
}

// Relations returns the number of relations.
func (q *Query) Relations() int { return q.q.N() }

// Joins returns the number of join predicates (graph edges).
func (q *Query) Joins() int { return len(q.q.G.Edges) }

// Names returns the relation names, indexed by relation id.
func (q *Query) Names() []string { return q.q.Names() }

// Rel is an opaque handle to a relation added to a builder or catalog.
type Rel int

// RelStats describes one relation's optimizer-visible statistics.
type RelStats struct {
	// Rows is the estimated tuple count after local selections.
	Rows float64
	// Width is the average tuple width in bytes (0: 100). Pages are
	// derived from Rows and Width unless set explicitly.
	Width int
	// Pages overrides the derived heap page count when non-zero.
	Pages float64
	// PKIndex marks a usable primary-key index, enabling the
	// index-nested-loop path of the cost model.
	PKIndex bool
}

func (s RelStats) toRelation(name string) catalog.Relation {
	width := s.Width
	if width == 0 {
		width = 100
	}
	rel := catalog.NewRelation(name, s.Rows, width)
	rel.HasPKIndex = s.PKIndex
	if s.Pages > 0 {
		rel.Pages = s.Pages
	}
	if s.Width == 0 {
		rel.Width = width
	}
	return rel
}

// Catalog is a reusable collection of relation statistics: add relations
// once, then derive any number of queries joining subsets of them.
type Catalog struct {
	cat catalog.Catalog
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{} }

// Relation registers a relation and returns its handle.
func (c *Catalog) Relation(name string, stats RelStats) Rel {
	return Rel(c.cat.Add(stats.toRelation(name)))
}

// Len returns the number of registered relations.
func (c *Catalog) Len() int { return c.cat.Len() }

// UpdateStats replaces a relation's statistics in place. Queries already
// built keep the statistics they were built with (builders copy relations
// out of the catalog); only queries built afterwards see the update —
// which is exactly the staleness boundary the servers' stats epoch tracks.
// Pair it with CacheController.UpdateStats to tell a serving driver the
// statistics moved.
func (c *Catalog) UpdateStats(r Rel, stats RelStats) error {
	if int(r) < 0 || int(r) >= c.cat.Len() {
		return fmt.Errorf("optimizer: unknown relation handle %d", r)
	}
	name := c.cat.Rel(int(r)).Name
	c.cat.Rels[r] = stats.toRelation(name)
	return nil
}

// Query starts a builder joining relations of this catalog. Only the
// relations actually referenced by AddRelation appear in the query, in
// call order.
func (c *Catalog) Query() *QueryBuilder {
	return &QueryBuilder{from: c, indexOf: make(map[Rel]int)}
}

// QueryBuilder assembles a Query: relations first, then the join
// predicates between them. The zero value is not usable; construct with
// NewQueryBuilder or Catalog.Query.
type QueryBuilder struct {
	from    *Catalog // nil for standalone builders
	indexOf map[Rel]int
	cat     catalog.Catalog
	edges   []graph.Edge
	err     error
}

// NewQueryBuilder starts a standalone builder with its own implicit
// catalog.
func NewQueryBuilder() *QueryBuilder {
	return &QueryBuilder{indexOf: make(map[Rel]int)}
}

// Relation adds a relation with its statistics and returns its handle
// (standalone builders only).
func (b *QueryBuilder) Relation(name string, stats RelStats) Rel {
	if b.from != nil {
		b.fail(fmt.Errorf("optimizer: Relation on a catalog-backed builder; use AddRelation"))
		return -1
	}
	id := Rel(b.cat.Add(stats.toRelation(name)))
	b.indexOf[id] = int(id)
	return id
}

// AddRelation brings a catalog relation into the query (catalog-backed
// builders only). Adding the same relation twice is an error.
func (b *QueryBuilder) AddRelation(r Rel) *QueryBuilder {
	if b.from == nil {
		b.fail(fmt.Errorf("optimizer: AddRelation on a standalone builder; use Relation"))
		return b
	}
	if int(r) < 0 || int(r) >= b.from.cat.Len() {
		b.fail(fmt.Errorf("optimizer: unknown relation handle %d", r))
		return b
	}
	if _, dup := b.indexOf[r]; dup {
		b.fail(fmt.Errorf("optimizer: relation %q added twice", b.from.cat.Rel(int(r)).Name))
		return b
	}
	b.indexOf[r] = b.cat.Add(b.from.cat.Rel(int(r)))
	return b
}

// Join adds a join predicate between two previously added relations with
// the given selectivity in (0, 1].
func (b *QueryBuilder) Join(x, y Rel, sel float64) *QueryBuilder {
	ix, okx := b.indexOf[x]
	iy, oky := b.indexOf[y]
	switch {
	case !okx || !oky:
		b.fail(fmt.Errorf("optimizer: join references a relation not in the query"))
	case ix == iy:
		b.fail(fmt.Errorf("optimizer: self-join on one relation handle"))
	case sel <= 0 || sel > 1:
		b.fail(fmt.Errorf("optimizer: join selectivity %g outside (0, 1]", sel))
	default:
		b.edges = append(b.edges, graph.Edge{A: ix, B: iy, Sel: sel})
	}
	return b
}

func (b *QueryBuilder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates and freezes the query. The join graph must be connected
// (the optimizers consider no cross products).
func (b *QueryBuilder) Build() (*Query, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := b.cat.Len()
	if n == 0 {
		return nil, fmt.Errorf("optimizer: query has no relations")
	}
	g := graph.New(n)
	for _, e := range b.edges {
		g.AddEdge(e.A, e.B, e.Sel)
	}
	return &Query{q: &cost.Query{Cat: b.cat, G: g}}, nil
}

// CompileSQL parses and binds one SQL statement in the internal dialect
// against the built-in MusicBrainz schema — the same path the servers use
// for text requests.
func CompileSQL(statement string) (*Query, error) {
	bound, err := sql.Compile(statement, sql.MusicBrainzSchema())
	if err != nil {
		return nil, err
	}
	return &Query{q: bound.Query}, nil
}
