package optimizer

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/service"
)

// newRemoteOverService spins an httptest server over a fresh service and
// returns a Remote driver pointed at it.
func newRemoteOverService(t *testing.T) Optimizer {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(httpapi.New(httpapi.ServiceEngine(svc), httpapi.Options{}).Mux())
	t.Cleanup(ts.Close)
	r, err := Remote(RemoteConfig{Endpoints: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func newRemoteOverCluster(t *testing.T) Optimizer {
	t.Helper()
	// A generous attempt timeout: under -race a cold 20-relation optimize
	// can outlive the default 2s budget, and the reclassified timeout then
	// cascades — the failure detector quarantines healthy nodes and the
	// round-trip comes back 503. The test exercises correctness, not
	// latency SLOs.
	c := cluster.New(cluster.Config{
		Nodes:    2,
		Replicas: 2,
		Service:  service.Config{Workers: 2},
		Retry:    cluster.RetryPolicy{AttemptTimeout: 2 * time.Minute},
	})
	t.Cleanup(c.Close)
	ts := httptest.NewServer(httpapi.New(httpapi.ClusterEngine(c), httpapi.Options{}).Mux())
	t.Cleanup(ts.Close)
	r, err := Remote(RemoteConfig{Endpoints: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestThreeDriverRoundTrip is the PR's acceptance criterion: one
// 20-relation MusicBrainz query through InProcess, Served and Remote (the
// latter against both server kinds) produces cost-identical plans and the
// same canonical fingerprint everywhere.
func TestThreeDriverRoundTrip(t *testing.T) {
	q := MusicBrainz(20, 3)
	if q.Relations() != 20 {
		t.Fatalf("workload produced %d relations, want 20", q.Relations())
	}

	inproc := InProcess()
	servedDrv := Served(ServedConfig{Workers: 2})
	t.Cleanup(func() { servedDrv.Close() })
	remoteSvc := newRemoteOverService(t)
	remoteClu := newRemoteOverCluster(t)

	type run struct {
		name string
		drv  Optimizer
	}
	runs := []run{
		{"inprocess", inproc},
		{"served", servedDrv},
		{"remote-serve", remoteSvc},
		{"remote-cluster", remoteClu},
	}
	results := make([]*Result, len(runs))
	for i, r := range runs {
		res, err := r.drv.Optimize(context.Background(), q, WithTimeout(2*time.Minute))
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if res.Cost <= 0 {
			t.Fatalf("%s: non-positive cost %g", r.name, res.Cost)
		}
		if res.Fingerprint == "" {
			t.Errorf("%s: no fingerprint", r.name)
		}
		results[i] = res
	}
	base := results[0]
	for i, res := range results[1:] {
		if res.Cost != base.Cost {
			t.Errorf("%s cost %g != inprocess cost %g", runs[i+1].name, res.Cost, base.Cost)
		}
		if res.Fingerprint != base.Fingerprint {
			t.Errorf("%s fingerprint %q != inprocess %q", runs[i+1].name, res.Fingerprint, base.Fingerprint)
		}
	}
	if results[3].Node == "" {
		t.Errorf("remote-cluster result has no serving node")
	}
}

// TestBuilderQueryOptimizesAcrossDrivers: a hand-built query (typed
// builders, no SQL) survives the wire encoding with an identical plan
// cost.
func TestBuilderQueryOptimizesAcrossDrivers(t *testing.T) {
	b := NewQueryBuilder()
	fact := b.Relation("fact", RelStats{Rows: 1e6, Width: 64})
	d1 := b.Relation("dim_a", RelStats{Rows: 1e4, Width: 32, PKIndex: true})
	d2 := b.Relation("dim_b", RelStats{Rows: 5e3, Width: 32, PKIndex: true})
	d3 := b.Relation("dim_c", RelStats{Rows: 100, Width: 16})
	b.Join(fact, d1, 1.0/1e4).Join(fact, d2, 1.0/5e3).Join(d2, d3, 1.0/100)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if q.Relations() != 4 || q.Joins() != 3 {
		t.Fatalf("built %d relations / %d joins, want 4/3", q.Relations(), q.Joins())
	}

	local, err := InProcess().Optimize(context.Background(), q, WithAlgorithm(AlgMPDP))
	if err != nil {
		t.Fatal(err)
	}
	remote := newRemoteOverService(t)
	wire, err := remote.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if wire.Cost != local.Cost {
		t.Errorf("wire cost %g != local cost %g", wire.Cost, local.Cost)
	}
	if wire.Fingerprint != local.Fingerprint {
		t.Errorf("wire fingerprint %q != local %q", wire.Fingerprint, local.Fingerprint)
	}
}

// TestCatalogReuse: two queries drawn from one catalog share statistics.
func TestCatalogReuse(t *testing.T) {
	cat := NewCatalog()
	a := cat.Relation("a", RelStats{Rows: 1000})
	bb := cat.Relation("b", RelStats{Rows: 2000})
	c := cat.Relation("c", RelStats{Rows: 3000})

	q1, err := cat.Query().AddRelation(a).AddRelation(bb).Join(a, bb, 0.001).Build()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := cat.Query().AddRelation(bb).AddRelation(c).Join(bb, c, 0.001).Build()
	if err != nil {
		t.Fatal(err)
	}
	if q1.Relations() != 2 || q2.Relations() != 2 {
		t.Fatalf("catalog queries sized %d/%d, want 2/2", q1.Relations(), q2.Relations())
	}
	for _, q := range []*Query{q1, q2} {
		if _, err := InProcess().Optimize(context.Background(), q); err != nil {
			t.Errorf("catalog query failed: %v", err)
		}
	}
}

// TestBuilderValidation: the builder surfaces the first construction error
// at Build.
func TestBuilderValidation(t *testing.T) {
	b := NewQueryBuilder()
	x := b.Relation("x", RelStats{Rows: 10})
	y := b.Relation("y", RelStats{Rows: 10})
	b.Join(x, y, 2.0) // invalid selectivity
	if _, err := b.Build(); err == nil {
		t.Error("selectivity > 1 accepted")
	}
	if _, err := NewQueryBuilder().Build(); err == nil {
		t.Error("empty query accepted")
	}
	b2 := NewQueryBuilder()
	p := b2.Relation("p", RelStats{Rows: 10})
	b2.Join(p, Rel(99), 0.5)
	if _, err := b2.Build(); err == nil {
		t.Error("join to unknown relation accepted")
	}
}

// TestServerRoutedRejectsAlgorithm: the serving drivers refuse per-call
// algorithm selection instead of silently ignoring it.
func TestServerRoutedRejectsAlgorithm(t *testing.T) {
	s := Served(ServedConfig{Workers: 1})
	defer s.Close()
	if _, err := s.Optimize(context.Background(), Chain(5, 1), WithAlgorithm(AlgMPDP)); !errors.Is(err, ErrServerRouted) {
		t.Errorf("Served with WithAlgorithm = %v, want ErrServerRouted", err)
	}
	r := newRemoteOverService(t)
	if _, err := r.Optimize(context.Background(), Chain(5, 1), WithAlgorithm(AlgMPDP)); !errors.Is(err, ErrServerRouted) {
		t.Errorf("Remote with WithAlgorithm = %v, want ErrServerRouted", err)
	}
	if _, err := InProcess().Optimize(context.Background(), Chain(5, 1), WithAlgorithm("bogus")); err == nil {
		t.Error("InProcess accepted unknown algorithm")
	}
}

// TestCancelInFlightExactOptimization is the acceptance criterion at SDK
// level: cancelling the context of an in-flight exact optimization returns
// promptly — well under the remaining enumeration time — on both local
// drivers.
func TestCancelInFlightExactOptimization(t *testing.T) {
	q := Cycle(40, 7)

	t.Run("inprocess", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(200 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		// Force the sequential exact route: a 40-cycle's final DP level
		// enumerates 2^40 subsets of the full-cycle block.
		_, err := InProcess().Optimize(ctx, q, WithAlgorithm(AlgMPDP))
		elapsed := time.Since(start)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed > 15*time.Second {
			t.Fatalf("cancellation took %v, want prompt abort", elapsed)
		}
	})

	t.Run("served", func(t *testing.T) {
		s := Served(ServedConfig{Workers: 1, ExactLimit: 64, Timeout: time.Hour})
		defer s.Close()
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(200 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := s.Optimize(ctx, q)
		elapsed := time.Since(start)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed > 15*time.Second {
			t.Fatalf("cancellation took %v, want prompt abort", elapsed)
		}
		// The single worker must be free again: a small query completes.
		if _, err := s.Optimize(context.Background(), Chain(5, 1)); err != nil {
			t.Fatalf("worker wedged after cancellation: %v", err)
		}
	})
}

// TestExplainAcrossDrivers: WithExplain renders the plan everywhere.
func TestExplainAcrossDrivers(t *testing.T) {
	q := Chain(6, 2)
	for _, tc := range []struct {
		name string
		drv  Optimizer
	}{
		{"inprocess", InProcess()},
		{"remote", newRemoteOverService(t)},
	} {
		res, err := tc.drv.Optimize(context.Background(), q, WithExplain())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Explain == "" {
			t.Errorf("%s: no explain output", tc.name)
		}
	}
}
