package optimizer

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
)

// slowThenFastServers returns two endpoints over one shared service: the
// first delays every response, the second answers immediately.
func slowThenFastServers(t *testing.T, delay time.Duration) (slow, fast string, slowHits, fastHits *atomic.Int64) {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	t.Cleanup(svc.Close)
	mux := httpapi.New(httpapi.ServiceEngine(svc), httpapi.Options{}).Mux()

	slowHits, fastHits = new(atomic.Int64), new(atomic.Int64)
	slowTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slowHits.Add(1)
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(slowTS.Close)
	fastTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fastHits.Add(1)
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(fastTS.Close)
	return slowTS.URL, fastTS.URL, slowHits, fastHits
}

// TestRemoteHedgesPastSlowNode: with a short hedge delay, a slow first
// endpoint is raced by the second and the fast answer wins long before the
// slow node responds.
func TestRemoteHedgesPastSlowNode(t *testing.T) {
	slow, fast, slowHits, fastHits := slowThenFastServers(t, 20*time.Second)
	r, err := Remote(RemoteConfig{
		Endpoints:  []string{slow, fast},
		HedgeDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	start := time.Now()
	res, err := r.Optimize(context.Background(), Chain(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hedged request took %v; the slow node was waited on", elapsed)
	}
	if res.Cost <= 0 {
		t.Fatal("no result")
	}
	// Note: the request counter rotation means either endpoint may be hit
	// first; over two calls both must have been contacted at least once
	// and the overall latency stays bounded by the hedge delay.
	if _, err := r.Optimize(context.Background(), Chain(7, 1)); err != nil {
		t.Fatal(err)
	}
	if slowHits.Load() == 0 || fastHits.Load() == 0 {
		t.Errorf("hedging never contacted both endpoints: slow=%d fast=%d", slowHits.Load(), fastHits.Load())
	}
}

// TestRemoteFailsOverDeadNode: a refused connection on the first endpoint
// triggers an immediate attempt on the next, well before the hedge delay.
func TestRemoteFailsOverDeadNode(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	t.Cleanup(svc.Close)
	live := httptest.NewServer(httpapi.New(httpapi.ServiceEngine(svc), httpapi.Options{}).Mux())
	t.Cleanup(live.Close)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from now on

	r, err := Remote(RemoteConfig{
		Endpoints:  []string{deadURL, live.URL},
		HedgeDelay: time.Hour, // failure-driven failover must not wait for it
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Run enough requests that the rotation starts on the dead node too.
	for i := 0; i < 4; i++ {
		start := time.Now()
		res, err := r.Optimize(context.Background(), Chain(5+i, 1))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if res.Cost <= 0 {
			t.Fatalf("request %d: empty result", i)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Fatalf("request %d took %v despite failure-driven failover", i, elapsed)
		}
	}
}

// TestRemoteTerminalErrorDoesNotRetry: a deterministic rejection (bad SQL
// → 422) is returned immediately instead of being retried on every node.
func TestRemoteTerminalErrorDoesNotRetry(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	t.Cleanup(svc.Close)
	var hits atomic.Int64
	mux := httpapi.New(httpapi.ServiceEngine(svc), httpapi.Options{}).Mux()
	counted := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(counted.Close)

	r, err := Remote(RemoteConfig{Endpoints: []string{counted.URL, counted.URL}, HedgeDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// A disconnected graph is rejected deterministically with 422.
	b := NewQueryBuilder()
	b.Relation("a", RelStats{Rows: 10})
	b.Relation("b", RelStats{Rows: 10})
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Optimize(context.Background(), q)
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want 422 RemoteError", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("terminal error hit the servers %d times, want 1", got)
	}
}

// TestRemoteAllNodesDown: every endpoint failing yields a joined error,
// not a hang.
func TestRemoteAllNodesDown(t *testing.T) {
	dead1 := httptest.NewServer(http.NotFoundHandler())
	u1 := dead1.URL
	dead1.Close()
	dead2 := httptest.NewServer(http.NotFoundHandler())
	u2 := dead2.URL
	dead2.Close()

	r, err := Remote(RemoteConfig{Endpoints: []string{u1, u2}, HedgeDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := r.Optimize(ctx, Chain(4, 1)); err == nil {
		t.Fatal("all-nodes-down request succeeded")
	}
}

// TestRemoteContextCancellation: cancelling the caller context unblocks
// the driver even while all endpoints hang.
func TestRemoteContextCancellation(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server arms its client-disconnect watcher,
		// then hang until the client goes away.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(hang.Close)
	r, err := Remote(RemoteConfig{Endpoints: []string{hang.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = r.Optimize(ctx, Chain(4, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancellation did not unblock the driver promptly")
	}
}
