package optimizer

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/service"
)

// inProcess runs the algorithms directly in the caller's process.
type inProcess struct{}

// InProcess returns the library driver: every Optimize call runs the
// selected algorithm (default AlgAuto) synchronously in this process, with
// no cache and no routing. It is the driver with full per-call control:
// WithAlgorithm, WithThreads, WithGPUDevices and friends all apply.
func InProcess() Optimizer { return inProcess{} }

func (inProcess) Close() error { return nil }

func (inProcess) Optimize(ctx context.Context, q *Query, opts ...Option) (*Result, error) {
	o := applyOptions(opts)
	if o.algorithm != "" && !o.algorithm.Valid() {
		return nil, invalidAlgorithmError(o.algorithm)
	}
	copts := core.Options{
		Algorithm: core.Algorithm(o.algorithm),
		Timeout:   o.timeout,
		Threads:   o.threads,
		K:         o.k,
		Seed:      o.seed,
	}
	if o.gpuDev > 0 {
		cfg := gpusim.DefaultConfig()
		cfg.Devices = o.gpuDev
		copts.GPU = &cfg
	}
	start := time.Now()
	res, err := core.Optimize(ctx, q.q, copts)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Cost:        res.Plan.Cost,
		Rows:        res.Plan.Rows,
		Algorithm:   o.algorithm,
		Fingerprint: service.FingerprintQuery(q.q).Key,
		Shape:       string(service.DetectShape(q.q.G)),
		Elapsed:     time.Since(start),
		Evaluated:   res.Stats.Evaluated,
		CCPPairs:    res.Stats.CCP,
	}
	if out.Algorithm == "" {
		out.Algorithm = AlgAuto
	}
	if res.GPU != nil {
		out.GPUDevices = 1 // core's *-gpu algorithms model a single device
		if o.gpuDev > 0 {
			out.GPUDevices = o.gpuDev
		}
		out.GPUSimMS = res.GPU.SimTimeMS
	}
	if o.explain {
		out.Explain = core.Explain(q.q, res.Plan)
	}
	return out, nil
}

func invalidAlgorithmError(a Algorithm) error {
	return &UnknownAlgorithmError{Algorithm: a}
}

// UnknownAlgorithmError reports an algorithm name outside the registry.
type UnknownAlgorithmError struct{ Algorithm Algorithm }

func (e *UnknownAlgorithmError) Error() string {
	return "optimizer: unknown algorithm \"" + string(e.Algorithm) + "\""
}
