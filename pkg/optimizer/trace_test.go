package optimizer

import (
	"context"
	"testing"
)

func checkTrace(t *testing.T, driver string, res *Result, wantEnumerate bool) {
	t.Helper()
	if len(res.Trace) == 0 {
		t.Fatalf("%s: WithTrace returned no spans", driver)
	}
	if res.TraceWallUS <= 0 {
		t.Fatalf("%s: TraceWallUS = %g", driver, res.TraceWallUS)
	}
	var sum float64
	sawEnumerate := false
	for _, s := range res.Trace {
		if s.DurUS < 0 {
			t.Errorf("%s: span %s duration %g", driver, s.Phase, s.DurUS)
		}
		if s.Phase == "enumerate" {
			sawEnumerate = true
		}
		if !s.Sim {
			sum += s.DurUS
		}
	}
	if sawEnumerate != wantEnumerate {
		t.Errorf("%s: enumerate span present = %v, want %v (spans %+v)",
			driver, sawEnumerate, wantEnumerate, res.Trace)
	}
	// Wall spans partition the request's critical path; they can never
	// exceed the wall time they decompose (sim spans are modeled GPU time
	// and excluded). Small scheduling slack for span-end rounding.
	if sum > res.TraceWallUS*1.05 {
		t.Errorf("%s: non-sim span sum %.1fus exceeds wall %.1fus", driver, sum, res.TraceWallUS)
	}
}

// TestWithTraceAcrossServingDrivers: WithTrace must surface the same phase
// breakdown from the in-process Served driver and over the wire via
// Remote's ?trace=1 forwarding, and stay absent when not requested.
func TestWithTraceAcrossServingDrivers(t *testing.T) {
	ctx := context.Background()

	s := Served(ServedConfig{Workers: 2})
	defer s.Close()
	q := MusicBrainz(14, 5)
	res, err := s.Optimize(ctx, q, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	checkTrace(t, "served", res, true)
	hit, err := s.Optimize(ctx, q, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("served: repeat query missed the cache")
	}
	checkTrace(t, "served-hit", hit, false)
	plain, err := s.Optimize(ctx, MusicBrainz(10, 6))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil || plain.TraceWallUS != 0 {
		t.Errorf("served: trace present without WithTrace: %+v", plain.Trace)
	}

	r := newRemoteOverService(t)
	rq := MusicBrainz(14, 7)
	rres, err := r.Optimize(ctx, rq, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	checkTrace(t, "remote", rres, true)
	sawCompile := false
	for _, sp := range rres.Trace {
		if sp.Phase == "compile" {
			sawCompile = true
		}
	}
	if !sawCompile {
		t.Errorf("remote: server-side compile span missing: %+v", rres.Trace)
	}
	rplain, err := r.Optimize(ctx, MusicBrainz(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	if rplain.Trace != nil {
		t.Errorf("remote: trace present without WithTrace: %+v", rplain.Trace)
	}

	c := newRemoteOverCluster(t)
	cres, err := c.Optimize(ctx, MusicBrainz(14, 9), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	checkTrace(t, "remote-cluster", cres, true)
	if cres.Node == "" {
		t.Error("remote-cluster: no serving node reported")
	}
}
