package optimizer

import (
	"math/rand"

	"repro/internal/workload"
)

// The workload constructors generate the synthetic query families of the
// paper's evaluation (§7.2) plus random walks over the MusicBrainz schema,
// deterministically per seed. They are the quickest way to drive the SDK
// without hand-building catalogs.

// Star returns an n-relation star join (one fact table, n-1 dimensions).
func Star(n int, seed int64) *Query {
	return &Query{q: workload.Star(n, rand.New(rand.NewSource(seed)))}
}

// Snowflake returns an n-relation snowflake (a two-level star of stars).
func Snowflake(n int, seed int64) *Query {
	return &Query{q: workload.Snowflake(n, rand.New(rand.NewSource(seed)))}
}

// Chain returns an n-relation chain join.
func Chain(n int, seed int64) *Query {
	return &Query{q: workload.Chain(n, rand.New(rand.NewSource(seed)))}
}

// Cycle returns an n-relation cycle (the smallest cyclic shape).
func Cycle(n int, seed int64) *Query {
	return &Query{q: workload.Cycle(n, rand.New(rand.NewSource(seed)))}
}

// Clique returns an n-relation clique (every pair joined).
func Clique(n int, seed int64) *Query {
	return &Query{q: workload.Clique(n, rand.New(rand.NewSource(seed)))}
}

// MusicBrainz returns an n-relation random walk over the MusicBrainz
// schema's foreign keys — the paper's real-world workload.
func MusicBrainz(n int, seed int64) *Query {
	return &Query{q: workload.MusicBrainzQuery(n, rand.New(rand.NewSource(seed)))}
}

// Permuted returns the same join problem with its relations relabelled
// through a seed-derived random permutation — the query another client
// would send for the identical problem. The serving drivers' canonical
// fingerprint maps both to one cache entry, which this method exists to
// demonstrate and test.
func (q *Query) Permuted(seed int64) *Query {
	rng := rand.New(rand.NewSource(seed))
	return &Query{q: workload.PermuteQuery(q.q, rng.Perm(q.q.N()))}
}
