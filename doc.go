// Package repro is a from-scratch Go reproduction of "Efficient Massively
// Parallel Join Optimization for Large Queries" (SIGMOD 2022): the MPDP
// join-order algorithm, every baseline it is evaluated against, the IDP2 and
// UnionDP heuristics built on top of it, a SIMT GPU execution model standing
// in for the paper's CUDA implementation, and a benchmark harness that
// regenerates every table and figure of the evaluation section.
//
// Start with internal/core for the public optimizer API, cmd/mpdp-bench for
// the experiment driver, and DESIGN.md for the system inventory.
package repro
