// Package repro is a from-scratch Go reproduction of "Efficient Massively
// Parallel Join Optimization for Large Queries" (SIGMOD 2022): the MPDP
// join-order algorithm, every baseline it is evaluated against, the IDP2 and
// UnionDP heuristics built on top of it, a SIMT GPU execution model standing
// in for the paper's CUDA implementation, and a benchmark harness that
// regenerates every table and figure of the evaluation section. On top of
// the library sits an optimizer-as-a-service front-end (internal/service,
// cmd/mpdp-serve): a sharded fingerprint-keyed plan cache plus adaptive
// routing across heterogeneous execution backends (internal/backend) —
// sequential CPU, parallel CPU, a multi-device simulated GPU that serves
// large trees and cyclic graphs exactly, and the heuristics beyond the
// exact bands — turning the reproduction into something that serves
// query streams rather than only measuring them. The service scales out in
// turn through internal/cluster and cmd/mpdp-cluster: a consistent-hash
// ring of service nodes with replication, failure detection and cache-aware
// rebalancing, so isomorphic queries from any entry point share one warm
// plan cache and a node loss costs no requests.
//
// The public, embeddable entry point is pkg/optimizer: typed Query/Catalog
// builders, the algorithm registry, and one context-first interface —
// Optimize(ctx, q, opts...) — with three drivers (InProcess over the
// library, Served over the service, Remote over the versioned /v1 HTTP
// API that both binaries serve from the shared internal/httpapi mux).
// Cancelling the context aborts in-flight enumerations on every driver.
//
// Start with pkg/optimizer and API.md for the public surface, internal/service
// and SERVICE.md for the serving layer, internal/cluster and CLUSTER.md for
// the distributed layer, cmd/mpdp-bench for the experiment driver, and
// DESIGN.md for the system inventory.
package repro
