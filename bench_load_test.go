// BenchmarkClusterLoad is the honest replacement for the closed-loop
// cluster sweep: an open-loop Poisson load (internal/loadgen) stepped
// through an offered-rate ladder at each topology, recording per-request
// latency from the scheduled send time so server-side queueing cannot hide
// behind a polite client. Each topology's knee — the first rate where the
// achieved throughput stops tracking the offered rate — falls out of the
// sweep, and past the knee admission control sheds the excess with fast
// 503s instead of letting latency grow without bound. Rows accumulate in
// BENCH_load.json.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/service"
)

// loadBenchRow is one (topology, offered rate) point of BENCH_load.json.
type loadBenchRow struct {
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Replicas    int     `json:"replicas"`
	OfferedRate float64 `json:"offered_rate"`
	// AchievedRate counts only served requests; sheds and timeouts are
	// broken out below instead of being laundered into throughput.
	AchievedRate float64 `json:"achieved_rate"`
	Offered      int     `json:"offered"`
	OK           int     `json:"ok"`
	Shed         int     `json:"shed"`
	Timeouts     int     `json:"timeouts"`
	Errors       int     `json:"errors"`
	Dropped      int     `json:"dropped"`
	// The offered query mix: never-seen queries, isomorphic twins of pool
	// queries, and straight replays.
	Cold   int `json:"cold"`
	Twin   int `json:"twin"`
	Replay int `json:"replay"`
	// Served-request cache breakdown (deltas for this point). The honest
	// warm ratio counts only true hits; with 10% cold traffic it cannot
	// reach 1.0, which the CI sanity gate checks across the sweep.
	Hits        uint64  `json:"hits"`
	Coalesced   uint64  `json:"coalesced"`
	Misses      uint64  `json:"misses"`
	WarmHitRate float64 `json:"warm_hit_ratio"`
	// Overflows counts requests a replica absorbed after the owner shed.
	Overflows uint64 `json:"overflows"`
	// Latency percentiles of served requests, measured from the scheduled
	// send time (no coordinated omission).
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// Saturated marks points past the knee: achieved < 95% of offered.
	Saturated bool `json:"saturated"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// BenchmarkClusterLoad sweeps offered rate × cluster size. Each node's
// capacity is governed by its admission rate cap (Admission.RatePerSec):
// on the single-core CI runners every in-process "node" shares one CPU, so
// physical scaling is impossible and the cap is what makes per-node
// capacity explicit and the knee scale with node count — the subsystem
// under test here is admission control, not the host's core count.
// BENCH_LOAD_SECS (float seconds, default 1.0) sets the duration of each
// sweep point.
func BenchmarkClusterLoad(b *testing.B) {
	const (
		replicas = 2
		nodeRate = 700 // per-node admitted req/s (token bucket)
		poolSize = 64
	)
	rates := []float64{400, 800, 1600, 3200, 6400}

	secs := 1.0
	if env := os.Getenv("BENCH_LOAD_SECS"); env != "" {
		if v, err := strconv.ParseFloat(env, 64); err == nil && v > 0 {
			secs = v
		}
	}
	pointDur := time.Duration(secs * float64(time.Second))

	// BENCH_LOAD_SLOWLOG names a JSON-lines file that collects every request
	// slower than 50ms across the sweep — the post-knee tail with its phase
	// breakdown (queue_wait vs enumerate), which nightly CI uploads as an
	// artifact next to the latency rows.
	var slowCfg obs.SlowConfig
	if path := os.Getenv("BENCH_LOAD_SLOWLOG"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		slowCfg = obs.SlowConfig{Threshold: 50 * time.Millisecond, Log: f}
	}

	pool := loadgen.NewPool(poolSize, nil, benchSeed+5000)

	rows := make(map[string]loadBenchRow)
	var order []string

	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.New(cluster.Config{
					Nodes:    nodes,
					Replicas: replicas,
					Slow:     slowCfg,
					Service: service.Config{
						Workers: 2,
						Admission: service.Admission{
							MaxQueueWait: 20 * time.Millisecond,
							RatePerSec:   nodeRate,
						},
					},
				})
				// Warm the pool once so the Zipf head starts cached, as a
				// steady-state serving tier would; the cold fraction keeps
				// misses flowing during the measured run regardless.
				for _, q := range pool {
					if _, err := c.Optimize(context.Background(), q); err != nil {
						c.Close()
						b.Fatal(err)
					}
				}
				target := func(ctx context.Context, q *cost.Query) error {
					_, err := c.Optimize(ctx, q)
					return err
				}
				var preHits, preCoalesced, preMisses uint64
				snapCounts := func() (h, co, m uint64) {
					for _, ns := range c.Snapshot().PerNode {
						h += ns.Hits
						co += ns.Coalesced
						m += ns.Misses
					}
					return h, co, m
				}
				var preOverflows uint64
				for _, rate := range rates {
					preHits, preCoalesced, preMisses = snapCounts()
					preOverflows = c.Snapshot().Overflows
					res := loadgen.Run(context.Background(), target, loadgen.Config{
						Rate:     rate,
						Duration: pointDur,
						Pool:     pool,
						ZipfS:    1.2,
						ColdFrac: 0.10,
						TwinFrac: 0.20,
						Timeout:  500 * time.Millisecond,
						Seed:     benchSeed + int64(nodes*100) + int64(rate),
					})
					hits, coalesced, misses := snapCounts()
					hits -= preHits
					coalesced -= preCoalesced
					misses -= preMisses
					warm := 0.0
					if served := hits + coalesced + misses; served > 0 {
						warm = float64(hits) / float64(served)
					}
					name := fmt.Sprintf("nodes=%d/rate=%d", nodes, int(rate))
					row := loadBenchRow{
						Name:         name,
						Nodes:        nodes,
						Replicas:     replicas,
						OfferedRate:  rate,
						AchievedRate: res.AchievedRate,
						Offered:      res.Offered,
						OK:           res.OK,
						Shed:         res.Shed,
						Timeouts:     res.Timeout,
						Errors:       res.Errors,
						Dropped:      res.Dropped,
						Cold:         res.Cold,
						Twin:         res.Twin,
						Replay:       res.Replay,
						Hits:         hits,
						Coalesced:    coalesced,
						Misses:       misses,
						WarmHitRate:  warm,
						Overflows:    c.Snapshot().Overflows - preOverflows,
						P50Ms:        ms(res.Hist.Quantile(0.50)),
						P95Ms:        ms(res.Hist.Quantile(0.95)),
						P99Ms:        ms(res.Hist.Quantile(0.99)),
						MaxMs:        ms(res.Hist.Max()),
						Saturated:    res.AchievedRate < 0.95*rate,
					}
					if res.Errors > 0 {
						b.Errorf("%s: %d hard errors (sheds and timeouts are expected, errors are not)", name, res.Errors)
					}
					if _, seen := rows[name]; !seen {
						order = append(order, name)
					}
					rows[name] = row
					b.Logf("%s offered=%.0f achieved=%.0f ok=%d shed=%d p50=%.1fms p99=%.1fms warm=%.2f",
						name, rate, res.AchievedRate, res.OK, res.Shed, row.P50Ms, row.P99Ms, warm)
				}
				c.Close()
			}
		})
	}

	ordered := make([]loadBenchRow, 0, len(order))
	allSaturatedHitRatio := true
	for _, name := range order {
		ordered = append(ordered, rows[name])
		if rows[name].WarmHitRate != 1 {
			allSaturatedHitRatio = false
		}
	}
	if len(ordered) > 0 && allSaturatedHitRatio {
		// The old benchmark's signature: every row claiming a perfect warm
		// ratio means the driver is replaying a fully-warmed set again.
		b.Fatal("warm_hit_ratio is exactly 1.0 across the entire sweep — the harness is lying again")
	}
	out, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_load.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_load.json (%d rows)", len(ordered))
}
