// BenchmarkChaos measures the cluster's behaviour under the seeded fault
// storms of internal/chaos and records the evidence in BENCH_chaos.json:
// how many faults were injected, how many requests were lost (the row is a
// failure if that is ever non-zero), and the served-latency p99 during the
// storm versus after it heals. The headline gate is the breaker story: the
// p99 of warm cache hits served by healthy nodes during a partition must
// stay within 2x of the no-fault baseline — open breakers are supposed to
// keep the healthy replicas fast while the sick node is routed around.
// BENCH_CHAOS_SECS (float seconds, default 1.0) sets the storm duration;
// nightly CI runs a longer storm and uploads the JSON.
package repro

import (
	"context"
	"encoding/json"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/chaos"
)

// chaosBenchRow is one schedule's measurement in BENCH_chaos.json.
type chaosBenchRow struct {
	Schedule       string   `json:"schedule"`
	Seed           int64    `json:"seed"`
	Faults         int      `json:"faults"`
	FaultsInjected uint64   `json:"faults_injected"`
	Offered        int      `json:"offered"`
	OK             int      `json:"ok"`
	Shed           int      `json:"shed"`
	Timeouts       int      `json:"timeouts"`
	Unavailable    int      `json:"unavailable"`
	RequestsLost   int      `json:"requests_lost"`
	MisErrored     int      `json:"mis_errored"`
	CostMismatches int      `json:"cost_mismatches"`
	Failovers      uint64   `json:"failovers"`
	Overflows      uint64   `json:"overflows"`
	BreakerSkips   uint64   `json:"breaker_skips"`
	Retries        uint64   `json:"retries"`
	Quarantined    uint64   `json:"quarantined"`
	StormP99Ms     float64  `json:"storm_p99_ms"`
	HealedP99Ms    float64  `json:"healed_p99_ms"`
	WarmHealthyMs  float64  `json:"warm_healthy_p99_ms"`
	Violations     []string `json:"violations,omitempty"`
}

func chaosRow(rep *chaos.Report) chaosBenchRow {
	return chaosBenchRow{
		Schedule:       rep.Schedule,
		Seed:           rep.Seed,
		Faults:         rep.Faults,
		FaultsInjected: rep.Injected,
		Offered:        rep.Offered,
		OK:             rep.OK,
		Shed:           rep.Shed,
		Timeouts:       rep.Timeouts,
		Unavailable:    rep.Unavailable,
		RequestsLost:   rep.Lost + rep.MisErrored,
		MisErrored:     rep.MisErrored,
		CostMismatches: rep.CostMismatches,
		Failovers:      rep.Cluster.Failovers,
		Overflows:      rep.Cluster.Overflows,
		BreakerSkips:   rep.Cluster.BreakerSkips,
		Retries:        rep.Cluster.Retries,
		Quarantined:    rep.Cluster.Quarantined,
		StormP99Ms:     ms(rep.StormP99),
		HealedP99Ms:    ms(rep.HealedP99),
		WarmHealthyMs:  ms(rep.WarmHealthyP99),
		Violations:     rep.Violations(),
	}
}

func BenchmarkChaos(b *testing.B) {
	secs := 1.0
	if env := os.Getenv("BENCH_CHAOS_SECS"); env != "" {
		if v, err := strconv.ParseFloat(env, 64); err == nil && v > 0 {
			secs = v
		}
	}
	phase := time.Duration(secs * float64(time.Second))
	cfg := chaos.Config{Rate: 250, Phase: phase}

	schedules := []chaos.Schedule{
		chaos.ControlSchedule(benchSeed),
		chaos.KillSchedule(benchSeed, phase),
		chaos.PartitionSchedule(benchSeed, phase),
		chaos.SlowFlapSchedule(benchSeed, phase),
	}

	var rows []chaosBenchRow
	var baselineWarm time.Duration
	b.Run("storms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows = rows[:0]
			for _, sched := range schedules {
				rep := chaos.Run(context.Background(), cfg, sched)
				row := chaosRow(rep)
				if sched.Name == "control" {
					baselineWarm = rep.WarmHealthyP99
				}
				if row.RequestsLost != 0 {
					b.Errorf("%s: %d request(s) lost or mis-errored — the row is a failure", sched.Name, row.RequestsLost)
				}
				for _, v := range row.Violations {
					b.Errorf("%s: %s", sched.Name, v)
				}
				// The breaker gate, with a 5ms absolute floor so sub-ms
				// jitter on an idle CI runner cannot fake a regression; raw
				// values land in the JSON either way.
				if sched.Name == "partition" && baselineWarm > 0 &&
					rep.WarmHealthyP99 > 2*baselineWarm+5*time.Millisecond {
					b.Errorf("partition: warm-healthy p99 %v exceeds 2x no-fault baseline %v — breakers are not protecting the healthy replicas",
						rep.WarmHealthyP99, baselineWarm)
				}
				b.Logf("%s: offered=%d ok=%d lost=%d injected=%d failovers=%d skips=%d retries=%d storm_p99=%v healed_p99=%v warm_healthy_p99=%v",
					sched.Name, row.Offered, row.OK, row.RequestsLost, row.FaultsInjected,
					row.Failovers, row.BreakerSkips, row.Retries, rep.StormP99, rep.HealedP99, rep.WarmHealthyP99)
			}
		}
	})

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_chaos.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_chaos.json (%d rows)", len(rows))
}
