// Counters: reproduce the paper's Figure 2 analysis on a MusicBrainz query
// through the public SDK — how many join pairs each enumeration strategy
// evaluates relative to the number of valid (CCP) pairs, the quantity that
// separates MPDP from the vertex-based DPSub/DPSize family.
//
//	go run ./examples/counters [-rels 20]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/pkg/optimizer"
)

func main() {
	rels := flag.Int("rels", 20, "query size (random-walk over the MusicBrainz schema)")
	flag.Parse()

	q := optimizer.MusicBrainz(*rels, 3)
	fmt.Printf("MusicBrainz random-walk query: %d relations, %d predicates\n\n",
		q.Relations(), q.Joins())

	opt := optimizer.InProcess()
	suite := []optimizer.Algorithm{
		optimizer.AlgDPCCP, optimizer.AlgMPDP, optimizer.AlgDPSub, optimizer.AlgDPSize,
	}

	// Every exact enumerator reports the paper's two counters in its
	// Result; DPCCP's EvaluatedCounter equals the CCP lower bound.
	results := make(map[optimizer.Algorithm]*optimizer.Result, len(suite))
	var ccp uint64
	for _, alg := range suite {
		res, err := opt.Optimize(context.Background(), q, optimizer.WithAlgorithm(alg))
		if err != nil {
			log.Fatalf("%s: %v", alg, err)
		}
		results[alg] = res
		ccp = res.CCPPairs
	}
	fmt.Printf("CCP-Counter (valid join pairs): %d\n\n", ccp)

	fmt.Printf("%-8s %16s %14s\n", "", "EvaluatedCounter", "× valid pairs")
	for _, alg := range suite {
		v := results[alg].Evaluated
		fmt.Printf("%-8s %16d %13.1fx\n", alg, v, float64(v)/float64(ccp))
	}

	fmt.Println("\nDPCCP meets the bound but is sequential; DPSub/DPSize parallelize but")
	fmt.Println("waste orders of magnitude of work; MPDP keeps both properties (Fig. 2).")
}
