// Counters: reproduce the paper's Figure 2 analysis on a MusicBrainz query —
// how many join pairs each enumeration strategy evaluates relative to the
// number of valid (CCP) pairs, the quantity that separates MPDP from the
// vertex-based DPSub/DPSize family.
//
//	go run ./examples/counters [-rels 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/workload"
)

func main() {
	rels := flag.Int("rels", 20, "query size (random-walk over the MusicBrainz schema)")
	flag.Parse()

	q := workload.MusicBrainzQuery(*rels, rand.New(rand.NewSource(3)))
	rep, err := dp.Counters(dp.Input{Q: q, M: cost.DefaultModel()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MusicBrainz random-walk query: %d relations, %d predicates\n", q.N(), len(q.G.Edges))
	fmt.Printf("connected subsets (DP lattice size): %d\n", rep.ConnectedSets)
	fmt.Printf("CCP-Counter (valid join pairs):      %d\n\n", rep.CCP)

	fmt.Printf("%-8s %16s %14s\n", "", "EvaluatedCounter", "× valid pairs")
	row := func(name string, v uint64) {
		fmt.Printf("%-8s %16d %13.1fx\n", name, v, float64(v)/float64(rep.CCP))
	}
	row("DPCCP", rep.DPCCPEvaluated)
	row("MPDP", rep.MPDPEvaluated)
	row("DPSub", rep.DPSubEvaluated)
	row("DPSize", rep.DPSizeEvaluated)

	fmt.Println("\nDPCCP meets the bound but is sequential; DPSub/DPSize parallelize but")
	fmt.Println("waste orders of magnitude of work; MPDP keeps both properties (Fig. 2).")
}
