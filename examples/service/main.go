// Service demo: the optimizer as a concurrent front-end, driven entirely
// through the public SDK's Served driver. A pool of client goroutines
// replays a skewed stream of MusicBrainz join queries — repeats,
// isomorphic renamings and fresh queries mixed — against one shared
// service, then prints the cache statistics and the cold-vs-warm latency
// gap.
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/optimizer"
)

func main() {
	svc := optimizer.Served(optimizer.ServedConfig{})
	defer svc.Close()

	// Twelve distinct 14-relation MusicBrainz join problems form the "hot"
	// working set a production query stream would repeat.
	var hot []*optimizer.Query
	for seed := int64(1); seed <= 12; seed++ {
		hot = append(hot, optimizer.MusicBrainz(14, seed))
	}

	clients := runtime.GOMAXPROCS(0)
	const perClient = 60
	fmt.Printf("replaying %d requests from %d clients over %d distinct queries...\n",
		clients*perClient, clients, len(hot))

	var hits, coalesced, fellBack atomic.Int64
	var hitNanos, missNanos, misses atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				q := hot[rng.Intn(len(hot))]
				if rng.Intn(2) == 0 {
					// The same join problem as written by a different
					// client: the canonical fingerprint makes it hit the
					// twin's cache entry.
					q = q.Permuted(rng.Int63())
				}
				res, err := svc.Optimize(context.Background(), q)
				if err != nil {
					log.Fatal(err)
				}
				switch {
				case res.CacheHit:
					hits.Add(1)
					hitNanos.Add(int64(res.Elapsed))
				case res.Coalesced:
					coalesced.Add(1)
				default:
					misses.Add(1)
					missNanos.Add(int64(res.Elapsed))
				}
				if res.FellBack {
					fellBack.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	total := int64(clients * perClient)
	fmt.Printf("\n%d requests in %v (%.0f req/s)\n",
		total, wall.Round(time.Millisecond), float64(total)/wall.Seconds())
	fmt.Printf("cache: %d hits, %d misses, %d coalesced (hit rate %.1f%%), %d fallbacks\n",
		hits.Load(), misses.Load(), coalesced.Load(),
		100*float64(hits.Load()+coalesced.Load())/float64(total), fellBack.Load())
	if misses.Load() > 0 && hits.Load() > 0 {
		avgMiss := float64(missNanos.Load()) / float64(misses.Load()) / 1e3
		avgHit := float64(hitNanos.Load()) / float64(hits.Load()) / 1e3
		fmt.Printf("latency: cold (optimize) %.0fus, warm (cache hit) %.0fus — %.0fx\n",
			avgMiss, avgHit, avgMiss/avgHit)
	}
}
