// Service demo: the optimizer as a concurrent front-end. A pool of client
// goroutines replays a skewed stream of MusicBrainz join queries — repeats,
// isomorphic renamings and fresh queries mixed — against one shared
// service, then prints the cache/router statistics and the cold-vs-warm
// latency gap.
//
//	go run ./examples/service
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/workload"
)

// rename relabels the query's relations through a random permutation: a
// different SQL text for the same join problem. The service's canonical
// fingerprint makes these hit the same cache entry.
func rename(q *cost.Query, rng *rand.Rand) *cost.Query {
	perm := rng.Perm(q.N())
	rels := make([]catalog.Relation, q.N())
	for i, r := range q.Cat.Rels {
		rels[perm[i]] = r
	}
	var cat catalog.Catalog
	for _, r := range rels {
		cat.Add(r)
	}
	g := graph.New(q.N())
	for _, e := range q.G.Edges {
		g.AddEdge(perm[e.A], perm[e.B], e.Sel)
	}
	return &cost.Query{Cat: cat, G: g}
}

func main() {
	svc := service.New(service.Config{})
	defer svc.Close()

	// Twelve distinct 14-relation MusicBrainz join problems form the "hot"
	// working set a production query stream would repeat.
	var hot []*cost.Query
	for seed := int64(1); seed <= 12; seed++ {
		q, err := workload.Generate(workload.KindMB, 14, rand.New(rand.NewSource(seed)))
		if err != nil {
			log.Fatal(err)
		}
		hot = append(hot, q)
	}

	clients := runtime.GOMAXPROCS(0)
	const perClient = 60
	fmt.Printf("replaying %d requests from %d clients over %d distinct queries...\n",
		clients*perClient, clients, len(hot))

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				q := hot[rng.Intn(len(hot))]
				if rng.Intn(2) == 0 {
					q = rename(q, rng) // same query, different relation order
				}
				if _, err := svc.Optimize(q); err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	snap := svc.Counters().Snapshot()
	fmt.Printf("\n%d requests in %v (%.0f req/s)\n",
		snap.Requests, wall.Round(time.Millisecond), float64(snap.Requests)/wall.Seconds())
	fmt.Printf("cache: %d hits, %d misses, %d coalesced (hit rate %.1f%%)\n",
		snap.Hits, snap.Misses, snap.Coalesced, 100*snap.HitRate)
	fmt.Printf("routes: dpccp=%d mpdp-cpu=%d mpdp-gpu=%d idp2=%d uniondp=%d\n",
		snap.RouteDPCCP, snap.RouteMPDP, snap.RouteMPDPGPU, snap.RouteIDP2, snap.RouteUnionDP)
	for _, id := range backend.IDs() {
		bc := snap.Backends[string(id)]
		fmt.Printf("backend %-12s routed=%-4d served=%-4d hits=%-4d fallbacks=%d\n",
			id, bc.Routed, bc.Served, bc.Hits, bc.Fallbacks)
	}
	fmt.Printf("latency: cold (optimize) %.0fus, warm (cache hit) %.0fus — %.0fx\n",
		snap.AvgMissMicros, snap.AvgHitMicros, snap.AvgMissMicros/snap.AvgHitMicros)
}
