// Cluster demo: the optimizer scaled out to four nodes behind one HTTP
// front door, driven entirely through the public SDK's Remote client. The
// server side is exactly what cmd/mpdp-cluster runs: a cluster coordinator
// behind the shared versioned /v1 API. Concurrent clients replay a skewed
// stream of MusicBrainz join queries — repeats and isomorphic renamings —
// over HTTP; halfway through, one node is killed through the admin
// surface. Every request is still answered: the consistent-hash ring
// routes isomorphic queries to the same warm cache, replicas absorb the
// dead node's keys, and the failure detector rebalances the ring.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/pkg/optimizer"
)

func main() {
	// Server side: the same wiring as cmd/mpdp-cluster -transport=http, on
	// an ephemeral port. The HTTP transport gives every node a real
	// loopback TCP listener, so coordinator→node RPCs — including the
	// failover traffic after the kill below — cross actual sockets.
	c := cluster.New(cluster.Config{
		Nodes:     4,
		Replicas:  2,
		Transport: cluster.NewHTTPTransport(),
		Service:   service.Config{Workers: 2},
	})
	defer c.Close()
	api := httpapi.New(httpapi.ClusterEngine(c), httpapi.Options{})
	httpapi.MountClusterAdmin(api, c)
	front := httptest.NewServer(api.Mux())
	defer front.Close()

	// Client side: the SDK Remote driver against the front door.
	client, err := optimizer.Remote(optimizer.RemoteConfig{Endpoints: []string{front.URL}})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Twelve distinct 14-relation MusicBrainz join problems form the hot
	// working set.
	var hot []*optimizer.Query
	for seed := int64(1); seed <= 12; seed++ {
		hot = append(hot, optimizer.MusicBrainz(14, seed))
	}

	const clients, perClient = 8, 50
	victim := c.AliveNodes()[0]
	fmt.Printf("replaying %d requests from %d clients over %d distinct queries on %d nodes\n",
		clients*perClient, clients, len(hot), len(c.AliveNodes()))
	fmt.Printf("killing %s halfway through (via POST /cluster/kill)...\n\n", victim)

	var warm, failovers atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	var killOnce sync.Once
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perClient; i++ {
				if i == perClient/2 {
					killOnce.Do(func() {
						resp, err := http.Post(front.URL+"/cluster/kill?node="+victim, "", nil)
						if err != nil {
							log.Fatal(err)
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							log.Fatalf("kill failed: %d", resp.StatusCode)
						}
					})
				}
				q := hot[rng.Intn(len(hot))]
				if rng.Intn(2) == 0 {
					q = q.Permuted(rng.Int63()) // isomorphic renaming
				}
				res, err := client.Optimize(context.Background(), q)
				if err != nil {
					log.Fatalf("client %d lost a request: %v", w, err)
				}
				if res.CacheHit || res.Coalesced {
					warm.Add(1)
				}
				if res.Failover {
					failovers.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	total := int64(clients * perClient)
	fmt.Printf("%d requests in %v (%.0f req/s), zero lost\n",
		total, wall.Round(time.Millisecond), float64(total)/wall.Seconds())
	fmt.Printf("client-observed warm ratio %.1f%%, %d failover responses\n",
		100*float64(warm.Load())/float64(total), failovers.Load())

	snap := c.Snapshot()
	fmt.Printf("cluster: %d failovers, %d entries replicated, %d rebalanced\n",
		snap.Failovers, snap.Replicated, snap.Rebalanced)
	fmt.Printf("membership: alive=%v dead=%v (deaths=%d)\n\n",
		snap.AliveNodes, snap.DeadNodes, snap.Deaths)

	c.ReviveNode(victim)
	c.CheckHealth()
	fmt.Printf("revived %s: alive=%v (rejoins=%d)\n",
		victim, c.AliveNodes(), c.Snapshot().Rejoins)
}
