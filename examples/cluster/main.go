// Cluster demo: the optimizer scaled out to four nodes behind one front
// door. Concurrent clients replay a skewed stream of MusicBrainz join
// queries — repeats and isomorphic renamings — against the cluster; halfway
// through, one node is killed. Every request is still answered: the
// consistent-hash ring routes isomorphic queries to the same warm cache,
// replicas absorb the dead node's keys, and the failure detector rebalances
// the ring. The run ends by reviving the node and printing the cluster's
// counters.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/service"
	"repro/internal/workload"
)

// rename relabels the query's relations through a random permutation: the
// same join problem as written by a different client.
func rename(q *cost.Query, rng *rand.Rand) *cost.Query {
	return workload.PermuteQuery(q, rng.Perm(q.N()))
}

func main() {
	c := cluster.New(cluster.Config{
		Nodes:    4,
		Replicas: 2,
		Service:  service.Config{Workers: 2},
	})
	defer c.Close()

	// Twelve distinct 14-relation MusicBrainz join problems form the hot
	// working set.
	var hot []*cost.Query
	for seed := int64(1); seed <= 12; seed++ {
		q, err := workload.Generate(workload.KindMB, 14, rand.New(rand.NewSource(seed)))
		if err != nil {
			log.Fatal(err)
		}
		hot = append(hot, q)
	}

	const clients, perClient = 8, 50
	victim := c.AliveNodes()[0]
	fmt.Printf("replaying %d requests from %d clients over %d distinct queries on %d nodes\n",
		clients*perClient, clients, len(hot), len(c.AliveNodes()))
	fmt.Printf("killing %s halfway through...\n\n", victim)

	start := time.Now()
	var wg sync.WaitGroup
	var killOnce sync.Once
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perClient; i++ {
				if i == perClient/2 {
					killOnce.Do(func() { c.KillNode(victim) })
				}
				q := hot[rng.Intn(len(hot))]
				if rng.Intn(2) == 0 {
					q = rename(q, rng)
				}
				if _, err := c.Optimize(q); err != nil {
					log.Fatalf("client %d lost a request: %v", w, err)
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	snap := c.Snapshot()
	fmt.Printf("%d requests in %v (%.0f req/s), zero lost\n",
		snap.Requests, wall.Round(time.Millisecond), float64(snap.Requests)/wall.Seconds())
	fmt.Printf("cluster-wide warm ratio %.1f%%, %d failovers, %d entries replicated, %d rebalanced\n",
		100*snap.HitRate, snap.Failovers, snap.Replicated, snap.Rebalanced)
	fmt.Printf("membership: alive=%v dead=%v (deaths=%d)\n\n",
		snap.AliveNodes, snap.DeadNodes, snap.Deaths)

	c.ReviveNode(victim)
	c.CheckHealth()
	fmt.Printf("revived %s: alive=%v (rejoins=%d)\n",
		victim, c.AliveNodes(), c.Snapshot().Rejoins)

	fmt.Println("\nper-node requests served:")
	for _, id := range c.AliveNodes() {
		ns := c.Snapshot().PerNode[id]
		fmt.Printf("  %-8s requests=%-5d hits=%-5d cache=%d\n",
			id, ns.Requests, ns.Hits, ns.CacheLen)
	}
}
