// Quickstart: build a 12-relation star query, optimize it with MPDP and
// print the chosen plan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// A 12-relation star join: one fact table, eleven filtered dimensions.
	q := workload.Star(12, rand.New(rand.NewSource(42)))

	// Optimize with the paper's MPDP (exact, optimal, no cross products).
	res, err := core.Optimize(q, core.Options{Algorithm: core.AlgMPDP})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimal cost: %.1f (found in %v)\n", res.Plan.Cost, res.Elapsed)
	fmt.Printf("join pairs evaluated: %d (valid: %d — MPDP meets the lower bound on trees)\n\n",
		res.Stats.Evaluated, res.Stats.CCP)
	fmt.Println(core.Explain(q, res.Plan))

	// The same query through the simulated GPU pipeline.
	gpu, err := core.Optimize(q, core.Options{Algorithm: core.AlgMPDPGPU})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MPDP (GPU model): same cost %.1f, simulated device time %.3f ms (%d kernels)\n",
		gpu.Plan.Cost, gpu.GPU.SimTimeMS, gpu.GPU.KernelLaunches)
}
