// Quickstart: build a 12-relation star query, optimize it with MPDP
// through the public SDK (pkg/optimizer) and print the chosen plan.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/optimizer"
)

func main() {
	// A 12-relation star join: one fact table, eleven filtered dimensions.
	q := optimizer.Star(12, 42)

	// The InProcess driver runs the paper's MPDP (exact, optimal, no cross
	// products) directly in this process.
	opt := optimizer.InProcess()
	res, err := opt.Optimize(context.Background(), q,
		optimizer.WithAlgorithm(optimizer.AlgMPDP), optimizer.WithExplain())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimal cost: %.1f (found in %v)\n", res.Cost, res.Elapsed)
	fmt.Printf("join pairs evaluated: %d (valid: %d — MPDP meets the lower bound on trees)\n\n",
		res.Evaluated, res.CCPPairs)
	fmt.Println(res.Explain)

	// The same query through the simulated GPU pipeline.
	gpu, err := opt.Optimize(context.Background(), q,
		optimizer.WithAlgorithm(optimizer.AlgMPDPGPU))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MPDP (GPU model): same cost %.1f, simulated device time %.3f ms\n",
		gpu.Cost, gpu.GPUSimMS)
	if gpu.Cost != res.Cost {
		log.Fatalf("GPU cost %g differs from CPU cost %g", gpu.Cost, res.Cost)
	}
}
