// Largequery: the paper's headline heuristic scenario through the public
// SDK — optimize a 1000-relation snowflake query with UnionDP and
// IDP2-MPDP, comparing plan quality and time against the GOO baseline
// ("optimizes queries with 1000 relations under 1 minute", §1).
//
//	go run ./examples/largequery [-rels 1000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/pkg/optimizer"
)

func main() {
	rels := flag.Int("rels", 1000, "number of relations")
	flag.Parse()

	q := optimizer.Snowflake(*rels, 7)
	fmt.Printf("snowflake query with %d relations, %d join predicates\n\n", q.Relations(), q.Joins())

	opt := optimizer.InProcess()
	type entry struct {
		label string
		alg   optimizer.Algorithm
		k     int
	}
	suite := []entry{
		{"GOO (greedy baseline)", optimizer.AlgGOO, 0},
		{"IDP2-MPDP (k=15)", optimizer.AlgIDP2, 15},
		{"UnionDP-MPDP (k=15)", optimizer.AlgUnionDP, 15},
	}

	best := 0.0
	costs := make([]float64, len(suite))
	for i, e := range suite {
		res, err := opt.Optimize(context.Background(), q,
			optimizer.WithAlgorithm(e.alg),
			optimizer.WithK(e.k),
			optimizer.WithTimeout(time.Minute))
		if err != nil {
			log.Fatalf("%s: %v", e.label, err)
		}
		costs[i] = res.Cost
		if best == 0 || res.Cost < best {
			best = res.Cost
		}
		fmt.Printf("%-24s cost %.4g   time %v\n", e.label, res.Cost, res.Elapsed.Round(time.Millisecond))
	}
	fmt.Println()
	for i, e := range suite {
		fmt.Printf("%-24s normalized cost %.2fx\n", e.label, costs[i]/best)
	}
}
