// Largequery: the paper's headline heuristic scenario — optimize a
// 1000-relation snowflake query with UnionDP and IDP2-MPDP, comparing plan
// quality and time against the GOO baseline ("optimizes queries with 1000
// relations under 1 minute", §1).
//
//	go run ./examples/largequery [-rels 1000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	rels := flag.Int("rels", 1000, "number of relations")
	flag.Parse()

	q := workload.Snowflake(*rels, rand.New(rand.NewSource(7)))
	fmt.Printf("snowflake query with %d relations, %d join predicates\n\n", q.N(), len(q.G.Edges))

	type entry struct {
		label string
		alg   core.Algorithm
		k     int
	}
	suite := []entry{
		{"GOO (greedy baseline)", core.AlgGOO, 0},
		{"IDP2-MPDP (k=15)", core.AlgIDP2, 15},
		{"UnionDP-MPDP (k=15)", core.AlgUnionDP, 15},
	}

	best := 0.0
	costs := make([]float64, len(suite))
	for i, e := range suite {
		res, err := core.Optimize(q, core.Options{
			Algorithm: e.alg,
			K:         e.k,
			Timeout:   time.Minute,
		})
		if err != nil {
			log.Fatalf("%s: %v", e.label, err)
		}
		costs[i] = res.Plan.Cost
		if best == 0 || res.Plan.Cost < best {
			best = res.Plan.Cost
		}
		fmt.Printf("%-24s cost %.4g   time %v\n", e.label, res.Plan.Cost, res.Elapsed.Round(time.Millisecond))
	}
	fmt.Println()
	for i, e := range suite {
		fmt.Printf("%-24s normalized cost %.2fx\n", e.label, costs[i]/best)
	}
}
