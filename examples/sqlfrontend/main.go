// Sqlfrontend: optimize SQL text end to end — parse, bind against the
// MusicBrainz catalog, build the join graph (including the implicit edges
// introduced by equivalence classes, the paper's footnote 8), and plan with
// MPDP.
//
//	go run ./examples/sqlfrontend
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sql"
)

const query = `
SELECT r.id
FROM release r, release_group rg, artist_credit ac, artist_credit_name acn,
     artist a, medium m, release_label rl, label l
WHERE r.release_group = rg.id
  AND r.artist_credit = ac.id
  AND rg.artist_credit = ac.id
  AND acn.artist_credit = ac.id
  AND acn.artist = a.id
  AND m.release = r.id
  AND rl.release = r.id
  AND rl.label = l.id
  AND a.name = 'radiohead'`

func main() {
	bound, err := sql.Compile(query, sql.MusicBrainzSchema())
	if err != nil {
		log.Fatal(err)
	}
	q := bound.Query
	fmt.Printf("bound %d relations, %d join edges (%d implicit from equivalence classes)\n\n",
		q.N(), len(q.G.Edges), bound.ImplicitEdges)

	res, err := core.Optimize(q, core.Options{Algorithm: core.AlgMPDP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal cost %.4g in %v (evaluated %d join pairs, %d valid)\n\n",
		res.Plan.Cost, res.Elapsed, res.Stats.Evaluated, res.Stats.CCP)
	fmt.Print(core.Explain(q, res.Plan))
}
