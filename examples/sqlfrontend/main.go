// Sqlfrontend: optimize SQL text end to end through the public SDK —
// parse, bind against the MusicBrainz catalog, build the join graph
// (including the implicit edges introduced by equivalence classes, the
// paper's footnote 8), and plan with MPDP.
//
//	go run ./examples/sqlfrontend
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/optimizer"
)

const query = `
SELECT r.id
FROM release r, release_group rg, artist_credit ac, artist_credit_name acn,
     artist a, medium m, release_label rl, label l
WHERE r.release_group = rg.id
  AND r.artist_credit = ac.id
  AND rg.artist_credit = ac.id
  AND acn.artist_credit = ac.id
  AND acn.artist = a.id
  AND m.release = r.id
  AND rl.release = r.id
  AND rl.label = l.id
  AND a.name = 'radiohead'`

func main() {
	q, err := optimizer.CompileSQL(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bound %d relations, %d join edges (equivalence classes add the implicit ones)\n\n",
		q.Relations(), q.Joins())

	res, err := optimizer.InProcess().Optimize(context.Background(), q,
		optimizer.WithAlgorithm(optimizer.AlgMPDP), optimizer.WithExplain())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal cost %.4g in %v (evaluated %d join pairs, %d valid)\n\n",
		res.Cost, res.Elapsed, res.Evaluated, res.CCPPairs)
	fmt.Print(res.Explain)
}
