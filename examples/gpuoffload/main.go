// Gpuoffload: the GPU execution model of §5 through the public SDK — the
// simulated device times of MPDP vs the DPSub/DPSize baselines on a
// snowflake query, then the multi-device scheduler: a 40-relation cycle
// (which no CPU enumerator's band touches) served exactly by the GPU
// backend of the Served driver, swept across 1/2/4/8 simulated devices.
//
//	go run ./examples/gpuoffload [-rels 18]
package main

import (
	"context"
	"fmt"
	"log"

	"flag"

	"repro/pkg/optimizer"
)

func main() {
	rels := flag.Int("rels", 18, "snowflake query size")
	flag.Parse()

	q := optimizer.Snowflake(*rels, 11)
	opt := optimizer.InProcess()
	fmt.Printf("snowflake query: %d relations on the simulated device model\n\n", q.Relations())

	type entry struct {
		label string
		alg   optimizer.Algorithm
	}
	suite := []entry{
		{"MPDP (GPU, fused prune + CCC)", optimizer.AlgMPDPGPU},
		{"DPSub (GPU)", optimizer.AlgDPSubGPU},
		{"DPSize (GPU)", optimizer.AlgDPSizeGPU},
	}
	var exact float64
	for _, e := range suite {
		res, err := opt.Optimize(context.Background(), q, optimizer.WithAlgorithm(e.alg))
		if err != nil {
			log.Fatal(err)
		}
		if exact == 0 {
			exact = res.Cost
		} else if res.Cost != exact {
			log.Fatalf("%s cost %g != %g", e.label, res.Cost, exact)
		}
		fmt.Printf("%-32s %10.3f ms simulated  (evaluated %d pairs, %d valid)\n",
			e.label, res.GPUSimMS, res.Evaluated, res.CCPPairs)
	}
	fmt.Println("\nMPDP's candidate volume tracks the valid-pair count, so its kernels do")
	fmt.Println("less lockstep work; CCC compacts what divergence remains (§5, §7.2.5).")

	// The multi-device scheduler on a query no CPU enumerator's band can
	// touch: a 40-relation cycle, whose 2^40 unrank lattice is compute-
	// bound. Each Served driver routes it to its GPU backend with N
	// simulated devices; more devices shorten the level-synchronous wall.
	cyc := optimizer.Cycle(40, 7)
	fmt.Println("\n40-relation cycle, level-partitioned across N devices (Served driver):")
	var cost40 float64
	for _, ndev := range []int{1, 2, 4, 8} {
		svc := optimizer.Served(optimizer.ServedConfig{Workers: 2, GPUDevices: ndev})
		res, err := svc.Optimize(context.Background(), cyc)
		svc.Close()
		if err != nil {
			log.Fatal(err)
		}
		if res.Backend != "gpu" || res.FellBack {
			log.Fatalf("%d devices: routed to %s (fellback=%v), want exact gpu", ndev, res.Backend, res.FellBack)
		}
		cost40 = res.Cost
		fmt.Printf("  %d device(s): %9.0f ms simulated  (%s on %s, %.1f ms real wall time)\n",
			ndev, res.GPUSimMS, res.Algorithm, res.Backend,
			float64(res.Elapsed.Microseconds())/1e3)
	}
	fmt.Printf("exact plan cost %.4g — the band the service router serves exactly\n", cost40)
	fmt.Println("instead of heuristically (costing is output-sensitive, the lattice is modeled).")
}
