// Gpuoffload: walk through the GPU execution model of §5 on a snowflake
// query — per-level kernels (unrank → filter → evaluate → prune → scatter),
// the effect of the paper's two enhancements (fused pruning and
// Collaborative Context Collection), and the resulting simulated device
// times for MPDP vs DPSub.
//
//	go run ./examples/gpuoffload [-rels 18]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/workload"
)

func main() {
	rels := flag.Int("rels", 18, "snowflake query size")
	flag.Parse()

	q := workload.Snowflake(*rels, rand.New(rand.NewSource(11)))
	in := dp.Input{Q: q, M: cost.DefaultModel()}

	fmt.Printf("snowflake query: %d relations on a simulated %s\n\n", q.N(), gpusim.GTX1080().Name)

	show := func(label string, gs gpusim.Stats) {
		fmt.Printf("%-34s %10.3f ms  kernels=%-4d candidates=%-10d valid=%-8d writes=%d\n",
			label, gs.SimTimeMS, gs.KernelLaunches, gs.CandidatePairs, gs.ValidPairs, gs.GlobalWrites)
	}

	full := gpusim.Config{Device: gpusim.GTX1080(), FusedPrune: true, CCC: true}
	plain := gpusim.Config{Device: gpusim.GTX1080()}

	_, _, gs, err := gpusim.MPDPGPU(in, full)
	if err != nil {
		log.Fatal(err)
	}
	show("MPDP (GPU, fused prune + CCC)", gs)
	phases := gs.PhaseMS(gpusim.GTX1080())
	fmt.Print("  kernel time by phase:")
	for p := gpusim.PhaseUnrank; p <= gpusim.PhaseScatter; p++ {
		fmt.Printf("  %s=%.4fms", p, phases[p])
	}
	fmt.Println()

	_, _, gs, err = gpusim.MPDPGPU(in, plain)
	if err != nil {
		log.Fatal(err)
	}
	show("MPDP (GPU, baseline kernels [23])", gs)

	_, _, gs, err = gpusim.DPSubGPU(in, full)
	if err != nil {
		log.Fatal(err)
	}
	show("DPSub (GPU, fused prune + CCC)", gs)

	_, _, gs, err = gpusim.DPSizeGPU(in, full)
	if err != nil {
		log.Fatal(err)
	}
	show("DPSize (GPU)", gs)

	fmt.Println("\nMPDP's candidate volume tracks the valid-pair count, so its kernels do")
	fmt.Println("less lockstep work; CCC compacts what divergence remains (§5, §7.2.5).")
}
