// Gpuoffload: walk through the GPU execution model of §5 on a snowflake
// query — per-level kernels (unrank → filter → evaluate → prune → scatter),
// the effect of the paper's two enhancements (fused pruning and
// Collaborative Context Collection), the resulting simulated device times
// for MPDP vs DPSub — and the multi-device scheduler: the same query
// level-partitioned across 1/2/4/8 simulated GPUs, plus a 40-relation
// cycle that only the GPU backend serves exactly.
//
//	go run ./examples/gpuoffload [-rels 18]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/workload"
)

func main() {
	rels := flag.Int("rels", 18, "snowflake query size")
	flag.Parse()

	q := workload.Snowflake(*rels, rand.New(rand.NewSource(11)))
	in := dp.Input{Q: q, M: cost.DefaultModel()}

	fmt.Printf("snowflake query: %d relations on a simulated %s\n\n", q.N(), gpusim.GTX1080().Name)

	show := func(label string, gs gpusim.Stats) {
		fmt.Printf("%-34s %10.3f ms  kernels=%-4d candidates=%-10d valid=%-8d writes=%d\n",
			label, gs.SimTimeMS, gs.KernelLaunches, gs.CandidatePairs, gs.ValidPairs, gs.GlobalWrites)
	}

	full := gpusim.Config{Device: gpusim.GTX1080(), FusedPrune: true, CCC: true}
	plain := gpusim.Config{Device: gpusim.GTX1080()}

	_, _, gs, err := gpusim.MPDPGPU(in, full)
	if err != nil {
		log.Fatal(err)
	}
	show("MPDP (GPU, fused prune + CCC)", gs)
	phases := gs.PhaseMS(gpusim.GTX1080())
	fmt.Print("  kernel time by phase:")
	for p := gpusim.PhaseUnrank; p <= gpusim.PhaseScatter; p++ {
		fmt.Printf("  %s=%.4fms", p, phases[p])
	}
	fmt.Println()

	_, _, gs, err = gpusim.MPDPGPU(in, plain)
	if err != nil {
		log.Fatal(err)
	}
	show("MPDP (GPU, baseline kernels [23])", gs)

	_, _, gs, err = gpusim.DPSubGPU(in, full)
	if err != nil {
		log.Fatal(err)
	}
	show("DPSub (GPU, fused prune + CCC)", gs)

	_, _, gs, err = gpusim.DPSizeGPU(in, full)
	if err != nil {
		log.Fatal(err)
	}
	show("DPSize (GPU)", gs)

	fmt.Println("\nMPDP's candidate volume tracks the valid-pair count, so its kernels do")
	fmt.Println("less lockstep work; CCC compacts what divergence remains (§5, §7.2.5).")

	// The multi-device scheduler on a query no CPU enumerator's band can
	// touch: a 40-relation cycle, whose 2^40 unrank lattice is
	// compute-bound (the snowflake above is transfer-bound, so extra
	// devices would not help it — the paper's small-query overhead).
	cyc := workload.Cycle(40, rand.New(rand.NewSource(7)))
	cin := dp.Input{Q: cyc, M: cost.DefaultModel()}
	fmt.Println("\n40-relation cycle, level-partitioned across N devices:")
	var cost40 float64
	for _, ndev := range []int{1, 2, 4, 8} {
		cfg := full
		cfg.Devices = ndev
		start := time.Now()
		p, _, ms, err := gpusim.MPDPGPUMulti(cin, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cost40 = p.Cost
		fmt.Printf("  %d device(s): %9.0f ms simulated  (utilization %3.0f%%, %.1f ms real wall time)\n",
			ndev, ms.SimTimeMS, 100*ms.Utilization(), float64(time.Since(start).Microseconds())/1e3)
	}
	fmt.Printf("exact plan cost %.4g — the band the service router now serves exactly\n", cost40)
	fmt.Println("instead of heuristically (costing is output-sensitive, the lattice is modeled).")
}
