// Cross-algorithm equivalence: every exact enumerator — sequential,
// CPU-parallel and GPU-model — must return a plan of identical cost on the
// same query. The per-package tests check each algorithm against small
// oracles; this suite cross-checks the implementations against each other
// over a few hundred randomized queries, which is what catches enumerator
// divergence (a pruned pair one algorithm considers and another silently
// skips).
package repro

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/workload"
)

// gpuEquiv adapts a GPU-backend run to dp.Func for the lineup.
func gpuEquiv(devices int) dp.Func {
	cfg := gpusim.DefaultConfig()
	cfg.Devices = devices
	return func(in dp.Input) (*plan.Node, dp.Stats, error) {
		if devices <= 1 {
			p, st, _, err := gpusim.MPDPGPU(in, cfg)
			return p, st, err
		}
		p, st, _, err := gpusim.MPDPGPUMulti(in, cfg)
		return p, st, err
	}
}

// exactAlgs is the lineup under test; DPSize is the reference. The GPU
// rows cover both the single-device instrumented model and the
// multi-device scheduler (whose general-graph costing runs through the
// CCP stream), so the cross-backend equivalence of the service router's
// three exact substrates is enforced here.
var exactAlgs = []struct {
	name string
	f    dp.Func
}{
	{"DPSize", dp.DPSize},
	{"DPSub", dp.DPSub},
	{"DPCCP", dp.DPCCP},
	{"MPDP", dp.MPDP},
	{"PDP", parallel.PDP},
	{"DPE", parallel.DPE},
	{"MPDP-CPU", parallel.MPDP},
	{"MPDP-GPU", gpuEquiv(1)},
	{"MPDP-GPU-3dev", gpuEquiv(3)},
}

func TestExactAlgorithmsAgreeOnRandomizedQueries(t *testing.T) {
	const queriesPerShape = 50
	shapes := []workload.Kind{
		workload.KindChain, workload.KindCycle, workload.KindStar, workload.KindClique,
	}
	minN, maxN := 4, 14
	if testing.Short() {
		maxN = 9
	}
	span := maxN - minN + 1

	for _, kind := range shapes {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			for i := 0; i < queriesPerShape; i++ {
				n := minN + i%span
				if kind == workload.KindClique && n > 11 {
					// Clique enumeration is Theta(3^n); 11 keeps the
					// 50-query sweep fast while still crossing the
					// DPSub/DPCCP crossover the paper shows.
					n = 4 + i%8
				}
				seed := int64(i*1000 + n)
				q, err := workload.Generate(kind, n, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				if !checkAgreement(t, q, fmt.Sprintf("%s/n=%d/seed=%d", kind, n, seed)) {
					return // one divergence per shape is enough signal
				}
			}
		})
	}
}

func checkAgreement(t *testing.T, q *cost.Query, label string) bool {
	t.Helper()
	in := dp.Input{Q: q, M: cost.DefaultModel()}
	ref := 0.0
	ok := true
	for i, alg := range exactAlgs {
		p, _, err := alg.f(in)
		if err != nil {
			t.Errorf("%s: %s failed: %v", label, alg.name, err)
			return false
		}
		if err := p.Validate(identityPerm(q.N())); err != nil {
			t.Errorf("%s: %s produced an invalid plan: %v", label, alg.name, err)
			ok = false
		}
		if i == 0 {
			ref = p.Cost
			continue
		}
		if !costEq(p.Cost, ref) {
			t.Errorf("%s: %s cost %.10g != %s cost %.10g",
				label, alg.name, p.Cost, exactAlgs[0].name, ref)
			ok = false
		}
	}
	return ok
}

// costEq compares plan costs with a tiny relative tolerance: equal-cost
// plans built in different association orders can differ in the last float
// bits.
func costEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
