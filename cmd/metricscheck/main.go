// Command metricscheck is the CI gate for the /metrics endpoints: it
// fetches a Prometheus text exposition body from a URL (or reads stdin when
// the URL is "-"), fails on any malformed line, and fails unless every
// metric family named as a further argument is present.
//
// Usage:
//
//	metricscheck http://127.0.0.1:8080/metrics mpdp_requests_total mpdp_request_seconds
//	curl -s localhost:8080/metrics | metricscheck - mpdp_inflight
//
// Exit status 0 means the body parsed cleanly and all required families
// were found; anything else prints the first problem and exits 1.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck <url|-> [required_family ...]")
		os.Exit(2)
	}
	body, err := fetch(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
	families, err := obs.ValidateExposition(body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck: malformed exposition:", err)
		os.Exit(1)
	}
	missing := 0
	for _, want := range os.Args[2:] {
		if !families[want] {
			fmt.Fprintf(os.Stderr, "metricscheck: missing family %s\n", want)
			missing++
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("metricscheck: ok (%d families)\n", len(families))
}

func fetch(src string) (string, error) {
	if src == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(src)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", src, resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	return string(b), err
}
