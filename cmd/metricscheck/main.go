// Command metricscheck is the CI gate for the /metrics endpoints: it
// fetches a Prometheus text exposition body from a URL (or reads stdin when
// the URL is "-"), fails on any malformed line, and fails unless every
// required metric family is present.
//
// The required list is not hand-kept. With -scope, metricscheck derives it
// from the source tree using the same literal-registration extraction the
// metricnames analyzer in internal/analysis enforces, so the gate tracks
// the code automatically: registering a new mpdp_* family in a scoped
// directory makes it required here with no CI edit, and deleting one from
// the code shrinks the list instead of failing on a stale name.
//
// Usage:
//
//	metricscheck -scope serve http://127.0.0.1:8080/metrics
//	metricscheck -scope cluster http://127.0.0.1:8095/metrics
//	curl -s localhost:8080/metrics | metricscheck - mpdp_inflight
//
// Scopes map to the directories that register families on that endpoint:
// "serve" covers internal/service; "cluster" covers internal/cluster, which
// registers the mpdp_cluster_*, mpdp_transport_*, and rolled-up service
// families its exposition carries. Positional family names after the URL
// are required in addition to any derived list. -source overrides module
// root discovery (the default walks up from the working directory to
// go.mod, so `go run ./cmd/metricscheck` works from a checkout).
//
// Exit status 0 means the body parsed cleanly and all required families
// were found; anything else prints the first problem and exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/obs"
)

// scopeDirs maps each -scope value to the directories (relative to the
// module root) whose literal registrations feed that endpoint's exposition.
var scopeDirs = map[string][]string{
	"serve":   {"internal/service"},
	"cluster": {"internal/cluster"},
}

func main() {
	scope := flag.String("scope", "", "derive required families from source: serve|cluster")
	source := flag.String("source", "", "module root to extract from (default: discovered via go.mod)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-scope serve|cluster] [-source dir] <url|-> [required_family ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	required := append([]string(nil), flag.Args()[1:]...)
	if *scope != "" {
		derived, err := deriveFamilies(*scope, *source)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metricscheck:", err)
			os.Exit(1)
		}
		required = append(required, derived...)
	}

	body, err := fetch(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
	families, err := obs.ValidateExposition(body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck: malformed exposition:", err)
		os.Exit(1)
	}
	missing := 0
	for _, want := range required {
		if !families[want] {
			fmt.Fprintf(os.Stderr, "metricscheck: missing family %s\n", want)
			missing++
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("metricscheck: ok (%d families, %d required)\n", len(families), len(required))
}

// deriveFamilies extracts the scope's registered family names from source.
func deriveFamilies(scope, source string) ([]string, error) {
	dirs, ok := scopeDirs[scope]
	if !ok {
		return nil, fmt.Errorf("unknown scope %q (want serve or cluster)", scope)
	}
	root := source
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		root, _, err = analysis.ModuleRoot(wd)
		if err != nil {
			return nil, err
		}
	}
	fams, err := analysis.ExtractMetricFamilies(root, dirs...)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names, nil
}

func fetch(src string) (string, error) {
	if src == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(src)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", src, resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	return string(b), err
}
