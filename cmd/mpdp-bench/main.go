// Command mpdp-bench regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints an aligned text table; see
// EXPERIMENTS.md for the mapping to the paper and the recorded outputs.
//
// Usage:
//
//	mpdp-bench -experiment fig6 -timeout 60s -queries 15
//	mpdp-bench -experiment all -timeout 5s -queries 2 -maxrels 20
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

var registry = []struct {
	name string
	run  func(ctx context.Context, w io.Writer, cfg experiments.Config) error
}{
	{"fig2", experiments.Fig2},
	{"fig4", experiments.Fig4},
	{"fig6", experiments.Fig6},
	{"fig7", experiments.Fig7},
	{"fig8", experiments.Fig8},
	{"fig9", experiments.Fig9},
	{"fig10", experiments.Fig10},
	{"fig11", experiments.Fig11},
	{"fig12", experiments.Fig12},
	{"fig13", experiments.Fig13},
	{"table1", experiments.Table1},
	{"table2", experiments.Table2},
	{"ablation", experiments.Ablation},
}

func main() {
	var (
		name    = flag.String("experiment", "all", "experiment to run (fig2, fig4, fig6-fig13, table1, table2, ablation, all)")
		timeout = flag.Duration("timeout", 10*time.Second, "per-optimization timeout (paper: 1m)")
		queries = flag.Int("queries", 3, "queries per (workload, size) cell (paper: 15 for fig9, 100 for tables)")
		threads = flag.Int("threads", runtime.GOMAXPROCS(0), "threads for parallel CPU algorithms (paper: 24)")
		seed    = flag.Int64("seed", 1, "workload generation seed")
		maxRels = flag.Int("maxrels", 0, "cap the largest query size (0 = paper scale)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Timeout: *timeout,
		Queries: *queries,
		Threads: *threads,
		Seed:    *seed,
		MaxRels: *maxRels,
	}

	ran := false
	for _, e := range registry {
		if *name != "all" && *name != e.name {
			continue
		}
		ran = true
		fmt.Printf("=== %s ===\n", e.name)
		if err := e.run(context.Background(), os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "mpdp-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "mpdp-bench: unknown experiment %q\n", *name)
		os.Exit(2)
	}
}
