// Command mpdp-explain generates one workload query, optimizes it with the
// selected algorithm and prints the chosen plan, its cost and the paper's
// instrumentation counters.
//
// Usage:
//
//	mpdp-explain -workload star -rels 15 -algorithm mpdp-gpu
//	mpdp-explain -workload musicbrainz -rels 20 -algorithm uniondp-mpdp -k 10
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sql"
	"repro/internal/workload"
)

func main() {
	var (
		kind    = flag.String("workload", "star", "workload family (star, snowflake, chain, cycle, clique, musicbrainz)")
		rels    = flag.Int("rels", 12, "number of relations")
		alg     = flag.String("algorithm", "auto", "optimizer (see core.Algorithms)")
		seed    = flag.Int64("seed", 1, "workload seed")
		timeout = flag.Duration("timeout", time.Minute, "optimization timeout")
		k       = flag.Int("k", 0, "sub-problem bound for IDP/UnionDP (0 = default 15)")
		threads = flag.Int("threads", 0, "CPU threads (0 = all)")
		sqlText = flag.String("sql", "", "optimize this SQL query against the MusicBrainz schema instead of a generated workload")
	)
	flag.Parse()

	var q *cost.Query
	if *sqlText != "" {
		bound, err := sql.Compile(*sqlText, sql.MusicBrainzSchema())
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpdp-explain:", err)
			os.Exit(2)
		}
		if bound.ImplicitEdges > 0 {
			fmt.Printf("equivalence classes added %d implicit join edges\n", bound.ImplicitEdges)
		}
		q = bound.Query
		*kind = "sql"
	} else {
		rng := rand.New(rand.NewSource(*seed))
		var err error
		q, err = workload.Generate(workload.Kind(*kind), *rels, rng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpdp-explain:", err)
			os.Exit(2)
		}
	}

	res, err := core.Optimize(context.Background(), q, core.Options{
		Algorithm: core.Algorithm(*alg),
		Timeout:   *timeout,
		K:         *k,
		Threads:   *threads,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpdp-explain:", err)
		os.Exit(1)
	}

	fmt.Printf("workload=%s rels=%d algorithm=%s\n", *kind, q.N(), *alg)
	fmt.Printf("plan cost: %.4g   output rows: %.4g\n", res.Plan.Cost, res.Plan.Rows)
	fmt.Printf("optimization wall time: %v\n", res.Elapsed)
	if res.GPU != nil {
		fmt.Printf("simulated GPU time: %.3f ms (%d kernels, %d candidate pairs, %d valid)\n",
			res.GPU.SimTimeMS, res.GPU.KernelLaunches, res.GPU.CandidatePairs, res.GPU.ValidPairs)
	}
	if res.Stats.Evaluated > 0 {
		fmt.Printf("counters: Evaluated=%d CCP=%d connected sets=%d\n",
			res.Stats.Evaluated, res.Stats.CCP, res.Stats.ConnectedSets)
	}
	fmt.Println()
	fmt.Print(core.Explain(q, res.Plan))
}
