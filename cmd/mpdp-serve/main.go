// Command mpdp-serve runs the optimizer as a service: a line protocol over
// stdin (default) or HTTP that accepts one SQL statement in the
// internal/sql dialect per line/request, binds it against the built-in
// MusicBrainz schema and answers with the chosen plan's cost, algorithm and
// cache status. See SERVICE.md for the protocol and the service design.
//
// Usage:
//
//	echo "SELECT * FROM artist a, release r ... WHERE ..." | mpdp-serve
//	mpdp-serve -http :8080 &
//	curl -d "SELECT ..." localhost:8080/optimize
//	curl localhost:8080/stats
//	curl localhost:8080/healthz
//
// In stdin mode, lines starting with # are ignored and the directive
// ".stats" prints the counters. In HTTP mode, SIGINT/SIGTERM shuts down
// gracefully: in-flight optimizations drain (bounded by -drain) before the
// service closes.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/sql"
)

// response is the wire format of one optimized statement.
type response struct {
	Relations int     `json:"relations"`
	Edges     int     `json:"edges"`
	Cost      float64 `json:"cost"`
	Rows      float64 `json:"rows"`
	Algorithm string  `json:"algorithm"`
	// Backend is the execution substrate that produced the plan (cpu-seq,
	// cpu-parallel, gpu, heuristic); cache hits report the original
	// optimization's backend.
	Backend   string  `json:"backend"`
	Shape     string  `json:"shape"`
	CacheHit  bool    `json:"cache_hit"`
	Coalesced bool    `json:"coalesced"`
	FellBack  bool    `json:"fell_back"`
	ElapsedUs float64 `json:"elapsed_us"`
	// GPUDevices/GPUSimMS carry the device work model when the GPU
	// backend produced the plan.
	GPUDevices int     `json:"gpu_devices,omitempty"`
	GPUSimMS   float64 `json:"gpu_sim_ms,omitempty"`
	Plan       string  `json:"plan,omitempty"`
}

type server struct {
	svc     *service.Service
	schema  sql.Schema
	explain bool
}

func (s *server) optimize(text string, explain bool) (*response, error) {
	bound, err := sql.Compile(text, s.schema)
	if err != nil {
		return nil, err
	}
	res, err := s.svc.Optimize(bound.Query)
	if err != nil {
		return nil, err
	}
	resp := &response{
		Relations: bound.Query.N(),
		Edges:     len(bound.Query.G.Edges),
		Cost:      res.Plan.Cost,
		Rows:      res.Plan.Rows,
		Algorithm: string(res.Algorithm),
		Backend:   string(res.Backend),
		Shape:     string(res.Shape),
		CacheHit:  res.CacheHit,
		Coalesced: res.Coalesced,
		FellBack:  res.FellBack,
		ElapsedUs: float64(res.Elapsed.Nanoseconds()) / 1e3,
	}
	if res.GPU != nil {
		resp.GPUDevices = res.GPU.Devices
		resp.GPUSimMS = res.GPU.SimTimeMS
	}
	if explain {
		resp.Plan = core.Explain(bound.Query, res.Plan)
	}
	return resp, nil
}

// maxStatementBytes bounds one SQL statement on either protocol.
const maxStatementBytes = 1 << 20

// readLine reads one newline-terminated line of at most maxStatementBytes.
// Longer lines are discarded to the next newline and reported as tooLong,
// so one oversized statement yields one error, not a dead server.
func readLine(r *bufio.Reader) (line string, tooLong bool, err error) {
	var b strings.Builder
	for {
		chunk, pref, err := r.ReadLine()
		if err != nil {
			return b.String(), false, err
		}
		if b.Len()+len(chunk) > maxStatementBytes {
			for pref {
				if _, pref, err = r.ReadLine(); err != nil {
					break
				}
			}
			return "", true, nil
		}
		b.Write(chunk)
		if !pref {
			return b.String(), false, nil
		}
	}
}

func (s *server) serveStdin(in io.Reader, out io.Writer) error {
	rd := bufio.NewReader(in)
	for {
		raw, tooLong, err := readLine(rd)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if tooLong {
			fmt.Fprintf(out, "error: statement exceeds %d bytes\n", maxStatementBytes)
			continue
		}
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case line == ".stats":
			fmt.Fprintln(out, s.svc.Counters().String())
			continue
		}
		resp, err := s.optimize(line, s.explain)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			continue
		}
		fmt.Fprintf(out, "cost=%.6g rows=%.6g rels=%d alg=%s backend=%s shape=%s hit=%v coalesced=%v elapsed=%.1fus\n",
			resp.Cost, resp.Rows, resp.Relations, resp.Algorithm, resp.Backend, resp.Shape,
			resp.CacheHit, resp.Coalesced, resp.ElapsedUs)
		if resp.Plan != "" {
			fmt.Fprint(out, resp.Plan)
		}
	}
}

func (s *server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST one SQL statement", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxStatementBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxStatementBytes {
		http.Error(w, fmt.Sprintf("statement exceeds %d bytes", maxStatementBytes),
			http.StatusRequestEntityTooLarge)
		return
	}
	resp, err := s.optimize(string(body), r.URL.Query().Get("explain") != "")
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, s.svc.Counters().String())
	io.WriteString(w, "\n")
}

// handleHealthz is the liveness probe load balancers and the cluster's
// health checker poll.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// mux wires the HTTP surface; split out of main so tests can drive the
// handlers through httptest.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", s.handleOptimize)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func main() {
	var (
		httpAddr   = flag.String("http", "", "serve HTTP on this address instead of stdin (e.g. :8080)")
		cacheCap   = flag.Int("cache", 0, "plan cache capacity in entries (0 = 4096)")
		shards     = flag.Int("shards", 0, "plan cache shard count (0 = 16)")
		workers    = flag.Int("workers", 0, "optimization workers (0 = GOMAXPROCS)")
		threads    = flag.Int("threads", 0, "CPU threads per optimization (0 = all)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-query optimization budget")
		k          = flag.Int("k", 0, "sub-problem bound for IDP2/UnionDP (0 = 15)")
		gpuDevices = flag.Int("gpu-devices", 0, "simulated GPU device count (0 = 2)")
		crossover  = flag.String("crossover", "", "JSON file with backend-crossover thresholds (empty = calibrated defaults)")
		explain    = flag.Bool("explain", false, "print the full plan tree in stdin mode")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	)
	flag.Parse()

	var xover *backend.Crossover
	if *crossover != "" {
		x, err := backend.LoadCrossover(*crossover)
		if err != nil {
			log.Fatal(err)
		}
		xover = &x
	}
	svc := service.New(service.Config{
		CacheShards:   *shards,
		CacheCapacity: *cacheCap,
		Workers:       *workers,
		Threads:       *threads,
		Timeout:       *timeout,
		K:             *k,
		Crossover:     xover,
		GPU:           backend.GPUConfig{Devices: *gpuDevices},
	})
	defer svc.Close()
	expvar.Publish("optimizer", svc.Counters())

	srv := &server{svc: svc, schema: sql.MusicBrainzSchema(), explain: *explain}

	if *httpAddr == "" {
		if err := srv.serveStdin(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	// SIGINT/SIGTERM drains in-flight optimizations instead of dropping
	// them: Shutdown stops accepting, waits for active handlers up to the
	// drain budget, then the deferred svc.Close releases the worker pool.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *httpAddr, Handler: srv.mux()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("mpdp-serve: listening on %s (POST /optimize, GET /stats /healthz)", *httpAddr)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("mpdp-serve: signal received, draining in-flight requests (budget %v)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("mpdp-serve: drain incomplete: %v", err)
		}
	}
}
