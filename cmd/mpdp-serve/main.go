// Command mpdp-serve runs the optimizer as a service: a line protocol over
// stdin (default) or the shared versioned HTTP surface (internal/httpapi)
// that accepts one SQL statement in the internal/sql dialect per
// line/request, binds it against the built-in MusicBrainz schema and
// answers with the chosen plan's cost, algorithm and cache status. See
// SERVICE.md for the protocol and API.md for the wire spec.
//
// Usage:
//
//	echo "SELECT * FROM artist a, release r ... WHERE ..." | mpdp-serve
//	mpdp-serve -http :8080 &
//	curl -d "SELECT ..." localhost:8080/v1/optimize
//	curl -d '{"statements":["SELECT ..."]}' -H 'Content-Type: application/json' localhost:8080/v1/batch
//	curl localhost:8080/v1/stats
//	curl localhost:8080/v1/healthz
//	curl localhost:8080/v1/cache                  # cache summary + hottest entries
//	curl -X DELETE localhost:8080/v1/cache/$FP    # drop one plan + its subplans
//	curl -X POST localhost:8080/v1/cache/flush
//	curl -X POST -H 'Content-Type: application/json' \
//	  -d '{"relations":[{"name":"release","rows":21000000}]}' \
//	  localhost:8080/v1/catalog/stats             # bump stats epoch, no flush
//
// The pre-versioning endpoints (/optimize, /stats, /healthz) remain as
// aliases of the same handlers. In stdin mode, lines starting with # are
// ignored and the directive ".stats" prints the counters. In HTTP mode,
// SIGINT/SIGTERM shuts down gracefully: in-flight optimizations drain
// (bounded by -drain) before the service closes, and a client that
// disconnects mid-request cancels its in-flight optimization.
package main

import (
	"bufio"
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/sql"
)

// maxStatementBytes bounds one SQL statement on either protocol.
const maxStatementBytes = 1 << 20

// stdinServer drives the line protocol; the HTTP surface is the shared
// internal/httpapi mux.
type stdinServer struct {
	svc     *service.Service
	schema  sql.Schema
	explain bool
}

// readLine reads one newline-terminated line of at most maxStatementBytes.
// Longer lines are discarded to the next newline and reported as tooLong,
// so one oversized statement yields one error, not a dead server.
func readLine(r *bufio.Reader) (line string, tooLong bool, err error) {
	var b strings.Builder
	for {
		chunk, pref, err := r.ReadLine()
		if err != nil {
			return b.String(), false, err
		}
		if b.Len()+len(chunk) > maxStatementBytes {
			for pref {
				if _, pref, err = r.ReadLine(); err != nil {
					break
				}
			}
			return "", true, nil
		}
		b.Write(chunk)
		if !pref {
			return b.String(), false, nil
		}
	}
}

func (s *stdinServer) serveStdin(in io.Reader, out io.Writer) error {
	rd := bufio.NewReader(in)
	for {
		raw, tooLong, err := readLine(rd)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if tooLong {
			fmt.Fprintf(out, "error: statement exceeds %d bytes\n", maxStatementBytes)
			continue
		}
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case line == ".stats":
			fmt.Fprintln(out, s.svc.Counters().String())
			continue
		}
		bound, err := sql.Compile(line, s.schema)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			continue
		}
		res, err := s.svc.Optimize(context.Background(), bound.Query)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			continue
		}
		fmt.Fprintf(out, "cost=%.6g rows=%.6g rels=%d alg=%s backend=%s shape=%s hit=%v coalesced=%v elapsed=%.1fus\n",
			res.Plan.Cost, res.Plan.Rows, bound.Query.N(), res.Algorithm, res.Backend, res.Shape,
			res.CacheHit, res.Coalesced, float64(res.Elapsed.Nanoseconds())/1e3)
		if s.explain {
			fmt.Fprint(out, core.Explain(bound.Query, res.Plan))
		}
	}
}

func main() {
	var (
		httpAddr   = flag.String("http", "", "serve HTTP on this address instead of stdin (e.g. :8080)")
		cacheCap   = flag.Int("cache", 0, "plan cache capacity in entries (0 = 4096)")
		shards     = flag.Int("shards", 0, "plan cache shard count (0 = 16)")
		workers    = flag.Int("workers", 0, "optimization workers (0 = GOMAXPROCS)")
		threads    = flag.Int("threads", 0, "CPU threads per optimization (0 = all)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-query optimization budget")
		k          = flag.Int("k", 0, "sub-problem bound for IDP2/UnionDP (0 = 15)")
		gpuDevices = flag.Int("gpu-devices", 0, "simulated GPU device count (0 = 2)")
		crossover  = flag.String("crossover", "", "JSON file with backend-crossover thresholds (empty = calibrated defaults)")
		explain    = flag.Bool("explain", false, "print the full plan tree in stdin mode")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
		queueDepth = flag.Int("queue-depth", 0, "admission queue depth (0 = 4x workers)")
		queueWait  = flag.Duration("queue-wait", 250*time.Millisecond, "max wait for a queue slot before shedding with 503 (0 = block indefinitely, <0 = shed immediately)")
		nodeRate   = flag.Float64("node-rate", 0, "admitted requests/sec for this instance, 0 = uncapped")
		quotaRate  = flag.Float64("quota-rate", 0, "per-tenant requests/sec quota on HTTP endpoints, 0 = disabled")
		quotaBurst = flag.Float64("quota-burst", 0, "per-tenant quota burst (0 = quota-rate/4, min 1)")
		slowMS     = flag.Float64("slow-query-ms", 0, "log requests slower than this many ms as JSON lines (0 = off; the /v1/debug/slow ring is always on)")
		slowPath   = flag.String("slow-query-log", "", "slow-query log destination (empty = stderr)")
		debugAddr  = flag.String("debug-addr", "", "serve pprof and expvar on this separate address (e.g. localhost:6060)")
	)
	flag.Parse()

	var xover *backend.Crossover
	if *crossover != "" {
		x, err := backend.LoadCrossover(*crossover)
		if err != nil {
			log.Fatal(err)
		}
		xover = &x
	}
	slowCfg, closeSlow, err := httpapi.SlowConfigFromFlags(*slowMS, *slowPath)
	if err != nil {
		log.Fatal(err)
	}
	defer closeSlow()
	svc := service.New(service.Config{
		CacheShards:   *shards,
		CacheCapacity: *cacheCap,
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		Threads:       *threads,
		Timeout:       *timeout,
		K:             *k,
		Crossover:     xover,
		GPU:           backend.GPUConfig{Devices: *gpuDevices},
		Admission: service.Admission{
			MaxQueueWait: *queueWait,
			RatePerSec:   *nodeRate,
		},
		Slow: slowCfg,
	})
	defer svc.Close()
	expvar.Publish("optimizer", svc.Counters())
	httpapi.StartDebugServer(*debugAddr)

	if *httpAddr == "" {
		srv := &stdinServer{svc: svc, schema: sql.MusicBrainzSchema(), explain: *explain}
		if err := srv.serveStdin(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	api := httpapi.New(httpapi.ServiceEngine(svc), httpapi.Options{
		MaxStatementBytes: maxStatementBytes,
		Quota: httpapi.QuotaConfig{
			RatePerSec: *quotaRate,
			Burst:      *quotaBurst,
		},
	})
	api.Handle("/debug/vars", expvar.Handler())

	// SIGINT/SIGTERM drains in-flight optimizations instead of dropping
	// them: Shutdown stops accepting, waits for active handlers up to the
	// drain budget, then the deferred svc.Close releases the worker pool.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *httpAddr, Handler: api.Mux()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("mpdp-serve: listening on %s (POST /v1/optimize /v1/batch /v1/cache/flush /v1/catalog/stats, GET /v1/stats /v1/healthz /v1/cache /metrics /v1/debug/slow, DELETE /v1/cache/{fp}; legacy aliases kept)", *httpAddr)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("mpdp-serve: signal received, draining in-flight requests (budget %v)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("mpdp-serve: drain incomplete: %v", err)
		}
	}
}
