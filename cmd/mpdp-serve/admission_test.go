package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/httpapi"
	"repro/internal/service"
)

// postStatement sends testStatement with optional extra headers and returns
// the response.
func postStatement(t *testing.T, url string, headers map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/optimize", strings.NewReader(testStatement))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeRetryable layers the Retry-After checks over decodeEnvelope: every
// retryable envelope must carry both the header and the machine-readable
// retry_after_ms hint.
func decodeRetryable(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
	t.Helper()
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("retryable %s response lacks a positive Retry-After header (got %q)", wantCode, ra)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var e httpapi.Error
	if err := json.Unmarshal(body, &e); err == nil {
		if e.RetryAfterMS <= 0 {
			t.Errorf("retryable %s envelope lacks retry_after_ms: %s", wantCode, body)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	decodeEnvelope(t, resp, wantStatus, wantCode)
}

// TestV1OverloadedReturns503WithRetryAfter is the golden shed envelope: a
// service whose admission rate cap is exhausted answers 503 overloaded with
// a Retry-After hint, and the X-Request-Id echo survives the shed path.
func TestV1OverloadedReturns503WithRetryAfter(t *testing.T) {
	// Rate 0.001/s with the default burst floor of 1 admits exactly one
	// request; refill over the test's lifetime is negligible.
	svc := service.New(service.Config{
		Workers:   1,
		Admission: service.Admission{RatePerSec: 0.001},
	})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(httpapi.New(httpapi.ServiceEngine(svc), httpapi.Options{}).Mux())
	t.Cleanup(ts.Close)

	resp := postStatement(t, ts.URL, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("burst-funded request status = %d, want 200", resp.StatusCode)
	}

	resp = postStatement(t, ts.URL, map[string]string{"X-Request-Id": "shed-probe-1"})
	decodeRetryable(t, resp, http.StatusServiceUnavailable, httpapi.CodeOverloaded)
	if got := resp.Header.Get("X-Request-Id"); got != "shed-probe-1" {
		t.Errorf("X-Request-Id echo lost on shed path: got %q", got)
	}

	snap := svc.Counters().Snapshot()
	if snap.Shed < 1 {
		t.Errorf("shed counter = %d, want >= 1", snap.Shed)
	}
	if snap.Errors != 0 {
		t.Errorf("errors counter = %d, want 0 (a shed is not an error)", snap.Errors)
	}
}

// TestV1QuotaExhaustionIsolatesTenants: tenant A burning its quota gets 429
// quota_exceeded + Retry-After while tenant B sails through, and /v1/stats
// grows a quota section.
func TestV1QuotaExhaustionIsolatesTenants(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	t.Cleanup(svc.Close)
	api := httpapi.New(httpapi.ServiceEngine(svc), httpapi.Options{
		// Burst floor 1: each tenant gets exactly one request.
		Quota: httpapi.QuotaConfig{RatePerSec: 0.001},
	})
	ts := httptest.NewServer(api.Mux())
	t.Cleanup(ts.Close)

	resp := postStatement(t, ts.URL, map[string]string{"X-Tenant": "tenant-a"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant-a first request status = %d, want 200", resp.StatusCode)
	}

	resp = postStatement(t, ts.URL, map[string]string{"X-Tenant": "tenant-a", "X-Request-Id": "quota-probe-1"})
	decodeRetryable(t, resp, http.StatusTooManyRequests, httpapi.CodeQuotaExceeded)
	if got := resp.Header.Get("X-Request-Id"); got != "quota-probe-1" {
		t.Errorf("X-Request-Id echo lost on quota path: got %q", got)
	}

	// Tenant B has its own bucket: unaffected by A's exhaustion.
	resp = postStatement(t, ts.URL, map[string]string{"X-Tenant": "tenant-b"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant-b status = %d, want 200 (quota must isolate tenants)", resp.StatusCode)
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Quota *struct {
			Tenants int    `json:"tenants"`
			Denied  uint64 `json:"denied"`
		} `json:"quota"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatalf("/v1/stats is not JSON: %v", err)
	}
	if stats.Quota == nil {
		t.Fatal("/v1/stats lacks the quota section with quotas enabled")
	}
	if stats.Quota.Tenants != 2 || stats.Quota.Denied < 1 {
		t.Errorf("quota section = %+v, want 2 tenants and >= 1 denial", *stats.Quota)
	}
}

// TestBatchChargesQuotaPerStatement closes the batching loophole: a batch
// of N statements costs N tokens, so a 2-statement batch against a 1-token
// bucket is rejected whole.
func TestBatchChargesQuotaPerStatement(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	t.Cleanup(svc.Close)
	api := httpapi.New(httpapi.ServiceEngine(svc), httpapi.Options{
		Quota: httpapi.QuotaConfig{RatePerSec: 0.001},
	})
	ts := httptest.NewServer(api.Mux())
	t.Cleanup(ts.Close)

	body := `{"statements":[` + jsonString(testStatement) + `,` + jsonString(testStatement) + `]}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", "batcher")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusTooManyRequests, httpapi.CodeQuotaExceeded)
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
