package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/backend"
	"repro/internal/service"
	"repro/internal/sql"
	"repro/internal/workload"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	t.Cleanup(svc.Close)
	srv := &server{svc: svc, schema: sql.MusicBrainzSchema()}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

const testStatement = "SELECT r.id FROM release r, release_group rg, artist_credit ac " +
	"WHERE r.release_group = rg.id AND r.artist_credit = ac.id AND rg.artist_credit = ac.id"

func TestOptimizeRejectsNonPOST(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /optimize = %d, want %d", resp.StatusCode, http.StatusMethodNotAllowed)
	}
}

func TestOptimizeRejectsOversizedStatement(t *testing.T) {
	_, ts := newTestServer(t)
	huge := strings.Repeat("x", maxStatementBytes+1)
	resp, err := http.Post(ts.URL+"/optimize", "text/plain", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized statement = %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
}

func TestOptimizeRejectsParseError(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/optimize", "text/plain", strings.NewReader("SELECT FROM WHERE"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("parse error = %d, want %d", resp.StatusCode, http.StatusUnprocessableEntity)
	}
}

func TestOptimizeHappyPathJSONShape(t *testing.T) {
	_, ts := newTestServer(t)
	post := func() response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/optimize", "text/plain", strings.NewReader(testStatement))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q, want application/json", ct)
		}
		var r response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatalf("response is not JSON: %v", err)
		}
		return r
	}

	cold := post()
	if cold.Relations != 3 || cold.Edges != 3 {
		t.Errorf("relations/edges = %d/%d, want 3/3", cold.Relations, cold.Edges)
	}
	if cold.Cost <= 0 || cold.Rows <= 0 {
		t.Errorf("cost/rows = %g/%g, want positive", cold.Cost, cold.Rows)
	}
	if cold.Algorithm == "" || cold.Shape == "" {
		t.Errorf("algorithm/shape empty: %+v", cold)
	}
	if cold.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if cold.Plan != "" {
		t.Errorf("plan rendered without explain: %q", cold.Plan)
	}

	warm := post()
	if !warm.CacheHit {
		t.Error("repeat request missed the cache")
	}
	if warm.Cost != cold.Cost {
		t.Errorf("warm cost %g != cold cost %g", warm.Cost, cold.Cost)
	}
}

// expvarSeq makes each published test var unique: the expvar registry is
// global and panics on duplicate names, including across -count=N reruns
// of this test in one process.
var expvarSeq atomic.Int64

// TestLargeCyclicQueryServedExactlyByGPU is the serving-layer acceptance
// criterion of the GPU backend: a 40-relation cyclic statement POSTed to
// /optimize comes back as an exact GPU plan — not a heuristic fallback —
// with the backend identified in the response, and /debug/vars (expvar)
// reports the GPU route.
func TestLargeCyclicQueryServedExactlyByGPU(t *testing.T) {
	svc := service.New(service.Config{Workers: 2, GPU: backend.GPUConfig{Devices: 2}})
	t.Cleanup(svc.Close)
	varName := fmt.Sprintf("optimizer-gpu-test-%d", expvarSeq.Add(1))
	expvar.Publish(varName, svc.Counters())
	srv := &server{svc: svc, schema: sql.MusicBrainzSchema()}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/optimize", "text/plain", strings.NewReader(workload.CycleSQL(40)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var r response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Relations != 40 || r.Edges != 40 {
		t.Errorf("relations/edges = %d/%d, want 40/40 (an exact cycle)", r.Relations, r.Edges)
	}
	if r.Shape != "general" {
		t.Errorf("shape = %q, want general (cyclic)", r.Shape)
	}
	if r.Backend != string(backend.GPU) || r.Algorithm != "mpdp-gpu" {
		t.Errorf("served by %s on %s, want mpdp-gpu on gpu", r.Algorithm, r.Backend)
	}
	if r.FellBack {
		t.Error("40-relation cycle fell back to a heuristic; want exact GPU plan")
	}
	if r.GPUDevices != 2 || r.GPUSimMS <= 0 {
		t.Errorf("device work model missing: devices=%d sim=%gms", r.GPUDevices, r.GPUSimMS)
	}
	if r.Cost <= 0 {
		t.Errorf("cost = %g, want positive", r.Cost)
	}

	// /debug/vars must expose the per-backend counters.
	dresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(dresp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var optimizer service.Snapshot
	if err := json.Unmarshal(vars[varName], &optimizer); err != nil {
		t.Fatalf("/debug/vars[%s]: %v", varName, err)
	}
	if optimizer.RouteMPDPGPU != 1 {
		t.Errorf("/debug/vars route_mpdp_gpu = %d, want 1", optimizer.RouteMPDPGPU)
	}
	gpu := optimizer.Backends[string(backend.GPU)]
	if gpu.Routed != 1 || gpu.Served != 1 || gpu.Fallbacks != 0 {
		t.Errorf("/debug/vars gpu backend counters %+v, want routed=1 served=1 fallbacks=0", gpu)
	}

	// /stats carries the same per-backend breakdown.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap service.Snapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatalf("/stats is not JSON: %v", err)
	}
	if snap.Backends[string(backend.GPU)].Served != 1 {
		t.Errorf("/stats gpu served = %d, want 1", snap.Backends[string(backend.GPU)].Served)
	}
}

func TestOptimizeExplainIncludesPlan(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/optimize?explain=1", "text/plain", strings.NewReader(testStatement))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Plan == "" {
		t.Error("explain=1 response has no plan")
	}
}

func TestStatsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("/stats is not JSON: %v", err)
	}
	resp.Body.Close()
	if _, ok := stats["requests"]; !ok {
		t.Errorf("/stats lacks requests: %v", stats)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("/healthz is not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("/healthz = %d %q, want 200 ok", resp.StatusCode, health.Status)
	}
}
