package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/backend"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/workload"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	t.Cleanup(svc.Close)
	api := httpapi.New(httpapi.ServiceEngine(svc), httpapi.Options{MaxStatementBytes: maxStatementBytes})
	ts := httptest.NewServer(api.Mux())
	t.Cleanup(ts.Close)
	return ts
}

const testStatement = "SELECT r.id FROM release r, release_group rg, artist_credit ac " +
	"WHERE r.release_group = rg.id AND r.artist_credit = ac.id AND rg.artist_credit = ac.id"

// decodeEnvelope asserts the body is the structured error envelope with
// the expected code and a request id.
func decodeEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Errorf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	var e httpapi.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not an envelope: %v", err)
	}
	if e.Code != wantCode {
		t.Errorf("code = %q, want %q", e.Code, wantCode)
	}
	if e.Message == "" || e.RequestID == "" {
		t.Errorf("envelope incomplete: %+v", e)
	}
	if hdr := resp.Header.Get("X-Request-Id"); hdr != e.RequestID {
		t.Errorf("X-Request-Id header %q != envelope request_id %q", hdr, e.RequestID)
	}
}

// TestV1ErrorEnvelopes is the golden error-path suite of the satellite
// task: every failure class on both /v1/optimize and its legacy alias
// answers with the structured envelope and the right status.
func TestV1ErrorEnvelopes(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/v1/optimize", "/optimize"} {
		t.Run(path, func(t *testing.T) {
			// 405
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			decodeEnvelope(t, resp, http.StatusMethodNotAllowed, httpapi.CodeMethodNotAllowed)

			// 400: malformed JSON body
			resp, err = http.Post(ts.URL+path, "application/json", strings.NewReader("{not json"))
			if err != nil {
				t.Fatal(err)
			}
			decodeEnvelope(t, resp, http.StatusBadRequest, httpapi.CodeBadRequest)

			// 413: oversized statement
			huge := strings.Repeat("x", maxStatementBytes+1)
			resp, err = http.Post(ts.URL+path, "text/plain", strings.NewReader(huge))
			if err != nil {
				t.Fatal(err)
			}
			decodeEnvelope(t, resp, http.StatusRequestEntityTooLarge, httpapi.CodeTooLarge)

			// 422: parse error
			resp, err = http.Post(ts.URL+path, "text/plain", strings.NewReader("SELECT FROM WHERE"))
			if err != nil {
				t.Fatal(err)
			}
			decodeEnvelope(t, resp, http.StatusUnprocessableEntity, httpapi.CodeInvalidQuery)
		})
	}
}

// TestV1ClosedServiceReturns503 covers the unavailable envelope.
func TestV1ClosedServiceReturns503(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	api := httpapi.New(httpapi.ServiceEngine(svc), httpapi.Options{})
	ts := httptest.NewServer(api.Mux())
	t.Cleanup(ts.Close)
	svc.Close()
	resp, err := http.Post(ts.URL+"/v1/optimize", "text/plain", strings.NewReader(testStatement))
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusServiceUnavailable, httpapi.CodeUnavailable)
}

// TestLegacyAliasEquivalence pins the satellite requirement that the
// legacy endpoints are the same handlers: identical JSON key sets and
// identical stable field values on /optimize vs /v1/optimize.
func TestLegacyAliasEquivalence(t *testing.T) {
	ts := newTestServer(t)
	post := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(testStatement))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	legacy := post("/optimize")
	v1 := post("/v1/optimize")
	for k := range legacy {
		if _, ok := v1[k]; !ok {
			t.Errorf("legacy key %q missing from /v1/optimize", k)
		}
	}
	for k := range v1 {
		if _, ok := legacy[k]; !ok && k != "cache_hit" {
			t.Errorf("/v1 key %q missing from legacy response", k)
		}
	}
	for _, k := range []string{"relations", "edges", "cost", "rows", "algorithm", "backend", "shape", "fingerprint"} {
		if legacy[k] != v1[k] {
			t.Errorf("field %q: legacy %v != v1 %v", k, legacy[k], v1[k])
		}
	}
	if v1["cache_hit"] != true {
		t.Errorf("second request through the alias pair missed the cache")
	}
}

func TestOptimizeHappyPathJSONShape(t *testing.T) {
	ts := newTestServer(t)
	post := func() httpapi.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/optimize", "text/plain", strings.NewReader(testStatement))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q, want application/json", ct)
		}
		var r httpapi.Response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatalf("response is not JSON: %v", err)
		}
		return r
	}

	cold := post()
	if cold.Relations != 3 || cold.Edges != 3 {
		t.Errorf("relations/edges = %d/%d, want 3/3", cold.Relations, cold.Edges)
	}
	if cold.Cost <= 0 || cold.Rows <= 0 {
		t.Errorf("cost/rows = %g/%g, want positive", cold.Cost, cold.Rows)
	}
	if cold.Algorithm == "" || cold.Shape == "" || cold.Fingerprint == "" {
		t.Errorf("algorithm/shape/fingerprint empty: %+v", cold)
	}
	if cold.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if cold.Plan != "" {
		t.Errorf("plan rendered without explain: %q", cold.Plan)
	}
	if cold.Node != "" || cold.Failover {
		t.Errorf("single-node response carries cluster fields: %+v", cold)
	}

	warm := post()
	if !warm.CacheHit {
		t.Error("repeat request missed the cache")
	}
	if warm.Cost != cold.Cost {
		t.Errorf("warm cost %g != cold cost %g", warm.Cost, cold.Cost)
	}
	if warm.Fingerprint != cold.Fingerprint {
		t.Errorf("fingerprint changed between identical requests")
	}
}

// expvarSeq makes each published test var unique: the expvar registry is
// global and panics on duplicate names, including across -count=N reruns
// of this test in one process.
var expvarSeq atomic.Int64

// TestLargeCyclicQueryServedExactlyByGPU is the serving-layer acceptance
// criterion of the GPU backend: a 40-relation cyclic statement POSTed to
// /v1/optimize comes back as an exact GPU plan — not a heuristic fallback —
// with the backend identified in the response, and /debug/vars (expvar)
// reports the GPU route.
func TestLargeCyclicQueryServedExactlyByGPU(t *testing.T) {
	svc := service.New(service.Config{Workers: 2, GPU: backend.GPUConfig{Devices: 2}})
	t.Cleanup(svc.Close)
	varName := fmt.Sprintf("optimizer-gpu-test-%d", expvarSeq.Add(1))
	expvar.Publish(varName, svc.Counters())
	api := httpapi.New(httpapi.ServiceEngine(svc), httpapi.Options{})
	api.Handle("/debug/vars", expvar.Handler())
	ts := httptest.NewServer(api.Mux())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/optimize", "text/plain", strings.NewReader(workload.CycleSQL(40)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var r httpapi.Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Relations != 40 || r.Edges != 40 {
		t.Errorf("relations/edges = %d/%d, want 40/40 (an exact cycle)", r.Relations, r.Edges)
	}
	if r.Shape != "general" {
		t.Errorf("shape = %q, want general (cyclic)", r.Shape)
	}
	if r.Backend != string(backend.GPU) || r.Algorithm != "mpdp-gpu" {
		t.Errorf("served by %s on %s, want mpdp-gpu on gpu", r.Algorithm, r.Backend)
	}
	if r.FellBack {
		t.Error("40-relation cycle fell back to a heuristic; want exact GPU plan")
	}
	if r.GPUDevices != 2 || r.GPUSimMS <= 0 {
		t.Errorf("device work model missing: devices=%d sim=%gms", r.GPUDevices, r.GPUSimMS)
	}
	if r.Cost <= 0 {
		t.Errorf("cost = %g, want positive", r.Cost)
	}

	// /debug/vars must expose the per-backend counters.
	dresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(dresp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var optimizer service.Snapshot
	if err := json.Unmarshal(vars[varName], &optimizer); err != nil {
		t.Fatalf("/debug/vars[%s]: %v", varName, err)
	}
	if optimizer.RouteMPDPGPU != 1 {
		t.Errorf("/debug/vars route_mpdp_gpu = %d, want 1", optimizer.RouteMPDPGPU)
	}
	gpu := optimizer.Backends[string(backend.GPU)]
	if gpu.Routed != 1 || gpu.Served != 1 || gpu.Fallbacks != 0 {
		t.Errorf("/debug/vars gpu backend counters %+v, want routed=1 served=1 fallbacks=0", gpu)
	}

	// /v1/stats carries the same per-backend breakdown.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap service.Snapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatalf("/v1/stats is not JSON: %v", err)
	}
	if snap.Backends[string(backend.GPU)].Served != 1 {
		t.Errorf("/v1/stats gpu served = %d, want 1", snap.Backends[string(backend.GPU)].Served)
	}
}

func TestOptimizeExplainIncludesPlan(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/v1/optimize?explain=1", "/v1/explain"} {
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(testStatement))
		if err != nil {
			t.Fatal(err)
		}
		var r httpapi.Response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if r.Plan == "" {
			t.Errorf("%s response has no plan", path)
		}
	}
}

func TestStatsAndHealthz(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/v1/stats", "/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var stats map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatalf("%s is not JSON: %v", path, err)
		}
		resp.Body.Close()
		if _, ok := stats["requests"]; !ok {
			t.Errorf("%s lacks requests: %v", path, stats)
		}
		if _, ok := stats["canceled"]; !ok {
			t.Errorf("%s lacks canceled counter: %v", path, stats)
		}
	}

	for _, path := range []string{"/v1/healthz", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatalf("%s is not JSON: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || health.Status != "ok" {
			t.Errorf("%s = %d %q, want 200 ok", path, resp.StatusCode, health.Status)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	body := fmt.Sprintf(`{"statements":[%q,%q]}`, testStatement, workload.CycleSQL(10))
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var br httpapi.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("batch results = %d, want 2", len(br.Results))
	}
	for i, item := range br.Results {
		if item.Error != nil {
			t.Errorf("batch item %d failed: %+v", i, item.Error)
			continue
		}
		if item.Response == nil || item.Response.Cost <= 0 {
			t.Errorf("batch item %d has no valid response", i)
		}
	}
}
