// Command mpdp-cluster runs an N-node optimizer cluster behind one HTTP
// front door. Each node is a full optimizer-as-a-service instance
// (internal/service); the front door consistent-hashes every statement's
// canonical join-graph fingerprint to an owner node plus replicas, so
// isomorphic queries from any client warm and reuse the same plan-cache
// entry, and a node loss fails over to the replicas. See CLUSTER.md.
//
// Usage:
//
//	mpdp-cluster -http :8080 -nodes 4 -replicas 2 &
//	curl -d "SELECT ..." localhost:8080/optimize
//	curl localhost:8080/stats          # cluster + per-node counters
//	curl localhost:8080/cluster       # membership and ring summary
//	curl localhost:8080/healthz
//	curl -X POST "localhost:8080/cluster/kill?node=node-1"   # crash a node
//	curl -X POST "localhost:8080/cluster/revive?node=node-1" # bring it back
//	curl -X POST localhost:8080/cluster/add                  # grow the ring
//	curl -X POST localhost:8080/cluster/flush                # invalidate all plans
//
// SIGINT/SIGTERM drains in-flight requests (bounded by -drain) before the
// nodes close.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/sql"
)

// response is the wire format of one optimized statement: the single-node
// fields plus the routing information only a cluster has.
type response struct {
	Relations int     `json:"relations"`
	Edges     int     `json:"edges"`
	Cost      float64 `json:"cost"`
	Rows      float64 `json:"rows"`
	Algorithm string  `json:"algorithm"`
	// Backend is the execution substrate that produced the plan on the
	// serving node (cpu-seq, cpu-parallel, gpu, heuristic); replicated and
	// cache-hit plans keep their original backend.
	Backend   string  `json:"backend"`
	Shape     string  `json:"shape"`
	CacheHit  bool    `json:"cache_hit"`
	Coalesced bool    `json:"coalesced"`
	FellBack  bool    `json:"fell_back"`
	ElapsedUs float64 `json:"elapsed_us"`
	// GPUDevices/GPUSimMS carry the device work model when the GPU
	// backend produced the plan.
	GPUDevices int     `json:"gpu_devices,omitempty"`
	GPUSimMS   float64 `json:"gpu_sim_ms,omitempty"`
	Node       string  `json:"node"`
	Failover   bool    `json:"failover"`
}

type frontDoor struct {
	c      *cluster.Cluster
	schema sql.Schema
}

const maxStatementBytes = 1 << 20

func (f *frontDoor) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST one SQL statement", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxStatementBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxStatementBytes {
		http.Error(w, fmt.Sprintf("statement exceeds %d bytes", maxStatementBytes),
			http.StatusRequestEntityTooLarge)
		return
	}
	bound, err := sql.Compile(string(body), f.schema)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	res, err := f.c.Optimize(bound.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	out := response{
		Relations: bound.Query.N(),
		Edges:     len(bound.Query.G.Edges),
		Cost:      res.Plan.Cost,
		Rows:      res.Plan.Rows,
		Algorithm: string(res.Algorithm),
		Backend:   string(res.Backend),
		Shape:     string(res.Shape),
		CacheHit:  res.CacheHit,
		Coalesced: res.Coalesced,
		FellBack:  res.FellBack,
		ElapsedUs: float64(res.Elapsed.Nanoseconds()) / 1e3,
		Node:      res.Node,
		Failover:  res.Failover,
	}
	if res.GPU != nil {
		out.GPUDevices = res.GPU.Devices
		out.GPUSimMS = res.GPU.SimTimeMS
	}
	json.NewEncoder(w).Encode(out)
}

func (f *frontDoor) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, f.c.Snapshot().String())
	io.WriteString(w, "\n")
}

func (f *frontDoor) handleCluster(w http.ResponseWriter, _ *http.Request) {
	snap := f.c.Snapshot()
	out := map[string]any{
		"alive_nodes": snap.AliveNodes,
		"dead_nodes":  snap.DeadNodes,
		"replicas":    snap.Replicas,
		"cache_len":   f.c.CacheLen(),
		"deaths":      snap.Deaths,
		"rejoins":     snap.Rejoins,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (f *frontDoor) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	alive := len(f.c.AliveNodes())
	w.Header().Set("Content-Type", "application/json")
	if alive == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "{\"status\":%q,\"alive_nodes\":%d}\n", map[bool]string{true: "ok", false: "down"}[alive > 0], alive)
}

// admin wraps the membership operations as POST handlers taking ?node=.
func (f *frontDoor) admin(op func(node string) (string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST", http.StatusMethodNotAllowed)
			return
		}
		msg, err := op(r.URL.Query().Get("node"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"ok\":true,\"detail\":%q}\n", msg)
	}
}

func (f *frontDoor) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", f.handleOptimize)
	mux.HandleFunc("/stats", f.handleStats)
	mux.HandleFunc("/cluster", f.handleCluster)
	mux.HandleFunc("/healthz", f.handleHealthz)
	needNode := func(node string) error {
		if node == "" {
			return fmt.Errorf("missing ?node=")
		}
		return nil
	}
	mux.HandleFunc("/cluster/add", f.admin(func(string) (string, error) {
		return "added " + f.c.AddNode(), nil
	}))
	mux.HandleFunc("/cluster/remove", f.admin(func(node string) (string, error) {
		if err := needNode(node); err != nil {
			return "", err
		}
		return "removed " + node, f.c.RemoveNode(node)
	}))
	mux.HandleFunc("/cluster/kill", f.admin(func(node string) (string, error) {
		if err := needNode(node); err != nil {
			return "", err
		}
		f.c.KillNode(node)
		return "killed " + node, nil
	}))
	mux.HandleFunc("/cluster/revive", f.admin(func(node string) (string, error) {
		if err := needNode(node); err != nil {
			return "", err
		}
		f.c.ReviveNode(node)
		return "revived " + node, nil
	}))
	mux.HandleFunc("/cluster/flush", f.admin(func(string) (string, error) {
		f.c.FlushAll()
		return "flushed all plan caches", nil
	}))
	return mux
}

func main() {
	var (
		httpAddr   = flag.String("http", ":8080", "HTTP front-door address")
		nodes      = flag.Int("nodes", 4, "initial node count")
		replicas   = flag.Int("replicas", 2, "copies of each plan-cache entry (owner included)")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per ring member (0 = 64)")
		health     = flag.Duration("health", time.Second, "health-sweep interval (0 disables)")
		workers    = flag.Int("workers", 0, "optimization workers per node (0 = GOMAXPROCS/nodes)")
		cacheCap   = flag.Int("cache", 0, "plan-cache capacity per node (0 = 4096)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-query optimization budget")
		gpuDevices = flag.Int("gpu-devices", 0, "simulated GPU devices per node (0 = 2)")
		crossover  = flag.String("crossover", "", "JSON file with backend-crossover thresholds (empty = calibrated defaults)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	)
	flag.Parse()

	if *nodes < 1 {
		*nodes = 4 // mirror cluster.Config's default before the workers split
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0) / *nodes
		if *workers < 1 {
			*workers = 1
		}
	}
	var xover *backend.Crossover
	if *crossover != "" {
		x, err := backend.LoadCrossover(*crossover)
		if err != nil {
			log.Fatal(err)
		}
		xover = &x
	}
	c := cluster.New(cluster.Config{
		Nodes:          *nodes,
		Replicas:       *replicas,
		VirtualNodes:   *vnodes,
		HealthInterval: *health,
		Service: service.Config{
			Workers:       *workers,
			CacheCapacity: *cacheCap,
			Timeout:       *timeout,
			Crossover:     xover,
			GPU:           backend.GPUConfig{Devices: *gpuDevices},
		},
	})
	defer c.Close()

	fd := &frontDoor{c: c, schema: sql.MusicBrainzSchema()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *httpAddr, Handler: fd.mux()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("mpdp-cluster: %d nodes, %d replicas, front door on %s", *nodes, *replicas, *httpAddr)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("mpdp-cluster: signal received, draining (budget %v)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("mpdp-cluster: drain incomplete: %v", err)
		}
	}
}
