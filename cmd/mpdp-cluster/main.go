// Command mpdp-cluster runs an N-node optimizer cluster behind one HTTP
// front door. Each node is a full optimizer-as-a-service instance
// (internal/service); the front door consistent-hashes every statement's
// canonical join-graph fingerprint to an owner node plus replicas, so
// isomorphic queries from any client warm and reuse the same plan-cache
// entry, and a node loss fails over to the replicas. The HTTP surface is
// the shared versioned mux of internal/httpapi — identical to mpdp-serve's
// — plus the cluster admin endpoints. See CLUSTER.md and API.md.
//
// Usage:
//
//	mpdp-cluster -http :8080 -nodes 4 -replicas 2 &
//	curl -d "SELECT ..." localhost:8080/v1/optimize
//	curl localhost:8080/v1/stats          # cluster + per-node counters
//	curl localhost:8080/cluster           # membership and ring summary
//	curl localhost:8080/v1/healthz
//	curl -X POST "localhost:8080/cluster/kill?node=node-1"   # crash a node
//	curl -X POST "localhost:8080/cluster/revive?node=node-1" # bring it back
//	curl -X POST localhost:8080/cluster/add                  # grow the ring
//	curl -X POST localhost:8080/cluster/flush                # invalidate all plans
//	curl localhost:8080/v1/cache                             # ring-wide cache summary
//	curl -X POST -d '{"relations":[{"name":"release","rows":21000000}]}' \
//	  -H 'Content-Type: application/json' localhost:8080/v1/catalog/stats
//
// The /v1/cache & /v1/catalog control surface (API.md) acts on every
// alive node: DELETE /v1/cache/{fingerprint} drops the plan and its
// subplans wherever replicated, /v1/cache/flush is what /cluster/flush
// aliases, and a stats update bumps the epoch ring-wide so stale plans
// re-cost lazily on whichever node serves them next.
//
// Transports: by default the coordinator calls its nodes in-process
// (-transport=local). With -transport=http every node gets a real loopback
// TCP listener and all coordinator→node RPCs are JSON over HTTP — the same
// wire path a multi-process deployment uses. A separate process can run a
// single node with -mode=node and be joined to a coordinator via -peers:
//
//	mpdp-cluster -mode=node -node-id peer-0 -node-listen 127.0.0.1:9100 &
//	mpdp-cluster -transport=http -nodes 2 -peers peer-0=127.0.0.1:9100
//
// SIGINT/SIGTERM drains in-flight requests (bounded by -drain) before the
// nodes close; a client that disconnects mid-request cancels its in-flight
// optimization on the serving node.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/service"
)

// newAPI builds the shared HTTP surface plus the admin routes; split out of
// main so tests can drive the full mux through httptest.
func newAPI(c *cluster.Cluster, opts httpapi.Options) *httpapi.API {
	api := httpapi.New(httpapi.ClusterEngine(c), opts)
	httpapi.MountClusterAdmin(api, c)
	return api
}

func main() {
	var (
		httpAddr   = flag.String("http", ":8080", "HTTP front-door address")
		nodes      = flag.Int("nodes", 4, "initial node count")
		replicas   = flag.Int("replicas", 2, "copies of each plan-cache entry (owner included)")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per ring member (0 = 64)")
		health     = flag.Duration("health", time.Second, "health-sweep interval (0 disables)")
		workers    = flag.Int("workers", 0, "optimization workers per node (0 = GOMAXPROCS/nodes)")
		cacheCap   = flag.Int("cache", 0, "plan-cache capacity per node (0 = 4096)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-query optimization budget")
		gpuDevices = flag.Int("gpu-devices", 0, "simulated GPU devices per node (0 = 2)")
		crossover  = flag.String("crossover", "", "JSON file with backend-crossover thresholds (empty = calibrated defaults)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
		queueDepth = flag.Int("queue-depth", 0, "admission queue depth per node (0 = 4x workers)")
		queueWait  = flag.Duration("queue-wait", 250*time.Millisecond, "max wait for a queue slot before a node sheds with 503 (0 = block indefinitely, <0 = shed immediately)")
		nodeRate   = flag.Float64("node-rate", 0, "admitted requests/sec per node, 0 = uncapped")
		quotaRate  = flag.Float64("quota-rate", 0, "per-tenant requests/sec quota at the front door, 0 = disabled")
		quotaBurst = flag.Float64("quota-burst", 0, "per-tenant quota burst (0 = quota-rate/4, min 1)")
		slowMS     = flag.Float64("slow-query-ms", 0, "log requests slower than this many ms as JSON lines (0 = off; the /v1/debug/slow ring is always on)")
		slowPath   = flag.String("slow-query-log", "", "slow-query log destination (empty = stderr)")
		debugAddr  = flag.String("debug-addr", "", "serve pprof and expvar on this separate address (e.g. localhost:6060)")
		transport  = flag.String("transport", "local", "coordinator→node transport: local (in-process) or http (JSON over loopback TCP)")
		mode       = flag.String("mode", "serve", "serve (coordinator + nodes) or node (one node server, no front door)")
		nodeID     = flag.String("node-id", "node-0", "node mode: this node's cluster ID")
		nodeListen = flag.String("node-listen", "127.0.0.1:0", "node mode: RPC listen address")
		peers      = flag.String("peers", "", "comma-separated id=addr list of remote node servers to join (requires -transport=http)")
	)
	flag.Parse()

	if *nodes < 1 {
		*nodes = 4 // mirror cluster.Config's default before the workers split
	}
	if *workers == 0 {
		div := *nodes
		if *mode == "node" {
			div = 1 // a node-mode process runs exactly one node
		}
		*workers = runtime.GOMAXPROCS(0) / div
		if *workers < 1 {
			*workers = 1
		}
	}
	var xover *backend.Crossover
	if *crossover != "" {
		x, err := backend.LoadCrossover(*crossover)
		if err != nil {
			log.Fatal(err)
		}
		xover = &x
	}
	svcCfg := service.Config{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CacheCapacity: *cacheCap,
		Timeout:       *timeout,
		Crossover:     xover,
		GPU:           backend.GPUConfig{Devices: *gpuDevices},
		Admission: service.Admission{
			MaxQueueWait: *queueWait,
			RatePerSec:   *nodeRate,
		},
	}

	if *mode == "node" {
		runNode(*nodeID, *nodeListen, svcCfg)
		return
	}
	if *mode != "serve" {
		log.Fatalf("mpdp-cluster: unknown -mode=%s (serve or node)", *mode)
	}

	var tr cluster.Transport
	switch *transport {
	case "local":
		if *peers != "" {
			log.Fatal("mpdp-cluster: -peers requires -transport=http")
		}
	case "http":
		tr = cluster.NewHTTPTransport()
	default:
		log.Fatalf("mpdp-cluster: unknown -transport=%s (local or http)", *transport)
	}

	slowCfg, closeSlow, err := httpapi.SlowConfigFromFlags(*slowMS, *slowPath)
	if err != nil {
		log.Fatal(err)
	}
	defer closeSlow()
	c := cluster.New(cluster.Config{
		Nodes:          *nodes,
		Replicas:       *replicas,
		VirtualNodes:   *vnodes,
		HealthInterval: *health,
		Transport:      tr,
		Slow:           slowCfg,
		Service:        svcCfg,
	})
	defer c.Close()
	if *peers != "" {
		if err := joinPeers(c, *peers); err != nil {
			log.Fatal(err)
		}
	}

	api := newAPI(c, httpapi.Options{Quota: httpapi.QuotaConfig{
		RatePerSec: *quotaRate,
		Burst:      *quotaBurst,
	}})
	httpapi.StartDebugServer(*debugAddr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *httpAddr, Handler: api.Mux()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("mpdp-cluster: %d nodes, %d replicas, %s transport, front door on %s (/v1/* + legacy aliases)",
		len(c.AliveNodes()), *replicas, *transport, *httpAddr)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("mpdp-cluster: signal received, draining (budget %v)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("mpdp-cluster: drain incomplete: %v", err)
		}
	}
}

// runNode serves a single cluster node over the RPC wire protocol: the
// whole process is one optimizer-as-a-service instance plus a /healthz. A
// coordinator adopts it with -peers id=addr (or cluster.JoinPeer).
func runNode(id, listen string, svcCfg service.Config) {
	ns := cluster.NewNodeServer(id, svcCfg)
	defer ns.Close()
	addr, err := ns.Start(listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mpdp-cluster: node %s serving cluster RPC on %s", id, addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("mpdp-cluster: node %s shutting down", id)
}

// joinPeers parses "id=addr,id=addr" and joins each remote node server to
// the coordinator's ring.
func joinPeers(c *cluster.Cluster, spec string) error {
	for _, pair := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || addr == "" {
			return fmt.Errorf("mpdp-cluster: bad -peers entry %q (want id=addr)", pair)
		}
		if err := c.JoinPeer(id, addr); err != nil {
			return fmt.Errorf("mpdp-cluster: join %s at %s: %w", id, addr, err)
		}
		log.Printf("mpdp-cluster: joined remote node %s at %s", id, addr)
	}
	return nil
}
