package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/sql"
	"repro/internal/workload"
)

const testStatement = "SELECT r.id FROM release r, release_group rg, artist_credit ac " +
	"WHERE r.release_group = rg.id AND r.artist_credit = ac.id AND rg.artist_credit = ac.id"

func newTestFrontDoor(t *testing.T) (*frontDoor, *httptest.Server) {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: 3, Replicas: 2, Service: service.Config{Workers: 2}})
	t.Cleanup(c.Close)
	fd := &frontDoor{c: c, schema: sql.MusicBrainzSchema()}
	ts := httptest.NewServer(fd.mux())
	t.Cleanup(ts.Close)
	return fd, ts
}

func postOptimize(t *testing.T, ts *httptest.Server) response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/optimize", "text/plain", strings.NewReader(testStatement))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var r response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFrontDoorOptimizeAndFailoverOverHTTP(t *testing.T) {
	_, ts := newTestFrontDoor(t)

	cold := postOptimize(t, ts)
	if cold.CacheHit || cold.Node == "" {
		t.Errorf("cold = hit %v node %q, want miss on a named node", cold.CacheHit, cold.Node)
	}
	warm := postOptimize(t, ts)
	if !warm.CacheHit || warm.Node != cold.Node {
		t.Errorf("warm = hit %v on %s, want hit on owner %s", warm.CacheHit, warm.Node, cold.Node)
	}

	// Crash the owner through the admin surface: the next request must
	// fail over to a replica and stay warm.
	resp, err := http.Post(ts.URL+"/cluster/kill?node="+cold.Node, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kill status = %d", resp.StatusCode)
	}
	over := postOptimize(t, ts)
	if over.Node == cold.Node {
		t.Errorf("request served by killed node %s", cold.Node)
	}
	if !over.Failover && !over.CacheHit {
		t.Errorf("after kill: failover=%v hit=%v, want a warm failover", over.Failover, over.CacheHit)
	}
	if over.Cost != cold.Cost {
		t.Errorf("failover cost %g != %g", over.Cost, cold.Cost)
	}
}

func TestFrontDoorStatsClusterHealthz(t *testing.T) {
	_, ts := newTestFrontDoor(t)
	postOptimize(t, ts)

	var stats map[string]any
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("/stats is not JSON: %v", err)
	}
	resp.Body.Close()
	if _, ok := stats["per_node"]; !ok {
		t.Errorf("/stats lacks per_node: %v", stats)
	}

	var info struct {
		AliveNodes []string `json:"alive_nodes"`
		Replicas   int      `json:"replicas"`
	}
	resp, err = http.Get(ts.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("/cluster is not JSON: %v", err)
	}
	resp.Body.Close()
	if len(info.AliveNodes) != 3 || info.Replicas != 2 {
		t.Errorf("/cluster = %+v, want 3 alive nodes, 2 replicas", info)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", resp.StatusCode)
	}
}

func TestFrontDoorAdminValidation(t *testing.T) {
	_, ts := newTestFrontDoor(t)
	resp, err := http.Get(ts.URL + "/cluster/kill?node=node-0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET kill = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/cluster/kill", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("kill without node = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/cluster/remove?node=nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("remove unknown node = %d, want 400", resp.StatusCode)
	}
}

// TestFrontDoorReportsBackendIdentity: a large cyclic statement through the
// cluster front door is served exactly by a node's GPU backend, the
// response identifies the backend and device work, replicas keep the
// attribution, and /stats aggregates the per-backend counters cluster-wide.
func TestFrontDoorReportsBackendIdentity(t *testing.T) {
	_, ts := newTestFrontDoor(t)

	post := func() response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/optimize", "text/plain", strings.NewReader(workload.CycleSQL(40)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		var r response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		return r
	}

	cold := post()
	if cold.Backend != string(backend.GPU) || cold.Algorithm != "mpdp-gpu" || cold.FellBack {
		t.Errorf("cold = %s on %s (fellback=%v), want exact mpdp-gpu on gpu",
			cold.Algorithm, cold.Backend, cold.FellBack)
	}
	if cold.GPUDevices <= 0 || cold.GPUSimMS <= 0 {
		t.Errorf("cold device work model missing: devices=%d sim=%gms", cold.GPUDevices, cold.GPUSimMS)
	}
	warm := post()
	if !warm.CacheHit || warm.Backend != string(backend.GPU) {
		t.Errorf("warm = hit %v backend %s, want hit with gpu attribution", warm.CacheHit, warm.Backend)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap cluster.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/stats is not JSON: %v", err)
	}
	gpu := snap.Backends[string(backend.GPU)]
	if gpu.Routed != 1 || gpu.Served != 1 {
		t.Errorf("cluster gpu backend counters %+v, want routed=1 served=1", gpu)
	}
}
