package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/workload"
)

const testStatement = "SELECT r.id FROM release r, release_group rg, artist_credit ac " +
	"WHERE r.release_group = rg.id AND r.artist_credit = ac.id AND rg.artist_credit = ac.id"

func newTestFrontDoor(t *testing.T) *httptest.Server {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: 3, Replicas: 2, Service: service.Config{Workers: 2}})
	t.Cleanup(c.Close)
	ts := httptest.NewServer(newAPI(c, httpapi.Options{}).Mux())
	t.Cleanup(ts.Close)
	return ts
}

func postOptimize(t *testing.T, ts *httptest.Server, path string) httpapi.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(testStatement))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var r httpapi.Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFrontDoorOptimizeAndFailoverOverHTTP(t *testing.T) {
	ts := newTestFrontDoor(t)

	cold := postOptimize(t, ts, "/v1/optimize")
	if cold.CacheHit || cold.Node == "" {
		t.Errorf("cold = hit %v node %q, want miss on a named node", cold.CacheHit, cold.Node)
	}
	warm := postOptimize(t, ts, "/v1/optimize")
	if !warm.CacheHit || warm.Node != cold.Node {
		t.Errorf("warm = hit %v on %s, want hit on owner %s", warm.CacheHit, warm.Node, cold.Node)
	}

	// Crash the owner through the admin surface: the next request must
	// fail over to a replica and stay warm.
	resp, err := http.Post(ts.URL+"/cluster/kill?node="+cold.Node, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kill status = %d", resp.StatusCode)
	}
	over := postOptimize(t, ts, "/optimize") // legacy alias: same handler
	if over.Node == cold.Node {
		t.Errorf("request served by killed node %s", cold.Node)
	}
	if !over.Failover && !over.CacheHit {
		t.Errorf("after kill: failover=%v hit=%v, want a warm failover", over.Failover, over.CacheHit)
	}
	if over.Cost != cold.Cost {
		t.Errorf("failover cost %g != %g", over.Cost, cold.Cost)
	}
}

// TestClusterV1ErrorEnvelopes mirrors the serve binary's golden error-path
// suite on the cluster front door: both binaries answer every failure
// class with the same structured envelope.
func TestClusterV1ErrorEnvelopes(t *testing.T) {
	ts := newTestFrontDoor(t)
	check := func(resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("status = %d, want %d", resp.StatusCode, wantStatus)
		}
		var e httpapi.Error
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("error body is not an envelope: %v", err)
		}
		if e.Code != wantCode || e.RequestID == "" {
			t.Errorf("envelope = %+v, want code %q with request id", e, wantCode)
		}
	}
	for _, path := range []string{"/v1/optimize", "/optimize"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		check(resp, http.StatusMethodNotAllowed, httpapi.CodeMethodNotAllowed)

		resp, err = http.Post(ts.URL+path, "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		check(resp, http.StatusBadRequest, httpapi.CodeBadRequest)

		resp, err = http.Post(ts.URL+path, "text/plain", strings.NewReader(strings.Repeat("x", 1<<20+1)))
		if err != nil {
			t.Fatal(err)
		}
		check(resp, http.StatusRequestEntityTooLarge, httpapi.CodeTooLarge)

		resp, err = http.Post(ts.URL+path, "text/plain", strings.NewReader("SELECT FROM WHERE"))
		if err != nil {
			t.Fatal(err)
		}
		check(resp, http.StatusUnprocessableEntity, httpapi.CodeInvalidQuery)
	}

	// 503: empty the cluster — no alive node can serve.
	c := cluster.New(cluster.Config{Nodes: 1, Replicas: 1, Service: service.Config{Workers: 1}})
	t.Cleanup(c.Close)
	ts2 := httptest.NewServer(newAPI(c, httpapi.Options{}).Mux())
	t.Cleanup(ts2.Close)
	for _, id := range c.AliveNodes() {
		if err := c.RemoveNode(id); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts2.URL+"/v1/optimize", "text/plain", strings.NewReader(testStatement))
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusServiceUnavailable, httpapi.CodeUnavailable)

	hresp, err := http.Get(ts2.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("empty-cluster healthz = %d, want 503", hresp.StatusCode)
	}
}

func TestFrontDoorStatsClusterHealthz(t *testing.T) {
	ts := newTestFrontDoor(t)
	postOptimize(t, ts, "/v1/optimize")

	var stats map[string]any
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("/v1/stats is not JSON: %v", err)
	}
	resp.Body.Close()
	if _, ok := stats["per_node"]; !ok {
		t.Errorf("/v1/stats lacks per_node: %v", stats)
	}

	var info struct {
		AliveNodes []string `json:"alive_nodes"`
		Replicas   int      `json:"replicas"`
	}
	resp, err = http.Get(ts.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("/cluster is not JSON: %v", err)
	}
	resp.Body.Close()
	if len(info.AliveNodes) != 3 || info.Replicas != 2 {
		t.Errorf("/cluster = %+v, want 3 alive nodes, 2 replicas", info)
	}

	for _, path := range []string{"/v1/healthz", "/healthz"} {
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Status string `json:"status"`
			Alive  int    `json:"alive_nodes"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatalf("%s is not JSON: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Alive != 3 {
			t.Errorf("%s = %d %q alive=%d, want 200 ok 3", path, resp.StatusCode, health.Status, health.Alive)
		}
	}
}

func TestFrontDoorAdminValidation(t *testing.T) {
	ts := newTestFrontDoor(t)
	resp, err := http.Get(ts.URL + "/cluster/kill?node=node-0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET kill = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/cluster/kill", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("kill without node = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/cluster/remove?node=nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("remove unknown node = %d, want 400", resp.StatusCode)
	}
}

// TestFrontDoorReportsBackendIdentity: a large cyclic statement through the
// cluster front door is served exactly by a node's GPU backend, the
// response identifies the backend and device work, replicas keep the
// attribution, and /v1/stats aggregates the per-backend counters
// cluster-wide.
func TestFrontDoorReportsBackendIdentity(t *testing.T) {
	ts := newTestFrontDoor(t)

	post := func() httpapi.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/optimize", "text/plain", strings.NewReader(workload.CycleSQL(40)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		var r httpapi.Response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		return r
	}

	cold := post()
	if cold.Backend != string(backend.GPU) || cold.Algorithm != "mpdp-gpu" || cold.FellBack {
		t.Errorf("cold = %s on %s (fellback=%v), want exact mpdp-gpu on gpu",
			cold.Algorithm, cold.Backend, cold.FellBack)
	}
	if cold.GPUDevices <= 0 || cold.GPUSimMS <= 0 {
		t.Errorf("cold device work model missing: devices=%d sim=%gms", cold.GPUDevices, cold.GPUSimMS)
	}
	warm := post()
	if !warm.CacheHit || warm.Backend != string(backend.GPU) {
		t.Errorf("warm = hit %v backend %s, want hit with gpu attribution", warm.CacheHit, warm.Backend)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap cluster.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/v1/stats is not JSON: %v", err)
	}
	gpu := snap.Backends[string(backend.GPU)]
	if gpu.Routed != 1 || gpu.Served != 1 {
		t.Errorf("cluster gpu backend counters %+v, want routed=1 served=1", gpu)
	}
}
