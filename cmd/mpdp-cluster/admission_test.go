package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/service"
)

// TestFrontDoorOverflowThenOverloaded drives the cluster past its admission
// capacity through the HTTP front door: with a 1-token budget per node and
// 2-way replication, the first request is served by the owner, the second
// overflows to the replica (same warm entry, no failure-detector event),
// and the third — every owner shed — returns the golden 503 overloaded
// envelope with Retry-After. Past the knee the cluster answers fast with a
// back-off hint; nothing queues unboundedly.
func TestFrontDoorOverflowThenOverloaded(t *testing.T) {
	c := cluster.New(cluster.Config{
		Nodes:    2,
		Replicas: 2,
		Service: service.Config{
			Workers: 1,
			// Burst floor 1, negligible refill: one admitted request per
			// node for the whole test.
			Admission: service.Admission{RatePerSec: 0.001},
		},
	})
	t.Cleanup(c.Close)
	ts := httptest.NewServer(newAPI(c, httpapi.Options{}).Mux())
	t.Cleanup(ts.Close)

	first := postOptimize(t, ts, "/v1/optimize")
	if first.Failover {
		t.Errorf("first request reported failover: %+v", first)
	}

	second := postOptimize(t, ts, "/v1/optimize")
	if second.Node == first.Node {
		t.Errorf("second request served by exhausted owner %s, want overflow to the replica", first.Node)
	}
	if !second.CacheHit {
		t.Errorf("overflow request missed the cache; replication should have warmed the replica")
	}
	if second.Failover {
		t.Errorf("overflow mislabeled as failover (no node was unreachable): %+v", second)
	}

	// Third request: both owners shed. Golden envelope: 503, overloaded,
	// Retry-After header + retry_after_ms, X-Request-Id echo intact.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", strings.NewReader(testStatement))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-Request-Id", "cluster-shed-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body: %s", resp.StatusCode, body)
	}
	var e httpapi.Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("shed response is not an envelope: %v (%s)", err, body)
	}
	if e.Code != httpapi.CodeOverloaded {
		t.Errorf("code = %q, want %q", e.Code, httpapi.CodeOverloaded)
	}
	if e.RetryAfterMS <= 0 {
		t.Errorf("envelope lacks retry_after_ms: %s", body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("503 overloaded lacks a positive Retry-After header (got %q)", ra)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "cluster-shed-1" {
		t.Errorf("X-Request-Id echo lost on cluster shed path: got %q", got)
	}
	if e.RequestID != "cluster-shed-1" {
		t.Errorf("envelope request_id = %q, want the inbound id", e.RequestID)
	}

	// The cluster snapshot aggregates the new counters: per-node sheds sum
	// up, and the replica's rescue is an overflow, not a failover.
	snap := c.Snapshot()
	if snap.Shed < 2 {
		t.Errorf("aggregated shed = %d, want >= 2 (owner on request 2, both on request 3)", snap.Shed)
	}
	if snap.Overflows != 1 {
		t.Errorf("overflows = %d, want 1", snap.Overflows)
	}
	if snap.Failovers != 0 {
		t.Errorf("failovers = %d, want 0 (nobody was unreachable)", snap.Failovers)
	}
	if snap.Errors != 0 {
		t.Errorf("errors = %d, want 0 (sheds are not errors)", snap.Errors)
	}

	// /v1/stats carries the same aggregation over HTTP.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Shed      uint64 `json:"shed"`
		Overflows uint64 `json:"overflows"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatalf("/v1/stats is not JSON: %v", err)
	}
	if stats.Shed < 2 || stats.Overflows != 1 {
		t.Errorf("/v1/stats shed=%d overflows=%d, want shed>=2 overflows=1", stats.Shed, stats.Overflows)
	}
}
