// Command queryzgen emits generated workload queries as JSON for
// inspection: relations with statistics and the join graph with per-edge
// selectivities. Useful for debugging workload generation and for feeding
// external tools.
//
// Usage:
//
//	queryzgen -workload snowflake -rels 30 -count 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cost"
	"repro/internal/workload"
)

type jsonRelation struct {
	Name  string  `json:"name"`
	Rows  float64 `json:"rows"`
	Pages float64 `json:"pages"`
	Width int     `json:"width"`
	PK    bool    `json:"pk_index"`
}

type jsonEdge struct {
	A   int     `json:"a"`
	B   int     `json:"b"`
	Sel float64 `json:"selectivity"`
}

type jsonQuery struct {
	Workload  string         `json:"workload"`
	Relations []jsonRelation `json:"relations"`
	Edges     []jsonEdge     `json:"edges"`
}

func toJSON(kind string, q *cost.Query) jsonQuery {
	out := jsonQuery{Workload: kind}
	for _, r := range q.Cat.Rels {
		out.Relations = append(out.Relations, jsonRelation{
			Name: r.Name, Rows: r.Rows, Pages: r.Pages, Width: r.Width, PK: r.HasPKIndex,
		})
	}
	for _, e := range q.G.Edges {
		out.Edges = append(out.Edges, jsonEdge{A: e.A, B: e.B, Sel: e.Sel})
	}
	return out
}

func main() {
	var (
		kind  = flag.String("workload", "star", "workload family (star, snowflake, chain, cycle, clique, musicbrainz)")
		rels  = flag.Int("rels", 12, "number of relations")
		count = flag.Int("count", 1, "number of queries to generate")
		seed  = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for i := 0; i < *count; i++ {
		rng := rand.New(rand.NewSource(*seed + int64(i)))
		q, err := workload.Generate(workload.Kind(*kind), *rels, rng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "queryzgen:", err)
			os.Exit(2)
		}
		if err := enc.Encode(toJSON(*kind, q)); err != nil {
			fmt.Fprintln(os.Stderr, "queryzgen:", err)
			os.Exit(1)
		}
	}
}
