// Command mpdpvet runs the project's static-analysis suite: six
// zero-dependency analyzers (internal/analysis) that machine-enforce the
// invariants STATIC_ANALYSIS.md catalogues — context threading, the
// allocation-free DP hot path, open-loop timing honesty, metric-family
// naming and doc sync, the error-envelope registry, and mutex-guarded
// field access.
//
// Usage:
//
//	mpdpvet [-exemptions] [-only name[,name]] [./...]
//
// Findings print as file:line:col: [analyzer] message and make the exit
// status 1; a clean tree exits 0; load or usage failures exit 2.
// -exemptions additionally prints the //mpdpvet:ignore accounting the
// nightly build tracks, so exemption growth is visible instead of silent.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	exemptions := flag.Bool("exemptions", false, "print //mpdpvet:ignore accounting after the findings")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mpdpvet [-exemptions] [-only name[,name]] [./...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "mpdpvet: only the ./... pattern is supported, got %q\n", arg)
			os.Exit(2)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, module, err := analysis.ModuleRoot(wd)
	if err != nil {
		fatal(err)
	}

	analyzers := analysis.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mpdpvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader := analysis.NewLoader(root, module)
	pkgs, err := loader.LoadTree()
	if err != nil {
		fatal(err)
	}
	res, err := analysis.Run(pkgs, loader.Fset, root, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, f := range res.Findings {
		if rel, rerr := filepath.Rel(root, f.Pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if *exemptions {
		total := 0
		names := make([]string, 0, len(res.Suppressed))
		for name, n := range res.Suppressed {
			names = append(names, name)
			total += n
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("mpdpvet: exemptions[%s]: %d\n", name, res.Suppressed[name])
		}
		fmt.Printf("mpdpvet: exemptions total: %d (directives: %d)\n", total, res.Directives)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "mpdpvet: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
	fmt.Printf("mpdpvet: ok (%d packages, %d analyzers)\n", len(pkgs), len(analyzers))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpdpvet:", err)
	os.Exit(2)
}
