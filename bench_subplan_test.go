package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/service"
)

// --- Subgraph memo: overlap sweep -----------------------------------------
//
// The subplan cache's value proposition is cross-query reuse: when a new
// query shares a region of the join graph (same relations, same statistics,
// same predicates) with something the service already planned, the DP level
// drivers are seeded with the memoized winners and skip enumerating the
// shared region. This sweep quantifies that: 20-relation chain windows cut
// from a 40-relation universe at decreasing offsets share 0/25/50/75/90% of
// their relations with a cached working set, and each row records how many
// connected sets the warm-started enumeration still walked versus a cold
// run of the identical query — plus wall time and plan costs, which must be
// identical (warm starts change work, never plans).

// subplanUniverse mirrors the chain universe of the service-level
// equivalence tests: deterministic per-relation statistics and chain
// selectivities, windows cut induced subchains.
type subplanUniverse struct {
	rows []float64
	sels []float64
}

func newSubplanUniverse(n int, seed int64) *subplanUniverse {
	rng := rand.New(rand.NewSource(seed))
	u := &subplanUniverse{rows: make([]float64, n), sels: make([]float64, n-1)}
	for i := range u.rows {
		u.rows[i] = float64(1000 + rng.Intn(2_000_000))
	}
	for i := range u.sels {
		u.sels[i] = 1e-6 * float64(1+rng.Intn(999_999))
	}
	return u
}

func (u *subplanUniverse) window(lo, hi int) *cost.Query {
	var cat catalog.Catalog
	for i := lo; i < hi; i++ {
		cat.Add(catalog.NewRelation(fmt.Sprintf("rel%d", i), u.rows[i], 100))
	}
	g := graph.New(hi - lo)
	for i := lo; i < hi-1; i++ {
		g.AddEdge(i-lo, i+1-lo, u.sels[i])
	}
	return &cost.Query{Cat: cat, G: g}
}

// subplanBenchRow is one row of BENCH_subplan.json.
type subplanBenchRow struct {
	Name       string `json:"name"`
	OverlapPct int    `json:"overlap_pct"`
	Offset     int    `json:"offset"`
	Relations  int    `json:"relations"`
	// ConnectedSetsCold/Warm count the sets the enumeration walked without
	// and with the primed memo; WarmSeeded the sets the memo answered.
	ConnectedSetsCold uint64 `json:"connected_sets_cold"`
	ConnectedSetsWarm uint64 `json:"connected_sets_warm"`
	WarmSeeded        uint64 `json:"warm_seeded"`
	// ColdOverWarmSets is the enumeration reduction factor (>= 1).
	ColdOverWarmSets float64 `json:"cold_over_warm_sets"`
	ColdNsPerOp      float64 `json:"cold_ns_per_op"`
	WarmNsPerOp      float64 `json:"warm_ns_per_op"`
	ColdCost         float64 `json:"cold_cost"`
	WarmCost         float64 `json:"warm_cost"`
	// CostIdentical reports whether warm and cold plans cost the same — the
	// memo's correctness invariant, carried in the artifact so the CI gate
	// can refuse a speedup bought with a worse plan.
	CostIdentical bool `json:"cost_identical"`
}

const (
	subplanUniverseN = 40
	subplanWindowN   = 20
	subplanSeed      = 11
)

// subplanService builds the per-measurement service: single-threaded
// enumeration keeps the wall-clock comparison noise-free, and a fresh
// instance per run keeps each row's memo exactly the primed working set.
func subplanService() *service.Service {
	return service.New(service.Config{Workers: 1, Threads: 1})
}

// measureSubplanWindow optimizes window [off, off+20) once cold and once on
// a service primed with window [0, 20), returning the populated row.
func measureSubplanWindow(b *testing.B, u *subplanUniverse, off int) subplanBenchRow {
	b.Helper()
	overlap := subplanWindowN - off
	if overlap < 0 {
		overlap = 0
	}
	row := subplanBenchRow{
		Name:       fmt.Sprintf("overlap=%d%%", 100*overlap/subplanWindowN),
		OverlapPct: 100 * overlap / subplanWindowN,
		Offset:     off,
		Relations:  subplanWindowN,
	}

	cold := subplanService()
	defer cold.Close()
	start := time.Now()
	cres, err := cold.Optimize(context.Background(), u.window(off, off+subplanWindowN))
	if err != nil {
		b.Fatal(err)
	}
	row.ColdNsPerOp = float64(time.Since(start).Nanoseconds())
	row.ConnectedSetsCold = cres.Stats.ConnectedSets
	row.ColdCost = cres.Plan.Cost

	warm := subplanService()
	defer warm.Close()
	if _, err := warm.Optimize(context.Background(), u.window(0, subplanWindowN)); err != nil {
		b.Fatal(err)
	}
	warm.WaitHarvest()
	start = time.Now()
	wres, err := warm.Optimize(context.Background(), u.window(off, off+subplanWindowN))
	if err != nil {
		b.Fatal(err)
	}
	row.WarmNsPerOp = float64(time.Since(start).Nanoseconds())
	row.ConnectedSetsWarm = wres.Stats.ConnectedSets
	row.WarmSeeded = wres.Stats.WarmSeeded
	row.WarmCost = wres.Plan.Cost
	row.CostIdentical = wres.Plan.Cost == cres.Plan.Cost
	if row.ConnectedSetsWarm > 0 {
		row.ColdOverWarmSets = float64(row.ConnectedSetsCold) / float64(row.ConnectedSetsWarm)
	}
	return row
}

// BenchmarkSubplanOverlap sweeps the shared-prefix fraction and writes
// BENCH_subplan.json. The CI bench-smoke gate reads the artifact and fails
// when the 90%-overlap row stops enumerating at least 2x fewer connected
// sets than the 0%-overlap row (or when any row's warm plan cost drifts
// from its cold plan).
func BenchmarkSubplanOverlap(b *testing.B) {
	u := newSubplanUniverse(subplanUniverseN, subplanSeed)
	offsets := []int{20, 15, 10, 5, 2} // overlap 0/25/50/75/90%

	rows := make(map[int]subplanBenchRow, len(offsets))
	for _, off := range offsets {
		off := off
		b.Run(fmt.Sprintf("overlap=%d", 100*(subplanWindowN-off)/subplanWindowN), func(b *testing.B) {
			var row subplanBenchRow
			for i := 0; i < b.N; i++ {
				r := measureSubplanWindow(b, u, off)
				// Keep the fastest observation per phase: both services do
				// identical deterministic work per run, so minimum wall time
				// is the least-noisy estimate.
				if row.Relations == 0 || r.WarmNsPerOp < row.WarmNsPerOp {
					prevCold := row.ColdNsPerOp
					row = r
					if prevCold > 0 && prevCold < r.ColdNsPerOp {
						row.ColdNsPerOp = prevCold
					}
				} else if r.ColdNsPerOp < row.ColdNsPerOp {
					row.ColdNsPerOp = r.ColdNsPerOp
				}
			}
			b.ReportMetric(float64(row.ConnectedSetsWarm), "warm-sets")
			b.ReportMetric(float64(row.WarmSeeded), "seeded")
			b.ReportMetric(row.ColdOverWarmSets, "cold/warm-sets")
			rows[off] = row
		})
	}

	ordered := make([]subplanBenchRow, 0, len(offsets))
	for _, off := range offsets {
		if row, ok := rows[off]; ok {
			ordered = append(ordered, row)
		}
	}
	out, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_subplan.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_subplan.json (%d rows)", len(ordered))
}
