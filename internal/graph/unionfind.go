package graph

// UnionFind is a disjoint-set forest with union by size and path compression.
// UnionDP (Alg. 4) uses it to maintain the partition over relations during
// the partition phase; the Size accessor enforces the k-bound on partitions.
type UnionFind struct {
	parent []int
	size   []int
}

// NewUnionFind returns n singleton sets {0}, ..., {n-1}.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b and returns the new representative.
func (u *UnionFind) Union(a, b int) int {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return ra
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b int) bool { return u.Find(a) == u.Find(b) }

// Size returns the cardinality of x's set.
func (u *UnionFind) Size(x int) int { return u.size[u.Find(x)] }

// Groups returns the partition as representative → members (members in
// increasing order).
func (u *UnionFind) Groups() map[int][]int {
	g := make(map[int][]int)
	for i := range u.parent {
		r := u.Find(i)
		g[r] = append(g[r], i)
	}
	return g
}
