package graph

import "repro/internal/bitset"

// BlockScratch holds the growable DFS state of FindBlocksInto so the MPDP
// inner loop (one block decomposition per connected set) reuses the same
// buffers run after run instead of allocating them per call. The zero value
// is ready to use; each worker needs its own.
type BlockScratch struct {
	blocks    []bitset.Mask
	edgeStack [][2]int
	stack     []blockFrame
}

type blockFrame struct {
	v, parent int
	nbrs      []int
	next      int
}

// FindBlocks returns the biconnected components (blocks, §2.4) of the
// subgraph induced by s, each as a Mask of the vertices it spans. A bridge
// edge forms a 2-vertex block; isolated vertices of the induced subgraph
// form no block. s must induce a graph of at most 64 vertices.
func (g *Graph) FindBlocks(s bitset.Mask) []bitset.Mask {
	var sc BlockScratch
	return g.FindBlocksInto(s, &sc)
}

// FindBlocksInto is FindBlocks with caller-supplied scratch buffers; the
// returned slice aliases sc and is valid only until the next call with the
// same scratch.
//
// The implementation is the iterative Hopcroft–Tarjan DFS [12]: vertices are
// assigned discovery numbers and low-links; when a child subtree cannot reach
// above its parent, the edges accumulated since the child was entered form a
// block. MPDP (Alg. 3, line 4) calls this once per connected set S.
func (g *Graph) FindBlocksInto(s bitset.Mask, sc *BlockScratch) []bitset.Mask {
	if s.Count() < 2 {
		return nil
	}

	// Fixed-size DFS numbering: Mask graphs have at most 64 vertices, so
	// disc/low live on the stack (this is the hottest loop of MPDP — one
	// call per connected set).
	var disc, low [64]int32
	for i := range disc {
		disc[i] = -1
	}
	time := int32(0)
	blocks := sc.blocks[:0]
	edgeStack := sc.edgeStack[:0]

	for root := s; !root.Empty(); {
		r := root.Lowest()
		if disc[r] >= 0 {
			root = root.Remove(r)
			continue
		}
		stack := append(sc.stack[:0], blockFrame{v: r, parent: -1, nbrs: g.adjList[r]})
		disc[r] = time
		low[r] = time
		time++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.next < len(f.nbrs) {
				w := f.nbrs[f.next]
				f.next++
				if !s.Has(w) || w == f.parent {
					continue
				}
				if dw := disc[w]; dw >= 0 {
					// Back edge.
					if dw < disc[f.v] {
						edgeStack = append(edgeStack, [2]int{f.v, w})
						if dw < low[f.v] {
							low[f.v] = dw
						}
					}
					continue
				}
				// Tree edge: descend.
				edgeStack = append(edgeStack, [2]int{f.v, w})
				disc[w] = time
				low[w] = time
				time++
				stack = append(stack, blockFrame{v: w, parent: f.v, nbrs: g.adjList[w]})
				advanced = true
				break
			}
			if advanced {
				continue
			}
			// Done with f.v: propagate low-link and detect block roots.
			v := f.v
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
				if low[v] >= disc[p.v] {
					// Pop the edges accumulated since v was entered:
					// they form one block.
					var block bitset.Mask
					for len(edgeStack) > 0 {
						e := edgeStack[len(edgeStack)-1]
						edgeStack = edgeStack[:len(edgeStack)-1]
						block = block.Add(e[0]).Add(e[1])
						if e[0] == p.v && e[1] == v {
							break
						}
					}
					if !block.Empty() {
						blocks = append(blocks, block)
					}
				}
			}
		}
		sc.stack = stack // retain any growth for the next call
		root = root.Remove(r)
	}
	sc.blocks = blocks
	sc.edgeStack = edgeStack
	return blocks
}

// CutVertices returns the cut vertices (§2.4) of the subgraph induced by s:
// vertices whose removal increases the number of connected components.
func (g *Graph) CutVertices(s bitset.Mask) bitset.Mask {
	var cuts bitset.Mask
	blocks := g.FindBlocks(s)
	// A vertex is a cut vertex of the induced subgraph iff it belongs to at
	// least two blocks.
	count := make(map[int]int)
	for _, b := range blocks {
		b.ForEach(func(v int) { count[v]++ })
	}
	for v, c := range count {
		if c >= 2 {
			cuts = cuts.Add(v)
		}
	}
	return cuts
}

// BlockCutTree is the bipartite tree of blocks and cut vertices (§2.4).
type BlockCutTree struct {
	Blocks []bitset.Mask // block vertex sets
	Cuts   []int         // cut vertices
	// BlockCuts[i] lists indices into Cuts for the cut vertices inside
	// Blocks[i]; the tree edges are exactly (block i, cut BlockCuts[i][j]).
	BlockCuts [][]int
}

// BuildBlockCutTree computes the block-cut tree of the subgraph induced by s.
func (g *Graph) BuildBlockCutTree(s bitset.Mask) BlockCutTree {
	blocks := g.FindBlocks(s)
	cutsMask := g.CutVertices(s)
	cuts := cutsMask.Elements()
	cutIndex := make(map[int]int, len(cuts))
	for i, v := range cuts {
		cutIndex[v] = i
	}
	bc := make([][]int, len(blocks))
	for i, b := range blocks {
		b.Intersect(cutsMask).ForEach(func(v int) {
			bc[i] = append(bc[i], cutIndex[v])
		})
	}
	return BlockCutTree{Blocks: blocks, Cuts: cuts, BlockCuts: bc}
}
