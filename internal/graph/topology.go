package graph

import "math/rand"

// The constructors below build the join-graph topologies used throughout the
// paper's evaluation (§7.2.1): star, snowflake, chain, cycle and clique, plus
// random connected graphs for property testing. Edge selectivities default
// to 1 and are overwritten by the workload layer, which derives them from
// catalog statistics.

// Star returns a star join graph: vertex 0 is the fact relation, vertices
// 1..n-1 are dimensions joined to it.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i, 1)
	}
	return g
}

// Chain returns a chain join graph 0-1-2-...-(n-1).
func Chain(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i, 1)
	}
	return g
}

// Cycle returns a cycle join graph 0-1-...-(n-1)-0.
func Cycle(n int) *Graph {
	g := Chain(n)
	if n >= 3 {
		g.AddEdge(n-1, 0, 1)
	}
	return g
}

// Clique returns a complete join graph on n vertices.
func Clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	return g
}

// Snowflake returns a snowflake join graph: a star whose dimension arms are
// chains of the given depth (paper uses depth <= 4). fanout arms hang off
// the central fact vertex 0; the total vertex count is 1 + fanout*depth.
func Snowflake(fanout, depth int) *Graph {
	n := 1 + fanout*depth
	g := New(n)
	v := 1
	for a := 0; a < fanout; a++ {
		prev := 0
		for d := 0; d < depth; d++ {
			g.AddEdge(prev, v, 1)
			prev = v
			v++
		}
	}
	return g
}

// SnowflakeN returns a snowflake join graph with exactly n vertices by
// distributing n-1 dimension vertices over arms of at most maxDepth.
func SnowflakeN(n, maxDepth int) *Graph {
	if maxDepth < 1 {
		maxDepth = 1
	}
	g := New(n)
	v := 1
	for v < n {
		prev := 0
		for d := 0; d < maxDepth && v < n; d++ {
			g.AddEdge(prev, v, 1)
			prev = v
			v++
		}
	}
	return g
}

// RandomTree returns a random spanning tree on n vertices (random attachment).
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, 1)
	}
	return g
}

// RandomConnected returns a random connected graph on n vertices: a random
// spanning tree plus extra additional distinct edges (cycles).
func RandomConnected(n, extra int, rng *rand.Rand) *Graph {
	g := RandomTree(n, rng)
	maxExtra := n*(n-1)/2 - (n - 1)
	if extra > maxExtra {
		extra = maxExtra
	}
	for added := 0; added < extra; {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || g.HasEdge(a, b) {
			continue
		}
		g.AddEdge(a, b, 1)
		added++
	}
	return g
}
