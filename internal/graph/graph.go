// Package graph implements the join-graph machinery the optimizers are built
// on: G(R, E) with relations as vertices and inner-join predicates as edges
// (§2.1), subset connectivity tests, the grow function (§3.2.1), biconnected
// components / blocks via Hopcroft–Tarjan (§2.4), the block-cut tree, and a
// union-find used by the UnionDP partition phase (§4.2).
//
// Two vertex-set representations are supported: bitset.Mask for graphs of at
// most 64 vertices (the exact-DP fast path) and bitset.Set for the large
// graphs (1000+ relations) handled by the heuristic layer.
package graph

import (
	"fmt"
	"math/bits"

	"repro/internal/bitset"
)

// Edge is an undirected join edge between relations A and B annotated with
// the selectivity of the corresponding join predicate.
type Edge struct {
	A, B int
	Sel  float64
}

// Graph is an undirected join graph over vertices 0..N-1.
type Graph struct {
	N     int
	Edges []Edge

	adjList [][]int
	selList [][]float64   // selList[v][j] is the selectivity of (v, adjList[v][j])
	adjMask []bitset.Mask // valid only when N <= 64
	adjSet  []bitset.Set  // adjacency as dynamic sets, built lazily
	selAt   map[[2]int]float64
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{
		N:       n,
		adjList: make([][]int, n),
		selList: make([][]float64, n),
		adjMask: makeAdjMask(n),
		selAt:   make(map[[2]int]float64),
	}
}

func makeAdjMask(n int) []bitset.Mask {
	if n > 64 {
		return nil
	}
	return make([]bitset.Mask, n)
}

// AddEdge inserts the undirected edge (a, b) with join selectivity sel.
// Parallel edges are merged by multiplying selectivities (conjunctive
// predicates between the same pair of relations).
func (g *Graph) AddEdge(a, b int, sel float64) {
	if a == b {
		panic(fmt.Sprintf("graph: self edge on vertex %d", a))
	}
	if a > b {
		a, b = b, a
	}
	if old, ok := g.selAt[[2]int{a, b}]; ok {
		g.selAt[[2]int{a, b}] = old * sel
		for i := range g.Edges {
			if g.Edges[i].A == a && g.Edges[i].B == b {
				g.Edges[i].Sel *= sel
			}
		}
		for i, w := range g.adjList[a] {
			if w == b {
				g.selList[a][i] *= sel
			}
		}
		for i, w := range g.adjList[b] {
			if w == a {
				g.selList[b][i] *= sel
			}
		}
		return
	}
	g.selAt[[2]int{a, b}] = sel
	g.Edges = append(g.Edges, Edge{A: a, B: b, Sel: sel})
	g.adjList[a] = append(g.adjList[a], b)
	g.adjList[b] = append(g.adjList[b], a)
	g.selList[a] = append(g.selList[a], sel)
	g.selList[b] = append(g.selList[b], sel)
	if g.adjMask != nil {
		g.adjMask[a] = g.adjMask[a].Add(b)
		g.adjMask[b] = g.adjMask[b].Add(a)
	}
	g.adjSet = nil
}

// HasEdge reports whether (a, b) is an edge.
func (g *Graph) HasEdge(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	_, ok := g.selAt[[2]int{a, b}]
	return ok
}

// EdgeSel returns the selectivity of edge (a, b), or 1 if absent.
func (g *Graph) EdgeSel(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	if s, ok := g.selAt[[2]int{a, b}]; ok {
		return s
	}
	return 1
}

// Neighbors returns the adjacency list of v. The caller must not modify it.
func (g *Graph) Neighbors(v int) []int { return g.adjList[v] }

// AdjMask returns the neighbourhood of v as a Mask. Valid only for N <= 64.
func (g *Graph) AdjMask(v int) bitset.Mask { return g.adjMask[v] }

// NeighborhoodOf returns the union of neighbourhoods of the vertices of s,
// excluding s itself. Valid only for N <= 64. This is on the per-pair DP
// hot path, so the bit scan is inlined instead of going through ForEach.
func (g *Graph) NeighborhoodOf(s bitset.Mask) bitset.Mask {
	var nb bitset.Mask
	for m := uint64(s); m != 0; m &= m - 1 {
		nb |= g.adjMask[bits.TrailingZeros64(m)]
	}
	return nb.Diff(s)
}

// CrossSel multiplies the selectivities of every edge crossing from l to r,
// walking the smaller side's adjacency in list order (the same order and
// arithmetic as the selAt map lookups it replaces, so estimates stay
// bit-identical — but without a map probe per edge on the DP hot path).
func (g *Graph) CrossSel(l, r bitset.Mask) float64 {
	sel := 1.0
	if r.Count() < l.Count() {
		l, r = r, l
	}
	for m := uint64(l); m != 0; m &= m - 1 {
		v := bits.TrailingZeros64(m)
		sels := g.selList[v]
		for j, w := range g.adjList[v] {
			if r.Has(w) {
				sel *= sels[j]
			}
		}
	}
	return sel
}

// ConnectedTo reports whether some edge joins a vertex of l to a vertex of r.
// Valid only for N <= 64.
func (g *Graph) ConnectedTo(l, r bitset.Mask) bool {
	return !g.NeighborhoodOf(l).Disjoint(r)
}

// Grow implements the grow function of §3.2.1 on Mask sets: starting from
// src, it repeatedly adds every vertex of restrict adjacent to the current
// frontier and returns all vertices of restrict reachable from src.
// src must be a subset of restrict. Valid only for N <= 64.
func (g *Graph) Grow(src, restrict bitset.Mask) bitset.Mask {
	reach := src
	frontier := src
	for !frontier.Empty() {
		var next bitset.Mask
		for m := uint64(frontier); m != 0; m &= m - 1 {
			next |= g.adjMask[bits.TrailingZeros64(m)]
		}
		next = next.Intersect(restrict).Diff(reach)
		reach = reach.Union(next)
		frontier = next
	}
	return reach
}

// Connected reports whether the subgraph induced by s is connected
// (the empty set and singletons are connected). Valid only for N <= 64.
func (g *Graph) Connected(s bitset.Mask) bool {
	if s.Empty() {
		return true
	}
	return g.Grow(s.LowestBit(), s) == s
}

// ConnectedComponents returns the connected components of the subgraph
// induced by s. Valid only for N <= 64.
func (g *Graph) ConnectedComponents(s bitset.Mask) []bitset.Mask {
	var comps []bitset.Mask
	for !s.Empty() {
		c := g.Grow(s.LowestBit(), s)
		comps = append(comps, c)
		s = s.Diff(c)
	}
	return comps
}

// ensureAdjSet builds the dynamic-set adjacency on demand.
func (g *Graph) ensureAdjSet() {
	if g.adjSet != nil {
		return
	}
	g.adjSet = make([]bitset.Set, g.N)
	for v := 0; v < g.N; v++ {
		s := bitset.NewSet(g.N)
		for _, w := range g.adjList[v] {
			s.Add(w)
		}
		g.adjSet[v] = s
	}
}

// GrowSet is Grow for dynamic sets (graphs of any size).
func (g *Graph) GrowSet(src, restrict bitset.Set) bitset.Set {
	g.ensureAdjSet()
	reach := src.Clone()
	frontier := src.Clone()
	for !frontier.Empty() {
		next := bitset.NewSet(g.N)
		frontier.ForEach(func(v int) { next.UnionWith(g.adjSet[v]) })
		next.IntersectWith(restrict)
		next.DiffWith(reach)
		reach.UnionWith(next)
		frontier = next
	}
	return reach
}

// ConnectedSet reports whether the subgraph induced by s is connected,
// for graphs of any size.
func (g *Graph) ConnectedSet(s bitset.Set) bool {
	lo := s.Lowest()
	if lo < 0 {
		return true
	}
	return g.GrowSet(bitset.SetOf(g.N, lo), s).Equal(s)
}

// Subgraph extracts the subgraph induced by the given global vertex ids and
// returns it together with the local→global vertex mapping. Edge
// selectivities are preserved. The ids order defines local indices.
func (g *Graph) Subgraph(ids []int) (*Graph, []int) {
	local := make(map[int]int, len(ids))
	for li, gi := range ids {
		local[gi] = li
	}
	sub := New(len(ids))
	for _, e := range g.Edges {
		la, okA := local[e.A]
		lb, okB := local[e.B]
		if okA && okB {
			sub.AddEdge(la, lb, e.Sel)
		}
	}
	toGlobal := make([]int, len(ids))
	copy(toGlobal, ids)
	return sub, toGlobal
}

// IsTree reports whether the whole graph is connected and acyclic.
func (g *Graph) IsTree() bool {
	if g.N == 0 {
		return true
	}
	if len(g.Edges) != g.N-1 {
		return false
	}
	if g.N <= 64 {
		return g.Connected(bitset.Full(g.N))
	}
	full := bitset.NewSet(g.N)
	for v := 0; v < g.N; v++ {
		full.Add(v)
	}
	return g.ConnectedSet(full)
}
