package graph

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// naiveConnected checks connectivity of the induced subgraph by DFS over
// adjacency lists, independent of the mask-based Grow implementation.
func naiveConnected(g *Graph, s bitset.Mask) bool {
	els := s.Elements()
	if len(els) <= 1 {
		return true
	}
	seen := map[int]bool{els[0]: true}
	stack := []int{els[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if s.Has(w) && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(seen) == len(els)
}

func TestConnectedMatchesNaiveOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(12)
		g := RandomConnected(n, rng.Intn(n), rng)
		for probe := 0; probe < 200; probe++ {
			s := bitset.Mask(rng.Uint64()) & bitset.Full(n)
			if g.Connected(s) != naiveConnected(g, s) {
				t.Fatalf("Connected(%v) disagrees with naive DFS", s)
			}
		}
	}
}

func TestGrowPaperExample(t *testing.T) {
	// The example of §3.2.1 (Figure 5): vertices renumbered to 0-based.
	g := New(9)
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}, {3, 4}, {4, 8}, {8, 5}, {8, 6}, {5, 6}, {6, 7}, {5, 7}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1], 1)
	}
	src := bitset.MaskOf(0, 1, 2)
	restrict := bitset.MaskOf(0, 1, 2, 3, 4, 8)
	if got := g.Grow(src, restrict); got != restrict {
		t.Errorf("Grow = %v, want %v", got, restrict)
	}
}

func TestFindBlocksPaperExample(t *testing.T) {
	// Figure 5 graph (0-based): blocks should be {0,1,2,3}, {3,4}, {4,8},
	// {5,6,7,8}; cut vertices {3,4,8}.
	g := New(9)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}, {3, 4}, {4, 8}, {8, 5}, {8, 6}, {5, 6}, {6, 7}, {5, 7}} {
		g.AddEdge(e[0], e[1], 1)
	}
	blocks := g.FindBlocks(bitset.Full(9))
	want := map[bitset.Mask]bool{
		bitset.MaskOf(0, 1, 2, 3): true,
		bitset.MaskOf(3, 4):       true,
		bitset.MaskOf(4, 8):       true,
		bitset.MaskOf(5, 6, 7, 8): true,
	}
	if len(blocks) != len(want) {
		t.Fatalf("got %d blocks %v, want %d", len(blocks), blocks, len(want))
	}
	for _, b := range blocks {
		if !want[b] {
			t.Errorf("unexpected block %v", b)
		}
	}
	cuts := g.CutVertices(bitset.Full(9))
	if cuts != bitset.MaskOf(3, 4, 8) {
		t.Errorf("cut vertices = %v, want {3, 4, 8}", cuts)
	}
}

// naiveCutVertices removes each vertex and counts components.
func naiveCutVertices(g *Graph, s bitset.Mask) bitset.Mask {
	var cuts bitset.Mask
	base := len(g.ConnectedComponents(s))
	s.ForEach(func(v int) {
		without := s.Remove(v)
		if len(g.ConnectedComponents(without)) > base {
			cuts = cuts.Add(v)
		}
	})
	return cuts
}

func TestCutVerticesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(10)
		g := RandomConnected(n, rng.Intn(n), rng)
		s := bitset.Full(n)
		if got, want := g.CutVertices(s), naiveCutVertices(g, s); got != want {
			t.Fatalf("trial %d: CutVertices = %v, want %v", trial, got, want)
		}
	}
}

func TestBlocksPartitionEdges(t *testing.T) {
	// Every edge of the induced subgraph belongs to exactly one block.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(12)
		g := RandomConnected(n, rng.Intn(2*n), rng)
		s := bitset.Full(n)
		blocks := g.FindBlocks(s)
		for _, e := range g.Edges {
			owners := 0
			for _, b := range blocks {
				if b.Has(e.A) && b.Has(e.B) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("edge (%d,%d) in %d blocks", e.A, e.B, owners)
			}
		}
	}
}

func TestBlocksOnTreeAreEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomTree(12, rng)
	blocks := g.FindBlocks(bitset.Full(12))
	if len(blocks) != 11 {
		t.Fatalf("tree with 12 vertices must have 11 blocks, got %d", len(blocks))
	}
	for _, b := range blocks {
		if b.Count() != 2 {
			t.Errorf("tree block %v is not an edge", b)
		}
	}
}

func TestBlocksOnCliqueIsSingle(t *testing.T) {
	g := Clique(7)
	blocks := g.FindBlocks(bitset.Full(7))
	if len(blocks) != 1 || blocks[0] != bitset.Full(7) {
		t.Errorf("clique blocks = %v", blocks)
	}
}

func TestFindBlocksOnInducedSubgraph(t *testing.T) {
	// Blocks must respect the vertex restriction: on the Figure 5 graph,
	// S = {0,1,2,3,4} has blocks {0,1,2,3} and {3,4}.
	g := New(9)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}, {3, 4}, {4, 8}, {8, 5}, {8, 6}, {5, 6}, {6, 7}, {5, 7}} {
		g.AddEdge(e[0], e[1], 1)
	}
	blocks := g.FindBlocks(bitset.MaskOf(0, 1, 2, 3, 4))
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
}

func TestBlockCutTreeChain(t *testing.T) {
	g := New(9)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}, {3, 4}, {4, 8}, {8, 5}, {8, 6}, {5, 6}, {6, 7}, {5, 7}} {
		g.AddEdge(e[0], e[1], 1)
	}
	bct := g.BuildBlockCutTree(bitset.Full(9))
	if len(bct.Blocks) != 4 || len(bct.Cuts) != 3 {
		t.Fatalf("block-cut tree: %d blocks, %d cuts", len(bct.Blocks), len(bct.Cuts))
	}
	// A block-cut tree has |blocks| + |cuts| - 1 edges when the graph is
	// connected; here every edge list entry is one tree edge.
	edges := 0
	for _, bc := range bct.BlockCuts {
		edges += len(bc)
	}
	if edges != len(bct.Blocks)+len(bct.Cuts)-1 {
		t.Errorf("block-cut tree has %d edges, want %d", edges, len(bct.Blocks)+len(bct.Cuts)-1)
	}
}

func TestGrowSetMatchesGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(20)
		g := RandomConnected(n, rng.Intn(n), rng)
		restrict := bitset.Mask(rng.Uint64()) & bitset.Full(n)
		if restrict.Empty() {
			continue
		}
		src := restrict.LowestBit()
		want := g.Grow(src, restrict)
		got := g.GrowSet(bitset.FromMask(n, src), bitset.FromMask(n, restrict))
		if !got.Equal(bitset.FromMask(n, want)) {
			t.Fatalf("GrowSet %v != Grow %v", got, want)
		}
	}
}

func TestSubgraphPreservesSelectivities(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 2, 0.25)
	g.AddEdge(2, 3, 0.1)
	g.AddEdge(3, 4, 0.01)
	sub, toGlobal := g.Subgraph([]int{1, 2, 3})
	if sub.N != 3 || len(sub.Edges) != 2 {
		t.Fatalf("subgraph shape wrong: n=%d edges=%d", sub.N, len(sub.Edges))
	}
	if sub.EdgeSel(0, 1) != 0.25 || sub.EdgeSel(1, 2) != 0.1 {
		t.Error("selectivities not preserved")
	}
	if toGlobal[0] != 1 || toGlobal[2] != 3 {
		t.Error("local→global mapping wrong")
	}
}

func TestParallelEdgesMergeSelectivity(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 0, 0.1) // same undirected edge, conjunctive predicate
	if got := g.EdgeSel(0, 1); got != 0.05 {
		t.Errorf("merged selectivity = %v, want 0.05", got)
	}
	if len(g.Edges) != 1 {
		t.Errorf("parallel edge duplicated: %d edges", len(g.Edges))
	}
}

func TestTopologies(t *testing.T) {
	if !Star(8).IsTree() || !Chain(8).IsTree() || !SnowflakeN(10, 3).IsTree() {
		t.Error("star/chain/snowflake must be trees")
	}
	if Cycle(6).IsTree() || Clique(5).IsTree() {
		t.Error("cycle/clique must not be trees")
	}
	if got := len(Clique(6).Edges); got != 15 {
		t.Errorf("clique(6) has %d edges, want 15", got)
	}
	sf := Snowflake(3, 4)
	if sf.N != 13 || len(sf.Edges) != 12 {
		t.Errorf("snowflake(3,4): n=%d edges=%d", sf.N, len(sf.Edges))
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(10)
	uf.Union(0, 1)
	uf.Union(1, 2)
	uf.Union(5, 6)
	if !uf.Same(0, 2) || uf.Same(0, 5) {
		t.Error("Same broken")
	}
	if uf.Size(2) != 3 || uf.Size(5) != 2 || uf.Size(9) != 1 {
		t.Error("Size broken")
	}
	groups := uf.Groups()
	if len(groups) != 7 {
		t.Errorf("Groups = %d, want 7", len(groups))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	comps := g.ConnectedComponents(bitset.Full(6))
	if len(comps) != 4 {
		t.Errorf("components = %d, want 4", len(comps))
	}
}
