package graph

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// FindBlocks is MPDP's per-set hot path (one call per connected set); these
// benchmarks track its cost on the topologies of §7.2.1.
func BenchmarkFindBlocks(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *Graph
	}{
		{"tree-16", RandomTree(16, rng)},
		{"cycle-16", Cycle(16)},
		{"clique-12", Clique(12)},
		{"random-20", RandomConnected(20, 10, rng)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			s := bitset.Full(c.g.N)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if blocks := c.g.FindBlocks(s); len(blocks) == 0 {
					b.Fatal("no blocks")
				}
			}
		})
	}
}

func BenchmarkGrow(b *testing.B) {
	g := SnowflakeN(24, 4)
	s := bitset.Full(24)
	src := bitset.Single(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if g.Grow(src, s) != s {
			b.Fatal("grow incomplete")
		}
	}
}

func BenchmarkConnected(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := RandomConnected(24, 12, rng)
	masks := make([]bitset.Mask, 1024)
	for i := range masks {
		masks[i] = bitset.Mask(rng.Uint64()) & bitset.Full(24)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Connected(masks[i%len(masks)])
	}
}
