package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/workload"
)

// heuristicSuite is the lineup of Tables 1 and 2, in the paper's row order.
func heuristicSuite() []suiteEntry {
	return []suiteEntry{
		{"GE-QO", core.AlgGEQO, 0},
		{"GOO", core.AlgGOO, 0},
		{"LinDP", core.AlgLinDP, 0},
		{"IKKBZ", core.AlgIKKBZ, 0},
		{"IDP2-MPDP(15)", core.AlgIDP2, 0},
		{"IDP2-MPDP(25)", core.AlgIDP2, 0},
		{"UnionDP-MPDP(15)", core.AlgUnionDP, 0},
	}
}

func kFor(label string) int {
	switch label {
	case "IDP2-MPDP(25)":
		return 25
	default:
		return 15
	}
}

// runQualityTable drives one heuristic plan-quality table (Tables 1 and 2):
// for each query size, cfg.Queries queries are optimized by every heuristic,
// each plan's cost is normalized by the best plan found by any of them for
// that query, and the mean and 95th percentile of the normalized cost are
// reported. '-' marks heuristics that exceeded the timeout at that size.
func runQualityTable(ctx context.Context, w io.Writer, cfg Config, title string, sizes []int,
	gen func(n int, rng *rand.Rand) *cost.Query) error {

	sizes = cfg.cap(sizes)
	suite := heuristicSuite()
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "(normalized plan cost: best found = 1.0; avg and p95 over %d queries; timeout %v)\n\n",
		cfg.queries(), cfg.timeout())
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "technique")
	for _, n := range sizes {
		fmt.Fprintf(tw, "\t%d avg\t%d p95", n, n)
	}
	fmt.Fprint(tw, "\t\n")

	// results[si][ni] collects normalized costs.
	results := make([][][]float64, len(suite))
	for si := range results {
		results[si] = make([][]float64, len(sizes))
	}
	dead := make([][]bool, len(suite))
	for si := range dead {
		dead[si] = make([]bool, len(sizes))
	}

	for ni, n := range sizes {
		for qi := 0; qi < cfg.queries(); qi++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(qi)*104729 + int64(n)))
			q := gen(n, rng)
			costs := make([]float64, len(suite))
			best := 0.0
			for si, s := range suite {
				if ni > 0 && dead[si][ni-1] {
					dead[si][ni] = true
					continue
				}
				res, err := core.Optimize(ctx, q, core.Options{
					Algorithm: s.alg,
					Timeout:   cfg.timeout(),
					Threads:   cfg.Threads,
					K:         kFor(s.label),
					Seed:      cfg.Seed + int64(qi),
				})
				if err != nil {
					dead[si][ni] = true
					continue
				}
				costs[si] = res.Plan.Cost
				if best == 0 || res.Plan.Cost < best {
					best = res.Plan.Cost
				}
			}
			for si := range suite {
				if costs[si] > 0 && best > 0 {
					results[si][ni] = append(results[si][ni], costs[si]/best)
				}
			}
		}
	}

	for si, s := range suite {
		fmt.Fprint(tw, s.label)
		for ni := range sizes {
			xs := results[si][ni]
			if len(xs) == 0 {
				fmt.Fprint(tw, "\t-\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.1f\t%.1f", mean(xs), percentile(xs, 95))
		}
		fmt.Fprint(tw, "\t\n")
	}
	return tw.Flush()
}

// Table1 reproduces Table 1: heuristic plan quality on snowflake queries of
// 30 to 1000 relations.
func Table1(ctx context.Context, w io.Writer, cfg Config) error {
	return runQualityTable(ctx, w, cfg,
		"Table 1: heuristic cost comparison, snowflake schema",
		[]int{30, 40, 50, 60, 80, 100, 200, 400, 500, 600, 800, 1000},
		func(n int, rng *rand.Rand) *cost.Query { return workload.Snowflake(n, rng) })
}

// Table2 reproduces Table 2: heuristic plan quality on star queries of 30
// to 600 relations.
func Table2(ctx context.Context, w io.Writer, cfg Config) error {
	return runQualityTable(ctx, w, cfg,
		"Table 2: heuristic cost comparison, star schema",
		[]int{30, 40, 50, 60, 80, 100, 200, 300, 400, 500, 600},
		func(n int, rng *rand.Rand) *cost.Query { return workload.Star(n, rng) })
}

// Ablation reproduces §7.2.5: the impact of the two GPU implementation
// enhancements (kernel-fused pruning and Collaborative Context Collection)
// on the modeled device time of MPDP-GPU and DPSub-GPU.
func Ablation(ctx context.Context, w io.Writer, cfg Config) error {
	type variant struct {
		label string
		cfg   gpusim.Config
	}
	variants := []variant{
		{"baseline [23] (no fuse, no CCC)", gpusim.Config{Device: gpusim.GTX1080()}},
		{"+fused prune", gpusim.Config{Device: gpusim.GTX1080(), FusedPrune: true}},
		{"+CCC", gpusim.Config{Device: gpusim.GTX1080(), CCC: true}},
		{"+both (paper)", gpusim.Config{Device: gpusim.GTX1080(), FusedPrune: true, CCC: true}},
	}
	gens := []struct {
		label string
		gen   func(n int, rng *rand.Rand) *cost.Query
		n     int
	}{
		{"star", func(n int, rng *rand.Rand) *cost.Query { return workload.Star(n, rng) }, 16},
		{"snowflake", func(n int, rng *rand.Rand) *cost.Query { return workload.Snowflake(n, rng) }, 18},
		{"musicbrainz", mbGen, 16},
	}
	fmt.Fprintln(w, "GPU enhancement ablation (§7.2.5): simulated device time of MPDP (GPU), ms")
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "configuration")
	for _, g := range gens {
		fmt.Fprintf(tw, "\t%s(%d)", g.label, g.n)
	}
	fmt.Fprint(tw, "\t\n")
	for _, v := range variants {
		fmt.Fprint(tw, v.label)
		for _, g := range gens {
			n := g.n
			if cfg.MaxRels > 0 && cfg.MaxRels < n {
				n = cfg.MaxRels
			}
			rng := rand.New(rand.NewSource(cfg.Seed))
			q := g.gen(n, rng)
			_, _, gs, err := gpusim.MPDPGPU(dp.Input{
				Q: q, M: cost.DefaultModel(),
				Deadline: time.Now().Add(cfg.timeout()),
			}, v.cfg)
			if err != nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.3f", gs.SimTimeMS)
		}
		fmt.Fprint(tw, "\t\n")
	}
	return tw.Flush()
}
