// Package experiments regenerates every table and figure of the paper's
// evaluation section (§7) on top of the repository's optimizers and
// workloads. Each experiment writes an aligned text table to the supplied
// writer; cmd/mpdp-bench is the CLI front end.
//
// Timing convention (see DESIGN.md): CPU algorithms report wall-clock
// optimization time on this machine; the *-gpu algorithms report the
// simulated device time of the GPU execution model, since no physical GPU is
// available to a pure-Go reproduction. Comparisons across the two groups
// therefore reproduce the paper's *shape* (who wins, where curves cross),
// not its absolute milliseconds.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/workload"
)

// Config tunes experiment scale so the full suite can run in minutes
// (defaults) or at full paper scale (flags of cmd/mpdp-bench).
type Config struct {
	// Timeout per optimization run (paper: 1 minute).
	Timeout time.Duration
	// Queries per (workload, size) cell (paper: 15 for Fig. 9, 100 for
	// Tables 1-2).
	Queries int
	// Threads for the parallel CPU algorithms (paper: 24).
	Threads int
	// Seed for workload generation.
	Seed int64
	// MaxRels optionally caps the largest query size per experiment,
	// trading fidelity for runtime.
	MaxRels int
}

// DefaultConfig returns a configuration that finishes the whole suite in
// a few minutes on a laptop-class machine.
func DefaultConfig() Config {
	return Config{
		Timeout: 10 * time.Second,
		Queries: 3,
		Threads: runtime.GOMAXPROCS(0),
		Seed:    1,
	}
}

func (c Config) queries() int {
	if c.Queries > 0 {
		return c.Queries
	}
	return 3
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 10 * time.Second
}

func (c Config) cap(sizes []int) []int {
	if c.MaxRels <= 0 {
		return sizes
	}
	out := sizes[:0:0]
	for _, n := range sizes {
		if n <= c.MaxRels {
			out = append(out, n)
		}
	}
	return out
}

// exactSuite is the algorithm lineup of Figs. 6-9 and 11, in the paper's
// legend order.
func exactSuite(threads int) []suiteEntry {
	return []suiteEntry{
		{"Postgres (1CPU)", core.AlgDPSize, 1},
		{"DPCCP (1CPU)", core.AlgDPCCP, 1},
		{fmt.Sprintf("DPE (%dCPU)", threads), core.AlgDPE, threads},
		{"DPSub (GPU)", core.AlgDPSubGPU, 0},
		{"DPSize (GPU)", core.AlgDPSizeGPU, 0},
		{fmt.Sprintf("MPDP (%dCPU)", threads), core.AlgMPDPParallel, threads},
		{"MPDP (GPU)", core.AlgMPDPGPU, 0},
	}
}

type suiteEntry struct {
	label   string
	alg     core.Algorithm
	threads int
}

// measure runs one optimization and returns the reported time in
// milliseconds (simulated device time for GPU algorithms, wall time
// otherwise) and whether it finished within the timeout.
func measure(ctx context.Context, q *cost.Query, alg core.Algorithm, threads int, timeout time.Duration) (float64, bool) {
	res, err := core.Optimize(ctx, q, core.Options{
		Algorithm: alg,
		Timeout:   timeout,
		Threads:   threads,
	})
	if err != nil {
		return 0, false
	}
	if res.GPU != nil {
		return res.GPU.SimTimeMS, true
	}
	return float64(res.Elapsed.Microseconds()) / 1e3, true
}

// runTimingFigure drives one optimization-time figure: all suite algorithms
// across the given sizes, averaging cfg.Queries queries per size. A curve
// stops (like in the paper's plots) once its algorithm times out at a size.
func runTimingFigure(ctx context.Context, w io.Writer, cfg Config, title string, sizes []int,
	gen func(n int, rng *rand.Rand) *cost.Query) error {

	sizes = cfg.cap(sizes)
	suite := exactSuite(cfg.Threads)
	dead := make([]bool, len(suite))

	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "(times in ms; GPU entries are simulated device time; '-' = exceeded %v; averaged over %d queries)\n\n",
		cfg.timeout(), cfg.queries())
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "rels")
	for _, s := range suite {
		fmt.Fprintf(tw, "\t%s", s.label)
	}
	fmt.Fprint(tw, "\t\n")

	for _, n := range sizes {
		fmt.Fprintf(tw, "%d", n)
		for si, s := range suite {
			if dead[si] {
				fmt.Fprint(tw, "\t-")
				continue
			}
			var sum float64
			ok := true
			for qi := 0; qi < cfg.queries() && ok; qi++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(qi)*7919 + int64(n)))
				q := gen(n, rng)
				ms, done := measure(ctx, q, s.alg, s.threads, cfg.timeout())
				if !done || ms > float64(cfg.timeout().Milliseconds()) {
					ok = false
					break
				}
				sum += ms
			}
			if !ok {
				dead[si] = true
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.2f", sum/float64(cfg.queries()))
		}
		fmt.Fprint(tw, "\t\n")
	}
	return tw.Flush()
}

// percentile returns the p-th percentile (0..100) of xs.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// mbGen adapts the MusicBrainz generator to the figure driver signature.
func mbGen(n int, rng *rand.Rand) *cost.Query { return workload.MusicBrainzQuery(n, rng) }
