package experiments

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"
)

// smallConfig keeps every experiment to a sub-second smoke run.
func smallConfig() Config {
	return Config{
		Timeout: 2 * time.Second,
		Queries: 1,
		Threads: 4,
		Seed:    1,
		MaxRels: 10,
	}
}

func TestEveryExperimentProducesOutput(t *testing.T) {
	experiments := []struct {
		name string
		run  func(ctx context.Context, w io.Writer, cfg Config) error
		want string
	}{
		{"fig2", Fig2, "parallelizability"},
		{"fig4", Fig4, "EvaluatedCounter"},
		{"fig6", Fig6, "star"},
		{"fig7", Fig7, "snowflake"},
		{"fig8", Fig8, "clique"},
		{"fig9", Fig9, "MusicBrainz"},
		{"fig10", Fig10, "exec/opt"},
		{"fig11", Fig11, "JOB"},
		{"fig12", Fig12, "scalability"},
		{"fig13", Fig13, "AWS"},
		{"table1", Table1, "snowflake"},
		{"table2", Table2, "star"},
		{"ablation", Ablation, "CCC"},
	}
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			var sb strings.Builder
			if err := e.run(context.Background(), &sb, smallConfig()); err != nil {
				t.Fatalf("%s: %v", e.name, err)
			}
			out := sb.String()
			if !strings.Contains(out, e.want) {
				t.Errorf("%s output missing %q:\n%s", e.name, e.want, out)
			}
			if strings.Count(out, "\n") < 3 {
				t.Errorf("%s output suspiciously short:\n%s", e.name, out)
			}
		})
	}
}

func TestPercentileAndMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(xs, 95); got != 10 {
		t.Errorf("p95 = %v", got)
	}
	if got := percentile(xs, 50); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := mean(xs); got != 5.5 {
		t.Errorf("mean = %v", got)
	}
}

func TestConfigCap(t *testing.T) {
	cfg := Config{MaxRels: 12}
	got := cfg.cap([]int{4, 8, 12, 16, 20})
	if len(got) != 3 || got[2] != 12 {
		t.Errorf("cap = %v", got)
	}
	uncapped := Config{}
	if got := uncapped.cap([]int{4, 8}); len(got) != 2 {
		t.Errorf("uncapped cap = %v", got)
	}
}
