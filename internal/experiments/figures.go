package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// Fig2 reproduces Figure 2: the number of join pairs each technique
// evaluates on a 20-relation MusicBrainz query, normalized to the query's
// CCP-Counter, against the technique's parallelizability class.
func Fig2(ctx context.Context, w io.Writer, cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 20
	if cfg.MaxRels > 0 && cfg.MaxRels < n {
		n = cfg.MaxRels
	}
	q := workload.MusicBrainzQuery(n, rng)
	rep, err := dp.Counters(dp.Input{Q: q, M: cost.DefaultModel(),
		Deadline: time.Now().Add(cfg.timeout() * 6)})
	if err != nil {
		return err
	}
	norm := func(v uint64) float64 { return float64(v) / float64(rep.CCP) }
	fmt.Fprintf(w, "Figure 2: normalized evaluated join pairs vs parallelizability (%d-rel MusicBrainz query)\n", q.N())
	fmt.Fprintf(w, "CCP-Counter (valid join pairs) = %d\n\n", rep.CCP)
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "technique\tevaluated/valid\tparallelizability\t")
	fmt.Fprintf(tw, "DPSize\t%.1f\tmedium\t\n", norm(rep.DPSizeEvaluated))
	fmt.Fprintf(tw, "DPSub\t%.1f\tmedium\t\n", norm(rep.DPSubEvaluated))
	fmt.Fprintf(tw, "DPCCP\t%.1f\tsequential\t\n", norm(rep.DPCCPEvaluated))
	fmt.Fprintf(tw, "DPE\t%.1f\tmedium\t\n", norm(rep.DPCCPEvaluated))
	fmt.Fprintf(tw, "PDP\t%.1f\tmedium\t\n", norm(rep.DPSizeEvaluated))
	fmt.Fprintf(tw, "DPSize-GPU\t%.1f\thigh\t\n", norm(rep.DPSizeEvaluated))
	fmt.Fprintf(tw, "DPSub-GPU\t%.1f\thigh\t\n", norm(rep.DPSubEvaluated))
	fmt.Fprintf(tw, "MPDP\t%.1f\thigh\t\n", norm(rep.MPDPEvaluated))
	return tw.Flush()
}

// Fig4 reproduces Figure 4: EvaluatedCounter vs CCP-Counter of DPSub on
// star queries of 2..25 relations.
func Fig4(ctx context.Context, w io.Writer, cfg Config) error {
	maxN := 25
	if cfg.MaxRels > 0 && cfg.MaxRels < maxN {
		maxN = cfg.MaxRels
	}
	fmt.Fprintln(w, "Figure 4: DPSub EvaluatedCounter vs CCP-Counter, star join queries")
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "rels\tCCP-Counter\tEvaluatedCounter\tratio\t")
	for n := 2; n <= maxN; n++ {
		rng := rand.New(rand.NewSource(cfg.Seed))
		q := workload.Star(n, rng)
		rep, err := dp.Counters(dp.Input{Q: q, M: cost.DefaultModel(),
			Deadline: time.Now().Add(cfg.timeout() * 6)})
		if err != nil {
			fmt.Fprintf(tw, "%d\t-\t-\t-\t\n", n)
			break
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.0f\t\n",
			n, rep.CCP, rep.DPSubEvaluated, float64(rep.DPSubEvaluated)/float64(rep.CCP))
	}
	return tw.Flush()
}

// Fig6 reproduces Figure 6: optimization times on star join graphs.
func Fig6(ctx context.Context, w io.Writer, cfg Config) error {
	return runTimingFigure(ctx, w, cfg, "Figure 6: optimization times on star graph",
		[]int{4, 6, 8, 10, 12, 14, 16, 18, 20, 21, 22, 23, 24, 25, 26, 28, 30},
		func(n int, rng *rand.Rand) *cost.Query { return workload.Star(n, rng) })
}

// Fig7 reproduces Figure 7: optimization times on snowflake join graphs.
func Fig7(ctx context.Context, w io.Writer, cfg Config) error {
	return runTimingFigure(ctx, w, cfg, "Figure 7: optimization times on snowflake graph",
		[]int{4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 35},
		func(n int, rng *rand.Rand) *cost.Query { return workload.Snowflake(n, rng) })
}

// Fig8 reproduces Figure 8: optimization times on clique join graphs.
func Fig8(ctx context.Context, w io.Writer, cfg Config) error {
	return runTimingFigure(ctx, w, cfg, "Figure 8: optimization times on clique graph",
		[]int{4, 6, 8, 10, 12, 14, 15, 16, 17, 18, 19, 20},
		func(n int, rng *rand.Rand) *cost.Query { return workload.Clique(n, rng) })
}

// Fig9 reproduces Figure 9: optimization times on MusicBrainz random-walk
// queries.
func Fig9(ctx context.Context, w io.Writer, cfg Config) error {
	return runTimingFigure(ctx, w, cfg, "Figure 9: optimization times on MusicBrainz queries",
		[]int{4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}, mbGen)
}

// Fig10 reproduces Figure 10: the ratio of (estimated) execution time to
// optimization time on MusicBrainz queries, for the PostgreSQL optimizer
// (DPSize, 1 CPU) and MPDP (GPU). Execution time is the cost model's
// estimate for the produced plan (see EXPERIMENTS.md for this substitution).
func Fig10(ctx context.Context, w io.Writer, cfg Config) error {
	sizes := cfg.cap([]int{5, 8, 10, 12, 14, 16, 18, 20, 22, 25})
	for _, part := range []struct {
		title string
		gen   func(n int, rng *rand.Rand) *cost.Query
	}{
		{"Figure 10a: exec/opt ratio, PK-FK joins (MusicBrainz)", mbGen},
		{"Figure 10b: exec/opt ratio, non PK-FK joins (MusicBrainz)",
			func(n int, rng *rand.Rand) *cost.Query { return workload.MusicBrainzNonPKFK(n, rng) }},
	} {
		fmt.Fprintln(w, part.title)
		tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "rels\tPostgres (1CPU)\tMPDP (GPU)\t")
		pgDead := false
		for _, n := range sizes {
			var pgR, gpuR []float64
			for qi := 0; qi < cfg.queries(); qi++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(qi)*131 + int64(n)))
				q := part.gen(n, rng)
				// MPDP (GPU): optimal plan, simulated optimization time.
				res, err := core.Optimize(ctx, q, core.Options{
					Algorithm: core.AlgMPDPGPU, Timeout: cfg.timeout(),
				})
				if err != nil {
					continue
				}
				exec := cost.EstimatedExecTimeMS(res.Plan.Cost)
				gpuR = append(gpuR, exec/res.GPU.SimTimeMS)
				if !pgDead {
					pg, err := core.Optimize(ctx, q, core.Options{
						Algorithm: core.AlgDPSize, Timeout: cfg.timeout(), Threads: 1,
					})
					if err != nil {
						// Conservative convention of §7.2.3: count the
						// timeout value as the optimization time.
						pgR = append(pgR, exec/float64(cfg.timeout().Milliseconds()))
						pgDead = true
					} else {
						pgMS := float64(pg.Elapsed.Microseconds()) / 1e3
						pgR = append(pgR, cost.EstimatedExecTimeMS(pg.Plan.Cost)/pgMS)
					}
				}
			}
			fmt.Fprintf(tw, "%d\t%.3g\t%.3g\t\n", n, mean(pgR), mean(gpuR))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig11 reproduces Figure 11: optimization times on the (JOB-shaped) Join
// Order Benchmark queries, grouped by relation count.
func Fig11(ctx context.Context, w io.Writer, cfg Config) error {
	queries := workload.JOBQueries(cfg.Seed)
	bySize := map[int][]*cost.Query{}
	for _, jq := range queries {
		bySize[jq.Rels] = append(bySize[jq.Rels], jq.Query)
	}
	var sizes []int
	for n := range bySize {
		sizes = append(sizes, n)
	}
	sortInts(sizes)
	sizes = cfg.cap(sizes)

	suite := exactSuite(cfg.Threads)
	fmt.Fprintln(w, "Figure 11: JOB query optimization times (JOB-shaped workload, see DESIGN.md)")
	fmt.Fprintf(w, "(times in ms; GPU entries are simulated device time; '-' = exceeded %v)\n\n", cfg.timeout())
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "rels")
	for _, s := range suite {
		fmt.Fprintf(tw, "\t%s", s.label)
	}
	fmt.Fprint(tw, "\t\n")
	for _, n := range sizes {
		fmt.Fprintf(tw, "%d", n)
		for _, s := range suite {
			var sum float64
			count := 0
			ok := true
			for _, q := range bySize[n] {
				ms, done := measure(ctx, q, s.alg, s.threads, cfg.timeout())
				if !done {
					ok = false
					break
				}
				sum += ms
				count++
			}
			if !ok || count == 0 {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.2f", sum/float64(count))
		}
		fmt.Fprint(tw, "\t\n")
	}
	return tw.Flush()
}

// Fig12 reproduces Figure 12: CPU scalability of MPDP vs DPE on a
// 20-relation MusicBrainz query, speedup over single-thread execution.
func Fig12(ctx context.Context, w io.Writer, cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 20
	if cfg.MaxRels > 0 && cfg.MaxRels < n {
		n = cfg.MaxRels
	}
	q := workload.MusicBrainzQuery(n, rng)
	m := cost.DefaultModel()
	maxThreads := cfg.Threads
	if maxThreads < 2 {
		maxThreads = 2
	}

	timeOf := func(f dp.Func, threads int) (float64, error) {
		start := time.Now()
		_, _, err := f(dp.Input{Q: q, M: m, Threads: threads,
			Deadline: time.Now().Add(cfg.timeout() * 6)})
		return time.Since(start).Seconds(), err
	}

	fmt.Fprintf(w, "Figure 12: CPU scalability on a %d-rel MusicBrainz query (speedup over 1 thread)\n", q.N())
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "threads\tMPDP (CPU)\tDPE (CPU)\t")
	mpdp1, err := timeOf(parallel.MPDP, 1)
	if err != nil {
		return err
	}
	dpe1, err := timeOf(parallel.DPE, 1)
	if err != nil {
		return err
	}
	for t := 1; t <= maxThreads; t++ {
		if t > 4 && t%2 != 0 {
			continue
		}
		mp, err := timeOf(parallel.MPDP, t)
		if err != nil {
			return err
		}
		de, err := timeOf(parallel.DPE, t)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t\n", t, mpdp1/mp, dpe1/de)
	}
	return tw.Flush()
}

// awsInstance pairs an algorithm with the cheapest effective instance type
// of §7.5 and its 2021 on-demand hourly price in cents.
type awsInstance struct {
	label        string
	alg          core.Algorithm
	threads      int
	instance     string
	centsPerHour float64
	gpu          *gpusim.Config
}

// Fig13 reproduces Figure 13: the monetary cost of optimizing one star
// query on AWS, obtained by multiplying measured (or simulated-device)
// optimization time by the instance's per-hour price.
func Fig13(ctx context.Context, w io.Writer, cfg Config) error {
	t4 := gpusim.Config{Device: gpusim.TeslaT4(), FusedPrune: true, CCC: true}
	suite := []awsInstance{
		{"Postgres (1CPU)", core.AlgDPSize, 1, "c5.large", 8.5, nil},
		{"DPCCP (1CPU)", core.AlgDPCCP, 1, "c5.large", 8.5, nil},
		{"DPE (4CPU)", core.AlgDPE, 4, "c5.xlarge", 17.0, nil},
		{"DPSub (GPU)", core.AlgDPSubGPU, 0, "g4dn.xlarge", 52.6, &t4},
		{"DPSize (GPU)", core.AlgDPSizeGPU, 0, "g4dn.xlarge", 52.6, &t4},
		{"MPDP (4CPU)", core.AlgMPDPParallel, 4, "c5.xlarge", 17.0, nil},
		{"MPDP (GPU)", core.AlgMPDPGPU, 0, "g4dn.xlarge", 52.6, &t4},
	}
	sizes := cfg.cap([]int{5, 10, 15, 18, 20, 22, 23, 24, 25, 26, 28, 30})

	fmt.Fprintln(w, "Figure 13: cost of optimization on AWS (US cents per query, star graph)")
	fmt.Fprintln(w, "(price = reported optimization time × instance $/hour; '-' = exceeded timeout)")
	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "rels")
	for _, s := range suite {
		fmt.Fprintf(tw, "\t%s", s.label)
	}
	fmt.Fprint(tw, "\t\n")
	dead := make([]bool, len(suite))
	for _, n := range sizes {
		fmt.Fprintf(tw, "%d", n)
		for si, s := range suite {
			if dead[si] {
				fmt.Fprint(tw, "\t-")
				continue
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
			q := workload.Star(n, rng)
			res, err := core.Optimize(ctx, q, core.Options{
				Algorithm: s.alg, Timeout: cfg.timeout(), Threads: s.threads, GPU: s.gpu,
			})
			if err != nil {
				dead[si] = true
				fmt.Fprint(tw, "\t-")
				continue
			}
			ms := float64(res.Elapsed.Microseconds()) / 1e3
			if res.GPU != nil {
				ms = res.GPU.SimTimeMS
			}
			cents := ms / 3600.0 / 1000.0 * s.centsPerHour
			fmt.Fprintf(tw, "\t%.7f", cents)
		}
		fmt.Fprint(tw, "\t\n")
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "instances: c5.large ($0.085/h), c5.xlarge ($0.17/h), g4dn.xlarge ($0.526/h, NVIDIA T4)")
	return nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
