package service

import (
	"testing"

	"repro/internal/graph"
)

func TestDetectShape(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want Shape
	}{
		{"chain", graph.Chain(6), ShapeChain},
		{"two-vertex", graph.Chain(2), ShapeChain},
		{"star", graph.Star(6), ShapeStar},
		{"clique", graph.Clique(5), ShapeClique},
		{"triangle", graph.Clique(3), ShapeClique},
		{"cycle", graph.Cycle(6), ShapeGeneral},
		{"snowflake", graph.Snowflake(3, 2), ShapeTree},
	}
	for _, tc := range tests {
		if got := DetectShape(tc.g); got != tc.want {
			t.Errorf("%s: DetectShape = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestShapeIsTree(t *testing.T) {
	for _, s := range []Shape{ShapeChain, ShapeStar, ShapeTree} {
		if !s.IsTree() {
			t.Errorf("%s should be a tree shape", s)
		}
	}
	for _, s := range []Shape{ShapeClique, ShapeGeneral} {
		if s.IsTree() {
			t.Errorf("%s should not be a tree shape", s)
		}
	}
}
