package service

import (
	"repro/internal/bitset"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/plan"
)

// This file owns the subgraph memo's two halves of the optimization path:
// the warm-start hook that seeds a fresh DP table with cached winners for
// matching connected subqueries before enumeration, and the background
// harvester that fingerprints a completed table's connected sets into the
// memo afterwards. Both are wired into the level drivers through
// backend.Options (see dp.Input.Warm / dp.Input.Harvest); algorithms that
// do not run a level driver simply never call them.

// memoHooks builds the per-request warm and harvest closures for q.
func (s *Service) memoHooks(q *cost.Query, originKey string) (func(*plan.Table, [][]bitset.Mask) int, func(*plan.Table)) {
	warm := func(tab *plan.Table, buckets [][]bitset.Mask) int {
		return s.warmTable(q, tab, buckets)
	}
	harvest := func(tab *plan.Table) {
		// The driver hands the table over synchronously at the end of a
		// successful run; the expensive per-set canonicalization happens on
		// the harvester goroutine. The query is deep-copied because the
		// caller owns (and may mutate) the original after Optimize returns.
		s.enqueueHarvest(harvestJob{
			q:      cloneQuery(q),
			tab:    tab,
			origin: originKey,
			epoch:  s.StatsEpoch(),
		})
	}
	return warm, harvest
}

// warmTable seeds tab with memo winners for the connected sets of q that
// match cached induced fingerprints, returning how many sets it seeded.
//
// Probing walks the buckets largest-first and pays a full canonicalization
// only for the maximal matching regions: a hit yields an origin→query
// vertex correspondence (the entry's Verts composed with the probe's own
// permutation), and every memo entry from the same origin whose Set lies
// inside the matched region is then translated into query space with plain
// bit arithmetic and seeded — no further canonicalization. Sets covered by
// an earlier bulk seed are skipped outright, and absent subsets are
// rejected by the cheap order-invariant hash before any canonical work.
//
// A seeded winner is sound verbatim: the induced key embeds the exact
// statistics and internal selectivities, which fully determine the
// subquery's optimal cost, the correspondence is a stats-preserving
// isomorphism (equal canonical keys serialize the exact subgraph), and
// split sides are connected (csg-cmp invariant), so they are themselves
// seeded or enumerated at smaller sizes before plan.Table.Build walks them.
func (s *Service) warmTable(q *cost.Query, tab *plan.Table, buckets [][]bitset.Mask) int {
	if s.submemo.Len() == 0 {
		return 0
	}
	s.counters.warmRuns.Add(1)
	ih := newInvariantHasher(q)
	seeded := 0
	done := make(map[bitset.Mask]struct{})
	for size := len(buckets) - 1; size >= 2; size-- {
		for _, set := range buckets[size] {
			if _, ok := done[set]; ok {
				continue
			}
			if !s.submemo.MayContain(ih.invariant(set)) {
				continue
			}
			sub, ids := FingerprintInduced(q, set)
			e, ok := s.submemo.Get(sub.Key)
			if !ok || len(e.Verts) != len(ids) {
				continue
			}
			// co[originVertex] = queryVertex over the matched region: the
			// probe maps canonical index c to query vertex ids[invPerm[c]],
			// the entry maps c to origin vertex Verts[c].
			var co [64]int // Mask is 64-bit, so 64 bounds the vertex index
			invPerm := invert(sub.Perm)
			for c, ov := range e.Verts {
				co[ov] = ids[invPerm[c]]
			}
			for _, sube := range s.submemo.WithinOrigin(e.Origin, e.Set) {
				qset := translateMask(sube.Set, &co)
				if _, ok := done[qset]; ok {
					continue
				}
				done[qset] = struct{}{}
				tab.Put(qset, plan.Winner{
					Left:  translateMask(sube.Left, &co),
					Right: translateMask(sube.Right, &co),
					Rows:  sube.Rows,
					Cost:  sube.Cost,
					Op:    sube.Op,
					Found: true,
				})
				seeded++
			}
		}
	}
	s.counters.warmSeeded.Add(uint64(seeded))
	return seeded
}

// enqueueHarvest hands a job to the harvester, dropping it (harvesting is
// best-effort) when the queue is full.
func (s *Service) enqueueHarvest(job harvestJob) {
	s.harvestMu.Lock()
	s.harvestPending++
	s.harvestMu.Unlock()
	select {
	case s.harvestCh <- job:
	default:
		s.harvestDone()
	}
}

func (s *Service) harvestDone() {
	s.harvestMu.Lock()
	s.harvestPending--
	if s.harvestPending == 0 {
		s.harvestCond.Broadcast()
	}
	s.harvestMu.Unlock()
}

// WaitHarvest blocks until every harvest enqueued so far has been absorbed
// into (or dropped from) the subgraph memo. Tests and benchmarks use it to
// make the asynchronous harvest deterministic.
func (s *Service) WaitHarvest() {
	s.harvestMu.Lock()
	for s.harvestPending > 0 {
		s.harvestCond.Wait()
	}
	s.harvestMu.Unlock()
}

// harvester drains completed DP tables into the subgraph memo until Close
// closes the channel.
func (s *Service) harvester() {
	defer s.harvestWG.Done()
	for job := range s.harvestCh {
		s.harvestTable(job)
		s.harvestDone()
	}
}

// harvestTable fingerprints every interior (joined) connected set of the
// table and stores its winning split under the canonical induced key.
// Tables with more interior sets than the memo's capacity are skipped
// whole: they would evict everything else and then mostly evict themselves.
func (s *Service) harvestTable(job harvestJob) {
	interior := 0
	job.tab.Range(func(bitset.Mask, plan.Winner) { interior++ })
	if interior == 0 || interior > s.submemo.Cap() {
		return
	}
	ih := newInvariantHasher(job.q)
	job.tab.Range(func(set bitset.Mask, w plan.Winner) {
		sub, ids := FingerprintInduced(job.q, set)
		verts := make([]int, len(ids))
		for li, gi := range ids {
			verts[sub.Perm[li]] = gi
		}
		s.submemo.Put(SubEntry{
			Key:    sub.Key,
			Origin: job.origin,
			Set:    set,
			Left:   w.Left,
			Right:  w.Right,
			Rows:   w.Rows,
			Cost:   w.Cost,
			Op:     w.Op,
			Verts:  verts,
			Epoch:  job.epoch,
			Inv:    ih.invariant(set),
		})
	})
}

// cloneQuery deep-copies a query's catalog and join graph so the harvester
// can outlive the Optimize call that produced it.
func cloneQuery(q *cost.Query) *cost.Query {
	cat := catalog.Catalog{Rels: append([]catalog.Relation(nil), q.Cat.Rels...)}
	g := graph.New(q.G.N)
	for _, e := range q.G.Edges {
		g.AddEdge(e.A, e.B, e.Sel)
	}
	return &cost.Query{Cat: cat, G: g}
}
