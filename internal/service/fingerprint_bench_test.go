package service

import "testing"

// Canonicalization micro-benchmarks. FingerprintQuery runs on every request
// (exact key), again stats-blind (structural key), once per harvested set
// and once per matched warm-start region — its constant factor bounds how
// much overlap the subgraph memo needs before warm starts win wall time, so
// regressions here show up as the BENCH_subplan.json gate failing.

func BenchmarkFingerprintChain20(b *testing.B) {
	q := newChainUniverse(20, 3).window(0, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FingerprintQuery(q)
	}
}

func BenchmarkStructuralFingerprintChain20(b *testing.B) {
	q := newChainUniverse(20, 3).window(0, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StructuralFingerprint(q)
	}
}
