package service

import (
	"testing"

	"repro/internal/leaktest"
)

// TestMain installs the shared goroutine-leak guard on the service suite:
// worker pools, coalescing waiters and queue timers must all be gone when
// the suite ends.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}
