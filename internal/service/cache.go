package service

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/plan"
)

// cached is one plan-cache entry. The plan is stored in canonical index
// space (see Fingerprint) and must be remapped through a query's
// permutation before being handed out; entries are therefore immutable
// (except the atomic hit counter) and safe to share across shards' readers.
type cached struct {
	key      string
	plan     *plan.Node
	stats    dp.Stats
	alg      core.Algorithm
	backend  backend.ID
	shape    Shape
	gpu      *gpusim.MultiStats // device work model when backend == gpu
	fellBack bool

	// epoch is the catalog stats epoch when the entry was produced. Exact-
	// key hits are sound at any epoch (the key embeds the statistics); the
	// epoch exists so the stale-twin path can tell "produced under the
	// current catalog" from "produced before a stats update", and for the
	// /v1/cache introspection surface.
	epoch uint64
	// structKey is the stats-blind structural fingerprint of the entry's
	// query, and structOf maps structural-canonical indices to the entry's
	// exact-canonical indices (structOf[structCanon] = exactCanon). Together
	// they let a probing query with updated statistics transplant this
	// entry's join order into its own index space for lazy re-costing.
	structKey string
	structOf  []int
	// hits counts exact-key cache hits served from this entry.
	hits atomic.Uint64
}

// cacheShard is one LRU segment: a mutex, the recency list and the index.
type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List
	items map[string]*list.Element
	cap   int
}

// Cache is a sharded LRU plan cache. Keys are canonical fingerprints;
// sharding by key hash keeps concurrent callers on different queries from
// contending on one mutex. Hit/miss accounting lives in the service-level
// Counters, not here.
type Cache struct {
	shards []*cacheShard
}

// NewCache builds a cache with the given shard count (rounded up to a power
// of two, minimum 1) and total entry capacity split evenly across shards.
func NewCache(shards, capacity int) *Cache {
	if shards < 1 {
		shards = 1
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	shards = pow
	if capacity < shards {
		capacity = shards
	}
	c := &Cache{shards: make([]*cacheShard, shards)}
	per := capacity / shards
	for i := range c.shards {
		c.shards[i] = &cacheShard{ll: list.New(), items: make(map[string]*list.Element), cap: per}
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New64a()
	h.Write([]byte(key))
	return c.shards[h.Sum64()&uint64(len(c.shards)-1)]
}

// Get returns the entry for key, promoting it to most-recently-used.
func (c *Cache) Get(key string) (*cached, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cached), true
}

// Put inserts (or refreshes) an entry, evicting the least-recently-used
// entry of the shard when it is full.
func (c *Cache) Put(e *cached) {
	s := c.shard(e.key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[e.key]; ok {
		el.Value = e
		s.ll.MoveToFront(el)
		return
	}
	s.items[e.key] = s.ll.PushFront(e)
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.items, back.Value.(*cached).key)
	}
}

// Delete removes the entry for key, reporting whether it was present.
func (c *Cache) Delete(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return false
	}
	s.ll.Remove(el)
	delete(s.items, key)
	return true
}

// Flush drops every entry from every shard.
func (c *Cache) Flush() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.ll.Init()
		s.items = make(map[string]*list.Element)
		s.mu.Unlock()
	}
}

// Export returns every cached entry, least-recently-used first within each
// shard, so replaying the slice through Put on another cache reproduces the
// source's recency order (hottest entries inserted last end up at the
// front). Entries are immutable, so the caller may hold them without
// copying.
func (c *Cache) Export() []*cached {
	var out []*cached
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Back(); el != nil; el = el.Prev() {
			out = append(out, el.Value.(*cached))
		}
		s.mu.Unlock()
	}
	return out
}

// Len returns the number of cached plans across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Shards returns the shard count (always a power of two).
func (c *Cache) Shards() int { return len(c.shards) }
