package service

import (
	"context"
	"sync"
	"time"
)

// Admission tunes the service's admission control. The zero value keeps
// the pre-admission behaviour: a full request queue blocks the caller
// indefinitely (backpressure without shedding) and no rate cap applies.
//
// Admission control changes overload from a latency collapse into an
// explicit, fast signal: requests the service cannot serve within their
// useful lifetime are rejected with ErrOverloaded in microseconds instead
// of queueing for seconds. The HTTP surface maps ErrOverloaded to
// 503 + Retry-After (and per-tenant quota denials to 429), so clients can
// back off instead of piling on.
type Admission struct {
	// MaxQueueWait bounds how long an arriving request may wait for a free
	// slot in the worker queue before it is shed with ErrOverloaded.
	// 0 blocks indefinitely (legacy backpressure); negative sheds the
	// moment the queue is full.
	MaxQueueWait time.Duration
	// RatePerSec, when positive, caps the admitted request rate of this
	// instance with a token bucket — the per-node capacity guard a
	// deployment sizes to what one node can serve. All requests count
	// against it, cache hits included: the cap models the node, not the
	// optimizer.
	RatePerSec float64
	// Burst is the token-bucket capacity (0: RatePerSec/4, minimum 1).
	// Bigger bursts absorb arrival jitter at the price of a larger
	// momentary overshoot.
	Burst float64
}

func (a Admission) withDefaults() Admission {
	if a.RatePerSec > 0 && a.Burst <= 0 {
		a.Burst = a.RatePerSec / 4
		if a.Burst < 1 {
			a.Burst = 1
		}
	}
	return a
}

// TokenBucket is a mutex-guarded token bucket: Allow admits a request iff
// a token is available, refilling continuously at Rate tokens per second up
// to Burst. It is cheap enough for the request path (one short critical
// section, no timers) and is shared by the service's node-level rate cap
// and the HTTP layer's per-tenant quotas.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a full bucket admitting rate requests per second
// with capacity burst.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Allow takes n tokens at time now. When the bucket has too few, it takes
// nothing and returns false plus how long the caller should wait before the
// bucket could admit n tokens again — the Retry-After hint.
func (b *TokenBucket) Allow(now time.Time, n float64) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	missing := n - b.tokens
	return false, time.Duration(missing / b.rate * float64(time.Second))
}

// estimatedQueueDelay predicts how long a request arriving now would wait
// for a worker: the queued requests ahead of it divided by the pool's drain
// rate, with the observed mean miss latency as the per-request service
// time. The estimate is deliberately conservative under load — the mean
// miss latency already includes queue wait, so past saturation the estimate
// inflates and sheds engage sooner, which is the behaviour a deadline-aware
// shedder wants.
func (s *Service) estimatedQueueDelay() time.Duration {
	depth := s.counters.queueDepth.Load()
	if depth <= 0 {
		return 0
	}
	misses := s.counters.misses.Load()
	if misses == 0 {
		return 0
	}
	avgMiss := s.counters.missNanos.Load() / misses
	return time.Duration(uint64(depth) * avgMiss / uint64(s.cfg.Workers))
}

// admit runs the pre-queue admission checks for a request about to start a
// new optimization flight: with a context deadline that cannot outlive the
// estimated queue delay, the request is shed now — burning a queue slot on
// a plan the caller will never see helps nobody.
func (s *Service) admit(ctx context.Context) error {
	deadline, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return ErrOverloaded
	}
	if est := s.estimatedQueueDelay(); est > remaining {
		return ErrOverloaded
	}
	return nil
}
