// Package service turns the optimizer library into a concurrent
// optimizer-as-a-service front-end: a sharded LRU plan cache keyed by a
// canonical fingerprint of the join graph and its statistics, an adaptive
// Optimize entry point that routes each query to the enumeration algorithm
// the paper's evaluation recommends for its size and shape, request
// coalescing plus a worker pool so concurrent callers share CPU sanely, and
// an expvar-compatible stats struct. See SERVICE.md for the full design.
package service

import (
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cost"
)

// Fingerprint is the canonical identity of an optimization request. Two
// queries with isomorphic join graphs and identical statistics (base
// cardinalities and per-edge selectivities) produce the same Key even when
// their relations are listed in a different order, so a renamed-but-
// isomorphic query hits the cache entry of its twin.
//
// Perm maps the query's relation indices to canonical indices:
// Perm[queryIndex] = canonicalIndex. Cached plans are stored in canonical
// index space and remapped through Perm on both insert and lookup.
type Fingerprint struct {
	Key  string
	Perm []int
}

// FingerprintQuery computes the canonical fingerprint of q.
//
// Canonicalization is colour refinement (1-WL) seeded with each relation's
// base cardinality and incident selectivity multiset, followed by an
// individualization-refinement loop: while some colour class holds several
// vertices, one member is individualized (given a fresh unique colour) and
// refinement is re-run. The resulting discrete colouring orders the
// vertices; the Key serializes cardinalities and edges in that order with
// exact float bits, so the Key always describes the query exactly — a
// canonicalization miss on a pathological symmetric graph can only cost a
// cache miss, never a wrong plan.
func FingerprintQuery(q *cost.Query) Fingerprint {
	n := q.N()
	g := q.G

	// selBits returns the exact bit pattern of the edge selectivity so that
	// hashing and serialization are both exact.
	selBits := func(a, b int) uint64 {
		return floatBits(g.EdgeSel(a, b))
	}

	colors := make([]uint64, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		sels := make([]uint64, len(nb))
		for i, w := range nb {
			sels[i] = selBits(v, w)
		}
		sort.Slice(sels, func(i, j int) bool { return sels[i] < sels[j] })
		h := fnv.New64a()
		for _, s := range relStats(q, v) {
			writeU64(h, s)
		}
		writeU64(h, uint64(len(nb)))
		for _, s := range sels {
			writeU64(h, s)
		}
		colors[v] = h.Sum64()
	}

	// refine runs colour refinement until stable (bounded rounds; the bound
	// only trades canonicalization quality for time, never correctness).
	sig := make([][2]uint64, 0, n)
	refine := func() {
		for round := 0; round < 16; round++ {
			next := make([]uint64, n)
			changed := false
			for v := 0; v < n; v++ {
				sig = sig[:0]
				for _, w := range g.Neighbors(v) {
					sig = append(sig, [2]uint64{selBits(v, w), colors[w]})
				}
				sort.Slice(sig, func(i, j int) bool {
					if sig[i][0] != sig[j][0] {
						return sig[i][0] < sig[j][0]
					}
					return sig[i][1] < sig[j][1]
				})
				h := fnv.New64a()
				writeU64(h, colors[v])
				for _, s := range sig {
					writeU64(h, s[0])
					writeU64(h, s[1])
				}
				if nc := h.Sum64(); nc != colors[v] {
					next[v] = nc
					changed = true
				} else {
					next[v] = colors[v]
				}
			}
			copy(colors, next)
			if !changed {
				return
			}
		}
	}
	refine()

	// Individualization-refinement: place vertices in canonical order. At
	// each step the unplaced vertex with the smallest colour is placed; if
	// its colour class holds several vertices they are refinement-equivalent,
	// so placing the first and re-refining keeps the labeling canonical for
	// all graphs whose colour classes are true orbits (symmetric twins such
	// as identical star dimensions are interchangeable by construction).
	perm := make([]int, n)
	placed := make([]bool, n)
	for pos := 0; pos < n; pos++ {
		best, bestColor, classSize := -1, uint64(0), 0
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			switch {
			case best < 0 || colors[v] < bestColor:
				best, bestColor, classSize = v, colors[v], 1
			case colors[v] == bestColor:
				classSize++
			}
		}
		perm[best] = pos
		placed[best] = true
		// A fresh unique colour pins the vertex; tie-broken classes need a
		// re-refine so the choice propagates.
		h := fnv.New64a()
		writeU64(h, uint64(pos))
		h.Write([]byte("individualized"))
		colors[best] = h.Sum64()
		if classSize > 1 {
			refine()
		}
	}

	return Fingerprint{Key: canonicalKey(q, perm), Perm: perm}
}

// relStats returns every per-relation statistic the cost model reads —
// cardinality, heap pages, tuple width and index availability — as exact
// bits. The fingerprint must cover all of them: two queries that differ in
// any of these can cost the same join tree differently (e.g. HasPKIndex
// gates the index-nested-loop operator), so under-describing the relation
// here would hand one query the other's plan.
func relStats(q *cost.Query, v int) [4]uint64 {
	r := q.Cat.Rels[v]
	var pk uint64
	if r.HasPKIndex {
		pk = 1
	}
	return [4]uint64{floatBits(r.Rows), floatBits(r.Pages), uint64(r.Width), pk}
}

// canonicalKey serializes the query in canonical vertex order: relation
// statistics, then edges sorted by endpoints, all floats as exact bits.
func canonicalKey(q *cost.Query, perm []int) string {
	n := q.N()
	var b strings.Builder
	b.Grow(32 * (n + len(q.G.Edges)))
	b.WriteString("n")
	b.WriteString(strconv.Itoa(n))
	stats := make([][4]uint64, n)
	for v := 0; v < n; v++ {
		stats[perm[v]] = relStats(q, v)
	}
	for _, st := range stats {
		b.WriteByte('|')
		for i, s := range st {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatUint(s, 36))
		}
	}
	type cedge struct {
		a, b int
		sel  uint64
	}
	edges := make([]cedge, 0, len(q.G.Edges))
	for _, e := range q.G.Edges {
		a, bb := perm[e.A], perm[e.B]
		if a > bb {
			a, bb = bb, a
		}
		edges = append(edges, cedge{a, bb, floatBits(e.Sel)})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(e.a))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(e.b))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(e.sel, 36))
	}
	return b.String()
}

func floatBits(f float64) uint64 {
	return math.Float64bits(f)
}

type u64Writer interface{ Write([]byte) (int, error) }

func writeU64(w u64Writer, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	w.Write(buf[:])
}
