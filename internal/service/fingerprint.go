// Package service turns the optimizer library into a concurrent
// optimizer-as-a-service front-end: a sharded LRU plan cache keyed by a
// canonical fingerprint of the join graph and its statistics, an adaptive
// Optimize entry point that routes each query to the enumeration algorithm
// the paper's evaluation recommends for its size and shape, request
// coalescing plus a worker pool so concurrent callers share CPU sanely, and
// an expvar-compatible stats struct. See SERVICE.md for the full design.
package service

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cost"
)

// Fingerprint is the canonical identity of an optimization request. Two
// queries with isomorphic join graphs and identical statistics (base
// cardinalities and per-edge selectivities) produce the same Key even when
// their relations are listed in a different order, so a renamed-but-
// isomorphic query hits the cache entry of its twin.
//
// Perm maps the query's relation indices to canonical indices:
// Perm[queryIndex] = canonicalIndex. Cached plans are stored in canonical
// index space and remapped through Perm on both insert and lookup.
type Fingerprint struct {
	Key  string
	Perm []int
}

// FingerprintQuery computes the canonical fingerprint of q.
//
// Canonicalization is colour refinement (1-WL) seeded with each relation's
// base cardinality and incident selectivity multiset, followed by an
// individualization-refinement loop: while some colour class holds several
// vertices, one member is individualized (given a fresh unique colour) and
// refinement is re-run. The resulting discrete colouring orders the
// vertices; the Key serializes cardinalities and edges in that order with
// exact float bits, so the Key always describes the query exactly — a
// canonicalization miss on a pathological symmetric graph can only cost a
// cache miss, never a wrong plan.
func FingerprintQuery(q *cost.Query) Fingerprint {
	n := q.N()
	g := q.G

	// selBits returns the exact bit pattern of the edge selectivity so that
	// hashing and serialization are both exact.
	selBits := func(a, b int) uint64 {
		return floatBits(g.EdgeSel(a, b))
	}

	colors := make([]uint64, n)
	sels := make([]uint64, 0, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		sels = sels[:0]
		for _, w := range nb {
			sels = append(sels, selBits(v, w))
		}
		sortU64(sels)
		h := fnvU64(fnvOffset64, uint64(len(nb)))
		for _, s := range relStats(q, v) {
			h = fnvU64(h, s)
		}
		for _, s := range sels {
			h = fnvU64(h, s)
		}
		colors[v] = h
	}

	// countClasses counts distinct colours; the partition can only split
	// from round to round (a cross-class hash collision, ~2^-64, would
	// merely coarsen the canonical order, never corrupt the key — the key
	// serializes the query itself, not the colours).
	seen := make(map[uint64]struct{}, n)
	countClasses := func() int {
		clear(seen)
		for _, c := range colors {
			seen[c] = struct{}{}
		}
		return len(seen)
	}

	// refine runs colour refinement until the partition stops splitting or
	// becomes discrete. This is the canonicalization hot loop — it runs per
	// harvested set and per warm-start region probe, so it hashes inline and
	// sorts without reflection.
	next := make([]uint64, n)
	sig := make([][2]uint64, 0, n)
	classes := countClasses()
	refine := func() {
		for classes < n {
			for v := 0; v < n; v++ {
				sig = sig[:0]
				for _, w := range g.Neighbors(v) {
					sig = append(sig, [2]uint64{selBits(v, w), colors[w]})
				}
				sortSig(sig)
				h := fnvU64(fnvOffset64, colors[v])
				for _, s := range sig {
					h = fnvU64(h, s[0])
					h = fnvU64(h, s[1])
				}
				next[v] = h
			}
			copy(colors, next)
			nc := countClasses()
			if nc == classes {
				return
			}
			classes = nc
		}
	}
	refine()

	// Individualization-refinement: place vertices in canonical order. At
	// each step the unplaced vertex with the smallest colour is placed; if
	// its colour class holds several vertices they are refinement-equivalent,
	// so placing the first and re-refining keeps the labeling canonical for
	// all graphs whose colour classes are true orbits (symmetric twins such
	// as identical star dimensions are interchangeable by construction).
	perm := make([]int, n)
	placed := make([]bool, n)
	for pos := 0; pos < n; pos++ {
		best, bestColor, classSize := -1, uint64(0), 0
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			switch {
			case best < 0 || colors[v] < bestColor:
				best, bestColor, classSize = v, colors[v], 1
			case colors[v] == bestColor:
				classSize++
			}
		}
		perm[best] = pos
		placed[best] = true
		// A fresh unique colour pins the vertex; tie-broken classes need a
		// re-refine so the choice propagates.
		colors[best] = fnvU64(fnvU64(fnvOffset64, uint64(pos)), individualizedTag)
		if classSize > 1 {
			classes = countClasses()
			refine()
		}
	}

	return Fingerprint{Key: canonicalKey(q, perm), Perm: perm}
}

// relStats returns every per-relation statistic the cost model reads —
// cardinality, heap pages, tuple width and index availability — as exact
// bits. The fingerprint must cover all of them: two queries that differ in
// any of these can cost the same join tree differently (e.g. HasPKIndex
// gates the index-nested-loop operator), so under-describing the relation
// here would hand one query the other's plan.
func relStats(q *cost.Query, v int) [4]uint64 {
	r := q.Cat.Rels[v]
	var pk uint64
	if r.HasPKIndex {
		pk = 1
	}
	return [4]uint64{floatBits(r.Rows), floatBits(r.Pages), uint64(r.Width), pk}
}

// canonicalKey serializes the query in canonical vertex order: relation
// statistics, then edges sorted by endpoints, all floats as exact bits.
func canonicalKey(q *cost.Query, perm []int) string {
	n := q.N()
	var b strings.Builder
	b.Grow(32 * (n + len(q.G.Edges)))
	b.WriteString("n")
	b.WriteString(strconv.Itoa(n))
	stats := make([][4]uint64, n)
	for v := 0; v < n; v++ {
		stats[perm[v]] = relStats(q, v)
	}
	for _, st := range stats {
		b.WriteByte('|')
		for i, s := range st {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatUint(s, 36))
		}
	}
	type cedge struct {
		a, b int
		sel  uint64
	}
	edges := make([]cedge, 0, len(q.G.Edges))
	for _, e := range q.G.Edges {
		a, bb := perm[e.A], perm[e.B]
		if a > bb {
			a, bb = bb, a
		}
		edges = append(edges, cedge{a, bb, floatBits(e.Sel)})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(e.a))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(e.b))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(e.sel, 36))
	}
	return b.String()
}

func floatBits(f float64) uint64 {
	return math.Float64bits(f)
}

// FNV-1a over uint64 words, inlined: the canonicalizer hashes per vertex
// per refinement round, so the hash must not allocate or call through an
// interface. Colour values never leave the process (keys serialize the
// query itself), so the exact function is an implementation detail.
const (
	fnvOffset64       = 14695981039346656037
	fnvPrime64        = 1099511628211
	individualizedTag = 0x696e646976 // pins individualized vertices
)

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// sortU64 and sortSig are insertion sorts: neighbour lists are tiny (at
// most n-1, usually 2-3), where sort.Slice's reflection swapper costs more
// than the sort itself.
func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortSig(s [][2]uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && sigLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sigLess(a, b [2]uint64) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
