package service

import (
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/plan"
)

// This file extends the canonical fingerprinting of fingerprint.go to the
// subgraph memo: canonical fingerprints of induced connected subqueries (the
// memo's keys), a stats-blind structural fingerprint (the secondary index
// that finds a query's stale twin after a statistics change), and a cheap
// order-invariant subset hash that filters warm-start probes before the full
// canonicalization runs.

// FingerprintInduced computes the canonical fingerprint of the subquery
// induced by the vertex set s: the relations of s with their statistics and
// every edge with both endpoints in s. It returns the fingerprint together
// with the local→global vertex mapping (ids[localIndex] = queryIndex, in
// ascending query-index order); the fingerprint's Perm maps local indices to
// canonical indices, exactly as FingerprintQuery does for whole queries.
//
// Soundness rests on the DP optimality substructure: the optimal join of a
// connected set depends only on the induced subquery (base statistics of its
// relations plus internal edge selectivities), so a winner cached under an
// induced fingerprint is valid for any query in which some connected subset
// canonicalizes to the same key.
func FingerprintInduced(q *cost.Query, s bitset.Mask) (Fingerprint, []int) {
	ids := maskBits(s)
	sub, _ := q.G.Subgraph(ids)
	cat := catalog.Catalog{Rels: make([]catalog.Relation, len(ids))}
	for li, gi := range ids {
		cat.Rels[li] = q.Cat.Rels[gi]
	}
	return FingerprintQuery(&cost.Query{Cat: cat, G: sub}), ids
}

// StructuralFingerprint computes the stats-blind canonical fingerprint of q:
// the same 1-WL + individualization canonicalization run on a copy of the
// query whose relations all carry identical statistics and whose edges all
// have selectivity 1. Two queries that differ only in statistics — the
// before/after of a catalog stats update — share the structural key, which
// is how a probe locates its stale twin for lazy re-costing. Structural
// entries are never served directly: the plan they lead to is transplanted
// and re-costed under the probing query's statistics, then validated against
// a fresh enumeration.
func StructuralFingerprint(q *cost.Query) Fingerprint {
	n := q.N()
	cat := catalog.Catalog{Rels: make([]catalog.Relation, n)}
	for i := range cat.Rels {
		cat.Rels[i] = catalog.Relation{Rows: 1, Pages: 1, Width: 1}
	}
	g := graph.New(n)
	for _, e := range q.G.Edges {
		g.AddEdge(e.A, e.B, 1)
	}
	fp := FingerprintQuery(&cost.Query{Cat: cat, G: g})
	fp.Key = "s|" + fp.Key
	return fp
}

// maskBits returns the set bits of s in ascending order.
func maskBits(s bitset.Mask) []int {
	ids := make([]int, 0, s.Count())
	for m := uint64(s); m != 0; m &= m - 1 {
		ids = append(ids, bits.TrailingZeros64(m))
	}
	return ids
}

// invariantHasher computes a cheap, label-invariant hash of induced
// subqueries: a commutative sum of precomputed per-vertex statistic hashes,
// so isomorphic subsets with identical statistics hash equal regardless of
// vertex numbering. The warm-start path computes one invariant per
// connected set and probes the memo's invariant multiset before paying for
// a full canonicalization, so the per-set cost must stay at a few bit
// operations — which is why edges are deliberately excluded: subsets with
// equal vertex-statistic multisets but different internal edges collide,
// costing at most one wasted canonicalization, and the memo lookup itself
// uses the exact canonical key, so collisions can never seed a wrong plan.
type invariantHasher struct {
	vert []uint64
}

func newInvariantHasher(q *cost.Query) *invariantHasher {
	vert := make([]uint64, q.N())
	for v := range vert {
		h := uint64(fnvOffset64)
		for _, s := range relStats(q, v) {
			h = fnvU64(h, s)
		}
		vert[v] = mix64(h)
	}
	return &invariantHasher{vert: vert}
}

func (ih *invariantHasher) invariant(s bitset.Mask) uint64 {
	var sum uint64
	for m := uint64(s); m != 0; m &= m - 1 {
		sum += ih.vert[bits.TrailingZeros64(m)]
	}
	return mix64(sum ^ uint64(s.Count())<<32)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// translateMask rewrites an origin-space mask into the probing query's
// index space through the origin→query vertex correspondence co — the
// warm path's entire per-set cost once a region has matched.
func translateMask(m bitset.Mask, co *[64]int) bitset.Mask {
	var out bitset.Mask
	for x := uint64(m); x != 0; x &= x - 1 {
		out = out.Add(co[bits.TrailingZeros64(x)])
	}
	return out
}

// recostPlan rebuilds p bottom-up under q's current statistics: scans are
// re-derived from the catalog and every join is re-costed (and its physical
// operator re-chosen) by the model. The join order — the tree shape and
// leaf assignment — is preserved; only cardinalities, costs and operators
// change. This is the lazy re-validation step for structurally-matched
// stale cache entries.
func recostPlan(q *cost.Query, m *cost.Model, p *plan.Node) *plan.Node {
	if p == nil {
		return nil
	}
	if p.IsLeaf() {
		return m.Scan(q, p.RelID)
	}
	return m.Join(q, recostPlan(q, m, p.Left), recostPlan(q, m, p.Right))
}
