package service

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func TestFlushDropsCachedPlans(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	q := genQuery(t, workload.KindMB, 10, 3)
	if _, err := s.Optimize(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache len = %d, want 1", s.CacheLen())
	}

	s.Flush()
	if s.CacheLen() != 0 {
		t.Fatalf("cache len after Flush = %d, want 0", s.CacheLen())
	}
	res, err := s.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("request after Flush reported a cache hit")
	}
}

// TestExportImportMigratesWarmEntry is the cluster-rebalancing contract:
// an entry exported from one service and imported into another must serve
// a cache hit there — including for an isomorphically renamed query —
// with the same plan cost as the original optimization.
func TestExportImportMigratesWarmEntry(t *testing.T) {
	a := New(Config{})
	defer a.Close()
	b := New(Config{})
	defer b.Close()

	q := genQuery(t, workload.KindMB, 11, 7)
	cold, err := a.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	entry, ok := a.ExportEntry(cold.Key)
	if !ok {
		t.Fatalf("ExportEntry(%q) missed", cold.Key)
	}
	if entry.Key != cold.Key {
		t.Fatalf("exported key %q, want %q", entry.Key, cold.Key)
	}
	if err := b.Import(entry); err != nil {
		t.Fatal(err)
	}

	perm := rand.New(rand.NewSource(1)).Perm(q.N())
	pq := permuteQuery(q, perm)
	warm, err := b.Optimize(context.Background(), pq)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("imported entry did not serve a cache hit")
	}
	if warm.Key != cold.Key {
		t.Errorf("hit key %q, want %q", warm.Key, cold.Key)
	}
	if !relEq(warm.Plan.Cost, cold.Plan.Cost) {
		t.Errorf("imported-hit cost %g != original %g", warm.Plan.Cost, cold.Plan.Cost)
	}
	if err := warm.Plan.Validate(identity(pq.N())); err != nil {
		t.Errorf("remapped imported plan invalid: %v", err)
	}
}

func TestExportReturnsAllEntries(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	const queries = 5
	keys := make(map[string]bool)
	for seed := int64(0); seed < queries; seed++ {
		res, err := s.Optimize(context.Background(), genQuery(t, workload.KindChain, 6, seed))
		if err != nil {
			t.Fatal(err)
		}
		keys[res.Key] = true
	}

	entries := s.Export()
	if len(entries) != len(keys) {
		t.Fatalf("Export returned %d entries, want %d", len(entries), len(keys))
	}
	for _, e := range entries {
		if !keys[e.Key] {
			t.Errorf("exported unknown key %q", e.Key)
		}
		if e.Plan == nil {
			t.Errorf("entry %q has nil plan", e.Key)
		}
	}
}

func TestImportRejectsInvalidEntries(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	if err := s.Import(Entry{}); err == nil {
		t.Error("empty entry imported without error")
	}
	if err := s.Import(Entry{Key: "k"}); err == nil {
		t.Error("nil-plan entry imported without error")
	}
	if s.CacheLen() != 0 {
		t.Errorf("invalid imports left %d cache entries", s.CacheLen())
	}
}
