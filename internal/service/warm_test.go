package service

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
)

// chainUniverse is a deterministic pool of relation statistics and chain
// selectivities: window(lo, hi) cuts the induced subchain joining relations
// lo..hi-1, so two overlapping windows share induced subgraphs with
// identical statistics — the situation the subgraph memo exists for.
type chainUniverse struct {
	rows []float64
	sels []float64
}

func newChainUniverse(n int, seed int64) *chainUniverse {
	rng := rand.New(rand.NewSource(seed))
	u := &chainUniverse{rows: make([]float64, n), sels: make([]float64, n-1)}
	for i := range u.rows {
		u.rows[i] = float64(1000 + rng.Intn(2_000_000))
	}
	for i := range u.sels {
		u.sels[i] = 1e-6 * float64(1+rng.Intn(999_999))
	}
	return u
}

func (u *chainUniverse) window(lo, hi int) *cost.Query {
	var cat catalog.Catalog
	for i := lo; i < hi; i++ {
		cat.Add(catalog.NewRelation(fmt.Sprintf("r%d", i), u.rows[i], 100))
	}
	g := graph.New(hi - lo)
	for i := lo; i < hi-1; i++ {
		g.AddEdge(i-lo, i+1-lo, u.sels[i])
	}
	return &cost.Query{Cat: cat, G: g}
}

// TestWarmStartEquivalence is the correctness half of the subgraph memo: a
// warm-started enumeration must return plans cost-identical to a cold one,
// across randomized statistics, while actually seeding sets (an empty warm
// start would pass vacuously).
func TestWarmStartEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			u := newChainUniverse(30, seed)

			warm := New(Config{Workers: 2})
			defer warm.Close()
			cold := New(Config{Workers: 2})
			defer cold.Close()

			// Warm the memo with the first window, then optimize an
			// overlapping one on the warm service and the identical query on
			// a cold service.
			if _, err := warm.Optimize(context.Background(), u.window(0, 20)); err != nil {
				t.Fatal(err)
			}
			warm.WaitHarvest()

			q := u.window(5, 25)
			wres, err := warm.Optimize(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			cres, err := cold.Optimize(context.Background(), u.window(5, 25))
			if err != nil {
				t.Fatal(err)
			}

			if wres.Stats.WarmSeeded == 0 {
				t.Fatal("overlapping window seeded nothing: the equivalence check below would be vacuous")
			}
			if !relEq(wres.Plan.Cost, cres.Plan.Cost) {
				t.Errorf("warm cost %g != cold cost %g", wres.Plan.Cost, cres.Plan.Cost)
			}
			if want := dpccpCost(t, q); !relEq(wres.Plan.Cost, want) {
				t.Errorf("warm cost %g != DPCCP ground truth %g", wres.Plan.Cost, want)
			}
			if err := wres.Plan.Validate(identity(q.N())); err != nil {
				t.Errorf("warm-started plan invalid: %v", err)
			}
			// Seeded sets are skipped, not re-walked: the warm enumeration
			// must touch fewer connected sets than the cold one.
			if wres.Stats.ConnectedSets >= cres.Stats.ConnectedSets {
				t.Errorf("warm run walked %d connected sets, cold walked %d — seeding skipped nothing",
					wres.Stats.ConnectedSets, cres.Stats.ConnectedSets)
			}
			snap := warm.Counters().Snapshot()
			if snap.WarmStartRuns == 0 || snap.WarmStartSeeded != wres.Stats.WarmSeeded {
				t.Errorf("counters (runs %d, seeded %d) disagree with result (seeded %d)",
					snap.WarmStartRuns, snap.WarmStartSeeded, wres.Stats.WarmSeeded)
			}
		})
	}
}

// TestStaleEpochRecost pins the invalidation contract: a stats change bumps
// the epoch and flushes nothing; the changed query then misses the exact
// cache, finds its structural twin from the old epoch, and the twin's join
// order is re-costed under the new statistics — never served at its stale
// cost — so the result matches a from-scratch optimization bit for bit.
func TestStaleEpochRecost(t *testing.T) {
	u := newChainUniverse(16, 7)
	s := New(Config{Workers: 2})
	defer s.Close()

	q1 := u.window(0, 16)
	res1, err := s.Optimize(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Epoch != 1 {
		t.Fatalf("fresh service produced epoch %d, want 1", res1.Epoch)
	}
	s.WaitHarvest()
	plansBefore, subsBefore := s.CacheInfo(0).Plans, s.SubCacheLen()
	if plansBefore == 0 || subsBefore == 0 {
		t.Fatalf("expected a cached plan and harvested sub-entries, got %d/%d", plansBefore, subsBefore)
	}

	if old, cur := s.BumpStatsEpoch(); old != 1 || cur != 2 {
		t.Fatalf("BumpStatsEpoch = (%d, %d), want (1, 2)", old, cur)
	}
	if got := s.CacheInfo(0); got.Plans != plansBefore || s.SubCacheLen() != subsBefore {
		t.Fatalf("epoch bump flushed the cache: %d->%d plans, %d->%d sub-entries",
			plansBefore, got.Plans, subsBefore, s.SubCacheLen())
	}

	// The statistics change: every relation grows. Same structure, new
	// stats — an exact-fingerprint miss with a structural twin from epoch 1.
	for i := range u.rows {
		u.rows[i] *= 10
	}
	q2 := u.window(0, 16)
	res2, err := s.Optimize(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit {
		t.Fatal("changed statistics produced a cache hit: the fingerprint failed to embed them")
	}
	if res2.Epoch != 2 {
		t.Errorf("post-bump result epoch = %d, want 2", res2.Epoch)
	}
	if want := dpccpCost(t, q2); !relEq(res2.Plan.Cost, want) {
		t.Errorf("post-bump cost %g != fresh ground truth %g — a stale plan was served", res2.Plan.Cost, want)
	}
	if relEq(res2.Plan.Cost, res1.Plan.Cost) {
		t.Errorf("cost unchanged (%g) after all row counts grew 10x — suspicious", res2.Plan.Cost)
	}

	snap := s.Counters().Snapshot()
	if snap.StaleProbes == 0 {
		t.Error("no stale probe recorded: the structural index never found the epoch-1 twin")
	}
	if snap.Recosted == 0 {
		t.Error("no re-cost recorded: the stale twin was never re-validated")
	}
	if snap.StatsEpoch != 2 || snap.EpochBumps != 1 {
		t.Errorf("epoch counters = (epoch %d, bumps %d), want (2, 1)", snap.StatsEpoch, snap.EpochBumps)
	}

	// The exact original query remains sound at any epoch — its fingerprint
	// embeds the statistics it was planned under — so it still hits.
	u2 := newChainUniverse(16, 7)
	res3, err := s.Optimize(context.Background(), u2.window(0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !res3.CacheHit {
		t.Error("original-statistics query no longer hits after the bump")
	}
	if !relEq(res3.Plan.Cost, res1.Plan.Cost) {
		t.Errorf("original entry's cost drifted: %g vs %g", res3.Plan.Cost, res1.Plan.Cost)
	}
}
