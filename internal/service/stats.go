package service

import (
	"encoding/json"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/obs"
)

// Counters is the service's expvar-style instrumentation: lock-free atomic
// counters updated on every request. It implements expvar.Var (String
// returns JSON), so a server can expose it with
// expvar.Publish("optimizer", svc.Counters()).
type Counters struct {
	requests  atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	fallbacks atomic.Uint64
	errors    atomic.Uint64
	canceled  atomic.Uint64
	// shed counts requests rejected by admission control (rate cap, queue
	// wait budget, or deadline-aware shedding); queued counts requests that
	// entered the worker queue, queueDepth is the live gauge of slots
	// occupied right now, and inflight the live gauge of Optimize calls in
	// progress (queued, coalesced and executing alike).
	shed       atomic.Uint64
	queued     atomic.Uint64
	queueDepth atomic.Int64
	inflight   atomic.Int64

	routeDPCCP   atomic.Uint64
	routeMPDP    atomic.Uint64
	routeMPDPGPU atomic.Uint64
	routeIDP2    atomic.Uint64
	routeUnionDP atomic.Uint64

	// Subgraph-memo and stats-epoch instrumentation: warmRuns counts
	// optimizations whose enumeration was offered a warm start (the memo
	// had entries), warmSeeded the connected sets seeded from the memo
	// across all of them; staleProbes counts cache misses that located a
	// structural twin from an older stats epoch, recosted the twin plans
	// re-validated under current statistics, recostWins the re-costed
	// candidates that matched the freshly enumerated optimum; epochBumps
	// counts stats-epoch advances and statsEpoch holds the current epoch
	// (starts at 1).
	warmRuns    atomic.Uint64
	warmSeeded  atomic.Uint64
	staleProbes atomic.Uint64
	recosted    atomic.Uint64
	recostWins  atomic.Uint64
	epochBumps  atomic.Uint64
	statsEpoch  atomic.Uint64

	// Per-backend accounting, indexed by slot: where the router
	// sent requests, which substrate actually served them (fallbacks
	// land on heuristic), which substrate's plans the cache re-served,
	// and which substrate blew the budget.
	backends [numBackends]backendCounters

	hitNanos  atomic.Uint64
	missNanos atomic.Uint64

	// lat holds the live latency histograms behind the avg_* fields: full
	// hit/miss distributions per backend plus shed and queue-wait, for
	// /metrics and the quantile rollup in /v1/stats.
	lat LatencySet
}

// backendCounters is one substrate's slice of the instrumentation.
type backendCounters struct {
	routed    atomic.Uint64
	served    atomic.Uint64
	hits      atomic.Uint64
	fallbacks atomic.Uint64
}

// numBackends is the counter-array capacity; TestBackendSlotCoversRegistry
// pins it to len(backend.IDs()) so a new backend cannot silently lose its
// counters.
const numBackends = 4

// backendSlot derives each ID's counter slot from its position in the
// backend registry — one source of truth, no hand-maintained switch.
var backendSlot = func() map[backend.ID]int {
	m := make(map[backend.ID]int, len(backend.IDs()))
	for i, id := range backend.IDs() {
		m[id] = i
	}
	return m
}()

// slot returns the counters of id, or nil for unknown IDs (e.g. entries
// imported from a peer without backend identity) — callers skip nil, which
// keeps the per-backend hit sum ≤ total hits and makes every path,
// including Snapshot, panic-free by construction.
func (c *Counters) slot(id backend.ID) *backendCounters {
	if i, ok := slotIdx(id); ok {
		return &c.backends[i]
	}
	return nil
}

// slotIdx resolves a backend's counter-array index.
func slotIdx(id backend.ID) (int, bool) {
	i, ok := backendSlot[id]
	return i, ok && i < numBackends
}

// BackendCounts is the snapshot of one backend's counters.
type BackendCounts struct {
	// Routed counts requests the router dispatched to this backend.
	Routed uint64 `json:"routed"`
	// Served counts optimizations this backend completed (a heuristic
	// fallback run counts for heuristic, not for the backend that timed
	// out).
	Served uint64 `json:"served"`
	// Hits counts cache hits whose entry this backend originally produced.
	Hits uint64 `json:"hits"`
	// Fallbacks counts optimizations that exceeded the budget on this
	// backend and fell back to a heuristic.
	Fallbacks uint64 `json:"fallbacks"`
}

// Snapshot is a point-in-time copy of the counters with derived rates.
type Snapshot struct {
	Requests  uint64 `json:"requests"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Fallbacks uint64 `json:"fallbacks"`
	Errors    uint64 `json:"errors"`
	// Canceled counts requests whose caller context was cancelled (client
	// disconnects included) before a plan was produced.
	Canceled uint64 `json:"canceled"`
	// Shed counts requests rejected by admission control with ErrOverloaded.
	Shed uint64 `json:"shed"`
	// Queued counts requests that entered the worker queue; QueueDepth is
	// the number of queue slots occupied at snapshot time, InFlight the
	// number of Optimize calls in progress.
	Queued     uint64 `json:"queued"`
	QueueDepth int64  `json:"queue_depth"`
	InFlight   int64  `json:"in_flight"`

	RouteDPCCP   uint64 `json:"route_dpccp"`
	RouteMPDP    uint64 `json:"route_mpdp_cpu"`
	RouteMPDPGPU uint64 `json:"route_mpdp_gpu"`
	RouteIDP2    uint64 `json:"route_idp2"`
	RouteUnionDP uint64 `json:"route_uniondp"`

	// WarmStartRuns counts optimizations offered a warm start from the
	// subgraph memo, WarmStartSeeded the connected sets seeded across them;
	// StaleProbes/Recosted/RecostWins instrument the lazy re-cost path for
	// structural twins from older stats epochs; StatsEpoch is the current
	// catalog stats epoch and EpochBumps how many times it advanced.
	WarmStartRuns   uint64 `json:"warm_start_runs"`
	WarmStartSeeded uint64 `json:"warm_start_seeded"`
	StaleProbes     uint64 `json:"stale_probes"`
	Recosted        uint64 `json:"recosted"`
	RecostWins      uint64 `json:"recost_wins"`
	StatsEpoch      uint64 `json:"stats_epoch"`
	EpochBumps      uint64 `json:"epoch_bumps"`

	// Backends breaks requests down by execution substrate, keyed by
	// backend ID (cpu-seq, cpu-parallel, gpu, heuristic).
	Backends map[string]BackendCounts `json:"backends"`

	HitRate       float64 `json:"hit_rate"`
	AvgHitMicros  float64 `json:"avg_hit_us"`
	AvgMissMicros float64 `json:"avg_miss_us"`

	// Latency holds quantiles of the live latency distributions, keyed
	// "hit:<backend>", "miss:<backend>", "shed" and "queue_wait"; empty
	// distributions are omitted.
	Latency map[string]Quantiles `json:"latency,omitempty"`
}

// Snapshot copies the counters. Each counter is read atomically; the set is
// not one consistent cut, which is fine for monitoring.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		Requests:     c.requests.Load(),
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Coalesced:    c.coalesced.Load(),
		Fallbacks:    c.fallbacks.Load(),
		Errors:       c.errors.Load(),
		Canceled:     c.canceled.Load(),
		Shed:         c.shed.Load(),
		Queued:       c.queued.Load(),
		QueueDepth:   c.queueDepth.Load(),
		InFlight:     c.inflight.Load(),
		RouteDPCCP:   c.routeDPCCP.Load(),
		RouteMPDP:    c.routeMPDP.Load(),
		RouteMPDPGPU: c.routeMPDPGPU.Load(),
		RouteIDP2:    c.routeIDP2.Load(),
		RouteUnionDP: c.routeUnionDP.Load(),

		WarmStartRuns:   c.warmRuns.Load(),
		WarmStartSeeded: c.warmSeeded.Load(),
		StaleProbes:     c.staleProbes.Load(),
		Recosted:        c.recosted.Load(),
		RecostWins:      c.recostWins.Load(),
		StatsEpoch:      c.statsEpoch.Load(),
		EpochBumps:      c.epochBumps.Load(),

		Backends: make(map[string]BackendCounts, numBackends),
	}
	for _, id := range backend.IDs() {
		b := c.slot(id)
		if b == nil {
			continue
		}
		s.Backends[string(id)] = BackendCounts{
			Routed:    b.routed.Load(),
			Served:    b.served.Load(),
			Hits:      b.hits.Load(),
			Fallbacks: b.fallbacks.Load(),
		}
	}
	if served := s.Hits + s.Misses + s.Coalesced; served > 0 {
		s.HitRate = float64(s.Hits+s.Coalesced) / float64(served)
	}
	if s.Hits > 0 {
		s.AvgHitMicros = float64(c.hitNanos.Load()) / float64(s.Hits) / 1e3
	}
	if s.Misses > 0 {
		s.AvgMissMicros = float64(c.missNanos.Load()) / float64(s.Misses) / 1e3
	}
	s.Latency = c.lat.Quantiles()
	return s
}

// MergeLatencies adds this counter set's latency histograms into dst — the
// cluster coordinator's rollup primitive.
func (c *Counters) MergeLatencies(dst *LatencySet) { dst.Merge(&c.lat) }

// ExportLatencies renders the latency histograms in serializable form, for
// node-mode peers answering the coordinator's stats RPC.
func (c *Counters) ExportLatencies() map[string]obs.HistogramSnapshot { return c.lat.Export() }

// String renders the snapshot as JSON; it makes Counters an expvar.Var.
func (c *Counters) String() string {
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

func (c *Counters) observeQueued() {
	c.queued.Add(1)
	c.queueDepth.Add(1)
}

func (c *Counters) observeHit(d time.Duration, id backend.ID) {
	c.hits.Add(1)
	c.hitNanos.Add(uint64(d))
	if i, ok := slotIdx(id); ok {
		c.backends[i].hits.Add(1)
		c.lat.Hit[i].Record(d)
	}
}

func (c *Counters) observeMiss(d time.Duration, id backend.ID) {
	c.misses.Add(1)
	c.missNanos.Add(uint64(d))
	if i, ok := slotIdx(id); ok {
		c.lat.Miss[i].Record(d)
	}
}

func (c *Counters) observeShed(d time.Duration) {
	c.shed.Add(1)
	c.lat.Shed.Record(d)
}

func (c *Counters) observeQueueWait(d time.Duration) {
	c.lat.QueueWait.Record(d)
}

func (c *Counters) observeRoute(alg core.Algorithm, id backend.ID) {
	switch alg {
	case core.AlgDPCCP:
		c.routeDPCCP.Add(1)
	case core.AlgMPDPParallel:
		c.routeMPDP.Add(1)
	case core.AlgMPDPGPU:
		c.routeMPDPGPU.Add(1)
	case core.AlgIDP2:
		c.routeIDP2.Add(1)
	case core.AlgUnionDP:
		c.routeUnionDP.Add(1)
	}
	if b := c.slot(id); b != nil {
		b.routed.Add(1)
	}
}

// writeMetrics emits every counter, gauge and latency histogram in
// Prometheus exposition format. Metric names are documented in
// OBSERVABILITY.md; the golden-format test pins them.
func (c *Counters) writeMetrics(mw *obs.MetricsWriter) {
	mw.Counter("mpdp_requests_total", "Optimize calls accepted for processing.", nil, c.requests.Load())
	mw.Counter("mpdp_cache_hits_total", "Requests served from the plan cache.", nil, c.hits.Load())
	mw.Counter("mpdp_cache_misses_total", "Requests that ran an optimization.", nil, c.misses.Load())
	mw.Counter("mpdp_coalesced_total", "Requests that piggybacked on an identical in-flight optimization.", nil, c.coalesced.Load())
	mw.Counter("mpdp_fallbacks_total", "Exact optimizations that timed out and fell back to a heuristic.", nil, c.fallbacks.Load())
	mw.Counter("mpdp_errors_total", "Requests that failed.", nil, c.errors.Load())
	mw.Counter("mpdp_canceled_total", "Requests whose caller cancelled before a plan was produced.", nil, c.canceled.Load())
	mw.Counter("mpdp_shed_total", "Requests rejected by admission control.", nil, c.shed.Load())
	mw.Counter("mpdp_queued_total", "Requests that entered the worker queue.", nil, c.queued.Load())
	mw.Gauge("mpdp_queue_depth", "Worker-queue slots occupied.", nil, float64(c.queueDepth.Load()))
	mw.Gauge("mpdp_inflight", "Optimize calls in progress.", nil, float64(c.inflight.Load()))

	mw.Counter("mpdp_cache_warm_start_runs_total", "Optimizations offered a warm start from the subgraph memo.", nil, c.warmRuns.Load())
	mw.Counter("mpdp_cache_warm_start_seeded_total", "Connected sets seeded from the subgraph memo before enumeration.", nil, c.warmSeeded.Load())
	mw.Counter("mpdp_cache_stale_probes_total", "Cache misses that located a structural twin from an older stats epoch.", nil, c.staleProbes.Load())
	mw.Counter("mpdp_cache_recost_total", "Stale twin plans re-costed under current statistics.", nil, c.recosted.Load())
	mw.Counter("mpdp_cache_recost_wins_total", "Re-costed stale plans that matched the freshly enumerated optimum.", nil, c.recostWins.Load())
	mw.Counter("mpdp_stats_epoch_bumps_total", "Catalog stats epoch advances.", nil, c.epochBumps.Load())
	mw.Gauge("mpdp_stats_epoch", "Current catalog stats epoch.", nil, float64(c.statsEpoch.Load()))

	const routeHelp = "Routing decisions by algorithm."
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "dpccp"}, c.routeDPCCP.Load())
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "mpdp_cpu"}, c.routeMPDP.Load())
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "mpdp_gpu"}, c.routeMPDPGPU.Load())
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "idp2"}, c.routeIDP2.Load())
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "uniondp"}, c.routeUnionDP.Load())

	for _, id := range backend.IDs() {
		i, ok := slotIdx(id)
		if !ok {
			continue
		}
		b := &c.backends[i]
		l := obs.Labels{"backend": string(id)}
		mw.Counter("mpdp_backend_routed_total", "Requests the router dispatched to each backend.", l, b.routed.Load())
		mw.Counter("mpdp_backend_served_total", "Optimizations each backend completed.", l, b.served.Load())
		mw.Counter("mpdp_backend_cache_hits_total", "Cache hits whose entry each backend produced.", l, b.hits.Load())
		mw.Counter("mpdp_backend_fallbacks_total", "Budget overruns per backend.", l, b.fallbacks.Load())
	}

	c.lat.WriteMetrics(mw)
}

func (c *Counters) observeServed(id backend.ID) {
	if b := c.slot(id); b != nil {
		b.served.Add(1)
	}
}

func (c *Counters) observeFallback(id backend.ID) {
	c.fallbacks.Add(1)
	if b := c.slot(id); b != nil {
		b.fallbacks.Add(1)
	}
}
