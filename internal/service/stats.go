package service

import (
	"encoding/json"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Counters is the service's expvar-style instrumentation: lock-free atomic
// counters updated on every request. It implements expvar.Var (String
// returns JSON), so a server can expose it with
// expvar.Publish("optimizer", svc.Counters()).
type Counters struct {
	requests  atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	fallbacks atomic.Uint64
	errors    atomic.Uint64

	routeDPCCP   atomic.Uint64
	routeMPDP    atomic.Uint64
	routeIDP2    atomic.Uint64
	routeUnionDP atomic.Uint64

	hitNanos  atomic.Uint64
	missNanos atomic.Uint64
}

// Snapshot is a point-in-time copy of the counters with derived rates.
type Snapshot struct {
	Requests  uint64 `json:"requests"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Fallbacks uint64 `json:"fallbacks"`
	Errors    uint64 `json:"errors"`

	RouteDPCCP   uint64 `json:"route_dpccp"`
	RouteMPDP    uint64 `json:"route_mpdp_cpu"`
	RouteIDP2    uint64 `json:"route_idp2"`
	RouteUnionDP uint64 `json:"route_uniondp"`

	HitRate       float64 `json:"hit_rate"`
	AvgHitMicros  float64 `json:"avg_hit_us"`
	AvgMissMicros float64 `json:"avg_miss_us"`
}

// Snapshot copies the counters. Each counter is read atomically; the set is
// not one consistent cut, which is fine for monitoring.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		Requests:     c.requests.Load(),
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Coalesced:    c.coalesced.Load(),
		Fallbacks:    c.fallbacks.Load(),
		Errors:       c.errors.Load(),
		RouteDPCCP:   c.routeDPCCP.Load(),
		RouteMPDP:    c.routeMPDP.Load(),
		RouteIDP2:    c.routeIDP2.Load(),
		RouteUnionDP: c.routeUnionDP.Load(),
	}
	if served := s.Hits + s.Misses + s.Coalesced; served > 0 {
		s.HitRate = float64(s.Hits+s.Coalesced) / float64(served)
	}
	if s.Hits > 0 {
		s.AvgHitMicros = float64(c.hitNanos.Load()) / float64(s.Hits) / 1e3
	}
	if s.Misses > 0 {
		s.AvgMissMicros = float64(c.missNanos.Load()) / float64(s.Misses) / 1e3
	}
	return s
}

// String renders the snapshot as JSON; it makes Counters an expvar.Var.
func (c *Counters) String() string {
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

func (c *Counters) observeHit(d time.Duration) {
	c.hits.Add(1)
	c.hitNanos.Add(uint64(d))
}

func (c *Counters) observeMiss(d time.Duration) {
	c.misses.Add(1)
	c.missNanos.Add(uint64(d))
}

func (c *Counters) observeRoute(alg core.Algorithm) {
	switch alg {
	case core.AlgDPCCP:
		c.routeDPCCP.Add(1)
	case core.AlgMPDPParallel:
		c.routeMPDP.Add(1)
	case core.AlgIDP2:
		c.routeIDP2.Add(1)
	case core.AlgUnionDP:
		c.routeUnionDP.Add(1)
	}
}
