package service

import (
	"encoding/json"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
)

// Counters is the service's expvar-style instrumentation: lock-free atomic
// counters updated on every request. It implements expvar.Var (String
// returns JSON), so a server can expose it with
// expvar.Publish("optimizer", svc.Counters()).
type Counters struct {
	requests  atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	fallbacks atomic.Uint64
	errors    atomic.Uint64
	canceled  atomic.Uint64
	// shed counts requests rejected by admission control (rate cap, queue
	// wait budget, or deadline-aware shedding); queued counts requests that
	// entered the worker queue, and queueDepth is the live gauge of slots
	// occupied right now.
	shed       atomic.Uint64
	queued     atomic.Uint64
	queueDepth atomic.Int64

	routeDPCCP   atomic.Uint64
	routeMPDP    atomic.Uint64
	routeMPDPGPU atomic.Uint64
	routeIDP2    atomic.Uint64
	routeUnionDP atomic.Uint64

	// Per-backend accounting, indexed by slot: where the router
	// sent requests, which substrate actually served them (fallbacks
	// land on heuristic), which substrate's plans the cache re-served,
	// and which substrate blew the budget.
	backends [numBackends]backendCounters

	hitNanos  atomic.Uint64
	missNanos atomic.Uint64
}

// backendCounters is one substrate's slice of the instrumentation.
type backendCounters struct {
	routed    atomic.Uint64
	served    atomic.Uint64
	hits      atomic.Uint64
	fallbacks atomic.Uint64
}

// numBackends is the counter-array capacity; TestBackendSlotCoversRegistry
// pins it to len(backend.IDs()) so a new backend cannot silently lose its
// counters.
const numBackends = 4

// backendSlot derives each ID's counter slot from its position in the
// backend registry — one source of truth, no hand-maintained switch.
var backendSlot = func() map[backend.ID]int {
	m := make(map[backend.ID]int, len(backend.IDs()))
	for i, id := range backend.IDs() {
		m[id] = i
	}
	return m
}()

// slot returns the counters of id, or nil for unknown IDs (e.g. entries
// imported from a peer without backend identity) — callers skip nil, which
// keeps the per-backend hit sum ≤ total hits and makes every path,
// including Snapshot, panic-free by construction.
func (c *Counters) slot(id backend.ID) *backendCounters {
	if i, ok := backendSlot[id]; ok && i < numBackends {
		return &c.backends[i]
	}
	return nil
}

// BackendCounts is the snapshot of one backend's counters.
type BackendCounts struct {
	// Routed counts requests the router dispatched to this backend.
	Routed uint64 `json:"routed"`
	// Served counts optimizations this backend completed (a heuristic
	// fallback run counts for heuristic, not for the backend that timed
	// out).
	Served uint64 `json:"served"`
	// Hits counts cache hits whose entry this backend originally produced.
	Hits uint64 `json:"hits"`
	// Fallbacks counts optimizations that exceeded the budget on this
	// backend and fell back to a heuristic.
	Fallbacks uint64 `json:"fallbacks"`
}

// Snapshot is a point-in-time copy of the counters with derived rates.
type Snapshot struct {
	Requests  uint64 `json:"requests"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Fallbacks uint64 `json:"fallbacks"`
	Errors    uint64 `json:"errors"`
	// Canceled counts requests whose caller context was cancelled (client
	// disconnects included) before a plan was produced.
	Canceled uint64 `json:"canceled"`
	// Shed counts requests rejected by admission control with ErrOverloaded.
	Shed uint64 `json:"shed"`
	// Queued counts requests that entered the worker queue; QueueDepth is
	// the number of queue slots occupied at snapshot time.
	Queued     uint64 `json:"queued"`
	QueueDepth int64  `json:"queue_depth"`

	RouteDPCCP   uint64 `json:"route_dpccp"`
	RouteMPDP    uint64 `json:"route_mpdp_cpu"`
	RouteMPDPGPU uint64 `json:"route_mpdp_gpu"`
	RouteIDP2    uint64 `json:"route_idp2"`
	RouteUnionDP uint64 `json:"route_uniondp"`

	// Backends breaks requests down by execution substrate, keyed by
	// backend ID (cpu-seq, cpu-parallel, gpu, heuristic).
	Backends map[string]BackendCounts `json:"backends"`

	HitRate       float64 `json:"hit_rate"`
	AvgHitMicros  float64 `json:"avg_hit_us"`
	AvgMissMicros float64 `json:"avg_miss_us"`
}

// Snapshot copies the counters. Each counter is read atomically; the set is
// not one consistent cut, which is fine for monitoring.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		Requests:     c.requests.Load(),
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Coalesced:    c.coalesced.Load(),
		Fallbacks:    c.fallbacks.Load(),
		Errors:       c.errors.Load(),
		Canceled:     c.canceled.Load(),
		Shed:         c.shed.Load(),
		Queued:       c.queued.Load(),
		QueueDepth:   c.queueDepth.Load(),
		RouteDPCCP:   c.routeDPCCP.Load(),
		RouteMPDP:    c.routeMPDP.Load(),
		RouteMPDPGPU: c.routeMPDPGPU.Load(),
		RouteIDP2:    c.routeIDP2.Load(),
		RouteUnionDP: c.routeUnionDP.Load(),
		Backends:     make(map[string]BackendCounts, numBackends),
	}
	for _, id := range backend.IDs() {
		b := c.slot(id)
		if b == nil {
			continue
		}
		s.Backends[string(id)] = BackendCounts{
			Routed:    b.routed.Load(),
			Served:    b.served.Load(),
			Hits:      b.hits.Load(),
			Fallbacks: b.fallbacks.Load(),
		}
	}
	if served := s.Hits + s.Misses + s.Coalesced; served > 0 {
		s.HitRate = float64(s.Hits+s.Coalesced) / float64(served)
	}
	if s.Hits > 0 {
		s.AvgHitMicros = float64(c.hitNanos.Load()) / float64(s.Hits) / 1e3
	}
	if s.Misses > 0 {
		s.AvgMissMicros = float64(c.missNanos.Load()) / float64(s.Misses) / 1e3
	}
	return s
}

// String renders the snapshot as JSON; it makes Counters an expvar.Var.
func (c *Counters) String() string {
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

func (c *Counters) observeQueued() {
	c.queued.Add(1)
	c.queueDepth.Add(1)
}

func (c *Counters) observeHit(d time.Duration, id backend.ID) {
	c.hits.Add(1)
	c.hitNanos.Add(uint64(d))
	if b := c.slot(id); b != nil {
		b.hits.Add(1)
	}
}

func (c *Counters) observeMiss(d time.Duration) {
	c.misses.Add(1)
	c.missNanos.Add(uint64(d))
}

func (c *Counters) observeRoute(alg core.Algorithm, id backend.ID) {
	switch alg {
	case core.AlgDPCCP:
		c.routeDPCCP.Add(1)
	case core.AlgMPDPParallel:
		c.routeMPDP.Add(1)
	case core.AlgMPDPGPU:
		c.routeMPDPGPU.Add(1)
	case core.AlgIDP2:
		c.routeIDP2.Add(1)
	case core.AlgUnionDP:
		c.routeUnionDP.Add(1)
	}
	if b := c.slot(id); b != nil {
		b.routed.Add(1)
	}
}

func (c *Counters) observeServed(id backend.ID) {
	if b := c.slot(id); b != nil {
		b.served.Add(1)
	}
}

func (c *Counters) observeFallback(id backend.ID) {
	c.fallbacks.Add(1)
	if b := c.slot(id); b != nil {
		b.fallbacks.Add(1)
	}
}
