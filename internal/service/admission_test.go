package service

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestTokenBucketRefillAndRetryHint(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewTokenBucket(10, 2) // 10/s, burst 2, starts full

	if ok, _ := b.Allow(t0, 1); !ok {
		t.Fatal("full bucket denied the first token")
	}
	if ok, _ := b.Allow(t0, 1); !ok {
		t.Fatal("burst-2 bucket denied the second token")
	}
	ok, retry := b.Allow(t0, 1)
	if ok {
		t.Fatal("empty bucket admitted a token")
	}
	// One token refills in 100ms at 10/s.
	if retry <= 0 || retry > 110*time.Millisecond {
		t.Errorf("retry hint = %v, want ~100ms", retry)
	}
	// After 150ms one token is back; a second is not.
	t1 := t0.Add(150 * time.Millisecond)
	if ok, _ := b.Allow(t1, 1); !ok {
		t.Error("bucket did not refill after 150ms at 10/s")
	}
	if ok, _ := b.Allow(t1, 1); ok {
		t.Error("bucket over-refilled")
	}
	// A long idle stretch must clamp at burst, not accumulate.
	t2 := t1.Add(time.Hour)
	if ok, _ := b.Allow(t2, 3); ok {
		t.Error("bucket exceeded its burst after idling")
	}
	if ok, _ := b.Allow(t2, 2); !ok {
		t.Error("bucket lost its burst capacity")
	}
}

func TestRateCapShedsWithErrOverloaded(t *testing.T) {
	svc := New(Config{Workers: 1, Admission: Admission{RatePerSec: 0.001}})
	defer svc.Close()
	q := workload.MusicBrainzQuery(6, rand.New(rand.NewSource(1)))

	if _, err := svc.Optimize(context.Background(), q); err != nil {
		t.Fatalf("burst-funded request failed: %v", err)
	}
	_, err := svc.Optimize(context.Background(), q)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	s := svc.Counters().Snapshot()
	if s.Shed != 1 {
		t.Errorf("shed = %d, want 1", s.Shed)
	}
	if s.Errors != 0 {
		t.Errorf("errors = %d, want 0 (a shed is not an error)", s.Errors)
	}
}

func TestDeadlineAwareShedRejectsDoomedRequests(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	// A deadline already in the past cannot outlive any queue delay: the
	// request is shed before burning a queue slot or a worker run.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	q := workload.MusicBrainzQuery(6, rand.New(rand.NewSource(2)))
	_, err := svc.Optimize(ctx, q)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded for an already-expired deadline", err)
	}
	if s := svc.Counters().Snapshot(); s.Shed != 1 {
		t.Errorf("shed = %d, want 1", s.Shed)
	}
}

func TestImmediateShedWhenQueueFull(t *testing.T) {
	// MaxQueueWait < 0: a full queue sheds instantly instead of blocking.
	svc := New(Config{
		Workers:    1,
		QueueDepth: 1,
		ExactLimit: 64,
		Timeout:    time.Hour,
		Admission:  Admission{MaxQueueWait: -1},
	})
	defer svc.Close()

	big := func(seed int64) func() {
		q := workload.Cycle(40, rand.New(rand.NewSource(seed)))
		ctx, cancel := context.WithCancel(context.Background())
		go svc.Optimize(ctx, q)
		return cancel
	}
	stopA := big(1)
	defer stopA()
	// Wait for A on the worker, then fill the queue with B.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Counters().Snapshot().Queued < 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	stopB := big(2)
	defer stopB()
	for svc.Counters().Snapshot().QueueDepth < 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	q := workload.Cycle(40, rand.New(rand.NewSource(3)))
	_, err := svc.Optimize(context.Background(), q)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want immediate ErrOverloaded with a full queue", err)
	}
}
