package service

import (
	"sync"

	"repro/internal/bitset"
	"repro/internal/plan"
)

// SubEntry is one subgraph-memo entry in exportable form: the winning top
// split of a connected subquery, keyed by the canonical fingerprint of the
// induced subgraph (statistics included, so a key hit is always sound).
//
// Masks are stored in origin-query index space, with Verts bridging them to
// the canonical form: a prober that canonicalizes a matching set composes
// its own permutation with Verts into an origin→prober vertex
// correspondence, which translates Set/Left/Right — and, crucially, the
// Set of every other entry from the same Origin contained in Set — with
// cheap bit arithmetic. That containment property is what lets the warm
// path canonicalize one maximal shared region and then bulk-seed all of its
// cached subsets without further canonicalization.
type SubEntry struct {
	// Key is the canonical induced fingerprint (see FingerprintInduced).
	Key string
	// Origin is the whole-query fingerprint whose DP table this entry was
	// harvested from; targeted invalidation of that fingerprint removes the
	// entry.
	Origin string
	// Set is the harvested connected set, Left and Right its winning split;
	// all three in origin-query index space. Both split sides are connected
	// in the induced subgraph (csg-cmp invariant).
	Set         bitset.Mask
	Left, Right bitset.Mask
	Rows, Cost  float64
	Op          plan.Op
	// Verts maps canonical indices to origin-query vertices:
	// Verts[canonicalIndex] = originVertex.
	Verts []int
	// Epoch is the catalog stats epoch at harvest time (informational: the
	// key embeds exact statistics, so a hit is valid at any epoch).
	Epoch uint64
	// Inv is the order-invariant subset hash (see invariantHasher), carried
	// with the entry because it cannot be recomputed without the origin
	// query.
	Inv uint64
}

// SubMemo is the subplan memo: a bounded FIFO map from canonical induced
// fingerprints to winning top splits, plus a multiset of the entries'
// invariant hashes so warm-start probes can reject absent subsets without
// computing a full canonicalization. One mutex guards it all — entries are
// small and the memo is touched once per optimization (bulk harvest, bulk
// warm scan), not once per lattice set.
type SubMemo struct {
	mu    sync.Mutex
	items map[string]SubEntry
	order []string // insertion order; head indexes the oldest live key
	head  int
	cap   int
	invs  map[uint64]int
	// byOrigin indexes live keys by their Origin fingerprint, so the warm
	// path's bulk-seed scan and targeted invalidation touch one origin's
	// entries instead of the whole memo.
	byOrigin map[string]map[string]struct{}
}

// NewSubMemo builds a memo bounded to capacity entries (minimum 1).
func NewSubMemo(capacity int) *SubMemo {
	if capacity < 1 {
		capacity = 1
	}
	return &SubMemo{
		items:    make(map[string]SubEntry),
		invs:     make(map[uint64]int),
		byOrigin: make(map[string]map[string]struct{}),
		cap:      capacity,
	}
}

// Cap returns the memo's capacity.
func (m *SubMemo) Cap() int { return m.cap }

// Len returns the number of live entries.
func (m *SubMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// Put inserts e, evicting the oldest entry when full. An existing key is
// refreshed in place (its FIFO position is kept — the memo optimizes for
// churn resistance, not recency).
func (m *SubMemo) Put(e SubEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.items[e.Key]; ok {
		m.dropInv(old.Inv)
		if old.Origin != e.Origin {
			m.dropOrigin(old.Origin, e.Key)
			m.addOrigin(e.Origin, e.Key)
		}
		m.items[e.Key] = e
		m.invs[e.Inv]++
		return
	}
	for len(m.items) >= m.cap {
		m.evictOldest()
	}
	m.items[e.Key] = e
	m.invs[e.Inv]++
	m.addOrigin(e.Origin, e.Key)
	m.order = append(m.order, e.Key)
	m.compact()
}

// Get returns the entry for the exact canonical key.
func (m *SubMemo) Get(key string) (SubEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.items[key]
	return e, ok
}

// MayContain reports whether some entry carries the given invariant hash —
// the warm path's cheap pre-filter. False is definitive; true may be a
// collision, which the exact-key Get resolves.
func (m *SubMemo) MayContain(inv uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.invs[inv] > 0
}

// DeleteOrigin removes every entry harvested from the given whole-query
// fingerprint and returns how many were dropped.
func (m *SubMemo) DeleteOrigin(origin string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for k := range m.byOrigin[origin] {
		if e, ok := m.items[k]; ok {
			m.dropInv(e.Inv)
			delete(m.items, k)
			n++
		}
	}
	delete(m.byOrigin, origin)
	return n
}

// CountOrigin returns how many entries were harvested from the given
// whole-query fingerprint.
func (m *SubMemo) CountOrigin(origin string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byOrigin[origin])
}

// WithinOrigin returns the live entries of the given origin whose Set is
// contained in the given origin-space region — the bulk-seed scan behind a
// warm-start hit (see warmTable).
func (m *SubMemo) WithinOrigin(origin string, region bitset.Mask) []SubEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []SubEntry
	for k := range m.byOrigin[origin] {
		if e, ok := m.items[k]; ok && e.Set&region == e.Set {
			out = append(out, e)
		}
	}
	return out
}

// Flush drops every entry.
func (m *SubMemo) Flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.items = make(map[string]SubEntry)
	m.invs = make(map[uint64]int)
	m.byOrigin = make(map[string]map[string]struct{})
	m.order = nil
	m.head = 0
}

// Export returns every live entry in insertion order, so replaying the
// slice through Put on another memo reproduces the source's eviction order.
func (m *SubMemo) Export() []SubEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SubEntry, 0, len(m.items))
	for _, k := range m.order[m.head:] {
		if e, ok := m.items[k]; ok {
			out = append(out, e)
		}
	}
	return out
}

// ExportOrigin returns the live entries harvested from the given
// whole-query fingerprint, in insertion order.
func (m *SubMemo) ExportOrigin(origin string) []SubEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []SubEntry
	for _, k := range m.order[m.head:] {
		if e, ok := m.items[k]; ok && e.Origin == origin {
			out = append(out, e)
		}
	}
	return out
}

// evictOldest removes the oldest live entry; callers hold the mutex.
func (m *SubMemo) evictOldest() {
	for m.head < len(m.order) {
		k := m.order[m.head]
		m.head++
		if e, ok := m.items[k]; ok {
			m.dropInv(e.Inv)
			m.dropOrigin(e.Origin, k)
			delete(m.items, k)
			return
		}
	}
	// order exhausted: resynchronize (only reachable if every queued key
	// was already deleted out of band).
	m.order = m.order[:0]
	m.head = 0
}

// compact reclaims the dead prefix of the order queue once it dominates.
func (m *SubMemo) compact() {
	if m.head > len(m.order)/2 && m.head > 64 {
		m.order = append(m.order[:0], m.order[m.head:]...)
		m.head = 0
	}
}

func (m *SubMemo) addOrigin(origin, key string) {
	set, ok := m.byOrigin[origin]
	if !ok {
		set = make(map[string]struct{})
		m.byOrigin[origin] = set
	}
	set[key] = struct{}{}
}

func (m *SubMemo) dropOrigin(origin, key string) {
	if set, ok := m.byOrigin[origin]; ok {
		delete(set, key)
		if len(set) == 0 {
			delete(m.byOrigin, origin)
		}
	}
}

func (m *SubMemo) dropInv(inv uint64) {
	if c := m.invs[inv]; c <= 1 {
		delete(m.invs, inv)
	} else {
		m.invs[inv] = c - 1
	}
}
