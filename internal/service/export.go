package service

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/plan"
)

// Entry is one plan-cache entry in exportable form: the canonical
// fingerprint key and the plan in canonical index space, exactly as the
// cache stores it. Entries exist so an external layer (cluster replication,
// rebalancing, persistence) can move warm plans between Services without
// re-optimizing; they are immutable by contract — the plan tree must never
// be mutated after export, since Import shares it rather than copying
// (Optimize hands every caller a private remapped copy, so sharing the
// canonical tree is safe).
type Entry struct {
	// Key is the canonical fingerprint (see FingerprintQuery); an Entry is
	// only valid for the Service-external query it was fingerprinted from.
	Key       string
	Plan      *plan.Node // canonical index space; treat as immutable
	Stats     dp.Stats
	Algorithm core.Algorithm
	// Backend is the substrate that produced the plan; it travels with
	// the entry so replicated plans keep their provenance cluster-wide.
	Backend  backend.ID
	Shape    Shape
	GPU      *gpusim.MultiStats // device work model when Backend == gpu
	FellBack bool
}

// Flush drops every plan-cache entry. Use it when the statistics or catalog
// behind cached plans change: a stale plan is still a valid join tree, but
// its costs no longer describe the database.
func (s *Service) Flush() {
	s.cache.Flush()
}

// ExportEntry returns the cached entry for a canonical key, if present.
// The lookup counts as a use for the LRU.
func (s *Service) ExportEntry(key string) (Entry, bool) {
	e, ok := s.cache.Get(key)
	if !ok {
		return Entry{}, false
	}
	return exportEntry(e), true
}

// Export returns every cached entry (least-recently-used first within each
// cache shard, so importing the slice in order preserves relative recency
// at the destination), for replication or migration to another Service.
func (s *Service) Export() []Entry {
	cachedEntries := s.cache.Export()
	out := make([]Entry, len(cachedEntries))
	for i, e := range cachedEntries {
		out[i] = exportEntry(e)
	}
	return out
}

// Import installs an exported entry into the plan cache, overwriting any
// entry already cached under the same key. Subsequent Optimize calls for
// queries with that fingerprint are cache hits.
func (s *Service) Import(e Entry) error {
	if e.Key == "" {
		return fmt.Errorf("service: import entry with empty key")
	}
	if e.Plan == nil {
		return fmt.Errorf("service: import entry %q with nil plan", e.Key)
	}
	s.cache.Put(&cached{
		key:      e.Key,
		plan:     e.Plan,
		stats:    e.Stats,
		alg:      e.Algorithm,
		backend:  e.Backend,
		shape:    e.Shape,
		gpu:      e.GPU,
		fellBack: e.FellBack,
	})
	return nil
}

func exportEntry(e *cached) Entry {
	return Entry{
		Key:       e.key,
		Plan:      e.plan,
		Stats:     e.stats,
		Algorithm: e.alg,
		Backend:   e.backend,
		Shape:     e.shape,
		GPU:       e.gpu,
		FellBack:  e.fellBack,
	}
}
