package service

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/plan"
)

// Entry is one plan-cache entry in exportable form: the canonical
// fingerprint key and the plan in canonical index space, exactly as the
// cache stores it. Entries exist so an external layer (cluster replication,
// rebalancing, persistence) can move warm plans between Services without
// re-optimizing; they are immutable by contract — the plan tree must never
// be mutated after export, since Import shares it rather than copying
// (Optimize hands every caller a private remapped copy, so sharing the
// canonical tree is safe).
type Entry struct {
	// Key is the canonical fingerprint (see FingerprintQuery); an Entry is
	// only valid for the Service-external query it was fingerprinted from.
	Key       string
	Plan      *plan.Node // canonical index space; treat as immutable
	Stats     dp.Stats
	Algorithm core.Algorithm
	// Backend is the substrate that produced the plan; it travels with
	// the entry so replicated plans keep their provenance cluster-wide.
	Backend  backend.ID
	Shape    Shape
	GPU      *gpusim.MultiStats // device work model when Backend == gpu
	FellBack bool
	// Epoch is the catalog stats epoch the plan was produced under, Hits
	// the exact-key hit count served so far; both travel with the entry so
	// replication preserves staleness provenance and popularity.
	Epoch uint64
	Hits  uint64
	// StructKey and StructOf are the stats-blind structural identity (see
	// StructuralFingerprint and cached.structOf); they travel with the
	// entry so a peer that imports it can serve the stale-twin re-cost
	// path for the same queries the origin node could.
	StructKey string
	StructOf  []int
}

// Flush drops every plan-cache entry, the subgraph memo and the structural
// index. Prefer BumpStatsEpoch when the statistics behind the cached plans
// change: a stale plan is still a valid join tree and the epoch machinery
// re-validates it lazily instead of discarding the work.
func (s *Service) Flush() {
	s.cache.Flush()
	s.submemo.Flush()
	s.structMu.Lock()
	s.structIdx = make(map[string]string)
	s.structMu.Unlock()
}

// Invalidate removes the entry cached under the given canonical key along
// with every subgraph-memo entry harvested from it. It reports whether the
// whole-query entry existed and how many sub-entries were dropped.
func (s *Service) Invalidate(key string) (bool, int) {
	found := false
	if e, ok := s.cache.Get(key); ok {
		found = s.cache.Delete(key)
		if e.structKey != "" {
			s.structMu.Lock()
			if s.structIdx[e.structKey] == key {
				delete(s.structIdx, e.structKey)
			}
			s.structMu.Unlock()
		}
	}
	return found, s.submemo.DeleteOrigin(key)
}

// ExportEntry returns the cached entry for a canonical key, if present.
// The lookup counts as a use for the LRU.
func (s *Service) ExportEntry(key string) (Entry, bool) {
	e, ok := s.cache.Get(key)
	if !ok {
		return Entry{}, false
	}
	return exportEntry(e), true
}

// Export returns every cached entry (least-recently-used first within each
// cache shard, so importing the slice in order preserves relative recency
// at the destination), for replication or migration to another Service.
func (s *Service) Export() []Entry {
	cachedEntries := s.cache.Export()
	out := make([]Entry, len(cachedEntries))
	for i, e := range cachedEntries {
		out[i] = exportEntry(e)
	}
	return out
}

// ExportSubs returns every subgraph-memo entry in insertion order, for
// replication alongside Export.
func (s *Service) ExportSubs() []SubEntry { return s.submemo.Export() }

// ExportSubsOf returns the subgraph-memo entries harvested from the given
// whole-query fingerprint, so per-key replication can carry a plan's
// subplans with it.
func (s *Service) ExportSubsOf(origin string) []SubEntry { return s.submemo.ExportOrigin(origin) }

// ImportSubs installs exported subgraph-memo entries; entries with an empty
// key are rejected.
func (s *Service) ImportSubs(entries []SubEntry) error {
	for _, e := range entries {
		if e.Key == "" {
			return fmt.Errorf("service: import sub-entry with empty key")
		}
		s.submemo.Put(e)
	}
	return nil
}

// Import installs an exported entry into the plan cache, overwriting any
// entry already cached under the same key. Subsequent Optimize calls for
// queries with that fingerprint are cache hits.
func (s *Service) Import(e Entry) error {
	if e.Key == "" {
		return fmt.Errorf("service: import entry with empty key")
	}
	if e.Plan == nil {
		return fmt.Errorf("service: import entry %q with nil plan", e.Key)
	}
	c := &cached{
		key:       e.Key,
		plan:      e.Plan,
		stats:     e.Stats,
		alg:       e.Algorithm,
		backend:   e.Backend,
		shape:     e.Shape,
		gpu:       e.GPU,
		fellBack:  e.FellBack,
		epoch:     e.Epoch,
		structKey: e.StructKey,
		structOf:  e.StructOf,
	}
	if c.epoch == 0 {
		c.epoch = s.StatsEpoch()
	}
	c.hits.Store(e.Hits)
	s.cache.Put(c)
	if c.structKey != "" {
		s.structMu.Lock()
		s.structIdx[c.structKey] = c.key
		s.structMu.Unlock()
	}
	return nil
}

func exportEntry(e *cached) Entry {
	return Entry{
		Key:       e.key,
		Plan:      e.plan,
		Stats:     e.stats,
		Algorithm: e.alg,
		Backend:   e.backend,
		Shape:     e.shape,
		GPU:       e.gpu,
		FellBack:  e.fellBack,
		Epoch:     e.epoch,
		Hits:      e.hits.Load(),
		StructKey: e.structKey,
		StructOf:  e.structOf,
	}
}
