package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/workload"
)

func relEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func dpccpCost(t *testing.T, q *cost.Query) float64 {
	t.Helper()
	p, _, err := dp.DPCCP(dp.Input{Q: q, M: cost.DefaultModel()})
	if err != nil {
		t.Fatal(err)
	}
	return p.Cost
}

// TestRouterMatchesDPCCPSmall is the acceptance criterion: for graphs of
// at most 12 relations the adaptive router must return plans cost-identical
// to a direct DPCCP call.
func TestRouterMatchesDPCCPSmall(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	for _, kind := range []workload.Kind{
		workload.KindChain, workload.KindCycle, workload.KindStar,
		workload.KindClique, workload.KindSnowflake, workload.KindMB,
	} {
		for n := 4; n <= 12; n += 2 {
			q := genQuery(t, kind, n, int64(100*n))
			res, err := s.Optimize(context.Background(), q)
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, n, err)
			}
			if want := dpccpCost(t, q); !relEq(res.Plan.Cost, want) {
				t.Errorf("%s/%d: service cost %g, DPCCP cost %g", kind, n, res.Plan.Cost, want)
			}
			if res.Algorithm != core.AlgDPCCP {
				t.Errorf("%s/%d: routed to %s, want dpccp", kind, n, res.Algorithm)
			}
			if err := res.Plan.Validate(identity(n)); err != nil {
				t.Errorf("%s/%d: invalid plan: %v", kind, n, err)
			}
		}
	}
}

func TestRouteThresholds(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	tests := []struct {
		kind workload.Kind
		n    int
		want core.Algorithm
		bid  backend.ID
	}{
		{workload.KindChain, 8, core.AlgDPCCP, backend.CPUSeq},
		{workload.KindClique, 12, core.AlgDPCCP, backend.CPUSeq},
		{workload.KindMB, 20, core.AlgMPDPParallel, backend.CPUParallel},
		{workload.KindChain, 25, core.AlgMPDPParallel, backend.CPUParallel},
		// Beyond the CPU clique cap the GPU band picks cliques up, to its
		// own cap; past that, the heuristics.
		{workload.KindClique, 16, core.AlgMPDPGPU, backend.GPU},
		{workload.KindClique, 20, core.AlgUnionDP, backend.Heuristic},
		// The 26..GPULimit band used to be the heuristic fallback;
		// bounded-degree trees and sparse cyclic graphs now stay exact on
		// the simulated GPU.
		{workload.KindCycle, 40, core.AlgMPDPGPU, backend.GPU},
		{workload.KindSnowflake, 30, core.AlgMPDPGPU, backend.GPU},
		// Stars are hub-bombs: a degree-d hub has 2^d connected supersets,
		// so past the CPU band they skip the GPU and go straight to the
		// tree heuristic (the pre-backend behaviour).
		{workload.KindStar, 40, core.AlgIDP2, backend.Heuristic},
		// Past the bitset width exact enumeration is impossible anywhere.
		{workload.KindStar, 70, core.AlgIDP2, backend.Heuristic},
		{workload.KindCycle, 70, core.AlgUnionDP, backend.Heuristic},
	}
	for _, tc := range tests {
		q := genQuery(t, tc.kind, tc.n, 5)
		alg, bid, _ := s.Route(q)
		if alg != tc.want || bid != tc.bid {
			t.Errorf("%s/%d: routed to %s on %s, want %s on %s",
				tc.kind, tc.n, alg, bid, tc.want, tc.bid)
		}
	}
}

// TestRouteDenseGeneralCapped: a cyclic general graph with edge density
// beyond DenseEdgeFactor caps the GPU band like a clique — its
// connected-set space explodes the same way — but keeps the exact
// CPU-parallel band it always had below 25 relations.
func TestRouteDenseGeneralCapped(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	x := s.Crossover()

	// A near-clique: clique minus one edge is still ShapeGeneral but far
	// denser than DenseEdgeFactor allows.
	nearClique := func(n int) *cost.Query {
		q := genQuery(t, workload.KindClique, n, 3)
		q.G.Edges = q.G.Edges[:len(q.G.Edges)-1]
		if shape := DetectShape(q.G); shape != ShapeGeneral {
			t.Fatalf("clique minus an edge detected as %s, want general", shape)
		}
		return q
	}

	// Inside the CPU band, density must not downgrade exactness: the
	// pre-backend router planned these exactly with parallel MPDP.
	n := x.GPUCliqueLimit + 2 // 18 by default, within cpu_parallel_limit
	alg, bid, _ := s.Route(nearClique(n))
	if alg != core.AlgMPDPParallel || bid != backend.CPUParallel {
		t.Errorf("dense general graph of %d rels routed to %s on %s, want mpdp-cpu on cpu-parallel",
			n, alg, bid)
	}

	// Past the CPU band, dense graphs skip the GPU band (capped at
	// gpu_clique_limit) and go heuristic.
	alg, bid, _ = s.Route(nearClique(30))
	if alg != core.AlgUnionDP || bid != backend.Heuristic {
		t.Errorf("dense general graph of 30 rels routed to %s on %s, want uniondp on heuristic",
			alg, bid)
	}

	// A sparse cycle of the same size stays exact on the GPU.
	sparse := genQuery(t, workload.KindCycle, 30, 3)
	alg, bid, _ = s.Route(sparse)
	if alg != core.AlgMPDPGPU || bid != backend.GPU {
		t.Errorf("sparse cycle of 30 rels routed to %s on %s, want mpdp-gpu on gpu", alg, bid)
	}
}

// TestRouteCrossoverConfig: config-loaded thresholds move the band edges.
func TestRouteCrossoverConfig(t *testing.T) {
	s := New(Config{Crossover: &backend.Crossover{GPULimit: 30}})
	defer s.Close()
	if alg, bid, _ := s.Route(genQuery(t, workload.KindCycle, 30, 1)); alg != core.AlgMPDPGPU || bid != backend.GPU {
		t.Errorf("cycle/30 under gpu_limit=30: %s on %s", alg, bid)
	}
	if alg, bid, _ := s.Route(genQuery(t, workload.KindCycle, 31, 1)); alg != core.AlgUnionDP || bid != backend.Heuristic {
		t.Errorf("cycle/31 over gpu_limit=30: %s on %s", alg, bid)
	}
}

func TestWarmCacheHitAndIsomorphicHit(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	q := genQuery(t, workload.KindMB, 11, 9)

	cold, err := s.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Error("first request reported a cache hit")
	}

	warm, err := s.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("repeat request missed the cache")
	}
	if !relEq(warm.Plan.Cost, cold.Plan.Cost) {
		t.Errorf("warm cost %g != cold cost %g", warm.Plan.Cost, cold.Plan.Cost)
	}

	// A renamed/reordered isomorphic query must hit too, with the plan
	// remapped into its own relation-index space.
	perm := rand.New(rand.NewSource(2)).Perm(q.N())
	pq := permuteQuery(q, perm)
	iso, err := s.Optimize(context.Background(), pq)
	if err != nil {
		t.Fatal(err)
	}
	if !iso.CacheHit {
		t.Error("isomorphic query missed the cache")
	}
	if !relEq(iso.Plan.Cost, cold.Plan.Cost) {
		t.Errorf("isomorphic hit cost %g != %g", iso.Plan.Cost, cold.Plan.Cost)
	}
	if err := iso.Plan.Validate(identity(pq.N())); err != nil {
		t.Errorf("remapped plan invalid: %v", err)
	}
	if want := dpccpCost(t, pq); !relEq(iso.Plan.Cost, want) {
		t.Errorf("remapped plan cost %g, direct optimization of permuted query %g", iso.Plan.Cost, want)
	}

	snap := s.Counters().Snapshot()
	if snap.Hits != 2 || snap.Misses != 1 {
		t.Errorf("counters: hits=%d misses=%d, want 2/1", snap.Hits, snap.Misses)
	}
}

func TestCoalescingSharesOneOptimization(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	q := genQuery(t, workload.KindMB, 16, 4)

	const callers = 8
	results := make([]*Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Optimize(context.Background(), q)
		}(i)
	}
	wg.Wait()

	var costc float64
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if costc == 0 {
			costc = results[i].Plan.Cost
		} else if !relEq(results[i].Plan.Cost, costc) {
			t.Errorf("caller %d: cost %g != %g", i, results[i].Plan.Cost, costc)
		}
	}
	snap := s.Counters().Snapshot()
	if snap.Misses < 1 {
		t.Error("expected at least one miss")
	}
	if got := snap.Hits + snap.Misses + snap.Coalesced; got != callers {
		t.Errorf("hits+misses+coalesced = %d, want %d", got, callers)
	}
	if optimized := snap.RouteDPCCP + snap.RouteMPDP + snap.RouteIDP2 + snap.RouteUnionDP; optimized >= callers {
		t.Errorf("ran %d optimizations for %d identical concurrent requests", optimized, callers)
	}
}

// TestConcurrentHammer drives a shared service from many goroutines with a
// mix of repeated and isomorphically-renamed queries; with -race this is
// the service's concurrency regression test.
func TestConcurrentHammer(t *testing.T) {
	s := New(Config{CacheShards: 4, CacheCapacity: 64})
	defer s.Close()

	kinds := []workload.Kind{workload.KindChain, workload.KindStar, workload.KindCycle, workload.KindMB}
	type job struct {
		q    *cost.Query
		cost float64
	}
	var jobs []job
	for i, kind := range kinds {
		for _, n := range []int{5, 8, 10} {
			q := genQuery(t, kind, n, int64(i*10+n))
			jobs = append(jobs, job{q, dpccpCost(t, q)})
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 40; i++ {
				j := jobs[rng.Intn(len(jobs))]
				q := j.q
				if rng.Intn(2) == 0 {
					q = permuteQuery(q, rng.Perm(q.N()))
				}
				res, err := s.Optimize(context.Background(), q)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !relEq(res.Plan.Cost, j.cost) {
					t.Errorf("worker %d: cost %g, want %g", w, res.Plan.Cost, j.cost)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	snap := s.Counters().Snapshot()
	if snap.Requests != workers*40 {
		t.Errorf("requests = %d, want %d", snap.Requests, workers*40)
	}
	if snap.Hits == 0 {
		t.Error("expected cache hits under repetition")
	}
}

func TestFallbackOnTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("timeout fallback burns the budget twice")
	}
	// Force the router to hand a 16-clique to sequential DPCCP with a
	// budget it cannot meet; the service must fall back to UnionDP.
	s := New(Config{SmallLimit: 16, Timeout: 150 * time.Millisecond, K: 8})
	defer s.Close()
	q := genQuery(t, workload.KindClique, 16, 2)
	res, err := s.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack {
		t.Error("expected heuristic fallback after exact timeout")
	}
	if res.Algorithm != core.AlgUnionDP {
		t.Errorf("fallback used %s, want uniondp-mpdp", res.Algorithm)
	}
	if snap := s.Counters().Snapshot(); snap.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", snap.Fallbacks)
	}
	if err := res.Plan.Validate(identity(16)); err != nil {
		t.Errorf("fallback plan invalid: %v", err)
	}
}

// TestGPUBandServesExactPlans is the service-level acceptance criterion
// of the GPU backend: queries in the 26..GPULimit band — which the
// pre-backend router sent to heuristics — now come back as exact GPU
// plans, cost-identical to a direct CPU enumeration, with the backend
// identity and device work model on the result.
func TestGPUBandServesExactPlans(t *testing.T) {
	s := New(Config{GPU: backend.GPUConfig{Devices: 2}})
	defer s.Close()
	for _, tc := range []struct {
		kind workload.Kind
		n    int
	}{
		// Shapes whose connected-set lattice stays tractable at this size;
		// hub-heavy graphs (stars, MusicBrainz walks) can exceed the memo
		// cap in this band, which the timeout fallback absorbs — see
		// TestFallbackOnTimeout.
		{workload.KindCycle, 40},
		{workload.KindSnowflake, 30},
		{workload.KindChain, 35},
	} {
		q := genQuery(t, tc.kind, tc.n, 1)
		res, err := s.Optimize(context.Background(), q)
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.kind, tc.n, err)
		}
		if res.Algorithm != core.AlgMPDPGPU || res.Backend != backend.GPU {
			t.Errorf("%s/%d: used %s on %s, want mpdp-gpu on gpu", tc.kind, tc.n, res.Algorithm, res.Backend)
		}
		if res.FellBack {
			t.Errorf("%s/%d: fell back to a heuristic", tc.kind, tc.n)
		}
		if res.GPU == nil || res.GPU.Devices != 2 {
			t.Errorf("%s/%d: missing multi-device stats: %+v", tc.kind, tc.n, res.GPU)
		}
		if err := res.Plan.Validate(identity(tc.n)); err != nil {
			t.Errorf("%s/%d: invalid plan: %v", tc.kind, tc.n, err)
		}
		if want := dpccpCost(t, q); !relEq(res.Plan.Cost, want) {
			t.Errorf("%s/%d: GPU-band cost %g, exact CPU cost %g", tc.kind, tc.n, res.Plan.Cost, want)
		}
		// A cache hit keeps the original backend attribution.
		warm, err := s.Optimize(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.CacheHit || warm.Backend != backend.GPU {
			t.Errorf("%s/%d: warm hit backend %s (hit=%v), want gpu", tc.kind, tc.n, warm.Backend, warm.CacheHit)
		}
	}
	snap := s.Counters().Snapshot()
	gpu := snap.Backends[string(backend.GPU)]
	if gpu.Routed != 3 || gpu.Served != 3 || gpu.Hits != 3 {
		t.Errorf("gpu backend counters %+v, want routed=3 served=3 hits=3", gpu)
	}
}

// hubTreeQuery builds an n-relation tree with a degree-(n-5) hub plus a
// short chain tail, so DetectShape reports ShapeTree (not ShapeStar) while
// the hub's ~2^(n-5) connected supersets still overflow the memo cap.
func hubTreeQuery(t *testing.T, n int) *cost.Query {
	t.Helper()
	var cat catalog.Catalog
	for i := 0; i < n; i++ {
		cat.Add(catalog.NewRelation(fmt.Sprintf("r%d", i), 1000, 32))
	}
	g := graph.New(n)
	for i := 1; i <= n-5; i++ {
		g.AddEdge(0, i, 0.001)
	}
	for i := n - 4; i < n; i++ {
		g.AddEdge(i-1, i, 0.001)
	}
	return &cost.Query{Cat: cat, G: g}
}

// TestHubHeavyGPUBandFallsBackWithinBudget: stars are excluded from the
// GPU band outright, but a hub-heavy *tree* still routes there, and its
// connected-set lattice (~2^35 here) overflows the memo cap long before
// enumeration finishes. The enumeration must abort at the deadline (see
// dp.TestConnectedBucketsHonorsDeadline) so the heuristic fallback
// answers within the same order of magnitude as the budget — not hours
// later.
func TestHubHeavyGPUBandFallsBackWithinBudget(t *testing.T) {
	s := New(Config{Timeout: 300 * time.Millisecond, K: 8})
	defer s.Close()
	q := hubTreeQuery(t, 40)
	if shape := DetectShape(q.G); shape != ShapeTree {
		t.Fatalf("precondition: hub tree detected as %s, want tree", shape)
	}
	start := time.Now()
	res, err := s.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if alg, bid, _ := s.Route(q); alg != core.AlgMPDPGPU || bid != backend.GPU {
		t.Fatalf("precondition: star/40 routes to %s on %s, want mpdp-gpu on gpu", alg, bid)
	}
	if !res.FellBack || res.Backend != backend.Heuristic {
		t.Errorf("star/40 = %s on %s (fellback=%v), want heuristic fallback",
			res.Algorithm, res.Backend, res.FellBack)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("fallback took %v against a 300ms budget — enumeration did not abort", elapsed)
	}
	if snap := s.Counters().Snapshot(); snap.Backends[string(backend.GPU)].Fallbacks != 1 {
		t.Errorf("gpu fallback counter = %d, want 1", snap.Backends[string(backend.GPU)].Fallbacks)
	}
}

func TestLargeQueriesRouteToHeuristics(t *testing.T) {
	s := New(Config{K: 6})
	defer s.Close()
	for _, tc := range []struct {
		kind workload.Kind
		n    int
		want core.Algorithm
	}{
		// Beyond the 64-relation bitset width no exact substrate applies.
		{workload.KindSnowflake, 70, core.AlgIDP2},
		{workload.KindCycle, 70, core.AlgUnionDP},
	} {
		q := genQuery(t, tc.kind, tc.n, 1)
		res, err := s.Optimize(context.Background(), q)
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.kind, tc.n, err)
		}
		if res.Algorithm != tc.want || res.Backend != backend.Heuristic {
			t.Errorf("%s/%d: used %s on %s, want %s on heuristic",
				tc.kind, tc.n, res.Algorithm, res.Backend, tc.want)
		}
		if err := res.Plan.Validate(identity(tc.n)); err != nil {
			t.Errorf("%s/%d: invalid plan: %v", tc.kind, tc.n, err)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	s := New(Config{})
	if _, err := s.Optimize(context.Background(), nil); err == nil {
		t.Error("nil query should error")
	}

	// Disconnected graphs carry no cross-product-free plan.
	var cat catalog.Catalog
	cat.Add(catalog.NewRelation("a", 100, 32))
	cat.Add(catalog.NewRelation("b", 100, 32))
	disc := &cost.Query{Cat: cat, G: graph.New(2)}
	if _, err := s.Optimize(context.Background(), disc); !errors.Is(err, dp.ErrDisconnected) {
		t.Errorf("disconnected graph: err = %v, want ErrDisconnected", err)
	}
	if snap := s.Counters().Snapshot(); snap.Errors == 0 {
		t.Error("error counter not incremented")
	}

	s.Close()
	if _, err := s.Optimize(context.Background(), genQuery(t, workload.KindChain, 4, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("after Close: err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestWarmCacheSpeedup is the acceptance check behind the throughput
// benchmark: repeated 20-relation queries must be served far faster from
// the cache than by re-optimizing. The benchmark reports the full ratio;
// here a conservative 5x floor keeps the test robust to CI noise (the
// typical gap is 50x+).
func TestWarmCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	s := New(Config{})
	defer s.Close()
	q := genQuery(t, workload.KindMB, 20, 42)

	cold, err := s.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	const warmRuns = 20
	start := time.Now()
	for i := 0; i < warmRuns; i++ {
		warm, err := s.Optimize(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.CacheHit {
			t.Fatal("warm request missed the cache")
		}
	}
	warmAvg := time.Since(start) / warmRuns
	t.Logf("cold=%v warm=%v (%.0fx)", cold.Elapsed, warmAvg, float64(cold.Elapsed)/float64(warmAvg))
	if cold.Elapsed < 5*warmAvg {
		t.Errorf("warm-cache speedup below 5x: cold=%v warm=%v", cold.Elapsed, warmAvg)
	}
}

func TestCountersExpvarString(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if _, err := s.Optimize(context.Background(), genQuery(t, workload.KindChain, 5, 1)); err != nil {
		t.Fatal(err)
	}
	got := s.Counters().String()
	if got == "" || got == "{}" {
		t.Errorf("expvar string empty: %q", got)
	}
}
