package service

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/workload"
)

func relEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func dpccpCost(t *testing.T, q *cost.Query) float64 {
	t.Helper()
	p, _, err := dp.DPCCP(dp.Input{Q: q, M: cost.DefaultModel()})
	if err != nil {
		t.Fatal(err)
	}
	return p.Cost
}

// TestRouterMatchesDPCCPSmall is the acceptance criterion: for graphs of
// at most 12 relations the adaptive router must return plans cost-identical
// to a direct DPCCP call.
func TestRouterMatchesDPCCPSmall(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	for _, kind := range []workload.Kind{
		workload.KindChain, workload.KindCycle, workload.KindStar,
		workload.KindClique, workload.KindSnowflake, workload.KindMB,
	} {
		for n := 4; n <= 12; n += 2 {
			q := genQuery(t, kind, n, int64(100*n))
			res, err := s.Optimize(q)
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, n, err)
			}
			if want := dpccpCost(t, q); !relEq(res.Plan.Cost, want) {
				t.Errorf("%s/%d: service cost %g, DPCCP cost %g", kind, n, res.Plan.Cost, want)
			}
			if res.Algorithm != core.AlgDPCCP {
				t.Errorf("%s/%d: routed to %s, want dpccp", kind, n, res.Algorithm)
			}
			if err := res.Plan.Validate(identity(n)); err != nil {
				t.Errorf("%s/%d: invalid plan: %v", kind, n, err)
			}
		}
	}
}

func TestRouteThresholds(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	tests := []struct {
		kind workload.Kind
		n    int
		want core.Algorithm
	}{
		{workload.KindChain, 8, core.AlgDPCCP},
		{workload.KindClique, 12, core.AlgDPCCP},
		{workload.KindMB, 20, core.AlgMPDPParallel},
		{workload.KindChain, 25, core.AlgMPDPParallel},
		{workload.KindClique, 16, core.AlgUnionDP}, // beyond the clique exact limit
		{workload.KindStar, 40, core.AlgIDP2},      // tree-shaped, beyond exact
		{workload.KindCycle, 40, core.AlgUnionDP},  // cyclic, beyond exact
	}
	for _, tc := range tests {
		q := genQuery(t, tc.kind, tc.n, 5)
		if alg, _ := s.Route(q); alg != tc.want {
			t.Errorf("%s/%d: routed to %s, want %s", tc.kind, tc.n, alg, tc.want)
		}
	}
}

func TestWarmCacheHitAndIsomorphicHit(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	q := genQuery(t, workload.KindMB, 11, 9)

	cold, err := s.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Error("first request reported a cache hit")
	}

	warm, err := s.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("repeat request missed the cache")
	}
	if !relEq(warm.Plan.Cost, cold.Plan.Cost) {
		t.Errorf("warm cost %g != cold cost %g", warm.Plan.Cost, cold.Plan.Cost)
	}

	// A renamed/reordered isomorphic query must hit too, with the plan
	// remapped into its own relation-index space.
	perm := rand.New(rand.NewSource(2)).Perm(q.N())
	pq := permuteQuery(q, perm)
	iso, err := s.Optimize(pq)
	if err != nil {
		t.Fatal(err)
	}
	if !iso.CacheHit {
		t.Error("isomorphic query missed the cache")
	}
	if !relEq(iso.Plan.Cost, cold.Plan.Cost) {
		t.Errorf("isomorphic hit cost %g != %g", iso.Plan.Cost, cold.Plan.Cost)
	}
	if err := iso.Plan.Validate(identity(pq.N())); err != nil {
		t.Errorf("remapped plan invalid: %v", err)
	}
	if want := dpccpCost(t, pq); !relEq(iso.Plan.Cost, want) {
		t.Errorf("remapped plan cost %g, direct optimization of permuted query %g", iso.Plan.Cost, want)
	}

	snap := s.Counters().Snapshot()
	if snap.Hits != 2 || snap.Misses != 1 {
		t.Errorf("counters: hits=%d misses=%d, want 2/1", snap.Hits, snap.Misses)
	}
}

func TestCoalescingSharesOneOptimization(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	q := genQuery(t, workload.KindMB, 16, 4)

	const callers = 8
	results := make([]*Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Optimize(q)
		}(i)
	}
	wg.Wait()

	var costc float64
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if costc == 0 {
			costc = results[i].Plan.Cost
		} else if !relEq(results[i].Plan.Cost, costc) {
			t.Errorf("caller %d: cost %g != %g", i, results[i].Plan.Cost, costc)
		}
	}
	snap := s.Counters().Snapshot()
	if snap.Misses < 1 {
		t.Error("expected at least one miss")
	}
	if got := snap.Hits + snap.Misses + snap.Coalesced; got != callers {
		t.Errorf("hits+misses+coalesced = %d, want %d", got, callers)
	}
	if optimized := snap.RouteDPCCP + snap.RouteMPDP + snap.RouteIDP2 + snap.RouteUnionDP; optimized >= callers {
		t.Errorf("ran %d optimizations for %d identical concurrent requests", optimized, callers)
	}
}

// TestConcurrentHammer drives a shared service from many goroutines with a
// mix of repeated and isomorphically-renamed queries; with -race this is
// the service's concurrency regression test.
func TestConcurrentHammer(t *testing.T) {
	s := New(Config{CacheShards: 4, CacheCapacity: 64})
	defer s.Close()

	kinds := []workload.Kind{workload.KindChain, workload.KindStar, workload.KindCycle, workload.KindMB}
	type job struct {
		q    *cost.Query
		cost float64
	}
	var jobs []job
	for i, kind := range kinds {
		for _, n := range []int{5, 8, 10} {
			q := genQuery(t, kind, n, int64(i*10+n))
			jobs = append(jobs, job{q, dpccpCost(t, q)})
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 40; i++ {
				j := jobs[rng.Intn(len(jobs))]
				q := j.q
				if rng.Intn(2) == 0 {
					q = permuteQuery(q, rng.Perm(q.N()))
				}
				res, err := s.Optimize(q)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !relEq(res.Plan.Cost, j.cost) {
					t.Errorf("worker %d: cost %g, want %g", w, res.Plan.Cost, j.cost)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	snap := s.Counters().Snapshot()
	if snap.Requests != workers*40 {
		t.Errorf("requests = %d, want %d", snap.Requests, workers*40)
	}
	if snap.Hits == 0 {
		t.Error("expected cache hits under repetition")
	}
}

func TestFallbackOnTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("timeout fallback burns the budget twice")
	}
	// Force the router to hand a 16-clique to sequential DPCCP with a
	// budget it cannot meet; the service must fall back to UnionDP.
	s := New(Config{SmallLimit: 16, Timeout: 150 * time.Millisecond, K: 8})
	defer s.Close()
	q := genQuery(t, workload.KindClique, 16, 2)
	res, err := s.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack {
		t.Error("expected heuristic fallback after exact timeout")
	}
	if res.Algorithm != core.AlgUnionDP {
		t.Errorf("fallback used %s, want uniondp-mpdp", res.Algorithm)
	}
	if snap := s.Counters().Snapshot(); snap.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", snap.Fallbacks)
	}
	if err := res.Plan.Validate(identity(16)); err != nil {
		t.Errorf("fallback plan invalid: %v", err)
	}
}

func TestLargeQueriesRouteToHeuristics(t *testing.T) {
	s := New(Config{K: 6})
	defer s.Close()
	for _, tc := range []struct {
		kind workload.Kind
		n    int
		want core.Algorithm
	}{
		{workload.KindSnowflake, 30, core.AlgIDP2},
		{workload.KindCycle, 30, core.AlgUnionDP},
	} {
		q := genQuery(t, tc.kind, tc.n, 1)
		res, err := s.Optimize(q)
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.kind, tc.n, err)
		}
		if res.Algorithm != tc.want {
			t.Errorf("%s/%d: used %s, want %s", tc.kind, tc.n, res.Algorithm, tc.want)
		}
		if err := res.Plan.Validate(identity(tc.n)); err != nil {
			t.Errorf("%s/%d: invalid plan: %v", tc.kind, tc.n, err)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	s := New(Config{})
	if _, err := s.Optimize(nil); err == nil {
		t.Error("nil query should error")
	}

	// Disconnected graphs carry no cross-product-free plan.
	var cat catalog.Catalog
	cat.Add(catalog.NewRelation("a", 100, 32))
	cat.Add(catalog.NewRelation("b", 100, 32))
	disc := &cost.Query{Cat: cat, G: graph.New(2)}
	if _, err := s.Optimize(disc); !errors.Is(err, dp.ErrDisconnected) {
		t.Errorf("disconnected graph: err = %v, want ErrDisconnected", err)
	}
	if snap := s.Counters().Snapshot(); snap.Errors == 0 {
		t.Error("error counter not incremented")
	}

	s.Close()
	if _, err := s.Optimize(genQuery(t, workload.KindChain, 4, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("after Close: err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestWarmCacheSpeedup is the acceptance check behind the throughput
// benchmark: repeated 20-relation queries must be served far faster from
// the cache than by re-optimizing. The benchmark reports the full ratio;
// here a conservative 5x floor keeps the test robust to CI noise (the
// typical gap is 50x+).
func TestWarmCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	s := New(Config{})
	defer s.Close()
	q := genQuery(t, workload.KindMB, 20, 42)

	cold, err := s.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	const warmRuns = 20
	start := time.Now()
	for i := 0; i < warmRuns; i++ {
		warm, err := s.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.CacheHit {
			t.Fatal("warm request missed the cache")
		}
	}
	warmAvg := time.Since(start) / warmRuns
	t.Logf("cold=%v warm=%v (%.0fx)", cold.Elapsed, warmAvg, float64(cold.Elapsed)/float64(warmAvg))
	if cold.Elapsed < 5*warmAvg {
		t.Errorf("warm-cache speedup below 5x: cold=%v warm=%v", cold.Elapsed, warmAvg)
	}
}

func TestCountersExpvarString(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if _, err := s.Optimize(genQuery(t, workload.KindChain, 5, 1)); err != nil {
		t.Fatal(err)
	}
	got := s.Counters().String()
	if got == "" || got == "{}" {
		t.Errorf("expvar string empty: %q", got)
	}
}
