package service

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/workload"
)

// permuteQuery relabels q's relations through perm (perm[old] = new),
// producing a structurally identical query with renamed/reordered
// relations — the cache should treat both as the same query.
func permuteQuery(q *cost.Query, perm []int) *cost.Query {
	return workload.PermuteQuery(q, perm)
}

func randPerm(n int, rng *rand.Rand) []int {
	return rng.Perm(n)
}

func genQuery(t testing.TB, kind workload.Kind, n int, seed int64) *cost.Query {
	t.Helper()
	q, err := workload.Generate(kind, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestFingerprintIsomorphismInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, kind := range []workload.Kind{
		workload.KindChain, workload.KindCycle, workload.KindStar,
		workload.KindClique, workload.KindSnowflake, workload.KindMB,
	} {
		for _, n := range []int{4, 9, 14} {
			q := genQuery(t, kind, n, int64(n))
			base := FingerprintQuery(q)
			if len(base.Perm) != n {
				t.Fatalf("%s/%d: perm length %d", kind, n, len(base.Perm))
			}
			for trial := 0; trial < 5; trial++ {
				perm := randPerm(n, rng)
				fp := FingerprintQuery(permuteQuery(q, perm))
				if fp.Key != base.Key {
					t.Errorf("%s/%d trial %d: isomorphic query changed fingerprint", kind, n, trial)
				}
			}
		}
	}
}

func TestFingerprintDistinguishesStatistics(t *testing.T) {
	q := genQuery(t, workload.KindStar, 8, 1)
	base := FingerprintQuery(q).Key

	bigger := permuteQuery(q, identity(8))
	bigger.Cat.Rels[3].Rows *= 2
	if FingerprintQuery(bigger).Key == base {
		t.Error("changed cardinality kept the same fingerprint")
	}

	// Every statistic the cost model reads must flow into the key: a query
	// differing only in pages, width or index availability can cost the
	// same join tree differently, so it must not share a cache entry.
	wider := permuteQuery(q, identity(8))
	wider.Cat.Rels[2].Width *= 2
	if FingerprintQuery(wider).Key == base {
		t.Error("changed tuple width kept the same fingerprint")
	}
	paged := permuteQuery(q, identity(8))
	paged.Cat.Rels[2].Pages *= 2
	if FingerprintQuery(paged).Key == base {
		t.Error("changed page count kept the same fingerprint")
	}
	indexed := permuteQuery(q, identity(8))
	indexed.Cat.Rels[2].HasPKIndex = !indexed.Cat.Rels[2].HasPKIndex
	if FingerprintQuery(indexed).Key == base {
		t.Error("changed index availability kept the same fingerprint")
	}

	resel := permuteQuery(q, identity(8))
	resel.G = graph.New(8)
	for i, e := range q.G.Edges {
		sel := e.Sel
		if i == 0 {
			sel *= 0.5
		}
		resel.G.AddEdge(e.A, e.B, sel)
	}
	if FingerprintQuery(resel).Key == base {
		t.Error("changed selectivity kept the same fingerprint")
	}
}

func TestFingerprintDistinguishesShape(t *testing.T) {
	// Same vertex statistics, different topology.
	chain := genQuery(t, workload.KindChain, 10, 3)
	cycle := genQuery(t, workload.KindCycle, 10, 3)
	if FingerprintQuery(chain).Key == FingerprintQuery(cycle).Key {
		t.Error("chain and cycle share a fingerprint")
	}
}

// TestFingerprintSymmetricStar exercises the individualization path: all
// dimensions share identical statistics, so colour refinement alone cannot
// order them.
func TestFingerprintSymmetricStar(t *testing.T) {
	build := func(order []int) *cost.Query {
		var cat catalog.Catalog
		for i := 0; i < 7; i++ {
			name := "fact"
			rows := 1e6
			if i != order[0] {
				name, rows = "dim", 1000
			}
			cat.Add(catalog.NewRelation(name, rows, 64))
		}
		g := graph.New(7)
		for _, i := range order[1:] {
			g.AddEdge(order[0], i, 1.0/1000)
		}
		return &cost.Query{Cat: cat, G: g}
	}
	a := build([]int{0, 1, 2, 3, 4, 5, 6})
	b := build([]int{3, 6, 0, 5, 1, 2, 4})
	if FingerprintQuery(a).Key != FingerprintQuery(b).Key {
		t.Error("symmetric stars with permuted labels got different fingerprints")
	}
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
