package service

import (
	"testing"

	"repro/internal/backend"
)

// TestBackendSlotCoversRegistry pins the counter-array capacity to the
// backend registry: adding a backend to backend.IDs() without bumping
// numBackends would otherwise silently drop its counters (slot returns
// nil rather than panicking, by design).
func TestBackendSlotCoversRegistry(t *testing.T) {
	ids := backend.IDs()
	if len(ids) != numBackends {
		t.Fatalf("numBackends = %d but backend.IDs() has %d entries — extend the counter array", numBackends, len(ids))
	}
	var c Counters
	for _, id := range ids {
		if c.slot(id) == nil {
			t.Errorf("backend %s has no counter slot", id)
		}
	}
	if c.slot(backend.ID("unknown")) != nil {
		t.Error("unknown backend ID should have no slot")
	}
	// Every registered backend must appear in a snapshot, even at zero.
	snap := c.Snapshot()
	for _, id := range ids {
		if _, ok := snap.Backends[string(id)]; !ok {
			t.Errorf("snapshot missing backend %s", id)
		}
	}
}
