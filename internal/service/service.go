package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Config tunes a Service. The zero value selects the defaults listed on
// each field, which follow the regimes of the paper's evaluation: exact DP
// for small graphs, CPU-parallel MPDP for medium ones, GPU-MPDP for large
// trees and sparse cyclic graphs up to the bitset width, IDP2/UnionDP
// beyond.
type Config struct {
	// CacheShards is the plan-cache shard count (0: 16; rounded up to a
	// power of two).
	CacheShards int
	// CacheCapacity is the total number of cached plans (0: 4096).
	CacheCapacity int
	// SubCacheCapacity bounds the subgraph memo: the number of cached
	// connected-subquery winners harvested from completed DP tables and
	// used to warm-start later enumerations (0: 4096). DP tables with more
	// interior sets than the capacity are not harvested — they would only
	// churn the memo.
	SubCacheCapacity int
	// Workers is the optimization worker-pool size (0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-request queue; enqueueing blocks when
	// full, applying backpressure to callers (0: 4 * Workers).
	QueueDepth int
	// Threads is passed to CPU-parallel optimizers (0: all cores).
	Threads int
	// Crossover sets the backend-crossover thresholds of the router (nil:
	// backend.DefaultCrossover(), calibrated from the GPU device model;
	// load deployment overrides with backend.LoadCrossover, which
	// validates the ladder). Programmatic values are taken as-is: the
	// router is a waterfall (small → cpu-parallel → gpu → heuristic), so
	// an inverted ladder is well-defined and simply leaves the shadowed
	// band empty (e.g. GPULimit < CPUParallelLimit disables the GPU
	// band).
	Crossover *backend.Crossover
	// SmallLimit, when non-zero, overrides Crossover.SmallLimit (kept for
	// configuration compatibility with the pre-backend router).
	SmallLimit int
	// ExactLimit, when non-zero, overrides Crossover.CPUParallelLimit.
	ExactLimit int
	// CliqueExactLimit, when non-zero, overrides Crossover.CliqueCPULimit.
	CliqueExactLimit int
	// GPU configures the simulated GPU backend: device model, device
	// count, and the request-coalescing batch window (zero value: 2 ×
	// GTX 1080 with a 200µs window).
	GPU backend.GPUConfig
	// K is the sub-problem bound for IDP2/UnionDP (0: 15).
	K int
	// Admission tunes admission control: queue-wait shedding, deadline-
	// aware shedding and the node-level rate cap. The zero value keeps the
	// legacy blocking backpressure.
	Admission Admission
	// Slow configures the slow-request ring surfaced at /v1/debug/slow and
	// the JSON-lines slow-query log. The zero value keeps a default-sized
	// ring with threshold logging disabled.
	Slow obs.SlowConfig
	// Timeout is the per-query optimization budget. An exact run that
	// exceeds it falls back to the shape's heuristic with a fresh budget
	// (0: 30s).
	Timeout time.Duration
	// Model is the cost model (nil: cost.DefaultModel()).
	Model *cost.Model
}

func (c Config) withDefaults() Config {
	if c.CacheShards == 0 {
		c.CacheShards = 16
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4096
	}
	if c.SubCacheCapacity == 0 {
		c.SubCacheCapacity = 4096
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Model == nil {
		c.Model = cost.DefaultModel()
	}
	c.Admission = c.Admission.withDefaults()
	return c
}

// crossover resolves the router thresholds: the Crossover field (or the
// calibrated defaults), with the legacy per-field overrides applied on
// top.
func (c Config) crossover() backend.Crossover {
	x := backend.DefaultCrossover()
	if c.Crossover != nil {
		x = c.Crossover.WithDefaults()
	}
	if c.SmallLimit != 0 {
		x.SmallLimit = c.SmallLimit
	}
	if c.ExactLimit != 0 {
		x.CPUParallelLimit = c.ExactLimit
	}
	if c.CliqueExactLimit != 0 {
		x.CliqueCPULimit = c.CliqueExactLimit
	}
	return x
}

// Result is one service answer. Plan is always a private copy in the
// caller's relation-index space; callers may mutate it freely.
type Result struct {
	Plan      *plan.Node
	Algorithm core.Algorithm
	// Backend identifies the substrate that produced the plan (cpu-seq,
	// cpu-parallel, gpu, heuristic); cache hits report the backend of the
	// original optimization.
	Backend backend.ID
	Shape   Shape
	Stats   dp.Stats
	// GPU carries the multi-device work model when Backend == gpu. It is
	// shared with the cache entry: treat as read-only.
	GPU *gpusim.MultiStats
	// CacheHit is true when the plan came from the cache without waiting
	// on any optimization; Coalesced when the request piggybacked on an
	// identical in-flight optimization.
	CacheHit  bool
	Coalesced bool
	// FellBack is true when the exact route exceeded the time budget and
	// the plan came from the heuristic fallback.
	FellBack bool
	Elapsed  time.Duration
	// Key is the canonical fingerprint the request was cached under.
	Key string
	// Epoch is the catalog stats epoch the served plan was produced under;
	// Stats.WarmSeeded and Stats.ConnectedSets describe the warm start (how
	// many connected sets the subgraph memo seeded vs how many the
	// enumeration still walked).
	Epoch uint64
}

// ErrClosed is returned by Optimize after Close.
var ErrClosed = errors.New("service: closed")

// ErrOverloaded is returned when admission control sheds a request: the
// node-level rate cap is exhausted, the worker queue stayed full past
// Admission.MaxQueueWait, or the caller's deadline cannot outlive the
// estimated queue delay. It is a retryable condition — the HTTP surface
// maps it to 503 with a Retry-After hint.
var ErrOverloaded = errors.New("service: overloaded")

// flight is one in-progress optimization that concurrent identical
// requests coalesce onto. It owns a cancellable context detached from any
// single caller: each caller holds a waiter reference, and when the last
// waiter abandons the flight (its own context cancelled) the flight's
// context is cancelled too, aborting the in-flight enumeration.
type flight struct {
	done  chan struct{}
	entry *cached // canonical-space result, nil on error
	err   error

	ctx     context.Context
	cancel  context.CancelCauseFunc
	waiters int // guarded by Service.mu
}

// request is one unit of work for the pool. tr is the initiating caller's
// trace: the worker records the phases it owns (queue-wait, route,
// enumerate, materialize) into it; coalesced followers see only their own
// coalesce_wait. arrived is when the caller entered Optimize (for shed
// latency accounting), enqueuedAt when the request entered the worker queue
// (for queue-wait accounting).
type request struct {
	q  *cost.Query
	fp Fingerprint
	fl *flight

	// sfp is the stats-blind structural fingerprint (computed once by the
	// initiating caller on the miss path); stale, when non-nil, is the plan
	// of a structural twin from an older stats epoch, already transplanted
	// into this query's index space and awaiting lazy re-costing.
	sfp   Fingerprint
	stale *plan.Node

	tr         *obs.Trace
	arrived    time.Time
	enqueuedAt time.Time
}

// Service is a concurrent, thread-safe optimizer front-end; see the
// package comment. Create with New, release with Close.
type Service struct {
	cfg      Config
	xover    backend.Crossover
	backends *backend.Set
	cache    *Cache
	submemo  *SubMemo
	counters Counters
	slog     *obs.SlowLog
	// limiter is the node-level admission rate cap (nil: uncapped).
	limiter *TokenBucket

	// structIdx maps stats-blind structural fingerprints to the exact key
	// of the most recent entry with that structure — the secondary index
	// the stale-twin re-cost path probes after a stats-epoch bump.
	structMu  sync.Mutex
	structIdx map[string]string

	mu       sync.Mutex
	inflight map[string]*flight

	// harvestCh feeds completed DP tables to the background harvester that
	// fingerprints their connected sets into the subgraph memo; pending and
	// harvestCond let tests and benchmarks wait for quiescence.
	harvestCh      chan harvestJob
	harvestOnce    sync.Once
	harvestWG      sync.WaitGroup
	harvestMu      sync.Mutex
	harvestCond    *sync.Cond
	harvestPending int

	reqs chan request
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// harvestJob is one completed DP table queued for memo harvest. The query
// is a private deep copy (the caller's query must not be retained) and the
// table's ownership transfers to the harvester.
type harvestJob struct {
	q      *cost.Query
	tab    *plan.Table
	origin string
	epoch  uint64
}

// New starts a service, its execution backends and its worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		xover:     cfg.crossover(),
		backends:  backend.NewSet(cfg.GPU),
		cache:     NewCache(cfg.CacheShards, cfg.CacheCapacity),
		submemo:   NewSubMemo(cfg.SubCacheCapacity),
		slog:      obs.NewSlowLog(cfg.Slow),
		structIdx: make(map[string]string),
		inflight:  make(map[string]*flight),
		harvestCh: make(chan harvestJob, 16),
		reqs:      make(chan request, cfg.QueueDepth),
		quit:      make(chan struct{}),
	}
	s.counters.statsEpoch.Store(1)
	s.harvestCond = sync.NewCond(&s.harvestMu)
	if cfg.Admission.RatePerSec > 0 {
		s.limiter = NewTokenBucket(cfg.Admission.RatePerSec, cfg.Admission.Burst)
	}
	s.harvestWG.Add(1)
	go s.harvester()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the worker pool, then the backends: queued-but-unstarted
// requests are abandoned (their callers return ErrClosed) and Close waits
// only for optimizations already running on a worker to finish. The
// backends close after the workers, so no in-flight optimization can race
// the GPU batcher's shutdown.
func (s *Service) Close() {
	s.once.Do(func() { close(s.quit) })
	s.wg.Wait()
	// The workers are done, so no further harvests can be enqueued: drain
	// the harvester before the backends go away.
	s.harvestOnce.Do(func() { close(s.harvestCh) })
	s.harvestWG.Wait()
	s.backends.Close()
}

// Counters returns the live instrumentation (expvar.Var compatible).
func (s *Service) Counters() *Counters { return &s.counters }

// WriteMetrics emits the service's live metrics — counters, gauges and
// latency histograms — in Prometheus text exposition format.
func (s *Service) WriteMetrics(w io.Writer) error {
	mw := obs.NewMetricsWriter(w)
	s.counters.writeMetrics(mw)
	mw.Gauge("mpdp_cache_plans", "Plans resident in the cache.", nil, float64(s.cache.Len()))
	mw.Gauge("mpdp_cache_sub_entries", "Connected-subquery winners resident in the subgraph memo.", nil, float64(s.submemo.Len()))
	return mw.Flush()
}

// CacheLen returns the number of cached plans.
func (s *Service) CacheLen() int { return s.cache.Len() }

// SubCacheLen returns the number of subgraph-memo entries.
func (s *Service) SubCacheLen() int { return s.submemo.Len() }

// StatsEpoch returns the current catalog stats epoch (starts at 1).
func (s *Service) StatsEpoch() uint64 { return s.counters.statsEpoch.Load() }

// BumpStatsEpoch advances the catalog stats epoch and returns the old and
// new values. Nothing is flushed: cached entries keep serving exact-key
// hits (their keys embed the statistics they were costed under, so such
// hits remain sound), while queries carrying the *new* statistics miss the
// exact key, locate their structural twin through the stats-blind index,
// and lazily re-cost its join order against a fresh enumeration. Call it
// whenever relation statistics or selectivities change.
func (s *Service) BumpStatsEpoch() (old, cur uint64) {
	cur = s.counters.statsEpoch.Add(1)
	s.counters.epochBumps.Add(1)
	return cur - 1, cur
}

// Route reports which (algorithm, backend) pair the adaptive router would
// pick for q, given its size, detected shape and edge density.
func (s *Service) Route(q *cost.Query) (core.Algorithm, backend.ID, Shape) {
	shape := DetectShape(q.G)
	alg, bid := s.route(q.N(), shape, len(q.G.Edges))
	return alg, bid, shape
}

// Crossover returns the resolved router thresholds.
func (s *Service) Crossover() backend.Crossover { return s.xover }

// route walks the crossover ladder (see backend.Crossover): sequential
// DPCCP for small graphs, CPU-parallel MPDP to the paper's fall-back
// limit, then — where the pre-GPU router gave up and went heuristic —
// GPU-MPDP with fused pruning and CCC for large trees and sparse cyclic
// graphs up to the bitset width. Cliques and dense general graphs (whose
// connected-set space explodes the same way) cap the exact bands early,
// and everything beyond goes to the shape's heuristic.
func (s *Service) route(n int, shape Shape, edges int) (core.Algorithm, backend.ID) {
	x := &s.xover
	if n <= x.SmallLimit && n <= 64 {
		return core.AlgDPCCP, backend.CPUSeq
	}
	// Only literal cliques shrink the CPU-parallel band (its pre-backend
	// contract); the density test additionally caps the new GPU band,
	// where a dense general graph's connected-set lattice explodes like a
	// clique's. Dense graphs of 17..25 relations therefore still get the
	// exact CPU-parallel route they always had.
	cpuLimit := x.CPUParallelLimit
	if shape == ShapeClique && x.CliqueCPULimit < cpuLimit {
		cpuLimit = x.CliqueCPULimit
	}
	if n <= cpuLimit && n <= 64 {
		return core.AlgMPDPParallel, backend.CPUParallel
	}
	gpuLimit := x.GPULimit
	if shape == ShapeClique || shape == ShapeStar ||
		(shape == ShapeGeneral && float64(edges) > x.DenseEdgeFactor*float64(n)) {
		// Cliques and dense graphs explode the candidate-pair space;
		// stars explode the *lattice* instead — a hub of degree d has
		// 2^d connected supersets, so a star past ~26 relations is
		// mathematically guaranteed to overflow the memo cap before the
		// GPU run finishes enumerating. All three skip to the clique cap
		// (stars ≤ the CPU band never reach here, so in practice stars
		// route heuristically beyond 25 — the pre-backend behaviour).
		gpuLimit = x.GPUCliqueLimit
	}
	if n <= gpuLimit && n <= 64 {
		return core.AlgMPDPGPU, backend.GPU
	}
	if shape.IsTree() {
		return core.AlgIDP2, backend.Heuristic
	}
	return core.AlgUnionDP, backend.Heuristic
}

// Optimize plans q, serving from the sharded plan cache when an
// isomorphic-with-identical-statistics query was planned before, coalescing
// onto an identical in-flight request otherwise, and finally optimizing on
// the worker pool with the algorithm the router picks for q's size and
// shape. It is safe for concurrent use.
//
// Cancelling ctx makes this call return promptly with the context's error.
// The underlying optimization keeps running only while some coalesced
// caller still waits on it; when the last waiter cancels, the enumeration
// itself is aborted mid-lattice and the flight completes with the
// cancellation error. A nil ctx means context.Background().
func (s *Service) Optimize(ctx context.Context, q *cost.Query) (*Result, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if q == nil || q.G == nil || q.N() == 0 {
		s.counters.errors.Add(1)
		return nil, fmt.Errorf("service: empty query")
	}
	s.counters.inflight.Add(1)
	res, err := s.optimize(ctx, q, start)
	s.counters.inflight.Add(-1)
	if !errors.Is(err, ErrClosed) {
		s.observeSlow(obs.FromContext(ctx), q, res, start, err)
	}
	return res, err
}

// observeSlow feeds one finished request into the slow-request ring and the
// slow-query log.
func (s *Service) observeSlow(tr *obs.Trace, q *cost.Query, res *Result, start time.Time, err error) {
	e := obs.SlowEntry{
		RequestID: tr.RequestID(),
		WallUS:    float64(time.Since(start).Nanoseconds()) / 1e3,
		Relations: q.N(),
		Spans:     tr.Spans(),
	}
	if res != nil {
		e.Shape = string(res.Shape)
		e.Algorithm = string(res.Algorithm)
		e.Backend = string(res.Backend)
		e.CacheHit = res.CacheHit
	}
	if err != nil {
		e.Error = err.Error()
	}
	s.slog.Observe(e)
}

// SlowLog returns the service's slow-request ring (never nil).
func (s *Service) SlowLog() *obs.SlowLog { return s.slog }

// optimize is Optimize's body; the wrapper owns validation, the in-flight
// gauge and the slow-log observation.
func (s *Service) optimize(ctx context.Context, q *cost.Query, start time.Time) (*Result, error) {
	tr := obs.FromContext(ctx)
	s.counters.requests.Add(1)
	if s.limiter != nil {
		if ok, _ := s.limiter.Allow(time.Now(), 1); !ok {
			s.counters.observeShed(time.Since(start))
			return nil, ErrOverloaded
		}
	}

	probeStart := time.Now()
	fp := FingerprintQuery(q)
	inv := invert(fp.Perm)

	var fl *flight
	var joined, probed bool
	for {
		e, ok := s.cache.Get(fp.Key)
		if !probed {
			// The probe span covers fingerprinting plus the first cache
			// lookup; retries after a dying flight are coalesce territory.
			tr.ObserveSince(obs.PhaseCacheProbe, probeStart)
			probed = true
		}
		if ok {
			e.hits.Add(1)
			done := tr.StartSpan(obs.PhaseMaterialize)
			res := resultFrom(e, inv, 0, true, false)
			done()
			res.Elapsed = time.Since(start)
			s.counters.observeHit(res.Elapsed, e.backend)
			return res, nil
		}

		s.mu.Lock()
		fl, joined = s.inflight[fp.Key]
		if joined && context.Cause(fl.ctx) != nil {
			// The flight is dying: its last waiter already cancelled it.
			// Joining would inherit someone else's cancellation, so wait for
			// the dying flight to leave the map and retry.
			s.mu.Unlock()
			select {
			case <-fl.done:
				continue
			case <-ctx.Done():
				s.counters.canceled.Add(1)
				return nil, context.Cause(ctx)
			case <-s.quit:
				return nil, ErrClosed
			}
		}
		if !joined {
			fl = &flight{done: make(chan struct{})}
			// The flight's context is rooted at Background, not at this
			// caller's ctx: coalesced followers must be able to keep the run
			// alive after the initiating caller walks away.
			//mpdpvet:ignore ctxfirst flight detach: coalesced followers outlive the initiating caller
			fl.ctx, fl.cancel = context.WithCancelCause(context.Background())
			s.inflight[fp.Key] = fl
		}
		fl.waiters++
		s.mu.Unlock()
		break
	}

	if !joined {
		// The initiator pays for the structural probe: on a miss after a
		// stats-epoch bump, the stats-blind index can locate a structural
		// twin whose join order is worth re-validating under the new
		// statistics alongside the fresh (warm-started) enumeration.
		sfp := StructuralFingerprint(q)
		stale := s.staleCandidate(q, fp, sfp)
		if err := s.enqueue(ctx, request{q: q, fp: fp, sfp: sfp, stale: stale, fl: fl, tr: tr, arrived: start}); err != nil {
			return nil, err
		}
	}

	waitStart := time.Now()
	select {
	case <-fl.done:
	case <-ctx.Done():
		s.leave(ctx, fl)
		s.counters.canceled.Add(1)
		return nil, context.Cause(ctx)
	case <-s.quit:
		return nil, ErrClosed
	}
	if joined {
		tr.ObserveSince(obs.PhaseCoalesceWait, waitStart)
	}
	if fl.err != nil {
		switch {
		case errors.Is(fl.err, context.Canceled), errors.Is(fl.err, context.DeadlineExceeded):
			s.counters.canceled.Add(1)
		case errors.Is(fl.err, ErrOverloaded):
			// A coalesced follower of a flight whose initiator was shed.
			s.counters.observeShed(time.Since(start))
		default:
			s.counters.errors.Add(1)
		}
		return nil, fl.err
	}
	done := tr.StartSpan(obs.PhaseMaterialize)
	res := resultFrom(fl.entry, inv, 0, false, joined)
	done()
	res.Elapsed = time.Since(start)
	if joined {
		s.counters.coalesced.Add(1)
	} else {
		s.counters.observeMiss(res.Elapsed, fl.entry.backend)
	}
	return res, nil
}

// enqueue submits a freshly created flight's request to the worker queue,
// applying admission control on the way in. A non-nil return is what
// Optimize should return: ErrOverloaded when the request was shed (the
// flight is abandoned, waking any coalesced followers with the same error),
// the context's cause when the initiator cancelled, ErrClosed on shutdown.
func (s *Service) enqueue(ctx context.Context, r request) error {
	// Deadline-aware shed: a caller whose deadline cannot outlive the
	// estimated queue delay would time out while queued — rejecting now
	// costs microseconds instead of a wasted queue slot and worker run.
	if err := s.admit(ctx); err != nil {
		s.counters.observeShed(time.Since(r.arrived))
		s.abandon(r.fp.Key, r.fl, err)
		return err
	}
	r.enqueuedAt = time.Now()
	if s.cfg.Admission.MaxQueueWait < 0 {
		// Never wait: shed unless a slot is free right now.
		select {
		case s.reqs <- r:
			s.counters.observeQueued()
			return nil
		default:
			s.counters.observeShed(time.Since(r.arrived))
			s.abandon(r.fp.Key, r.fl, ErrOverloaded)
			return ErrOverloaded
		}
	}
	var shedC <-chan time.Time
	if w := s.cfg.Admission.MaxQueueWait; w > 0 {
		t := time.NewTimer(w)
		defer t.Stop()
		shedC = t.C
	}
	select {
	case s.reqs <- r:
		s.counters.observeQueued()
		return nil
	case <-shedC:
		// The queue stayed full for the whole wait budget; one last
		// non-blocking try resolves the race where the timer and a freed
		// slot become ready together.
		select {
		case s.reqs <- r:
			s.counters.observeQueued()
			return nil
		default:
		}
		s.counters.observeShed(time.Since(r.arrived))
		s.abandon(r.fp.Key, r.fl, ErrOverloaded)
		return ErrOverloaded
	case <-ctx.Done():
		// The initiator gives up while the queue is full, but followers
		// may already be coalesced onto this flight and they cannot
		// enqueue it themselves. Hand the enqueue off: it completes for
		// the followers, is shed when the queue stays full past the wait
		// budget, or dies with the flight context once the last of them
		// leaves too.
		go func(r request) {
			var shedC <-chan time.Time
			if w := s.cfg.Admission.MaxQueueWait; w > 0 {
				t := time.NewTimer(w)
				defer t.Stop()
				shedC = t.C
			}
			select {
			case s.reqs <- r:
				s.counters.observeQueued()
			case <-shedC:
				r.fl.err = ErrOverloaded
				r.fl.cancel(ErrOverloaded)
				s.finishFlight(r)
			case <-r.fl.ctx.Done():
				r.fl.err = context.Cause(r.fl.ctx)
				s.finishFlight(r)
			case <-s.quit:
				r.fl.err = ErrClosed
				s.finishFlight(r)
			}
		}(r)
		s.leave(ctx, r.fl)
		s.counters.canceled.Add(1)
		return context.Cause(ctx)
	case <-s.quit:
		s.abandon(r.fp.Key, r.fl, ErrClosed)
		return ErrClosed
	}
}

// leave drops one waiter reference from a flight whose caller cancelled;
// the last leaver aborts the in-flight optimization. The cancel happens
// under s.mu — the same lock the join path holds while checking
// context.Cause(fl.ctx) — so a joiner can never slip in between "waiters
// hit zero" and "flight cancelled" and inherit a stranger's cancellation.
func (s *Service) leave(ctx context.Context, fl *flight) {
	s.mu.Lock()
	fl.waiters--
	if fl.waiters == 0 {
		fl.cancel(context.Cause(ctx))
	}
	s.mu.Unlock()
}

// abandon removes a flight that was never enqueued and unblocks any
// followers that joined it.
func (s *Service) abandon(key string, fl *flight, cause error) {
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	fl.err = cause
	fl.cancel(cause)
	close(fl.done)
}

func resultFrom(e *cached, inv []int, elapsed time.Duration, hit, coalesced bool) *Result {
	return &Result{
		Plan:      remapPlan(e.plan, inv),
		Algorithm: e.alg,
		Backend:   e.backend,
		Shape:     e.shape,
		Stats:     e.stats,
		GPU:       e.gpu,
		CacheHit:  hit,
		Coalesced: coalesced,
		FellBack:  e.fellBack,
		Elapsed:   elapsed,
		Key:       e.key,
		Epoch:     e.epoch,
	}
}

// staleCandidate probes the structural index for a twin of q cached under
// an older stats epoch and, when found, transplants its join order into q's
// index space through the composed structural-canonical correspondence.
// The returned plan still carries the twin's costs — the serve path re-costs
// it under current statistics before comparing it with the enumeration.
func (s *Service) staleCandidate(q *cost.Query, fp, sfp Fingerprint) *plan.Node {
	s.structMu.Lock()
	twinKey, ok := s.structIdx[sfp.Key]
	s.structMu.Unlock()
	if !ok || twinKey == fp.Key {
		return nil
	}
	e, hit := s.cache.Get(twinKey)
	if !hit || e.epoch == s.StatsEpoch() || len(e.structOf) != q.N() {
		return nil
	}
	s.counters.staleProbes.Add(1)
	// Compose: query vertex v → structural canonical sfp.Perm[v] → twin's
	// exact canonical e.structOf[...]; invert to remap the twin's
	// canonical-space plan directly into q's index space.
	m := make([]int, q.N())
	for v := 0; v < q.N(); v++ {
		m[e.structOf[sfp.Perm[v]]] = v
	}
	return remapPlan(e.plan, m)
}

func (s *Service) worker() {
	defer s.wg.Done()
	// Each worker owns an arena for the exact optimizers' plan nodes: the
	// tree is dead once serve has copied it into the cache (remapPlan), so
	// the arena is rewound per request and reaches a steady state where
	// cold-path plan materialization performs no heap allocation.
	arena := plan.NewArena()
	for {
		// Check quit first: a closed quit and a non-empty queue are both
		// ready, and a plain select would pick randomly — draining
		// abandoned requests nobody is waiting for.
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case r := <-s.reqs:
			s.counters.queueDepth.Add(-1)
			s.serve(r, arena)
		}
	}
}

// serve runs one optimization, publishes the canonical-space plan to the
// cache and completes the flight. The optimizer's plan tree lives in the
// worker's arena; only the remapped copy survives this call.
func (s *Service) serve(r request, arena *plan.Arena) {
	defer r.fl.cancel(nil) // release the flight context's resources
	if !r.enqueuedAt.IsZero() {
		s.counters.observeQueueWait(time.Since(r.enqueuedAt))
		r.tr.ObserveSince(obs.PhaseQueueWait, r.enqueuedAt)
	}
	if err := context.Cause(r.fl.ctx); err != nil {
		// Every waiter cancelled while the request sat in the queue: do not
		// burn a worker on a result nobody wants.
		r.fl.err = err
		s.finishFlight(r)
		return
	}
	routeDone := r.tr.StartSpan(obs.PhaseRoute)
	shape := DetectShape(r.q.G)
	alg, bid := s.route(r.q.N(), shape, len(r.q.G.Edges))
	s.counters.observeRoute(alg, bid)
	routeDone()

	arena.Reset()
	enumDone := r.tr.StartSpan(obs.PhaseEnumerate)
	res, usedAlg, usedBid, err := s.optimizeWithFallback(r.fl.ctx, r.q, r.fp.Key, alg, bid, shape, arena)
	enumDone()
	if err == nil {
		s.counters.observeServed(usedBid)
		if r.stale != nil {
			// Lazy re-validation of the structural twin found on the probe:
			// re-cost its join order under current statistics and keep it
			// when it matches or beats what the optimizer produced (it can
			// genuinely win over a heuristic fallback).
			s.counters.recosted.Add(1)
			if cand := recostPlan(r.q, s.cfg.Model, r.stale); cand.Cost <= res.Plan.Cost || costClose(cand.Cost, res.Plan.Cost) {
				s.counters.recostWins.Add(1)
				res.Plan = cand
			}
		}
		// The GPU's modeled device time decomposes into Sim spans: launch,
		// transfer, per-kernel cycles, memory — the paper's per-level cost
		// breakdown, per request.
		res.GPU.TraceInto(r.tr, s.cfg.GPU.DeviceModel())
		matDone := r.tr.StartSpan(obs.PhaseMaterialize)
		n := r.q.N()
		structOf := make([]int, n)
		for v := 0; v < n; v++ {
			structOf[r.sfp.Perm[v]] = r.fp.Perm[v]
		}
		r.fl.entry = &cached{
			key:       r.fp.Key,
			plan:      remapPlan(res.Plan, r.fp.Perm),
			stats:     res.Stats,
			alg:       usedAlg,
			backend:   usedBid,
			shape:     shape,
			gpu:       res.GPU,
			fellBack:  usedAlg != alg,
			epoch:     s.StatsEpoch(),
			structKey: r.sfp.Key,
			structOf:  structOf,
		}
		s.cache.Put(r.fl.entry)
		s.structMu.Lock()
		s.structIdx[r.sfp.Key] = r.fp.Key
		s.structMu.Unlock()
		matDone()
	} else {
		r.fl.err = err
	}
	s.finishFlight(r)
}

// costClose reports whether two plan costs agree to relative 1e-9 (the
// tie tolerance the equivalence suite uses).
func costClose(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > a {
		scale = b
	}
	return d <= 1e-9*scale
}

// finishFlight publishes the flight's outcome and wakes every waiter.
func (s *Service) finishFlight(r request) {
	s.mu.Lock()
	delete(s.inflight, r.fp.Key)
	s.mu.Unlock()
	close(r.fl.done)
}

// optimizeWithFallback runs the routed algorithm on the routed backend
// under the time budget; when an exact route times out it retries once
// with the shape's heuristic under a fresh budget (the adaptive part of
// adaptive routing: the router's crossover thresholds are estimates, the
// budget is the contract). The fallback is charged to the backend that
// timed out. Caller cancellation (ctx) aborts outright — a caller that
// walked away gets no heuristic retry.
func (s *Service) optimizeWithFallback(ctx context.Context, q *cost.Query, fpKey string, alg core.Algorithm, bid backend.ID, shape Shape, arena *plan.Arena) (*backend.Result, core.Algorithm, backend.ID, error) {
	warm, harvest := s.memoHooks(q, fpKey)
	opts := backend.Options{
		Model:   s.cfg.Model,
		Timeout: s.cfg.Timeout,
		Threads: s.cfg.Threads,
		K:       s.cfg.K,
		Arena:   arena,
		Warm:    warm,
		Harvest: harvest,
	}
	res, err := s.backends.Get(bid).Optimize(ctx, q, alg, opts)
	if err == nil || !errors.Is(err, dp.ErrTimeout) || !alg.IsExact() {
		return res, alg, bid, err
	}
	s.counters.observeFallback(bid)
	fb := core.AlgUnionDP
	if shape.IsTree() {
		fb = core.AlgIDP2
	}
	res, err = s.backends.Get(backend.Heuristic).Optimize(ctx, q, fb, opts)
	return res, fb, backend.Heuristic, err
}
