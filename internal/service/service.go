package service

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/plan"
)

// Config tunes a Service. The zero value selects the defaults listed on
// each field, which follow the regimes of the paper's evaluation: exact DP
// for small graphs, CPU-parallel MPDP for medium ones, IDP2/UnionDP beyond
// the fall-back limit.
type Config struct {
	// CacheShards is the plan-cache shard count (0: 16; rounded up to a
	// power of two).
	CacheShards int
	// CacheCapacity is the total number of cached plans (0: 4096).
	CacheCapacity int
	// Workers is the optimization worker-pool size (0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-request queue; enqueueing blocks when
	// full, applying backpressure to callers (0: 4 * Workers).
	QueueDepth int
	// Threads is passed to CPU-parallel optimizers (0: all cores).
	Threads int
	// SmallLimit routes graphs of at most this many relations to the
	// sequential exact DPCCP (0: 12).
	SmallLimit int
	// ExactLimit routes graphs of at most this many relations to
	// CPU-parallel MPDP (0: 25, the paper's raised fall-back limit).
	ExactLimit int
	// CliqueExactLimit lowers ExactLimit for clique-shaped graphs, whose
	// enumeration cost grows as 3^n (0: 14).
	CliqueExactLimit int
	// K is the sub-problem bound for IDP2/UnionDP (0: 15).
	K int
	// Timeout is the per-query optimization budget. An exact run that
	// exceeds it falls back to the shape's heuristic with a fresh budget
	// (0: 30s).
	Timeout time.Duration
	// Model is the cost model (nil: cost.DefaultModel()).
	Model *cost.Model
}

func (c Config) withDefaults() Config {
	if c.CacheShards == 0 {
		c.CacheShards = 16
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4096
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.SmallLimit == 0 {
		c.SmallLimit = 12
	}
	if c.ExactLimit == 0 {
		c.ExactLimit = 25
	}
	if c.CliqueExactLimit == 0 {
		c.CliqueExactLimit = 14
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Model == nil {
		c.Model = cost.DefaultModel()
	}
	return c
}

// Result is one service answer. Plan is always a private copy in the
// caller's relation-index space; callers may mutate it freely.
type Result struct {
	Plan      *plan.Node
	Algorithm core.Algorithm
	Shape     Shape
	Stats     dp.Stats
	// CacheHit is true when the plan came from the cache without waiting
	// on any optimization; Coalesced when the request piggybacked on an
	// identical in-flight optimization.
	CacheHit  bool
	Coalesced bool
	// FellBack is true when the exact route exceeded the time budget and
	// the plan came from the heuristic fallback.
	FellBack bool
	Elapsed  time.Duration
	// Key is the canonical fingerprint the request was cached under.
	Key string
}

// ErrClosed is returned by Optimize after Close.
var ErrClosed = errors.New("service: closed")

// flight is one in-progress optimization that concurrent identical
// requests coalesce onto.
type flight struct {
	done  chan struct{}
	entry *cached // canonical-space result, nil on error
	err   error
}

// request is one unit of work for the pool.
type request struct {
	q  *cost.Query
	fp Fingerprint
	fl *flight
}

// Service is a concurrent, thread-safe optimizer front-end; see the
// package comment. Create with New, release with Close.
type Service struct {
	cfg      Config
	cache    *Cache
	counters Counters

	mu       sync.Mutex
	inflight map[string]*flight

	reqs chan request
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New starts a service and its worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheShards, cfg.CacheCapacity),
		inflight: make(map[string]*flight),
		reqs:     make(chan request, cfg.QueueDepth),
		quit:     make(chan struct{}),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the worker pool: queued-but-unstarted requests are abandoned
// (their callers return ErrClosed) and Close waits only for optimizations
// already running on a worker to finish.
func (s *Service) Close() {
	s.once.Do(func() { close(s.quit) })
	s.wg.Wait()
}

// Counters returns the live instrumentation (expvar.Var compatible).
func (s *Service) Counters() *Counters { return &s.counters }

// CacheLen returns the number of cached plans.
func (s *Service) CacheLen() int { return s.cache.Len() }

// Route reports which algorithm the adaptive router would pick for q,
// given its size and detected shape.
func (s *Service) Route(q *cost.Query) (core.Algorithm, Shape) {
	shape := DetectShape(q.G)
	return s.route(q.N(), shape), shape
}

func (s *Service) route(n int, shape Shape) core.Algorithm {
	if n <= s.cfg.SmallLimit && n <= 64 {
		return core.AlgDPCCP
	}
	limit := s.cfg.ExactLimit
	if shape == ShapeClique && s.cfg.CliqueExactLimit < limit {
		limit = s.cfg.CliqueExactLimit
	}
	if n <= limit && n <= 64 {
		return core.AlgMPDPParallel
	}
	if shape.IsTree() {
		return core.AlgIDP2
	}
	return core.AlgUnionDP
}

// Optimize plans q, serving from the sharded plan cache when an
// isomorphic-with-identical-statistics query was planned before, coalescing
// onto an identical in-flight request otherwise, and finally optimizing on
// the worker pool with the algorithm the router picks for q's size and
// shape. It is safe for concurrent use.
func (s *Service) Optimize(q *cost.Query) (*Result, error) {
	start := time.Now()
	if q == nil || q.G == nil || q.N() == 0 {
		s.counters.errors.Add(1)
		return nil, fmt.Errorf("service: empty query")
	}
	s.counters.requests.Add(1)

	fp := FingerprintQuery(q)
	inv := invert(fp.Perm)
	if e, ok := s.cache.Get(fp.Key); ok {
		elapsed := time.Since(start)
		s.counters.observeHit(elapsed)
		return resultFrom(e, inv, elapsed, true, false), nil
	}

	s.mu.Lock()
	fl, joined := s.inflight[fp.Key]
	if !joined {
		fl = &flight{done: make(chan struct{})}
		s.inflight[fp.Key] = fl
	}
	s.mu.Unlock()

	if !joined {
		select {
		case s.reqs <- request{q: q, fp: fp, fl: fl}:
		case <-s.quit:
			s.abandon(fp.Key, fl)
			return nil, ErrClosed
		}
	}

	select {
	case <-fl.done:
	case <-s.quit:
		return nil, ErrClosed
	}
	if fl.err != nil {
		s.counters.errors.Add(1)
		return nil, fl.err
	}
	elapsed := time.Since(start)
	if joined {
		s.counters.coalesced.Add(1)
	} else {
		s.counters.observeMiss(elapsed)
	}
	return resultFrom(fl.entry, inv, elapsed, false, joined), nil
}

// abandon removes a flight that was never enqueued and unblocks any
// followers that joined it.
func (s *Service) abandon(key string, fl *flight) {
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	fl.err = ErrClosed
	close(fl.done)
}

func resultFrom(e *cached, inv []int, elapsed time.Duration, hit, coalesced bool) *Result {
	return &Result{
		Plan:      remapPlan(e.plan, inv),
		Algorithm: e.alg,
		Shape:     e.shape,
		Stats:     e.stats,
		CacheHit:  hit,
		Coalesced: coalesced,
		FellBack:  e.fellBack,
		Elapsed:   elapsed,
		Key:       e.key,
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	// Each worker owns an arena for the exact optimizers' plan nodes: the
	// tree is dead once serve has copied it into the cache (remapPlan), so
	// the arena is rewound per request and reaches a steady state where
	// cold-path plan materialization performs no heap allocation.
	arena := plan.NewArena()
	for {
		// Check quit first: a closed quit and a non-empty queue are both
		// ready, and a plain select would pick randomly — draining
		// abandoned requests nobody is waiting for.
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case r := <-s.reqs:
			s.serve(r, arena)
		}
	}
}

// serve runs one optimization, publishes the canonical-space plan to the
// cache and completes the flight. The optimizer's plan tree lives in the
// worker's arena; only the remapped copy survives this call.
func (s *Service) serve(r request, arena *plan.Arena) {
	shape := DetectShape(r.q.G)
	alg := s.route(r.q.N(), shape)
	s.counters.observeRoute(alg)

	arena.Reset()
	res, usedAlg, err := s.optimizeWithFallback(r.q, alg, shape, arena)
	if err == nil {
		r.fl.entry = &cached{
			key:      r.fp.Key,
			plan:     remapPlan(res.Plan, r.fp.Perm),
			stats:    res.Stats,
			alg:      usedAlg,
			shape:    shape,
			fellBack: usedAlg != alg,
		}
		s.cache.Put(r.fl.entry)
	} else {
		r.fl.err = err
	}
	s.mu.Lock()
	delete(s.inflight, r.fp.Key)
	s.mu.Unlock()
	close(r.fl.done)
}

// optimizeWithFallback runs the routed algorithm under the time budget;
// when an exact route times out it retries once with the shape's heuristic
// under a fresh budget (the adaptive part of adaptive routing: the router's
// size thresholds are estimates, the budget is the contract).
func (s *Service) optimizeWithFallback(q *cost.Query, alg core.Algorithm, shape Shape, arena *plan.Arena) (*core.Result, core.Algorithm, error) {
	opts := core.Options{
		Algorithm: alg,
		Model:     s.cfg.Model,
		Timeout:   s.cfg.Timeout,
		Threads:   s.cfg.Threads,
		K:         s.cfg.K,
		Arena:     arena,
	}
	res, err := core.Optimize(q, opts)
	if err == nil || !errors.Is(err, dp.ErrTimeout) || !alg.IsExact() {
		return res, alg, err
	}
	s.counters.fallbacks.Add(1)
	fb := core.AlgUnionDP
	if shape.IsTree() {
		fb = core.AlgIDP2
	}
	opts.Algorithm = fb
	res, err = core.Optimize(q, opts)
	return res, fb, err
}
