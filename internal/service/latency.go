package service

import (
	"time"

	"repro/internal/backend"
	"repro/internal/obs"
)

// LatencySet is the service's live latency distributions: end-to-end
// request time split by outcome — cache hits and misses per backend, shed
// rejections — plus the queue-wait distribution of cold requests. Every
// histogram shares obs.Histogram's fixed bucket layout, so LatencySets
// merge losslessly (Merge); the cluster coordinator sums its nodes' sets
// and reports cluster-wide quantiles with a single node's error bound.
type LatencySet struct {
	Hit       [numBackends]obs.Histogram
	Miss      [numBackends]obs.Histogram
	Shed      obs.Histogram
	QueueWait obs.Histogram
}

// Merge adds other's observations into l, bucket-wise.
func (l *LatencySet) Merge(other *LatencySet) {
	if other == nil {
		return
	}
	for i := 0; i < numBackends; i++ {
		l.Hit[i].Merge(&other.Hit[i])
		l.Miss[i].Merge(&other.Miss[i])
	}
	l.Shed.Merge(&other.Shed)
	l.QueueWait.Merge(&other.QueueWait)
}

// Export renders the set's non-empty histograms in serializable form,
// keyed like Quantiles ("hit:<backend>", "miss:<backend>", "shed",
// "queue_wait") — how a node-mode peer ships its distributions to the
// coordinator.
func (l *LatencySet) Export() map[string]obs.HistogramSnapshot {
	out := make(map[string]obs.HistogramSnapshot)
	for i, id := range backend.IDs() {
		if i >= numBackends {
			break
		}
		if l.Hit[i].Count() > 0 {
			out["hit:"+string(id)] = l.Hit[i].Export()
		}
		if l.Miss[i].Count() > 0 {
			out["miss:"+string(id)] = l.Miss[i].Export()
		}
	}
	if l.Shed.Count() > 0 {
		out["shed"] = l.Shed.Export()
	}
	if l.QueueWait.Count() > 0 {
		out["queue_wait"] = l.QueueWait.Export()
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// MergeExport folds an exported set back into l, bucket-wise and lossless.
// Unknown keys (a peer with a newer backend registry) are dropped.
func (l *LatencySet) MergeExport(m map[string]obs.HistogramSnapshot) {
	for key, snap := range m {
		if h := l.histFor(key); h != nil {
			h.MergeSnapshot(snap)
		}
	}
}

// histFor resolves an export key to its histogram, nil when unknown.
func (l *LatencySet) histFor(key string) *obs.Histogram {
	switch key {
	case "shed":
		return &l.Shed
	case "queue_wait":
		return &l.QueueWait
	}
	for i, id := range backend.IDs() {
		if i >= numBackends {
			break
		}
		switch key {
		case "hit:" + string(id):
			return &l.Hit[i]
		case "miss:" + string(id):
			return &l.Miss[i]
		}
	}
	return nil
}

// Quantiles is the JSON rendering of one latency distribution.
type Quantiles struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func quantilesOf(h *obs.Histogram) Quantiles {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	return Quantiles{
		Count:  h.Count(),
		MeanMS: ms(h.Mean()),
		P50MS:  ms(h.Quantile(0.50)),
		P95MS:  ms(h.Quantile(0.95)),
		P99MS:  ms(h.Quantile(0.99)),
		MaxMS:  ms(h.Max()),
	}
}

// Quantiles renders the non-empty distributions, keyed "hit:<backend>",
// "miss:<backend>", "shed" and "queue_wait" — the `latency` object of
// /v1/stats.
func (l *LatencySet) Quantiles() map[string]Quantiles {
	out := make(map[string]Quantiles)
	for i, id := range backend.IDs() {
		if i >= numBackends {
			break
		}
		if l.Hit[i].Count() > 0 {
			out["hit:"+string(id)] = quantilesOf(&l.Hit[i])
		}
		if l.Miss[i].Count() > 0 {
			out["miss:"+string(id)] = quantilesOf(&l.Miss[i])
		}
	}
	if l.Shed.Count() > 0 {
		out["shed"] = quantilesOf(&l.Shed)
	}
	if l.QueueWait.Count() > 0 {
		out["queue_wait"] = quantilesOf(&l.QueueWait)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WriteMetrics emits the set's histograms in exposition format; the cluster
// coordinator calls it on its merged set so both binaries expose the same
// series.
func (l *LatencySet) WriteMetrics(mw *obs.MetricsWriter) {
	const reqHelp = "End-to-end request latency by outcome and backend."
	for i, id := range backend.IDs() {
		if i >= numBackends {
			break
		}
		mw.Histogram("mpdp_request_seconds", reqHelp,
			obs.Labels{"outcome": "hit", "backend": string(id)}, &l.Hit[i])
		mw.Histogram("mpdp_request_seconds", reqHelp,
			obs.Labels{"outcome": "miss", "backend": string(id)}, &l.Miss[i])
	}
	mw.Histogram("mpdp_shed_seconds",
		"Latency of requests rejected by admission control.", nil, &l.Shed)
	mw.Histogram("mpdp_queue_wait_seconds",
		"Time cold requests spent in the admission queue.", nil, &l.QueueWait)
}
