package service

import (
	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/plan"
)

// Shape classifies a join graph's topology for routing. The classes mirror
// the paper's evaluation workloads: chains and stars are special trees,
// cliques are the dense worst case, and everything else (cycles, snowflake
// arms with cross edges, MusicBrainz walks with shortcut joins) is General.
type Shape string

// Shape classes, from most to least structured.
const (
	ShapeChain   Shape = "chain"
	ShapeStar    Shape = "star"
	ShapeTree    Shape = "tree"
	ShapeClique  Shape = "clique"
	ShapeGeneral Shape = "general"
)

// IsTree reports whether the shape is acyclic (chain, star or general tree),
// the regime where MPDP's tree specialization enumerates in linear output
// time and IDP2 compositions stay near-optimal.
func (s Shape) IsTree() bool {
	return s == ShapeChain || s == ShapeStar || s == ShapeTree
}

// DetectShape classifies g. Graphs of fewer than three vertices are trees
// (or chains) trivially.
func DetectShape(g *graph.Graph) Shape {
	n := g.N
	if n <= 2 {
		return ShapeChain
	}
	if len(g.Edges) == n*(n-1)/2 {
		return ShapeClique
	}
	if !g.IsTree() {
		return ShapeGeneral
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := len(g.Neighbors(v)); d > maxDeg {
			maxDeg = d
		}
	}
	switch {
	case maxDeg <= 2:
		return ShapeChain
	case maxDeg == n-1:
		return ShapeStar
	default:
		return ShapeTree
	}
}

// remapPlan rewrites a plan tree through the index permutation
// m[oldIndex] = newIndex, producing a fresh tree (cached plans are shared,
// so callers always receive their own copy). Set masks are rebuilt for
// queries of at most 64 relations and left zero beyond that, matching the
// plan.Node contract that heuristic-scale plans re-derive sets from leaves.
//
// This is the warm path of every cache hit, so the copy is bump-allocated
// from one contiguous node slab (plan trees are full binary: 2·leaves − 1
// nodes) instead of one heap object per node.
func remapPlan(p *plan.Node, m []int) *plan.Node {
	if p == nil {
		return nil
	}
	small := len(m) <= 64
	slab := make([]plan.Node, 0, 2*p.Size()-1)
	var walk func(*plan.Node) *plan.Node
	walk = func(n *plan.Node) *plan.Node {
		slab = append(slab, plan.Node{Op: n.Op, Rows: n.Rows, Cost: n.Cost})
		out := &slab[len(slab)-1]
		if n.IsLeaf() {
			out.RelID = m[n.RelID]
			if small {
				out.Set = bitset.Single(out.RelID)
			}
			return out
		}
		out.Left = walk(n.Left)
		out.Right = walk(n.Right)
		if small {
			out.Set = out.Left.Set.Union(out.Right.Set)
		}
		return out
	}
	return walk(p)
}

// invert returns the inverse permutation of m.
func invert(m []int) []int {
	inv := make([]int, len(m))
	for i, v := range m {
		inv[v] = i
	}
	return inv
}
