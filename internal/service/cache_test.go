package service

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 3)
	put := func(k string) { c.Put(&cached{key: k}) }
	put("a")
	put("b")
	put("c")
	if _, ok := c.Get("a"); !ok { // promotes a over b
		t.Fatal("a missing")
	}
	put("d") // evicts b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be cached", k)
		}
	}
	if got := c.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(1, 2)
	c.Put(&cached{key: "k", shape: ShapeChain})
	c.Put(&cached{key: "k", shape: ShapeStar})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	e, ok := c.Get("k")
	if !ok || e.shape != ShapeStar {
		t.Errorf("refresh lost the newest entry: %+v ok=%v", e, ok)
	}
}

func TestCacheShardRounding(t *testing.T) {
	c := NewCache(5, 100)
	if c.Shards() != 8 {
		t.Errorf("Shards = %d, want 8", c.Shards())
	}
	if c = NewCache(0, 0); c.Shards() != 1 {
		t.Errorf("Shards = %d, want 1", c.Shards())
	}
}

// TestCacheConcurrent hammers a shared cache from many goroutines; run
// with -race, it is the shard-locking regression test.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("key-%d", (w*31+i)%128)
				if i%3 == 0 {
					c.Put(&cached{key: k})
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("cache exceeded capacity: %d", c.Len())
	}
}
