package service

import "sort"

// CacheEntryInfo describes one plan-cache entry for the /v1/cache control
// surface.
type CacheEntryInfo struct {
	Key        string `json:"fingerprint"`
	Shape      string `json:"shape"`
	Algorithm  string `json:"algorithm"`
	Backend    string `json:"backend"`
	Relations  int    `json:"relations"`
	Hits       uint64 `json:"hits"`
	Epoch      uint64 `json:"epoch"`
	SubEntries int    `json:"sub_entries"`
	FellBack   bool   `json:"fell_back"`
}

// CacheInfo is the plan-cache summary for the /v1/cache control surface.
type CacheInfo struct {
	Plans       int    `json:"plans"`
	Capacity    int    `json:"capacity"`
	Shards      int    `json:"shards"`
	SubPlans    int    `json:"sub_plans"`
	SubCapacity int    `json:"sub_capacity"`
	StatsEpoch  uint64 `json:"stats_epoch"`
	// Entries lists the top entries by hit count (bounded by the topN the
	// caller asked for).
	Entries []CacheEntryInfo `json:"entries"`
}

// CacheInfo summarizes the plan cache and subgraph memo, listing the topN
// entries by hit count (topN <= 0 lists none).
func (s *Service) CacheInfo(topN int) CacheInfo {
	info := CacheInfo{
		Plans:       s.cache.Len(),
		Capacity:    s.cfg.CacheCapacity,
		Shards:      s.cache.Shards(),
		SubPlans:    s.submemo.Len(),
		SubCapacity: s.submemo.Cap(),
		StatsEpoch:  s.StatsEpoch(),
		Entries:     []CacheEntryInfo{},
	}
	if topN <= 0 {
		return info
	}
	for _, e := range s.cache.Export() {
		info.Entries = append(info.Entries, CacheEntryInfo{
			Key:        e.key,
			Shape:      string(e.shape),
			Algorithm:  string(e.alg),
			Backend:    string(e.backend),
			Relations:  e.plan.Size(),
			Hits:       e.hits.Load(),
			Epoch:      e.epoch,
			SubEntries: s.submemo.CountOrigin(e.key),
			FellBack:   e.fellBack,
		})
	}
	sort.SliceStable(info.Entries, func(i, j int) bool {
		if info.Entries[i].Hits != info.Entries[j].Hits {
			return info.Entries[i].Hits > info.Entries[j].Hits
		}
		return info.Entries[i].Key < info.Entries[j].Key
	})
	if len(info.Entries) > topN {
		info.Entries = info.Entries[:topN]
	}
	return info
}
