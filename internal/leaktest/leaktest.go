// Package leaktest is the shared goroutine-leak guard for test suites that
// spin up servers, clusters and worker pools: it compares the interesting
// goroutines before and after, with a grace period for orderly shutdown
// (closed listeners, draining HTTP keep-alive loops), and fails with the
// leaked stacks when the count does not come back down. The cluster,
// service and chaos suites install it via Main, so a forgotten Close or a
// goroutine parked on an abandoned channel fails CI instead of
// accumulating silently.
package leaktest

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredStacks are substrings of goroutine stacks that are never counted:
// the test harness itself, runtime housekeeping, and this package's own
// capture frame.
var ignoredStacks = []string{
	"repro/internal/leaktest.",
	"testing.Main(",
	"testing.(*M).",
	"testing.tRunner(",
	"testing.runTests(",
	"testing.(*T).Run(",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ensureSigM",
	"runtime.ReadTrace",
	"runtime/pprof.",
	"runtime.MHeap",
}

// stacks captures every live goroutine's stack, one string per goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return strings.Split(string(buf[:n]), "\n\n")
		}
		buf = make([]byte, len(buf)*2)
	}
}

func ignored(stack string) bool {
	for _, pat := range ignoredStacks {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}

// interesting returns the stacks of goroutines the guard counts.
func interesting() []string {
	var out []string
	for _, s := range stacks() {
		if strings.TrimSpace(s) == "" || ignored(s) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Count returns the number of interesting goroutines right now — chaos
// reports record it as the baseline before starting a cluster.
func Count() int { return len(interesting()) }

// grace is how long a check waits for goroutine counts to settle: orderly
// shutdowns (HTTP keep-alive loops, timer-parked workers) exit
// asynchronously after Close returns.
const grace = 5 * time.Second

// settle polls until the interesting-goroutine count drops to at most
// limit or the grace period expires, returning the final stacks.
func settle(limit int) []string {
	deadline := time.Now().Add(grace)
	for {
		got := interesting()
		if len(got) <= limit || time.Now().After(deadline) {
			return got
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Check captures a baseline and returns a function to defer: it fails the
// test if interesting goroutines remain above the baseline once the grace
// period runs out, printing the leaked stacks.
func Check(tb testing.TB) func() {
	base := Count()
	return func() {
		tb.Helper()
		got := settle(base)
		if len(got) <= base {
			return
		}
		tb.Errorf("leaktest: %d goroutine(s) leaked (baseline %d):\n\n%s",
			len(got)-base, base, strings.Join(got, "\n\n"))
	}
}

// Main wraps a suite's TestMain: run the tests, then verify the whole
// binary is back to its pre-suite goroutine baseline. A leak turns a
// passing suite into a failure; failing suites keep their own exit code.
func Main(m *testing.M) {
	base := Count()
	code := m.Run()
	if code == 0 {
		if got := settle(base); len(got) > base {
			fmt.Fprintf(os.Stderr, "leaktest: %d goroutine(s) leaked after suite (baseline %d):\n\n%s\n",
				len(got)-base, base, strings.Join(got, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}
