package backend

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gpusim"
)

func TestDefaultCrossoverSane(t *testing.T) {
	c := DefaultCrossover()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.SmallLimit != 12 || c.CPUParallelLimit != 25 {
		t.Errorf("paper limits drifted: %+v", c)
	}
	// The headline regime: the GPU band must open the 26..40+ range that
	// the heuristics used to own.
	if c.GPULimit < 40 || c.GPULimit > 64 {
		t.Errorf("gpu_limit %d outside [40, 64]", c.GPULimit)
	}
	if c.GPUCliqueLimit < c.CliqueCPULimit {
		t.Errorf("gpu clique cap %d below cpu clique cap %d", c.GPUCliqueLimit, c.CliqueCPULimit)
	}
}

// TestCalibrateMonotone: a faster device or a larger budget never shrinks
// the exact-GPU band.
func TestCalibrateMonotone(t *testing.T) {
	base := Calibrate(gpusim.GTX1080(), 5*time.Second)

	fast := gpusim.GTX1080()
	fast.SMCount *= 2
	if c := Calibrate(fast, 5*time.Second); c.GPULimit < base.GPULimit {
		t.Errorf("doubling SMs shrank gpu_limit: %d < %d", c.GPULimit, base.GPULimit)
	}
	if c := Calibrate(gpusim.GTX1080(), 30*time.Second); c.GPULimit < base.GPULimit ||
		c.GPUCliqueLimit < base.GPUCliqueLimit {
		t.Errorf("larger budget shrank the band: %+v vs %+v", c, base)
	}
	if c := Calibrate(nil, 0); c != base {
		t.Errorf("nil device / zero budget should select the defaults: %+v", c)
	}
}

func TestLoadCrossover(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crossover.json")

	// Partial override: present fields win, absent fields keep defaults.
	if err := os.WriteFile(path, []byte(`{"gpu_limit": 48, "small_limit": 10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCrossover(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.GPULimit != 48 || c.SmallLimit != 10 {
		t.Errorf("overrides not applied: %+v", c)
	}
	if d := DefaultCrossover(); c.CPUParallelLimit != d.CPUParallelLimit || c.DenseEdgeFactor != d.DenseEdgeFactor {
		t.Errorf("defaults not preserved: %+v", c)
	}

	// A typo'd field name must fail loudly, not silently use defaults.
	if err := os.WriteFile(path, []byte(`{"gpu_limt": 48}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCrossover(path); err == nil {
		t.Error("unknown field accepted")
	}

	// An inverted ladder must be rejected.
	if err := os.WriteFile(path, []byte(`{"small_limit": 30, "cpu_parallel_limit": 20}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCrossover(path); err == nil {
		t.Error("inverted thresholds accepted")
	}

	// gpu_limit beyond the bitset width clamps to 64.
	if err := os.WriteFile(path, []byte(`{"gpu_limit": 100}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err = LoadCrossover(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.GPULimit != 64 {
		t.Errorf("gpu_limit %d, want clamp to 64", c.GPULimit)
	}

	if _, err := LoadCrossover(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
