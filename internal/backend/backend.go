// Package backend abstracts *where* an optimization runs, separating the
// execution substrate from the algorithm choice: the same MPDP enumeration
// can execute on the sequential CPU path, the work-stealing CPU-parallel
// driver, or the multi-device simulated GPU — and the heuristics form a
// fourth, approximate substrate. The service router (internal/service)
// picks an (algorithm, backend) pair per query from size, shape and the
// crossover thresholds of this package; the serving layers report which
// backend produced every plan.
//
// The backend split mirrors the paper's evaluation axes (CPU vs GPU,
// sequential vs parallel, exact vs heuristic) and the device/backend
// separation of multi-device accelerator simulators.
package backend

import (
	"context"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/plan"
)

// ID names an execution backend.
type ID string

// The backend registry.
const (
	// CPUSeq runs the sequential exact enumerators (DPCCP, MPDP, DPSize,
	// DPSub) on one core.
	CPUSeq ID = "cpu-seq"
	// CPUParallel runs the work-stealing CPU-parallel drivers (MPDP-CPU,
	// PDP, DPE) across all cores.
	CPUParallel ID = "cpu-parallel"
	// GPU runs MPDP on the multi-device simulated GPU with fused pruning
	// and CCC, coalescing concurrent requests into device-saturating
	// batches.
	GPU ID = "gpu"
	// Heuristic runs the approximate algorithms (IDP2, UnionDP, GEQO, ...);
	// it is the only backend whose plans are not guaranteed optimal.
	Heuristic ID = "heuristic"
)

// IDs lists every backend, in routing-preference order.
func IDs() []ID { return []ID{CPUSeq, CPUParallel, GPU, Heuristic} }

// Options configures one backend optimization; the fields mirror
// core.Options minus the algorithm (passed separately) and the GPU device
// model (owned by the GPU backend).
type Options struct {
	Model   *cost.Model
	Timeout time.Duration
	Threads int
	K       int
	Seed    int64
	// Arena, when non-nil, supplies the result's plan nodes for the exact
	// backends (see core.Options.Arena).
	Arena *plan.Arena
	// Warm and Harvest are the subplan-memo hooks threaded to the level
	// drivers (see dp.Input); backends whose algorithms do not run a level
	// driver ignore them.
	Warm    func(tab *plan.Table, buckets [][]bitset.Mask) int
	Harvest func(tab *plan.Table)
}

// Result is one backend answer.
type Result struct {
	Plan  *plan.Node
	Stats dp.Stats
	// Backend identifies the substrate that produced the plan.
	Backend ID
	// Algorithm is the algorithm that ran (it can differ from the request
	// when a backend substitutes, which none currently do).
	Algorithm core.Algorithm
	// GPU carries the multi-device work model when Backend == GPU.
	GPU     *gpusim.MultiStats
	Elapsed time.Duration
}

// Backend is one execution substrate.
type Backend interface {
	// ID returns the backend's registry name.
	ID() ID
	// Supports reports whether the backend can execute alg.
	Supports(alg core.Algorithm) bool
	// Optimize plans q with alg. Cancelling ctx aborts the run promptly
	// with the context's error. Implementations must be safe for
	// concurrent use — the service worker pool calls them from many
	// goroutines.
	Optimize(ctx context.Context, q *cost.Query, alg core.Algorithm, opts Options) (*Result, error)
	// Close releases backend resources (the GPU backend's batcher).
	Close()
}

// Set is the full backend lineup one service owns. Create with NewSet,
// release with Close.
type Set struct {
	byID map[ID]Backend
}

// NewSet builds the four standard backends; gpu configures the simulated
// device pool.
func NewSet(gpu GPUConfig) *Set {
	s := &Set{byID: make(map[ID]Backend, 4)}
	for _, b := range []Backend{
		newCPUSeq(), newCPUParallel(), newGPUBackend(gpu), newHeuristic(),
	} {
		s.byID[b.ID()] = b
	}
	return s
}

// Get returns the backend with the given ID, or nil.
func (s *Set) Get(id ID) Backend { return s.byID[id] }

// For returns the backend that executes alg, following the registry's
// algorithm→substrate mapping.
func (s *Set) For(alg core.Algorithm) Backend {
	for _, id := range IDs() {
		if b := s.byID[id]; b != nil && b.Supports(alg) {
			return b
		}
	}
	return nil
}

// Close releases every backend.
func (s *Set) Close() {
	for _, b := range s.byID {
		b.Close()
	}
}
