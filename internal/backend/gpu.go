package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/gpusim"
)

// GPUConfig tunes the simulated GPU backend. The zero value selects the
// defaults listed on each field.
type GPUConfig struct {
	// Devices is the simulated device count (0: 2).
	Devices int
	// Device is the device model (nil: gpusim.GTX1080).
	Device *gpusim.Device
	// BatchWindow is how long the batcher holds the first request of a
	// batch while coalescing more from the worker pool (0: 200µs; negative
	// disables coalescing — every request runs alone on all devices).
	BatchWindow time.Duration
	// BatchMax caps the requests per coalesced batch (0: 2 × Devices).
	BatchMax int
}

func (c GPUConfig) withDefaults() GPUConfig {
	if c.Devices <= 0 {
		c.Devices = 2
	}
	if c.Device == nil {
		c.Device = gpusim.GTX1080()
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 2 * c.Devices
	}
	return c
}

// simConfig builds the gpusim configuration: the paper's full MPDP-GPU
// (fused pruning + CCC) on the configured device pool.
func (c GPUConfig) simConfig() gpusim.Config {
	return gpusim.Config{Device: c.Device, Devices: c.Devices, FusedPrune: true, CCC: true}
}

// DeviceModel resolves the configured device model (the default GTX 1080
// when unset), so callers pricing a MultiStats — the service's trace
// decomposition — bill against the same device the backend simulated.
func (c GPUConfig) DeviceModel() *gpusim.Device {
	if c.Device != nil {
		return c.Device
	}
	return gpusim.GTX1080()
}

// ErrGPUClosed is returned by Optimize when the backend was closed before
// the request could be serviced.
var ErrGPUClosed = errors.New("backend: gpu backend closed")

// gpuJob is one request waiting to be coalesced into a device batch.
type gpuJob struct {
	in   dp.Input
	done chan gpusim.BatchResult
}

// gpuBackend runs MPDP on the multi-device simulated GPU. Concurrent
// Optimize calls from the service worker pool are coalesced by a single
// batcher goroutine: the first request of a batch waits at most
// BatchWindow for company, then the whole batch is scheduled across the
// device pool at once (gpusim.MPDPGPUBatch), so a burst of cold queries
// saturates all devices instead of serializing on one.
type gpuBackend struct {
	cfg  GPUConfig
	jobs chan *gpuJob
	quit chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

func newGPUBackend(cfg GPUConfig) Backend {
	b := &gpuBackend{
		cfg:  cfg.withDefaults(),
		jobs: make(chan *gpuJob, 64),
		quit: make(chan struct{}),
	}
	if b.cfg.BatchWindow > 0 {
		b.wg.Add(1)
		go b.batcher()
	}
	return b
}

func (b *gpuBackend) ID() ID { return GPU }

func (b *gpuBackend) Supports(alg core.Algorithm) bool {
	switch alg {
	case core.AlgMPDPGPU, core.AlgDPSubGPU, core.AlgDPSizeGPU:
		return true
	}
	return false
}

// Devices returns the simulated device count.
func (b *gpuBackend) Devices() int { return b.cfg.Devices }

func (b *gpuBackend) Optimize(ctx context.Context, q *cost.Query, alg core.Algorithm, opts Options) (*Result, error) {
	start := time.Now()
	m := opts.Model
	if m == nil {
		m = cost.DefaultModel()
	}
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	in := dp.Input{Q: q, M: m, Ctx: ctx, Arena: opts.Arena, Deadline: deadline}

	var br gpusim.BatchResult
	switch alg {
	case core.AlgMPDPGPU:
		if b.cfg.BatchWindow > 0 {
			// Select against quit on both sides so an Optimize racing
			// Close fails loudly with ErrGPUClosed instead of hanging on
			// a job the drained batcher will never service. (The service
			// layer never races them — workers drain before backends
			// close — but the Backend interface makes no such promise.)
			job := &gpuJob{in: in, done: make(chan gpusim.BatchResult, 1)}
			select {
			case b.jobs <- job:
			case <-b.quit:
				return nil, ErrGPUClosed
			}
			select {
			case br = <-job.done:
			case <-ctx.Done():
				// The batch will still run (and abort promptly via in.Ctx);
				// done is buffered, so the batcher's delivery never blocks.
				return nil, context.Cause(ctx)
			case <-b.quit:
				// The final drain may still have delivered our result.
				select {
				case br = <-job.done:
				default:
					return nil, ErrGPUClosed
				}
			}
		} else {
			br.Plan, br.Stats, br.GPU, br.Err = gpusim.MPDPGPUMulti(in, b.cfg.simConfig())
		}
	case core.AlgDPSubGPU, core.AlgDPSizeGPU:
		// The baseline GPU algorithms stay single-device (the paper ports
		// only MPDP to multi-GPU); wrap their stats in the multi view.
		run := gpusim.DPSubGPU
		if alg == core.AlgDPSizeGPU {
			run = gpusim.DPSizeGPU
		}
		cfg := b.cfg.simConfig()
		cfg.Devices = 1
		var gs gpusim.Stats
		br.Plan, br.Stats, gs, br.Err = run(in, cfg)
		br.GPU = gpusim.MultiStats{Stats: gs, Devices: 1, PerDevice: []gpusim.Stats{gs}}
	default:
		return nil, fmt.Errorf("backend: gpu backend does not support %q", alg)
	}
	if br.Err != nil {
		return nil, br.Err
	}
	gpu := br.GPU
	return &Result{
		Plan:      br.Plan,
		Stats:     br.Stats,
		Backend:   GPU,
		Algorithm: alg,
		GPU:       &gpu,
		Elapsed:   time.Since(start),
	}, nil
}

// batcher is the single coalescing loop: block for the first job, hold the
// batch open for BatchWindow (or until BatchMax), run it across the device
// pool, deliver, repeat. It exits only when quit is closed and no job is
// pending — the service closes its worker pool before the backends, so no
// submission can race the shutdown.
func (b *gpuBackend) batcher() {
	defer b.wg.Done()
	for {
		var first *gpuJob
		select {
		case first = <-b.jobs:
		case <-b.quit:
			// Drain anything already queued before exiting.
			select {
			case first = <-b.jobs:
			default:
				return
			}
		}
		batch := []*gpuJob{first}
		timer := time.NewTimer(b.cfg.BatchWindow)
	collect:
		for len(batch) < b.cfg.BatchMax {
			select {
			case j := <-b.jobs:
				batch = append(batch, j)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()

		ins := make([]dp.Input, len(batch))
		for i, j := range batch {
			ins[i] = j.in
		}
		for i, r := range gpusim.MPDPGPUBatch(ins, b.cfg.simConfig()) {
			batch[i].done <- r
		}
	}
}

func (b *gpuBackend) Close() {
	b.once.Do(func() { close(b.quit) })
	b.wg.Wait()
}
