package backend

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
)

// coreOptimize is the shared thin wrapper: the CPU and heuristic backends
// all execute through core.Optimize and differ only in which algorithms
// they claim and how many threads they hand over.
func coreOptimize(ctx context.Context, id ID, q *cost.Query, alg core.Algorithm, opts Options, threads int) (*Result, error) {
	start := time.Now()
	res, err := core.Optimize(ctx, q, core.Options{
		Algorithm: alg,
		Model:     opts.Model,
		Timeout:   opts.Timeout,
		Threads:   threads,
		K:         opts.K,
		Seed:      opts.Seed,
		Arena:     opts.Arena,
		Warm:      opts.Warm,
		Harvest:   opts.Harvest,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Plan:      res.Plan,
		Stats:     res.Stats,
		Backend:   id,
		Algorithm: alg,
		Elapsed:   time.Since(start),
	}, nil
}

// cpuSeq executes the sequential exact enumerators on one core.
type cpuSeq struct{}

func newCPUSeq() Backend { return cpuSeq{} }

func (cpuSeq) ID() ID { return CPUSeq }

func (cpuSeq) Supports(alg core.Algorithm) bool {
	switch alg {
	case core.AlgDPSize, core.AlgDPSub, core.AlgDPCCP, core.AlgMPDP:
		return true
	}
	return false
}

func (cpuSeq) Optimize(ctx context.Context, q *cost.Query, alg core.Algorithm, opts Options) (*Result, error) {
	return coreOptimize(ctx, CPUSeq, q, alg, opts, 1)
}

func (cpuSeq) Close() {}

// cpuParallel executes the work-stealing CPU-parallel drivers.
type cpuParallel struct{}

func newCPUParallel() Backend { return cpuParallel{} }

func (cpuParallel) ID() ID { return CPUParallel }

func (cpuParallel) Supports(alg core.Algorithm) bool {
	switch alg {
	case core.AlgPDP, core.AlgDPE, core.AlgMPDPParallel:
		return true
	}
	return false
}

func (cpuParallel) Optimize(ctx context.Context, q *cost.Query, alg core.Algorithm, opts Options) (*Result, error) {
	return coreOptimize(ctx, CPUParallel, q, alg, opts, opts.Threads)
}

func (cpuParallel) Close() {}

// heuristicBackend executes the approximate algorithms.
type heuristicBackend struct{}

func newHeuristic() Backend { return heuristicBackend{} }

func (heuristicBackend) ID() ID { return Heuristic }

func (heuristicBackend) Supports(alg core.Algorithm) bool {
	switch alg {
	case core.AlgGEQO, core.AlgGOO, core.AlgMinSel, core.AlgIKKBZ,
		core.AlgLinDP, core.AlgIDP1, core.AlgIDP2, core.AlgUnionDP:
		return true
	}
	return false
}

func (heuristicBackend) Optimize(ctx context.Context, q *cost.Query, alg core.Algorithm, opts Options) (*Result, error) {
	return coreOptimize(ctx, Heuristic, q, alg, opts, opts.Threads)
}

func (heuristicBackend) Close() {}
