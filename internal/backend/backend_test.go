package backend

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/workload"
)

func genQuery(t testing.TB, kind workload.Kind, n int, seed int64) *cost.Query {
	t.Helper()
	q, err := workload.Generate(kind, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func relEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestSetDispatch: every registered algorithm resolves to exactly one
// backend, and the mapping follows the substrate split.
func TestSetDispatch(t *testing.T) {
	s := NewSet(GPUConfig{})
	defer s.Close()

	want := map[core.Algorithm]ID{
		core.AlgDPCCP:        CPUSeq,
		core.AlgMPDP:         CPUSeq,
		core.AlgDPSize:       CPUSeq,
		core.AlgDPSub:        CPUSeq,
		core.AlgMPDPParallel: CPUParallel,
		core.AlgPDP:          CPUParallel,
		core.AlgDPE:          CPUParallel,
		core.AlgMPDPGPU:      GPU,
		core.AlgDPSubGPU:     GPU,
		core.AlgDPSizeGPU:    GPU,
		core.AlgIDP2:         Heuristic,
		core.AlgUnionDP:      Heuristic,
		core.AlgGEQO:         Heuristic,
	}
	for alg, id := range want {
		b := s.For(alg)
		if b == nil {
			t.Errorf("%s: no backend", alg)
			continue
		}
		if b.ID() != id {
			t.Errorf("%s: dispatched to %s, want %s", alg, b.ID(), id)
		}
	}
	if b := s.For(core.AlgAuto); b != nil {
		t.Errorf("auto is a policy, not a backend algorithm; got %s", b.ID())
	}
	for _, id := range IDs() {
		if s.Get(id) == nil {
			t.Errorf("Get(%s) = nil", id)
		}
	}
}

// TestBackendsCostIdentical: the three exact substrates return
// cost-identical plans, and each result is stamped with its backend.
func TestBackendsCostIdentical(t *testing.T) {
	s := NewSet(GPUConfig{Devices: 2})
	defer s.Close()
	m := cost.DefaultModel()

	for _, kind := range []workload.Kind{workload.KindCycle, workload.KindStar, workload.KindMB} {
		q := genQuery(t, kind, 12, 3)
		ref, _, err := dp.DPCCP(dp.Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			alg core.Algorithm
			id  ID
		}{
			{core.AlgDPCCP, CPUSeq},
			{core.AlgMPDPParallel, CPUParallel},
			{core.AlgMPDPGPU, GPU},
		} {
			res, err := s.Get(tc.id).Optimize(context.Background(), q, tc.alg, Options{Model: m})
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, tc.id, err)
			}
			if res.Backend != tc.id {
				t.Errorf("%s/%s: result stamped %s", kind, tc.id, res.Backend)
			}
			if res.Algorithm != tc.alg {
				t.Errorf("%s/%s: algorithm %s, want %s", kind, tc.id, res.Algorithm, tc.alg)
			}
			if !relEq(res.Plan.Cost, ref.Cost) {
				t.Errorf("%s/%s: cost %g, want %g", kind, tc.id, res.Plan.Cost, ref.Cost)
			}
			if tc.id == GPU && (res.GPU == nil || res.GPU.Devices != 2) {
				t.Errorf("%s: GPU result missing multi-device stats: %+v", kind, res.GPU)
			}
			if tc.id != GPU && res.GPU != nil {
				t.Errorf("%s/%s: non-GPU result carries GPU stats", kind, tc.id)
			}
		}
	}
}

// TestGPUCoalescing: concurrent GPU requests coalesce into shared batches
// and every caller still gets the right plan for its own query.
func TestGPUCoalescing(t *testing.T) {
	s := NewSet(GPUConfig{Devices: 4, BatchWindow: 2 * time.Millisecond})
	defer s.Close()
	gpu := s.Get(GPU)
	m := cost.DefaultModel()

	const callers = 12
	qs := make([]*cost.Query, callers)
	refs := make([]float64, callers)
	for i := range qs {
		qs[i] = genQuery(t, workload.KindCycle, 10+i%4, int64(i))
		p, _, err := dp.DPCCP(dp.Input{Q: qs[i], M: m})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = p.Cost
	}

	var wg sync.WaitGroup
	errs := make([]error, callers)
	results := make([]*Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = gpu.Optimize(context.Background(), qs[i], core.AlgMPDPGPU, Options{Model: m})
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !relEq(results[i].Plan.Cost, refs[i]) {
			t.Errorf("caller %d: cost %g, want %g", i, results[i].Plan.Cost, refs[i])
		}
	}
}

// TestGPUTimeout: an expired budget surfaces as dp.ErrTimeout so the
// service's fallback path can engage.
func TestGPUTimeout(t *testing.T) {
	s := NewSet(GPUConfig{Devices: 2})
	defer s.Close()
	q := genQuery(t, workload.KindClique, 17, 1)
	_, err := s.Get(GPU).Optimize(context.Background(), q, core.AlgMPDPGPU, Options{Model: cost.DefaultModel(), Timeout: time.Nanosecond})
	if !errors.Is(err, dp.ErrTimeout) {
		t.Errorf("err = %v, want dp.ErrTimeout", err)
	}
}

// TestGPUUnbatchedPath: a negative batch window bypasses the coalescer.
func TestGPUUnbatchedPath(t *testing.T) {
	s := NewSet(GPUConfig{Devices: 3, BatchWindow: -1})
	defer s.Close()
	q := genQuery(t, workload.KindChain, 10, 2)
	m := cost.DefaultModel()
	res, err := s.Get(GPU).Optimize(context.Background(), q, core.AlgMPDPGPU, Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.GPU == nil || res.GPU.Devices != 3 {
		t.Fatalf("unbatched GPU run should use all 3 devices: %+v", res.GPU)
	}
	ref, _, err := dp.DPCCP(dp.Input{Q: q, M: m})
	if err != nil {
		t.Fatal(err)
	}
	if !relEq(res.Plan.Cost, ref.Cost) {
		t.Errorf("cost %g, want %g", res.Plan.Cost, ref.Cost)
	}
}

// TestGPUBaselineAlgorithms: the DPSub/DPSize GPU baselines run
// single-device through the same backend.
func TestGPUBaselineAlgorithms(t *testing.T) {
	s := NewSet(GPUConfig{Devices: 4})
	defer s.Close()
	q := genQuery(t, workload.KindStar, 9, 4)
	m := cost.DefaultModel()
	ref, _, err := dp.DPCCP(dp.Input{Q: q, M: m})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []core.Algorithm{core.AlgDPSubGPU, core.AlgDPSizeGPU} {
		res, err := s.Get(GPU).Optimize(context.Background(), q, alg, Options{Model: m})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !relEq(res.Plan.Cost, ref.Cost) {
			t.Errorf("%s: cost %g, want %g", alg, res.Plan.Cost, ref.Cost)
		}
		if res.GPU == nil || res.GPU.Devices != 1 {
			t.Errorf("%s: baselines are single-device, got %+v", alg, res.GPU)
		}
	}
}

// TestCloseIdempotent: Set.Close (and the GPU batcher inside it) must be
// safe to call twice — the service layer closes its backend set on every
// shutdown path.
func TestCloseIdempotent(t *testing.T) {
	s := NewSet(GPUConfig{})
	s.Close()
	s.Close()
}

// TestGPUOptimizeAfterCloseFailsLoudly: an Optimize racing (or following)
// Close must return ErrGPUClosed, not hang on a job the drained batcher
// will never service.
func TestGPUOptimizeAfterCloseFailsLoudly(t *testing.T) {
	s := NewSet(GPUConfig{Devices: 2})
	gpu := s.Get(GPU)
	s.Close()
	done := make(chan error, 1)
	go func() {
		_, err := gpu.Optimize(context.Background(), genQuery(t, workload.KindChain, 8, 1), core.AlgMPDPGPU, Options{Model: cost.DefaultModel()})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrGPUClosed) {
			t.Errorf("err = %v, want ErrGPUClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Optimize after Close hung")
	}
}
