package backend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/gpusim"
)

// Crossover holds the router's backend-crossover thresholds: which
// substrate plans a query of a given size and shape. The zero value of any
// field selects the calibrated default (see Calibrate); a JSON file with
// the same field names overrides them per deployment (LoadCrossover).
//
// The regimes, in increasing query size:
//
//	n ≤ SmallLimit                 sequential DPCCP on cpu-seq
//	n ≤ CPUParallelLimit           MPDP on cpu-parallel (clique-shaped
//	                               graphs capped at CliqueCPULimit)
//	n ≤ GPULimit                   MPDP on the simulated GPU (clique and
//	                               dense general graphs capped at
//	                               GPUCliqueLimit)
//	beyond                         heuristics (IDP2 for trees, UnionDP
//	                               otherwise)
type Crossover struct {
	// SmallLimit routes graphs of at most this many relations to the
	// sequential exact DPCCP — below it, any parallel substrate's fixed
	// overhead exceeds the whole optimization.
	SmallLimit int `json:"small_limit"`
	// CPUParallelLimit routes graphs of at most this many relations to
	// CPU-parallel MPDP (the paper's raised fall-back limit of 25).
	CPUParallelLimit int `json:"cpu_parallel_limit"`
	// CliqueCPULimit lowers CPUParallelLimit for clique-shaped graphs,
	// whose enumeration cost grows as 3^n.
	CliqueCPULimit int `json:"clique_cpu_limit"`
	// GPULimit routes trees and sparse cyclic graphs of at most this many
	// relations to GPU-MPDP instead of the heuristics — the paper's
	// headline regime, exact plans at sizes CPU enumerators cannot touch.
	// Hard-capped at 64 (the exact enumerators' bitset width).
	GPULimit int `json:"gpu_limit"`
	// GPUCliqueLimit caps the GPU route for clique-shaped and dense
	// general graphs (see DenseEdgeFactor).
	GPUCliqueLimit int `json:"gpu_clique_limit"`
	// DenseEdgeFactor classifies a general (cyclic, non-clique) graph as
	// dense when it has more than DenseEdgeFactor × n edges; dense graphs
	// use GPUCliqueLimit instead of GPULimit, since their connected-set
	// space explodes the same way a clique's does.
	DenseEdgeFactor float64 `json:"dense_edge_factor"`
}

// WithDefaults fills zero fields from the calibrated defaults.
func (c Crossover) WithDefaults() Crossover {
	d := DefaultCrossover()
	if c.SmallLimit == 0 {
		c.SmallLimit = d.SmallLimit
	}
	if c.CPUParallelLimit == 0 {
		c.CPUParallelLimit = d.CPUParallelLimit
	}
	if c.CliqueCPULimit == 0 {
		c.CliqueCPULimit = d.CliqueCPULimit
	}
	if c.GPULimit == 0 {
		c.GPULimit = d.GPULimit
	}
	if c.GPUCliqueLimit == 0 {
		c.GPUCliqueLimit = d.GPUCliqueLimit
	}
	if c.DenseEdgeFactor == 0 {
		c.DenseEdgeFactor = d.DenseEdgeFactor
	}
	if c.GPULimit > 64 {
		c.GPULimit = 64
	}
	return c
}

// Validate rejects threshold sets that would leave the router without a
// monotone size ladder.
func (c Crossover) Validate() error {
	c = c.WithDefaults()
	if c.SmallLimit < 1 || c.SmallLimit > c.CPUParallelLimit {
		return fmt.Errorf("backend: small_limit %d must be in [1, cpu_parallel_limit=%d]",
			c.SmallLimit, c.CPUParallelLimit)
	}
	if c.CPUParallelLimit > c.GPULimit {
		return fmt.Errorf("backend: cpu_parallel_limit %d exceeds gpu_limit %d",
			c.CPUParallelLimit, c.GPULimit)
	}
	if c.CliqueCPULimit < 1 || c.GPUCliqueLimit < c.CliqueCPULimit {
		return fmt.Errorf("backend: gpu_clique_limit %d must be >= clique_cpu_limit %d >= 1",
			c.GPUCliqueLimit, c.CliqueCPULimit)
	}
	if c.DenseEdgeFactor < 1 {
		return fmt.Errorf("backend: dense_edge_factor %g must be >= 1", c.DenseEdgeFactor)
	}
	return nil
}

// LoadCrossover reads a Crossover from a JSON file; absent fields keep the
// calibrated defaults. Unknown fields are rejected so a typo cannot
// silently fall back to defaults.
func LoadCrossover(path string) (Crossover, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Crossover{}, err
	}
	var c Crossover
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Crossover{}, fmt.Errorf("backend: %s: %w", path, err)
	}
	c = c.WithDefaults()
	if err := c.Validate(); err != nil {
		return Crossover{}, fmt.Errorf("backend: %s: %w", path, err)
	}
	return c, nil
}

// cpuPairsPerSec is the calibration constant for real per-pair evaluation
// throughput: candidate joins costed per second per core by the shared
// set evaluators (measured by BenchmarkCore on the tracked clique rows,
// rounded down; see BENCH_core.json).
const cpuPairsPerSec = 25e6

// DefaultCrossover returns the thresholds calibrated for the paper's
// GTX 1080 device model and a 5-second per-query compute budget.
func DefaultCrossover() Crossover {
	return Calibrate(gpusim.GTX1080(), 5*time.Second)
}

// Calibrate derives the crossover thresholds from the device's work model
// and a per-query compute budget, instead of hard-coding magic sizes:
//
//   - GPULimit: MPDP-GPU unranks the full C(n,k) candidate space at every
//     level — 2^n lattice points per run, the massively-parallel design of
//     §5 — so the largest exact-GPU query is where the modeled unrank +
//     filter time (6 warp-cycles per candidate) plus per-level overhead
//     (kernel launches + host↔device transfer) still fits the budget.
//   - GPUCliqueLimit: on cliques every subset is connected, so the 3^n
//     valid pairs are *costed for real* whatever the substrate; the cap is
//     where real evaluation at cpuPairsPerSec fits the budget.
//   - SmallLimit and CPUParallelLimit follow the paper's evaluation (12
//     and 25): below 12 sequential DPCCP wins outright, and 25 is the
//     paper's raised fall-back limit for the CPU-parallel enumerator.
//
// A faster device raises GPULimit; the budget raises both GPU caps.
func Calibrate(dev *gpusim.Device, budget time.Duration) Crossover {
	if dev == nil {
		dev = gpusim.GTX1080()
	}
	if budget <= 0 {
		budget = 5 * time.Second
	}
	budgetSec := budget.Seconds()

	// Warp instructions retired per second, and the per-level fixed cost:
	// the ~4 kernel launches of Algorithm 5 plus one host↔device round
	// trip.
	throughput := float64(dev.SMCount*dev.SchedulersPerSM) * dev.ClockGHz * 1e9
	levelOverheadSec := (4*dev.KernelLaunchUS + dev.LevelTransferUS) * 1e-6

	const unrankFilterCycles = 6 // unrank (2) + connectivity filter (4) per candidate

	gpuLimit := 0
	for n := 1; n <= 64; n++ {
		candidates := 1.0 // 2^n lattice points, accumulated to avoid overflow
		for i := 0; i < n; i++ {
			candidates *= 2
		}
		sec := candidates*unrankFilterCycles/float64(dev.WarpSize)/throughput +
			float64(n-1)*levelOverheadSec
		if sec > budgetSec {
			break
		}
		gpuLimit = n
	}
	if gpuLimit < 26 {
		gpuLimit = 26 // never below the CPU band, even on a toy device
	}

	gpuClique := 0
	for n, pairs := 1, 3.0; n <= 24; n, pairs = n+1, pairs*3 {
		if pairs/cpuPairsPerSec > budgetSec {
			break
		}
		gpuClique = n
	}
	if gpuClique < 15 {
		gpuClique = 15
	}

	return Crossover{
		SmallLimit:       12,
		CPUParallelLimit: 25,
		CliqueCPULimit:   14,
		GPULimit:         gpuLimit,
		GPUCliqueLimit:   gpuClique,
		DenseEdgeFactor:  4,
	}
}
