// Package wire holds the JSON wire form of an optimizer query: the one
// serialization both the public /v1 HTTP surface (internal/httpapi) and the
// cluster's socket transport (internal/cluster's HTTPTransport) put on the
// network. It lives in its own leaf package because httpapi depends on
// cluster (to adapt the coordinator as an Engine) while cluster's transport
// needs the same wire types — a shared leaf is what keeps the two
// serializations from drifting apart without an import cycle.
package wire

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/sql"
)

// Relation is one base relation of a structured wire query.
type Relation struct {
	Name string  `json:"name"`
	Rows float64 `json:"rows"`
	// Pages, when zero, is derived from Rows and Width the same way the
	// catalog does for SQL-bound queries.
	Pages   float64 `json:"pages,omitempty"`
	Width   int     `json:"width,omitempty"`
	PKIndex bool    `json:"pk_index,omitempty"`
}

// Edge is one join predicate of a structured wire query.
type Edge struct {
	A   int     `json:"a"`
	B   int     `json:"b"`
	Sel float64 `json:"sel"`
}

// Query is the JSON wire form of one optimization request: either a SQL
// statement in the internal dialect (bound against the server's schema) or
// an explicit catalog + join graph, which lets clients ship
// programmatically built queries with exact statistics.
type Query struct {
	SQL       string     `json:"sql,omitempty"`
	Relations []Relation `json:"relations,omitempty"`
	Edges     []Edge     `json:"edges,omitempty"`
}

// ToQuery materializes the wire query against schema. Structured queries
// (no SQL) never consult the schema, so a nil schema is valid for them.
func (wq *Query) ToQuery(schema sql.Schema) (*cost.Query, error) {
	if wq.SQL != "" {
		if len(wq.Relations) > 0 || len(wq.Edges) > 0 {
			return nil, fmt.Errorf("wire query carries both sql and relations")
		}
		bound, err := sql.Compile(wq.SQL, schema)
		if err != nil {
			return nil, err
		}
		return bound.Query, nil
	}
	n := len(wq.Relations)
	if n == 0 {
		return nil, fmt.Errorf("wire query has no sql and no relations")
	}
	var cat catalog.Catalog
	for i, r := range wq.Relations {
		if r.Name == "" {
			return nil, fmt.Errorf("relation %d has no name", i)
		}
		if r.Rows < 0 {
			return nil, fmt.Errorf("relation %q has negative rows", r.Name)
		}
		rel := catalog.Relation{
			Name: r.Name, Rows: r.Rows, Pages: r.Pages, Width: r.Width,
			HasPKIndex: r.PKIndex,
		}
		if rel.Pages == 0 {
			width := rel.Width
			if width == 0 {
				width = 100
			}
			derived := catalog.NewRelation(r.Name, r.Rows, width)
			derived.HasPKIndex = r.PKIndex
			rel = derived
			rel.Width = r.Width
		}
		cat.Add(rel)
	}
	g := graph.New(n)
	for _, e := range wq.Edges {
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n || e.A == e.B {
			return nil, fmt.Errorf("edge (%d,%d) out of range for %d relations", e.A, e.B, n)
		}
		if e.Sel <= 0 {
			return nil, fmt.Errorf("edge (%d,%d) has non-positive selectivity %g", e.A, e.B, e.Sel)
		}
		g.AddEdge(e.A, e.B, e.Sel)
	}
	return &cost.Query{Cat: cat, G: g}, nil
}

// FromQuery serializes a query into wire form. The round trip through
// ToQuery preserves every statistic bit-for-bit (Go's JSON float encoding
// is exact for float64), so fingerprints and plan costs survive the wire.
func FromQuery(q *cost.Query) *Query {
	wq := &Query{
		Relations: make([]Relation, q.N()),
		Edges:     make([]Edge, 0, len(q.G.Edges)),
	}
	for i, r := range q.Cat.Rels {
		wq.Relations[i] = Relation{
			Name: r.Name, Rows: r.Rows, Pages: r.Pages, Width: r.Width,
			PKIndex: r.HasPKIndex,
		}
	}
	for _, e := range q.G.Edges {
		wq.Edges = append(wq.Edges, Edge{A: e.A, B: e.B, Sel: e.Sel})
	}
	return wq
}
