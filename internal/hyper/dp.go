package hyper

import (
	"errors"

	"repro/internal/bitset"
	"repro/internal/plan"
)

// Input is one hypergraph optimization task.
type Input struct {
	H *Hypergraph
	// Rows[i] is the base cardinality of relation i.
	Rows []float64
	// LeafCost[i] is the access cost of relation i (optional; zero-valued
	// slices are accepted).
	LeafCost []float64
	// CostPerTuple prices join work per output tuple (default 0.01,
	// matching cost.DefaultModel's cpu_tuple_cost).
	CostPerTuple float64
}

// Stats carries the enumeration counters, mirroring dp.Stats.
type Stats struct {
	Evaluated     uint64
	CCP           uint64
	ConnectedSets uint64
}

// Errors returned by the hypergraph optimizer.
var (
	ErrTooLarge     = errors.New("hyper: at most 64 relations supported")
	ErrDisconnected = errors.New("hyper: hypergraph is disconnected")
)

// Optimize finds the optimal cross-product-free bushy join order of the
// hypergraph: the vertex-based DP over connected sets, with bipartitions
// validated against hyperedge coverage. Plans never split a hypernode
// across a join, which is how non-inner-join ordering constraints are
// honoured (the DPHyp property, [25]).
func Optimize(in Input) (*plan.Node, Stats, error) {
	var stats Stats
	h := in.H
	n := h.N
	if n > 64 {
		return nil, stats, ErrTooLarge
	}
	if n == 0 {
		return nil, stats, errors.New("hyper: empty hypergraph")
	}
	perTuple := in.CostPerTuple
	if perTuple == 0 {
		perTuple = 0.01
	}
	leafCost := func(i int) float64 {
		if in.LeafCost != nil {
			return in.LeafCost[i]
		}
		return 0
	}

	// Pre-size with a capped heuristic: only dense hypergraphs approach 2^n
	// connected sets, so the maps grow on demand past a few thousand buckets
	// (mirrors plan.NewMemo).
	memo := make(map[bitset.Mask]*plan.Node, plan.TableSizeHint(n))
	rows := make(map[bitset.Mask]float64, plan.TableSizeHint(n))
	for i := 0; i < n; i++ {
		s := bitset.Single(i)
		memo[s] = &plan.Node{Set: s, RelID: i, Rows: in.Rows[i], Cost: leafCost(i)}
		rows[s] = in.Rows[i]
		stats.ConnectedSets++
	}

	full := bitset.Full(n)
	// Subset-order enumeration: every subset s is visited after all its
	// proper subsets, so memo entries for both sides of a bipartition are
	// final when s is processed.
	for s := bitset.Mask(1); !s.Empty(); s = s.NextSubset(full) {
		if s.Count() < 2 || !h.Connected(s) {
			continue
		}
		stats.ConnectedSets++
		var best *plan.Node
		for lb := s.LowestBit(); !lb.Empty(); lb = lb.NextSubset(s) {
			rb := s.Diff(lb)
			if rb.Empty() {
				continue
			}
			stats.Evaluated++
			l, okL := memo[lb]
			r, okR := memo[rb]
			if !okL || !okR {
				continue // a side is not connected
			}
			if !crossesEdge(h, lb, rb) {
				continue // no applicable hyperedge: would be a cross product
			}
			stats.CCP++
			outRows := l.Rows * r.Rows * h.SelBetween(lb, rb)
			cost := l.Cost + r.Cost + outRows*perTuple
			if best == nil || cost < best.Cost {
				best = &plan.Node{
					Set: s, Left: l, Right: r, Op: plan.OpHashJoin,
					Rows: outRows, Cost: cost,
				}
			}
		}
		if best != nil {
			memo[s] = best
		}
	}

	root, ok := memo[full]
	if !ok {
		return nil, stats, ErrDisconnected
	}
	return root, stats, nil
}

// crossesEdge reports whether any hyperedge is applicable across (a, b).
func crossesEdge(h *Hypergraph, a, b bitset.Mask) bool {
	for _, e := range h.Edges {
		if e.connects(a, b) {
			return true
		}
	}
	return false
}
