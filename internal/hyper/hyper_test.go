package hyper

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/graph"
)

func TestConnectedHyperSemantics(t *testing.T) {
	// 0-1 simple edge, ({0,1}) -> {2} hyperedge.
	h := New(4)
	if err := h.AddSimpleEdge(0, 1, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := h.AddEdge(bitset.MaskOf(0, 1), bitset.MaskOf(2), 0.5); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		s    bitset.Mask
		want bool
	}{
		{bitset.MaskOf(0, 1), true},
		{bitset.MaskOf(0, 1, 2), true},
		{bitset.MaskOf(0, 2), false}, // hyperedge needs both 0 AND 1
		{bitset.MaskOf(1, 2), false},
		{bitset.MaskOf(2), true}, // singleton
		{bitset.MaskOf(0, 1, 2, 3), false},
	}
	for _, c := range cases {
		if got := h.Connected(c.s); got != c.want {
			t.Errorf("Connected(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestAddEdgeValidation(t *testing.T) {
	h := New(3)
	if err := h.AddEdge(bitset.MaskOf(0), bitset.MaskOf(0, 1), 1); err == nil {
		t.Error("overlapping sides accepted")
	}
	if err := h.AddEdge(bitset.Mask(0), bitset.MaskOf(1), 1); err == nil {
		t.Error("empty side accepted")
	}
	if err := h.AddEdge(bitset.MaskOf(5), bitset.MaskOf(1), 1); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

// TestSimpleEdgesMatchBinaryDP: with only binary edges and a flat cost
// function, the hypergraph optimizer must produce the same optimal output
// cardinalities as the binary-graph DP family.
func TestSimpleEdgesMatchBinaryDP(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(7)
		g := graph.RandomConnected(n, rng.Intn(n), rng)
		h := New(n)
		q := &cost.Query{G: graph.New(n)}
		rowsVec := make([]float64, n)
		for i := 0; i < n; i++ {
			rowsVec[i] = math.Pow(10, 1+3*rng.Float64())
			q.Cat.Add(catalog.Relation{Name: "r", Rows: rowsVec[i], Pages: 1})
		}
		for _, e := range g.Edges {
			sel := math.Pow(10, -1-2*rng.Float64())
			if err := h.AddSimpleEdge(e.A, e.B, sel); err != nil {
				t.Fatal(err)
			}
			q.G.AddEdge(e.A, e.B, sel)
		}
		hp, hStats, err := Optimize(Input{H: h, Rows: rowsVec})
		if err != nil {
			t.Fatal(err)
		}
		// Cout-style flat model on the binary side for comparability.
		m := &cost.Model{SeqPageCost: 0, CPUTupleCost: 0.01,
			CPUOperatorCost: 0, CPUIndexTupleCost: 0,
			DisableNestLoop: true, DisableMerge: true}
		bp, bStats, err := dp.MPDPGeneral(dp.Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hp.Rows-bp.Rows) > 1e-6*math.Max(1, bp.Rows) {
			t.Errorf("trial %d: output rows differ: %v vs %v", trial, hp.Rows, bp.Rows)
		}
		if hStats.CCP != bStats.CCP {
			t.Errorf("trial %d: hyper CCP=%d, binary CCP=%d", trial, hStats.CCP, bStats.CCP)
		}
		// Hash-only flat model: costs are comparable up to the scan terms.
		if hp.Cost <= 0 || bp.Cost <= 0 {
			t.Errorf("trial %d: nonpositive costs", trial)
		}
	}
}

// TestHyperedgeForcesGrouping: an ({a,b} -> {c}) hyperedge must prevent any
// plan from joining c before a and b are joined together.
func TestHyperedgeForcesGrouping(t *testing.T) {
	h := New(3)
	if err := h.AddSimpleEdge(0, 1, 1e-3); err != nil {
		t.Fatal(err)
	}
	if err := h.AddEdge(bitset.MaskOf(0, 1), bitset.MaskOf(2), 1e-2); err != nil {
		t.Fatal(err)
	}
	p, stats, err := Optimize(Input{H: h, Rows: []float64{100, 200, 300}})
	if err != nil {
		t.Fatal(err)
	}
	// The only valid shape is (0 ⋈ 1) ⋈ 2 (in some orientation).
	if p.Left.Set != bitset.MaskOf(0, 1) && p.Right.Set != bitset.MaskOf(0, 1) {
		t.Errorf("hyperedge constraint violated: %v", p)
	}
	// Exactly the bipartitions ({0},{1}) ×2 orientations... the DP counts
	// unordered lb enumeration: ({0,1} vs {2}) and ({0} vs {1}) both ways.
	if stats.CCP == 0 {
		t.Error("no valid pairs counted")
	}
}

// bruteForceHyper enumerates all bushy trees recursively.
func bruteForceHyper(h *Hypergraph, rows []float64) float64 {
	n := h.N
	var best func(s bitset.Mask) (float64, float64, bool) // cost, rows, ok
	memo := map[bitset.Mask][3]float64{}
	best = func(s bitset.Mask) (float64, float64, bool) {
		if v, ok := memo[s]; ok {
			return v[0], v[1], v[2] == 1
		}
		if s.Count() == 1 {
			return 0, rows[s.Lowest()], true
		}
		bc, br, found := math.Inf(1), 0.0, false
		for lb := s.LowestBit(); !lb.Empty(); lb = lb.NextSubset(s) {
			rb := s.Diff(lb)
			if rb.Empty() || !crossesEdge(h, lb, rb) {
				continue
			}
			lc, lr, okL := best(lb)
			rc, rr, okR := best(rb)
			if !okL || !okR {
				continue
			}
			out := lr * rr * h.SelBetween(lb, rb)
			c := lc + rc + out*0.01
			if c < bc {
				bc, br, found = c, out, true
			}
		}
		flag := 0.0
		if found {
			flag = 1
		}
		memo[s] = [3]float64{bc, br, flag}
		return bc, br, found
	}
	c, _, ok := best(bitset.Full(n))
	if !ok {
		return math.Inf(1)
	}
	return c
}

func TestOptimizeMatchesBruteForceOnRandomHypergraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(5)
		h := New(n)
		rows := make([]float64, n)
		for i := range rows {
			rows[i] = math.Pow(10, 1+2*rng.Float64())
		}
		// Random spanning tree of simple edges for connectivity...
		for v := 1; v < n; v++ {
			if err := h.AddSimpleEdge(rng.Intn(v), v, math.Pow(10, -1-rng.Float64())); err != nil {
				t.Fatal(err)
			}
		}
		// ...plus a couple of true hyperedges.
		for e := 0; e < rng.Intn(3); e++ {
			l := bitset.Mask(rng.Uint64()) & bitset.Full(n)
			r := bitset.Mask(rng.Uint64()) & bitset.Full(n) &^ l
			if l.Empty() || r.Empty() {
				continue
			}
			if err := h.AddEdge(l, r, math.Pow(10, -rng.Float64())); err != nil {
				t.Fatal(err)
			}
		}
		want := bruteForceHyper(h, rows)
		p, _, err := Optimize(Input{H: h, Rows: rows})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Cost-want) > 1e-9*math.Max(1, want) {
			t.Errorf("trial %d: cost %v, brute force %v", trial, p.Cost, want)
		}
	}
}

func TestDisconnectedHypergraph(t *testing.T) {
	h := New(4)
	if err := h.AddSimpleEdge(0, 1, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Optimize(Input{H: h, Rows: []float64{1, 2, 3, 4}}); err != ErrDisconnected {
		t.Errorf("got %v, want ErrDisconnected", err)
	}
}
