// Package hyper extends join-order optimization to hypergraphs, the
// generalization the paper names as future work (§6): non-inner joins
// (outer, anti, semi) induce predicates that reference more than two
// relations and are modeled as hyperedges between *sets* of relations, as
// in Moerkotte & Neumann's DPHyp [25].
//
// The enumerator here is the vertex-based scheme the paper's MPDP builds
// on, lifted to hypergraphs: connected sets are enumerated by size and each
// set's bipartitions are validated against hyperedge connectivity. An
// (L, R) hyperedge is applicable to a bipartition only when one side fully
// covers L and the other fully covers R — exactly the "hypernodes must not
// be split" rule that encodes non-reorderable joins.
package hyper

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
)

// Edge is an undirected hyperedge between two disjoint hypernodes. Simple
// binary join predicates have |L| = |R| = 1.
type Edge struct {
	L, R bitset.Mask
	Sel  float64
}

// Hypergraph is a join hypergraph over relations 0..N-1.
type Hypergraph struct {
	N     int
	Edges []Edge
}

// New returns an empty hypergraph on n relations.
func New(n int) *Hypergraph {
	return &Hypergraph{N: n}
}

// AddEdge inserts the hyperedge (l, r) with the given selectivity.
func (h *Hypergraph) AddEdge(l, r bitset.Mask, sel float64) error {
	if l.Empty() || r.Empty() {
		return errors.New("hyper: hyperedge sides must be non-empty")
	}
	if !l.Disjoint(r) {
		return errors.New("hyper: hyperedge sides must be disjoint")
	}
	full := bitset.Full(h.N)
	if !l.SubsetOf(full) || !r.SubsetOf(full) {
		return fmt.Errorf("hyper: hyperedge exceeds %d relations", h.N)
	}
	h.Edges = append(h.Edges, Edge{L: l, R: r, Sel: sel})
	return nil
}

// AddSimpleEdge inserts a plain binary join edge.
func (h *Hypergraph) AddSimpleEdge(a, b int, sel float64) error {
	return h.AddEdge(bitset.Single(a), bitset.Single(b), sel)
}

// connects reports whether e links the two sides of a bipartition: one side
// covers L entirely and the other covers R entirely.
func (e Edge) connects(a, b bitset.Mask) bool {
	return (e.L.SubsetOf(a) && e.R.SubsetOf(b)) || (e.L.SubsetOf(b) && e.R.SubsetOf(a))
}

// Connected reports whether s is connected under hyperedge semantics: a
// hyperedge can merge two components only when each side lies entirely
// within (the union of) components and within s.
func (h *Hypergraph) Connected(s bitset.Mask) bool {
	if s.Count() <= 1 {
		return true
	}
	// Iteratively grow from the lowest vertex: an edge (L, R) with
	// L ⊆ reach and R ⊆ s extends reach by R (and symmetrically).
	reach := s.LowestBit()
	for {
		grown := false
		for _, e := range h.Edges {
			if !e.L.SubsetOf(s) || !e.R.SubsetOf(s) {
				continue
			}
			if e.L.SubsetOf(reach) && !e.R.SubsetOf(reach) {
				reach = reach.Union(e.R)
				grown = true
			} else if e.R.SubsetOf(reach) && !e.L.SubsetOf(reach) {
				reach = reach.Union(e.L)
				grown = true
			}
		}
		if reach == s {
			return true
		}
		if !grown {
			return false
		}
	}
}

// SelBetween returns the product of selectivities of hyperedges applicable
// across the bipartition (a, b).
func (h *Hypergraph) SelBetween(a, b bitset.Mask) float64 {
	sel := 1.0
	for _, e := range h.Edges {
		if e.connects(a, b) {
			sel *= e.Sel
		}
	}
	return sel
}
