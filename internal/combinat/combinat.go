// Package combinat implements the combinatorial number system used by the
// vertex-based enumerators (DPSub, MPDP) to map a dense rank in
// [0, C(n,k)) to the rank-th k-subset of an n-element universe and back.
//
// The GPU workflow of the paper (§5, "Unrank") assigns each device thread a
// rank and lets it materialize its own subset with no coordination; the same
// scheme drives the level-synchronous CPU-parallel variants here.
package combinat

import "repro/internal/bitset"

// MaxN is the largest universe size supported by the precomputed binomial
// table. 64 covers every Mask-width query the exact optimizers accept.
const MaxN = 64

// binom[n][k] = C(n, k), saturated at the largest uint64 to avoid overflow
// in the unreachable upper-right corner of the table.
var binom [MaxN + 1][MaxN + 1]uint64

func init() {
	for n := 0; n <= MaxN; n++ {
		binom[n][0] = 1
		for k := 1; k <= n; k++ {
			sum := binom[n-1][k-1] + binom[n-1][k]
			if sum < binom[n-1][k-1] { // overflow: saturate
				sum = ^uint64(0)
			}
			binom[n][k] = sum
		}
	}
}

// Binomial returns C(n, k) for 0 <= n <= MaxN. Out-of-range k yields 0.
func Binomial(n, k int) uint64 {
	if k < 0 || k > n || n > MaxN {
		return 0
	}
	return binom[n][k]
}

// Unrank returns the rank-th k-subset of {0, ..., n-1} in colexicographic
// order as a Mask. rank must be in [0, C(n,k)).
//
// Colexicographic unranking proceeds from the largest candidate element
// downward: element c is included iff rank >= C(c, remaining), mirroring the
// combinadic decomposition rank = C(c_k, k) + C(c_{k-1}, k-1) + ... + C(c_1, 1).
func Unrank(rank uint64, n, k int) bitset.Mask {
	var m bitset.Mask
	c := n - 1
	for i := k; i >= 1; i-- {
		for Binomial(c, i) > rank {
			c--
		}
		m = m.Add(c)
		rank -= Binomial(c, i)
		c--
	}
	return m
}

// Rank is the inverse of Unrank: it returns the colexicographic rank of the
// k-subset m (with k = m.Count()) among the k-subsets of any sufficiently
// large universe.
func Rank(m bitset.Mask) uint64 {
	var rank uint64
	i := 1
	m.ForEach(func(c int) {
		rank += Binomial(c, i)
		i++
	})
	return rank
}

// NextCombination returns the colexicographically next k-subset after m
// using Gosper's hack, or 0 when m is the last k-subset representable in 64
// bits. It allows cheap sequential iteration without repeated unranking.
func NextCombination(m bitset.Mask) bitset.Mask {
	if m == 0 {
		return 0
	}
	u := uint64(m)
	c := u & (^u + 1)
	r := u + c
	if r == 0 {
		return 0
	}
	return bitset.Mask(((r ^ u) >> 2 / c) | r)
}
