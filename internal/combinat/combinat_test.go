package combinat

import (
	"testing"

	"repro/internal/bitset"
)

func TestBinomialSmallValues(t *testing.T) {
	cases := []struct {
		n, k int
		want uint64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {30, 15, 155117520},
		{5, 6, 0}, {3, -1, 0}, {65, 2, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascalIdentity(t *testing.T) {
	for n := 2; n <= 40; n++ {
		for k := 1; k < n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at (%d, %d)", n, k)
			}
		}
	}
}

func TestUnrankCoversAllSubsetsExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{5, 2}, {8, 3}, {10, 5}, {12, 1}, {6, 6}} {
		seen := map[bitset.Mask]bool{}
		total := Binomial(tc.n, tc.k)
		for r := uint64(0); r < total; r++ {
			m := Unrank(r, tc.n, tc.k)
			if m.Count() != tc.k {
				t.Fatalf("Unrank(%d, %d, %d) has %d bits", r, tc.n, tc.k, m.Count())
			}
			if !m.SubsetOf(bitset.Full(tc.n)) {
				t.Fatalf("Unrank escaped the universe: %v", m)
			}
			if seen[m] {
				t.Fatalf("duplicate subset %v at rank %d", m, r)
			}
			seen[m] = true
		}
		if uint64(len(seen)) != total {
			t.Fatalf("(%d choose %d): got %d distinct subsets, want %d", tc.n, tc.k, len(seen), total)
		}
	}
}

func TestRankIsInverseOfUnrank(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{7, 3}, {10, 4}, {15, 2}} {
		total := Binomial(tc.n, tc.k)
		for r := uint64(0); r < total; r++ {
			if got := Rank(Unrank(r, tc.n, tc.k)); got != r {
				t.Fatalf("Rank(Unrank(%d)) = %d", r, got)
			}
		}
	}
}

func TestUnrankColexOrder(t *testing.T) {
	// Colexicographic order: ranks increase with the numeric value of the
	// mask for fixed k.
	prev := bitset.Mask(0)
	for r := uint64(0); r < Binomial(9, 4); r++ {
		m := Unrank(r, 9, 4)
		if r > 0 && uint64(m) <= uint64(prev) {
			t.Fatalf("not colex-ordered at rank %d: %v after %v", r, m, prev)
		}
		prev = m
	}
}

func TestNextCombinationMatchesUnrank(t *testing.T) {
	n, k := 10, 4
	m := Unrank(0, n, k)
	for r := uint64(1); r < Binomial(n, k); r++ {
		m = NextCombination(m)
		if want := Unrank(r, n, k); m != want {
			t.Fatalf("NextCombination at rank %d: %v, want %v", r, m, want)
		}
	}
}
