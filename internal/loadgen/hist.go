package loadgen

import "repro/internal/obs"

// Hist is the shared log-linear latency histogram, promoted to
// internal/obs so the serving path and the cluster rollup can record into
// the same mergeable structure the load generator measures with. The alias
// keeps loadgen's published API (Result.Hist and its methods) unchanged.
type Hist = obs.Histogram
