package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a lock-free HDR-style log-linear latency histogram: each
// power-of-two octave of nanoseconds is split into 16 linear sub-buckets,
// bounding the relative quantile error at 1/16 (6.25%) across the full
// nanosecond-to-hours range in ~1KB of counters. Record is a single atomic
// add, cheap enough to sit on the load generator's completion path without
// perturbing the measurement.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
}

const (
	subBits  = 4
	subCount = 1 << subBits // linear sub-buckets per octave
	// 16 exact buckets below 2^4, then 16 per octave up to 2^63.
	histBuckets = subCount + (63-subBits)*subCount
)

// bucketIdx maps a nanosecond value to its bucket.
func bucketIdx(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // octave: 2^k <= v < 2^(k+1), k >= subBits
	sub := int(v>>(uint(k)-subBits)) - subCount
	idx := subCount + (k-subBits)*subCount + sub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket idx; together with
// the next bucket's low bound it brackets every recorded value.
func bucketLow(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	rem := idx - subCount
	k := rem/subCount + subBits
	sub := rem % subCount
	return int64(subCount+sub) << (uint(k) - subBits)
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	v := d.Nanoseconds()
	h.counts[bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Max returns the largest observation, exactly.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of all observations.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the latency at quantile q in [0,1]: the upper bound of
// the bucket holding the q-th observation (conservative — a reported p99
// is never below the true p99 by more than the 6.25% bucket width). The
// top quantile is clamped to the exact recorded max.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := uint64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			hi := h.max.Load()
			if i+1 < histBuckets {
				if b := bucketLow(i+1) - 1; b < hi {
					hi = b
				}
			}
			return time.Duration(hi)
		}
	}
	return time.Duration(h.max.Load())
}
