// Package loadgen is the honest load harness for the serving layer: an
// open-loop Poisson arrival generator with Zipf-skewed query popularity and
// a configurable cold/warm/isomorphic-twin mix, measuring per-request
// latency from the *scheduled* send time so queueing inside the harness
// cannot hide server-side delay (no coordinated omission — a closed-loop
// driver stops sending when the server slows down, which is exactly how the
// old benchmark reported a flat 4.6k req/s and a 1.0 hit ratio at every
// node count).
//
// The generator offers requests at a fixed rate regardless of how the
// target responds; the target either serves them, sheds them with
// service.ErrOverloaded (counted separately — shedding fast is the
// behaviour under test), or lets them time out. BenchmarkClusterLoad in the
// repo root sweeps the offered rate across topologies to find each knee and
// emits BENCH_load.json.
package loadgen

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/service"
	"repro/internal/workload"
)

// Target is the system under test: cluster.Optimize or service.Optimize
// wrapped to discard the answer. It must be safe for concurrent use.
type Target func(ctx context.Context, q *cost.Query) error

// Config tunes one load run. Rate and Duration are required.
type Config struct {
	// Rate is the offered arrival rate in requests per second. Arrivals
	// are Poisson: exponential inter-arrival gaps with mean 1/Rate.
	Rate float64
	// Duration is how long to offer load.
	Duration time.Duration
	// Pool is the warm working set, in popularity order: Zipf rank 0 is
	// the most popular query. Empty pools are invalid.
	Pool []*cost.Query
	// ZipfS is the Zipf skew exponent (must be > 1; 0: 1.2). Higher skews
	// concentrate more of the traffic on the head of the pool.
	ZipfS float64
	// ColdFrac is the fraction of requests carrying a never-seen-before
	// query — guaranteed cache misses that keep the optimizer itself, not
	// just its cache, in the measurement.
	ColdFrac float64
	// TwinFrac is the fraction of requests carrying an isomorphic
	// permutation of a pool query: a different wire query that canonical
	// fingerprinting must collapse onto the same cache entry.
	TwinFrac float64
	// ColdSize is the relation count of generated cold queries (0: 12).
	ColdSize int
	// Timeout is the per-request deadline (0: 2s). It also feeds the
	// service's deadline-aware shedder.
	Timeout time.Duration
	// MaxInFlight bounds the harness's concurrent requests (0: 4096). An
	// open-loop generator must not itself collapse under the backlog it
	// creates; arrivals past the bound are dropped and counted, never
	// silently skipped.
	MaxInFlight int
	// Seed makes the arrival schedule and query mix deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ColdSize == 0 {
		c.ColdSize = 12
	}
	if c.Timeout == 0 {
		c.Timeout = 2 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4096
	}
	return c
}

// Result is one run's measurement.
type Result struct {
	// Offered counts scheduled arrivals; Dropped counts those the harness
	// could not launch because MaxInFlight was exhausted (harness
	// saturation, not server behaviour — a non-zero value taints the run).
	Offered int
	Dropped int
	// OK counts served requests; their latencies are in Hist.
	OK int
	// Shed counts requests the server rejected with ErrOverloaded
	// (mapped to 429/503 on the wire) — fast failures, the degradation
	// mode admission control buys.
	Shed int
	// Timeout counts requests that hit the per-request deadline; Errors
	// counts everything else.
	Timeout int
	Errors  int
	// Cold/Twin/Replay count the query mix actually sent.
	Cold   int
	Twin   int
	Replay int
	// Hist holds served-request latency measured from the scheduled send
	// time: queue delay inside the harness counts against the server, as
	// it would for a real client.
	Hist *Hist
	// Elapsed is the wall-clock span from first scheduled arrival to last
	// completion; AchievedRate is OK/Elapsed in req/s.
	Elapsed      time.Duration
	AchievedRate float64
}

// Run offers cfg.Rate req/s against target for cfg.Duration and reports
// what came back. It blocks until every launched request completes.
func Run(ctx context.Context, target Target, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Pool)-1))

	res := &Result{Hist: &Hist{}}
	var ok, shed, timeouts, errs atomic.Int64
	var wg sync.WaitGroup
	inflight := make(chan struct{}, cfg.MaxInFlight)

	//mpdpvet:ignore openloop the one schedule anchor: all arrival times are offsets from it
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	scheduled := start
	coldSeq := cfg.Seed + 1e9 // cold-query seeds never collide with pool seeds
	for scheduled.Before(deadline) {
		if ctx.Err() != nil {
			break
		}
		// Pick the query on the generator goroutine so the mix is
		// deterministic per seed regardless of completion order.
		var q *cost.Query
		switch r := rng.Float64(); {
		case r < cfg.ColdFrac:
			coldSeq++
			q = workload.MusicBrainzQuery(cfg.ColdSize, rand.New(rand.NewSource(coldSeq)))
			res.Cold++
		case r < cfg.ColdFrac+cfg.TwinFrac:
			base := cfg.Pool[zipf.Uint64()]
			q = workload.PermuteQuery(base, rng.Perm(base.N()))
			res.Twin++
		default:
			q = cfg.Pool[zipf.Uint64()]
			res.Replay++
		}
		res.Offered++

		if wait := time.Until(scheduled); wait > 0 {
			time.Sleep(wait)
		}
		select {
		case inflight <- struct{}{}:
			wg.Add(1)
			go func(q *cost.Query, scheduled time.Time) {
				defer wg.Done()
				defer func() { <-inflight }()
				rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
				err := target(rctx, q)
				cancel()
				switch {
				case err == nil:
					res.Hist.Record(time.Since(scheduled))
					ok.Add(1)
				case errors.Is(err, service.ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					timeouts.Add(1)
				default:
					errs.Add(1)
				}
			}(q, scheduled)
		default:
			res.Dropped++
		}
		// Next Poisson arrival: exponential gap with mean 1/Rate, anchored
		// to the schedule (not to time.Now()) so a slow server cannot slow
		// the offered rate down — the open-loop property.
		gap := time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		scheduled = scheduled.Add(gap)
	}
	wg.Wait()

	res.OK = int(ok.Load())
	res.Shed = int(shed.Load())
	res.Timeout = int(timeouts.Load())
	res.Errors = int(errs.Load())
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.AchievedRate = float64(res.OK) / res.Elapsed.Seconds()
	}
	return res
}

// NewPool generates a popularity-ordered working set of size MusicBrainz
// random-walk queries with relation counts cycling through sizes,
// deterministically per seed.
func NewPool(size int, sizes []int, seed int64) []*cost.Query {
	if len(sizes) == 0 {
		sizes = []int{8, 10, 12, 14}
	}
	pool := make([]*cost.Query, size)
	for i := range pool {
		n := sizes[i%len(sizes)]
		pool[i] = workload.MusicBrainzQuery(n, rand.New(rand.NewSource(seed+int64(i))))
	}
	return pool
}
