package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/service"
)

func TestRunMixAndDeterminism(t *testing.T) {
	pool := NewPool(16, nil, 42)
	served := func(ctx context.Context, q *cost.Query) error { return nil }
	cfg := Config{
		Rate:     2000,
		Duration: 250 * time.Millisecond,
		Pool:     pool,
		ColdFrac: 0.1,
		TwinFrac: 0.2,
		Seed:     7,
	}
	res := Run(context.Background(), served, cfg)
	if res.Offered < 300 {
		t.Fatalf("offered only %d requests at 2000/s over 250ms", res.Offered)
	}
	if res.OK != res.Offered-res.Dropped {
		t.Fatalf("OK %d != offered %d - dropped %d", res.OK, res.Offered, res.Dropped)
	}
	total := res.Cold + res.Twin + res.Replay
	if total != res.Offered {
		t.Fatalf("mix %d+%d+%d != offered %d", res.Cold, res.Twin, res.Replay, res.Offered)
	}
	// The mix fractions are Bernoulli draws; with 300+ samples a 2x band
	// around the configured fractions is loose enough to never flake.
	if f := float64(res.Cold) / float64(total); f < 0.03 || f > 0.25 {
		t.Errorf("cold fraction %.3f far from configured 0.10", f)
	}
	if f := float64(res.Twin) / float64(total); f < 0.08 || f > 0.40 {
		t.Errorf("twin fraction %.3f far from configured 0.20", f)
	}
	// Same seed, same schedule: the offered count and mix must reproduce.
	res2 := Run(context.Background(), served, cfg)
	if res2.Offered != res.Offered || res2.Cold != res.Cold || res2.Twin != res.Twin {
		t.Errorf("same seed diverged: offered %d/%d cold %d/%d twin %d/%d",
			res.Offered, res2.Offered, res.Cold, res2.Cold, res.Twin, res2.Twin)
	}
}

func TestRunCountsShedsSeparately(t *testing.T) {
	pool := NewPool(4, nil, 42)
	n := 0
	target := func(ctx context.Context, q *cost.Query) error {
		n++
		if n%2 == 0 {
			return service.ErrOverloaded
		}
		return nil
	}
	// MaxInFlight 1 serializes the target so the closure needs no lock.
	res := Run(context.Background(), target, Config{
		Rate: 500, Duration: 100 * time.Millisecond, Pool: pool,
		MaxInFlight: 1, Seed: 3,
	})
	if res.Shed == 0 {
		t.Fatalf("no sheds recorded: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("sheds leaked into errors: %+v", res)
	}
	if got := uint64(res.OK); res.Hist.Count() != got {
		t.Fatalf("hist holds %d samples, want OK=%d (sheds must stay out)", res.Hist.Count(), got)
	}
}

func TestRunStaysOpenLoop(t *testing.T) {
	// A closed-loop driver offers fewer requests when the target stalls —
	// that is the coordinated-omission failure the harness exists to
	// avoid. The offered count must track rate*duration regardless of the
	// target: here every request parks until its 50ms deadline.
	pool := NewPool(2, nil, 42)
	stall := func(ctx context.Context, q *cost.Query) error {
		<-ctx.Done()
		return ctx.Err()
	}
	res := Run(context.Background(), stall, Config{
		Rate: 1000, Duration: 200 * time.Millisecond, Pool: pool,
		Timeout: 50 * time.Millisecond, Seed: 9,
	})
	// Poisson noise on ~200 arrivals is ~±30; anything above 120 proves
	// the generator did not slow down with the target.
	if res.Offered < 120 {
		t.Fatalf("offered %d of ~200 expected: generator slowed with the target (closed-loop behaviour)", res.Offered)
	}
	if res.Timeout+res.Dropped != res.Offered {
		t.Fatalf("stalled target: want all %d offered as timeouts(%d)+dropped(%d)",
			res.Offered, res.Timeout, res.Dropped)
	}
	if res.Hist.Count() != 0 {
		t.Fatalf("no request succeeded but hist holds %d samples", res.Hist.Count())
	}
}
