// Package parallel implements the multi-core CPU optimizers compared in the
// paper: PDP (parallel DPSize, Han et al. [10]), DPE (dependency-aware
// producer/consumer parallel DPCCP, Han & Lee [11]) and the level-synchronous
// CPU-parallel MPDP. Their scalability characteristics differ exactly as in
// Fig. 12: MPDP parallelizes both enumeration and costing, while DPE's
// enumeration is sequential and only join costing runs on the workers.
package parallel

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/dp"
	"repro/internal/plan"
)

// threads resolves the requested worker count.
func threads(in dp.Input) int {
	t := in.Threads
	if t <= 0 {
		t = runtime.GOMAXPROCS(0)
	}
	return t
}

// MPDP is the CPU-parallel MPDP: within each DP level, the connected sets of
// that size are work-stolen by the workers, each evaluating its sets
// independently (block discovery, block-level CCP enumeration, grow, and
// costing all run inside the worker — the whole inner loop is parallel).
// The per-level barrier mirrors the GPU kernel-per-level structure of §5.
// Tree join graphs dispatch to the Algorithm 2 evaluator, like dp.MPDP.
func MPDP(in dp.Input) (*plan.Node, dp.Stats, error) {
	if in.Q.G.IsTree() {
		return levelParallel(in, dp.EvaluateSetMPDPTree)
	}
	return levelParallel(in, dp.EvaluateSetMPDP)
}

// winnerSlots is the lock-free merge target of one DP level, replacing the
// old per-worker result slices funneled through a sequential merge. Each
// level set has one slot: a packed (cost, candidate index) word updated by
// atomic compare-and-swap, mirroring the atomic-min scatter of the paper's
// §5 GPU kernels. Winner payloads live in a shared array indexed by a
// ticket counter, so any number of producers may race on one slot and the
// slot deterministically converges to the (lowest-cost, lowest-ticket)
// candidate; under the set-exclusive work stealing of levelParallel each
// slot sees exactly one producer and every CAS succeeds first try.
type winnerSlots struct {
	packed []atomic.Uint64
	cands  []dp.Winner
	next   atomic.Int64 // ticket allocator for cands
}

const (
	// Packed word layout: cost (top slotCostBits, monotone float encoding,
	// mantissa-truncated) | candidate ticket (low slotIdxBits). Truncation
	// can only influence the winner when two racing candidates agree on
	// the top 26 mantissa bits (relative gap < 2^-26), in which case the
	// lower ticket wins — deterministic either way.
	slotIdxBits  = 26 // covers dp's connected-set cap (64 Mi sets)
	slotIdxMask  = 1<<slotIdxBits - 1
	slotCostMask = ^uint64(slotIdxMask)
	slotEmpty    = ^uint64(0)
)

// packCost maps a non-negative cost to monotone bits, truncated to the
// packed word's cost field. Plan costs are finite and non-negative, where
// IEEE-754 bit patterns order like the floats themselves.
//
//mpdp:hotpath
func packCost(cost float64) uint64 {
	return math.Float64bits(cost) & slotCostMask
}

func newWinnerSlots(capacity int) *winnerSlots {
	// The enumeration layer caps a run at 64 Mi connected sets
	// (dp's maxConnectedSets), so a level can never outgrow the ticket
	// field; enforce that locally so an overflow is a loud failure instead
	// of a silently corrupted packed word.
	if capacity > slotIdxMask+1 {
		panic("parallel: DP level exceeds the packed winner-slot ticket space")
	}
	return &winnerSlots{
		packed: make([]atomic.Uint64, capacity),
		cands:  make([]dp.Winner, capacity),
	}
}

// reset prepares n slots for the next level.
//
//mpdp:hotpath
func (ws *winnerSlots) reset(n int) {
	for i := 0; i < n; i++ {
		ws.packed[i].Store(slotEmpty)
	}
	ws.next.Store(0)
}

// offer merges w into slot i: allocate a ticket, publish the payload, then
// CAS the packed (cost, ticket) word down to the minimum.
//
//mpdp:hotpath
func (ws *winnerSlots) offer(i int, w dp.Winner) {
	t := ws.next.Add(1) - 1
	ws.cands[t] = w
	word := packCost(w.Cost) | uint64(t)
	for {
		cur := ws.packed[i].Load()
		if cur != slotEmpty && cur <= word {
			return
		}
		if ws.packed[i].CompareAndSwap(cur, word) {
			return
		}
	}
}

// take returns slot i's winning candidate, if any.
//
//mpdp:hotpath
func (ws *winnerSlots) take(i int) (dp.Winner, bool) {
	cur := ws.packed[i].Load()
	if cur == slotEmpty {
		return dp.Winner{}, false
	}
	return ws.cands[cur&slotIdxMask], true
}

// levelParallel is the shared level-synchronous driver: evaluate is invoked
// for every connected set of each size, in parallel within the level. Sets
// are work-stolen (per-set cost varies wildly with block structure), each
// worker reuses its own evaluator scratch for the whole run, and winners
// merge through the packed-CAS slots — no per-level result buffers, no
// funnel, no plan nodes until Finish.
func levelParallel(in dp.Input, evaluate dp.SetEvaluator) (*plan.Node, dp.Stats, error) {
	var stats dp.Stats
	prep, err := dp.Prepare(in)
	if err != nil {
		return nil, stats, err
	}
	nWorkers := threads(in)
	buckets, err := dp.ConnectedBuckets(in)
	if err != nil {
		return nil, stats, err
	}
	tab := prep.Seed(dp.BucketCount(buckets))
	stats.ConnectedSets = uint64(in.Q.N())
	if in.Warm != nil {
		// Warm-start runs before any worker starts: the seeded winners are
		// plain table writes, published to the workers by the goroutine
		// creation below (same happens-before edge the base seeds use).
		stats.WarmSeeded = uint64(in.Warm(tab, buckets))
	}

	maxLevel := 0
	for _, b := range buckets {
		if len(b) > maxLevel {
			maxLevel = len(b)
		}
	}
	slots := newWinnerSlots(maxLevel)
	scratch := make([]dp.Scratch, nWorkers)
	errs := make([]error, nWorkers)

	var evalCtr, ccpCtr, setCtr atomic.Uint64
	fail := func(err error) (*plan.Node, dp.Stats, error) {
		stats.Evaluated = evalCtr.Load()
		stats.CCP = ccpCtr.Load()
		stats.ConnectedSets += setCtr.Load()
		return nil, stats, err
	}
	for size := 2; size <= in.Q.N(); size++ {
		sets := buckets[size]
		if len(sets) == 0 {
			continue
		}
		slots.reset(len(sets))
		workers := nWorkers
		if workers > len(sets) {
			workers = len(sets)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				dl := in.NewDeadline()
				sc := &scratch[w]
				for {
					i := int(next.Add(1)) - 1
					if i >= len(sets) {
						return
					}
					if stats.WarmSeeded > 0 && tab.Has(sets[i]) {
						continue // seeded by the warm-start hook
					}
					win, st, err := evaluate(in, tab, sets[i], dl, sc)
					evalCtr.Add(st.Evaluated)
					ccpCtr.Add(st.CCP)
					setCtr.Add(1)
					if err != nil {
						errs[w] = err
						return
					}
					if win.Found {
						slots.offer(i, win)
					}
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				return fail(errs[w])
			}
		}
		// Level barrier: publish this level's best plans into the table.
		for i, s := range sets {
			if win, ok := slots.take(i); ok {
				tab.Put(s, win)
			}
		}
	}
	stats.Evaluated = evalCtr.Load()
	stats.CCP = ccpCtr.Load()
	stats.ConnectedSets += setCtr.Load()
	best, st, err := dp.Finish(in, tab, prep.Leaves, &stats)
	if err == nil && in.Harvest != nil {
		in.Harvest(tab)
	}
	return best, st, err
}

// DPSubParallel is the CPU-parallel DPSub, provided for completeness (the
// paper omits it from the graphs because it is dominated by its GPU
// variant); it shares the level-parallel driver with a DPSub set evaluator.
func DPSubParallel(in dp.Input) (*plan.Node, dp.Stats, error) {
	return levelParallel(in, dp.EvaluateSetDPSub)
}

// result is one candidate best plan for a set, accumulated by value in the
// per-worker locals of the baselines PDP and DPE.
type result struct {
	set bitset.Mask
	win dp.Winner
}

// PDP is parallel DPSize [10]: for each plan size, the (size1, size2) pair
// blocks are partitioned across workers. Like DPSize it evaluates many
// overlapping and disconnected pairs; parallelism hides some of that cost.
func PDP(in dp.Input) (*plan.Node, dp.Stats, error) {
	var stats dp.Stats
	prep, err := dp.Prepare(in)
	if err != nil {
		return nil, stats, err
	}
	n := in.Q.N()
	tab := prep.Seed(plan.TableSizeHint(n))
	nWorkers := threads(in)

	bySize := make([][]bitset.Mask, n+1)
	for i := 0; i < n; i++ {
		bySize[1] = append(bySize[1], bitset.Single(i))
	}
	stats.ConnectedSets = uint64(n)

	var evalCtr, ccpCtr atomic.Uint64
	for size := 2; size <= n; size++ {
		// Work units: the (s1, size-s1) pair blocks of this size.
		blocks := make([]int, 0, size-1)
		for s1 := 1; s1 < size; s1++ {
			blocks = append(blocks, s1)
		}
		results := make([][]result, nWorkers)
		errs := make([]error, nWorkers)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				dl := in.NewDeadline()
				local := map[bitset.Mask]dp.Winner{}
				for {
					bi := int(next.Add(1)) - 1
					if bi >= len(blocks) {
						break
					}
					s1 := blocks[bi]
					s2 := size - s1
					for _, a := range bySize[s1] {
						pa := tab.MustView(a)
						for _, b := range bySize[s2] {
							if dl.Expired() {
								errs[w] = dl.Err()
								return
							}
							evalCtr.Add(1)
							if !a.Disjoint(b) {
								continue
							}
							if !in.Q.G.ConnectedTo(a, b) {
								continue
							}
							ccpCtr.Add(1)
							union := a.Union(b)
							pb := tab.MustView(b)
							op, rows, c := in.M.JoinEvalEntry(in.Q, pa, pb)
							if cur, ok := local[union]; !ok || c < cur.Cost {
								local[union] = dp.Winner{Left: a, Right: b, Op: op, Rows: rows, Cost: c, Found: true}
							}
						}
					}
				}
				out := make([]result, 0, len(local))
				for s, win := range local {
					out = append(out, result{set: s, win: win})
				}
				results[w] = out
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				stats.Evaluated = evalCtr.Load()
				stats.CCP = ccpCtr.Load()
				return nil, stats, err
			}
		}
		for _, rs := range results {
			for _, r := range rs {
				if !tab.Has(r.set) {
					bySize[size] = append(bySize[size], r.set)
					stats.ConnectedSets++
				}
				tab.Improve(r.set, r.win)
			}
		}
	}
	stats.Evaluated = evalCtr.Load()
	stats.CCP = ccpCtr.Load()
	return dp.Finish(in, tab, prep.Leaves, &stats)
}

// DPE is the dependency-aware parallel DPCCP [11]: a single producer runs
// the csg-cmp enumeration (inherently sequential), buffering the pairs
// grouped by result-set size; consumers cost the buffered pairs in
// parallel, one dependency level at a time. Enumeration therefore does not
// scale with threads — the effect visible in Fig. 12.
func DPE(in dp.Input) (*plan.Node, dp.Stats, error) {
	var stats dp.Stats
	prep, err := dp.Prepare(in)
	if err != nil {
		return nil, stats, err
	}
	n := in.Q.N()
	tab := prep.Seed(plan.TableSizeHint(n))
	nWorkers := threads(in)
	stats.ConnectedSets = uint64(n)

	// Producer phase: sequential enumeration into a dependency-aware buffer.
	type pair struct{ s1, s2 bitset.Mask }
	levels := make([][]pair, n+1)
	dl := in.NewDeadline()
	if !dp.CCPPairsSeq(in.Q.G, dl, func(s1, s2 bitset.Mask) {
		size := s1.Union(s2).Count()
		levels[size] = append(levels[size], pair{s1, s2})
	}) {
		return nil, stats, dl.Err()
	}

	for size := 2; size <= n; size++ {
		work := levels[size]
		if len(work) == 0 {
			continue
		}
		stats.Evaluated += uint64(2 * len(work))
		stats.CCP += uint64(2 * len(work))
		chunk := (len(work) + nWorkers - 1) / nWorkers
		results := make([][]result, nWorkers)
		errs := make([]error, nWorkers)
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			lo := w * chunk
			if lo >= len(work) {
				break
			}
			hi := min(lo+chunk, len(work))
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				wdl := in.NewDeadline()
				local := map[bitset.Mask]dp.Winner{}
				for _, p := range work[lo:hi] {
					if wdl.Expired() {
						errs[w] = wdl.Err()
						return
					}
					l, r := tab.MustView(p.s1), tab.MustView(p.s2)
					union := p.s1.Union(p.s2)
					rows := l.Rows * r.Rows * in.Q.SelBetween(p.s1, p.s2)
					var bw dp.Winner
					op, c := in.M.JoinEvalEntryRows(in.Q, l, r, rows)
					bw = dp.Winner{Left: p.s1, Right: p.s2, Op: op, Rows: rows, Cost: c, Found: true}
					if op, c2 := in.M.JoinEvalEntryRows(in.Q, r, l, rows); c2 < bw.Cost {
						bw = dp.Winner{Left: p.s2, Right: p.s1, Op: op, Rows: rows, Cost: c2, Found: true}
					}
					if cur, ok := local[union]; !ok || bw.Cost < cur.Cost {
						local[union] = bw
					}
				}
				out := make([]result, 0, len(local))
				for s, win := range local {
					out = append(out, result{set: s, win: win})
				}
				// Deterministic merge order within the worker.
				sort.Slice(out, func(i, j int) bool { return out[i].set < out[j].set })
				results[w] = out
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, stats, err
			}
		}
		for _, rs := range results {
			for _, r := range rs {
				if !tab.Has(r.set) {
					stats.ConnectedSets++
				}
				tab.Improve(r.set, r.win)
			}
		}
	}
	return dp.Finish(in, tab, prep.Leaves, &stats)
}
