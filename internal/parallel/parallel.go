// Package parallel implements the multi-core CPU optimizers compared in the
// paper: PDP (parallel DPSize, Han et al. [10]), DPE (dependency-aware
// producer/consumer parallel DPCCP, Han & Lee [11]) and the level-synchronous
// CPU-parallel MPDP. Their scalability characteristics differ exactly as in
// Fig. 12: MPDP parallelizes both enumeration and costing, while DPE's
// enumeration is sequential and only join costing runs on the workers.
package parallel

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/dp"
	"repro/internal/plan"
)

// threads resolves the requested worker count.
func threads(in dp.Input) int {
	t := in.Threads
	if t <= 0 {
		t = runtime.GOMAXPROCS(0)
	}
	return t
}

// result is one candidate best plan for a set, produced by a worker.
type result struct {
	set  bitset.Mask
	node *plan.Node
}

// MPDP is the CPU-parallel MPDP: within each DP level, the connected sets of
// that size are partitioned across workers, each evaluating its sets
// independently (block discovery, block-level CCP enumeration, grow, and
// costing all run inside the worker — the whole inner loop is parallel).
// The per-level barrier mirrors the GPU kernel-per-level structure of §5.
// Tree join graphs dispatch to the Algorithm 2 evaluator, like dp.MPDP.
func MPDP(in dp.Input) (*plan.Node, dp.Stats, error) {
	if in.Q.G.IsTree() {
		return levelParallel(in, dp.EvaluateSetMPDPTree)
	}
	return levelParallel(in, dp.EvaluateSetMPDP)
}

// levelParallel is the shared level-synchronous driver: evaluate is invoked
// for every connected set of each size, in parallel within the level.
func levelParallel(in dp.Input, evaluate dp.SetEvaluator) (*plan.Node, dp.Stats, error) {
	var stats dp.Stats
	prep, err := dp.Prepare(in)
	if err != nil {
		return nil, stats, err
	}
	nWorkers := threads(in)
	buckets, err := dp.ConnectedBuckets(in)
	if err != nil {
		return nil, stats, err
	}
	memo := prep.Memo
	stats.ConnectedSets = uint64(in.Q.N())

	var evalCtr, ccpCtr, setCtr atomic.Uint64
	for size := 2; size <= in.Q.N(); size++ {
		sets := buckets[size]
		if len(sets) == 0 {
			continue
		}
		chunk := (len(sets) + nWorkers - 1) / nWorkers
		results := make([][]result, nWorkers)
		errs := make([]error, nWorkers)
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			lo := w * chunk
			if lo >= len(sets) {
				break
			}
			hi := lo + chunk
			if hi > len(sets) {
				hi = len(sets)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				dl := dp.NewDeadline(in.Deadline)
				local := make([]result, 0, hi-lo)
				for _, s := range sets[lo:hi] {
					best, st, err := evaluate(in, memo, s, dl)
					evalCtr.Add(st.Evaluated)
					ccpCtr.Add(st.CCP)
					setCtr.Add(1)
					if err != nil {
						errs[w] = err
						return
					}
					if best != nil {
						local = append(local, result{set: s, node: best})
					}
				}
				results[w] = local
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				stats.Evaluated = evalCtr.Load()
				stats.CCP = ccpCtr.Load()
				return nil, stats, err
			}
		}
		// Level barrier: publish this level's best plans into the memo.
		for _, rs := range results {
			for _, r := range rs {
				memo.Put(r.set, r.node)
			}
		}
	}
	stats.Evaluated = evalCtr.Load()
	stats.CCP = ccpCtr.Load()
	stats.ConnectedSets += setCtr.Load()
	return dp.Finish(in, memo, &stats)
}

// DPSubParallel is the CPU-parallel DPSub, provided for completeness (the
// paper omits it from the graphs because it is dominated by its GPU
// variant); it shares the level-parallel driver with a DPSub set evaluator.
func DPSubParallel(in dp.Input) (*plan.Node, dp.Stats, error) {
	return levelParallel(in, dp.EvaluateSetDPSub)
}

// PDP is parallel DPSize [10]: for each plan size, the (size1, size2) pair
// blocks are partitioned across workers. Like DPSize it evaluates many
// overlapping and disconnected pairs; parallelism hides some of that cost.
func PDP(in dp.Input) (*plan.Node, dp.Stats, error) {
	var stats dp.Stats
	prep, err := dp.Prepare(in)
	if err != nil {
		return nil, stats, err
	}
	n := in.Q.N()
	memo := prep.Memo
	nWorkers := threads(in)

	bySize := make([][]bitset.Mask, n+1)
	for i := 0; i < n; i++ {
		bySize[1] = append(bySize[1], bitset.Single(i))
	}
	stats.ConnectedSets = uint64(n)

	var evalCtr, ccpCtr atomic.Uint64
	for size := 2; size <= n; size++ {
		// Build the work list: all (a, b) candidate pairs for this size.
		type pairBlock struct{ s1 int }
		var blocks []pairBlock
		for s1 := 1; s1 < size; s1++ {
			blocks = append(blocks, pairBlock{s1: s1})
		}
		results := make([][]result, nWorkers)
		errs := make([]error, nWorkers)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				dl := dp.NewDeadline(in.Deadline)
				local := map[bitset.Mask]*plan.Node{}
				for {
					bi := int(next.Add(1)) - 1
					if bi >= len(blocks) {
						break
					}
					s1 := blocks[bi].s1
					s2 := size - s1
					for _, a := range bySize[s1] {
						pa := memo.Get(a)
						for _, b := range bySize[s2] {
							if dl.Expired() {
								errs[w] = dp.ErrTimeout
								return
							}
							evalCtr.Add(1)
							if !a.Disjoint(b) {
								continue
							}
							if !in.Q.G.ConnectedTo(a, b) {
								continue
							}
							ccpCtr.Add(1)
							union := a.Union(b)
							join := in.M.Join(in.Q, pa, memo.Get(b))
							if cur, ok := local[union]; !ok || join.Cost < cur.Cost {
								local[union] = join
							}
						}
					}
				}
				var out []result
				for s, p := range local {
					out = append(out, result{set: s, node: p})
				}
				results[w] = out
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				stats.Evaluated = evalCtr.Load()
				stats.CCP = ccpCtr.Load()
				return nil, stats, err
			}
		}
		for _, rs := range results {
			for _, r := range rs {
				if memo.Get(r.set) == nil {
					bySize[size] = append(bySize[size], r.set)
					stats.ConnectedSets++
				}
				memo.Improve(r.set, r.node)
			}
		}
	}
	stats.Evaluated = evalCtr.Load()
	stats.CCP = ccpCtr.Load()
	return dp.Finish(in, memo, &stats)
}

// DPE is the dependency-aware parallel DPCCP [11]: a single producer runs
// the csg-cmp enumeration (inherently sequential), buffering the pairs
// grouped by result-set size; consumers cost the buffered pairs in
// parallel, one dependency level at a time. Enumeration therefore does not
// scale with threads — the effect visible in Fig. 12.
func DPE(in dp.Input) (*plan.Node, dp.Stats, error) {
	var stats dp.Stats
	prep, err := dp.Prepare(in)
	if err != nil {
		return nil, stats, err
	}
	n := in.Q.N()
	memo := prep.Memo
	nWorkers := threads(in)
	stats.ConnectedSets = uint64(n)

	// Producer phase: sequential enumeration into a dependency-aware buffer.
	type pair struct{ s1, s2 bitset.Mask }
	levels := make([][]pair, n+1)
	dl := dp.NewDeadline(in.Deadline)
	if !dp.CCPPairsSeq(in.Q.G, dl, func(s1, s2 bitset.Mask) {
		size := s1.Union(s2).Count()
		levels[size] = append(levels[size], pair{s1, s2})
	}) {
		return nil, stats, dp.ErrTimeout
	}

	seen := map[bitset.Mask]bool{}
	for size := 2; size <= n; size++ {
		work := levels[size]
		if len(work) == 0 {
			continue
		}
		stats.Evaluated += uint64(2 * len(work))
		stats.CCP += uint64(2 * len(work))
		chunk := (len(work) + nWorkers - 1) / nWorkers
		results := make([][]result, nWorkers)
		errs := make([]error, nWorkers)
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			lo := w * chunk
			if lo >= len(work) {
				break
			}
			hi := lo + chunk
			if hi > len(work) {
				hi = len(work)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				wdl := dp.NewDeadline(in.Deadline)
				local := map[bitset.Mask]*plan.Node{}
				for _, p := range work[lo:hi] {
					if wdl.Expired() {
						errs[w] = dp.ErrTimeout
						return
					}
					l, r := memo.Get(p.s1), memo.Get(p.s2)
					union := p.s1.Union(p.s2)
					j1 := in.M.Join(in.Q, l, r)
					j2 := in.M.Join(in.Q, r, l)
					if j2.Cost < j1.Cost {
						j1 = j2
					}
					if cur, ok := local[union]; !ok || j1.Cost < cur.Cost {
						local[union] = j1
					}
				}
				var out []result
				for s, p := range local {
					out = append(out, result{set: s, node: p})
				}
				// Deterministic merge order within the worker.
				sort.Slice(out, func(i, j int) bool { return out[i].set < out[j].set })
				results[w] = out
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, stats, err
			}
		}
		for _, rs := range results {
			for _, r := range rs {
				if !seen[r.set] {
					seen[r.set] = true
					stats.ConnectedSets++
				}
				memo.Improve(r.set, r.node)
			}
		}
	}
	return dp.Finish(in, memo, &stats)
}
