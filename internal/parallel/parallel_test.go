package parallel

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/plan"
)

func randomQuery(n, extraEdges int, rng *rand.Rand) *cost.Query {
	g := graph.RandomConnected(n, extraEdges, rng)
	g2 := graph.New(n)
	for _, e := range g.Edges {
		g2.AddEdge(e.A, e.B, math.Pow(10, -1-3*rng.Float64()))
	}
	var cat catalog.Catalog
	for i := 0; i < n; i++ {
		r := catalog.NewRelation("r", math.Pow(10, 1+4*rng.Float64()), 60)
		r.HasPKIndex = rng.Intn(2) == 0
		cat.Add(r)
	}
	return &cost.Query{Cat: cat, G: g2}
}

var parallelAlgorithms = []struct {
	name string
	f    dp.Func
}{
	{"MPDPParallel", MPDP},
	{"DPSubParallel", DPSubParallel},
	{"PDP", PDP},
	{"DPE", DPE},
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := cost.DefaultModel()
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(10)
		q := randomQuery(n, rng.Intn(n), rng)
		ref, refStats, err := dp.MPDPGeneral(dp.Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 4, 0} {
			for _, alg := range parallelAlgorithms {
				p, st, err := alg.f(dp.Input{Q: q, M: m, Threads: threads})
				if err != nil {
					t.Fatalf("%s threads=%d: %v", alg.name, threads, err)
				}
				if math.Abs(p.Cost-ref.Cost) > 1e-6*math.Max(1, ref.Cost) {
					t.Errorf("trial %d %s threads=%d: cost %.4f want %.4f",
						trial, alg.name, threads, p.Cost, ref.Cost)
				}
				if st.CCP != refStats.CCP {
					t.Errorf("trial %d %s: CCP=%d want %d", trial, alg.name, st.CCP, refStats.CCP)
				}
			}
		}
	}
}

func TestParallelMPDPCountersMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := cost.DefaultModel()
	q := randomQuery(12, 5, rng)
	_, seq, err := dp.MPDPGeneral(dp.Input{Q: q, M: m})
	if err != nil {
		t.Fatal(err)
	}
	_, par, err := MPDP(dp.Input{Q: q, M: m, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par.Evaluated != seq.Evaluated || par.CCP != seq.CCP {
		t.Errorf("parallel counters (%d, %d) != sequential (%d, %d)",
			par.Evaluated, par.CCP, seq.Evaluated, seq.CCP)
	}
}

func TestParallelTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := randomQuery(18, 30, rng)
	deadline := time.Now().Add(-time.Second)
	for _, alg := range parallelAlgorithms {
		_, _, err := alg.f(dp.Input{Q: q, M: cost.DefaultModel(), Deadline: deadline, Threads: 4})
		if err != dp.ErrTimeout {
			t.Errorf("%s: got %v, want ErrTimeout", alg.name, err)
		}
	}
}

func TestParallelCustomLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	q := randomQuery(6, 2, rng)
	m := cost.DefaultModel()
	leaves := make([]*plan.Node, 6)
	for i := range leaves {
		leaves[i] = &plan.Node{RelID: i, Rows: q.Rows(i), Cost: 500}
	}
	seqPlan, _, err := dp.MPDPGeneral(dp.Input{Q: q, M: m, Leaves: leaves})
	if err != nil {
		t.Fatal(err)
	}
	parPlan, _, err := MPDP(dp.Input{Q: q, M: m, Leaves: leaves, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seqPlan.Cost-parPlan.Cost) > 1e-9 {
		t.Errorf("custom-leaf costs differ: %f vs %f", seqPlan.Cost, parPlan.Cost)
	}
}
