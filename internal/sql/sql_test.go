package sql

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

func testSchema() Schema {
	mk := func(name string, rows float64) Table {
		r := catalog.NewRelation(name, rows, 60)
		r.HasPKIndex = true
		return Table{
			Rel: r,
			PK:  name + "key",
			Distinct: map[string]float64{
				name + "key": rows,
			},
		}
	}
	return Schema{
		"lineitem": mk("lineitem", 6e6),
		"orders":   mk("orders", 1.5e6),
		"customer": mk("customer", 150e3),
		"part":     mk("part", 200e3),
	}
}

const tpchish = `
select o_orderdate from lineitem, orders, part, customer
where part.partkey = lineitem.partkey and orders.orderskey = lineitem.orderskey
and orders.custkey = customer.customerkey`

func TestParseFigure1Query(t *testing.T) {
	stmt, err := Parse(tpchish)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Tables) != 4 {
		t.Fatalf("tables = %d", len(stmt.Tables))
	}
	if len(stmt.Predicates) != 3 {
		t.Fatalf("predicates = %d", len(stmt.Predicates))
	}
	for _, p := range stmt.Predicates {
		if p.Kind != PredJoin {
			t.Errorf("predicate %v not a join", p)
		}
	}
}

func TestParseAliasesAndJoinSyntax(t *testing.T) {
	stmt, err := Parse(`SELECT a.x FROM orders AS a JOIN lineitem b ON a.orderskey = b.orderskey WHERE b.qty < 10`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Tables[0].Alias != "a" || stmt.Tables[1].Alias != "b" {
		t.Errorf("aliases = %v", stmt.Tables)
	}
	if len(stmt.Predicates) != 2 {
		t.Fatalf("predicates = %d", len(stmt.Predicates))
	}
	if stmt.Predicates[1].Kind != PredConstRange {
		t.Error("range predicate not recognized")
	}
}

func TestParseSelectStar(t *testing.T) {
	stmt, err := Parse(`SELECT * FROM orders;`)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Star || len(stmt.Tables) != 1 {
		t.Error("star select broken")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                     // no SELECT
		"SELECT",                               // no projection
		"SELECT x FROM",                        // no table
		"SELECT x FROM t WHERE a.b <",          // dangling operator
		"SELECT x FROM t WHERE a.b < c.d",      // non-equality join
		"SELECT x FROM t WHERE a.b = 'unterm",  // bad literal
		"SELECT x FROM t extra garbage ( here", // trailing junk
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestBindBuildsJoinGraph(t *testing.T) {
	b, err := Compile(tpchish, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	q := b.Query
	if q.N() != 4 {
		t.Fatalf("n = %d", q.N())
	}
	if len(q.G.Edges) != 3 {
		t.Fatalf("edges = %d", len(q.G.Edges))
	}
	// (part, orders) must NOT be joinable (the paper's Figure 1 point).
	part, orders := -1, -1
	for i, a := range b.Aliases {
		switch a {
		case "part":
			part = i
		case "orders":
			orders = i
		}
	}
	if q.G.HasEdge(part, orders) {
		t.Error("invalid join pair (part, orders) has an edge")
	}
}

func TestBindSelectivityFromDistinct(t *testing.T) {
	b, err := Compile(`SELECT o.okey FROM orders o, customer c WHERE o.custkey = c.customerkey`, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 150e3 // customer PK domain dominates
	if got := b.Query.G.EdgeSel(0, 1); math.Abs(got-want) > 1e-18 {
		t.Errorf("selectivity = %v, want %v", got, want)
	}
}

func TestBindConstFiltersShrinkRelations(t *testing.T) {
	s := testSchema()
	b, err := Compile(`SELECT o.k FROM orders o, customer c WHERE o.custkey = c.customerkey AND c.customerkey = 42`, s)
	if err != nil {
		t.Fatal(err)
	}
	var cRows float64
	for i, a := range b.Aliases {
		if a == "c" {
			cRows = b.Query.Rows(i)
		}
	}
	if cRows != 1 {
		t.Errorf("PK-equality filter should reduce customer to 1 row, got %v", cRows)
	}
}

func TestEquivalenceClassAddsImplicitEdges(t *testing.T) {
	// Three relations equated on one attribute via two predicates: the
	// closure adds the third edge (footnote 8), turning the chain into a
	// triangle.
	q := `SELECT a.x FROM orders a, orders b, orders c
	      WHERE a.orderskey = b.orderskey AND b.orderskey = c.orderskey`
	b, err := Compile(q, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if b.ImplicitEdges != 1 {
		t.Fatalf("implicit edges = %d, want 1", b.ImplicitEdges)
	}
	if len(b.Query.G.Edges) != 3 {
		t.Fatalf("edges = %d, want 3 (triangle)", len(b.Query.G.Edges))
	}
	// Implicit edge carries selectivity 1 (connectivity only).
	ai, ci := -1, -1
	for i, al := range b.Aliases {
		if al == "a" {
			ai = i
		}
		if al == "c" {
			ci = i
		}
	}
	if got := b.Query.G.EdgeSel(ai, ci); got != 1 {
		t.Errorf("implicit edge selectivity = %v, want 1", got)
	}
}

func TestBindErrors(t *testing.T) {
	s := testSchema()
	cases := []string{
		`SELECT x.y FROM nosuch`,                             // unknown table
		`SELECT a.x FROM orders a, lineitem a`,               // duplicate alias
		`SELECT z.q FROM orders a WHERE a.x = 1`,             // unknown alias in projection
		`SELECT a.x FROM orders a WHERE b.x = a.y`,           // unknown alias in predicate
		`SELECT a.x FROM orders a, lineitem l WHERE qty = 3`, // unqualified column
	}
	for _, q := range cases {
		if _, err := Compile(q, s); err == nil {
			t.Errorf("Compile(%q) should fail", q)
		}
	}
}

func TestCompiledQueryOptimizesEndToEnd(t *testing.T) {
	b, err := Compile(tpchish, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Optimize(context.Background(), b.Query, core.Options{Algorithm: core.AlgMPDP})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate([]int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	out := core.Explain(b.Query, res.Plan)
	if !strings.Contains(out, "lineitem") {
		t.Errorf("explain lacks table names:\n%s", out)
	}
}

func TestMusicBrainzSchemaBinds(t *testing.T) {
	s := MusicBrainzSchema()
	q := `SELECT r.id FROM release r, release_group rg, artist_credit ac
	      WHERE r.release_group = rg.id AND r.artist_credit = ac.id`
	b, err := Compile(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if b.Query.N() != 3 || len(b.Query.G.Edges) != 2 {
		t.Fatalf("n=%d edges=%d", b.Query.N(), len(b.Query.G.Edges))
	}
	res, err := core.Optimize(context.Background(), b.Query, core.Options{Algorithm: core.AlgMPDPParallel})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Size() != 3 {
		t.Error("plan does not cover all relations")
	}
}

func TestLexerCommentsAndCase(t *testing.T) {
	stmt, err := Parse("SELECT a.x -- comment\nFROM Orders A WHERE A.x = 'Lit''s'")
	if err == nil {
		_ = stmt
	}
	// The unescaped quote inside the literal ends it; trailing s fails.
	if err == nil {
		t.Skip("lexer accepts quote-adjacent literal; acceptable")
	}
	stmt, err = Parse("select A.X from ORDERS a where a.x = 'lit'")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Tables[0].Name != "orders" {
		t.Errorf("case folding broken: %q", stmt.Tables[0].Name)
	}
}
