package sql

import "fmt"

// Column references a column of a FROM-clause table by alias.
type Column struct {
	Table  string // alias (or table name when unaliased)
	Column string
}

func (c Column) String() string { return c.Table + "." + c.Column }

// PredKind classifies WHERE conjuncts.
type PredKind int

// Predicate kinds.
const (
	// PredJoin is an equality between two columns: a.x = b.y.
	PredJoin PredKind = iota
	// PredConstEq is column = literal.
	PredConstEq
	// PredConstRange is column <op> literal for <, >, <=, >=, <>.
	PredConstRange
)

// Predicate is one conjunct of the WHERE clause.
type Predicate struct {
	Kind  PredKind
	Left  Column
	Right Column // valid for PredJoin
	Op    string
	Value string // literal text for constant predicates
}

// TableRef is one FROM-clause entry.
type TableRef struct {
	Name  string
	Alias string // == Name when no alias given
}

// Statement is a parsed SELECT.
type Statement struct {
	Projections []Column // empty means SELECT *
	Star        bool
	Tables      []TableRef
	Predicates  []Predicate
}

// Parse parses the supported dialect:
//
//	SELECT <*|col[, col...]> FROM t [AS] a [, t2 [AS] a2 ...]
//	[WHERE a.x = b.y AND a.z = 'lit' AND b.w < 10 ...] [;]
//
// Explicit `JOIN ... ON` syntax is normalized into the flat form.
func Parse(query string) (*Statement, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sql: expected %s at offset %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) parseSelect() (*Statement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &Statement{}
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.next()
		stmt.Star = true
	} else {
		for {
			col, err := p.parseColumn()
			if err != nil {
				return nil, err
			}
			stmt.Projections = append(stmt.Projections, col)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(stmt); err != nil {
		return nil, err
	}
	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.next()
		if err := p.parseWhere(stmt); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseFrom(stmt *Statement) error {
	ref, err := p.parseTableRef()
	if err != nil {
		return err
	}
	stmt.Tables = append(stmt.Tables, ref)
	for {
		t := p.peek()
		switch {
		case t.kind == tokSymbol && t.text == ",":
			p.next()
			ref, err := p.parseTableRef()
			if err != nil {
				return err
			}
			stmt.Tables = append(stmt.Tables, ref)
			continue
		case t.kind == tokKeyword && (t.text == "JOIN" || t.text == "INNER"):
			// INNER? JOIN <table> ON <pred>: normalize into the flat form.
			if t.text == "INNER" {
				p.next()
				if err := p.expectKeyword("JOIN"); err != nil {
					return err
				}
			} else {
				p.next()
			}
			ref, err := p.parseTableRef()
			if err != nil {
				return err
			}
			stmt.Tables = append(stmt.Tables, ref)
			if err := p.expectKeyword("ON"); err != nil {
				return err
			}
			pred, err := p.parsePredicate()
			if err != nil {
				return err
			}
			stmt.Predicates = append(stmt.Predicates, pred)
			// Allow AND-chained ON conditions.
			for p.peek().kind == tokKeyword && p.peek().text == "AND" {
				p.next()
				pred, err := p.parsePredicate()
				if err != nil {
					return err
				}
				stmt.Predicates = append(stmt.Predicates, pred)
			}
			continue
		}
		return nil
	}
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return TableRef{}, fmt.Errorf("sql: expected table name at offset %d, got %q", t.pos, t.text)
	}
	ref := TableRef{Name: t.text, Alias: t.text}
	if p.peek().kind == tokKeyword && p.peek().text == "AS" {
		p.next()
		a := p.next()
		if a.kind != tokIdent {
			return TableRef{}, fmt.Errorf("sql: expected alias at offset %d", a.pos)
		}
		ref.Alias = a.text
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseWhere(stmt *Statement) error {
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		stmt.Predicates = append(stmt.Predicates, pred)
		if p.peek().kind == tokKeyword && p.peek().text == "AND" {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parseColumn() (Column, error) {
	t := p.next()
	if t.kind != tokIdent {
		return Column{}, fmt.Errorf("sql: expected column reference at offset %d, got %q", t.pos, t.text)
	}
	if p.peek().kind == tokSymbol && p.peek().text == "." {
		p.next()
		c := p.next()
		if c.kind != tokIdent {
			return Column{}, fmt.Errorf("sql: expected column name after %q.", t.text)
		}
		return Column{Table: t.text, Column: c.text}, nil
	}
	// Unqualified column: table resolved during binding.
	return Column{Column: t.text}, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	left, err := p.parseColumn()
	if err != nil {
		return Predicate{}, err
	}
	opTok := p.next()
	if opTok.kind != tokOp {
		return Predicate{}, fmt.Errorf("sql: expected comparison operator at offset %d, got %q", opTok.pos, opTok.text)
	}
	t := p.peek()
	switch t.kind {
	case tokIdent:
		right, err := p.parseColumn()
		if err != nil {
			return Predicate{}, err
		}
		if opTok.text != "=" {
			return Predicate{}, fmt.Errorf("sql: only equality joins are supported (inner equi-joins, §2.1), got %q", opTok.text)
		}
		return Predicate{Kind: PredJoin, Left: left, Right: right, Op: "="}, nil
	case tokNumber, tokString:
		p.next()
		kind := PredConstRange
		if opTok.text == "=" {
			kind = PredConstEq
		}
		return Predicate{Kind: kind, Left: left, Op: opTok.text, Value: t.text}, nil
	default:
		return Predicate{}, fmt.Errorf("sql: expected column or literal at offset %d", t.pos)
	}
}
