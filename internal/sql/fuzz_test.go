package sql

import (
	"strings"
	"testing"
)

// FuzzCompile feeds arbitrary text through the full parse-and-bind
// pipeline. The contract under test: the frontend never panics on any
// input — malformed statements must surface as errors — and accepted
// statements bind into a well-formed join graph.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		// The paper's Figure 1 query shape (examples/sqlfrontend).
		`SELECT r.id
FROM release r, release_group rg, artist_credit ac, artist_credit_name acn,
     artist a, medium m, release_label rl, label l
WHERE r.release_group = rg.id
  AND r.artist_credit = ac.id
  AND rg.artist_credit = ac.id
  AND acn.artist_credit = ac.id
  AND acn.artist = a.id
  AND m.release = r.id
  AND rl.release = r.id
  AND rl.label = l.id
  AND a.name = 'radiohead'`,
		`SELECT * FROM artist;`,
		`SELECT a.x FROM orders AS a JOIN lineitem b ON a.orderskey = b.orderskey WHERE b.qty < 10`,
		`SELECT o.okey FROM orders o, customer c WHERE o.custkey = c.customerkey`,
		`SELECT name FROM artist a, area WHERE a.area = area.id AND a.id = 42`,
		`SELECT * FROM release r, medium m WHERE m.release = r.id AND m.format <> 1 AND r.id = r.id`,
		// Known-bad inputs from the parser tests.
		"",
		"SELECT",
		"SELECT x FROM",
		"SELECT x FROM t WHERE a.b <",
		"SELECT x FROM t WHERE a.b < c.d",
		"SELECT x FROM t WHERE a.b = 'unterm",
		"SELECT x FROM t extra garbage ( here",
		"SELECT \x00 FROM \xff",
		"select A.b from T t where t.a = t.a and t.a = 'x' ;;",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	schema := MusicBrainzSchema()
	f.Fuzz(func(t *testing.T, query string) {
		stmt, err := Parse(query)
		if err != nil {
			if stmt != nil {
				t.Errorf("Parse returned a statement alongside error %v", err)
			}
			return
		}
		if len(stmt.Tables) == 0 {
			t.Error("Parse accepted a statement with an empty FROM clause")
		}
		bound, err := Bind(stmt, schema)
		if err != nil {
			return
		}
		q := bound.Query
		if q.N() != len(stmt.Tables) || len(bound.Aliases) != q.N() {
			t.Errorf("bound %d relations / %d aliases for %d tables",
				q.N(), len(bound.Aliases), len(stmt.Tables))
		}
		for i := 0; i < q.N(); i++ {
			if q.Rows(i) < 1 {
				t.Errorf("relation %d bound with %g rows", i, q.Rows(i))
			}
			if strings.TrimSpace(bound.Aliases[i]) == "" {
				t.Errorf("relation %d bound with an empty alias", i)
			}
		}
		for _, e := range q.G.Edges {
			if e.Sel <= 0 || e.Sel > 1 {
				t.Errorf("edge (%d,%d) has selectivity %g outside (0,1]", e.A, e.B, e.Sel)
			}
		}
	})
}
