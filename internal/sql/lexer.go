// Package sql is the query frontend: it parses the restricted SQL dialect
// the paper's workloads use — SELECT over a flat FROM list with a
// conjunctive WHERE of inner equi-join predicates and constant filters —
// and binds it against a catalog into a cost.Query for the optimizers.
//
// The binder implements the equivalence-class semantics of the paper's
// footnote 8: transitive closures of equality predicates introduce implicit
// join edges, which change the join graph (and therefore the CCP structure)
// compared to the literal predicate list.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // ( ) , . ;
	tokOp      // = < > <= >= <>
	tokKeyword // SELECT FROM WHERE AND AS ...
)

// token is one lexeme with its position for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "AS": true,
	"JOIN": true, "INNER": true, "ON": true, "BETWEEN": true, "IN": true,
	"LIKE": true, "OR": true, "NOT": true, "NULL": true, "IS": true,
}

// lex tokenizes the input. SQL keywords and identifiers are
// case-insensitive; keywords are upper-cased in the token text.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (isIdentChar(rune(input[i]))) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
			}
		case unicode.IsDigit(c):
			start := i
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.' || input[i] == 'e' ||
				input[i] == 'E' || ((input[i] == '+' || input[i] == '-') && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			for i < n && input[i] != '\'' {
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			i++ // closing quote
			toks = append(toks, token{kind: tokString, text: input[start+1 : i-1], pos: start})
		case strings.ContainsRune("(),.;*", c):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case strings.ContainsRune("=<>!", c):
			start := i
			i++
			if i < n && (input[i] == '=' || (input[start] == '<' && input[i] == '>')) {
				i++
			}
			toks = append(toks, token{kind: tokOp, text: input[start:i], pos: start})
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}
