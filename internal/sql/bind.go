package sql

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
)

// Table describes one bindable table: base statistics plus per-column
// distinct counts for selectivity estimation. Columns absent from Distinct
// fall back to heuristics (primary keys are unique; foreign keys inherit
// the referenced key's domain; others default to rows/10).
type Table struct {
	Rel      catalog.Relation
	PK       string
	Distinct map[string]float64
}

// distinct returns the estimated distinct count of a column.
func (t Table) distinct(col string) float64 {
	if d, ok := t.Distinct[col]; ok {
		return d
	}
	if col == t.PK {
		return t.Rel.Rows
	}
	return math.Max(1, t.Rel.Rows/10)
}

// Schema maps table names to bindable tables.
type Schema map[string]Table

// Bound is the result of binding a statement: the optimizer-ready query and
// the alias of each relation index.
type Bound struct {
	Query *cost.Query
	// Aliases[i] names relation i of the query.
	Aliases []string
	// ImplicitEdges counts join edges added by equivalence-class closure
	// beyond the literal predicates (the paper's footnote 8).
	ImplicitEdges int
}

// Bind resolves a parsed statement against a schema and builds the join
// graph: vertices are FROM entries; explicit equi-join predicates become
// edges with selectivity 1/max(distinct sides); constant predicates shrink
// their relation; and the transitive closure of column equalities adds
// implicit edges (selectivity 1 — pure connectivity, as the predicate is
// already accounted for by the class's explicit edges).
func Bind(stmt *Statement, schema Schema) (*Bound, error) {
	n := len(stmt.Tables)
	if n == 0 {
		return nil, fmt.Errorf("sql: empty FROM clause")
	}
	aliasIdx := make(map[string]int, n)
	var cat catalog.Catalog
	tables := make([]Table, n)
	for i, ref := range stmt.Tables {
		tb, ok := schema[ref.Name]
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", ref.Name)
		}
		if _, dup := aliasIdx[ref.Alias]; dup {
			return nil, fmt.Errorf("sql: duplicate alias %q", ref.Alias)
		}
		aliasIdx[ref.Alias] = i
		tables[i] = tb
		rel := tb.Rel
		rel.Name = ref.Alias
		cat.Add(rel)
	}

	resolve := func(c Column) (int, Column, error) {
		if c.Table == "" {
			return 0, c, fmt.Errorf("sql: unqualified column %q (qualify as alias.column)", c.Column)
		}
		i, ok := aliasIdx[c.Table]
		if !ok {
			return 0, c, fmt.Errorf("sql: unknown alias %q", c.Table)
		}
		return i, c, nil
	}

	// Validate qualified projections early; unqualified ones are accepted
	// as-is (projection lists do not affect join ordering, and the paper's
	// Figure 1 query projects an unqualified column).
	for _, c := range stmt.Projections {
		if c.Table == "" {
			continue
		}
		if _, _, err := resolve(c); err != nil {
			return nil, err
		}
	}

	g := graph.New(n)
	// Equivalence classes over (relation, column) pairs.
	type rc struct {
		rel int
		col string
	}
	classID := map[rc]int{}
	uf := graph.NewUnionFind(2 * len(stmt.Predicates))
	nextClass := 0
	classOf := func(k rc) int {
		if id, ok := classID[k]; ok {
			return id
		}
		classID[k] = nextClass
		nextClass++
		return classID[k]
	}

	for _, pred := range stmt.Predicates {
		switch pred.Kind {
		case PredJoin:
			li, _, err := resolve(pred.Left)
			if err != nil {
				return nil, err
			}
			ri, _, err := resolve(pred.Right)
			if err != nil {
				return nil, err
			}
			if li == ri {
				// Same-relation equality: a local filter.
				cat.Rels[li].Rows = math.Max(1, cat.Rels[li].Rows/10)
				continue
			}
			dl := tables[li].distinct(pred.Left.Column)
			dr := tables[ri].distinct(pred.Right.Column)
			g.AddEdge(li, ri, 1/math.Max(math.Max(dl, dr), 1))
			uf.Union(classOf(rc{li, pred.Left.Column}), classOf(rc{ri, pred.Right.Column}))
		case PredConstEq:
			li, _, err := resolve(pred.Left)
			if err != nil {
				return nil, err
			}
			cat.Rels[li].Rows = math.Max(1, cat.Rels[li].Rows/tables[li].distinct(pred.Left.Column))
		case PredConstRange:
			li, _, err := resolve(pred.Left)
			if err != nil {
				return nil, err
			}
			// PostgreSQL's DEFAULT_INEQ_SEL.
			cat.Rels[li].Rows = math.Max(1, cat.Rels[li].Rows/3)
		}
	}

	// Equivalence-class closure (footnote 8): members of one class in
	// different relations are implicitly joinable even without a literal
	// predicate between them.
	members := map[int][]rc{}
	for k, id := range classID {
		root := uf.Find(id)
		members[root] = append(members[root], k)
	}
	implicit := 0
	for _, ms := range members {
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				a, b := ms[i], ms[j]
				if a.rel == b.rel || g.HasEdge(a.rel, b.rel) {
					continue
				}
				g.AddEdge(a.rel, b.rel, 1)
				implicit++
			}
		}
	}

	aliases := make([]string, n)
	for a, i := range aliasIdx {
		aliases[i] = a
	}
	return &Bound{
		Query:         &cost.Query{Cat: cat, G: g},
		Aliases:       aliases,
		ImplicitEdges: implicit,
	}, nil
}

// Compile parses and binds in one step.
func Compile(query string, schema Schema) (*Bound, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Bind(stmt, schema)
}

// MusicBrainzSchema exposes the built-in 56-table MusicBrainz catalog as a
// bindable schema, so SQL text can be optimized directly against it (see
// cmd/mpdp-explain's -sql flag).
func MusicBrainzSchema() Schema {
	mb := catalog.MusicBrainz()
	s := make(Schema, mb.Catalog.Len())
	for _, rel := range mb.Catalog.Rels {
		s[rel.Name] = Table{Rel: rel, PK: "id"}
	}
	return s
}
