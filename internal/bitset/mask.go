// Package bitset provides the relation-set representations used throughout
// the optimizer: a fixed-width 64-bit Mask for dynamic-programming inner
// loops (queries and partitions of up to 64 relations) and a dynamic Set for
// the heuristic layer, which must address graphs with 1000+ relations.
//
// The paper (§2.2.1, §5) represents all relation sets and adjacency lists as
// bitmap sets; subset enumeration relies on the parallel-bit-deposit (PDEP)
// instruction, which Deposit reimplements in portable Go.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// Mask is a set of up to 64 relations, one bit per relation index.
// The zero value is the empty set.
type Mask uint64

// MaskOf returns the set containing exactly the given relation indices.
func MaskOf(indices ...int) Mask {
	var m Mask
	for _, i := range indices {
		m |= 1 << uint(i)
	}
	return m
}

// Single returns the singleton set {i}.
//
//mpdp:hotpath
func Single(i int) Mask { return 1 << uint(i) }

// Full returns the set {0, 1, ..., n-1}.
//
//mpdp:hotpath
func Full(n int) Mask {
	if n >= 64 {
		return ^Mask(0)
	}
	return (1 << uint(n)) - 1
}

// Has reports whether relation i is in the set.
//
//mpdp:hotpath
func (m Mask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// Add returns m ∪ {i}.
//
//mpdp:hotpath
func (m Mask) Add(i int) Mask { return m | 1<<uint(i) }

// Remove returns m \ {i}.
//
//mpdp:hotpath
func (m Mask) Remove(i int) Mask { return m &^ (1 << uint(i)) }

// Union returns m ∪ o.
//
//mpdp:hotpath
func (m Mask) Union(o Mask) Mask { return m | o }

// Intersect returns m ∩ o.
//
//mpdp:hotpath
func (m Mask) Intersect(o Mask) Mask { return m & o }

// Diff returns m \ o.
//
//mpdp:hotpath
func (m Mask) Diff(o Mask) Mask { return m &^ o }

// Empty reports whether the set is empty.
//
//mpdp:hotpath
func (m Mask) Empty() bool { return m == 0 }

// Count returns the cardinality |m|.
//
//mpdp:hotpath
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// Lowest returns the smallest relation index in m.
// It must not be called on the empty set.
//
//mpdp:hotpath
func (m Mask) Lowest() int { return bits.TrailingZeros64(uint64(m)) }

// LowestBit returns the singleton set containing the smallest element of m,
// or the empty set if m is empty.
//
//mpdp:hotpath
func (m Mask) LowestBit() Mask { return m & -m }

// Highest returns the largest relation index in m.
// It must not be called on the empty set.
//
//mpdp:hotpath
func (m Mask) Highest() int { return 63 - bits.LeadingZeros64(uint64(m)) }

// Disjoint reports whether m ∩ o = ∅.
//
//mpdp:hotpath
func (m Mask) Disjoint(o Mask) bool { return m&o == 0 }

// SubsetOf reports whether m ⊆ o.
//
//mpdp:hotpath
func (m Mask) SubsetOf(o Mask) bool { return m&^o == 0 }

// Elements returns the relation indices in m in increasing order.
func (m Mask) Elements() []int {
	out := make([]int, 0, m.Count())
	for s := m; s != 0; s &= s - 1 {
		out = append(out, s.Lowest())
	}
	return out
}

// ForEach calls f for every relation index in m in increasing order.
//
//mpdp:hotpath
func (m Mask) ForEach(f func(i int)) {
	for s := m; s != 0; s &= s - 1 {
		f(s.Lowest())
	}
}

// NextSubset steps through the non-empty subsets of super in increasing
// numeric order. Starting from sub = 0, repeated application
//
//	sub = sub.NextSubset(super)
//
// yields every non-empty subset of super exactly once and returns 0 after the
// last one. This is the standard (sub - super) & super trick used by the
// subset-precedence enumeration of DPSub.
//
//mpdp:hotpath
func (m Mask) NextSubset(super Mask) Mask {
	return (m - super) & super
}

// String renders the set as "{i, j, ...}".
func (m Mask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	m.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}

// Deposit implements PDEP (parallel bit deposit): the low bits of src are
// scattered, in order, to the positions of the set bits of mask. It is the
// software equivalent of the x86 BMI2 PDEP instruction the paper uses to
// expand a dense local subset rank into a sparse relation mask (§2.2.1).
//
//mpdp:hotpath
func Deposit(src uint64, mask Mask) Mask {
	var out Mask
	bit := uint64(1)
	for mm := mask; mm != 0; mm &= mm - 1 {
		if src&bit != 0 {
			out |= mm.LowestBit()
		}
		bit <<= 1
	}
	return out
}

// Extract implements PEXT (parallel bit extract), the inverse of Deposit:
// the bits of src at the positions selected by mask are gathered into the
// low bits of the result.
//
//mpdp:hotpath
func Extract(src, mask Mask) uint64 {
	var out uint64
	bit := uint64(1)
	for mm := mask; mm != 0; mm &= mm - 1 {
		if src&mm.LowestBit() != 0 {
			out |= bit
		}
		bit <<= 1
	}
	return out
}
