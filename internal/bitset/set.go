package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a dynamically sized bitmap set of relation indices. It is used by
// the heuristic layer (IDP2, UnionDP, GOO, ...) where queries may join
// thousands of relations and therefore do not fit in a single Mask.
//
// All binary operations require both operands to have the same width; sets
// produced by the same NewSet(n) family satisfy this.
type Set struct {
	words []uint64
}

// NewSet returns an empty set able to hold indices [0, n).
func NewSet(n int) Set {
	return Set{words: make([]uint64, (n+63)/64)}
}

// SetOf returns a set of width n containing the given indices.
func SetOf(n int, indices ...int) Set {
	s := NewSet(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// FromMask converts a Mask into a width-n Set.
func FromMask(n int, m Mask) Set {
	s := NewSet(n)
	if len(s.words) > 0 {
		s.words[0] = uint64(m)
	}
	return s
}

// Width returns the capacity of the set in bits.
func (s Set) Width() int { return len(s.words) * 64 }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// Add inserts index i.
//
//mpdp:hotpath
func (s Set) Add(i int) { s.words[i/64] |= 1 << uint(i%64) }

// Remove deletes index i.
//
//mpdp:hotpath
func (s Set) Remove(i int) { s.words[i/64] &^= 1 << uint(i%64) }

// Has reports whether i is in the set.
//
//mpdp:hotpath
func (s Set) Has(i int) bool { return s.words[i/64]&(1<<uint(i%64)) != 0 }

// Empty reports whether the set has no elements.
//
//mpdp:hotpath
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the cardinality.
//
//mpdp:hotpath
func (s Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// UnionWith adds every element of o to s in place.
//
//mpdp:hotpath
func (s Set) UnionWith(o Set) {
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in o, in place.
//
//mpdp:hotpath
func (s Set) IntersectWith(o Set) {
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// DiffWith removes every element of o from s in place.
//
//mpdp:hotpath
func (s Set) DiffWith(o Set) {
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Union returns s ∪ o as a new set.
func (s Set) Union(o Set) Set {
	out := s.Clone()
	out.UnionWith(o)
	return out
}

// Intersect returns s ∩ o as a new set.
func (s Set) Intersect(o Set) Set {
	out := s.Clone()
	out.IntersectWith(o)
	return out
}

// Diff returns s \ o as a new set.
func (s Set) Diff(o Set) Set {
	out := s.Clone()
	out.DiffWith(o)
	return out
}

// Disjoint reports whether s ∩ o = ∅.
//
//mpdp:hotpath
func (s Set) Disjoint(o Set) bool {
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ o ≠ ∅.
//
//mpdp:hotpath
func (s Set) Intersects(o Set) bool { return !s.Disjoint(o) }

// SubsetOf reports whether s ⊆ o.
//
//mpdp:hotpath
func (s Set) SubsetOf(o Set) bool {
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain the same elements.
//
//mpdp:hotpath
func (s Set) Equal(o Set) bool {
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Lowest returns the smallest element, or -1 if the set is empty.
//
//mpdp:hotpath
func (s Set) Lowest() int {
	for i, w := range s.words {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Elements returns the elements in increasing order.
func (s Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls f for every element in increasing order.
//
//mpdp:hotpath
func (s Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for ; w != 0; w &= w - 1 {
			f(wi*64 + bits.TrailingZeros64(w))
		}
	}
}

// Key returns a string usable as a map key identifying the set contents.
func (s Set) Key() string {
	var b strings.Builder
	for _, w := range s.words {
		b.WriteByte(byte(w))
		b.WriteByte(byte(w >> 8))
		b.WriteByte(byte(w >> 16))
		b.WriteByte(byte(w >> 24))
		b.WriteByte(byte(w >> 32))
		b.WriteByte(byte(w >> 40))
		b.WriteByte(byte(w >> 48))
		b.WriteByte(byte(w >> 56))
	}
	return b.String()
}

// String renders the set as "{i, j, ...}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
