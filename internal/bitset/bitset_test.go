package bitset

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaskBasics(t *testing.T) {
	m := MaskOf(0, 3, 63)
	if !m.Has(0) || !m.Has(3) || !m.Has(63) || m.Has(1) {
		t.Fatalf("membership broken: %v", m)
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d, want 3", m.Count())
	}
	if m.Lowest() != 0 || m.Highest() != 63 {
		t.Errorf("Lowest/Highest = %d/%d", m.Lowest(), m.Highest())
	}
	if got := m.Remove(3); got.Has(3) || got.Count() != 2 {
		t.Errorf("Remove failed: %v", got)
	}
	if s := m.String(); s != "{0, 3, 63}" {
		t.Errorf("String = %q", s)
	}
}

func TestMaskFull(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64} {
		f := Full(n)
		if f.Count() != n {
			t.Errorf("Full(%d).Count() = %d", n, f.Count())
		}
	}
}

func TestMaskSetAlgebraProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		ma, mb := Mask(a), Mask(b)
		union := ma.Union(mb)
		inter := ma.Intersect(mb)
		diff := ma.Diff(mb)
		// |A ∪ B| + |A ∩ B| = |A| + |B|
		if union.Count()+inter.Count() != ma.Count()+mb.Count() {
			return false
		}
		// A \ B and B are disjoint; their union is A ∪ B.
		if !diff.Disjoint(mb) || diff.Union(mb) != union {
			return false
		}
		// Subset relations.
		if !inter.SubsetOf(ma) || !inter.SubsetOf(mb) || !ma.SubsetOf(union) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNextSubsetEnumeratesAllSubsets(t *testing.T) {
	super := MaskOf(1, 4, 9, 17, 30)
	seen := map[Mask]bool{}
	for sub := super.LowestBit(); !sub.Empty(); sub = sub.NextSubset(super) {
		if !sub.SubsetOf(super) {
			t.Fatalf("%v not a subset of %v", sub, super)
		}
		if seen[sub] {
			t.Fatalf("duplicate subset %v", sub)
		}
		seen[sub] = true
	}
	if want := (1 << super.Count()) - 1; len(seen) != want {
		t.Errorf("enumerated %d non-empty subsets, want %d", len(seen), want)
	}
}

func TestDepositExtractRoundTrip(t *testing.T) {
	f := func(src uint64, mask uint64) bool {
		m := Mask(mask)
		k := m.Count()
		src &= (1 << uint(k)) - 1 // only the low k bits matter
		dep := Deposit(src, m)
		if !dep.SubsetOf(m) {
			return false
		}
		return Extract(dep, m) == src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDepositMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		mask := Mask(rng.Uint64())
		src := rng.Uint64()
		got := Deposit(src, mask)
		// Naive PDEP.
		var want Mask
		bit := 0
		for i := 0; i < 64; i++ {
			if mask.Has(i) {
				if src&(1<<uint(bit)) != 0 {
					want = want.Add(i)
				}
				bit++
			}
		}
		if got != want {
			t.Fatalf("Deposit(%x, %x) = %v, want %v", src, uint64(mask), got, want)
		}
	}
}

func TestMaskElementsForEachAgree(t *testing.T) {
	f := func(a uint64) bool {
		m := Mask(a)
		var viaForEach []int
		m.ForEach(func(i int) { viaForEach = append(viaForEach, i) })
		els := m.Elements()
		if len(els) != len(viaForEach) || len(els) != bits.OnesCount64(a) {
			return false
		}
		for i := range els {
			if els[i] != viaForEach[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetMatchesMaskSemantics(t *testing.T) {
	// Dynamic Set and Mask must implement identical set algebra; verify on
	// random operations within 64 bits.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		a, b := Mask(rng.Uint64()), Mask(rng.Uint64())
		sa, sb := FromMask(64, a), FromMask(64, b)
		checks := []struct {
			name string
			m    Mask
			s    Set
		}{
			{"union", a.Union(b), sa.Union(sb)},
			{"intersect", a.Intersect(b), sa.Intersect(sb)},
			{"diff", a.Diff(b), sa.Diff(sb)},
		}
		for _, c := range checks {
			if !c.s.Equal(FromMask(64, c.m)) {
				t.Fatalf("%s mismatch: mask %v set %v", c.name, c.m, c.s)
			}
		}
		if a.Disjoint(b) != sa.Disjoint(sb) {
			t.Fatal("Disjoint mismatch")
		}
		if a.SubsetOf(b) != sa.SubsetOf(sb) {
			t.Fatal("SubsetOf mismatch")
		}
		if a.Count() != sa.Count() {
			t.Fatal("Count mismatch")
		}
		if !a.Empty() && a.Lowest() != sa.Lowest() {
			t.Fatal("Lowest mismatch")
		}
	}
}

func TestSetLargeWidth(t *testing.T) {
	s := NewSet(1000)
	for _, i := range []int{0, 63, 64, 512, 999} {
		s.Add(i)
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d, want 5", s.Count())
	}
	if !s.Has(512) || s.Has(511) {
		t.Error("membership across words broken")
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 4 {
		t.Error("Remove across words broken")
	}
	els := s.Elements()
	want := []int{0, 63, 512, 999}
	for i, v := range want {
		if els[i] != v {
			t.Errorf("Elements[%d] = %d, want %d", i, els[i], v)
		}
	}
}

func TestSetKeyUniqueness(t *testing.T) {
	a := SetOf(200, 1, 100, 199)
	b := SetOf(200, 1, 100, 198)
	if a.Key() == b.Key() {
		t.Error("distinct sets share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("clone changes key")
	}
}

func TestSetInPlaceOps(t *testing.T) {
	a := SetOf(128, 1, 2, 3, 100)
	b := SetOf(128, 3, 100, 127)
	u := a.Clone()
	u.UnionWith(b)
	if u.Count() != 5 {
		t.Errorf("UnionWith count = %d", u.Count())
	}
	i := a.Clone()
	i.IntersectWith(b)
	if i.Count() != 2 || !i.Has(3) || !i.Has(100) {
		t.Errorf("IntersectWith wrong: %v", i)
	}
	d := a.Clone()
	d.DiffWith(b)
	if d.Count() != 2 || d.Has(3) {
		t.Errorf("DiffWith wrong: %v", d)
	}
}
