package cost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/catalog"
	"repro/internal/graph"
	"repro/internal/plan"
)

func testQuery() *Query {
	g := graph.New(4)
	g.AddEdge(0, 1, 0.01)
	g.AddEdge(1, 2, 0.001)
	g.AddEdge(2, 3, 0.1)
	g.AddEdge(0, 3, 0.5)
	var cat catalog.Catalog
	for i, rows := range []float64{1e6, 1e4, 1e3, 100} {
		r := catalog.NewRelation("r", rows, 40+i)
		r.HasPKIndex = i%2 == 0
		cat.Add(r)
	}
	return &Query{Cat: cat, G: g}
}

func TestSelBetween(t *testing.T) {
	q := testQuery()
	cases := []struct {
		l, r bitset.Mask
		want float64
	}{
		{bitset.MaskOf(0), bitset.MaskOf(1), 0.01},
		{bitset.MaskOf(0, 1), bitset.MaskOf(2, 3), 0.001 * 0.5},
		{bitset.MaskOf(0), bitset.MaskOf(2), 1}, // no edge
		{bitset.MaskOf(1), bitset.MaskOf(0, 2), 0.01 * 0.001},
	}
	for _, c := range cases {
		if got := q.SelBetween(c.l, c.r); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("SelBetween(%v, %v) = %v, want %v", c.l, c.r, got, c.want)
		}
		// Symmetry.
		if got := q.SelBetween(c.r, c.l); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("SelBetween(%v, %v) = %v, want %v (symmetric)", c.r, c.l, got, c.want)
		}
		// Set-based variant agrees.
		ls, rs := bitset.FromMask(4, c.l), bitset.FromMask(4, c.r)
		if got := q.SelBetweenSets(ls, rs); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("SelBetweenSets(%v, %v) = %v, want %v", c.l, c.r, got, c.want)
		}
	}
}

func TestSubsetRowsConsistentWithJoinProducts(t *testing.T) {
	// SubsetRows(S) must equal rows(L)·rows(R)·sel(L,R) for every
	// bipartition — the order-independence property the DP relies on.
	q := testQuery()
	full := bitset.Full(4)
	want := q.SubsetRows(full)
	for lb := full.LowestBit(); !lb.Empty(); lb = lb.NextSubset(full) {
		rb := full.Diff(lb)
		if rb.Empty() {
			continue
		}
		got := q.SubsetRows(lb) * q.SubsetRows(rb) * q.SelBetween(lb, rb)
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("partition %v/%v: %v, want %v", lb, rb, got, want)
		}
	}
}

func TestScanCost(t *testing.T) {
	q := testQuery()
	m := DefaultModel()
	s := m.Scan(q, 0)
	if s.RelID != 0 || !s.IsLeaf() {
		t.Fatal("scan node malformed")
	}
	if s.Rows != 1e6 {
		t.Errorf("rows = %v", s.Rows)
	}
	want := q.Cat.Rels[0].Pages*m.SeqPageCost + 1e6*m.CPUTupleCost
	if math.Abs(s.Cost-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", s.Cost, want)
	}
}

func TestJoinCostIncludesChildren(t *testing.T) {
	q := testQuery()
	m := DefaultModel()
	l, r := m.Scan(q, 0), m.Scan(q, 1)
	j := m.Join(q, l, r)
	if j.Cost < l.Cost {
		t.Errorf("join cost %v below left child %v", j.Cost, l.Cost)
	}
	if j.Rows != l.Rows*r.Rows*0.01 {
		t.Errorf("join rows = %v", j.Rows)
	}
	if j.Set != bitset.MaskOf(0, 1) {
		t.Errorf("join set = %v", j.Set)
	}
}

func TestJoinEvalAgreesWithJoin(t *testing.T) {
	q := testQuery()
	m := DefaultModel()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Intn(4), rng.Intn(4)
		if a == b {
			continue
		}
		l, r := m.Scan(q, a), m.Scan(q, b)
		op, rows, c := m.JoinEval(q, l, r)
		j := m.Join(q, l, r)
		if j.Op != op || j.Rows != rows || j.Cost != c {
			t.Fatalf("JoinEval (%v, %v, %v) != Join (%v, %v, %v)", op, rows, c, j.Op, j.Rows, j.Cost)
		}
	}
}

func TestIndexNestLoopRequiresIndexAndLeaf(t *testing.T) {
	q := testQuery()
	m := DefaultModel()
	big, idxRel := m.Scan(q, 0), m.Scan(q, 2) // rel 2 has a PK index
	op, _, _ := m.JoinEval(q, big, idxRel)
	_ = op // operator choice depends on numbers; verify the restricted model
	restricted := *m
	restricted.DisableNestLoop = true
	opR, _, costR := restricted.JoinEval(q, big, idxRel)
	if opR == 0 {
		t.Error("unexpected scan op")
	}
	if opR != 0 && costR <= 0 {
		t.Error("nonpositive cost")
	}
	// With nest loops disabled, INL must never be chosen.
	if opR.String() == "IndexNLJoin" || opR.String() == "NestLoop" {
		t.Errorf("disabled operator chosen: %v", opR)
	}
}

func TestOperatorChoiceMonotoneInModel(t *testing.T) {
	// Disabling operators can only increase (or keep) the best cost.
	q := testQuery()
	full := DefaultModel()
	noNL := *full
	noNL.DisableNestLoop = true
	noAll := noNL
	noAll.DisableMerge = true
	l, r := full.Scan(q, 1), full.Scan(q, 2)
	_, _, cFull := full.JoinEval(q, l, r)
	_, _, cNoNL := noNL.JoinEval(q, l, r)
	_, _, cHash := noAll.JoinEval(q, l, r)
	if cFull > cNoNL+1e-12 || cNoNL > cHash+1e-12 {
		t.Errorf("costs not monotone: %v, %v, %v", cFull, cNoNL, cHash)
	}
}

func TestCout(t *testing.T) {
	q := testQuery()
	m := DefaultModel()
	l, r := m.Scan(q, 1), m.Scan(q, 2)
	j := m.Join(q, l, r)
	if got := Cout(j); got != j.Rows {
		t.Errorf("Cout = %v, want %v", got, j.Rows)
	}
	j2 := m.Join(q, j, m.Scan(q, 3))
	if got := Cout(j2); math.Abs(got-(j.Rows+j2.Rows)) > 1e-9 {
		t.Errorf("Cout = %v, want %v", got, j.Rows+j2.Rows)
	}
	if Cout(l) != 0 {
		t.Error("leaf Cout must be 0")
	}
}

func TestEstimatedExecTimePositive(t *testing.T) {
	if EstimatedExecTimeMS(1000) <= 0 {
		t.Error("exec time must be positive")
	}
}

// entryOf builds the table view of a plan node the way plan.Table stores it,
// so the node- and entry-based costing paths can be compared head to head.
func entryOf(n *plan.Node) plan.Entry {
	return plan.Entry{
		Set:     n.Set,
		Rows:    n.Rows,
		Cost:    n.Cost,
		LogRows: math.Log2(math.Max(n.Rows, 2)),
		LogIdx:  math.Log2(n.Rows + 2),
		Leaf:    n.IsLeaf(),
		RelID:   int32(n.RelID),
	}
}

// TestJoinEvalEntryMatchesNodePath pins the bit-identity of the two costing
// paths: the DP enumerators cost through table entries while heuristics and
// fallbacks cost through plan nodes, and a cost-model change applied to one
// but not the other must fail here.
func TestJoinEvalEntryMatchesNodePath(t *testing.T) {
	q := testQuery()
	rng := rand.New(rand.NewSource(31))
	for _, m := range []*Model{
		DefaultModel(),
		{SeqPageCost: 1, RandomPageCost: 4, CPUTupleCost: 0.01, CPUIndexTupleCost: 0.005, CPUOperatorCost: 0.0025, DisableNestLoop: true},
		{SeqPageCost: 1, RandomPageCost: 4, CPUTupleCost: 0.01, CPUIndexTupleCost: 0.005, CPUOperatorCost: 0.0025, DisableMerge: true},
	} {
		for trial := 0; trial < 2000; trial++ {
			var l, r *plan.Node
			if rng.Intn(2) == 0 {
				l = m.Scan(q, rng.Intn(2))
			} else {
				l = &plan.Node{Set: bitset.MaskOf(0, 1), Left: m.Scan(q, 0), Right: m.Scan(q, 1),
					Rows: rng.Float64() * 1e8, Cost: rng.Float64() * 1e6}
			}
			if rng.Intn(2) == 0 {
				r = m.Scan(q, 2+rng.Intn(2))
			} else {
				r = &plan.Node{Set: bitset.MaskOf(2, 3), Left: m.Scan(q, 2), Right: m.Scan(q, 3),
					Rows: rng.Float64() * 1e8, Cost: rng.Float64() * 1e6}
			}
			opN, rowsN, costN := m.JoinEval(q, l, r)
			opE, rowsE, costE := m.JoinEvalEntry(q, entryOf(l), entryOf(r))
			if opN != opE || rowsN != rowsE || costN != costE {
				t.Fatalf("trial %d: node path (%v, %v, %v) != entry path (%v, %v, %v)",
					trial, opN, rowsN, costN, opE, rowsE, costE)
			}
			opN2, costN2 := m.JoinEvalRows(q, l, r, rowsN)
			opE2, costE2 := m.JoinEvalEntryRows(q, entryOf(l), entryOf(r), rowsN)
			if opN2 != opE2 || costN2 != costE2 {
				t.Fatalf("trial %d: rows-variant node path (%v, %v) != entry path (%v, %v)",
					trial, opN2, costN2, opE2, costE2)
			}
		}
	}
}
