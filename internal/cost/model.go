package cost

import (
	"math"

	"repro/internal/plan"
)

// Model holds the cost constants, mirroring PostgreSQL's planner GUCs.
// The zero value is unusable; use DefaultModel.
type Model struct {
	SeqPageCost       float64
	RandomPageCost    float64
	CPUTupleCost      float64
	CPUIndexTupleCost float64
	CPUOperatorCost   float64

	// DisableNestLoop / DisableMerge let ablation benchmarks restrict the
	// operator space (a simpler cost function, cf. Meister & Saake [22],
	// "cost-function complexity matters").
	DisableNestLoop bool
	DisableMerge    bool
}

// DefaultModel returns PostgreSQL 12's default cost constants.
func DefaultModel() *Model {
	return &Model{
		SeqPageCost:       1.0,
		RandomPageCost:    4.0,
		CPUTupleCost:      0.01,
		CPUIndexTupleCost: 0.005,
		CPUOperatorCost:   0.0025,
	}
}

// Scan returns the plan node for a sequential scan of relation i.
func (m *Model) Scan(q *Query, i int) *plan.Node {
	rel := q.Cat.Rels[i]
	return &plan.Node{
		Set:   1 << uint(i),
		RelID: i,
		Op:    plan.OpScan,
		Rows:  rel.Rows,
		Cost:  rel.Pages*m.SeqPageCost + rel.Rows*m.CPUTupleCost,
	}
}

// JoinCost computes the cheapest operator for joining l and r producing
// outRows tuples, given whether the right input is a base relation with a
// usable PK index (enables index nested loop). It returns the operator and
// the total cost including both children.
func (m *Model) JoinCost(l, r *plan.Node, outRows float64, rightIndexed bool) (plan.Op, float64) {
	return m.joinCostVals(l.Rows, l.Cost, r.Rows, r.Cost, outRows, rightIndexed && r.IsLeaf())
}

// joinCostVals is the scalar core of JoinCost over (rows, cost) values
// instead of plan nodes: it computes the log2 terms the operators need and
// delegates to the shared arithmetic, so the node-based and Entry-based
// costing paths cannot drift apart.
func (m *Model) joinCostVals(lRows, lCost, rRows, rCost, outRows float64, indexNL bool) (plan.Op, float64) {
	var lLg, rLg, rLgi float64
	if !m.DisableMerge {
		lLg = math.Log2(math.Max(lRows, 2))
		rLg = math.Log2(math.Max(rRows, 2))
	}
	if indexNL {
		rLgi = math.Log2(rRows + 2)
	}
	return m.joinCostCore(lRows, lCost, lLg, rRows, rCost, rLg, rLgi, outRows, indexNL)
}

// joinCostCore is the single operator-costing body shared by the node path
// (logs computed per call) and the Entry path (logs memoized in the table —
// the same math.Log2 bits either way). lLg/rLg are log2(max(rows, 2)) and
// are read only when merge joins are enabled; rLgi is log2(rRows + 2) and
// is read only when indexNL is set.
func (m *Model) joinCostCore(lRows, lCost, lLg, rRows, rCost, rLg, rLgi, outRows float64, indexNL bool) (plan.Op, float64) {
	childCost := lCost + rCost

	// Hash join: build on the smaller input, probe with the larger.
	buildRows, probeRows := rRows, lRows
	if buildRows > probeRows {
		buildRows, probeRows = probeRows, buildRows
	}
	hash := childCost +
		buildRows*(m.CPUOperatorCost+m.CPUTupleCost) + // build phase
		probeRows*m.CPUOperatorCost + // probe phase
		outRows*m.CPUTupleCost
	bestOp, bestCost := plan.OpHashJoin, hash

	if !m.DisableNestLoop {
		// Materialized nested loop: rescan the (cheaper-to-rescan) inner.
		rescan := rRows * m.CPUOperatorCost
		nl := childCost + lRows*rescan + outRows*m.CPUTupleCost
		if nl < bestCost {
			bestOp, bestCost = plan.OpNestLoop, nl
		}
		if indexNL {
			// Index nested loop into the inner PK index.
			lookups := rLgi * m.CPUIndexTupleCost * 4
			perMatch := m.RandomPageCost / 2
			matched := outRows / math.Max(lRows, 1)
			inl := lCost + lRows*(lookups+matched*perMatch) + outRows*m.CPUTupleCost
			if inl < bestCost {
				bestOp, bestCost = plan.OpIndexNestLoop, inl
			}
		}
	}

	if !m.DisableMerge {
		sortL := math.Max(lRows, 2) * lLg * m.CPUOperatorCost * 2
		sortR := math.Max(rRows, 2) * rLg * m.CPUOperatorCost * 2
		merge := childCost + sortL + sortR +
			(lRows+rRows)*m.CPUOperatorCost + outRows*m.CPUTupleCost
		if merge < bestCost {
			bestOp, bestCost = plan.OpMergeJoin, merge
		}
	}

	return bestOp, bestCost
}

// Join builds the best join node over l and r for query q. The caller
// guarantees l and r are connected, disjoint relation sets (a CCP pair).
// Valid for queries of <= 64 relations (uses Mask sets).
func (m *Model) Join(q *Query, l, r *plan.Node) *plan.Node {
	op, rows, cost := m.JoinEval(q, l, r)
	return m.MakeJoin(l, r, op, rows, cost)
}

// JoinEval is the allocation-free core of Join: it returns the cheapest
// operator, output cardinality and total cost of l ⋈ r. The DP inner loops
// call it per candidate pair and materialize a node only for the winner.
func (m *Model) JoinEval(q *Query, l, r *plan.Node) (plan.Op, float64, float64) {
	outRows := l.Rows * r.Rows * q.SelBetween(l.Set, r.Set)
	rightIndexed := r.IsLeaf() && q.Cat.Rels[r.RelID].HasPKIndex
	op, cost := m.JoinCost(l, r, outRows, rightIndexed)
	return op, outRows, cost
}

// JoinEvalRows is JoinEval with a precomputed output cardinality, letting
// callers that evaluate both orientations of a pair share the selectivity
// computation.
func (m *Model) JoinEvalRows(q *Query, l, r *plan.Node, outRows float64) (plan.Op, float64) {
	rightIndexed := r.IsLeaf() && q.Cat.Rels[r.RelID].HasPKIndex
	return m.JoinCost(l, r, outRows, rightIndexed)
}

// JoinEvalEntry is the value-typed JoinEval over DP table entries: it costs
// l ⋈ r from the (set, rows, cost, leaf) views alone, allocation-free and
// bit-identical to the node-based path. The Table-backed enumerators call
// it once per candidate pair.
func (m *Model) JoinEvalEntry(q *Query, l, r plan.Entry) (plan.Op, float64, float64) {
	outRows := l.Rows * r.Rows * q.SelBetween(l.Set, r.Set)
	indexNL := r.Leaf && q.Cat.Rels[r.RelID].HasPKIndex
	op, cost := m.joinCostEntries(l, r, outRows, indexNL)
	return op, outRows, cost
}

// JoinEvalEntryRows is JoinEvalEntry with a precomputed output cardinality,
// for callers costing both orientations of one pair.
func (m *Model) JoinEvalEntryRows(q *Query, l, r plan.Entry, outRows float64) (plan.Op, float64) {
	indexNL := r.Leaf && q.Cat.Rels[r.RelID].HasPKIndex
	return m.joinCostEntries(l, r, outRows, indexNL)
}

// joinCostEntries is the costing body over table entries: the entries'
// memoized log2 terms (computed once per stored sub-plan) feed the same
// shared arithmetic the node path uses, per candidate pair.
func (m *Model) joinCostEntries(l, r plan.Entry, outRows float64, indexNL bool) (plan.Op, float64) {
	return m.joinCostCore(l.Rows, l.Cost, l.LogRows, r.Rows, r.Cost, r.LogRows, r.LogIdx, outRows, indexNL)
}

// MakeJoin materializes a join node from a JoinEval result.
func (m *Model) MakeJoin(l, r *plan.Node, op plan.Op, rows, cost float64) *plan.Node {
	return &plan.Node{
		Set:   l.Set.Union(r.Set),
		Left:  l,
		Right: r,
		Op:    op,
		Rows:  rows,
		Cost:  cost,
	}
}

// JoinWithRows is Join with a precomputed output cardinality, used by the
// heuristic layer on large graphs where Mask sets are unavailable.
func (m *Model) JoinWithRows(q *Query, l, r *plan.Node, outRows float64) *plan.Node {
	rightIndexed := r.IsLeaf() && q.Cat.Rels[r.RelID].HasPKIndex
	op, cost := m.JoinCost(l, r, outRows, rightIndexed)
	return &plan.Node{
		Set:   l.Set.Union(r.Set),
		Left:  l,
		Right: r,
		Op:    op,
		Rows:  outRows,
		Cost:  cost,
	}
}

// Cout returns the Cout cost of a plan: the sum of intermediate result
// sizes. IKKBZ and LinDP rank relations with Cout, exactly as in the paper
// (§7.3, "It uses the Cout cost function").
func Cout(n *plan.Node) float64 {
	if n == nil || n.IsLeaf() {
		return 0
	}
	return n.Rows + Cout(n.Left) + Cout(n.Right)
}

// EstimatedExecTimeMS converts a plan's cost into an estimated execution
// time in milliseconds. PostgreSQL cost units are calibrated so that
// seq_page_cost=1.0 corresponds to roughly 0.005 ms of work on the paper's
// hardware class; Fig. 10 uses this conversion (see EXPERIMENTS.md for the
// substitution note).
func EstimatedExecTimeMS(planCost float64) float64 {
	return planCost * 0.005
}
