package cost

import (
	"math"

	"repro/internal/plan"
)

// Model holds the cost constants, mirroring PostgreSQL's planner GUCs.
// The zero value is unusable; use DefaultModel.
type Model struct {
	SeqPageCost       float64
	RandomPageCost    float64
	CPUTupleCost      float64
	CPUIndexTupleCost float64
	CPUOperatorCost   float64

	// DisableNestLoop / DisableMerge let ablation benchmarks restrict the
	// operator space (a simpler cost function, cf. Meister & Saake [22],
	// "cost-function complexity matters").
	DisableNestLoop bool
	DisableMerge    bool
}

// DefaultModel returns PostgreSQL 12's default cost constants.
func DefaultModel() *Model {
	return &Model{
		SeqPageCost:       1.0,
		RandomPageCost:    4.0,
		CPUTupleCost:      0.01,
		CPUIndexTupleCost: 0.005,
		CPUOperatorCost:   0.0025,
	}
}

// Scan returns the plan node for a sequential scan of relation i.
func (m *Model) Scan(q *Query, i int) *plan.Node {
	rel := q.Cat.Rels[i]
	return &plan.Node{
		Set:   1 << uint(i),
		RelID: i,
		Op:    plan.OpScan,
		Rows:  rel.Rows,
		Cost:  rel.Pages*m.SeqPageCost + rel.Rows*m.CPUTupleCost,
	}
}

// JoinCost computes the cheapest operator for joining l and r producing
// outRows tuples, given whether the right input is a base relation with a
// usable PK index (enables index nested loop). It returns the operator and
// the total cost including both children.
func (m *Model) JoinCost(l, r *plan.Node, outRows float64, rightIndexed bool) (plan.Op, float64) {
	childCost := l.Cost + r.Cost

	// Hash join: build on the smaller input, probe with the larger.
	build, probe := r, l
	if build.Rows > probe.Rows {
		build, probe = probe, build
	}
	hash := childCost +
		build.Rows*(m.CPUOperatorCost+m.CPUTupleCost) + // build phase
		probe.Rows*m.CPUOperatorCost + // probe phase
		outRows*m.CPUTupleCost
	bestOp, bestCost := plan.OpHashJoin, hash

	if !m.DisableNestLoop {
		// Materialized nested loop: rescan the (cheaper-to-rescan) inner.
		rescan := r.Rows * m.CPUOperatorCost
		nl := childCost + l.Rows*rescan + outRows*m.CPUTupleCost
		if nl < bestCost {
			bestOp, bestCost = plan.OpNestLoop, nl
		}
		if rightIndexed && r.IsLeaf() {
			// Index nested loop into the inner PK index.
			lookups := math.Log2(r.Rows+2) * m.CPUIndexTupleCost * 4
			perMatch := m.RandomPageCost / 2
			matched := outRows / math.Max(l.Rows, 1)
			inl := l.Cost + l.Rows*(lookups+matched*perMatch) + outRows*m.CPUTupleCost
			if inl < bestCost {
				bestOp, bestCost = plan.OpIndexNestLoop, inl
			}
		}
	}

	if !m.DisableMerge {
		sortCost := func(n *plan.Node) float64 {
			rows := math.Max(n.Rows, 2)
			return rows * math.Log2(rows) * m.CPUOperatorCost * 2
		}
		merge := childCost + sortCost(l) + sortCost(r) +
			(l.Rows+r.Rows)*m.CPUOperatorCost + outRows*m.CPUTupleCost
		if merge < bestCost {
			bestOp, bestCost = plan.OpMergeJoin, merge
		}
	}

	return bestOp, bestCost
}

// Join builds the best join node over l and r for query q. The caller
// guarantees l and r are connected, disjoint relation sets (a CCP pair).
// Valid for queries of <= 64 relations (uses Mask sets).
func (m *Model) Join(q *Query, l, r *plan.Node) *plan.Node {
	op, rows, cost := m.JoinEval(q, l, r)
	return m.MakeJoin(l, r, op, rows, cost)
}

// JoinEval is the allocation-free core of Join: it returns the cheapest
// operator, output cardinality and total cost of l ⋈ r. The DP inner loops
// call it per candidate pair and materialize a node only for the winner.
func (m *Model) JoinEval(q *Query, l, r *plan.Node) (plan.Op, float64, float64) {
	outRows := l.Rows * r.Rows * q.SelBetween(l.Set, r.Set)
	rightIndexed := r.IsLeaf() && q.Cat.Rels[r.RelID].HasPKIndex
	op, cost := m.JoinCost(l, r, outRows, rightIndexed)
	return op, outRows, cost
}

// JoinEvalRows is JoinEval with a precomputed output cardinality, letting
// callers that evaluate both orientations of a pair share the selectivity
// computation.
func (m *Model) JoinEvalRows(q *Query, l, r *plan.Node, outRows float64) (plan.Op, float64) {
	rightIndexed := r.IsLeaf() && q.Cat.Rels[r.RelID].HasPKIndex
	return m.JoinCost(l, r, outRows, rightIndexed)
}

// MakeJoin materializes a join node from a JoinEval result.
func (m *Model) MakeJoin(l, r *plan.Node, op plan.Op, rows, cost float64) *plan.Node {
	return &plan.Node{
		Set:   l.Set.Union(r.Set),
		Left:  l,
		Right: r,
		Op:    op,
		Rows:  rows,
		Cost:  cost,
	}
}

// JoinWithRows is Join with a precomputed output cardinality, used by the
// heuristic layer on large graphs where Mask sets are unavailable.
func (m *Model) JoinWithRows(q *Query, l, r *plan.Node, outRows float64) *plan.Node {
	rightIndexed := r.IsLeaf() && q.Cat.Rels[r.RelID].HasPKIndex
	op, cost := m.JoinCost(l, r, outRows, rightIndexed)
	return &plan.Node{
		Set:   l.Set.Union(r.Set),
		Left:  l,
		Right: r,
		Op:    op,
		Rows:  outRows,
		Cost:  cost,
	}
}

// Cout returns the Cout cost of a plan: the sum of intermediate result
// sizes. IKKBZ and LinDP rank relations with Cout, exactly as in the paper
// (§7.3, "It uses the Cout cost function").
func Cout(n *plan.Node) float64 {
	if n == nil || n.IsLeaf() {
		return 0
	}
	return n.Rows + Cout(n.Left) + Cout(n.Right)
}

// EstimatedExecTimeMS converts a plan's cost into an estimated execution
// time in milliseconds. PostgreSQL cost units are calibrated so that
// seq_page_cost=1.0 corresponds to roughly 0.005 ms of work on the paper's
// hardware class; Fig. 10 uses this conversion (see EXPERIMENTS.md for the
// substitution note).
func EstimatedExecTimeMS(planCost float64) float64 {
	return planCost * 0.005
}
