// Package cost implements the PostgreSQL-like cost model of §7.1: cardinality
// estimation from per-edge join selectivities, and operator costing for
// sequential scans, hash joins, (index) nested loops and merge joins. The
// paper deliberately replaces PostgreSQL's full cost model with a close
// approximation restricted to inner equi-joins (footnote 7); this package is
// that approximation.
package cost

import (
	"repro/internal/bitset"
	"repro/internal/catalog"
	"repro/internal/graph"
)

// Query bundles everything the optimizer needs about one input query: the
// relations (with statistics) and the join graph whose edges carry predicate
// selectivities.
type Query struct {
	Cat catalog.Catalog
	G   *graph.Graph
}

// N returns the number of relations in the FROM clause.
func (q *Query) N() int { return q.G.N }

// Rows returns the estimated base cardinality of relation i.
func (q *Query) Rows(i int) float64 { return q.Cat.Rels[i].Rows }

// Names returns the relation names indexed by relation id.
func (q *Query) Names() []string {
	names := make([]string, q.N())
	for i := range names {
		names[i] = q.Cat.Rels[i].Name
	}
	return names
}

// SelBetween returns the product of the selectivities of all join edges with
// one endpoint in l and the other in r. Valid for queries of <= 64 relations.
func (q *Query) SelBetween(l, r bitset.Mask) float64 {
	// Delegated to the graph's adjacency-indexed selectivity walk: the same
	// iteration order and arithmetic as the historical per-edge map lookups,
	// minus the map probes (this runs once per candidate join pair).
	return q.G.CrossSel(l, r)
}

// SelBetweenSets is SelBetween for dynamic sets (queries of any size).
func (q *Query) SelBetweenSets(l, r bitset.Set) float64 {
	sel := 1.0
	if r.Count() < l.Count() {
		l, r = r, l
	}
	l.ForEach(func(v int) {
		for _, w := range q.G.Neighbors(v) {
			if r.Has(w) {
				sel *= q.G.EdgeSel(v, w)
			}
		}
	})
	return sel
}

// SubsetRows returns the estimated cardinality of the join of the relations
// in s: the product of base cardinalities times the selectivity of every
// edge internal to s. This estimate is order-independent, so any join order
// over s produces the same output cardinality.
func (q *Query) SubsetRows(s bitset.Mask) float64 {
	rows := 1.0
	s.ForEach(func(v int) { rows *= q.Rows(v) })
	for _, e := range q.G.Edges {
		if s.Has(e.A) && s.Has(e.B) {
			rows *= e.Sel
		}
	}
	return rows
}
