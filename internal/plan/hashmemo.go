package plan

import "repro/internal/bitset"

// HashMemo is an open-addressing hash table keyed by relation-set bitmaps
// using the Murmur3 64-bit finalizer, mirroring the GPU memo table of §5
// ("The memo table is implemented using the fast Murmur3 hashing algorithm
// (a simple open-addressing hash table)"). The GPU simulator uses it so that
// probe counts model real device memory traffic; it is also a drop-in
// alternative to Memo for CPU algorithms.
//
// The table never stores the empty set; a zero key marks an empty slot.
type HashMemo struct {
	keys  []bitset.Mask
	vals  []*Node
	used  int
	mask  uint64
	Probe uint64 // total slots inspected, for memory-traffic accounting
}

// NewHashMemo returns a table with capacity for at least hint entries
// before growing.
func NewHashMemo(hint int) *HashMemo {
	capacity := 16
	for capacity < hint*2 {
		capacity <<= 1
	}
	return &HashMemo{
		keys: make([]bitset.Mask, capacity),
		vals: make([]*Node, capacity),
		mask: uint64(capacity - 1),
	}
}

// Murmur3Fmix64 is the 64-bit finalizer of MurmurHash3.
//
//mpdp:hotpath
func Murmur3Fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Get returns the plan stored for s, or nil.
func (h *HashMemo) Get(s bitset.Mask) *Node {
	if s == 0 {
		return nil
	}
	i := Murmur3Fmix64(uint64(s)) & h.mask
	for {
		h.Probe++
		switch h.keys[i] {
		case s:
			return h.vals[i]
		case 0:
			return nil
		}
		i = (i + 1) & h.mask
	}
}

// Put unconditionally stores p for s, growing the table at 70% load.
func (h *HashMemo) Put(s bitset.Mask, p *Node) {
	if s == 0 {
		panic("plan: HashMemo cannot store the empty set")
	}
	if 10*(h.used+1) > 7*len(h.keys) {
		h.grow()
	}
	i := Murmur3Fmix64(uint64(s)) & h.mask
	for {
		h.Probe++
		switch h.keys[i] {
		case s:
			h.vals[i] = p
			return
		case 0:
			h.keys[i] = s
			h.vals[i] = p
			h.used++
			return
		}
		i = (i + 1) & h.mask
	}
}

// Improve stores p for s if it beats the current best.
func (h *HashMemo) Improve(s bitset.Mask, p *Node) bool {
	if cur := h.Get(s); cur != nil && cur.Cost <= p.Cost {
		return false
	}
	h.Put(s, p)
	return true
}

// Len returns the number of stored sets.
func (h *HashMemo) Len() int { return h.used }

func (h *HashMemo) grow() {
	oldKeys, oldVals := h.keys, h.vals
	h.keys = make([]bitset.Mask, len(oldKeys)*2)
	h.vals = make([]*Node, len(oldVals)*2)
	h.mask = uint64(len(h.keys) - 1)
	h.used = 0
	for i, k := range oldKeys {
		if k != 0 {
			h.Put(k, oldVals[i])
		}
	}
}
