package plan

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitset"
)

func leaf(id int, rows, cost float64) *Node {
	return &Node{Set: bitset.Single(id), RelID: id, Rows: rows, Cost: cost}
}

func join(l, r *Node) *Node {
	return &Node{
		Set:   l.Set.Union(r.Set),
		Left:  l,
		Right: r,
		Op:    OpHashJoin,
		Rows:  l.Rows * r.Rows,
		Cost:  l.Cost + r.Cost + 1,
	}
}

func TestNodeShapePredicates(t *testing.T) {
	a, b, c := leaf(0, 10, 1), leaf(1, 20, 1), leaf(2, 30, 1)
	leftDeep := join(join(a, b), c)
	bushyRight := join(a, join(b, c))
	if !leftDeep.IsLeftDeep() {
		t.Error("left-deep plan not recognized")
	}
	if bushyRight.IsLeftDeep() {
		t.Error("right-deep plan misclassified as left-deep")
	}
	if leftDeep.Size() != 3 || leftDeep.Depth() != 3 {
		t.Errorf("Size/Depth = %d/%d", leftDeep.Size(), leftDeep.Depth())
	}
	if a.Size() != 1 || a.Depth() != 1 || !a.IsLeaf() {
		t.Error("leaf predicates broken")
	}
}

func TestRelationsWalksLeaves(t *testing.T) {
	p := join(join(leaf(3, 1, 1), leaf(1, 1, 1)), leaf(2, 1, 1))
	got := p.Relations()
	if len(got) != 3 {
		t.Fatalf("Relations = %v", got)
	}
	seen := map[int]bool{}
	for _, r := range got {
		seen[r] = true
	}
	for _, want := range []int{1, 2, 3} {
		if !seen[want] {
			t.Errorf("missing relation %d", want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := join(leaf(0, 1, 1), leaf(1, 1, 1))
	if err := good.Validate([]int{0, 1}); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	dup := join(leaf(0, 1, 1), leaf(0, 1, 1))
	if err := dup.Validate([]int{0, 1}); err == nil {
		t.Error("duplicate leaf not caught")
	}
	missing := join(leaf(0, 1, 1), leaf(1, 1, 1))
	if err := missing.Validate([]int{0, 1, 2}); err == nil {
		t.Error("missing relation not caught")
	}
	extra := join(leaf(0, 1, 1), leaf(7, 1, 1))
	if err := extra.Validate([]int{0, 1}); err == nil {
		t.Error("unexpected relation not caught")
	}
}

func TestStringAndExplain(t *testing.T) {
	p := join(leaf(0, 10, 1), leaf(1, 20, 2))
	if s := p.String(); !strings.Contains(s, "R0") || !strings.Contains(s, "⋈") {
		t.Errorf("String = %q", s)
	}
	e := p.Explain([]string{"orders", "lineitem"})
	if !strings.Contains(e, "orders") || !strings.Contains(e, "HashJoin") {
		t.Errorf("Explain = %q", e)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpScan: "Scan", OpHashJoin: "HashJoin", OpNestLoop: "NestLoop",
		OpIndexNestLoop: "IndexNLJoin", OpMergeJoin: "MergeJoin",
	} {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestMemoImprove(t *testing.T) {
	m := NewMemo(4)
	s := bitset.MaskOf(0, 1)
	cheap := &Node{Set: s, Cost: 5}
	costly := &Node{Set: s, Cost: 9}
	if !m.Improve(s, costly) {
		t.Error("first plan must install")
	}
	if m.Improve(s, costly) {
		t.Error("equal-cost plan must not reinstall")
	}
	if !m.Improve(s, cheap) {
		t.Error("cheaper plan must install")
	}
	if m.Get(s) != cheap {
		t.Error("memo kept the wrong plan")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestHashMemoMatchesMapMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMemo(16)
	h := NewHashMemo(4) // force growth
	for i := 0; i < 5000; i++ {
		s := bitset.Mask(rng.Uint64())
		if s == 0 {
			continue
		}
		n := &Node{Set: s, Cost: rng.Float64() * 100}
		m.Improve(s, n)
		h.Improve(s, n)
	}
	for i := 0; i < 5000; i++ {
		s := bitset.Mask(rng.Uint64())
		a, b := m.Get(s), h.Get(s)
		if a != b {
			t.Fatalf("memo mismatch for %v", s)
		}
	}
	if m.Len() != h.Len() {
		t.Errorf("Len mismatch: %d vs %d", m.Len(), h.Len())
	}
}

func TestHashMemoRejectsEmptySet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty-set key")
		}
	}()
	NewHashMemo(4).Put(0, &Node{})
}

func TestMurmurFinalizerAvalanche(t *testing.T) {
	// Flipping one input bit must flip roughly half the output bits.
	for bit := 0; bit < 64; bit++ {
		a := Murmur3Fmix64(0x12345678)
		b := Murmur3Fmix64(0x12345678 ^ (1 << uint(bit)))
		diff := a ^ b
		ones := 0
		for d := diff; d != 0; d &= d - 1 {
			ones++
		}
		if ones < 16 || ones > 48 {
			t.Errorf("bit %d: only %d output bits flipped", bit, ones)
		}
	}
}
