package plan

import "repro/internal/bitset"

// Memo maps relation sets to their best known sub-plan. It is the dynamic
// programming table ("BestPlan" in Algorithms 1–3).
type Memo struct {
	m map[bitset.Mask]*Node
}

// NewMemo returns an empty memo sized for a query of n relations.
func NewMemo(n int) *Memo {
	return &Memo{m: make(map[bitset.Mask]*Node, 1<<uint(min(n, 20)))}
}

// Get returns the best plan for set s, or nil.
func (mm *Memo) Get(s bitset.Mask) *Node { return mm.m[s] }

// Put unconditionally stores p as the plan for set s.
func (mm *Memo) Put(s bitset.Mask, p *Node) { mm.m[s] = p }

// Improve stores p for s if it beats the current best; it returns true when
// p was installed.
func (mm *Memo) Improve(s bitset.Mask, p *Node) bool {
	if cur, ok := mm.m[s]; ok && cur.Cost <= p.Cost {
		return false
	}
	mm.m[s] = p
	return true
}

// Len returns the number of memoized sets.
func (mm *Memo) Len() int { return len(mm.m) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
