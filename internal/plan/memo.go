package plan

import "repro/internal/bitset"

// Memo maps relation sets to their best known sub-plan — the original
// Go-map dynamic programming table ("BestPlan" in Algorithms 1–3). The DP
// hot paths have moved to the allocation-free Table; Memo remains as the
// simple reference implementation the differential tests check Table and
// HashMemo against.
type Memo struct {
	m map[bitset.Mask]*Node
}

// NewMemo returns an empty memo sized for a query of n relations. The
// pre-size is a capped heuristic: the number of connected sets is only
// 2^n for dense graphs, so beyond a few thousand buckets the memo grows on
// demand instead of pre-allocating a megabucket map (a 20-relation chain
// has 211 connected sets, not a million). The DP drivers themselves size
// their plan.Table from the actual connected-set census
// (dp.ConnectedBuckets).
func NewMemo(n int) *Memo {
	return &Memo{m: make(map[bitset.Mask]*Node, TableSizeHint(n))}
}

// Get returns the best plan for set s, or nil.
func (mm *Memo) Get(s bitset.Mask) *Node { return mm.m[s] }

// Put unconditionally stores p as the plan for set s.
func (mm *Memo) Put(s bitset.Mask, p *Node) { mm.m[s] = p }

// Improve stores p for s if it beats the current best; it returns true when
// p was installed.
func (mm *Memo) Improve(s bitset.Mask, p *Node) bool {
	if cur, ok := mm.m[s]; ok && cur.Cost <= p.Cost {
		return false
	}
	mm.m[s] = p
	return true
}

// Len returns the number of memoized sets.
func (mm *Memo) Len() int { return len(mm.m) }
