package plan

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

func TestTablePutBaseAndView(t *testing.T) {
	tab := NewTable(8)
	tab.PutBase(bitset.Single(3), &Node{Set: bitset.Single(3), RelID: 3, Op: OpScan, Rows: 100, Cost: 7})
	e, ok := tab.View(bitset.Single(3))
	if !ok {
		t.Fatal("base entry missing")
	}
	if !e.Leaf || e.RelID != 3 || e.Rows != 100 || e.Cost != 7 || e.Op != OpScan {
		t.Errorf("entry = %+v", e)
	}
	if e.LogRows != math.Log2(100) || e.LogIdx != math.Log2(102) {
		t.Errorf("memoized logs wrong: %v %v", e.LogRows, e.LogIdx)
	}
	if _, ok := tab.View(bitset.Single(4)); ok {
		t.Error("phantom entry")
	}
	if _, ok := tab.View(0); ok {
		t.Error("empty set must not resolve")
	}
}

func TestTableImproveSemantics(t *testing.T) {
	tab := NewTable(8)
	s := bitset.MaskOf(0, 1)
	w := Winner{Left: bitset.Single(0), Right: bitset.Single(1), Op: OpHashJoin, Rows: 10, Cost: 9, Found: true}
	if !tab.Improve(s, w) {
		t.Error("first winner must install")
	}
	if tab.Improve(s, w) {
		t.Error("equal-cost winner must not reinstall (ties keep the incumbent)")
	}
	w.Cost = 5
	if !tab.Improve(s, w) {
		t.Error("cheaper winner must install")
	}
	if c, _ := tab.Cost(s); c != 5 {
		t.Errorf("Cost = %v", c)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
}

// TestTableGrowthAtHighLoad drives the table far past its initial capacity
// and checks every entry survives the rehashes.
func TestTableGrowthAtHighLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := NewTable(2) // minimum capacity, forces repeated growth
	want := map[bitset.Mask]float64{}
	for i := 0; i < 20000; i++ {
		s := bitset.Mask(rng.Uint64())
		if s == 0 {
			continue
		}
		c := rng.Float64() * 1e6
		if cur, ok := want[s]; !ok || c < cur {
			want[s] = c
		}
		tab.Improve(s, Winner{Left: s.LowestBit(), Right: s.Diff(s.LowestBit()), Cost: c, Found: true})
	}
	if tab.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(want))
	}
	if 10*tab.Len() > 7*len(tab.keys) {
		t.Errorf("load factor above 0.7 after growth: %d/%d", tab.Len(), len(tab.keys))
	}
	for s, c := range want {
		got, ok := tab.Cost(s)
		if !ok || got != c {
			t.Fatalf("entry %v: cost %v ok=%v, want %v", s, got, ok, c)
		}
	}
}

// TestTableDifferentialAgainstMemo runs the same randomized insert/improve
// sequence through the SoA table and the reference map memo; stored costs
// and membership must agree exactly.
func TestTableDifferentialAgainstMemo(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tab := NewTable(4)
	memo := NewMemo(8)
	keys := make([]bitset.Mask, 300)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = bitset.Mask(rng.Uint64() & 0xffff) // small space forces collisions
		}
	}
	for i := 0; i < 10000; i++ {
		s := keys[rng.Intn(len(keys))]
		c := rng.Float64() * 100
		w := Winner{Left: s.LowestBit(), Right: s.Diff(s.LowestBit()), Rows: c, Cost: c, Found: true}
		if rng.Intn(4) == 0 {
			tab.Put(s, w)
			memo.Put(s, &Node{Set: s, Cost: c})
		} else {
			ti := tab.Improve(s, w)
			mi := memo.Improve(s, &Node{Set: s, Cost: c})
			if ti != mi {
				t.Fatalf("Improve divergence on %v: table %v, memo %v", s, ti, mi)
			}
		}
	}
	if tab.Len() != memo.Len() {
		t.Fatalf("Len mismatch: %d vs %d", tab.Len(), memo.Len())
	}
	for _, s := range keys {
		c, ok := tab.Cost(s)
		n := memo.Get(s)
		if ok != (n != nil) {
			t.Fatalf("membership mismatch for %v", s)
		}
		if ok && c != n.Cost {
			t.Fatalf("cost mismatch for %v: %v vs %v", s, c, n.Cost)
		}
	}
}

// TestTableBuildDefersMaterialization checks that Build reconstructs the
// recorded winning tree from the splits, resolving base entries to the
// provided leaf plans and allocating interior nodes from the arena.
func TestTableBuildDefersMaterialization(t *testing.T) {
	leaves := []*Node{
		leaf(0, 10, 1), leaf(1, 20, 2), leaf(2, 30, 3),
	}
	tab := NewTable(8)
	for i, l := range leaves {
		tab.PutBase(bitset.Single(i), l)
	}
	s01 := bitset.MaskOf(0, 1)
	full := bitset.MaskOf(0, 1, 2)
	tab.Put(s01, Winner{Left: bitset.Single(0), Right: bitset.Single(1), Op: OpHashJoin, Rows: 200, Cost: 10, Found: true})
	tab.Put(full, Winner{Left: s01, Right: bitset.Single(2), Op: OpMergeJoin, Rows: 6000, Cost: 42, Found: true})

	a := NewArena()
	p := tab.Build(full, leaves, a)
	if p == nil {
		t.Fatal("Build returned nil")
	}
	if p.Op != OpMergeJoin || p.Cost != 42 || p.Set != full {
		t.Errorf("root = %+v", p)
	}
	if p.Left.Op != OpHashJoin || p.Left.Set != s01 {
		t.Errorf("left = %+v", p.Left)
	}
	if p.Right != leaves[2] || p.Left.Left != leaves[0] || p.Left.Right != leaves[1] {
		t.Error("base entries must resolve to the provided leaf plans")
	}
	if err := p.Validate([]int{0, 1, 2}); err != nil {
		t.Errorf("built plan invalid: %v", err)
	}
	if a.Len() != 2 {
		t.Errorf("arena handed out %d nodes, want 2 interior nodes", a.Len())
	}
	if tab.Build(bitset.MaskOf(1, 2), leaves, a) != nil {
		t.Error("Build of an unknown set must return nil")
	}
}

func TestTableRejectsEmptySet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty-set key")
		}
	}()
	NewTable(4).Put(0, Winner{Found: true})
}

func TestArenaResetRecyclesChunks(t *testing.T) {
	a := NewArena()
	first := make([]*Node, 0, 3*arenaChunk/2)
	for i := 0; i < cap(first); i++ {
		n := a.New()
		n.RelID = i
		first = append(first, n)
	}
	if a.Len() != len(first) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(first))
	}
	for i, n := range first {
		if n.RelID != i {
			t.Fatalf("node %d overwritten before Reset", i)
		}
	}
	a.Reset()
	if a.Len() != 0 {
		t.Errorf("Len after Reset = %d", a.Len())
	}
	// After Reset the same chunk memory is handed out again, zeroed.
	n := a.New()
	if n != first[0] {
		t.Error("Reset must recycle the first chunk")
	}
	if n.RelID != 0 || n.Left != nil {
		t.Error("recycled node not zeroed")
	}
}

// TestHashMemoGrowthAtHighLoad drives the open-addressing memo past several
// resizes and verifies the rehash preserves every key at a legal load.
func TestHashMemoGrowthAtHighLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := NewHashMemo(2)
	want := map[bitset.Mask]*Node{}
	for i := 0; i < 20000; i++ {
		s := bitset.Mask(rng.Uint64())
		if s == 0 {
			continue
		}
		n := &Node{Set: s}
		want[s] = n
		h.Put(s, n)
	}
	if h.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(want))
	}
	if 10*h.used > 7*len(h.keys) {
		t.Errorf("load factor above 0.7 after growth: %d/%d", h.used, len(h.keys))
	}
	for s, n := range want {
		if h.Get(s) != n {
			t.Fatalf("lost key %v across growth", s)
		}
	}
}

// TestHashMemoProbeMonotonicity checks the memory-traffic accounting: every
// Get/Put inspects at least one slot and the probe counter never decreases,
// including across table growth.
func TestHashMemoProbeMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	h := NewHashMemo(2)
	last := h.Probe
	for i := 0; i < 5000; i++ {
		s := bitset.Mask(rng.Uint64())
		if s == 0 {
			continue
		}
		if rng.Intn(2) == 0 {
			h.Put(s, &Node{Set: s})
		} else {
			h.Get(s)
		}
		if h.Probe <= last {
			t.Fatalf("op %d: probe count %d did not advance past %d", i, h.Probe, last)
		}
		last = h.Probe
	}
}

// TestHashMemoDifferentialRandomOps replays a randomized Put/Improve/Get
// sequence against the reference map memo; results must match op for op.
func TestHashMemoDifferentialRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	h := NewHashMemo(2)
	m := NewMemo(8)
	keys := make([]bitset.Mask, 200)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = bitset.Mask(rng.Uint64() & 0xfff)
		}
	}
	for i := 0; i < 20000; i++ {
		s := keys[rng.Intn(len(keys))]
		switch rng.Intn(3) {
		case 0:
			n := &Node{Set: s, Cost: rng.Float64() * 100}
			h.Put(s, n)
			m.Put(s, n)
		case 1:
			n := &Node{Set: s, Cost: rng.Float64() * 100}
			hi := h.Improve(s, n)
			mi := m.Improve(s, n)
			if hi != mi {
				t.Fatalf("op %d: Improve divergence on %v: hash %v, map %v", i, s, hi, mi)
			}
		default:
			if h.Get(s) != m.Get(s) {
				t.Fatalf("op %d: Get divergence on %v", i, s)
			}
		}
	}
	if h.Len() != m.Len() {
		t.Errorf("Len mismatch: %d vs %d", h.Len(), m.Len())
	}
}
