package plan

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// The memo tables absorb one Get per candidate pair in the DP inner loops;
// these benches compare the Go-map memo against the Murmur3 open-addressing
// tables of §5 (the pointer-storing HashMemo and the SoA Table the DP hot
// path runs on).
func benchKeys(n int) []bitset.Mask {
	rng := rand.New(rand.NewSource(1))
	keys := make([]bitset.Mask, n)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = bitset.Mask(rng.Uint64())
		}
	}
	return keys
}

func BenchmarkMemoGet(b *testing.B) {
	keys := benchKeys(1 << 16)
	m := NewMemo(20)
	for _, k := range keys {
		m.Put(k, &Node{Set: k})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Get(keys[i&(len(keys)-1)]) == nil {
			b.Fatal("miss")
		}
	}
}

func BenchmarkHashMemoGet(b *testing.B) {
	keys := benchKeys(1 << 16)
	h := NewHashMemo(len(keys))
	for _, k := range keys {
		h.Put(k, &Node{Set: k})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.Get(keys[i&(len(keys)-1)]) == nil {
			b.Fatal("miss")
		}
	}
}

func BenchmarkHashMemoPut(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	h := NewHashMemo(1 << 17)
	node := &Node{}
	for i := 0; i < b.N; i++ {
		h.Put(keys[i&(len(keys)-1)], node)
	}
}

func BenchmarkTableView(b *testing.B) {
	keys := benchKeys(1 << 16)
	t := NewTable(len(keys))
	for _, k := range keys {
		t.Put(k, Winner{Left: k.LowestBit(), Right: k.Diff(k.LowestBit()), Cost: 1, Found: true})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.View(keys[i&(len(keys)-1)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTableImprove(b *testing.B) {
	keys := benchKeys(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	t := NewTable(1 << 17)
	for i := 0; i < b.N; i++ {
		k := keys[i&(len(keys)-1)]
		t.Improve(k, Winner{Left: k.LowestBit(), Right: k.Diff(k.LowestBit()), Cost: float64(i), Found: true})
	}
}
