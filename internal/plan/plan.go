// Package plan defines join-tree plans and the memo tables the dynamic
// programs store their best sub-plans in: a Go-map memo for CPU algorithms
// and an open-addressing Murmur3 hash table mirroring the GPU memo of §5.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
)

// Op identifies a physical join operator chosen by the cost model.
type Op uint8

// Join operator kinds.
const (
	OpScan Op = iota
	OpHashJoin
	OpNestLoop
	OpIndexNestLoop
	OpMergeJoin
)

// String returns the operator name.
func (o Op) String() string {
	switch o {
	case OpScan:
		return "Scan"
	case OpHashJoin:
		return "HashJoin"
	case OpNestLoop:
		return "NestLoop"
	case OpIndexNestLoop:
		return "IndexNLJoin"
	case OpMergeJoin:
		return "MergeJoin"
	}
	return "?"
}

// Node is a node of a (bushy) join tree. Leaves have Left == Right == nil
// and RelID set; inner nodes join Left and Right with operator Op.
//
// Set is the bitmap of base relations under the node in the local index
// space of the query being optimized (valid for queries of <= 64 relations;
// the heuristic layer re-derives sets from leaves where needed).
type Node struct {
	Set   bitset.Mask
	RelID int
	Left  *Node
	Right *Node
	Op    Op

	Rows float64 // estimated output cardinality
	Cost float64 // estimated total cost (includes child costs)
}

// IsLeaf reports whether n scans a base relation.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Relations returns the set of base relation ids under n by walking the
// tree. For DP-produced plans this equals n.Set, but heuristic plans over
// large graphs rely on this method.
func (n *Node) Relations() []int {
	var out []int
	var walk func(*Node)
	walk = func(m *Node) {
		if m == nil {
			return
		}
		if m.IsLeaf() {
			out = append(out, m.RelID)
			return
		}
		walk(m.Left)
		walk(m.Right)
	}
	walk(n)
	return out
}

// Size returns the number of leaves under n.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return n.Left.Size() + n.Right.Size()
}

// Depth returns the height of the tree (1 for a leaf).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// IsLeftDeep reports whether every right child is a leaf.
func (n *Node) IsLeftDeep() bool {
	for !n.IsLeaf() {
		if !n.Right.IsLeaf() {
			return false
		}
		n = n.Left
	}
	return true
}

// String renders the join tree in a compact LISP-ish form with costs.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b, nil)
	return b.String()
}

// Explain renders an indented EXPLAIN-style tree using names[i] as the name
// of relation i (nil names fall back to indices).
func (n *Node) Explain(names []string) string {
	var b strings.Builder
	n.explain(&b, names, 0)
	return b.String()
}

func (n *Node) write(b *strings.Builder, names []string) {
	if n.IsLeaf() {
		if names != nil {
			b.WriteString(names[n.RelID])
		} else {
			fmt.Fprintf(b, "R%d", n.RelID)
		}
		return
	}
	b.WriteByte('(')
	n.Left.write(b, names)
	b.WriteString(" ⋈ ")
	n.Right.write(b, names)
	b.WriteByte(')')
}

func (n *Node) explain(b *strings.Builder, names []string, indent int) {
	pad := strings.Repeat("  ", indent)
	if n.IsLeaf() {
		name := fmt.Sprintf("R%d", n.RelID)
		if names != nil {
			name = names[n.RelID]
		}
		fmt.Fprintf(b, "%sScan %s  (rows=%.0f cost=%.1f)\n", pad, name, n.Rows, n.Cost)
		return
	}
	fmt.Fprintf(b, "%s%s  (rows=%.0f cost=%.1f)\n", pad, n.Op, n.Rows, n.Cost)
	n.Left.explain(b, names, indent+1)
	n.Right.explain(b, names, indent+1)
}

// Validate checks structural plan invariants against the expected relation
// set: every base relation appears exactly once as a leaf and inner nodes
// partition their children's sets. It returns a descriptive error on the
// first violation. DP plans additionally carry consistent Set fields.
func (n *Node) Validate(expected []int) error {
	want := make(map[int]bool, len(expected))
	for _, r := range expected {
		want[r] = true
	}
	seen := make(map[int]bool)
	var walk func(*Node) error
	walk = func(m *Node) error {
		if m == nil {
			return fmt.Errorf("plan: nil node")
		}
		if m.IsLeaf() {
			if seen[m.RelID] {
				return fmt.Errorf("plan: relation %d appears twice", m.RelID)
			}
			if !want[m.RelID] {
				return fmt.Errorf("plan: unexpected relation %d", m.RelID)
			}
			seen[m.RelID] = true
			return nil
		}
		if m.Left == nil || m.Right == nil {
			return fmt.Errorf("plan: inner node with missing child")
		}
		if err := walk(m.Left); err != nil {
			return err
		}
		return walk(m.Right)
	}
	if err := walk(n); err != nil {
		return err
	}
	if len(seen) != len(want) {
		return fmt.Errorf("plan: covers %d relations, want %d", len(seen), len(want))
	}
	return nil
}
