package plan

import (
	"math"

	"repro/internal/bitset"
)

// Table is the struct-of-arrays DP table used by every CPU enumerator: an
// open-addressing hash table keyed by relation-set bitmaps with the Murmur3
// 64-bit finalizer, the scheme the paper's §5 GPU memo uses (previously
// mirrored only by HashMemo for device-traffic accounting, now promoted to
// the default plan memo).
//
// Unlike Memo/HashMemo it stores no plan nodes at all: each set's best
// cost, best split (left/right masks), operator and cardinality live in
// flat parallel arrays, so the DP inner loops touch only value types and
// never call the allocator. The arrays are grouped by access pattern: the
// probe loop scans only the key array; a hit loads the set's costing
// payload (rows, cost, memoized log terms, op/leaf meta) from a single
// cache line; and the split masks — needed only when publishing a winner
// and when materializing the final tree — stay in their own cold arrays.
// Plan-tree materialization is deferred to the end of the run (Build),
// which walks the recorded splits once and materializes exactly the
// winning tree from an Arena.
//
// The table never stores the empty set; a zero key marks an empty slot.
// Concurrent reads (Get/View/Has/Cost) are safe while no writer runs; the
// level-parallel drivers publish writes only at their level barriers.
type Table struct {
	keys  []bitset.Mask
	vals  []tval        // per-entry costing payload (one cache line)
	left  []bitset.Mask // left split; zero for base (singleton) entries
	right []bitset.Mask

	used int
	mask uint64
}

// tval is the hot per-entry payload: everything a candidate-pair costing
// touches, packed so one probe hit costs one payload cache line.
type tval struct {
	rows float64
	cost float64
	lg   float64 // log2(max(rows, 2)), the merge-join sort term
	lgi  float64 // log2(rows + 2), the index-nested-loop lookup term
	meta uint16  // relID (bits 0-7) | op (bits 8-11) | leaf flag (bit 12)
}

const (
	metaRelID uint16 = 0x00ff
	metaOp    uint16 = 0x0f00
	metaLeaf  uint16 = 0x1000
)

// Entry is the value-typed view of one table slot, everything a DP inner
// loop needs to cost a candidate join without touching a plan node. The
// logarithm fields are memoized at insert time: each stored sub-plan is
// re-costed against many candidate partners, so computing its log2 terms
// once per insert instead of twice per pair takes math.Log2 off the hot
// path entirely (the values are the same math.Log2 bits either way).
type Entry struct {
	Set     bitset.Mask
	Left    bitset.Mask // zero for base entries
	Right   bitset.Mask
	Rows    float64
	Cost    float64
	LogRows float64 // log2(max(Rows, 2))
	LogIdx  float64 // log2(Rows + 2)
	Op      Op
	Leaf    bool // the underlying base plan is a plain relation scan
	RelID   int32
}

// Winner is a join candidate that won a per-set evaluation: the split plus
// its costing, everything needed to record the set's best plan by value.
type Winner struct {
	Left  bitset.Mask
	Right bitset.Mask
	Rows  float64
	Cost  float64
	Op    Op
	Found bool
}

// TableSizeHint is the capped pre-size for DP tables (and the matching map
// memos) when the connected-set count is discovered on the fly rather than
// known up front: exact below 2^12 — only dense graphs approach 2^n
// connected sets — growth on demand beyond.
func TableSizeHint(n int) int {
	return 1 << uint(min(n, 12))
}

// NewTable returns a table with capacity for at least hint entries before
// growing. Size hint from the run's actual connected-set count when known
// (dp.ConnectedBuckets) so steady-state runs never rehash.
func NewTable(hint int) *Table {
	capacity := 16
	for capacity < hint*2 {
		capacity <<= 1
	}
	return &Table{
		keys:  make([]bitset.Mask, capacity),
		vals:  make([]tval, capacity),
		left:  make([]bitset.Mask, capacity),
		right: make([]bitset.Mask, capacity),
		mask:  uint64(capacity - 1),
	}
}

// Len returns the number of stored sets.
func (t *Table) Len() int { return t.used }

// slot returns the open-addressing slot of s: either the slot holding s or
// the empty slot where s would be inserted.
//
//mpdp:hotpath
func (t *Table) slot(s bitset.Mask) int {
	i := Murmur3Fmix64(uint64(s)) & t.mask
	for {
		k := t.keys[i]
		if k == s || k == 0 {
			return int(i)
		}
		i = (i + 1) & t.mask
	}
}

// Get returns the full entry stored for s by value, split masks included.
//
//mpdp:hotpath
func (t *Table) Get(s bitset.Mask) (Entry, bool) {
	if s == 0 {
		return Entry{}, false
	}
	i := t.slot(s)
	if t.keys[i] == 0 {
		return Entry{}, false
	}
	v := &t.vals[i]
	return Entry{
		Set:     s,
		Left:    t.left[i],
		Right:   t.right[i],
		Rows:    v.rows,
		Cost:    v.cost,
		LogRows: v.lg,
		LogIdx:  v.lgi,
		Op:      Op(v.meta & metaOp >> 8),
		Leaf:    v.meta&metaLeaf != 0,
		RelID:   int32(v.meta & metaRelID),
	}, true
}

// View returns the costing view of s: like Get but without the split
// masks, so a candidate-pair probe touches only the key array and the
// entry's payload line (the split is only needed when materializing).
//
//mpdp:hotpath
func (t *Table) View(s bitset.Mask) (Entry, bool) {
	if s == 0 {
		return Entry{}, false
	}
	i := t.slot(s)
	if t.keys[i] == 0 {
		return Entry{}, false
	}
	v := &t.vals[i]
	return Entry{
		Set:     s,
		Rows:    v.rows,
		Cost:    v.cost,
		LogRows: v.lg,
		LogIdx:  v.lgi,
		Op:      Op(v.meta & metaOp >> 8),
		Leaf:    v.meta&metaLeaf != 0,
		RelID:   int32(v.meta & metaRelID),
	}, true
}

// MustView is View for probes the DP invariant guarantees to hit (every
// smaller connected set is stored before a level is evaluated): a miss is a
// broken enumerator, and failing loudly here beats silently costing against
// a zero entry.
//
//mpdp:hotpath
func (t *Table) MustView(s bitset.Mask) Entry {
	e, ok := t.View(s)
	if !ok {
		panic("plan: DP table is missing a connected set the enumeration invariant guarantees")
	}
	return e
}

// Has reports whether s is stored. For subsets of a connected set below the
// current DP level this doubles as the connectivity test: every connected
// set of a smaller size is already in the table.
//
//mpdp:hotpath
func (t *Table) Has(s bitset.Mask) bool {
	return s != 0 && t.keys[t.slot(s)] != 0
}

// Cost returns the stored cost of s, or found = false.
//
//mpdp:hotpath
func (t *Table) Cost(s bitset.Mask) (float64, bool) {
	if s == 0 {
		return 0, false
	}
	i := t.slot(s)
	if t.keys[i] == 0 {
		return 0, false
	}
	return t.vals[i].cost, true
}

// PutBase seeds the table entry of singleton set s from its prepared base
// plan (a relation scan, or a composite plan the heuristic layer passes as
// a leaf).
//
//mpdp:hotpath
func (t *Table) PutBase(s bitset.Mask, n *Node) {
	m := uint16(n.RelID) & metaRelID
	m |= uint16(n.Op) << 8 & metaOp
	if n.IsLeaf() {
		m |= metaLeaf
	}
	t.put(s, 0, 0, n.Rows, n.Cost, m)
}

// Put unconditionally records w as the plan for set s.
//
//mpdp:hotpath
func (t *Table) Put(s bitset.Mask, w Winner) {
	t.put(s, w.Left, w.Right, w.Rows, w.Cost, uint16(w.Op)<<8&metaOp)
}

// Improve records w for s if it beats the current best; it returns true
// when w was installed. Ties keep the incumbent, like Memo.Improve.
//
//mpdp:hotpath
func (t *Table) Improve(s bitset.Mask, w Winner) bool {
	if s == 0 {
		panic("plan: Table cannot store the empty set")
	}
	i := t.slot(s)
	if t.keys[i] != 0 {
		if t.vals[i].cost <= w.Cost {
			return false
		}
		// Overwrite in place: the key exists, so no growth and no second
		// probe are needed.
		t.setAt(i, w.Left, w.Right, w.Rows, w.Cost, uint16(w.Op)<<8&metaOp)
		return true
	}
	t.Put(s, w)
	return true
}

//mpdp:hotpath
func (t *Table) put(s, left, right bitset.Mask, rows, cost float64, meta uint16) {
	if s == 0 {
		panic("plan: Table cannot store the empty set")
	}
	if 10*(t.used+1) > 7*len(t.keys) {
		t.grow()
	}
	i := t.slot(s)
	if t.keys[i] == 0 {
		t.keys[i] = s
		t.used++
	}
	t.setAt(i, left, right, rows, cost, meta)
}

//mpdp:hotpath
func (t *Table) setAt(i int, left, right bitset.Mask, rows, cost float64, meta uint16) {
	t.left[i] = left
	t.right[i] = right
	t.vals[i] = tval{
		rows: rows,
		cost: cost,
		lg:   math.Log2(math.Max(rows, 2)),
		lgi:  math.Log2(rows + 2),
		meta: meta,
	}
}

func (t *Table) grow() {
	old := *t
	capacity := len(old.keys) * 2
	t.keys = make([]bitset.Mask, capacity)
	t.vals = make([]tval, capacity)
	t.left = make([]bitset.Mask, capacity)
	t.right = make([]bitset.Mask, capacity)
	t.mask = uint64(capacity - 1)
	t.used = 0
	for i, k := range old.keys {
		if k != 0 {
			v := old.vals[i]
			t.put(k, old.left[i], old.right[i], v.rows, v.cost, v.meta)
		}
	}
}

// Range calls f for every interior (joined) set stored in the table, by
// value. Base (singleton) entries are skipped: they carry no split worth
// sharing. Iteration order is the table's slot order; f must not mutate
// the table while ranging.
func (t *Table) Range(f func(s bitset.Mask, w Winner)) {
	for i, k := range t.keys {
		if k == 0 || t.left[i] == 0 {
			continue
		}
		v := &t.vals[i]
		f(k, Winner{
			Left:  t.left[i],
			Right: t.right[i],
			Rows:  v.rows,
			Cost:  v.cost,
			Op:    Op(v.meta & metaOp >> 8),
			Found: true,
		})
	}
}

// Build materializes the plan tree recorded for set s: interior nodes come
// from the arena, base entries resolve to the prepared per-relation plans
// (leaves[i] is the plan of singleton set {i}). It returns nil when s is
// not in the table.
func (t *Table) Build(s bitset.Mask, leaves []*Node, a *Arena) *Node {
	e, ok := t.Get(s)
	if !ok {
		return nil
	}
	if e.Left == 0 {
		return leaves[s.Lowest()]
	}
	l := t.Build(e.Left, leaves, a)
	r := t.Build(e.Right, leaves, a)
	if l == nil || r == nil {
		return nil
	}
	return a.NewNode(s, l, r, e.Op, e.Rows, e.Cost)
}
