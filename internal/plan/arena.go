package plan

import "repro/internal/bitset"

// Arena bump-allocates plan nodes in chunks so that materializing a plan
// tree costs one slice allocation per chunk instead of one heap object per
// node, and a whole query's nodes are freed (or recycled) wholesale.
//
// The DP inner loops never materialize nodes at all (they work on the
// value-typed Table entries); the arena serves the residual materialization
// points — Table.Build at the end of a run and tree copies on the service
// warm path. Reset rewinds the arena for the next query while keeping its
// chunks, so a long-lived worker reaches a steady state where plan
// materialization performs no heap allocation at all.
//
// An Arena is not safe for concurrent use; give each worker its own.
// Nodes handed out remain valid until Reset, so callers that cache or
// return arena-built trees across queries must copy them first (the
// service layer's per-caller remap copy already does this).
type Arena struct {
	chunks [][]Node // chunks[i] has len = nodes handed out, cap = chunk size
	ci     int      // index of the active chunk
}

// arenaChunk is the node count of each newly allocated chunk (~28 KiB).
const arenaChunk = 512

// NewArena returns an empty arena. The zero value is also ready to use.
func NewArena() *Arena { return &Arena{} }

// New returns a pointer to a zeroed node from the arena.
//
//mpdp:hotpath
func (a *Arena) New() *Node {
	for {
		if a.ci == len(a.chunks) {
			a.chunks = append(a.chunks, make([]Node, 0, arenaChunk))
		}
		c := a.chunks[a.ci]
		if len(c) == cap(c) {
			a.ci++ // chunk exhausted; the next one is empty or fresh
			continue
		}
		c = c[:len(c)+1]
		a.chunks[a.ci] = c
		n := &c[len(c)-1]
		*n = Node{}
		return n
	}
}

// NewNode returns an arena node initialized as an inner join node.
//
//mpdp:hotpath
func (a *Arena) NewNode(set bitset.Mask, left, right *Node, op Op, rows, cost float64) *Node {
	n := a.New()
	n.Set = set
	n.Left = left
	n.Right = right
	n.Op = op
	n.Rows = rows
	n.Cost = cost
	return n
}

// Reset rewinds the arena, invalidating every node it has handed out while
// keeping the underlying chunks for reuse by the next query.
//
//mpdp:hotpath
func (a *Arena) Reset() {
	for i := range a.chunks {
		a.chunks[i] = a.chunks[i][:0]
	}
	a.ci = 0
}

// Len returns the number of live nodes handed out since the last Reset.
func (a *Arena) Len() int {
	live := 0
	for _, c := range a.chunks {
		live += len(c)
	}
	return live
}
