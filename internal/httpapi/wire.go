package httpapi

import (
	"encoding/json"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Response is the wire shape of one optimized statement. It is the single
// source of truth for both binaries: mpdp-serve and mpdp-cluster marshal
// the same struct, so their field names cannot drift (the parity test in
// this package additionally pins the key set). Single-node servers leave
// the cluster-only fields (node, failover) at their zero values, which
// omitempty drops from the JSON.
type Response struct {
	Relations int     `json:"relations"`
	Edges     int     `json:"edges"`
	Cost      float64 `json:"cost"`
	Rows      float64 `json:"rows"`
	Algorithm string  `json:"algorithm"`
	// Backend is the execution substrate that produced the plan (cpu-seq,
	// cpu-parallel, gpu, heuristic); cache hits and replicated plans report
	// the original optimization's backend.
	Backend   string  `json:"backend"`
	Shape     string  `json:"shape"`
	CacheHit  bool    `json:"cache_hit"`
	Coalesced bool    `json:"coalesced"`
	FellBack  bool    `json:"fell_back"`
	ElapsedUs float64 `json:"elapsed_us"`
	// Fingerprint is the canonical join-graph fingerprint the plan is
	// cached under: isomorphic queries with identical statistics share it.
	Fingerprint string `json:"fingerprint,omitempty"`
	// GPUDevices/GPUSimMS carry the device work model when the GPU backend
	// produced the plan.
	GPUDevices int     `json:"gpu_devices,omitempty"`
	GPUSimMS   float64 `json:"gpu_sim_ms,omitempty"`
	Plan       string  `json:"plan,omitempty"`
	// Node and Failover are set only by cluster front doors.
	Node     string `json:"node,omitempty"`
	Failover bool   `json:"failover,omitempty"`
	// Trace and TraceWallUS are set only when the request asked for its
	// phase breakdown with ?trace=1: the spans recorded along the critical
	// path (see OBSERVABILITY.md for the taxonomy) and the wall time the
	// trace covers. Spans flagged sim are modeled GPU time, not wall time.
	Trace       []obs.Span `json:"trace,omitempty"`
	TraceWallUS float64    `json:"trace_wall_us,omitempty"`
}

// Error is the structured error envelope every /v1 endpoint (and the
// legacy aliases) returns on failure.
type Error struct {
	// Code is a stable, machine-readable error class (see the Code*
	// constants).
	Code string `json:"code"`
	// Message is a short human-readable description.
	Message string `json:"message"`
	// Detail carries the underlying error text, when there is one.
	Detail string `json:"detail,omitempty"`
	// RequestID identifies the failed request; it is also echoed in the
	// X-Request-Id response header.
	RequestID string `json:"request_id"`
	// RetryAfterMS, on retryable codes (overloaded, quota_exceeded,
	// unavailable), hints how long to back off before retrying. The same
	// hint is rounded up to whole seconds in the Retry-After header.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// The error-code registry, paired with their HTTP status codes.
const (
	CodeMethodNotAllowed = "method_not_allowed" // 405
	CodeBadRequest       = "bad_request"        // 400
	CodeTooLarge         = "too_large"          // 413
	CodeInvalidQuery     = "invalid_query"      // 422
	CodeUnavailable      = "unavailable"        // 503
	CodeOverloaded       = "overloaded"         // 503, admission-control shed
	CodeQuotaExceeded    = "quota_exceeded"     // 429, per-tenant quota
	CodeCanceled         = "client_closed_request"
	CodeInternal         = "internal"
)

// The wire form of a query lives in the leaf package internal/wire so the
// cluster's socket transport can ship the identical serialization without
// an import cycle; the aliases below keep this package's public names.

// WireRelation is one base relation of a structured wire query.
type WireRelation = wire.Relation

// WireEdge is one join predicate of a structured wire query.
type WireEdge = wire.Edge

// WireQuery is the JSON request body of the /v1 optimization endpoints:
// either a SQL statement in the internal dialect (bound against the
// server's schema) or an explicit catalog + join graph, which lets SDK
// clients ship programmatically built queries with exact statistics.
type WireQuery = wire.Query

// FromQuery serializes a query into wire form (the SDK's Remote driver
// uses this to ship builder-made queries).
func FromQuery(q *cost.Query) *WireQuery { return wire.FromQuery(q) }

// BatchRequest is the body of POST /v1/batch: a set of statements and/or
// structured queries optimized concurrently, which lets the GPU backend's
// batcher coalesce them into device-saturating batches within one request.
type BatchRequest struct {
	// Statements are SQL texts in the internal dialect.
	Statements []string `json:"statements,omitempty"`
	// Queries are structured wire queries, appended after Statements in
	// the result order.
	Queries []WireQuery `json:"queries,omitempty"`
	// Explain asks for the plan tree of every result.
	Explain bool `json:"explain,omitempty"`
}

// BatchItem is one element of a batch response: exactly one of Response or
// Error is set.
type BatchItem struct {
	Response *Response `json:"response,omitempty"`
	Error    *Error    `json:"error,omitempty"`
}

// BatchResponse is the body of a /v1/batch answer, results in request
// order (statements first, then structured queries).
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// FingerprintResponse is the body of a /v1/fingerprint answer: the
// canonical cache identity of a query without optimizing it.
type FingerprintResponse struct {
	Fingerprint string `json:"fingerprint"`
	Relations   int    `json:"relations"`
	Edges       int    `json:"edges"`
	Shape       string `json:"shape"`
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte("{}")
	}
	return b
}
