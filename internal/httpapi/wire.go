package httpapi

import (
	"encoding/json"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Response is the wire shape of one optimized statement. It is the single
// source of truth for both binaries: mpdp-serve and mpdp-cluster marshal
// the same struct, so their field names cannot drift (the parity test in
// this package additionally pins the key set). Single-node servers leave
// the cluster-only fields (node, failover) at their zero values, which
// omitempty drops from the JSON.
type Response struct {
	Relations int     `json:"relations"`
	Edges     int     `json:"edges"`
	Cost      float64 `json:"cost"`
	Rows      float64 `json:"rows"`
	Algorithm string  `json:"algorithm"`
	// Backend is the execution substrate that produced the plan (cpu-seq,
	// cpu-parallel, gpu, heuristic); cache hits and replicated plans report
	// the original optimization's backend.
	Backend   string  `json:"backend"`
	Shape     string  `json:"shape"`
	CacheHit  bool    `json:"cache_hit"`
	Coalesced bool    `json:"coalesced"`
	FellBack  bool    `json:"fell_back"`
	ElapsedUs float64 `json:"elapsed_us"`
	// Fingerprint is the canonical join-graph fingerprint the plan is
	// cached under: isomorphic queries with identical statistics share it.
	Fingerprint string `json:"fingerprint,omitempty"`
	// WarmStartSeeded counts the connected sets seeded from the subgraph
	// memo before enumeration; WarmStartFraction is the fraction of the
	// walked connected-set lattice those seeds covered (the enumeration
	// skipped them). Both are zero on cache hits and cold runs.
	WarmStartSeeded   uint64  `json:"warm_start_seeded,omitempty"`
	WarmStartFraction float64 `json:"warm_start_fraction,omitempty"`
	// StatsEpoch is the catalog stats epoch the served plan was produced
	// under (see POST /v1/catalog/stats).
	StatsEpoch uint64 `json:"stats_epoch,omitempty"`
	// GPUDevices/GPUSimMS carry the device work model when the GPU backend
	// produced the plan.
	GPUDevices int     `json:"gpu_devices,omitempty"`
	GPUSimMS   float64 `json:"gpu_sim_ms,omitempty"`
	Plan       string  `json:"plan,omitempty"`
	// Node and Failover are set only by cluster front doors.
	Node     string `json:"node,omitempty"`
	Failover bool   `json:"failover,omitempty"`
	// Trace and TraceWallUS are set only when the request asked for its
	// phase breakdown with ?trace=1: the spans recorded along the critical
	// path (see OBSERVABILITY.md for the taxonomy) and the wall time the
	// trace covers. Spans flagged sim are modeled GPU time, not wall time.
	Trace       []obs.Span `json:"trace,omitempty"`
	TraceWallUS float64    `json:"trace_wall_us,omitempty"`
}

// Error is the structured error envelope every /v1 endpoint (and the
// legacy aliases) returns on failure.
type Error struct {
	// Code is a stable, machine-readable error class (see the Code*
	// constants).
	Code string `json:"code"`
	// Message is a short human-readable description.
	Message string `json:"message"`
	// Detail carries the underlying error text, when there is one.
	Detail string `json:"detail,omitempty"`
	// RequestID identifies the failed request; it is also echoed in the
	// X-Request-Id response header.
	RequestID string `json:"request_id"`
	// RetryAfterMS, on retryable codes (overloaded, quota_exceeded,
	// unavailable), hints how long to back off before retrying. The same
	// hint is rounded up to whole seconds in the Retry-After header.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// The error-code registry, paired with their HTTP status codes.
const (
	CodeMethodNotAllowed = "method_not_allowed" // 405
	CodeBadRequest       = "bad_request"        // 400
	CodeTooLarge         = "too_large"          // 413
	CodeInvalidQuery     = "invalid_query"      // 422
	CodeUnavailable      = "unavailable"        // 503
	CodeOverloaded       = "overloaded"         // 503, admission-control shed
	CodeQuotaExceeded    = "quota_exceeded"     // 429, per-tenant quota
	CodeCanceled         = "client_closed_request"
	CodeInternal         = "internal"
	CodeNotFound         = "not_found"   // 404, e.g. DELETE of an uncached fingerprint
	CodeStaleEpoch       = "stale_epoch" // 409, ?epoch= assertion failed
)

// The wire form of a query lives in the leaf package internal/wire so the
// cluster's socket transport can ship the identical serialization without
// an import cycle; the aliases below keep this package's public names.

// WireRelation is one base relation of a structured wire query.
type WireRelation = wire.Relation

// WireEdge is one join predicate of a structured wire query.
type WireEdge = wire.Edge

// WireQuery is the JSON request body of the /v1 optimization endpoints:
// either a SQL statement in the internal dialect (bound against the
// server's schema) or an explicit catalog + join graph, which lets SDK
// clients ship programmatically built queries with exact statistics.
type WireQuery = wire.Query

// FromQuery serializes a query into wire form (the SDK's Remote driver
// uses this to ship builder-made queries).
func FromQuery(q *cost.Query) *WireQuery { return wire.FromQuery(q) }

// BatchRequest is the body of POST /v1/batch: a set of statements and/or
// structured queries optimized concurrently, which lets the GPU backend's
// batcher coalesce them into device-saturating batches within one request.
type BatchRequest struct {
	// Statements are SQL texts in the internal dialect.
	Statements []string `json:"statements,omitempty"`
	// Queries are structured wire queries, appended after Statements in
	// the result order.
	Queries []WireQuery `json:"queries,omitempty"`
	// Explain asks for the plan tree of every result.
	Explain bool `json:"explain,omitempty"`
}

// BatchItem is one element of a batch response: exactly one of Response or
// Error is set.
type BatchItem struct {
	Response *Response `json:"response,omitempty"`
	Error    *Error    `json:"error,omitempty"`
}

// BatchResponse is the body of a /v1/batch answer, results in request
// order (statements first, then structured queries).
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// FingerprintResponse is the body of a /v1/fingerprint answer: the
// canonical cache identity of a query without optimizing it.
type FingerprintResponse struct {
	Fingerprint string `json:"fingerprint"`
	Relations   int    `json:"relations"`
	Edges       int    `json:"edges"`
	Shape       string `json:"shape"`
}

// InvalidateResponse is the body of a successful
// DELETE /v1/cache/{fingerprint}.
type InvalidateResponse struct {
	Fingerprint string `json:"fingerprint"`
	// SubEntriesDropped counts the subgraph-memo entries that were
	// harvested from the invalidated plan and went with it.
	SubEntriesDropped int `json:"sub_entries_dropped"`
}

// FlushResponse is the body of POST /v1/cache/flush: what the flush
// dropped.
type FlushResponse struct {
	PlansDropped    int `json:"plans_dropped"`
	SubPlansDropped int `json:"sub_plans_dropped"`
}

// CatalogRelStats is one relation's updated statistics in a
// POST /v1/catalog/stats body. Absent optional fields keep the schema
// entry's previous value; Distinct merges per column.
type CatalogRelStats struct {
	Name string `json:"name"`
	// Rows is the new estimated tuple count (required, positive).
	Rows float64 `json:"rows"`
	// Width is the average tuple width in bytes (0: keep, or 100 for new
	// relations). Pages overrides the derived page count when positive.
	Width int     `json:"width,omitempty"`
	Pages float64 `json:"pages,omitempty"`
	// PKIndex marks a usable primary-key index.
	PKIndex *bool `json:"pk_index,omitempty"`
	// Distinct updates per-column distinct counts, which drive the SQL
	// binder's join selectivities (1/max(distinct sides)).
	Distinct map[string]float64 `json:"distinct,omitempty"`
}

// CatalogStatsRequest is the body of POST /v1/catalog/stats.
type CatalogStatsRequest struct {
	Relations []CatalogRelStats `json:"relations"`
}

// CatalogStatsResponse reports the epoch transition a stats update caused.
// Cached plans stamped with epochs before NewEpoch are lazily re-costed on
// their next probe — never flushed.
type CatalogStatsResponse struct {
	OldEpoch uint64 `json:"old_epoch"`
	NewEpoch uint64 `json:"new_epoch"`
	// Updated counts the schema relations the request changed or created.
	Updated int `json:"updated"`
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte("{}")
	}
	return b
}
