package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/catalog"
	"repro/internal/sql"
)

// This file is the /v1 cache & catalog control surface — the versioned
// replacement for ad-hoc admin flushing:
//
//	GET    /v1/cache                summary + top entries by hit count
//	DELETE /v1/cache/{fingerprint}  targeted invalidation incl. sub-entries
//	POST   /v1/cache/flush          drop everything
//	POST   /v1/catalog/stats        update relation statistics, bump epoch
//
// Both binaries serve it through the shared Engine, so mpdp-serve answers
// for its single service and mpdp-cluster for the whole ring with the same
// wire shapes. The cluster's legacy /cluster/flush admin verb remains as
// an alias of the flush semantics (see MountClusterAdmin).

// defaultCacheTopN bounds the GET /v1/cache entry listing when the caller
// does not pass ?top=.
const defaultCacheTopN = 10

// handleCache serves GET /v1/cache.
func (a *API) handleCache(w http.ResponseWriter, r *http.Request) {
	rid := a.requestID(r)
	if r.Method != http.MethodGet {
		a.fail(w, rid, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required", nil)
		return
	}
	topN := defaultCacheTopN
	if s := r.URL.Query().Get("top"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			a.fail(w, rid, http.StatusBadRequest, CodeBadRequest, "top must be a non-negative integer", err)
			return
		}
		topN = v
	}
	info := a.engine.CacheInfo(topN)
	a.ok(w, rid, &info)
}

// handleCacheEntry serves DELETE /v1/cache/{fingerprint}: targeted
// invalidation of one cached plan and the sub-entries harvested from it.
func (a *API) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	rid := a.requestID(r)
	if r.Method != http.MethodDelete {
		a.fail(w, rid, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "DELETE required", nil)
		return
	}
	fp := r.PathValue("fingerprint")
	found, subs := a.engine.Invalidate(fp)
	if !found {
		a.fail(w, rid, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no cached plan under fingerprint %q", fp), nil)
		return
	}
	a.ok(w, rid, &InvalidateResponse{Fingerprint: fp, SubEntriesDropped: subs})
}

// handleCacheFlush serves POST /v1/cache/flush.
func (a *API) handleCacheFlush(w http.ResponseWriter, r *http.Request) {
	rid := a.requestID(r)
	if !a.requirePOST(w, r, rid) {
		return
	}
	before := a.engine.CacheInfo(0)
	a.engine.FlushCache()
	a.ok(w, rid, &FlushResponse{PlansDropped: before.Plans, SubPlansDropped: before.SubPlans})
}

// handleCatalogStats serves POST /v1/catalog/stats: it installs updated
// relation statistics into the server's SQL schema (copy-on-write — bound
// queries in flight keep the snapshot they started with) and bumps the
// engine's stats epoch. Cached plans from before the bump are lazily
// re-costed on their next probe; nothing is flushed.
func (a *API) handleCatalogStats(w http.ResponseWriter, r *http.Request) {
	rid := a.requestID(r)
	if !a.requirePOST(w, r, rid) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, int64(a.opts.MaxStatementBytes)+1))
	if err != nil {
		a.fail(w, rid, http.StatusBadRequest, CodeBadRequest, "reading request body", err)
		return
	}
	if len(body) > a.opts.MaxStatementBytes {
		a.fail(w, rid, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Sprintf("request exceeds %d bytes", a.opts.MaxStatementBytes), nil)
		return
	}
	var req CatalogStatsRequest
	if err := json.Unmarshal(body, &req); err != nil {
		a.fail(w, rid, http.StatusBadRequest, CodeBadRequest, "parsing JSON body", err)
		return
	}
	if len(req.Relations) == 0 {
		a.fail(w, rid, http.StatusUnprocessableEntity, CodeInvalidQuery, "empty stats update", nil)
		return
	}
	for _, rs := range req.Relations {
		if rs.Name == "" {
			a.fail(w, rid, http.StatusUnprocessableEntity, CodeInvalidQuery, "relation with empty name", nil)
			return
		}
		if rs.Rows <= 0 {
			a.fail(w, rid, http.StatusUnprocessableEntity, CodeInvalidQuery,
				fmt.Sprintf("relation %q: rows must be positive", rs.Name), nil)
			return
		}
	}
	updated := a.updateSchema(req.Relations)
	old, cur := a.engine.BumpStatsEpoch()
	a.ok(w, rid, &CatalogStatsResponse{OldEpoch: old, NewEpoch: cur, Updated: updated})
}

// updateSchema applies the stats updates copy-on-write: the whole schema
// map is cloned, mutated, then swapped in, so concurrent binds keep
// reading an immutable snapshot.
func (a *API) updateSchema(updates []CatalogRelStats) int {
	a.schemaMu.Lock()
	defer a.schemaMu.Unlock()
	next := make(sql.Schema, len(a.schema)+len(updates))
	for name, tb := range a.schema {
		next[name] = tb
	}
	for _, rs := range updates {
		tb, ok := next[rs.Name]
		if !ok {
			tb = sql.Table{Rel: catalog.NewRelation(rs.Name, rs.Rows, 100), PK: "id"}
		}
		tb.Rel.Rows = rs.Rows
		if rs.Width > 0 {
			tb.Rel.Width = rs.Width
		}
		// Re-derive pages from the (possibly new) width, then honour an
		// explicit override.
		tb.Rel = catalog.NewRelation(tb.Rel.Name, tb.Rel.Rows, tb.Rel.Width)
		if ok {
			tb.Rel.HasPKIndex = a.schema[rs.Name].Rel.HasPKIndex
		}
		if rs.Pages > 0 {
			tb.Rel.Pages = rs.Pages
		}
		if rs.PKIndex != nil {
			tb.Rel.HasPKIndex = *rs.PKIndex
		}
		if len(rs.Distinct) > 0 {
			d := make(map[string]float64, len(tb.Distinct)+len(rs.Distinct))
			for c, v := range tb.Distinct {
				d[c] = v
			}
			for c, v := range rs.Distinct {
				d[c] = v
			}
			tb.Distinct = d
		}
		next[rs.Name] = tb
	}
	a.schema = next
	return len(updates)
}
