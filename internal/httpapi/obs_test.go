package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/workload"
)

// scrapeMetrics GETs path and validates the body as Prometheus text
// exposition format, returning the metric families seen.
func scrapeMetrics(t *testing.T, ts *httptest.Server, path string) map[string]bool {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status = %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("GET %s Content-Type = %q, want text/plain", path, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families, err := obs.ValidateExposition(string(body))
	if err != nil {
		t.Fatalf("GET %s: malformed exposition: %v\n%s", path, err, body)
	}
	return families
}

func postOK(t *testing.T, ts *httptest.Server, path, body string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s status = %d: %s", path, resp.StatusCode, raw)
	}
}

// TestMetricsExpositionGolden is the exposition-format gate on both
// binaries' muxes: after live traffic, /metrics (and the /v1 alias) must
// parse cleanly and carry the core series a dashboard scrapes. CI enforces
// the same contract against a live mpdp-serve.
func TestMetricsExpositionGolden(t *testing.T) {
	serveTS := newServiceServer(t, service.Config{})
	clusterTS := newClusterServer(t)

	shared := []string{
		"mpdp_requests_total", "mpdp_cache_hits_total", "mpdp_cache_misses_total",
		"mpdp_coalesced_total", "mpdp_fallbacks_total", "mpdp_errors_total",
		"mpdp_shed_total", "mpdp_queued_total", "mpdp_queue_depth", "mpdp_inflight",
		"mpdp_route_total", "mpdp_backend_routed_total", "mpdp_backend_served_total",
		"mpdp_request_seconds", "mpdp_shed_seconds", "mpdp_queue_wait_seconds",
		"mpdp_cache_plans",
	}
	clusterOnly := []string{
		"mpdp_cluster_requests_total", "mpdp_cluster_failovers_total",
		"mpdp_cluster_alive_nodes", "mpdp_cluster_cache_plans",
	}

	for name, ts := range map[string]*httptest.Server{"serve": serveTS, "cluster": clusterTS} {
		// Twice: a miss then a hit, so both latency families have samples.
		postOK(t, ts, "/v1/optimize", testStatement)
		postOK(t, ts, "/v1/optimize", testStatement)
		for _, path := range []string{"/metrics", "/v1/metrics"} {
			families := scrapeMetrics(t, ts, path)
			for _, want := range shared {
				if !families[want] {
					t.Errorf("%s %s: missing family %s", name, path, want)
				}
			}
			if name == "cluster" {
				for _, want := range clusterOnly {
					if !families[want] {
						t.Errorf("cluster %s: missing family %s", path, want)
					}
				}
			}
		}
	}

	// POST is not a scrape.
	resp, err := http.Post(serveTS.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status = %d, want 405", resp.StatusCode)
	}
}

// postTraced posts a structured wire query with ?trace=1 and a request id,
// returning the decoded response.
func postTraced(t *testing.T, ts *httptest.Server, wq *WireQuery, rid string) *Response {
	t.Helper()
	body, err := json.Marshal(wq)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize?trace=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("traced optimize status = %d: %s", resp.StatusCode, raw)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestClusterTraceSpanSum is the tentpole acceptance test: a traced
// 20-relation MusicBrainz request through the cluster front door returns
// phase spans whose non-simulated sum is within 10% of the traced wall
// time — i.e. the span taxonomy partitions the critical path instead of
// double-counting or leaking it.
func TestClusterTraceSpanSum(t *testing.T) {
	ts := newClusterServer(t)
	q := workload.MusicBrainzQuery(20, rand.New(rand.NewSource(7)))
	resp := postTraced(t, ts, FromQuery(q), "trace-accept-1")

	if len(resp.Trace) == 0 {
		t.Fatal("traced response has no spans")
	}
	if resp.TraceWallUS <= 0 {
		t.Fatalf("trace_wall_us = %g, want > 0", resp.TraceWallUS)
	}
	var sum float64
	phases := make(map[string]bool)
	for _, s := range resp.Trace {
		if s.DurUS < 0 {
			t.Errorf("span %s has negative duration %g", s.Phase, s.DurUS)
		}
		phases[s.Phase] = true
		if !s.Sim {
			sum += s.DurUS
		}
	}
	for _, want := range []string{obs.PhaseCompile, obs.PhaseCacheProbe, obs.PhaseEnumerate, obs.PhaseMaterialize} {
		if !phases[want] {
			t.Errorf("trace lacks phase %q (got %v)", want, phases)
		}
	}
	if ratio := sum / resp.TraceWallUS; ratio < 0.90 || ratio > 1.10 {
		t.Errorf("non-sim span sum %.1fus is %.1f%% of wall %.1fus, want within 10%%\nspans: %+v",
			sum, 100*ratio, resp.TraceWallUS, resp.Trace)
	}

	// A cache hit on the same fingerprint still traces, with no enumerate.
	hit := postTraced(t, ts, FromQuery(q), "trace-accept-2")
	if !hit.CacheHit {
		t.Fatal("second identical query was not a cache hit")
	}
	for _, s := range hit.Trace {
		if s.Phase == obs.PhaseEnumerate {
			t.Errorf("cache hit recorded an enumerate span: %+v", hit.Trace)
		}
	}

	// Without ?trace= the response must not carry spans.
	plain := postJSONKeys(t, ts, "/v1/optimize", testStatement)
	if contains(plain, "trace") || contains(plain, "trace_wall_us") {
		t.Errorf("untraced response leaked trace fields: %v", plain)
	}
}

// TestDebugSlowEndpoint checks the always-on slow ring: requests land in
// /v1/debug/slow slowest-first, carrying the caller's X-Request-Id and the
// phase spans (the request-id propagation satellite).
func TestDebugSlowEndpoint(t *testing.T) {
	ts := newServiceServer(t, service.Config{})
	q := workload.MusicBrainzQuery(12, rand.New(rand.NewSource(3)))
	postTraced(t, ts, FromQuery(q), "slow-rid-42")

	resp, err := http.Get(ts.URL + "/v1/debug/slow?n=8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/slow status = %d", resp.StatusCode)
	}
	var out SlowResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Slowest) == 0 {
		t.Fatal("slow ring is empty after a request")
	}
	found := false
	for i, e := range out.Slowest {
		if e.WallUS <= 0 {
			t.Errorf("entry %d wall_us = %g, want > 0", i, e.WallUS)
		}
		if i > 0 && e.WallUS > out.Slowest[i-1].WallUS {
			t.Errorf("slow ring not sorted slowest-first at %d", i)
		}
		if e.RequestID == "slow-rid-42" {
			found = true
			if len(e.Spans) == 0 {
				t.Error("slow entry for traced request has no spans")
			}
		}
	}
	if !found {
		t.Errorf("no slow entry carries the request id; got %+v", out.Slowest)
	}

	// Bad n is a 400, not a panic.
	resp2, err := http.Get(ts.URL + "/v1/debug/slow?n=zero")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /v1/debug/slow?n=zero status = %d, want 400", resp2.StatusCode)
	}
}
