package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/workload"
)

const testStatement = "SELECT r.id FROM release r, release_group rg, artist_credit ac " +
	"WHERE r.release_group = rg.id AND r.artist_credit = ac.id AND rg.artist_credit = ac.id"

func newServiceServer(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	svc := service.New(cfg)
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(New(ServiceEngine(svc), Options{}).Mux())
	t.Cleanup(ts.Close)
	return ts
}

func newClusterServer(t *testing.T) *httptest.Server {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: 2, Replicas: 2, Service: service.Config{Workers: 2}})
	t.Cleanup(c.Close)
	ts := httptest.NewServer(New(ClusterEngine(c), Options{}).Mux())
	t.Cleanup(ts.Close)
	return ts
}

func postJSONKeys(t *testing.T, ts *httptest.Server, path, body string) []string {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s status = %d", path, resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestResponseShapeParity is the satellite parity test: the /optimize (and
// /v1/optimize) JSON of mpdp-serve and mpdp-cluster must use identical
// field names — the cluster may add exactly node and failover, nothing
// else, and no shared field may be missing or renamed on either side. Both
// muxes marshal the shared httpapi.Response, so a drift can only come from
// a second handler set sneaking back in; this test makes that a CI failure.
func TestResponseShapeParity(t *testing.T) {
	serveTS := newServiceServer(t, service.Config{})
	clusterTS := newClusterServer(t)

	for _, path := range []string{"/optimize", "/v1/optimize"} {
		serveKeys := postJSONKeys(t, serveTS, path, testStatement)
		clusterKeys := postJSONKeys(t, clusterTS, path, testStatement)

		clusterOnly := map[string]bool{"node": true, "failover": true}
		var clusterShared []string
		for _, k := range clusterKeys {
			if !clusterOnly[k] {
				clusterShared = append(clusterShared, k)
			}
		}
		if fmt.Sprint(serveKeys) != fmt.Sprint(clusterShared) {
			t.Errorf("%s shape drift:\n  serve:   %v\n  cluster: %v (minus node/failover)",
				path, serveKeys, clusterShared)
		}
		// The GPU fields must be spelled identically when present: force
		// them with a GPU-routed statement on both.
		gpuServe := postJSONKeys(t, serveTS, path, workload.CycleSQL(40))
		gpuCluster := postJSONKeys(t, clusterTS, path, workload.CycleSQL(40))
		for _, want := range []string{"backend", "gpu_devices", "gpu_sim_ms"} {
			if !contains(gpuServe, want) {
				t.Errorf("%s serve GPU response lacks %q: %v", path, want, gpuServe)
			}
			if !contains(gpuCluster, want) {
				t.Errorf("%s cluster GPU response lacks %q: %v", path, want, gpuCluster)
			}
		}
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestClientDisconnectCancelsInFlightOptimization is the satellite
// regression test: a 40-relation cyclic query forced onto the exact
// CPU-parallel route would walk a 2^40 subset lattice for hours; aborting
// the HTTP request must cancel that enumeration promptly, free the worker,
// and account the cancellation in the counters.
func TestClientDisconnectCancelsInFlightOptimization(t *testing.T) {
	// ExactLimit 64 disables the GPU/heuristic bands: the cycle-40 goes to
	// CPU-parallel MPDP, whose final level enumerates 2^40 subsets of the
	// single full-cycle block. One worker, so a leak would wedge the pool.
	svc := service.New(service.Config{Workers: 1, ExactLimit: 64, Timeout: time.Hour})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(New(ServiceEngine(svc), Options{}).Mux())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/optimize",
		strings.NewReader(workload.CycleSQL(40)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Let the enumeration get in flight, then hang up.
	time.Sleep(300 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("aborted request returned a response")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client did not unblock after cancel")
	}

	// The single worker must come free again well under the enumeration
	// time: a small follow-up query has to complete.
	start := time.Now()
	reqCtx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	req2, err := http.NewRequestWithContext(reqCtx, http.MethodPost, ts.URL+"/v1/optimize",
		strings.NewReader(testStatement))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatalf("worker still wedged %v after disconnect: %v", time.Since(start), err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request status = %d", resp.StatusCode)
	}

	// Counters accounted: the disconnect shows up as canceled, not error.
	if got := svc.Counters().Snapshot().Canceled; got < 1 {
		t.Errorf("canceled counter = %d, want >= 1", got)
	}
	if got := svc.Counters().Snapshot().Errors; got != 0 {
		t.Errorf("errors counter = %d, want 0 (cancellation is not an error)", got)
	}
}

// TestStructuredWireQueryRoundTrip: a JSON WireQuery body optimizes to the
// same cost as the equivalent SQL text, and /v1/fingerprint agrees on the
// canonical key for both encodings.
func TestStructuredWireQueryRoundTrip(t *testing.T) {
	ts := newServiceServer(t, service.Config{})

	// The SQL path.
	var viaSQL Response
	resp, err := http.Post(ts.URL+"/v1/optimize", "text/plain", strings.NewReader(testStatement))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&viaSQL); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The structured path: serialize the same bound query.
	wq := &WireQuery{SQL: testStatement}
	q, err := wq.ToQuery(Options{}.withDefaults().Schema)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(FromQuery(q))
	var viaWire Response
	resp, err = http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&viaWire); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if viaWire.Cost != viaSQL.Cost {
		t.Errorf("wire cost %g != sql cost %g", viaWire.Cost, viaSQL.Cost)
	}
	if viaWire.Fingerprint != viaSQL.Fingerprint {
		t.Errorf("wire fingerprint %q != sql fingerprint %q", viaWire.Fingerprint, viaSQL.Fingerprint)
	}
	if !viaWire.CacheHit {
		t.Errorf("identical statistics through the wire encoding missed the cache")
	}

	// /v1/fingerprint returns the same canonical key without optimizing.
	var fp FingerprintResponse
	resp, err = http.Post(ts.URL+"/v1/fingerprint", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&fp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fp.Fingerprint != viaSQL.Fingerprint {
		t.Errorf("/v1/fingerprint %q != optimize fingerprint %q", fp.Fingerprint, viaSQL.Fingerprint)
	}
	if fp.Relations != 3 || fp.Shape == "" {
		t.Errorf("fingerprint metadata = %+v", fp)
	}
}

// TestBatchLimits: batch size and body caps produce the envelope.
func TestBatchLimits(t *testing.T) {
	ts := newServiceServer(t, service.Config{})

	var stmts []string
	for i := 0; i < 65; i++ {
		stmts = append(stmts, testStatement)
	}
	body, _ := json.Marshal(BatchRequest{Statements: stmts})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize batch = %d, want 413", resp.StatusCode)
	}
	var e Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Code != CodeTooLarge {
		t.Errorf("oversize batch envelope = %+v (%v)", e, err)
	}

	// Empty batch is a 422.
	resp2, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("empty batch = %d, want 422", resp2.StatusCode)
	}

	// A batch mixing a good and a bad statement reports per-item results.
	body, _ = json.Marshal(BatchRequest{Statements: []string{testStatement, "SELECT FROM WHERE"}})
	resp3, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp3.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 || br.Results[0].Response == nil || br.Results[1].Error == nil {
		t.Errorf("mixed batch results = %+v", br.Results)
	}
	if br.Results[1].Error != nil && br.Results[1].Error.Code != CodeInvalidQuery {
		t.Errorf("bad statement code = %q, want %q", br.Results[1].Error.Code, CodeInvalidQuery)
	}
}

// TestRequestIDEcho: an inbound X-Request-Id is preserved end to end.
func TestRequestIDEcho(t *testing.T) {
	ts := newServiceServer(t, service.Config{})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/optimize", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-me-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != "trace-me-123" || resp.Header.Get("X-Request-Id") != "trace-me-123" {
		t.Errorf("request id not echoed: envelope %q header %q", e.RequestID, resp.Header.Get("X-Request-Id"))
	}
}
