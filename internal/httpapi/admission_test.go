package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

// TestShedUnderCancellation pins the interaction the admission queue must
// get right: a client that disconnects while its request is parked waiting
// for a queue slot must release cleanly — no queue slot may leak, no
// heuristic fallback may fire, and the worker pool must stay serviceable.
//
// Setup: one worker, a one-deep queue, and a long MaxQueueWait. Request A
// occupies the worker with an effectively unbounded exact enumeration,
// request B fills the queue, request C is left blocked on admission — then
// C hangs up.
func TestShedUnderCancellation(t *testing.T) {
	svc := service.New(service.Config{
		Workers:    1,
		QueueDepth: 1,
		ExactLimit: 64, // cycle-40+ goes to CPU-parallel MPDP: ~2^40 subsets
		Timeout:    time.Hour,
		Admission:  service.Admission{MaxQueueWait: 30 * time.Second},
	})
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(New(ServiceEngine(svc), Options{}).Mux())
	t.Cleanup(ts.Close)

	launch := func(n int) (cancel context.CancelFunc, done chan error) {
		ctx, c := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/optimize",
			strings.NewReader(workload.CycleSQL(n)))
		if err != nil {
			t.Fatal(err)
		}
		done = make(chan error, 1)
		go func() {
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}()
		return c, done
	}

	cancelA, doneA := launch(40)
	// Wait until A is on the worker and B is queued: two requests have
	// entered the queue, one has been popped.
	cancelB, doneB := launch(41)
	waitFor := func(cond func(service.Snapshot) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond(svc.Counters().Snapshot()) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s; snapshot: %+v", what, svc.Counters().Snapshot())
	}
	waitFor(func(s service.Snapshot) bool { return s.Queued == 2 && s.QueueDepth == 1 },
		"A on the worker and B in the queue")

	// C: the queue is full, so its enqueue parks on admission.
	cancelC, doneC := launch(42)
	time.Sleep(200 * time.Millisecond) // let C reach the blocked select
	cancelC()
	select {
	case err := <-doneC:
		if err == nil {
			t.Fatal("cancelled queued request returned a response")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client did not unblock after cancelling its queued request")
	}

	// The queue slot was never C's: depth still 1 (B), nothing leaked.
	if s := svc.Counters().Snapshot(); s.QueueDepth != 1 {
		t.Errorf("queue_depth = %d after cancelling the parked request, want 1", s.QueueDepth)
	}

	// Release the worker and drain B's dead flight.
	cancelA()
	cancelB()
	<-doneA
	<-doneB
	waitFor(func(s service.Snapshot) bool { return s.QueueDepth == 0 },
		"the queue to drain after cancellations")

	// The pool must be fully serviceable again: a real statement completes
	// exactly, without heuristic fallback.
	resp, err := http.Post(ts.URL+"/v1/optimize", "text/plain", strings.NewReader(testStatement))
	if err != nil {
		t.Fatalf("worker wedged after shed-under-cancellation: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status = %d, want 200", resp.StatusCode)
	}

	s := svc.Counters().Snapshot()
	if s.Canceled < 3 {
		t.Errorf("canceled = %d, want >= 3 (A, B and C all hung up)", s.Canceled)
	}
	if s.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0 — cancellation must not trip the heuristic", s.Fallbacks)
	}
	if s.Shed != 0 {
		t.Errorf("shed = %d, want 0 — cancellation is not overload", s.Shed)
	}
	if s.Errors != 0 {
		t.Errorf("errors = %d, want 0", s.Errors)
	}
}
