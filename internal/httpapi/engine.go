package httpapi

import (
	"context"
	"io"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/service"
)

// Answer is one engine result: the service-level result plus the routing
// information only a cluster front door has.
type Answer struct {
	*service.Result
	Node     string
	Failover bool
}

// Health is an engine's liveness view.
type Health struct {
	OK bool
	// Status is "ok" or "down".
	Status string
	// AliveNodes is reported by cluster engines (-1 on single-node
	// engines, which omit the field from the healthz body).
	AliveNodes int
}

// Engine abstracts what the shared HTTP surface serves: a single
// optimizer-as-a-service instance (mpdp-serve) or a whole cluster behind
// its coordinator (mpdp-cluster). Both binaries mount the same API over
// their engine, which is what keeps the two wire surfaces identical.
type Engine interface {
	// Optimize plans q; ctx carries the HTTP client's cancellation.
	Optimize(ctx context.Context, q *cost.Query) (*Answer, error)
	// StatsJSON returns the counters snapshot as a JSON object.
	StatsJSON() string
	// Health reports liveness for /healthz.
	Health() Health
	// WriteMetrics emits the engine's live counters and latency histograms
	// in Prometheus exposition format (the /metrics body).
	WriteMetrics(w io.Writer) error
	// SlowLog returns the engine's ring of slowest requests (never nil).
	SlowLog() *obs.SlowLog
	// CacheInfo summarizes the engine's plan cache(s), listing the topN
	// hottest entries. Cluster engines aggregate over alive nodes.
	CacheInfo(topN int) service.CacheInfo
	// Invalidate drops the entry under the canonical fingerprint plus the
	// sub-entries harvested from it, reporting whether it existed and how
	// many sub-entries went with it.
	Invalidate(key string) (found bool, subsDropped int)
	// FlushCache drops every cached plan and subgraph-memo entry.
	FlushCache()
	// StatsEpoch returns the current catalog stats epoch.
	StatsEpoch() uint64
	// BumpStatsEpoch advances the catalog stats epoch, returning the epoch
	// before and after. Cached plans from older epochs are re-costed lazily
	// on their next probe, not flushed.
	BumpStatsEpoch() (old, cur uint64)
}

// serviceEngine adapts service.Service.
type serviceEngine struct{ svc *service.Service }

// ServiceEngine wraps a single-node service as an Engine.
func ServiceEngine(svc *service.Service) Engine { return serviceEngine{svc: svc} }

func (e serviceEngine) Optimize(ctx context.Context, q *cost.Query) (*Answer, error) {
	res, err := e.svc.Optimize(ctx, q)
	if err != nil {
		return nil, err
	}
	return &Answer{Result: res}, nil
}

func (e serviceEngine) StatsJSON() string { return e.svc.Counters().String() }

func (e serviceEngine) Health() Health {
	return Health{OK: true, Status: "ok", AliveNodes: -1}
}

func (e serviceEngine) WriteMetrics(w io.Writer) error { return e.svc.WriteMetrics(w) }

func (e serviceEngine) SlowLog() *obs.SlowLog { return e.svc.SlowLog() }

func (e serviceEngine) CacheInfo(topN int) service.CacheInfo { return e.svc.CacheInfo(topN) }

func (e serviceEngine) Invalidate(key string) (bool, int) { return e.svc.Invalidate(key) }

func (e serviceEngine) FlushCache() { e.svc.Flush() }

func (e serviceEngine) StatsEpoch() uint64 { return e.svc.StatsEpoch() }

func (e serviceEngine) BumpStatsEpoch() (uint64, uint64) { return e.svc.BumpStatsEpoch() }

// clusterEngine adapts cluster.Cluster.
type clusterEngine struct{ c *cluster.Cluster }

// ClusterEngine wraps a cluster coordinator as an Engine.
func ClusterEngine(c *cluster.Cluster) Engine { return clusterEngine{c: c} }

func (e clusterEngine) Optimize(ctx context.Context, q *cost.Query) (*Answer, error) {
	res, err := e.c.Optimize(ctx, q)
	if err != nil {
		return nil, err
	}
	return &Answer{Result: res.Result, Node: res.Node, Failover: res.Failover}, nil
}

func (e clusterEngine) StatsJSON() string { return e.c.Snapshot().String() }

func (e clusterEngine) WriteMetrics(w io.Writer) error { return e.c.WriteMetrics(w) }

func (e clusterEngine) SlowLog() *obs.SlowLog { return e.c.SlowLog() }

func (e clusterEngine) CacheInfo(topN int) service.CacheInfo { return e.c.CacheInfo(topN) }

func (e clusterEngine) Invalidate(key string) (bool, int) { return e.c.Invalidate(key) }

func (e clusterEngine) FlushCache() { e.c.FlushAll() }

func (e clusterEngine) StatsEpoch() uint64 { return e.c.StatsEpoch() }

func (e clusterEngine) BumpStatsEpoch() (uint64, uint64) { return e.c.BumpStatsEpochAll() }

func (e clusterEngine) Health() Health {
	alive := len(e.c.AliveNodes())
	h := Health{OK: alive > 0, Status: "ok", AliveNodes: alive}
	if alive == 0 {
		h.Status = "down"
	}
	return h
}
