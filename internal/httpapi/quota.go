package httpapi

import (
	"sync"
	"time"

	"repro/internal/service"
)

// QuotaConfig tunes per-tenant request quotas on the optimization
// endpoints. The zero value disables quotas entirely. Tenants are
// identified by a request header (Header); requests without the header
// share the anonymous tenant "" — multi-tenant deployments should make the
// header mandatory at their edge.
type QuotaConfig struct {
	// RatePerSec is each tenant's sustained request budget. Zero or
	// negative disables quotas. Batch requests charge one token per
	// statement, not one per HTTP request.
	RatePerSec float64
	// Burst is each tenant's token-bucket capacity (0: RatePerSec/4,
	// minimum 1) — also the largest batch a tenant can submit at once.
	Burst float64
	// Header names the tenant-identifying request header ("": "X-Tenant").
	Header string
	// MaxTenants bounds the tracked tenant buckets (0: 10000). At the
	// bound, requests from unseen tenants are denied rather than letting a
	// tenant-spraying client grow the map without limit.
	MaxTenants int
}

func (q QuotaConfig) withDefaults() QuotaConfig {
	if q.Header == "" {
		q.Header = "X-Tenant"
	}
	if q.MaxTenants == 0 {
		q.MaxTenants = 10000
	}
	if q.RatePerSec > 0 && q.Burst <= 0 {
		q.Burst = q.RatePerSec / 4
		if q.Burst < 1 {
			q.Burst = 1
		}
	}
	return q
}

// quotas holds one token bucket per tenant. Buckets are created on first
// sight and live for the server's lifetime; MaxTenants caps the map.
type quotas struct {
	cfg    QuotaConfig
	mu     sync.Mutex
	byTen  map[string]*service.TokenBucket
	denied uint64
}

func newQuotas(cfg QuotaConfig) *quotas {
	if cfg.RatePerSec <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	return &quotas{cfg: cfg, byTen: make(map[string]*service.TokenBucket)}
}

// allow charges n tokens to tenant. When the tenant's bucket is empty it
// charges nothing and returns the back-off hint for Retry-After.
func (qs *quotas) allow(tenant string, n float64) (ok bool, retryAfter time.Duration) {
	qs.mu.Lock()
	b := qs.byTen[tenant]
	if b == nil {
		if len(qs.byTen) >= qs.cfg.MaxTenants {
			qs.denied++
			qs.mu.Unlock()
			return false, time.Second
		}
		b = service.NewTokenBucket(qs.cfg.RatePerSec, qs.cfg.Burst)
		qs.byTen[tenant] = b
	}
	qs.mu.Unlock()
	ok, retryAfter = b.Allow(time.Now(), n)
	if !ok {
		qs.mu.Lock()
		qs.denied++
		qs.mu.Unlock()
	}
	return ok, retryAfter
}

// snapshot reports the quota layer's own counters for /v1/stats.
func (qs *quotas) snapshot() quotaSnapshot {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return quotaSnapshot{
		Tenants:    len(qs.byTen),
		Denied:     qs.denied,
		RatePerSec: qs.cfg.RatePerSec,
		Burst:      qs.cfg.Burst,
		Header:     qs.cfg.Header,
	}
}

type quotaSnapshot struct {
	Tenants    int     `json:"tenants"`
	Denied     uint64  `json:"denied"`
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      float64 `json:"burst"`
	Header     string  `json:"header"`
}
