package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/cluster"
)

// MountClusterAdmin registers the cluster-only membership surface on the
// shared mux: GET /cluster (membership and ring summary) and the POST
// admin verbs /cluster/add, /cluster/remove?node=, /cluster/kill?node=,
// /cluster/revive?node=, /cluster/flush. Both cmd/mpdp-cluster and the
// examples mount it, so the admin wire surface has one definition too.
func MountClusterAdmin(a *API, c *cluster.Cluster) {
	needNode := func(node string) error {
		if node == "" {
			return fmt.Errorf("missing ?node=")
		}
		return nil
	}
	op := func(f func(node string) (string, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST", http.StatusMethodNotAllowed)
				return
			}
			msg, err := f(r.URL.Query().Get("node"))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"ok\":true,\"detail\":%q}\n", msg)
		}
	}
	a.Handle("/cluster", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snap := c.Snapshot()
		out := map[string]any{
			"alive_nodes": snap.AliveNodes,
			"dead_nodes":  snap.DeadNodes,
			"replicas":    snap.Replicas,
			"cache_len":   c.CacheLen(),
			"deaths":      snap.Deaths,
			"rejoins":     snap.Rejoins,
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	}))
	a.Handle("/cluster/add", op(func(string) (string, error) {
		id, err := c.AddNode()
		if err != nil {
			return "", err
		}
		return "added " + id, nil
	}))
	a.Handle("/cluster/remove", op(func(node string) (string, error) {
		if err := needNode(node); err != nil {
			return "", err
		}
		return "removed " + node, c.RemoveNode(node)
	}))
	a.Handle("/cluster/kill", op(func(node string) (string, error) {
		if err := needNode(node); err != nil {
			return "", err
		}
		c.KillNode(node)
		return "killed " + node, nil
	}))
	a.Handle("/cluster/revive", op(func(node string) (string, error) {
		if err := needNode(node); err != nil {
			return "", err
		}
		c.ReviveNode(node)
		return "revived " + node, nil
	}))
	a.Handle("/cluster/flush", op(func(string) (string, error) {
		c.FlushAll()
		return "flushed all plan caches", nil
	}))
}
