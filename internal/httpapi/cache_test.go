package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/service"
)

// bothEngines runs a subtest against mpdp-serve's engine (single service)
// and mpdp-cluster's engine (ring aggregate): the control surface must
// answer with the same wire shapes on both binaries.
func bothEngines(t *testing.T, f func(t *testing.T, ts *httptest.Server)) {
	t.Run("serve", func(t *testing.T) { f(t, newServiceServer(t, service.Config{})) })
	t.Run("cluster", func(t *testing.T) { f(t, newClusterServer(t)) })
}

func doJSON(t *testing.T, method, u string, body string, out any) *http.Response {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, u, err)
		}
	}
	return resp
}

func optimizeFingerprint(t *testing.T, ts *httptest.Server, statement string) string {
	t.Helper()
	var res Response
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/optimize", statement, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status = %d", resp.StatusCode)
	}
	if res.Fingerprint == "" {
		t.Fatal("optimize response has no fingerprint")
	}
	return res.Fingerprint
}

// TestCacheControlSurface walks the /v1/cache lifecycle on both binaries:
// populate, list, invalidate (hit and miss), flush, verify empty.
func TestCacheControlSurface(t *testing.T) {
	bothEngines(t, func(t *testing.T, ts *httptest.Server) {
		fp := optimizeFingerprint(t, ts, testStatement)

		var info service.CacheInfo
		if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/cache", "", &info); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/cache status = %d", resp.StatusCode)
		}
		if info.Plans < 1 {
			t.Fatalf("cache reports %d plans after an optimize", info.Plans)
		}
		if info.StatsEpoch != 1 {
			t.Errorf("fresh server stats epoch = %d, want 1", info.StatsEpoch)
		}
		found := false
		for _, e := range info.Entries {
			if e.Key == fp {
				found = true
				if e.Epoch != 1 {
					t.Errorf("entry epoch = %d, want 1", e.Epoch)
				}
			}
		}
		if !found {
			t.Errorf("entry listing lacks the optimized fingerprint %s: %+v", fp, info.Entries)
		}

		// ?top=0 keeps the summary but drops the listing.
		if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/cache?top=0", "", &info); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/cache?top=0 status = %d", resp.StatusCode)
		}
		if len(info.Entries) != 0 {
			t.Errorf("?top=0 listed %d entries", len(info.Entries))
		}
		if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/cache?top=-1", "", nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/cache?top=-1 status = %d, want 400", resp.StatusCode)
		}

		var inv InvalidateResponse
		delURL := ts.URL + "/v1/cache/" + url.PathEscape(fp)
		if resp := doJSON(t, http.MethodDelete, delURL, "", &inv); resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %s status = %d", delURL, resp.StatusCode)
		}
		if inv.Fingerprint != fp {
			t.Errorf("invalidate echoed fingerprint %q, want %q", inv.Fingerprint, fp)
		}

		// The same DELETE again must 404 with the golden envelope.
		req, err := http.NewRequest(http.MethodDelete, delURL, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-Id", "golden-del-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var raw strings.Builder
		if _, err := fmt.Fprint(&raw, readAll(t, resp)); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("second DELETE status = %d, want 404 (body %s)", resp.StatusCode, raw.String())
		}
		want := fmt.Sprintf("{\"code\":\"not_found\",\"message\":\"no cached plan under fingerprint %s\",\"request_id\":\"golden-del-1\"}\n",
			quoteInner(fp))
		if raw.String() != want {
			t.Errorf("404 envelope drifted:\n got %q\nwant %q", raw.String(), want)
		}

		// Repopulate, then flush: the counts must reflect what was dropped.
		optimizeFingerprint(t, ts, testStatement)
		var fl FlushResponse
		if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/cache/flush", "{}", &fl); resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/cache/flush status = %d", resp.StatusCode)
		}
		if fl.PlansDropped < 1 {
			t.Errorf("flush reported %d plans dropped", fl.PlansDropped)
		}
		if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/cache", "", &info); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/cache status = %d", resp.StatusCode)
		}
		if info.Plans != 0 || info.SubPlans != 0 {
			t.Errorf("cache not empty after flush: %d plans, %d sub-plans", info.Plans, info.SubPlans)
		}
	})
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// quoteInner renders fp the way %q inside a JSON string does: the Go quote
// characters become escaped quotes on the wire. Fingerprint keys use only
// JSON-safe characters, so no other escaping applies.
func quoteInner(fp string) string { return "\\\"" + fp + "\\\"" }

// TestCatalogStatsAndEpochAssertion drives the stats-update path on both
// binaries: the epoch advances, a caller asserting the old epoch is
// rejected with the stale_epoch envelope, and new binds see the new
// statistics (the canonical fingerprint embeds them, so it must change).
func TestCatalogStatsAndEpochAssertion(t *testing.T) {
	bothEngines(t, func(t *testing.T, ts *httptest.Server) {
		fpBefore := optimizeFingerprint(t, ts, testStatement)

		var upd CatalogStatsResponse
		body := `{"relations":[{"name":"release","rows":123456789}]}`
		if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/catalog/stats", body, &upd); resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/catalog/stats status = %d", resp.StatusCode)
		}
		if upd.OldEpoch != 1 || upd.NewEpoch != 2 || upd.Updated != 1 {
			t.Fatalf("stats update = %+v, want old 1 new 2 updated 1", upd)
		}

		// Asserting the pre-update epoch must now be rejected.
		var env Error
		resp := doJSON(t, http.MethodPost, ts.URL+"/v1/optimize?epoch=1", testStatement, &env)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("stale assertion status = %d, want 409", resp.StatusCode)
		}
		if env.Code != CodeStaleEpoch {
			t.Errorf("stale assertion code = %q, want %q", env.Code, CodeStaleEpoch)
		}

		// Asserting the current epoch passes, and the response carries it.
		var res Response
		if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/optimize?epoch=2", testStatement, &res); resp.StatusCode != http.StatusOK {
			t.Fatalf("fresh assertion status = %d, want 200", resp.StatusCode)
		}
		if res.StatsEpoch != 2 {
			t.Errorf("response stats_epoch = %d, want 2", res.StatsEpoch)
		}
		if res.Fingerprint == fpBefore {
			t.Errorf("fingerprint unchanged after a release row-count change: stats update never reached the binder")
		}

		// Malformed inputs: bad epoch value, empty update, non-positive rows.
		if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/optimize?epoch=banana", testStatement, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("epoch=banana status = %d, want 400", resp.StatusCode)
		}
		if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/catalog/stats", `{"relations":[]}`, nil); resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("empty update status = %d, want 422", resp.StatusCode)
		}
		if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/catalog/stats", `{"relations":[{"name":"release","rows":0}]}`, nil); resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("zero rows status = %d, want 422", resp.StatusCode)
		}
	})
}
