// Package httpapi is the one versioned HTTP surface of the optimizer: the
// shared mux both mpdp-serve and mpdp-cluster mount, so the two binaries
// answer with byte-identical wire shapes by construction instead of two
// hand-copied handler sets.
//
// Endpoints (all under /v1, with the pre-versioning paths kept as aliases
// of the same handlers):
//
//	POST /v1/optimize     one SQL statement (text) or WireQuery (JSON)
//	POST /v1/explain      like optimize, with the plan tree rendered
//	POST /v1/batch        many statements, optimized concurrently
//	POST /v1/fingerprint  canonical cache identity without optimizing
//	GET  /v1/stats        counters snapshot
//	GET  /v1/healthz      liveness (503 when a cluster has no alive node)
//
// Every failure returns the structured envelope {code, message, detail,
// request_id}; every response echoes X-Request-Id. The request context is
// the HTTP request's context, so a disconnecting client cancels its
// in-flight optimization (see service.Optimize).
package httpapi

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sql"
)

// StatusClientClosedRequest is the non-standard (nginx-convention) status
// reported when the client disconnected before its optimization finished.
const StatusClientClosedRequest = 499

// Options tunes an API.
type Options struct {
	// Schema binds SQL statements (nil: sql.MusicBrainzSchema()).
	Schema sql.Schema
	// MaxStatementBytes bounds one request body (0: 1MiB).
	MaxStatementBytes int
	// MaxBatch bounds the statements per /v1/batch request (0: 64).
	MaxBatch int
	// Quota, when RatePerSec is positive, rate-limits the optimization
	// endpoints per tenant (identified by the Quota.Header request header).
	// Exhausted tenants get 429 quota_exceeded + Retry-After; other tenants
	// are unaffected.
	Quota QuotaConfig
}

func (o Options) withDefaults() Options {
	if o.Schema == nil {
		o.Schema = sql.MusicBrainzSchema()
	}
	if o.MaxStatementBytes == 0 {
		o.MaxStatementBytes = 1 << 20
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	return o
}

// API serves the versioned HTTP surface over an Engine. Create with New;
// the zero value is not usable.
type API struct {
	engine Engine
	opts   Options
	quota  *quotas // nil when quotas are disabled
	mux    *http.ServeMux
	ridSeq atomic.Uint64
	ridPfx string
	// schema is the live SQL-binding schema; POST /v1/catalog/stats swaps
	// in an updated copy (copy-on-write) under schemaMu, so concurrent
	// binds always read an immutable snapshot.
	schemaMu sync.RWMutex
	schema   sql.Schema // guarded by schemaMu
}

// New builds the API and its mux with the /v1 endpoints and the legacy
// aliases registered.
func New(engine Engine, opts Options) *API {
	opts = opts.withDefaults()
	a := &API{engine: engine, opts: opts, schema: opts.Schema, mux: http.NewServeMux()}
	a.quota = newQuotas(a.opts.Quota)
	var b [3]byte
	if _, err := crand.Read(b[:]); err == nil {
		a.ridPfx = hex.EncodeToString(b[:])
	} else {
		a.ridPfx = "req"
	}
	a.mux.HandleFunc("/v1/optimize", a.handleOptimize)
	a.mux.HandleFunc("/v1/explain", a.handleExplain)
	a.mux.HandleFunc("/v1/batch", a.handleBatch)
	a.mux.HandleFunc("/v1/fingerprint", a.handleFingerprint)
	a.mux.HandleFunc("/v1/stats", a.handleStats)
	a.mux.HandleFunc("/v1/cache", a.handleCache)
	a.mux.HandleFunc("/v1/cache/flush", a.handleCacheFlush)
	a.mux.HandleFunc("/v1/cache/{fingerprint}", a.handleCacheEntry)
	a.mux.HandleFunc("/v1/catalog/stats", a.handleCatalogStats)
	a.mux.HandleFunc("/v1/healthz", a.handleHealthz)
	a.mux.HandleFunc("/v1/metrics", a.handleMetrics)
	a.mux.HandleFunc("/v1/debug/slow", a.handleSlow)
	// Pre-versioning aliases: same handlers, same shapes. /metrics is the
	// conventional scrape path, aliased rather than versioned — Prometheus
	// configs assume it.
	a.mux.HandleFunc("/optimize", a.handleOptimize)
	a.mux.HandleFunc("/stats", a.handleStats)
	a.mux.HandleFunc("/healthz", a.handleHealthz)
	a.mux.HandleFunc("/metrics", a.handleMetrics)
	return a
}

// Mux returns the handler to mount on an http.Server.
func (a *API) Mux() *http.ServeMux { return a.mux }

// Handle registers an extra, binary-specific route (the cluster's admin
// surface) on the shared mux.
func (a *API) Handle(pattern string, h http.Handler) { a.mux.Handle(pattern, h) }

// currentSchema returns the live binding-schema snapshot.
func (a *API) currentSchema() sql.Schema {
	a.schemaMu.RLock()
	defer a.schemaMu.RUnlock()
	return a.schema
}

// requestID returns the inbound X-Request-Id or mints one.
func (a *API) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		return id
	}
	return fmt.Sprintf("%s-%06d", a.ridPfx, a.ridSeq.Add(1))
}

// fail writes the structured error envelope.
func (a *API) fail(w http.ResponseWriter, rid string, status int, code, msg string, err error) {
	e := &Error{Code: code, Message: msg, RequestID: rid}
	if err != nil {
		e.Detail = err.Error()
	}
	a.failEnv(w, status, e)
}

// failEnv writes a prebuilt envelope. Envelopes carrying a retry hint
// (shed, quota, unavailable) also get a Retry-After header — the hint
// rounded up to whole seconds, since the header has one-second granularity.
func (a *API) failEnv(w http.ResponseWriter, status int, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Id", e.RequestID)
	if e.RetryAfterMS > 0 {
		secs := (e.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(status)
	w.Write(mustJSON(e))
	w.Write([]byte("\n"))
}

func (a *API) ok(w http.ResponseWriter, rid string, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Id", rid)
	w.Write(mustJSON(body))
	w.Write([]byte("\n"))
}

// readQuery decodes one request body into a WireQuery: JSON bodies are
// structured wire queries, anything else is SQL text. It returns an
// error envelope (and HTTP status) on failure.
func (a *API) readQuery(r *http.Request, rid string) (*WireQuery, *Error, int) {
	body, err := io.ReadAll(io.LimitReader(r.Body, int64(a.opts.MaxStatementBytes)+1))
	if err != nil {
		return nil, &Error{Code: CodeBadRequest, Message: "reading request body", Detail: err.Error(), RequestID: rid}, http.StatusBadRequest
	}
	if len(body) > a.opts.MaxStatementBytes {
		return nil, &Error{Code: CodeTooLarge, Message: fmt.Sprintf("request exceeds %d bytes", a.opts.MaxStatementBytes), RequestID: rid}, http.StatusRequestEntityTooLarge
	}
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "json") {
		var wq WireQuery
		if err := json.Unmarshal(body, &wq); err != nil {
			return nil, &Error{Code: CodeBadRequest, Message: "parsing JSON body", Detail: err.Error(), RequestID: rid}, http.StatusBadRequest
		}
		return &wq, nil, 0
	}
	return &WireQuery{SQL: string(body)}, nil, 0
}

// optimizeOne compiles and optimizes one wire query; on failure it returns
// the envelope and status instead.
func (a *API) optimizeOne(ctx context.Context, wq *WireQuery, explain bool, rid string) (*Response, *Error, int) {
	tr := obs.FromContext(ctx)
	compileDone := tr.StartSpan(obs.PhaseCompile)
	q, err := wq.ToQuery(a.currentSchema())
	compileDone()
	if err != nil {
		return nil, &Error{Code: CodeInvalidQuery, Message: "invalid query", Detail: err.Error(), RequestID: rid}, http.StatusUnprocessableEntity
	}
	ans, err := a.engine.Optimize(ctx, q)
	if err != nil {
		e, status := classify(err, rid)
		return nil, e, status
	}
	res := ans.Result
	resp := &Response{
		Relations:   q.N(),
		Edges:       len(q.G.Edges),
		Cost:        res.Plan.Cost,
		Rows:        res.Plan.Rows,
		Algorithm:   string(res.Algorithm),
		Backend:     string(res.Backend),
		Shape:       string(res.Shape),
		CacheHit:    res.CacheHit,
		Coalesced:   res.Coalesced,
		FellBack:    res.FellBack,
		ElapsedUs:   float64(res.Elapsed.Nanoseconds()) / 1e3,
		Fingerprint: res.Key,
		Node:        ans.Node,
		Failover:    ans.Failover,
	}
	resp.StatsEpoch = res.Epoch
	// Warm-start fields describe this request's own enumeration, so they
	// stay zero on cache hits (whose stored stats describe the original
	// run). ConnectedSets counts the n base sets plus every enumerated
	// interior set; seeded sets were skipped, so the fraction is the share
	// of the walked lattice the memo covered.
	if !res.CacheHit && !res.Coalesced && res.Stats.WarmSeeded > 0 {
		resp.WarmStartSeeded = res.Stats.WarmSeeded
		interior := res.Stats.ConnectedSets - uint64(q.N())
		if total := res.Stats.WarmSeeded + interior; total > 0 {
			resp.WarmStartFraction = float64(res.Stats.WarmSeeded) / float64(total)
		}
	}
	if res.GPU != nil {
		resp.GPUDevices = res.GPU.Devices
		resp.GPUSimMS = res.GPU.SimTimeMS
	}
	if explain {
		resp.Plan = core.Explain(q, res.Plan)
	}
	return resp, nil, 0
}

// retryAfterOverloadMS is the back-off hint attached to shed and
// unavailable responses. One second: long enough to drain a burst, short
// enough that clients re-probe a recovering server quickly.
const retryAfterOverloadMS = 1000

// classify maps an engine error to an envelope and status.
func classify(err error, rid string) (*Error, int) {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeCanceled, Message: "client closed request", Detail: err.Error(), RequestID: rid}, StatusClientClosedRequest
	case errors.Is(err, service.ErrOverloaded):
		return &Error{Code: CodeOverloaded, Message: "optimizer overloaded, retry later", Detail: err.Error(), RequestID: rid, RetryAfterMS: retryAfterOverloadMS}, http.StatusServiceUnavailable
	case errors.Is(err, service.ErrClosed), errors.Is(err, cluster.ErrClosed), errors.Is(err, cluster.ErrNoNodes):
		return &Error{Code: CodeUnavailable, Message: "optimizer unavailable", Detail: err.Error(), RequestID: rid, RetryAfterMS: retryAfterOverloadMS}, http.StatusServiceUnavailable
	default:
		return &Error{Code: CodeInvalidQuery, Message: "optimization rejected", Detail: err.Error(), RequestID: rid}, http.StatusUnprocessableEntity
	}
}

// checkQuota charges n requests to the caller's tenant; a nil return means
// admitted (or quotas disabled).
func (a *API) checkQuota(r *http.Request, rid string, n float64) *Error {
	if a.quota == nil {
		return nil
	}
	tenant := r.Header.Get(a.quota.cfg.Header)
	ok, retryAfter := a.quota.allow(tenant, n)
	if ok {
		return nil
	}
	ms := retryAfter.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return &Error{
		Code:         CodeQuotaExceeded,
		Message:      fmt.Sprintf("tenant %q exceeded its request quota", tenant),
		RequestID:    rid,
		RetryAfterMS: ms,
	}
}

func (a *API) requirePOST(w http.ResponseWriter, r *http.Request, rid string) bool {
	if r.Method != http.MethodPost {
		a.fail(w, rid, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required", nil)
		return false
	}
	return true
}

func (a *API) handleOptimize(w http.ResponseWriter, r *http.Request) {
	a.serveOptimize(w, r, r.URL.Query().Get("explain") != "")
}

func (a *API) handleExplain(w http.ResponseWriter, r *http.Request) {
	a.serveOptimize(w, r, true)
}

func (a *API) serveOptimize(w http.ResponseWriter, r *http.Request, explain bool) {
	rid := a.requestID(r)
	if !a.requirePOST(w, r, rid) {
		return
	}
	if e := a.checkQuota(r, rid, 1); e != nil {
		a.failEnv(w, http.StatusTooManyRequests, e)
		return
	}
	// ?epoch= asserts the catalog stats epoch the caller planned against;
	// a moved epoch rejects the request instead of answering with plans
	// costed under statistics the caller has not seen.
	if s := r.URL.Query().Get("epoch"); s != "" {
		want, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			a.fail(w, rid, http.StatusBadRequest, CodeBadRequest, "epoch must be an unsigned integer", err)
			return
		}
		if cur := a.engine.StatsEpoch(); cur != want {
			a.fail(w, rid, http.StatusConflict, CodeStaleEpoch,
				fmt.Sprintf("server stats epoch is %d, caller asserted %d", cur, want), nil)
			return
		}
	}
	wq, e, status := a.readQuery(r, rid)
	if e != nil {
		a.failEnv(w, status, e)
		return
	}
	// Every request gets a trace — it is how the request id reaches the
	// engine's slow log — but the spans only travel back on ?trace=1.
	tr := obs.NewTrace(rid)
	ctx := obs.WithTrace(r.Context(), tr)
	resp, e, status := a.optimizeOne(ctx, wq, explain, rid)
	if e != nil {
		a.failEnv(w, status, e)
		return
	}
	if r.URL.Query().Get("trace") != "" {
		resp.Trace = tr.Spans()
		resp.TraceWallUS = tr.WallUS()
	}
	a.ok(w, rid, resp)
}

func (a *API) handleBatch(w http.ResponseWriter, r *http.Request) {
	rid := a.requestID(r)
	if !a.requirePOST(w, r, rid) {
		return
	}
	// The per-statement bound applies per statement; the batch body may
	// hold MaxBatch of them (plus JSON framing slack).
	maxBody := int64(a.opts.MaxStatementBytes)*int64(a.opts.MaxBatch) + (1 << 20)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		a.fail(w, rid, http.StatusBadRequest, CodeBadRequest, "reading request body", err)
		return
	}
	if int64(len(body)) > maxBody {
		a.fail(w, rid, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Sprintf("batch body exceeds %d bytes", maxBody), nil)
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		a.fail(w, rid, http.StatusBadRequest, CodeBadRequest, "parsing JSON body", err)
		return
	}
	total := len(req.Statements) + len(req.Queries)
	if total == 0 {
		a.fail(w, rid, http.StatusUnprocessableEntity, CodeInvalidQuery, "empty batch", nil)
		return
	}
	if total > a.opts.MaxBatch {
		a.fail(w, rid, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Sprintf("batch of %d exceeds the limit of %d", total, a.opts.MaxBatch), nil)
		return
	}
	// A batch charges its tenant one token per statement — otherwise
	// batching would be a quota loophole.
	if e := a.checkQuota(r, rid, float64(total)); e != nil {
		a.failEnv(w, http.StatusTooManyRequests, e)
		return
	}
	// One goroutine per statement: concurrent submission is what lets the
	// service's worker pool and the GPU batcher's coalescing window turn
	// one HTTP request into device-saturating batches.
	wqs := make([]*WireQuery, 0, total)
	for i := range req.Statements {
		wqs = append(wqs, &WireQuery{SQL: req.Statements[i]})
	}
	for i := range req.Queries {
		wqs = append(wqs, &req.Queries[i])
	}
	out := BatchResponse{Results: make([]BatchItem, total)}
	var wg sync.WaitGroup
	for i, wq := range wqs {
		if len(wq.SQL) > a.opts.MaxStatementBytes {
			out.Results[i] = BatchItem{Error: &Error{
				Code:      CodeTooLarge,
				Message:   fmt.Sprintf("statement exceeds %d bytes", a.opts.MaxStatementBytes),
				RequestID: rid,
			}}
			continue
		}
		wg.Add(1)
		go func(i int, wq *WireQuery) {
			defer wg.Done()
			// Each statement gets its own trace: spans from concurrent
			// statements must not interleave, and the slow log should name
			// the batch's request id.
			ictx := obs.WithTrace(r.Context(), obs.NewTrace(rid))
			resp, e, _ := a.optimizeOne(ictx, wq, req.Explain, rid)
			if e != nil {
				out.Results[i] = BatchItem{Error: e}
				return
			}
			out.Results[i] = BatchItem{Response: resp}
		}(i, wq)
	}
	wg.Wait()
	a.ok(w, rid, out)
}

func (a *API) handleFingerprint(w http.ResponseWriter, r *http.Request) {
	rid := a.requestID(r)
	if !a.requirePOST(w, r, rid) {
		return
	}
	wq, e, status := a.readQuery(r, rid)
	if e != nil {
		a.failEnv(w, status, e)
		return
	}
	q, err := wq.ToQuery(a.currentSchema())
	if err != nil {
		a.fail(w, rid, http.StatusUnprocessableEntity, CodeInvalidQuery, "invalid query", err)
		return
	}
	a.ok(w, rid, &FingerprintResponse{
		Fingerprint: service.FingerprintQuery(q).Key,
		Relations:   q.N(),
		Edges:       len(q.G.Edges),
		Shape:       string(service.DetectShape(q.G)),
	})
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	rid := a.requestID(r)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Id", rid)
	stats := a.engine.StatsJSON()
	if a.quota != nil {
		// Graft the HTTP layer's quota section onto the engine snapshot.
		// The engine stays ignorant of tenancy; only the shape changes when
		// quotas are enabled, so the parity test's default servers are
		// unaffected.
		var m map[string]json.RawMessage
		if err := json.Unmarshal([]byte(stats), &m); err == nil {
			m["quota"] = mustJSON(a.quota.snapshot())
			if b, err := json.Marshal(m); err == nil {
				stats = string(b)
			}
		}
	}
	io.WriteString(w, stats)
	io.WriteString(w, "\n")
}

func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rid := a.requestID(r)
	h := a.engine.Health()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Id", rid)
	if !h.OK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	if h.AliveNodes >= 0 {
		fmt.Fprintf(w, "{\"status\":%q,\"alive_nodes\":%d}\n", h.Status, h.AliveNodes)
		return
	}
	fmt.Fprintf(w, "{\"status\":%q}\n", h.Status)
}

// handleMetrics serves the engine's counters and latency histograms in
// Prometheus text exposition format. GET only; no request id — scrapers
// do not send or want one.
func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		a.fail(w, a.requestID(r), http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required", nil)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := a.engine.WriteMetrics(w); err != nil {
		// Too late for a status change once the body started; the scrape
		// just comes up short and the scraper's up-metric flags it.
		return
	}
}

// SlowResponse is the body of GET /v1/debug/slow: the engine's slowest
// requests (slowest first) with their phase breakdowns, plus the
// configured slow-query-log threshold (0 when threshold logging is off).
type SlowResponse struct {
	ThresholdMS float64         `json:"threshold_ms"`
	Slowest     []obs.SlowEntry `json:"slowest"`
}

// handleSlow serves the slow-request ring; ?n= caps how many entries come
// back (default all, at most the ring's top-K).
func (a *API) handleSlow(w http.ResponseWriter, r *http.Request) {
	rid := a.requestID(r)
	if r.Method != http.MethodGet {
		a.fail(w, rid, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required", nil)
		return
	}
	n := 0
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			a.fail(w, rid, http.StatusBadRequest, CodeBadRequest, "n must be a positive integer", err)
			return
		}
		n = v
	}
	slog := a.engine.SlowLog()
	entries := slog.Slowest(n)
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	a.ok(w, rid, &SlowResponse{
		ThresholdMS: float64(slog.Threshold().Nanoseconds()) / 1e6,
		Slowest:     entries,
	})
}
