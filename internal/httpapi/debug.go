package httpapi

import (
	"expvar"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/obs"
)

// StartDebugServer exposes pprof and expvar on their own listener, kept off
// the public port so profiling endpoints are never internet-facing by
// accident. Both binaries gate it behind -debug-addr; no-op when addr is
// empty.
func StartDebugServer(addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("debug server on %s: %v", addr, err)
		}
	}()
}

// SlowConfigFromFlags turns the -slow-query-ms / -slow-query-log flag pair
// into an obs.SlowConfig: the /v1/debug/slow ring is always on, threshold
// logging only when thresholdMS is positive (JSON lines appended to path,
// or stderr when path is empty). The returned func closes the log file.
func SlowConfigFromFlags(thresholdMS float64, path string) (obs.SlowConfig, func(), error) {
	cfg := obs.SlowConfig{}
	closer := func() {}
	if thresholdMS <= 0 {
		return cfg, closer, nil
	}
	cfg.Threshold = time.Duration(thresholdMS * float64(time.Millisecond))
	cfg.Log = os.Stderr
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return cfg, closer, err
		}
		cfg.Log = f
		closer = func() { f.Close() }
	}
	return cfg, closer, nil
}
