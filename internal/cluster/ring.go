package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over node IDs. Each node owns VirtualNodes
// points on a 64-bit circle; a key is owned by the first node point at or
// after the key's hash, and its replicas are the next distinct nodes
// clockwise. Virtual nodes keep ownership near-uniform, and consistent
// hashing keeps a membership change from remapping more than ~1/N of the
// key space — the property that makes cache-aware rebalancing cheap.
//
// The ring is a value-style structure guarded by the Cluster's mutex; it
// does no locking of its own.
type ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	member map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

func newRing(vnodes int) *ring {
	return &ring{vnodes: vnodes, member: make(map[string]bool)}
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. FNV alone clusters badly on the
// short, similar strings virtual-node labels are made of; the avalanche
// spreads them evenly around the circle.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// add inserts a node's virtual points. Adding a member twice is a no-op.
func (r *ring) add(node string) {
	if r.member[node] {
		return
	}
	r.member[node] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hashString(node + "#" + strconv.Itoa(v)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// remove deletes a node's virtual points.
func (r *ring) remove(node string) {
	if !r.member[node] {
		return
	}
	delete(r.member, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// size returns the member count.
func (r *ring) size() int { return len(r.member) }

// nodes returns the members in sorted order.
func (r *ring) nodes() []string {
	out := make([]string, 0, len(r.member))
	for n := range r.member {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// owners returns the distinct nodes responsible for key, owner first then
// replicas clockwise, at most min(replicas, members) entries.
func (r *ring) owners(key string, replicas int) []string {
	if len(r.points) == 0 || replicas <= 0 {
		return nil
	}
	if replicas > len(r.member) {
		replicas = len(r.member)
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, replicas)
	seen := make(map[string]bool, replicas)
	for i := 0; len(out) < replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
