package cluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/workload"
)

func genQuery(t testing.TB, kind workload.Kind, n int, seed int64) *cost.Query {
	t.Helper()
	q, err := workload.Generate(kind, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// permuteQuery relabels q's relations through perm (perm[old] = new): the
// same join problem written by a different client.
func permuteQuery(q *cost.Query, perm []int) *cost.Query {
	return workload.PermuteQuery(q, perm)
}

func relEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func newTestCluster(t *testing.T, nodes, replicas int) *Cluster {
	t.Helper()
	c := New(Config{
		Nodes:    nodes,
		Replicas: replicas,
		Service:  service.Config{Workers: 2},
	})
	t.Cleanup(c.Close)
	return c
}

// --- ring ------------------------------------------------------------------

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r := newRing(64)
	for _, id := range []string{"a", "b", "c", "d"} {
		r.add(id)
	}
	keys := []string{"k1", "k2", "k3", "longer-key-with-structure", ""}
	for _, k := range keys {
		owners := r.owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("owners(%q) = %v, want 3 distinct nodes", k, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Errorf("owners(%q) repeats %s", k, o)
			}
			seen[o] = true
		}
		again := r.owners(k, 3)
		for i := range owners {
			if owners[i] != again[i] {
				t.Errorf("owners(%q) unstable: %v vs %v", k, owners, again)
			}
		}
	}
	if got := r.owners("k", 10); len(got) != 4 {
		t.Errorf("owners with replicas>members returned %d nodes, want 4", len(got))
	}
}

// TestRingRemovalMovesMinimalKeys checks the consistent-hashing property:
// removing one of four nodes must not move keys whose owner survives.
func TestRingRemovalMovesMinimalKeys(t *testing.T) {
	r := newRing(64)
	nodes := []string{"a", "b", "c", "d"}
	for _, id := range nodes {
		r.add(id)
	}
	const keys = 1000
	before := make([]string, keys)
	for i := 0; i < keys; i++ {
		before[i] = r.owners(key(i), 1)[0]
	}
	r.remove("b")
	moved := 0
	for i := 0; i < keys; i++ {
		after := r.owners(key(i), 1)[0]
		if after == "b" {
			t.Fatalf("key %d still owned by removed node", i)
		}
		if before[i] != "b" && after != before[i] {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys with surviving owners moved on node removal", moved)
	}
}

func TestRingBalance(t *testing.T) {
	r := newRing(64)
	nodes := []string{"a", "b", "c", "d"}
	for _, id := range nodes {
		r.add(id)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.owners(key(i), 1)[0]]++
	}
	want := keys / len(nodes)
	for _, id := range nodes {
		if c := counts[id]; c < want/3 || c > want*3 {
			t.Errorf("node %s owns %d of %d keys (expected near %d)", id, c, keys, want)
		}
	}
}

func key(i int) string {
	return "key-" + string(rune('a'+i%26)) + "-" + time.Duration(i).String()
}

// --- routing & replication --------------------------------------------------

// TestIsomorphicQueriesShareOneWarmEntry is acceptance criterion (a):
// isomorphic queries arriving at the front door from different clients
// must route to the same node and hit the same warm cache entry.
func TestIsomorphicQueriesShareOneWarmEntry(t *testing.T) {
	c := newTestCluster(t, 4, 2)

	q := genQuery(t, workload.KindMB, 11, 5)
	cold, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Error("first request reported a cache hit")
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		iso, err := c.Optimize(context.Background(), permuteQuery(q, rng.Perm(q.N())))
		if err != nil {
			t.Fatal(err)
		}
		if !iso.CacheHit {
			t.Errorf("trial %d: isomorphic query missed the warm cache", trial)
		}
		if iso.Key != cold.Key {
			t.Errorf("trial %d: key %q, want %q", trial, iso.Key, cold.Key)
		}
		if iso.Node != cold.Node {
			t.Errorf("trial %d: served by %s, want owner %s", trial, iso.Node, cold.Node)
		}
		if !relEq(iso.Plan.Cost, cold.Plan.Cost) {
			t.Errorf("trial %d: cost %g != %g", trial, iso.Plan.Cost, cold.Plan.Cost)
		}
	}
}

func TestFreshPlansReplicateToAllOwners(t *testing.T) {
	c := newTestCluster(t, 4, 3)

	res, err := c.Optimize(context.Background(), genQuery(t, workload.KindMB, 10, 9))
	if err != nil {
		t.Fatal(err)
	}
	owners := c.Owners(res.Key)
	if len(owners) != 3 {
		t.Fatalf("owners = %v, want 3", owners)
	}
	if owners[0] != res.Node {
		t.Errorf("served by %s, want ring owner %s", res.Node, owners[0])
	}
	snap := c.Snapshot()
	if snap.Replicated != 2 {
		t.Errorf("replicated %d entries, want 2", snap.Replicated)
	}
	if got := c.CacheLen(); got != 3 {
		t.Errorf("cluster holds %d copies, want 3", got)
	}
}

// TestFailoverServesFromReplica is acceptance criterion (b): killing the
// owner mid-stream loses no requests — replicas serve them — and the
// failure detector removes the dead node from the ring.
func TestFailoverServesFromReplica(t *testing.T) {
	c := newTestCluster(t, 4, 2)

	q := genQuery(t, workload.KindMB, 11, 1)
	cold, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	owner := cold.Node

	c.KillNode(owner)

	// Still served — warm, from the replica — while the detector catches up.
	warm, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatalf("request lost after owner kill: %v", err)
	}
	if !warm.Failover {
		t.Error("expected a failover result")
	}
	if warm.Node == owner {
		t.Errorf("served by the killed node %s", owner)
	}
	if !warm.CacheHit {
		t.Error("replica did not hold the replicated entry")
	}
	if !relEq(warm.Plan.Cost, cold.Plan.Cost) {
		t.Errorf("failover cost %g != %g", warm.Plan.Cost, cold.Plan.Cost)
	}

	// One more failed contact crosses the failure threshold (2): the ring
	// rebalances away from the dead node.
	if _, err := c.Optimize(context.Background(), q); err != nil {
		t.Fatalf("request lost during failure detection: %v", err)
	}
	for _, id := range c.AliveNodes() {
		if id == owner {
			t.Errorf("dead node %s still in the ring", owner)
		}
	}
	owners := c.Owners(cold.Key)
	if len(owners) != 2 {
		t.Fatalf("owners after death = %v, want 2", owners)
	}
	for _, id := range owners {
		if id == owner {
			t.Errorf("dead node %s still owns the key", owner)
		}
	}
	snap := c.Snapshot()
	if snap.Deaths != 1 {
		t.Errorf("deaths = %d, want 1", snap.Deaths)
	}
	if snap.Failovers == 0 {
		t.Error("failovers = 0, want > 0")
	}

	// After the rebalance the new owner set serves the entry warm.
	again, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("entry not warm after rebalance")
	}
	if again.Failover {
		t.Error("still failing over after the ring healed")
	}
}

// TestKillMidStreamLosesNoRequests hammers the cluster from concurrent
// clients and kills a node mid-run: every request must still be answered,
// with the correct plan cost.
func TestKillMidStreamLosesNoRequests(t *testing.T) {
	c := newTestCluster(t, 4, 2)

	var jobs []*cost.Query
	for seed := int64(0); seed < 6; seed++ {
		jobs = append(jobs, genQuery(t, workload.KindMB, 10, seed))
	}
	want := make([]float64, len(jobs))
	for i, q := range jobs {
		res, err := c.Optimize(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Plan.Cost
	}

	victim := c.AliveNodes()[0]
	const clients, perClient = 8, 30
	var wg sync.WaitGroup
	var killOnce sync.Once
	errs := make([]error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perClient; i++ {
				if w == 0 && i == perClient/2 {
					killOnce.Do(func() { c.KillNode(victim) })
				}
				j := rng.Intn(len(jobs))
				q := jobs[j]
				if rng.Intn(2) == 0 {
					q = permuteQuery(q, rng.Perm(q.N()))
				}
				res, err := c.Optimize(context.Background(), q)
				if err != nil {
					errs[w] = err
					return
				}
				if !relEq(res.Plan.Cost, want[j]) {
					errs[w] = errors.New("wrong plan cost after failover")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("client %d lost a request: %v", w, err)
		}
	}
	snap := c.Snapshot()
	if snap.Requests != uint64(clients*perClient+len(jobs)) {
		t.Errorf("requests = %d, want %d", snap.Requests, clients*perClient+len(jobs))
	}
	for _, id := range c.AliveNodes() {
		if id == victim {
			t.Errorf("killed node %s still in the ring", victim)
		}
	}
}

// --- membership & rebalancing ------------------------------------------------

func TestHealthSweepDetectsDeathAndRejoin(t *testing.T) {
	c := newTestCluster(t, 3, 2)

	q := genQuery(t, workload.KindMB, 10, 2)
	if _, err := c.Optimize(context.Background(), q); err != nil {
		t.Fatal(err)
	}

	victim := c.AliveNodes()[2]
	c.KillNode(victim)
	c.CheckHealth()
	c.CheckHealth() // threshold 2: second sweep declares death
	if len(c.AliveNodes()) != 2 {
		t.Fatalf("alive = %v after kill+2 sweeps, want 2 nodes", c.AliveNodes())
	}

	c.ReviveNode(victim)
	c.CheckHealth()
	if len(c.AliveNodes()) != 3 {
		t.Fatalf("alive = %v after revive+sweep, want 3 nodes", c.AliveNodes())
	}
	snap := c.Snapshot()
	if snap.Deaths != 1 || snap.Rejoins != 1 {
		t.Errorf("deaths/rejoins = %d/%d, want 1/1", snap.Deaths, snap.Rejoins)
	}

	// The rejoin rebalanced: if the revived node owns the key again, it
	// must hold the entry and serve it warm.
	res, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("entry not warm after rejoin rebalance")
	}
}

func TestAddNodeRebalancesWarmEntries(t *testing.T) {
	c := newTestCluster(t, 2, 2)

	var queries []*cost.Query
	for seed := int64(0); seed < 8; seed++ {
		q := genQuery(t, workload.KindChain, 8, seed)
		queries = append(queries, q)
		if _, err := c.Optimize(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}

	id, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.AliveNodes()) != 3 {
		t.Fatalf("alive = %v, want 3", c.AliveNodes())
	}
	// Every repeat must stay warm: entries whose ownership moved to the new
	// node were migrated by the rebalance.
	for i, q := range queries {
		res, err := c.Optimize(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.CacheHit {
			t.Errorf("query %d went cold after node join", i)
		}
	}
	_ = id
}

func TestRemoveNodeMigratesEntries(t *testing.T) {
	c := newTestCluster(t, 3, 1) // replicas=1: only the migration keeps entries warm
	var queries []*cost.Query
	for seed := int64(0); seed < 8; seed++ {
		q := genQuery(t, workload.KindChain, 8, seed)
		queries = append(queries, q)
		if _, err := c.Optimize(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.AliveNodes()[0]
	if err := c.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode(victim); err == nil {
		t.Error("second RemoveNode of the same node did not error")
	}
	for i, q := range queries {
		res, err := c.Optimize(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.CacheHit {
			t.Errorf("query %d went cold after graceful leave", i)
		}
		if res.Node == victim {
			t.Errorf("query %d served by removed node", i)
		}
	}
}

func TestAllNodesDeadReturnsErrNoNodes(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	for _, id := range c.AliveNodes() {
		c.KillNode(id)
	}
	_, err := c.Optimize(context.Background(), genQuery(t, workload.KindChain, 5, 1))
	if !errors.Is(err, ErrNoNodes) {
		t.Errorf("err = %v, want ErrNoNodes", err)
	}
}

func TestFlushAllDropsEveryCache(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	if _, err := c.Optimize(context.Background(), genQuery(t, workload.KindMB, 10, 4)); err != nil {
		t.Fatal(err)
	}
	if c.CacheLen() == 0 {
		t.Fatal("no cached entries before flush")
	}
	c.FlushAll()
	if got := c.CacheLen(); got != 0 {
		t.Errorf("cache len after FlushAll = %d, want 0", got)
	}
}

// TestFlushAllReachesDeadButReachableNodes guards against a revived node
// resurrecting pre-flush entries: a node that is out of the ring but
// reachable again must still receive FlushAll, so its rejoin rebalance has
// nothing stale to spread.
func TestFlushAllReachesDeadButReachableNodes(t *testing.T) {
	c := newTestCluster(t, 3, 3) // full replication: every node holds the entry
	q := genQuery(t, workload.KindMB, 10, 4)
	if _, err := c.Optimize(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	victim := c.AliveNodes()[0]
	c.KillNode(victim)
	c.CheckHealth()
	c.CheckHealth() // declared dead, out of the ring
	c.ReviveNode(victim)

	c.FlushAll() // victim is reachable again but not yet rejoined
	c.CheckHealth()
	if len(c.AliveNodes()) != 3 {
		t.Fatalf("alive = %v, want all 3 after rejoin", c.AliveNodes())
	}
	if got := c.CacheLen(); got != 0 {
		t.Errorf("cache len after FlushAll + rejoin = %d, want 0 (stale entries spread)", got)
	}
	res, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("flushed entry served as a cache hit after rejoin")
	}
}

func TestClusterClosedAndBadQuery(t *testing.T) {
	c := New(Config{Nodes: 2, Service: service.Config{Workers: 1}})

	// A structurally bad query errors without tripping the failure
	// detector: nodes answered, the query itself is at fault.
	var cat catalog.Catalog
	cat.Add(catalog.NewRelation("a", 100, 32))
	cat.Add(catalog.NewRelation("b", 100, 32))
	disc := &cost.Query{Cat: cat, G: graph.New(2)}
	if _, err := c.Optimize(context.Background(), disc); err == nil {
		t.Error("disconnected query did not error")
	}
	if len(c.AliveNodes()) != 2 {
		t.Errorf("query error killed a node: alive = %v", c.AliveNodes())
	}

	c.Close()
	c.Close() // idempotent
	if _, err := c.Optimize(context.Background(), genQuery(t, workload.KindChain, 4, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("err after Close = %v, want ErrClosed", err)
	}
}

func TestInjectedLatencyIsApplied(t *testing.T) {
	c := New(Config{
		Nodes:    2,
		Replicas: 1,
		Service:  service.Config{Workers: 1},
		Latency: func(to string, kind ReqKind) time.Duration {
			if kind == ReqOptimize {
				return 2 * time.Millisecond
			}
			return 0
		},
	})
	defer c.Close()
	q := genQuery(t, workload.KindChain, 5, 1)
	if _, err := c.Optimize(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := c.Optimize(context.Background(), q) // warm: elapsed is dominated by injected latency
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("expected warm hit")
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Errorf("injected 2ms latency, request took %v", d)
	}
}
