package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/leaktest"
	"repro/internal/service"
	"repro/internal/workload"
)

// TestMain installs the suite-wide goroutine-leak guard: every cluster,
// listener and worker pool a test starts must be gone when the suite ends.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}

// fastRetry keeps test-time backoff negligible without disabling the
// machinery under test.
var fastRetry = RetryPolicy{
	MaxAttempts:       2,
	BaseBackoff:       time.Millisecond,
	MaxBackoff:        2 * time.Millisecond,
	AttemptTimeout:    5 * time.Second,
	MinAttemptTimeout: 50 * time.Millisecond,
}

type pingHandler struct{}

func (pingHandler) handle(context.Context, Request) (*Response, error) {
	return &Response{}, nil
}

// TestLocalTransportLatencyHonorsCancel is the regression test for the
// injected-latency sleep: a cancelled caller must not stay parked for the
// full simulated delay, and its cancellation must not count as a transport
// fault.
func TestLocalTransportLatencyHonorsCancel(t *testing.T) {
	lt := NewLocalTransport()
	lt.register("n", pingHandler{})
	lt.SetLatency(func(string, ReqKind) time.Duration { return 10 * time.Second })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := lt.Call(ctx, "n", Request{Kind: ReqPing})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancelled call took %v — parked on the injected latency timer", elapsed)
	}
	if got := lt.Fails(); got != 0 {
		t.Errorf("caller cancellation counted as %d transport fail(s)", got)
	}
}

// TestFailoverBothTransports runs the kill-owner failover path against the
// in-process transport and against real loopback sockets: same cluster
// code, same behaviour, actual TCP in the second case.
func TestFailoverBothTransports(t *testing.T) {
	transports := map[string]func() Transport{
		"local": func() Transport { return NewLocalTransport() },
		"http":  func() Transport { return NewHTTPTransport() },
	}
	for name, mk := range transports {
		t.Run(name, func(t *testing.T) {
			c := New(Config{
				Nodes:     3,
				Replicas:  2,
				Transport: mk(),
				Retry:     fastRetry,
				Service:   service.Config{Workers: 2},
			})
			defer c.Close()

			q := genQuery(t, workload.KindChain, 8, 7)
			res1, err := c.Optimize(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			owner := res1.Node

			c.KillNode(owner)
			res2, err := c.Optimize(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if res2.Node == owner {
				t.Fatalf("request served by killed node %s", owner)
			}
			if !res2.Failover {
				t.Error("Failover flag not set on replica serve")
			}
			if res2.Plan.Cost != res1.Plan.Cost {
				t.Errorf("failover cost %v != original %v", res2.Plan.Cost, res1.Plan.Cost)
			}
			if !res2.CacheHit {
				t.Error("replica should hold the replicated warm entry")
			}
			if s := c.Snapshot(); s.Failovers == 0 {
				t.Errorf("failovers = 0 after failover; snapshot %+v", s)
			}
		})
	}
}

// TestHTTPTransportWireParity pins the acceptance criterion that the JSON
// wire path is lossless where it matters: the same query optimized through
// a socket cluster and a local cluster yields bit-identical plan cost, and
// canonical fingerprints survive the wire so isomorphic twins still hit
// the shared warm entry.
func TestHTTPTransportWireParity(t *testing.T) {
	mk := func(tr Transport) *Cluster {
		return New(Config{
			Nodes:     2,
			Replicas:  2,
			Transport: tr,
			Retry:     fastRetry,
			Service:   service.Config{Workers: 2},
		})
	}
	local := mk(NewLocalTransport())
	defer local.Close()
	remote := mk(NewHTTPTransport())
	defer remote.Close()

	for seed := int64(0); seed < 4; seed++ {
		q := genQuery(t, workload.KindStar, 9, seed)
		lres, err := local.Optimize(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		rres, err := remote.Optimize(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if lres.Plan.Cost != rres.Plan.Cost {
			t.Errorf("seed %d: cost over socket %v != local %v", seed, rres.Plan.Cost, lres.Plan.Cost)
		}
		if lres.Key != rres.Key {
			t.Errorf("seed %d: fingerprint drifted over the wire: %s vs %s", seed, rres.Key, lres.Key)
		}

		twin := permuteQuery(q, []int{8, 7, 6, 5, 4, 3, 2, 1, 0})
		tres, err := remote.Optimize(context.Background(), twin)
		if err != nil {
			t.Fatal(err)
		}
		if !tres.CacheHit && !tres.Coalesced {
			t.Errorf("seed %d: isomorphic twin went cold over the socket transport", seed)
		}
		if tres.Plan.Cost != rres.Plan.Cost {
			t.Errorf("seed %d: twin cost %v != original %v", seed, tres.Plan.Cost, rres.Plan.Cost)
		}
	}
}

// TestJoinPeerNodeServer exercises the multi-process shape in one process:
// a NodeServer on a real listener joins an empty coordinator via JoinPeer,
// serves traffic, reports its stats through the stats RPC, and leaves
// cleanly.
func TestJoinPeerNodeServer(t *testing.T) {
	ns := NewNodeServer("peer-0", service.Config{Workers: 2})
	addr, err := ns.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	c := New(Config{
		Nodes:     -1, // start empty; the peer is the only member
		Replicas:  1,
		Transport: NewHTTPTransport(),
		Retry:     fastRetry,
		Service:   service.Config{Workers: 1},
	})
	defer c.Close()

	if _, err := c.Optimize(context.Background(), genQuery(t, workload.KindChain, 6, 1)); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("empty cluster err = %v, want ErrNoNodes", err)
	}
	if err := c.JoinPeer("peer-0", addr); err != nil {
		t.Fatal(err)
	}
	if err := c.JoinPeer("peer-0", addr); err == nil {
		t.Error("duplicate JoinPeer accepted")
	}

	q := genQuery(t, workload.KindChain, 8, 2)
	res, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != "peer-0" {
		t.Fatalf("served by %s, want peer-0", res.Node)
	}
	twin, err := c.Optimize(context.Background(), permuteQuery(q, []int{7, 6, 5, 4, 3, 2, 1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if !twin.CacheHit && !twin.Coalesced {
		t.Error("twin went cold on the remote peer")
	}

	snap := c.Snapshot()
	ps, ok := snap.PerNode["peer-0"]
	if !ok {
		t.Fatalf("remote peer missing from snapshot: %+v", snap.PerNode)
	}
	if ps.Requests < 2 {
		t.Errorf("remote stats report %d requests, want >= 2", ps.Requests)
	}
	if ps.CacheLen < 1 {
		t.Errorf("remote cache_len = %d, want >= 1", ps.CacheLen)
	}
	if got := c.CacheLen(); got < 1 {
		t.Errorf("CacheLen() = %d, want >= 1", got)
	}
	if len(snap.Latency) == 0 {
		t.Error("remote latency histograms did not fold into the cluster rollup")
	}

	if err := c.RemoveNode("peer-0"); err != nil {
		t.Fatal(err)
	}
	if got := len(c.AliveNodes()); got != 0 {
		t.Errorf("alive = %d after peer removal, want 0", got)
	}
}

// TestAsymmetricPartition pins the directional fault semantics: a
// request-direction cut means the node never sees the call; a
// reply-direction cut means the node does the work and the coordinator
// still fails over — the nastier failure, because cluster state changed
// behind an error.
func TestAsymmetricPartition(t *testing.T) {
	ft := NewFaultTransport(NewLocalTransport(), 1)
	c := New(Config{
		Nodes:            2,
		Replicas:         2,
		Transport:        ft,
		FailureThreshold: 1000, // keep the ring static: the fault, not the detector, is under test
		Retry:            fastRetry,
		Breaker:          BreakerConfig{Threshold: 1 << 30},
		Service:          service.Config{Workers: 2},
	})
	defer c.Close()

	q := genQuery(t, workload.KindCycle, 8, 3)
	res, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	owner := res.Node
	ownerReqs := func() uint64 {
		c.mu.Lock()
		n := c.nodes[owner]
		c.mu.Unlock()
		return n.svc.Counters().Snapshot().Requests
	}

	// Request direction: the owner must not see the call at all.
	before := ownerReqs()
	ft.Partition(owner, DirRequest, 1)
	res2, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Node == owner {
		t.Fatalf("request crossed a request-direction cut to %s", owner)
	}
	if got := ownerReqs(); got != before {
		t.Errorf("owner served %d request(s) through a request-direction cut", got-before)
	}

	// Reply direction: the owner does the work, the coordinator fails over.
	ft.Clear(owner)
	before = ownerReqs()
	ft.Partition(owner, DirReply, 1)
	res3, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Node == owner {
		t.Fatalf("reply-direction cut returned an answer from %s", owner)
	}
	if !res3.Failover {
		t.Error("reply loss should read as failover")
	}
	if got := ownerReqs(); got <= before {
		t.Error("owner never saw the request under a reply-direction cut — wrong half faulted")
	}
	if ft.Injected() == 0 {
		t.Error("fault transport reports zero injected faults")
	}
}

// TestRetryRecoversLossyLink: on a link dropping half its requests, the
// guarded path's retries keep every request succeeding on the single owner
// and the retry counter shows they were needed.
func TestRetryRecoversLossyLink(t *testing.T) {
	ft := NewFaultTransport(NewLocalTransport(), 7)
	c := New(Config{
		Nodes:            2,
		Replicas:         1, // single owner per key: only retries can save a dropped call
		Transport:        ft,
		FailureThreshold: 1000,
		Retry: RetryPolicy{
			MaxAttempts:    4,
			BaseBackoff:    time.Millisecond,
			MaxBackoff:     2 * time.Millisecond,
			AttemptTimeout: 5 * time.Second,
		},
		Breaker: BreakerConfig{Threshold: 1 << 30},
		Service: service.Config{Workers: 2},
	})
	defer c.Close()

	q := genQuery(t, workload.KindChain, 8, 5)
	owner := c.Owners(service.FingerprintQuery(q).Key)[0]
	ft.Partition(owner, DirRequest, 0.5)
	for i := 0; i < 20; i++ {
		if _, err := c.Optimize(context.Background(), q); err != nil {
			t.Fatalf("request %d failed through a 50%% lossy link: %v", i, err)
		}
	}
	if s := c.Snapshot(); s.Retries == 0 {
		t.Error("retries = 0 on a 50% lossy link — retry path not exercised")
	}
}

// TestBreakerSkipsAndRecovery drives the full breaker lifecycle: window
// failures open it, open routes skip the node before any call (counted as
// breaker_skips, not failovers), and after OpenFor a half-open probe
// closes it again.
func TestBreakerSkipsAndRecovery(t *testing.T) {
	c := New(Config{
		Nodes:            2,
		Replicas:         2,
		FailureThreshold: 1000,
		Retry: RetryPolicy{
			MaxAttempts:    1,
			BaseBackoff:    time.Millisecond,
			MaxBackoff:     2 * time.Millisecond,
			AttemptTimeout: 5 * time.Second,
		},
		Breaker: BreakerConfig{Threshold: 2, Window: time.Minute, OpenFor: 40 * time.Millisecond},
		Service: service.Config{Workers: 2},
	})
	defer c.Close()

	q := genQuery(t, workload.KindStar, 8, 11)
	res, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	owner := res.Node

	c.KillNode(owner)
	// Two failed calls open the breaker (Threshold 2, one attempt each).
	for i := 0; i < 2; i++ {
		if _, err := c.Optimize(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Snapshot()
	if s.Breakers[owner] != "open" {
		t.Fatalf("breaker state = %q after %d failures, want open", s.Breakers[owner], 2)
	}
	if s.BreakerOpens == 0 {
		t.Error("breaker_opens = 0 after a trip")
	}
	skipsBefore := s.BreakerSkips

	// Open breaker: the next request skips the owner without a call.
	res2, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Node == owner {
		t.Fatal("open breaker did not route around the node")
	}
	if res2.Failover {
		t.Error("breaker skip must not read as failover")
	}
	s = c.Snapshot()
	if s.BreakerSkips <= skipsBefore {
		t.Errorf("breaker_skips did not grow on an open-breaker route (%d -> %d)", skipsBefore, s.BreakerSkips)
	}

	// Heal, wait out OpenFor: the half-open probe succeeds and closes it.
	c.ReviveNode(owner)
	time.Sleep(60 * time.Millisecond)
	res3, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Node != owner {
		t.Errorf("half-open probe served by %s, want recovered owner %s", res3.Node, owner)
	}
	if s := c.Snapshot(); s.Breakers[owner] != "closed" {
		t.Errorf("breaker state = %q after successful probe, want closed", s.Breakers[owner])
	}
}

// TestBreakerForcedPass pins the no-lost-requests guarantee: when every
// owner's breaker is open, the routing loop forces a call through rather
// than failing the request — breakers redirect traffic, they never refuse
// it.
func TestBreakerForcedPass(t *testing.T) {
	c := New(Config{
		Nodes:            2,
		Replicas:         1,
		FailureThreshold: 1000,
		Retry:            fastRetry,
		Breaker:          BreakerConfig{Threshold: 2, Window: time.Minute, OpenFor: time.Hour},
		Service:          service.Config{Workers: 2},
	})
	defer c.Close()

	q := genQuery(t, workload.KindChain, 7, 13)
	owner := c.Owners(service.FingerprintQuery(q).Key)[0]
	// Trip the owner's breaker directly: the node itself is healthy, the
	// breaker is just (wrongly) open for the next hour.
	br := c.breakerFor(owner)
	now := time.Now()
	br.record(false, now)
	br.record(false, now)
	if st, _ := br.snapshot(time.Now()); st != BreakerOpen {
		t.Fatalf("setup: breaker state = %v, want open", st)
	}

	res, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatalf("request lost behind an all-open breaker set: %v", err)
	}
	if res.Node != owner {
		t.Errorf("forced pass served by %s, want sole owner %s", res.Node, owner)
	}
	if s := c.Snapshot(); s.BreakerForced == 0 {
		t.Error("breaker_forced = 0 after a forced pass")
	}
}

// TestQuarantineFlappingNode: a node that keeps dying and rejoining stops
// being readmitted immediately — re-entry waits out an exponential
// quarantine, and the quarantined counter records each deferral.
func TestQuarantineFlappingNode(t *testing.T) {
	c := New(Config{
		Nodes:            3,
		Replicas:         2,
		FailureThreshold: 1,
		FlapThreshold:    2,
		FlapWindow:       time.Minute,
		QuarantineBase:   50 * time.Millisecond,
		QuarantineMax:    time.Second,
		Retry:            fastRetry,
		Service:          service.Config{Workers: 1},
	})
	defer c.Close()

	victim := c.AliveNodes()[0]
	flap := func() {
		c.KillNode(victim)
		c.CheckHealth() // death
		c.ReviveNode(victim)
		c.CheckHealth() // rejoin attempt
	}

	alive := func() bool {
		for _, id := range c.AliveNodes() {
			if id == victim {
				return true
			}
		}
		return false
	}

	flap() // death 1: under the flap threshold, rejoins immediately
	if !alive() {
		t.Fatal("first flap should rejoin immediately")
	}
	flap() // death 2: flapping — rejoin deferred
	if alive() {
		t.Fatal("flapping node readmitted without quarantine")
	}
	s := c.Snapshot()
	if s.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", s.Quarantined)
	}
	c.CheckHealth() // still serving quarantine
	if alive() {
		t.Fatal("node readmitted before quarantine expired")
	}

	time.Sleep(70 * time.Millisecond) // quarantine (50ms) served
	c.CheckHealth()
	if !alive() {
		t.Fatal("node not readmitted after quarantine expired")
	}
	// The rejoin re-warms its cache via the rebalance; membership math:
	// 2 normal rejoins + the quarantined one.
	if s := c.Snapshot(); s.Rejoins != 2 {
		t.Errorf("rejoins = %d, want 2", s.Rejoins)
	}
}

// TestPartitionChurnUnderLoad shakes the concurrency story the -race run
// cares about: concurrent optimizes racing with partitions, cuts, heals
// and membership probes must neither panic nor deadlock, and every error
// that escapes must be one of the allowed classes.
func TestPartitionChurnUnderLoad(t *testing.T) {
	ft := NewFaultTransport(NewLocalTransport(), 99)
	c := New(Config{
		Nodes:            3,
		Replicas:         2,
		Transport:        ft,
		FailureThreshold: 50,
		Retry:            fastRetry,
		Breaker:          BreakerConfig{Threshold: 3, Window: time.Second, OpenFor: 10 * time.Millisecond},
		Service:          service.Config{Workers: 2},
	})
	defer c.Close()

	pool := make([]*cost.Query, 6)
	for i := range pool {
		pool[i] = genQuery(t, workload.KindChain, 7, int64(i))
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		nodes := c.AliveNodes()
		dirs := []Direction{DirRequest, DirReply, DirBoth}
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			victim := nodes[i%len(nodes)]
			ft.Partition(victim, dirs[i%len(dirs)], 0.5)
			c.KillNode(victim)
			time.Sleep(3 * time.Millisecond)
			c.ReviveNode(victim)
			ft.Clear(victim)
			c.CheckHealth()
			i++
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				_, err := c.Optimize(context.Background(), pool[(w+i)%len(pool)])
				if err != nil &&
					!errors.Is(err, service.ErrOverloaded) &&
					!errors.Is(err, ErrNoNodes) {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("disallowed error class escaped under churn: %v", err)
	default:
	}
}
