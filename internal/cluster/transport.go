package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cost"
	"repro/internal/service"
)

// ReqKind names one RPC on the node protocol.
type ReqKind int

const (
	// ReqOptimize plans Query on the target node's service.
	ReqOptimize ReqKind = iota
	// ReqPing is the health check.
	ReqPing
	// ReqExport returns the node's cache entries: the one under Key when
	// Key is set, otherwise all of them.
	ReqExport
	// ReqImport installs Entries into the node's cache.
	ReqImport
	// ReqFlush drops the node's cache.
	ReqFlush
	// ReqStats returns the node's service counters, cache size and latency
	// histograms — how the coordinator folds remote (node-mode) peers into
	// its cluster-wide snapshot and /metrics rollup.
	ReqStats
	// ReqBumpEpoch advances the node's catalog stats epoch; cached entries
	// stamped with older epochs are lazily re-costed, not flushed.
	ReqBumpEpoch
	// ReqCacheInfo returns the node's plan-cache summary with its TopN
	// hottest entries.
	ReqCacheInfo
	// ReqInvalidate drops the entry under Key plus every subgraph-memo
	// entry harvested from it.
	ReqInvalidate
)

func (k ReqKind) String() string {
	switch k {
	case ReqOptimize:
		return "optimize"
	case ReqPing:
		return "ping"
	case ReqExport:
		return "export"
	case ReqImport:
		return "import"
	case ReqFlush:
		return "flush"
	case ReqStats:
		return "stats"
	case ReqBumpEpoch:
		return "bump-epoch"
	case ReqCacheInfo:
		return "cache-info"
	case ReqInvalidate:
		return "invalidate"
	}
	return fmt.Sprintf("reqkind(%d)", int(k))
}

// Request is one message from the coordinator to a node.
//
// Every field here must also appear in the HTTP transport's wireRequest
// (httptransport.go) — the wire-parity test in transport_test.go fails the
// build when a field is added on one side only, which is how sub-entries
// and epochs are kept from silently vanishing on the socket path.
type Request struct {
	Kind    ReqKind
	Query   *cost.Query
	Key     string
	Entries []service.Entry
	// SubEntries travel with Entries on import/replication so a peer that
	// inherits a plan can also warm-start overlapping queries.
	SubEntries []service.SubEntry
	// TopN bounds the entry listing of ReqCacheInfo.
	TopN int
}

// Response is a node's answer. Like Request, its fields are mirrored by
// wireResponse and pinned by the wire-parity test.
type Response struct {
	Result  *service.Result
	Entries []service.Entry
	// SubEntries answers ReqExport alongside Entries.
	SubEntries []service.SubEntry
	// Stats answers ReqStats.
	Stats *NodeStats
	// Info answers ReqCacheInfo.
	Info *service.CacheInfo
	// OldEpoch and NewEpoch answer ReqBumpEpoch.
	OldEpoch uint64
	NewEpoch uint64
	// Found and SubsDropped answer ReqInvalidate: whether the whole-query
	// entry existed and how many sub-entries went with it.
	Found       bool
	SubsDropped int
}

// ErrUnreachable is the transport-level failure: the node is partitioned,
// crashed, its reply was lost, or the per-attempt timeout expired before
// an answer arrived. It is the retryable error class — the coordinator's
// retry/backoff and circuit-breaker machinery keys off it.
var ErrUnreachable = errors.New("cluster: node unreachable")

// Transport delivers RPCs from the coordinator to nodes. The context
// carries the caller's cancellation through to the target node's service.
// Implementations must be safe for concurrent use.
type Transport interface {
	Call(ctx context.Context, to string, req Request) (*Response, error)
}

// handler is the node side of the transport.
type handler interface {
	handle(ctx context.Context, req Request) (*Response, error)
}

// nodeAttacher is implemented by transports that can host in-process nodes:
// attach makes h reachable under id and returns the detach function. The
// LocalTransport dispatches by function call; the HTTPTransport starts a
// real loopback listener per node, so the same cluster wiring exercises
// actual sockets.
type nodeAttacher interface {
	attach(id string, h handler) (detach func(), err error)
}

// FaultController is the whole-node fault surface every cluster transport
// supports: Cut makes a node unreachable (crash/partition), Heal reconnects
// it. The FaultTransport middleware layers finer-grained faults (asymmetric
// partitions, probabilistic drops, latency, slowdowns) over any Transport.
type FaultController interface {
	Cut(id string)
	Heal(id string)
}

// sleepCtx waits for d or until ctx is cancelled, whichever comes first,
// and reports whether the full duration elapsed. Injected latency and
// retry backoff both use it so a cancelled caller is never parked on a
// timer it no longer cares about.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// LocalTransport is a deterministic in-process Transport, simulator style:
// calls are direct function calls into the target node, with injectable
// per-destination latency and injectable failures. Cutting a node models a
// crash or partition — calls to it fail with ErrUnreachable, and a reply
// from a call already in flight when the cut lands is dropped too, exactly
// as a real crash loses responses that were on the wire.
type LocalTransport struct {
	mu    sync.RWMutex
	nodes map[string]handler
	cut   map[string]bool

	// latency, when non-nil, returns the simulated delay for one call; the
	// transport sleeps for it before dispatching. Deterministic functions
	// give deterministic schedules.
	latency func(to string, kind ReqKind) time.Duration

	calls atomicCounter
	fails atomicCounter
}

// NewLocalTransport returns an empty transport; nodes register as they
// are created.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{nodes: make(map[string]handler), cut: make(map[string]bool)}
}

// SetLatency installs the injectable latency model (nil: no delay).
func (t *LocalTransport) SetLatency(f func(to string, kind ReqKind) time.Duration) {
	t.mu.Lock()
	t.latency = f
	t.mu.Unlock()
}

// register attaches a node under its ID.
func (t *LocalTransport) register(id string, h handler) {
	t.mu.Lock()
	t.nodes[id] = h
	t.mu.Unlock()
}

// attach implements nodeAttacher: in-process nodes dispatch by direct call.
func (t *LocalTransport) attach(id string, h handler) (func(), error) {
	t.register(id, h)
	return func() { t.deregister(id) }, nil
}

// deregister detaches a node (graceful leave; subsequent calls fail).
func (t *LocalTransport) deregister(id string) {
	t.mu.Lock()
	delete(t.nodes, id)
	t.mu.Unlock()
}

// Cut makes a node unreachable, simulating a crash or partition.
func (t *LocalTransport) Cut(id string) {
	t.mu.Lock()
	t.cut[id] = true
	t.mu.Unlock()
}

// Heal reconnects a previously Cut node.
func (t *LocalTransport) Heal(id string) {
	t.mu.Lock()
	delete(t.cut, id)
	t.mu.Unlock()
}

// Calls returns how many RPCs were attempted; Fails how many failed at the
// transport layer.
func (t *LocalTransport) Calls() uint64 { return t.calls.load() }
func (t *LocalTransport) Fails() uint64 { return t.fails.load() }

// Call dispatches one RPC.
func (t *LocalTransport) Call(ctx context.Context, to string, req Request) (*Response, error) {
	t.calls.add(1)
	t.mu.RLock()
	h, ok := t.nodes[to]
	down := t.cut[to]
	lat := t.latency
	t.mu.RUnlock()

	if lat != nil {
		// The injected delay honours the caller's cancellation: a caller
		// that gave up must not stay parked for the full simulated RTT.
		if !sleepCtx(ctx, lat(to, req.Kind)) {
			return nil, ctx.Err() // caller gave up, not a node fault
		}
	}
	if !ok || down {
		t.fails.add(1)
		return nil, fmt.Errorf("%w: %s (%s)", ErrUnreachable, to, req.Kind)
	}
	resp, err := h.handle(ctx, req)
	// A cut that landed while the call was running drops the reply.
	t.mu.RLock()
	down = t.cut[to]
	t.mu.RUnlock()
	if down {
		t.fails.add(1)
		return nil, fmt.Errorf("%w: %s (%s reply lost)", ErrUnreachable, to, req.Kind)
	}
	return resp, err
}
