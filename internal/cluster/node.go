package cluster

import (
	"context"
	"fmt"

	"repro/internal/service"
)

// node is one cluster member: a service.Service plus the RPC handler the
// transport dispatches into. Nodes hold no ring or membership state — the
// coordinator owns the topology, nodes own plans — so a node can be killed
// and revived without any recovery protocol of its own.
type node struct {
	id  string
	svc *service.Service
}

func newNode(id string, cfg service.Config) *node {
	return &node{id: id, svc: service.New(cfg)}
}

func (n *node) close() { n.svc.Close() }

func (n *node) handle(ctx context.Context, req Request) (*Response, error) {
	switch req.Kind {
	case ReqPing:
		return &Response{}, nil
	case ReqOptimize:
		res, err := n.svc.Optimize(ctx, req.Query)
		if err != nil {
			return nil, err
		}
		return &Response{Result: res}, nil
	case ReqExport:
		if req.Key != "" {
			if e, ok := n.svc.ExportEntry(req.Key); ok {
				// Per-key exports carry the sub-entries harvested from that
				// plan: replication moves warm subplans, not just whole plans.
				return &Response{
					Entries:    []service.Entry{e},
					SubEntries: n.svc.ExportSubsOf(req.Key),
				}, nil
			}
			return &Response{}, nil
		}
		return &Response{Entries: n.svc.Export(), SubEntries: n.svc.ExportSubs()}, nil
	case ReqImport:
		for _, e := range req.Entries {
			if err := n.svc.Import(e); err != nil {
				return nil, err
			}
		}
		if err := n.svc.ImportSubs(req.SubEntries); err != nil {
			return nil, err
		}
		return &Response{}, nil
	case ReqFlush:
		n.svc.Flush()
		return &Response{}, nil
	case ReqBumpEpoch:
		old, cur := n.svc.BumpStatsEpoch()
		return &Response{OldEpoch: old, NewEpoch: cur}, nil
	case ReqCacheInfo:
		info := n.svc.CacheInfo(req.TopN)
		return &Response{Info: &info}, nil
	case ReqInvalidate:
		found, subs := n.svc.Invalidate(req.Key)
		return &Response{Found: found, SubsDropped: subs}, nil
	case ReqStats:
		return &Response{Stats: &NodeStats{
			Snapshot:  n.svc.Counters().Snapshot(),
			CacheLen:  n.svc.CacheLen(),
			SubLen:    n.svc.SubCacheLen(),
			Latencies: n.svc.Counters().ExportLatencies(),
		}}, nil
	}
	return nil, fmt.Errorf("cluster: node %s: unknown request kind %v", n.id, req.Kind)
}
