package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Direction selects which half of a coordinator↔node link a fault applies
// to. The coordinator originates every RPC, so an "A→B cut, B→A fine"
// asymmetric partition maps onto the two halves of one call: DirRequest
// loses the request before the node sees it; DirReply lets the node do the
// work and loses the answer on the way back — the nastier failure, because
// the cluster's state changed even though the coordinator saw an error.
type Direction int

const (
	// DirBoth faults both halves of the link.
	DirBoth Direction = iota
	// DirRequest faults the coordinator→node half: requests are lost, the
	// node never sees them.
	DirRequest
	// DirReply faults the node→coordinator half: the node processes the
	// request, the reply is lost.
	DirReply
)

func (d Direction) String() string {
	switch d {
	case DirRequest:
		return "request"
	case DirReply:
		return "reply"
	}
	return "both"
}

// linkFault is the live fault state of one coordinator→node link.
type linkFault struct {
	cut     bool
	dropReq float64 // P(request lost)
	dropRep float64 // P(reply lost)
	latency time.Duration
	jitter  time.Duration
	slow    time.Duration // slow-node degradation, applied before dispatch
}

// FaultTransport wraps any Transport with a seeded, deterministic fault
// model — the superset of LocalTransport's bare Cut/Heal. Faults are
// per-link and directional: asymmetric partitions (requests lost but
// replies fine, or the reverse), probabilistic drops, injected latency
// with jitter, and slow-node degradation. All decisions come from one
// seeded RNG, so a chaos schedule replays the same fault pattern for the
// same seed.
//
// FaultTransport implements FaultController (whole-node Cut/Heal) and
// passes node attachment through to the wrapped transport, so it can wrap
// either LocalTransport or HTTPTransport inside a Cluster.
type FaultTransport struct {
	base Transport

	mu    sync.Mutex
	rng   *rand.Rand
	links map[string]*linkFault

	injected atomicCounter // faults actually applied (drops, cuts observed by a call)
}

// NewFaultTransport wraps base with a fault model seeded by seed.
func NewFaultTransport(base Transport, seed int64) *FaultTransport {
	return &FaultTransport{
		base:  base,
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[string]*linkFault),
	}
}

// Base returns the wrapped transport.
func (f *FaultTransport) Base() Transport { return f.base }

func (f *FaultTransport) link(id string) *linkFault {
	l := f.links[id]
	if l == nil {
		l = &linkFault{}
		f.links[id] = l
	}
	return l
}

// Cut makes a node fully unreachable in both directions.
func (f *FaultTransport) Cut(id string) {
	f.mu.Lock()
	f.link(id).cut = true
	f.mu.Unlock()
}

// Heal clears a full cut; finer-grained faults (Partition, SetLatency,
// Slow) stay until cleared themselves.
func (f *FaultTransport) Heal(id string) {
	f.mu.Lock()
	f.link(id).cut = false
	f.mu.Unlock()
}

// Partition drops a fraction p of traffic on the chosen half of the link
// to id: p=1 is a hard directional cut, 0<p<1 a lossy link. p=0 heals
// that direction.
func (f *FaultTransport) Partition(id string, dir Direction, p float64) {
	f.mu.Lock()
	l := f.link(id)
	switch dir {
	case DirRequest:
		l.dropReq = p
	case DirReply:
		l.dropRep = p
	default:
		l.dropReq, l.dropRep = p, p
	}
	f.mu.Unlock()
}

// SetLatency injects base±jitter of extra delay on every call to id
// (jitter is uniform in [0,jitter)). Zero clears it.
func (f *FaultTransport) SetLatency(id string, base, jitter time.Duration) {
	f.mu.Lock()
	l := f.link(id)
	l.latency, l.jitter = base, jitter
	f.mu.Unlock()
}

// Slow degrades a node: every call to it pays d of extra service time
// before dispatch — the sick-but-alive node that answers pings and drags
// down its shard. Zero clears it.
func (f *FaultTransport) Slow(id string, d time.Duration) {
	f.mu.Lock()
	f.link(id).slow = d
	f.mu.Unlock()
}

// Clear removes every fault on the link to id.
func (f *FaultTransport) Clear(id string) {
	f.mu.Lock()
	delete(f.links, id)
	f.mu.Unlock()
}

// ClearAll removes every fault on every link.
func (f *FaultTransport) ClearAll() {
	f.mu.Lock()
	f.links = make(map[string]*linkFault)
	f.mu.Unlock()
}

// Injected returns how many faults the transport actually applied to
// calls (cuts observed, requests dropped, replies dropped) — the number
// chaos reconciliation checks the coordinator's counters against.
func (f *FaultTransport) Injected() uint64 { return f.injected.load() }

// Call applies the link's fault schedule around one dispatch on the base
// transport. Fault decisions (coin flips, jitter) are drawn under the lock
// from the seeded RNG; the sleeps honour the caller's context.
func (f *FaultTransport) Call(ctx context.Context, to string, req Request) (*Response, error) {
	f.mu.Lock()
	l := f.links[to]
	var (
		cut     bool
		delay   time.Duration
		dropReq bool
		dropRep bool
	)
	if l != nil {
		cut = l.cut
		delay = l.latency + l.slow
		if l.jitter > 0 {
			delay += time.Duration(f.rng.Int63n(int64(l.jitter)))
		}
		dropReq = l.dropReq > 0 && f.rng.Float64() < l.dropReq
		dropRep = l.dropRep > 0 && f.rng.Float64() < l.dropRep
	}
	f.mu.Unlock()

	if !sleepCtx(ctx, delay) {
		return nil, ctx.Err()
	}
	if cut || dropReq {
		f.injected.add(1)
		return nil, fmt.Errorf("%w: %s (%s %s)", ErrUnreachable, to, req.Kind,
			map[bool]string{true: "cut", false: "request dropped"}[cut])
	}
	resp, err := f.base.Call(ctx, to, req)
	// Re-read the cut state: a cut that lands while the call is in flight
	// loses the reply, as does a reply-direction drop — in both cases the
	// node may have done the work.
	f.mu.Lock()
	if l := f.links[to]; l != nil && l.cut {
		dropRep = true
	}
	f.mu.Unlock()
	if err == nil && dropRep {
		f.injected.add(1)
		return nil, fmt.Errorf("%w: %s (%s reply lost)", ErrUnreachable, to, req.Kind)
	}
	return resp, err
}

// attach passes node hosting through to the wrapped transport.
func (f *FaultTransport) attach(id string, h handler) (func(), error) {
	a, ok := f.base.(nodeAttacher)
	if !ok {
		return nil, fmt.Errorf("cluster: transport %T cannot host nodes", f.base)
	}
	return a.attach(id, h)
}

// Close closes the wrapped transport when it is closable.
func (f *FaultTransport) Close() error {
	if c, ok := f.base.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
