package cluster

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/workload"
)

// These tests are the enforcement half of the comment on Request and
// Response: the HTTP transport mirrors both structs field-by-field into
// hand-written wire shapes, and history shows a field added on one side
// only (sub-entries, epochs) silently vanishes on the socket path while
// the in-process LocalTransport keeps working. Two guards close that gap:
// TestWireStructFieldParity compares the field sets by reflection, and
// TestWireRoundTripAllFields pushes a fully-populated Request and Response
// through a real loopback socket and checks nothing was dropped.

// fieldParity asserts that every exported field of native exists in wire
// with the identical type (unless listed in typeExempt, for fields that
// deliberately change representation on the wire), and that wire has no
// extra fields beyond wireOnly.
func fieldParity(t *testing.T, native, wire reflect.Type, typeExempt, wireOnly map[string]bool) {
	t.Helper()
	wireFields := make(map[string]reflect.Type, wire.NumField())
	for i := 0; i < wire.NumField(); i++ {
		f := wire.Field(i)
		wireFields[f.Name] = f.Type
	}
	for i := 0; i < native.NumField(); i++ {
		f := native.Field(i)
		wt, ok := wireFields[f.Name]
		if !ok {
			t.Errorf("%s.%s has no counterpart in %s: the HTTP transport drops it", native.Name(), f.Name, wire.Name())
			continue
		}
		if !typeExempt[f.Name] && wt != f.Type {
			t.Errorf("%s.%s is %v on the wire but %v natively", native.Name(), f.Name, wt, f.Type)
		}
		delete(wireFields, f.Name)
	}
	for name := range wireFields {
		if !wireOnly[name] {
			t.Errorf("%s.%s has no counterpart in %s: dead wire field or missing native field", wire.Name(), name, native.Name())
		}
	}
}

// TestWireStructFieldParity pins the field sets of Request/wireRequest and
// Response/wireResponse against each other. Adding a field to one struct
// without its mirror fails here before any behavioural test can be fooled
// by the LocalTransport (which copies structs wholesale).
func TestWireStructFieldParity(t *testing.T) {
	fieldParity(t,
		reflect.TypeOf(Request{}), reflect.TypeOf(wireRequest{}),
		map[string]bool{"Query": true}, // *cost.Query rides as *wire.Query
		nil)
	fieldParity(t,
		reflect.TypeOf(Response{}), reflect.TypeOf(wireResponse{}),
		nil,
		map[string]bool{"Err": true}) // node-side errors have no native field
}

// handlerFunc adapts a function to the node handler interface.
type handlerFunc func(context.Context, Request) (*Response, error)

func (f handlerFunc) handle(ctx context.Context, req Request) (*Response, error) { return f(ctx, req) }

// requireNonZero fails for any exported field of v that holds its zero
// value and is not exempted — so a future field addition must also be added
// to the round-trip fixtures below, keeping the test honest.
func requireNonZero(t *testing.T, v reflect.Value, exempt map[string]bool) {
	t.Helper()
	typ := v.Type()
	for i := 0; i < typ.NumField(); i++ {
		if exempt[typ.Field(i).Name] {
			continue
		}
		if v.Field(i).IsZero() {
			t.Fatalf("test fixture leaves %s.%s zero — populate it so the round-trip actually tests it", typ.Name(), typ.Field(i).Name)
		}
	}
}

// TestWireRoundTripAllFields sends a Request with every field populated
// through the HTTP transport's real socket path to a capturing node, which
// answers with a Response with every field populated; both directions must
// come out equal to what went in.
func TestWireRoundTripAllFields(t *testing.T) {
	q := genQuery(t, workload.KindChain, 5, 1)

	req := Request{
		Kind:  ReqImport,
		Query: q,
		Key:   "n5|0:1,1:2;s1",
		Entries: []service.Entry{{
			Key:       "n5|0:1,1:2;s1",
			Algorithm: "mpdp",
			Backend:   "cpu-seq",
			Shape:     service.ShapeChain,
			FellBack:  true,
			Epoch:     3,
			Hits:      9,
			StructKey: "s|n5|0:1,1:2",
			StructOf:  []int{1, 0, 2, 3, 4},
		}},
		SubEntries: []service.SubEntry{{
			Key:    "n3|0:1;s2",
			Origin: "n5|0:1,1:2;s1",
			Set:    7,
			Left:   1,
			Right:  6,
			Rows:   128,
			Cost:   512.5,
			Op:     plan.OpHashJoin,
			Verts:  []int{2, 0, 1},
			Epoch:  3,
			Inv:    0xdeadbeef,
		}},
		TopN: 7,
	}
	requireNonZero(t, reflect.ValueOf(req), nil)

	want := &Response{
		Entries:    req.Entries,
		SubEntries: req.SubEntries,
		Stats: &NodeStats{
			Snapshot: service.Snapshot{Requests: 11, Hits: 4, StatsEpoch: 3},
			CacheLen: 2,
			SubLen:   5,
		},
		Info: &service.CacheInfo{
			Plans:       2,
			Capacity:    4096,
			Shards:      16,
			SubPlans:    5,
			SubCapacity: 65536,
			StatsEpoch:  3,
			Entries: []service.CacheEntryInfo{{
				Key:        "n5|0:1,1:2;s1",
				Shape:      "chain",
				Algorithm:  "mpdp",
				Backend:    "cpu-seq",
				Relations:  5,
				Hits:       9,
				Epoch:      3,
				SubEntries: 5,
				FellBack:   true,
			}},
		},
		OldEpoch:    2,
		NewEpoch:    3,
		Found:       true,
		SubsDropped: 5,
	}
	// Result's lossless transit is covered end-to-end by
	// TestHTTPTransportWireParity (plan costs and fingerprints over the
	// socket); every control-plane field is exercised here.
	requireNonZero(t, reflect.ValueOf(*want), map[string]bool{"Result": true})

	tr := NewHTTPTransport()
	defer tr.Close()
	var got Request
	detach, err := tr.attach("n", handlerFunc(func(_ context.Context, r Request) (*Response, error) {
		got = r
		return want, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer detach()

	resp, err := tr.Call(context.Background(), "n", req)
	if err != nil {
		t.Fatal(err)
	}

	// The query changes representation on the wire (internal/wire form);
	// check it survived structurally, then compare everything else exactly.
	if got.Query == nil || got.Query.N() != q.N() {
		t.Fatalf("query dropped or truncated on the wire: %+v", got.Query)
	}
	got.Query, req.Query = nil, nil
	if !reflect.DeepEqual(got, req) {
		t.Errorf("request mutated on the wire:\n got %+v\nwant %+v", got, req)
	}
	if !reflect.DeepEqual(resp, want) {
		t.Errorf("response mutated on the wire:\n got %+v\nwant %+v", resp, want)
	}
}
