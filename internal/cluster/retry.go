package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy tunes the coordinator's guarded RPC path for request-serving
// calls. Each call gets up to MaxAttempts tries against one node before
// the routing loop moves on to the next replica; only transport-level
// faults (ErrUnreachable, including per-attempt timeouts) are retried — a
// node that answered, even with an error, is never hammered again for the
// same request. Between attempts the coordinator backs off exponentially
// with full jitter: sleep ~ U[0, min(MaxBackoff, BaseBackoff·2^attempt)),
// which decorrelates retry bursts from many concurrent callers.
//
// Per-attempt timeouts are carved from the caller's deadline budget: with
// R remaining and k attempts left, an attempt gets R/k (floored at
// MinAttemptTimeout so a tight deadline still makes real attempts, capped
// at AttemptTimeout so a lost reply cannot pin a generous deadline on one
// dead node). Callers without deadlines get AttemptTimeout per attempt.
type RetryPolicy struct {
	// MaxAttempts per node per request (0: 2 — one retry).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (0: 2ms).
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff sleep (0: 50ms).
	MaxBackoff time.Duration
	// AttemptTimeout caps one attempt (0: 2s). Must comfortably exceed a
	// cold optimization of the largest routine query — it exists to detect
	// lost replies, not to police slow work.
	AttemptTimeout time.Duration
	// MinAttemptTimeout floors the carve so the last slice of a nearly
	// spent deadline is still a real attempt (0: 100ms).
	MinAttemptTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 2
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = 2 * time.Second
	}
	if p.MinAttemptTimeout <= 0 {
		p.MinAttemptTimeout = 100 * time.Millisecond
	}
	return p
}

// attemptBudget returns the timeout for one attempt (attempt is 0-based),
// carved from ctx's remaining deadline budget.
func (p RetryPolicy) attemptBudget(ctx context.Context, attempt int) time.Duration {
	per := p.AttemptTimeout
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		left := p.MaxAttempts - attempt
		if left < 1 {
			left = 1
		}
		carved := rem / time.Duration(left)
		if carved < p.MinAttemptTimeout {
			carved = p.MinAttemptTimeout
		}
		if carved > rem {
			carved = rem
		}
		if carved < per {
			per = carved
		}
	}
	return per
}

// backoff returns the full-jitter sleep before retry number attempt (1-based).
func (p RetryPolicy) backoff(rng *lockedRand, attempt int) time.Duration {
	ceil := p.BaseBackoff << uint(attempt-1)
	if ceil > p.MaxBackoff || ceil <= 0 {
		ceil = p.MaxBackoff
	}
	return rng.durationN(ceil)
}

// lockedRand is a mutex-guarded seeded RNG shared by backoff jitter.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (r *lockedRand) durationN(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	r.mu.Lock()
	v := time.Duration(r.rng.Int63n(int64(d)))
	r.mu.Unlock()
	return v
}

// ErrBreakerOpen is returned by the guarded call path when a node's
// circuit breaker is open: the node has been failing hard enough that the
// coordinator routes straight to the next replica instead of paying
// another timeout. It is never surfaced to clients — the routing loop
// falls through the breaker when every owner is open.
var ErrBreakerOpen = errors.New("cluster: circuit breaker open")

// BreakerConfig tunes the per-node circuit breaker. The breaker watches
// transport-level failures within a sliding window: Threshold failures
// inside Window open it, open calls skip the node entirely for OpenFor,
// then one half-open probe decides between closing and re-opening. Unlike
// a consecutive-failure counter it also catches lossy links, where
// occasional successes would keep resetting the failure detector forever.
type BreakerConfig struct {
	// Threshold failures within Window open the breaker (0: 5).
	Threshold int
	// Window is the failure-counting window (0: 1s).
	Window time.Duration
	// OpenFor is how long an open breaker skips the node before allowing a
	// half-open probe (0: 250ms).
	OpenFor time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 250 * time.Millisecond
	}
	return c
}

// BreakerState names a breaker's position; the values are stable (they are
// exported as the mpdp_transport_breaker_state gauge).
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "closed"
}

// breaker is one node's circuit breaker. All methods are mutex-guarded;
// the hot path is one lock round-trip per guarded call.
type breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state       BreakerState // guarded by mu
	fails       int          // guarded by mu
	windowStart time.Time    // guarded by mu
	openedUntil time.Time    // guarded by mu
	probing     bool         // guarded by mu

	opens uint64 // cumulative closed/half-open → open transitions; guarded by mu
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults()}
}

// allow reports whether a call may proceed. In the open state it flips to
// half-open once OpenFor has passed and admits exactly one probe at a
// time.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Before(b.openedUntil) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record feeds one guarded-call outcome. ok means the node answered (even
// with an application error); !ok is a transport-level fault.
func (b *breaker) record(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	if b.state == BreakerHalfOpen {
		b.tripLocked(now)
		return
	}
	if b.state == BreakerOpen {
		return
	}
	if now.Sub(b.windowStart) > b.cfg.Window {
		b.windowStart = now
		b.fails = 0
	}
	b.fails++
	if b.fails >= b.cfg.Threshold {
		b.tripLocked(now)
	}
}

// tripLocked opens the breaker; callers hold b.mu.
func (b *breaker) tripLocked(now time.Time) {
	b.state = BreakerOpen
	b.openedUntil = now.Add(b.cfg.OpenFor)
	b.fails = 0
	b.probing = false
	b.opens++
}

// snapshot returns the state and cumulative open count.
func (b *breaker) snapshot(now time.Time) (BreakerState, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.state
	if s == BreakerOpen && !now.Before(b.openedUntil) {
		s = BreakerHalfOpen // would probe on the next call
	}
	return s, b.opens
}

// breakerFor returns (creating if needed) the breaker of one node.
func (c *Cluster) breakerFor(id string) *breaker {
	c.breakersMu.Lock()
	defer c.breakersMu.Unlock()
	b := c.breakers[id]
	if b == nil {
		b = newBreaker(c.cfg.Breaker)
		c.breakers[id] = b
	}
	return b
}

// call is the coordinator's guarded RPC path for request-serving calls:
// circuit breaker, per-attempt deadline carve, retry with full-jitter
// backoff on transport faults. force bypasses the breaker — the routing
// loop uses it when every owner's breaker is open, so breakers can only
// redirect traffic, never fail a request on their own.
func (c *Cluster) call(ctx context.Context, id string, req Request, force bool) (*Response, error) {
	br := c.breakerFor(id)
	if !br.allow(time.Now()) {
		if !force {
			c.counters.breakerSkips.add(1)
			return nil, fmt.Errorf("%w: %s (%s)", ErrBreakerOpen, id, req.Kind)
		}
		c.counters.breakerForced.add(1)
	}

	p := c.retry
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.counters.retries.add(1)
			if !sleepCtx(ctx, p.backoff(c.rng, attempt)) {
				return nil, ctx.Err()
			}
		}
		actx, cancel := context.WithTimeout(ctx, p.attemptBudget(ctx, attempt))
		start := time.Now()
		c.counters.transportCalls.add(1)
		resp, err := c.transport.Call(actx, id, req)
		elapsed := time.Since(start)
		attemptTimedOut := actx.Err() != nil && ctx.Err() == nil
		cancel()
		if err == nil {
			c.callLatOK.Record(elapsed)
			br.record(true, time.Now())
			return resp, nil
		}
		if ctx.Err() != nil {
			// The caller is gone; neither the breaker nor the failure
			// detector should learn anything from an abandoned call.
			return nil, err
		}
		if attemptTimedOut && !errors.Is(err, ErrUnreachable) {
			// Our own attempt timer fired: a lost reply or a wedged node.
			// Reclassify as a transport fault so it is retried and feeds
			// the breaker, unlike a caller-owned cancellation.
			err = fmt.Errorf("%w: %s (%s attempt timeout after %v)", ErrUnreachable, id, req.Kind, elapsed)
		}
		if errors.Is(err, ErrUnreachable) {
			c.callLatFail.Record(elapsed)
			c.counters.transportFails.add(1)
			br.record(false, time.Now())
			lastErr = err
			continue
		}
		// The node answered and rejected the call (overloaded, closed, bad
		// query, propagated cancellation): the link works, and retrying a
		// deterministic answer is pure waste.
		c.callLatOK.Record(elapsed)
		br.record(true, time.Now())
		return nil, err
	}
	return nil, lastErr
}
