package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/wire"
)

// RPCPath is the HTTP endpoint a node serves the cluster RPC protocol on.
const RPCPath = "/cluster/rpc"

// wireRequest is the JSON form of a Request. The query rides in the same
// wire shape the public /v1 API uses (internal/wire), so statistics and
// fingerprints survive the socket bit-for-bit; cache entries and results
// marshal their native structs — both sides are this repository, there is
// no cross-version skew to defend against.
type wireRequest struct {
	Kind       ReqKind            `json:"kind"`
	Query      *wire.Query        `json:"query,omitempty"`
	Key        string             `json:"key,omitempty"`
	Entries    []service.Entry    `json:"entries,omitempty"`
	SubEntries []service.SubEntry `json:"sub_entries,omitempty"`
	TopN       int                `json:"top_n,omitempty"`
}

// wireResponse is the JSON form of a Response or a node-side error.
type wireResponse struct {
	Result      *service.Result    `json:"result,omitempty"`
	Entries     []service.Entry    `json:"entries,omitempty"`
	SubEntries  []service.SubEntry `json:"sub_entries,omitempty"`
	Stats       *NodeStats         `json:"stats,omitempty"`
	Info        *service.CacheInfo `json:"info,omitempty"`
	OldEpoch    uint64             `json:"old_epoch,omitempty"`
	NewEpoch    uint64             `json:"new_epoch,omitempty"`
	Found       bool               `json:"found,omitempty"`
	SubsDropped int                `json:"subs_dropped,omitempty"`
	Err         *wireErr           `json:"err,omitempty"`
}

// wireErr carries a node-side error across the socket with enough class
// information for errors.Is to keep working on the coordinator: the
// sentinel errors the routing loop distinguishes each get a stable code.
type wireErr struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

const (
	wireErrOverloaded = "overloaded"
	wireErrClosed     = "closed"
	wireErrCanceled   = "canceled"
	wireErrDeadline   = "deadline"
	wireErrOther      = "error"
)

func encodeErr(err error) *wireErr {
	code := wireErrOther
	switch {
	case errors.Is(err, service.ErrOverloaded):
		code = wireErrOverloaded
	case errors.Is(err, service.ErrClosed):
		code = wireErrClosed
	case errors.Is(err, context.Canceled):
		code = wireErrCanceled
	case errors.Is(err, context.DeadlineExceeded):
		code = wireErrDeadline
	}
	return &wireErr{Code: code, Msg: err.Error()}
}

func (e *wireErr) decode() error {
	switch e.Code {
	case wireErrOverloaded:
		return fmt.Errorf("%w (remote: %s)", service.ErrOverloaded, e.Msg)
	case wireErrClosed:
		return fmt.Errorf("%w (remote: %s)", service.ErrClosed, e.Msg)
	case wireErrCanceled:
		return fmt.Errorf("%w (remote: %s)", context.Canceled, e.Msg)
	case wireErrDeadline:
		return fmt.Errorf("%w (remote: %s)", context.DeadlineExceeded, e.Msg)
	}
	return errors.New(e.Msg)
}

// maxRPCBody bounds one RPC body; a full cache export of 4096 plans is
// well under this.
const maxRPCBody = 256 << 20

// NodeRPCHandler serves the cluster RPC protocol for one node over HTTP.
// Both the in-process loopback listeners HTTPTransport spawns and the
// node-mode of cmd/mpdp-cluster mount it on RPCPath.
func nodeRPCHandler(h handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRPCBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var wreq wireRequest
		if err := json.Unmarshal(body, &wreq); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req := Request{
			Kind:       wreq.Kind,
			Key:        wreq.Key,
			Entries:    wreq.Entries,
			SubEntries: wreq.SubEntries,
			TopN:       wreq.TopN,
		}
		if wreq.Query != nil {
			q, err := wreq.Query.ToQuery(nil)
			if err != nil {
				writeWireResponse(w, &wireResponse{Err: &wireErr{Code: wireErrOther, Msg: err.Error()}})
				return
			}
			req.Query = q
		}
		resp, err := h.handle(r.Context(), req)
		if err != nil {
			writeWireResponse(w, &wireResponse{Err: encodeErr(err)})
			return
		}
		writeWireResponse(w, &wireResponse{
			Result:      resp.Result,
			Entries:     resp.Entries,
			SubEntries:  resp.SubEntries,
			Stats:       resp.Stats,
			Info:        resp.Info,
			OldEpoch:    resp.OldEpoch,
			NewEpoch:    resp.NewEpoch,
			Found:       resp.Found,
			SubsDropped: resp.SubsDropped,
		})
	})
}

func writeWireResponse(w http.ResponseWriter, resp *wireResponse) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// HTTPTransport carries coordinator→node RPCs as JSON over real TCP
// sockets. Peers are either remote node-mode processes (SetPeer) or
// in-process nodes the transport hosts itself on loopback listeners
// (attach) — the latter is how the failover and chaos suites exercise the
// full wire path inside one test process, and how `mpdp-cluster
// -transport=http` runs by default.
//
// Cut/Heal mirror LocalTransport's crash semantics from the coordinator's
// viewpoint: calls to a cut peer fail with ErrUnreachable without touching
// the socket, and a reply that lands after the cut is dropped, exactly as
// a real crash loses in-flight responses.
type HTTPTransport struct {
	mu    sync.RWMutex
	peers map[string]string // id -> base URL
	cut   map[string]bool
	local map[string]*nodeListener

	client *http.Client

	calls atomicCounter
	fails atomicCounter
}

// nodeListener is one loopback listener hosting an in-process node.
type nodeListener struct {
	srv *http.Server
	lis net.Listener
}

// NewHTTPTransport returns a transport with no peers; nodes register via
// Cluster.AddNode (loopback listeners) or SetPeer (remote addresses).
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{
		peers: make(map[string]string),
		cut:   make(map[string]bool),
		local: make(map[string]*nodeListener),
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 32,
				IdleConnTimeout:     30 * time.Second,
			},
		},
	}
}

// SetPeer maps a node ID to its base URL (e.g. "http://127.0.0.1:9001").
// A bare host:port is accepted and gets the scheme prefixed.
func (t *HTTPTransport) SetPeer(id, addr string) {
	if addr != "" && addr[0] != 'h' {
		addr = "http://" + addr
	}
	t.mu.Lock()
	t.peers[id] = addr
	t.mu.Unlock()
}

// RemovePeer forgets a node.
func (t *HTTPTransport) RemovePeer(id string) {
	t.mu.Lock()
	delete(t.peers, id)
	delete(t.cut, id)
	t.mu.Unlock()
}

// Peer returns the base URL registered for id.
func (t *HTTPTransport) Peer(id string) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	addr, ok := t.peers[id]
	return addr, ok
}

// Cut makes a node unreachable, simulating a crash or partition; Heal
// reconnects it.
func (t *HTTPTransport) Cut(id string) {
	t.mu.Lock()
	t.cut[id] = true
	t.mu.Unlock()
}

// Heal reconnects a previously Cut node.
func (t *HTTPTransport) Heal(id string) {
	t.mu.Lock()
	delete(t.cut, id)
	t.mu.Unlock()
}

// Calls returns how many RPCs were attempted; Fails how many failed at the
// transport layer.
func (t *HTTPTransport) Calls() uint64 { return t.calls.load() }
func (t *HTTPTransport) Fails() uint64 { return t.fails.load() }

// attach implements nodeAttacher: it starts a real TCP listener on
// loopback serving the node's RPC protocol and registers its address, so
// every coordinator→node call crosses an actual socket.
func (t *HTTPTransport) attach(id string, h handler) (func(), error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: http transport listen for %s: %w", id, err)
	}
	mux := http.NewServeMux()
	mux.Handle(RPCPath, nodeRPCHandler(h))
	srv := &http.Server{Handler: mux}
	go srv.Serve(lis)
	nl := &nodeListener{srv: srv, lis: lis}
	t.mu.Lock()
	t.local[id] = nl
	t.mu.Unlock()
	t.SetPeer(id, "http://"+lis.Addr().String())
	return func() {
		t.mu.Lock()
		delete(t.local, id)
		t.mu.Unlock()
		srv.Close()
		t.RemovePeer(id)
	}, nil
}

// Close shuts down every hosted loopback listener and the client's idle
// connections. The cluster calls it from Cluster.Close.
func (t *HTTPTransport) Close() error {
	t.mu.Lock()
	locals := make([]*nodeListener, 0, len(t.local))
	for id, nl := range t.local {
		locals = append(locals, nl)
		delete(t.local, id)
	}
	t.mu.Unlock()
	for _, nl := range locals {
		nl.srv.Close()
	}
	t.client.CloseIdleConnections()
	return nil
}

// Call dispatches one RPC over the wire.
func (t *HTTPTransport) Call(ctx context.Context, to string, req Request) (*Response, error) {
	t.calls.add(1)
	t.mu.RLock()
	addr, ok := t.peers[to]
	down := t.cut[to]
	t.mu.RUnlock()
	if !ok || down {
		t.fails.add(1)
		return nil, fmt.Errorf("%w: %s (%s)", ErrUnreachable, to, req.Kind)
	}

	wreq := wireRequest{
		Kind:       req.Kind,
		Key:        req.Key,
		Entries:    req.Entries,
		SubEntries: req.SubEntries,
		TopN:       req.TopN,
	}
	if req.Query != nil {
		wreq.Query = wire.FromQuery(req.Query)
	}
	body, err := json.Marshal(wreq)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal rpc to %s: %w", to, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+RPCPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")

	hresp, err := t.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's context died mid-call; that is the caller's
			// cancellation, not a node fault.
			return nil, ctx.Err()
		}
		t.fails.add(1)
		return nil, fmt.Errorf("%w: %s (%s: %v)", ErrUnreachable, to, req.Kind, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.fails.add(1)
		return nil, fmt.Errorf("%w: %s (%s: status %d)", ErrUnreachable, to, req.Kind, hresp.StatusCode)
	}
	var wresp wireResponse
	if err := json.NewDecoder(io.LimitReader(hresp.Body, maxRPCBody)).Decode(&wresp); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		t.fails.add(1)
		return nil, fmt.Errorf("%w: %s (%s: decode: %v)", ErrUnreachable, to, req.Kind, err)
	}

	// A cut that landed while the call was on the wire drops the reply,
	// mirroring LocalTransport: the node did the work, the coordinator
	// never learns.
	t.mu.RLock()
	down = t.cut[to]
	t.mu.RUnlock()
	if down {
		t.fails.add(1)
		return nil, fmt.Errorf("%w: %s (%s reply lost)", ErrUnreachable, to, req.Kind)
	}
	if wresp.Err != nil {
		return nil, wresp.Err.decode()
	}
	return &Response{
		Result:      wresp.Result,
		Entries:     wresp.Entries,
		SubEntries:  wresp.SubEntries,
		Stats:       wresp.Stats,
		Info:        wresp.Info,
		OldEpoch:    wresp.OldEpoch,
		NewEpoch:    wresp.NewEpoch,
		Found:       wresp.Found,
		SubsDropped: wresp.SubsDropped,
	}, nil
}

// NodeServer hosts one optimizer node behind the cluster RPC protocol —
// the process `mpdp-cluster -mode node` runs, and the building block for
// multi-process clusters joined via Cluster.JoinPeer.
type NodeServer struct {
	id   string
	node *node
	srv  *http.Server
	lis  net.Listener
}

// NewNodeServer builds a node (service included) that will serve the RPC
// protocol; call Start to listen.
func NewNodeServer(id string, cfg service.Config) *NodeServer {
	return &NodeServer{id: id, node: newNode(id, cfg)}
}

// Service exposes the node's underlying service (tests and stats hooks).
func (ns *NodeServer) Service() *service.Service { return ns.node.svc }

// Handler returns the node's HTTP handler: the RPC endpoint plus a
// trivial /healthz.
func (ns *NodeServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle(RPCPath, nodeRPCHandler(ns.node))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"node\":%q}\n", ns.id)
	})
	return mux
}

// Start listens on addr (":0" for an ephemeral port) and serves until
// Close; it returns the bound address.
func (ns *NodeServer) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	ns.lis = lis
	ns.srv = &http.Server{Handler: ns.Handler()}
	go ns.srv.Serve(lis)
	return lis.Addr().String(), nil
}

// Close stops the listener and the node's service.
func (ns *NodeServer) Close() {
	if ns.srv != nil {
		ns.srv.Close()
	}
	ns.node.close()
}
