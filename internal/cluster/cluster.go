// Package cluster scales the optimizer-as-a-service layer out to N nodes:
// a consistent-hash ring keyed by the canonical join-graph fingerprint
// routes every query to one owner node plus R-1 replicas, so isomorphic
// queries entering through any front door land on the same warm plan
// cache; a coordinator handles node join/leave, ping-based failure
// detection, failover to replicas, cache-aware rebalancing on ring
// changes, and read-repair of plan-cache entries between replicas.
//
// Two transports carry the coordinator→node RPCs: LocalTransport is an
// in-process simulator with injectable latency and failures, so every
// distributed behaviour is deterministic and testable; HTTPTransport ships
// the same RPCs as JSON over real TCP sockets, hosting in-process nodes on
// loopback listeners or dialing remote node-mode peers (JoinPeer). The
// FaultTransport middleware layers seeded asymmetric partitions, drops,
// latency and slowdowns over either. Request-path calls go through a
// guarded path: per-attempt timeouts carved from the caller's deadline,
// retry with full-jitter backoff on transport faults, and a per-node
// circuit breaker that routes around nodes that keep failing. See
// CLUSTER.md for the design.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/service"
)

// Config tunes a Cluster. The zero value selects the defaults listed on
// each field.
type Config struct {
	// Nodes is the initial node count (0: 4; negative: start empty — the
	// peers mode, where members arrive via JoinPeer or AddNode).
	Nodes int
	// Replicas is the number of nodes that hold each key, owner included
	// (0: 2). Clamped to the live node count when the cluster is smaller.
	Replicas int
	// VirtualNodes is the number of ring points per node (0: 64). More
	// points smooth key distribution at the price of a larger ring.
	VirtualNodes int
	// FailureThreshold is the number of consecutive failed RPCs (requests
	// or pings) after which a node is declared dead and removed from the
	// ring (0: 2).
	FailureThreshold int
	// HealthInterval runs a background health sweep this often. Zero
	// disables the background checker; CheckHealth can always be called
	// manually (tests drive it deterministically).
	HealthInterval time.Duration
	// Transport carries the coordinator→node RPCs (nil: a fresh
	// LocalTransport). Pass an HTTPTransport to host nodes on real loopback
	// sockets, or a FaultTransport wrapping either for chaos schedules.
	// Close closes the transport along with the cluster.
	Transport Transport
	// Retry tunes the guarded request path: per-attempt timeouts, retry
	// count and backoff. Zero fields take RetryPolicy's defaults.
	Retry RetryPolicy
	// Breaker tunes the per-node circuit breakers. Zero fields take
	// BreakerConfig's defaults.
	Breaker BreakerConfig
	// Seed seeds the coordinator's jitter RNG (0: 1); fault schedules get
	// their own seed in NewFaultTransport.
	Seed int64
	// FlapThreshold deaths within FlapWindow mark a node as flapping: its
	// next ring re-entry is deferred by an exponentially growing
	// quarantine, QuarantineBase doubling up to QuarantineMax, so a node
	// stuck in a crash loop stops churning the ring and the caches.
	// Defaults: 3 deaths in 10s, quarantine 500ms..30s.
	FlapThreshold  int
	FlapWindow     time.Duration
	QuarantineBase time.Duration
	QuarantineMax  time.Duration
	// Latency, when non-nil, is installed as the LocalTransport's
	// injectable latency model (ignored for other transports).
	Latency func(to string, kind ReqKind) time.Duration
	// Service configures each node's service.Service. Remember that every
	// node gets its own worker pool: N nodes with default Workers hold
	// N*GOMAXPROCS workers.
	Service service.Config
	// Slow configures the coordinator's slow-request ring and slow-query
	// log. The coordinator sees the whole request (routing, failover,
	// replication) where a node sees only its own serve, so the cluster
	// front door logs here rather than per node.
	Slow obs.SlowConfig
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Nodes < 0 {
		c.Nodes = 0
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FlapThreshold <= 0 {
		c.FlapThreshold = 3
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = 10 * time.Second
	}
	if c.QuarantineBase <= 0 {
		c.QuarantineBase = 500 * time.Millisecond
	}
	if c.QuarantineMax <= 0 {
		c.QuarantineMax = 30 * time.Second
	}
	c.Retry = c.Retry.withDefaults()
	c.Breaker = c.Breaker.withDefaults()
	return c
}

// Result is one cluster answer: the serving node's service result plus
// routing information.
type Result struct {
	*service.Result
	// Node is the ID of the node that served the request.
	Node string
	// Failover is true when an earlier owner was unreachable and a replica
	// served the request.
	Failover bool
}

// ErrNoNodes is returned when no live node remains to serve a request.
var ErrNoNodes = errors.New("cluster: no alive nodes")

// ErrClosed is returned by cluster operations after Close.
var ErrClosed = errors.New("cluster: closed")

// nodeState is the coordinator's health view of one node, including the
// flap history behind the quarantine logic.
type nodeState struct {
	fails int // consecutive failed RPCs
	dead  bool

	deaths    []time.Time // recent deaths, pruned to FlapWindow
	quarUntil time.Time   // no ring re-entry before this
	quarSet   time.Time   // when the current quarantine was imposed
	quarLevel int         // exponential-backoff level
}

// noteDeath records one death for flap detection; callers hold c.mu.
func (st *nodeState) noteDeath(now time.Time, window time.Duration) {
	st.deaths = append(st.deaths, now)
	st.pruneDeaths(now, window)
}

func (st *nodeState) pruneDeaths(now time.Time, window time.Duration) {
	i := 0
	for i < len(st.deaths) && now.Sub(st.deaths[i]) > window {
		i++
	}
	st.deaths = st.deaths[i:]
}

// Cluster is the coordinator plus its member nodes; create with New,
// release with Close. All methods are safe for concurrent use.
type Cluster struct {
	cfg       Config
	transport Transport
	retry     RetryPolicy
	rng       *lockedRand
	counters  counters
	slog      *obs.SlowLog

	// callLatOK/callLatFail are the guarded transport path's per-attempt
	// latency distributions, by outcome.
	callLatOK   obs.Histogram
	callLatFail obs.Histogram

	breakersMu sync.Mutex
	breakers   map[string]*breaker

	mu     sync.Mutex
	ring   *ring
	nodes  map[string]*node  // in-process members
	detach map[string]func() // their transport detach hooks
	remote map[string]bool   // node-mode peers joined via JoinPeer
	state  map[string]*nodeState
	nextID int
	closed bool

	// rebalanceMu serializes cache migrations (rebalances and graceful
	// leaves) so concurrent topology changes do not interleave imports.
	rebalanceMu sync.Mutex

	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds a cluster of cfg.Nodes nodes and, when cfg.HealthInterval is
// set, starts the background health checker.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:      cfg,
		retry:    cfg.Retry,
		rng:      newLockedRand(cfg.Seed),
		slog:     obs.NewSlowLog(cfg.Slow),
		breakers: make(map[string]*breaker),
		ring:     newRing(cfg.VirtualNodes),
		nodes:    make(map[string]*node),
		detach:   make(map[string]func()),
		remote:   make(map[string]bool),
		state:    make(map[string]*nodeState),
		quit:     make(chan struct{}),
	}
	c.transport = cfg.Transport
	if c.transport == nil {
		c.transport = NewLocalTransport()
	}
	if cfg.Latency != nil {
		if lt, ok := unwrapTransport[*LocalTransport](c.transport); ok {
			lt.SetLatency(cfg.Latency)
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		// An attach failure (a transport that cannot listen) surfaces as a
		// smaller cluster and, at zero members, ErrNoNodes on first use;
		// LocalTransport attaches never fail.
		c.AddNode()
	}
	if cfg.HealthInterval > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			t := time.NewTicker(cfg.HealthInterval)
			defer t.Stop()
			for {
				select {
				case <-c.quit:
					return
				case <-t.C:
					c.CheckHealth()
				}
			}
		}()
	}
	return c
}

// unwrapTransport finds a concrete transport type under any FaultTransport
// wrapping.
func unwrapTransport[T Transport](t Transport) (T, bool) {
	for {
		if v, ok := t.(T); ok {
			return v, true
		}
		ft, ok := t.(*FaultTransport)
		if !ok {
			var zero T
			return zero, false
		}
		t = ft.base
	}
}

// Close stops the health checker, detaches and closes every in-process
// node's service, and closes the transport when it is closable (an
// HTTPTransport's loopback listeners, for instance). Idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	nodes := make([]*node, 0, len(c.nodes))
	detaches := make([]func(), 0, len(c.detach))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	for _, d := range c.detach {
		detaches = append(detaches, d)
	}
	c.mu.Unlock()
	close(c.quit)
	c.wg.Wait()
	for _, d := range detaches {
		d()
	}
	for _, n := range nodes {
		n.close()
	}
	if tc, ok := c.transport.(interface{ Close() error }); ok {
		tc.Close()
	}
}

// Transport returns the cluster's transport, for fault and latency
// injection in tests and demos.
func (c *Cluster) Transport() Transport { return c.transport }

// maintCtx bounds one background maintenance RPC (replication, rebalance,
// pings, drains): maintenance must not hang on a wedged socket, and it has
// no caller deadline of its own to inherit.
func (c *Cluster) maintCtx() (context.Context, context.CancelFunc) {
	//mpdpvet:ignore ctxfirst background maintenance has no caller context to inherit
	return context.WithTimeout(context.Background(), c.retry.AttemptTimeout)
}

// Owners returns the nodes currently responsible for a canonical key,
// owner first.
func (c *Cluster) Owners(key string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.owners(key, c.cfg.Replicas)
}

// AliveNodes returns the IDs of the ring members, sorted.
func (c *Cluster) AliveNodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.nodes()
}

// Optimize routes q to the owner of its canonical fingerprint, failing
// over to replicas while the failure detector catches up with dead nodes.
// Fresh plans are replicated to the other owners, so a warm entry survives
// the loss of Replicas-1 nodes.
//
// Cancelling ctx propagates through the transport into the serving node's
// service, aborting the in-flight optimization; the cancellation is not
// treated as a node failure. A nil ctx means context.Background().
func (c *Cluster) Optimize(ctx context.Context, q *cost.Query) (*Result, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	// The coordinator is the top of the request path for direct callers
	// (the bench harness, the SDK's in-process driver): give them a trace
	// too, so the slow-query log always carries a phase breakdown. Callers
	// arriving through httpapi already attached one.
	tr := obs.FromContext(ctx)
	if tr == nil {
		tr = obs.NewTrace("")
		ctx = obs.WithTrace(ctx, tr)
	}
	res, err := c.optimize(ctx, q, tr)
	if !errors.Is(err, ErrClosed) {
		c.observeSlow(tr, q, res, start, err)
	}
	return res, err
}

// observeSlow feeds one finished front-door request into the coordinator's
// slow-request ring and slow-query log.
func (c *Cluster) observeSlow(tr *obs.Trace, q *cost.Query, res *Result, start time.Time, err error) {
	e := obs.SlowEntry{
		RequestID: tr.RequestID(),
		WallUS:    float64(time.Since(start).Nanoseconds()) / 1e3,
		Spans:     tr.Spans(),
	}
	if q != nil {
		e.Relations = q.N()
	}
	if res != nil {
		e.Node = res.Node
		e.Shape = string(res.Shape)
		e.Algorithm = string(res.Algorithm)
		e.Backend = string(res.Backend)
		e.CacheHit = res.CacheHit
	}
	if err != nil {
		e.Error = err.Error()
	}
	c.slog.Observe(e)
}

// SlowLog returns the coordinator's slow-request ring (never nil).
func (c *Cluster) SlowLog() *obs.SlowLog { return c.slog }

// sweepOutcome is what one pass over a key's owners produced.
type sweepOutcome struct {
	res            *Result // non-nil: a node served the request
	err            error   // non-nil: terminal error to surface as-is
	sawUnreachable bool
	sawShed        bool
	skipped        int // owners bypassed because their breaker was open
	lastErr        error
}

// sweep tries a key's owners in ring order through the guarded call path.
// force pushes through open breakers — the all-owners-open fallback.
func (c *Cluster) sweep(ctx context.Context, q *cost.Query, fpKey string, tr *obs.Trace, owners []string, force bool) sweepOutcome {
	var out sweepOutcome
	req := Request{Kind: ReqOptimize, Query: q}
	for i, id := range owners {
		resp, err := c.call(ctx, id, req, force)
		switch {
		case err == nil:
			c.noteSuccess(id)
			if i > 0 {
				if out.sawUnreachable {
					c.counters.failovers.add(1)
				} else if out.sawShed {
					// Every earlier owner shed: this replica absorbed
					// overflow from a hot shard, not a failure.
					c.counters.overflows.add(1)
				}
				// Owners skipped on an open breaker were already counted
				// under breaker_skips when the skip happened.
			}
			if !resp.Result.CacheHit || i > 0 {
				// Fresh plan, or a failover hit whose earlier owners may
				// lack the entry: push it to the other owners
				// (replication doubling as read-repair).
				repDone := tr.StartSpan(obs.PhaseReplicate)
				c.replicate(fpKey, id, owners)
				repDone()
			}
			out.res = &Result{Result: resp.Result, Node: id, Failover: i > 0 && out.sawUnreachable}
			return out
		case errors.Is(err, ErrBreakerOpen):
			// The breaker routed around this node without a call; the next
			// replica holds the same warm entries.
			out.skipped++
			out.lastErr = err
		case errors.Is(err, service.ErrOverloaded):
			// The owner is alive but shedding load. Replicas hold the
			// same warm entries, so overflowing to the next one spreads
			// a Zipf-hot shard's traffic instead of rejecting it — and
			// it must not feed the failure detector: an overloaded node
			// is the last one the ring should remove.
			out.sawShed = true
			out.lastErr = err
		case errors.Is(err, ErrUnreachable), errors.Is(err, service.ErrClosed):
			// Unreachable (after the guarded path's own retries), or a node
			// whose service closed under a racing RemoveNode/Close: either
			// way this node cannot answer and a replica can.
			out.lastErr = err
			out.sawUnreachable = true
			c.noteFailure(id)
		default:
			// The node answered and rejected the query; replicas are
			// deterministic copies and would answer the same. Caller
			// cancellation is accounted separately — a disconnecting
			// client is not a cluster error.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				c.counters.canceled.add(1)
			} else {
				c.counters.errors.add(1)
			}
			out.err = err
			return out
		}
	}
	return out
}

// optimize is Optimize's body; the wrapper owns the trace and the slow-log
// observation.
func (c *Cluster) optimize(ctx context.Context, q *cost.Query, tr *obs.Trace) (*Result, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()
	c.counters.requests.add(1)

	fp := service.FingerprintQuery(q)
	var lastErr error
	var lastOut sweepOutcome
	// Each sweep over an all-unreachable owner set adds one failure per
	// owner, so after FailureThreshold sweeps those nodes are dead, the
	// ring has changed, and the next sweep sees fresh owners: the loop is
	// bounded and ends at ErrNoNodes when nobody is left.
	for attempt := 0; attempt <= c.cfg.FailureThreshold; attempt++ {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		owners := c.Owners(fp.Key)
		if len(owners) == 0 {
			break
		}
		out := c.sweep(ctx, q, fp.Key, tr, owners, false)
		if out.res == nil && out.err == nil && out.skipped == len(owners) {
			// Every owner's breaker is open. Breakers are an optimization —
			// they may redirect traffic, never refuse it — so force a pass
			// through them rather than fail the request.
			out = c.sweep(ctx, q, fp.Key, tr, owners, true)
		}
		if out.res != nil || out.err != nil {
			return out.res, out.err
		}
		lastOut = out
		if out.lastErr != nil {
			lastErr = out.lastErr
		}
		if !out.sawUnreachable {
			// The sweep failed without a single unreachable owner — every
			// owner shed or sat behind a breaker. The ring will not change,
			// so another sweep would only hammer nodes that just asked for
			// relief.
			break
		}
	}
	if lastOut.sawShed && !lastOut.sawUnreachable {
		// All owners shed: surface the retryable condition (the HTTP layer
		// maps it to 503 + Retry-After). Each node already counted its shed;
		// the coordinator does not double it as an error.
		return nil, fmt.Errorf("cluster: all owners overloaded: %w", service.ErrOverloaded)
	}
	c.counters.errors.add(1)
	if lastErr == nil {
		return nil, ErrNoNodes
	}
	return nil, fmt.Errorf("%w (last: %v)", ErrNoNodes, lastErr)
}

// replicate copies the cache entry under key from the node that just
// served it to the remaining owners. Maintenance traffic uses the raw
// transport — a failed replication is repaired by the next read, so it
// earns neither retries nor breaker feeding.
func (c *Cluster) replicate(key, from string, owners []string) {
	if len(owners) <= 1 {
		return
	}
	ctx, cancel := c.maintCtx()
	defer cancel()
	resp, err := c.transport.Call(ctx, from, Request{Kind: ReqExport, Key: key})
	if err != nil || len(resp.Entries) == 0 {
		return
	}
	// Sub-entries harvested from the plan ride along, so replica owners can
	// warm-start overlapping queries too, not just serve exact hits.
	req := Request{Kind: ReqImport, Entries: resp.Entries, SubEntries: resp.SubEntries}
	for _, id := range owners {
		if id == from {
			continue
		}
		ictx, icancel := c.maintCtx()
		if _, err := c.transport.Call(ictx, id, req); err == nil {
			c.counters.replicated.add(1)
		} else if errors.Is(err, ErrUnreachable) {
			c.noteFailure(id)
		}
		icancel()
	}
}

// attachNode makes a node reachable on the transport.
func (c *Cluster) attachNode(id string, h handler) (func(), error) {
	a, ok := c.transport.(nodeAttacher)
	if !ok {
		return nil, fmt.Errorf("cluster: transport %T cannot host nodes", c.transport)
	}
	return a.attach(id, h)
}

// AddNode creates an in-process node, joins it to the ring and rebalances
// warm entries onto it. It returns the new node's ID. The error is nil for
// LocalTransport clusters; socket transports can fail to listen.
func (c *Cluster) AddNode() (string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", ErrClosed
	}
	id := fmt.Sprintf("node-%d", c.nextID)
	c.nextID++
	c.mu.Unlock()

	n := newNode(id, c.cfg.Service)
	det, err := c.attachNode(id, n)
	if err != nil {
		n.close()
		return "", err
	}
	c.mu.Lock()
	c.nodes[id] = n
	c.detach[id] = det
	c.state[id] = &nodeState{}
	c.ring.add(id)
	c.mu.Unlock()
	c.rebalance()
	return id, nil
}

// JoinPeer adds a remote node-mode peer (see NewNodeServer) to the ring
// under id, reachable at addr. The coordinator pings it once before
// admitting it. Requires a transport with a peer table (HTTPTransport,
// possibly under a FaultTransport).
func (c *Cluster) JoinPeer(id, addr string) error {
	ht, ok := unwrapTransport[*HTTPTransport](c.transport)
	if !ok {
		return fmt.Errorf("cluster: transport %T has no peer table", c.transport)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if _, dup := c.nodes[id]; dup || c.remote[id] {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %s already a member", id)
	}
	c.mu.Unlock()

	ht.SetPeer(id, addr)
	ctx, cancel := c.maintCtx()
	_, err := c.transport.Call(ctx, id, Request{Kind: ReqPing})
	cancel()
	if err != nil {
		ht.RemovePeer(id)
		return fmt.Errorf("cluster: peer %s at %s unreachable: %w", id, addr, err)
	}
	c.mu.Lock()
	c.remote[id] = true
	c.state[id] = &nodeState{}
	c.ring.add(id)
	c.mu.Unlock()
	c.rebalance()
	return nil
}

// RemoveNode gracefully drains a member: it leaves the ring, its warm
// cache entries migrate to their new owners, and (for in-process nodes)
// its service is closed. Remote peers keep running — they just stop being
// members.
func (c *Cluster) RemoveNode(id string) error {
	c.mu.Lock()
	n, local := c.nodes[id]
	isRemote := c.remote[id]
	if !local && !isRemote {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %s", id)
	}
	wasDead := c.state[id].dead
	c.ring.remove(id)
	delete(c.state, id)
	delete(c.nodes, id)
	delete(c.remote, id)
	det := c.detach[id]
	delete(c.detach, id)
	c.mu.Unlock()

	if !wasDead {
		// Drain while still reachable on the transport.
		c.rebalanceMu.Lock()
		ctx, cancel := c.maintCtx()
		if resp, err := c.transport.Call(ctx, id, Request{Kind: ReqExport}); err == nil {
			c.pushEntries(resp.Entries, resp.SubEntries, id)
		}
		cancel()
		c.rebalanceMu.Unlock()
	}
	if det != nil {
		det()
	}
	if isRemote {
		if ht, ok := unwrapTransport[*HTTPTransport](c.transport); ok {
			ht.RemovePeer(id)
		}
	}
	if n != nil {
		n.close()
	}
	return nil
}

// KillNode makes a node unreachable without any cleanup — a simulated
// crash. The failure detector will declare it dead and rebalance. It is a
// no-op on transports without fault control.
func (c *Cluster) KillNode(id string) {
	if fc, ok := c.transport.(FaultController); ok {
		fc.Cut(id)
	}
}

// ReviveNode reconnects a killed node; the next health sweep rejoins it to
// the ring (quarantine permitting) and rebalances warm entries back onto
// it.
func (c *Cluster) ReviveNode(id string) {
	if fc, ok := c.transport.(FaultController); ok {
		fc.Heal(id)
	}
}

// noteSuccess resets a node's consecutive-failure count.
func (c *Cluster) noteSuccess(id string) {
	c.mu.Lock()
	if st := c.state[id]; st != nil && !st.dead {
		st.fails = 0
	}
	c.mu.Unlock()
}

// noteFailure feeds the failure detector: FailureThreshold consecutive
// failures declare the node dead, remove it from the ring and rebalance.
func (c *Cluster) noteFailure(id string) {
	c.mu.Lock()
	st := c.state[id]
	if st == nil || st.dead {
		c.mu.Unlock()
		return
	}
	st.fails++
	if st.fails < c.cfg.FailureThreshold {
		c.mu.Unlock()
		return
	}
	st.dead = true
	st.noteDeath(time.Now(), c.cfg.FlapWindow)
	c.ring.remove(id)
	c.counters.deaths.add(1)
	c.mu.Unlock()
	c.rebalance()
}

// CheckHealth pings every member once, applying the failure detector to
// the results: repeatedly unreachable nodes are declared dead and leave
// the ring; previously dead nodes that answer rejoin it — unless they are
// flapping, in which case re-entry waits out an exponentially growing
// quarantine (Config.Flap*/Quarantine*), so a crash-looping node stops
// churning the ring. Any membership change triggers a rebalance, which
// re-warms a rejoining node's cache. Pings bypass the circuit breaker: the
// health checker is how a dead node's recovery is noticed, so it must keep
// probing nodes the request path has written off. The background checker
// (Config.HealthInterval) calls this on a ticker; tests call it directly.
func (c *Cluster) CheckHealth() {
	ids := c.memberIDs()
	changed := false
	for _, id := range ids {
		ctx, cancel := c.maintCtx()
		_, err := c.transport.Call(ctx, id, Request{Kind: ReqPing})
		cancel()
		c.mu.Lock()
		st := c.state[id]
		if st == nil { // removed concurrently
			c.mu.Unlock()
			continue
		}
		if err == nil {
			st.fails = 0
			if st.dead && c.tryRejoin(id, st) {
				changed = true
			}
		} else {
			st.fails++
			if !st.dead && st.fails >= c.cfg.FailureThreshold {
				st.dead = true
				st.noteDeath(time.Now(), c.cfg.FlapWindow)
				c.ring.remove(id)
				c.counters.deaths.add(1)
				changed = true
			}
		}
		c.mu.Unlock()
	}
	if changed {
		c.rebalance()
	}
}

// tryRejoin decides whether a dead-but-answering node re-enters the ring
// now, applying the flap quarantine. Callers hold c.mu.
func (c *Cluster) tryRejoin(id string, st *nodeState) bool {
	now := time.Now()
	st.pruneDeaths(now, c.cfg.FlapWindow)
	if now.Before(st.quarUntil) {
		// Serving its quarantine; keep probing, keep it out of the ring.
		return false
	}
	diedAgain := len(st.deaths) > 0 && st.deaths[len(st.deaths)-1].After(st.quarSet)
	if len(st.deaths) >= c.cfg.FlapThreshold && diedAgain {
		// Flapping: this is a fresh flap episode (a death since the last
		// quarantine), so impose the next, longer quarantine instead of
		// letting the node churn the ring again.
		d := c.cfg.QuarantineBase << uint(st.quarLevel)
		if d <= 0 || d > c.cfg.QuarantineMax {
			d = c.cfg.QuarantineMax
		}
		st.quarUntil = now.Add(d)
		st.quarSet = now
		st.quarLevel++
		c.counters.quarantined.add(1)
		return false
	}
	st.dead = false
	if len(st.deaths) == 0 {
		st.quarLevel = 0
	}
	c.ring.add(id)
	c.counters.rejoins.add(1)
	return true
}

// memberIDs lists every member, in-process and remote.
func (c *Cluster) memberIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.nodes)+len(c.remote))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	for id := range c.remote {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// rebalance migrates warm cache entries after a topology change: every
// live node's entries are re-keyed against the current ring, and each
// entry is pushed to the owners that should now hold it. Holders keep
// their copies (the LRU evicts them naturally), so rebalancing adds warmth
// rather than removing it — though a destination already at capacity
// evicts its own coldest entries to make room, as with any insert.
// Unreachable nodes are skipped — detecting them is the failure detector's
// job, not the rebalancer's.
func (c *Cluster) rebalance() {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	for _, id := range c.AliveNodes() {
		ctx, cancel := c.maintCtx()
		resp, err := c.transport.Call(ctx, id, Request{Kind: ReqExport})
		cancel()
		if err != nil {
			continue
		}
		c.pushEntries(resp.Entries, resp.SubEntries, id)
	}
}

// pushEntries imports entries into their current owners, batching one
// ReqImport per destination node. Entries already held by holder are not
// re-sent to it. Sub-entries follow their origin entry's owners, so a node
// that inherits a plan inherits the subplans harvested from it.
func (c *Cluster) pushEntries(entries []service.Entry, subs []service.SubEntry, holder string) {
	if len(entries) == 0 {
		return
	}
	subsOf := make(map[string][]service.SubEntry)
	for _, se := range subs {
		subsOf[se.Origin] = append(subsOf[se.Origin], se)
	}
	batches := make(map[string][]service.Entry)
	subBatches := make(map[string][]service.SubEntry)
	for _, e := range entries {
		for _, owner := range c.Owners(e.Key) {
			if owner != holder {
				batches[owner] = append(batches[owner], e)
				subBatches[owner] = append(subBatches[owner], subsOf[e.Key]...)
			}
		}
	}
	for id, batch := range batches {
		ctx, cancel := c.maintCtx()
		req := Request{Kind: ReqImport, Entries: batch, SubEntries: subBatches[id]}
		if _, err := c.transport.Call(ctx, id, req); err == nil {
			c.counters.rebalanced.add(uint64(len(batch)))
		}
		cancel()
	}
}

// FlushAll drops every member's plan cache and subgraph memo. It targets
// all known members, not just ring members, so a node that is
// dead-but-revivable does not carry pre-flush entries back on rejoin; a
// node that is partitioned at flush time still misses the call. Prefer
// BumpStatsEpochAll when the trigger is a statistics change: the epoch
// machinery re-validates cached plans lazily instead of discarding them.
func (c *Cluster) FlushAll() {
	for _, id := range c.memberIDs() {
		ctx, cancel := c.maintCtx()
		c.transport.Call(ctx, id, Request{Kind: ReqFlush})
		cancel()
	}
}

// BumpStatsEpochAll advances the catalog stats epoch on every known member
// and returns the lowest old epoch and highest new epoch observed. Entries
// cached under older epochs are lazily re-costed on their next probe
// rather than flushed (see service.BumpStatsEpoch). A member unreachable
// at bump time keeps its old epoch until the next bump reaches it — the
// same partition caveat FlushAll has, but with a bounded cost: a missed
// bump means one lazy re-cost more, never a wrong plan.
func (c *Cluster) BumpStatsEpochAll() (old, cur uint64) {
	for _, id := range c.memberIDs() {
		ctx, cancel := c.maintCtx()
		resp, err := c.transport.Call(ctx, id, Request{Kind: ReqBumpEpoch})
		cancel()
		if err != nil {
			continue
		}
		if old == 0 || resp.OldEpoch < old {
			old = resp.OldEpoch
		}
		if resp.NewEpoch > cur {
			cur = resp.NewEpoch
		}
	}
	return old, cur
}

// CacheInfo aggregates the plan-cache summaries of every alive node:
// capacities and plan counts sum (replicated entries count once per
// holder), the stats epoch is the highest observed, and the entry listing
// merges per-node listings by fingerprint — hits and sub-entry counts sum
// across holders — truncated to the topN hottest.
func (c *Cluster) CacheInfo(topN int) service.CacheInfo {
	agg := service.CacheInfo{Entries: []service.CacheEntryInfo{}}
	byKey := make(map[string]service.CacheEntryInfo)
	for _, id := range c.AliveNodes() {
		ctx, cancel := c.maintCtx()
		resp, err := c.transport.Call(ctx, id, Request{Kind: ReqCacheInfo, TopN: topN})
		cancel()
		if err != nil || resp.Info == nil {
			continue
		}
		info := resp.Info
		agg.Plans += info.Plans
		agg.Capacity += info.Capacity
		agg.Shards += info.Shards
		agg.SubPlans += info.SubPlans
		agg.SubCapacity += info.SubCapacity
		if info.StatsEpoch > agg.StatsEpoch {
			agg.StatsEpoch = info.StatsEpoch
		}
		for _, e := range info.Entries {
			m, ok := byKey[e.Key]
			if !ok {
				byKey[e.Key] = e
				continue
			}
			m.Hits += e.Hits
			m.SubEntries += e.SubEntries
			if e.Epoch > m.Epoch {
				m.Epoch = e.Epoch
			}
			byKey[e.Key] = m
		}
	}
	for _, e := range byKey {
		agg.Entries = append(agg.Entries, e)
	}
	sort.SliceStable(agg.Entries, func(i, j int) bool {
		if agg.Entries[i].Hits != agg.Entries[j].Hits {
			return agg.Entries[i].Hits > agg.Entries[j].Hits
		}
		return agg.Entries[i].Key < agg.Entries[j].Key
	})
	if topN >= 0 && len(agg.Entries) > topN {
		agg.Entries = agg.Entries[:topN]
	}
	return agg
}

// Invalidate drops the entry under the given canonical fingerprint (plus
// the sub-entries harvested from it) on every known member, reporting
// whether any member held it and how many sub-entries were dropped in
// total.
func (c *Cluster) Invalidate(key string) (found bool, subsDropped int) {
	for _, id := range c.memberIDs() {
		ctx, cancel := c.maintCtx()
		resp, err := c.transport.Call(ctx, id, Request{Kind: ReqInvalidate, Key: key})
		cancel()
		if err != nil {
			continue
		}
		found = found || resp.Found
		subsDropped += resp.SubsDropped
	}
	return found, subsDropped
}

// StatsEpoch returns the highest catalog stats epoch any alive node
// reports (nodes that missed a bump lag until the next one reaches them).
func (c *Cluster) StatsEpoch() uint64 {
	var epoch uint64
	for _, id := range c.AliveNodes() {
		if st, err := c.statsOf(id); err == nil && st.Snapshot.StatsEpoch > epoch {
			epoch = st.Snapshot.StatsEpoch
		}
	}
	return epoch
}

// statsOf fetches a remote member's stats over the transport.
func (c *Cluster) statsOf(id string) (*NodeStats, error) {
	ctx, cancel := c.maintCtx()
	defer cancel()
	resp, err := c.transport.Call(ctx, id, Request{Kind: ReqStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("cluster: node %s returned no stats", id)
	}
	return resp.Stats, nil
}

// CacheLen sums the cached-plan count over all members (replicated entries
// count once per holder). Unreachable remote peers contribute zero.
func (c *Cluster) CacheLen() int {
	c.mu.Lock()
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	remotes := make([]string, 0, len(c.remote))
	for id := range c.remote {
		remotes = append(remotes, id)
	}
	c.mu.Unlock()
	total := 0
	for _, n := range nodes {
		total += n.svc.CacheLen()
	}
	for _, id := range remotes {
		if st, err := c.statsOf(id); err == nil {
			total += st.CacheLen
		}
	}
	return total
}

// Snapshot copies the cluster's instrumentation: coordinator counters,
// membership and per-node service counters (remote peers are polled over
// the transport).
func (c *Cluster) Snapshot() Snapshot {
	s, _ := c.collectStats()
	return s
}

// collectStats builds the snapshot and the cluster-wide merged latency
// set in one pass over the members, so /metrics polls each remote peer
// once, not twice.
func (c *Cluster) collectStats() (Snapshot, *service.LatencySet) {
	s := Snapshot{
		Requests:       c.counters.requests.load(),
		Failovers:      c.counters.failovers.load(),
		Overflows:      c.counters.overflows.load(),
		Replicated:     c.counters.replicated.load(),
		Rebalanced:     c.counters.rebalanced.load(),
		Deaths:         c.counters.deaths.load(),
		Rejoins:        c.counters.rejoins.load(),
		Errors:         c.counters.errors.load(),
		Canceled:       c.counters.canceled.load(),
		Retries:        c.counters.retries.load(),
		TransportCalls: c.counters.transportCalls.load(),
		TransportFails: c.counters.transportFails.load(),
		BreakerSkips:   c.counters.breakerSkips.load(),
		BreakerForced:  c.counters.breakerForced.load(),
		Quarantined:    c.counters.quarantined.load(),
		Replicas:       c.cfg.Replicas,
		PerNode:        make(map[string]NodeSnapshot),
	}
	now := time.Now()
	c.breakersMu.Lock()
	if len(c.breakers) > 0 {
		s.Breakers = make(map[string]string, len(c.breakers))
		for id, b := range c.breakers {
			state, opens := b.snapshot(now)
			s.Breakers[id] = state.String()
			s.BreakerOpens += opens
		}
	}
	c.breakersMu.Unlock()

	c.mu.Lock()
	type nodeRef struct {
		n    *node
		dead bool
	}
	refs := make(map[string]nodeRef, len(c.nodes))
	for id, n := range c.nodes {
		dead := c.state[id].dead
		refs[id] = nodeRef{n, dead}
		if dead {
			s.DeadNodes = append(s.DeadNodes, id)
		} else {
			s.AliveNodes = append(s.AliveNodes, id)
		}
	}
	type remoteRef struct {
		id   string
		dead bool
	}
	remotes := make([]remoteRef, 0, len(c.remote))
	for id := range c.remote {
		dead := c.state[id].dead
		remotes = append(remotes, remoteRef{id, dead})
		if dead {
			s.DeadNodes = append(s.DeadNodes, id)
		} else {
			s.AliveNodes = append(s.AliveNodes, id)
		}
	}
	c.mu.Unlock()

	var served, warm, hits, misses uint64
	var hitUS, missUS float64
	merged := &service.LatencySet{}
	s.Backends = make(map[string]service.BackendCounts)
	fold := func(id string, snap service.Snapshot, cacheLen, subLen int, dead bool) {
		s.PerNode[id] = NodeSnapshot{Snapshot: snap, CacheLen: cacheLen, SubLen: subLen, Dead: dead}
		if snap.StatsEpoch > s.StatsEpoch {
			s.StatsEpoch = snap.StatsEpoch
		}
		served += snap.Hits + snap.Misses + snap.Coalesced
		warm += snap.Hits + snap.Coalesced
		hits += snap.Hits
		misses += snap.Misses
		hitUS += snap.AvgHitMicros * float64(snap.Hits)
		missUS += snap.AvgMissMicros * float64(snap.Misses)
		s.Shed += snap.Shed
		s.Queued += snap.Queued
		s.QueueDepth += snap.QueueDepth
		s.InFlight += snap.InFlight
		for bid, bc := range snap.Backends {
			agg := s.Backends[bid]
			agg.Routed += bc.Routed
			agg.Served += bc.Served
			agg.Hits += bc.Hits
			agg.Fallbacks += bc.Fallbacks
			s.Backends[bid] = agg
		}
	}
	for id, ref := range refs {
		fold(id, ref.n.svc.Counters().Snapshot(), ref.n.svc.CacheLen(), ref.n.svc.SubCacheLen(), ref.dead)
		ref.n.svc.Counters().MergeLatencies(merged)
	}
	for _, r := range remotes {
		st, err := c.statsOf(r.id)
		if err != nil {
			// Unreachable peer: keep it in the membership view with zero
			// counters rather than dropping it from the snapshot.
			s.PerNode[r.id] = NodeSnapshot{Dead: r.dead}
			continue
		}
		fold(r.id, st.Snapshot, st.CacheLen, st.SubLen, r.dead)
		merged.MergeExport(st.Latencies)
	}
	if served > 0 {
		s.HitRate = float64(warm) / float64(served)
	}
	// Request-weighted cluster means of the per-node service times — the
	// roll-up of the avg_hit_us/avg_miss_us fields each node reports.
	if hits > 0 {
		s.AvgHitMicros = hitUS / float64(hits)
	}
	if misses > 0 {
		s.AvgMissMicros = missUS / float64(misses)
	}
	s.Latency = merged.Quantiles()
	sort.Strings(s.AliveNodes)
	sort.Strings(s.DeadNodes)
	return s, merged
}

// WriteMetrics emits the cluster's live metrics in Prometheus text
// exposition format: the coordinator's own counters (mpdp_cluster_*), the
// guarded transport path (mpdp_transport_*: attempts, fails, retries,
// breaker activity and per-node breaker state), cluster-wide sums of the
// node counters, and the node latency histograms merged bucket-wise — one
// scrape of the front door answers cluster-wide p50/p95/p99 per backend.
func (c *Cluster) WriteMetrics(w io.Writer) error {
	s, merged := c.collectStats()
	cachePlans := 0
	for _, ns := range s.PerNode {
		cachePlans += ns.CacheLen
	}
	mw := obs.NewMetricsWriter(w)
	mw.Counter("mpdp_cluster_requests_total", "Requests entering the cluster front door.", nil, s.Requests)
	mw.Counter("mpdp_cluster_failovers_total", "Requests a replica served after an owner was unreachable.", nil, s.Failovers)
	mw.Counter("mpdp_cluster_overflows_total", "Requests a replica absorbed after every earlier owner shed.", nil, s.Overflows)
	mw.Counter("mpdp_cluster_replicated_entries_total", "Plan-cache entries pushed to replica owners.", nil, s.Replicated)
	mw.Counter("mpdp_cluster_rebalanced_entries_total", "Plan-cache entries migrated on topology changes.", nil, s.Rebalanced)
	mw.Counter("mpdp_cluster_deaths_total", "Nodes declared dead by the failure detector.", nil, s.Deaths)
	mw.Counter("mpdp_cluster_rejoins_total", "Dead nodes that rejoined the ring.", nil, s.Rejoins)
	mw.Counter("mpdp_cluster_quarantined_total", "Ring re-entries deferred because the node was flapping.", nil, s.Quarantined)
	mw.Counter("mpdp_cluster_errors_total", "Front-door requests that failed.", nil, s.Errors)
	mw.Counter("mpdp_cluster_canceled_total", "Front-door requests whose caller cancelled.", nil, s.Canceled)
	mw.Gauge("mpdp_cluster_alive_nodes", "Ring members alive.", nil, float64(len(s.AliveNodes)))
	mw.Gauge("mpdp_cluster_cache_plans", "Cached plans summed over all nodes.", nil, float64(cachePlans))

	// The guarded transport path.
	mw.Counter("mpdp_transport_calls_total", "Guarded request-path transport attempts.", nil, s.TransportCalls)
	mw.Counter("mpdp_transport_fails_total", "Transport attempts that failed at the transport layer.", nil, s.TransportFails)
	mw.Counter("mpdp_transport_retries_total", "Extra transport attempts after a fault.", nil, s.Retries)
	mw.Counter("mpdp_transport_breaker_skips_total", "Owners bypassed without a call because their breaker was open.", nil, s.BreakerSkips)
	mw.Counter("mpdp_transport_breaker_forced_total", "Calls pushed through an open breaker because every owner was open.", nil, s.BreakerForced)
	mw.Counter("mpdp_transport_breaker_opens_total", "Circuit-breaker open transitions across all nodes.", nil, s.BreakerOpens)
	const stateHelp = "Per-node circuit-breaker state: 0 closed, 1 open, 2 half-open."
	bnodes := make([]string, 0, len(s.Breakers))
	for id := range s.Breakers {
		bnodes = append(bnodes, id)
	}
	sort.Strings(bnodes)
	for _, id := range bnodes {
		var v float64
		switch s.Breakers[id] {
		case "open":
			v = 1
		case "half_open":
			v = 2
		}
		mw.Gauge("mpdp_transport_breaker_state", stateHelp, obs.Labels{"node": id}, v)
	}
	const attemptHelp = "Latency of guarded transport attempts by outcome."
	mw.Histogram("mpdp_transport_attempt_seconds", attemptHelp, obs.Labels{"outcome": "ok"}, &c.callLatOK)
	mw.Histogram("mpdp_transport_attempt_seconds", attemptHelp, obs.Labels{"outcome": "fail"}, &c.callLatFail)

	// Node-level sums under the same names mpdp-serve exposes, so the same
	// dashboards read either binary.
	var requests, hits, misses, coalesced, fallbacks, errs, canceled uint64
	var rDPCCP, rMPDP, rGPU, rIDP2, rUnion uint64
	var warmRuns, warmSeeded, staleProbes, recosted, recostWins, epochBumps uint64
	cacheSubs := 0
	for _, ns := range s.PerNode {
		requests += ns.Requests
		hits += ns.Hits
		misses += ns.Misses
		coalesced += ns.Coalesced
		fallbacks += ns.Fallbacks
		errs += ns.Errors
		canceled += ns.Canceled
		rDPCCP += ns.RouteDPCCP
		rMPDP += ns.RouteMPDP
		rGPU += ns.RouteMPDPGPU
		rIDP2 += ns.RouteIDP2
		rUnion += ns.RouteUnionDP
		warmRuns += ns.WarmStartRuns
		warmSeeded += ns.WarmStartSeeded
		staleProbes += ns.StaleProbes
		recosted += ns.Recosted
		recostWins += ns.RecostWins
		epochBumps += ns.EpochBumps
		cacheSubs += ns.SubLen
	}
	mw.Counter("mpdp_requests_total", "Optimize calls accepted for processing (all nodes).", nil, requests)
	mw.Counter("mpdp_cache_hits_total", "Requests served from a plan cache (all nodes).", nil, hits)
	mw.Counter("mpdp_cache_misses_total", "Requests that ran an optimization (all nodes).", nil, misses)
	mw.Counter("mpdp_coalesced_total", "Requests coalesced onto an in-flight optimization (all nodes).", nil, coalesced)
	mw.Counter("mpdp_fallbacks_total", "Heuristic fallbacks after budget overruns (all nodes).", nil, fallbacks)
	mw.Counter("mpdp_errors_total", "Failed requests (all nodes).", nil, errs)
	mw.Counter("mpdp_canceled_total", "Cancelled requests (all nodes).", nil, canceled)
	mw.Counter("mpdp_shed_total", "Requests rejected by admission control (all nodes).", nil, s.Shed)
	mw.Counter("mpdp_queued_total", "Requests that entered a worker queue (all nodes).", nil, s.Queued)
	mw.Gauge("mpdp_queue_depth", "Worker-queue slots occupied (all nodes).", nil, float64(s.QueueDepth))
	mw.Gauge("mpdp_inflight", "Node-side requests in progress (all nodes).", nil, float64(s.InFlight))
	mw.Gauge("mpdp_cache_plans", "Cached plans summed over all nodes.", nil, float64(cachePlans))
	mw.Gauge("mpdp_cache_sub_entries", "Subgraph-memo entries summed over all nodes.", nil, float64(cacheSubs))
	mw.Counter("mpdp_cache_warm_start_runs_total", "Optimizations offered a warm start from a subgraph memo (all nodes).", nil, warmRuns)
	mw.Counter("mpdp_cache_warm_start_seeded_total", "Connected sets seeded from subgraph memos before enumeration (all nodes).", nil, warmSeeded)
	mw.Counter("mpdp_cache_stale_probes_total", "Cache misses that located a structural twin from an older stats epoch (all nodes).", nil, staleProbes)
	mw.Counter("mpdp_cache_recost_total", "Stale twin plans re-costed under current statistics (all nodes).", nil, recosted)
	mw.Counter("mpdp_cache_recost_wins_total", "Re-costed stale plans that matched the freshly enumerated optimum (all nodes).", nil, recostWins)
	mw.Counter("mpdp_stats_epoch_bumps_total", "Catalog stats epoch advances (all nodes).", nil, epochBumps)
	mw.Gauge("mpdp_stats_epoch", "Highest catalog stats epoch any node reports.", nil, float64(s.StatsEpoch))
	const routeHelp = "Routing decisions by algorithm (all nodes)."
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "dpccp"}, rDPCCP)
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "mpdp_cpu"}, rMPDP)
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "mpdp_gpu"}, rGPU)
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "idp2"}, rIDP2)
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "uniondp"}, rUnion)

	// Sort the backend keys: exposition output must be deterministic for
	// the golden-format tests.
	const backendHelp = "Per-backend counters summed over all nodes."
	bids := make([]string, 0, len(s.Backends))
	for bid := range s.Backends {
		bids = append(bids, bid)
	}
	sort.Strings(bids)
	for _, bid := range bids {
		bc := s.Backends[bid]
		l := obs.Labels{"backend": bid}
		mw.Counter("mpdp_backend_routed_total", backendHelp, l, bc.Routed)
		mw.Counter("mpdp_backend_served_total", backendHelp, l, bc.Served)
		mw.Counter("mpdp_backend_cache_hits_total", backendHelp, l, bc.Hits)
		mw.Counter("mpdp_backend_fallbacks_total", backendHelp, l, bc.Fallbacks)
	}

	merged.WriteMetrics(mw)
	return mw.Flush()
}
