// Package cluster scales the optimizer-as-a-service layer out to N nodes:
// a consistent-hash ring keyed by the canonical join-graph fingerprint
// routes every query to one owner node plus R-1 replicas, so isomorphic
// queries entering through any front door land on the same warm plan
// cache; a coordinator handles node join/leave, ping-based failure
// detection, failover to replicas, cache-aware rebalancing on ring
// changes, and read-repair of plan-cache entries between replicas. The
// transport is an in-process simulator with injectable latency and
// failures, so every distributed behaviour is deterministic and testable.
// See CLUSTER.md for the design.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/service"
)

// Config tunes a Cluster. The zero value selects the defaults listed on
// each field.
type Config struct {
	// Nodes is the initial node count (0: 4).
	Nodes int
	// Replicas is the number of nodes that hold each key, owner included
	// (0: 2). Clamped to the live node count when the cluster is smaller.
	Replicas int
	// VirtualNodes is the number of ring points per node (0: 64). More
	// points smooth key distribution at the price of a larger ring.
	VirtualNodes int
	// FailureThreshold is the number of consecutive failed RPCs (requests
	// or pings) after which a node is declared dead and removed from the
	// ring (0: 2).
	FailureThreshold int
	// HealthInterval runs a background health sweep this often. Zero
	// disables the background checker; CheckHealth can always be called
	// manually (tests drive it deterministically).
	HealthInterval time.Duration
	// Latency, when non-nil, is installed as the transport's injectable
	// latency model.
	Latency func(to string, kind ReqKind) time.Duration
	// Service configures each node's service.Service. Remember that every
	// node gets its own worker pool: N nodes with default Workers hold
	// N*GOMAXPROCS workers.
	Service service.Config
	// Slow configures the coordinator's slow-request ring and slow-query
	// log. The coordinator sees the whole request (routing, failover,
	// replication) where a node sees only its own serve, so the cluster
	// front door logs here rather than per node.
	Slow obs.SlowConfig
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 2
	}
	return c
}

// Result is one cluster answer: the serving node's service result plus
// routing information.
type Result struct {
	*service.Result
	// Node is the ID of the node that served the request.
	Node string
	// Failover is true when an earlier owner was unreachable and a replica
	// served the request.
	Failover bool
}

// ErrNoNodes is returned when no live node remains to serve a request.
var ErrNoNodes = errors.New("cluster: no alive nodes")

// ErrClosed is returned by cluster operations after Close.
var ErrClosed = errors.New("cluster: closed")

// nodeState is the coordinator's health view of one node.
type nodeState struct {
	fails int // consecutive failed RPCs
	dead  bool
}

// Cluster is the coordinator plus its member nodes; create with New,
// release with Close. All methods are safe for concurrent use.
type Cluster struct {
	cfg       Config
	transport *LocalTransport
	counters  counters
	slog      *obs.SlowLog

	mu     sync.Mutex
	ring   *ring
	nodes  map[string]*node
	state  map[string]*nodeState
	nextID int
	closed bool

	// rebalanceMu serializes cache migrations (rebalances and graceful
	// leaves) so concurrent topology changes do not interleave imports.
	rebalanceMu sync.Mutex

	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds a cluster of cfg.Nodes nodes and, when cfg.HealthInterval is
// set, starts the background health checker.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:       cfg,
		transport: NewLocalTransport(),
		slog:      obs.NewSlowLog(cfg.Slow),
		ring:      newRing(cfg.VirtualNodes),
		nodes:     make(map[string]*node),
		state:     make(map[string]*nodeState),
		quit:      make(chan struct{}),
	}
	if cfg.Latency != nil {
		c.transport.SetLatency(cfg.Latency)
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.AddNode()
	}
	if cfg.HealthInterval > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			t := time.NewTicker(cfg.HealthInterval)
			defer t.Stop()
			for {
				select {
				case <-c.quit:
					return
				case <-t.C:
					c.CheckHealth()
				}
			}
		}()
	}
	return c
}

// Close stops the health checker and every node's service. Idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	close(c.quit)
	c.wg.Wait()
	for _, n := range nodes {
		n.close()
	}
}

// Transport returns the cluster's transport, for fault and latency
// injection in tests and demos.
func (c *Cluster) Transport() *LocalTransport { return c.transport }

// Owners returns the nodes currently responsible for a canonical key,
// owner first.
func (c *Cluster) Owners(key string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.owners(key, c.cfg.Replicas)
}

// AliveNodes returns the IDs of the ring members, sorted.
func (c *Cluster) AliveNodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.nodes()
}

// Optimize routes q to the owner of its canonical fingerprint, failing
// over to replicas while the failure detector catches up with dead nodes.
// Fresh plans are replicated to the other owners, so a warm entry survives
// the loss of Replicas-1 nodes.
//
// Cancelling ctx propagates through the transport into the serving node's
// service, aborting the in-flight optimization; the cancellation is not
// treated as a node failure. A nil ctx means context.Background().
func (c *Cluster) Optimize(ctx context.Context, q *cost.Query) (*Result, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	// The coordinator is the top of the request path for direct callers
	// (the bench harness, the SDK's in-process driver): give them a trace
	// too, so the slow-query log always carries a phase breakdown. Callers
	// arriving through httpapi already attached one.
	tr := obs.FromContext(ctx)
	if tr == nil {
		tr = obs.NewTrace("")
		ctx = obs.WithTrace(ctx, tr)
	}
	res, err := c.optimize(ctx, q, tr)
	if !errors.Is(err, ErrClosed) {
		c.observeSlow(tr, q, res, start, err)
	}
	return res, err
}

// observeSlow feeds one finished front-door request into the coordinator's
// slow-request ring and slow-query log.
func (c *Cluster) observeSlow(tr *obs.Trace, q *cost.Query, res *Result, start time.Time, err error) {
	e := obs.SlowEntry{
		RequestID: tr.RequestID(),
		WallUS:    float64(time.Since(start).Nanoseconds()) / 1e3,
		Spans:     tr.Spans(),
	}
	if q != nil {
		e.Relations = q.N()
	}
	if res != nil {
		e.Node = res.Node
		e.Shape = string(res.Shape)
		e.Algorithm = string(res.Algorithm)
		e.Backend = string(res.Backend)
		e.CacheHit = res.CacheHit
	}
	if err != nil {
		e.Error = err.Error()
	}
	c.slog.Observe(e)
}

// SlowLog returns the coordinator's slow-request ring (never nil).
func (c *Cluster) SlowLog() *obs.SlowLog { return c.slog }

// optimize is Optimize's body; the wrapper owns the trace and the slow-log
// observation.
func (c *Cluster) optimize(ctx context.Context, q *cost.Query, tr *obs.Trace) (*Result, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()
	c.counters.requests.add(1)

	fp := service.FingerprintQuery(q)
	var lastErr error
	// Each sweep over an all-unreachable owner set adds one failure per
	// owner, so after FailureThreshold sweeps those nodes are dead, the
	// ring has changed, and the next sweep sees fresh owners: the loop is
	// bounded and ends at ErrNoNodes when nobody is left.
	for attempt := 0; attempt <= c.cfg.FailureThreshold; attempt++ {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		owners := c.Owners(fp.Key)
		if len(owners) == 0 {
			break
		}
		sawUnreachable := false
		for i, id := range owners {
			resp, err := c.transport.Call(ctx, id, Request{Kind: ReqOptimize, Query: q})
			switch {
			case err == nil:
				c.noteSuccess(id)
				if i > 0 {
					if sawUnreachable {
						c.counters.failovers.add(1)
					} else {
						// Every earlier owner shed: this replica absorbed
						// overflow from a hot shard, not a failure.
						c.counters.overflows.add(1)
					}
				}
				if !resp.Result.CacheHit || i > 0 {
					// Fresh plan, or a failover hit whose earlier owners may
					// lack the entry: push it to the other owners
					// (replication doubling as read-repair).
					repDone := tr.StartSpan(obs.PhaseReplicate)
					c.replicate(fp.Key, id, owners)
					repDone()
				}
				return &Result{Result: resp.Result, Node: id, Failover: i > 0 && sawUnreachable}, nil
			case errors.Is(err, service.ErrOverloaded):
				// The owner is alive but shedding load. Replicas hold the
				// same warm entries, so overflowing to the next one spreads
				// a Zipf-hot shard's traffic instead of rejecting it — and
				// it must not feed the failure detector: an overloaded node
				// is the last one the ring should remove.
				lastErr = err
			case errors.Is(err, ErrUnreachable), errors.Is(err, service.ErrClosed):
				// Unreachable, or a node whose service closed under a racing
				// RemoveNode/Close: either way this node cannot answer and a
				// replica can.
				lastErr = err
				sawUnreachable = true
				c.noteFailure(id)
			default:
				// The node answered and rejected the query; replicas are
				// deterministic copies and would answer the same. Caller
				// cancellation is accounted separately — a disconnecting
				// client is not a cluster error.
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					c.counters.canceled.add(1)
				} else {
					c.counters.errors.add(1)
				}
				return nil, err
			}
		}
		if !sawUnreachable {
			// The sweep failed without a single unreachable owner — every
			// owner shed. The ring will not change, so another sweep would
			// only hammer nodes that just asked for relief.
			break
		}
	}
	if errors.Is(lastErr, service.ErrOverloaded) {
		// All owners shed: surface the retryable condition (the HTTP layer
		// maps it to 503 + Retry-After). Each node already counted its shed;
		// the coordinator does not double it as an error.
		return nil, fmt.Errorf("cluster: all owners overloaded: %w", lastErr)
	}
	c.counters.errors.add(1)
	if lastErr == nil {
		return nil, ErrNoNodes
	}
	return nil, fmt.Errorf("%w (last: %v)", ErrNoNodes, lastErr)
}

// replicate copies the cache entry under key from the node that just
// served it to the remaining owners.
func (c *Cluster) replicate(key, from string, owners []string) {
	if len(owners) <= 1 {
		return
	}
	resp, err := c.transport.Call(context.Background(), from, Request{Kind: ReqExport, Key: key})
	if err != nil || len(resp.Entries) == 0 {
		return
	}
	req := Request{Kind: ReqImport, Entries: resp.Entries}
	for _, id := range owners {
		if id == from {
			continue
		}
		if _, err := c.transport.Call(context.Background(), id, req); err == nil {
			c.counters.replicated.add(1)
		} else if errors.Is(err, ErrUnreachable) {
			c.noteFailure(id)
		}
	}
}

// AddNode creates a node, joins it to the ring and rebalances warm entries
// onto it. It returns the new node's ID.
func (c *Cluster) AddNode() string {
	c.mu.Lock()
	id := fmt.Sprintf("node-%d", c.nextID)
	c.nextID++
	n := newNode(id, c.cfg.Service)
	c.nodes[id] = n
	c.state[id] = &nodeState{}
	c.transport.register(id, n)
	c.ring.add(id)
	c.mu.Unlock()
	c.rebalance()
	return id
}

// RemoveNode gracefully drains a node: it leaves the ring, its warm cache
// entries migrate to their new owners, and its service is closed.
func (c *Cluster) RemoveNode(id string) error {
	c.mu.Lock()
	n, ok := c.nodes[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %s", id)
	}
	wasDead := c.state[id].dead
	c.ring.remove(id)
	delete(c.state, id)
	delete(c.nodes, id)
	c.mu.Unlock()

	if !wasDead {
		// Drain while still registered on the transport.
		c.rebalanceMu.Lock()
		if resp, err := c.transport.Call(context.Background(), id, Request{Kind: ReqExport}); err == nil {
			c.pushEntries(resp.Entries, id)
		}
		c.rebalanceMu.Unlock()
	}
	c.transport.deregister(id)
	n.close()
	return nil
}

// KillNode makes a node unreachable without any cleanup — a simulated
// crash. The failure detector will declare it dead and rebalance.
func (c *Cluster) KillNode(id string) { c.transport.Cut(id) }

// ReviveNode reconnects a killed node; the next health sweep rejoins it to
// the ring and rebalances warm entries back onto it.
func (c *Cluster) ReviveNode(id string) { c.transport.Heal(id) }

// noteSuccess resets a node's consecutive-failure count.
func (c *Cluster) noteSuccess(id string) {
	c.mu.Lock()
	if st := c.state[id]; st != nil && !st.dead {
		st.fails = 0
	}
	c.mu.Unlock()
}

// noteFailure feeds the failure detector: FailureThreshold consecutive
// failures declare the node dead, remove it from the ring and rebalance.
func (c *Cluster) noteFailure(id string) {
	c.mu.Lock()
	st := c.state[id]
	if st == nil || st.dead {
		c.mu.Unlock()
		return
	}
	st.fails++
	if st.fails < c.cfg.FailureThreshold {
		c.mu.Unlock()
		return
	}
	st.dead = true
	c.ring.remove(id)
	c.counters.deaths.add(1)
	c.mu.Unlock()
	c.rebalance()
}

// CheckHealth pings every node once, applying the failure detector to the
// results: repeatedly unreachable nodes are declared dead and leave the
// ring, previously dead nodes that answer rejoin it. Any membership change
// triggers a rebalance. The background checker (Config.HealthInterval)
// calls this on a ticker; tests call it directly.
func (c *Cluster) CheckHealth() {
	c.mu.Lock()
	ids := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	c.mu.Unlock()

	changed := false
	for _, id := range ids {
		_, err := c.transport.Call(context.Background(), id, Request{Kind: ReqPing})
		c.mu.Lock()
		st := c.state[id]
		if st == nil { // removed concurrently
			c.mu.Unlock()
			continue
		}
		if err == nil {
			st.fails = 0
			if st.dead {
				st.dead = false
				c.ring.add(id)
				c.counters.rejoins.add(1)
				changed = true
			}
		} else {
			st.fails++
			if !st.dead && st.fails >= c.cfg.FailureThreshold {
				st.dead = true
				c.ring.remove(id)
				c.counters.deaths.add(1)
				changed = true
			}
		}
		c.mu.Unlock()
	}
	if changed {
		c.rebalance()
	}
}

// rebalance migrates warm cache entries after a topology change: every
// live node's entries are re-keyed against the current ring, and each
// entry is pushed to the owners that should now hold it. Holders keep
// their copies (the LRU evicts them naturally), so rebalancing adds warmth
// rather than removing it — though a destination already at capacity
// evicts its own coldest entries to make room, as with any insert.
// Unreachable nodes are skipped — detecting them is the failure detector's
// job, not the rebalancer's.
func (c *Cluster) rebalance() {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	for _, id := range c.AliveNodes() {
		resp, err := c.transport.Call(context.Background(), id, Request{Kind: ReqExport})
		if err != nil {
			continue
		}
		c.pushEntries(resp.Entries, id)
	}
}

// pushEntries imports entries into their current owners, batching one
// ReqImport per destination node. Entries already held by holder are not
// re-sent to it.
func (c *Cluster) pushEntries(entries []service.Entry, holder string) {
	if len(entries) == 0 {
		return
	}
	batches := make(map[string][]service.Entry)
	for _, e := range entries {
		for _, owner := range c.Owners(e.Key) {
			if owner != holder {
				batches[owner] = append(batches[owner], e)
			}
		}
	}
	for id, batch := range batches {
		if _, err := c.transport.Call(context.Background(), id, Request{Kind: ReqImport, Entries: batch}); err == nil {
			c.counters.rebalanced.add(uint64(len(batch)))
		}
	}
}

// FlushAll drops every node's plan cache — the cluster-wide invalidation
// hook for statistics or catalog changes. It targets all known nodes, not
// just ring members, so a node that is dead-but-revivable does not carry
// pre-flush entries back on rejoin; a node that is partitioned at flush
// time still misses the call (see CLUSTER.md's limits — a real deployment
// would version entries with a catalog epoch).
func (c *Cluster) FlushAll() {
	c.mu.Lock()
	ids := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	for _, id := range ids {
		c.transport.Call(context.Background(), id, Request{Kind: ReqFlush})
	}
}

// CacheLen sums the cached-plan count over all nodes (replicated entries
// count once per holder).
func (c *Cluster) CacheLen() int {
	c.mu.Lock()
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	total := 0
	for _, n := range nodes {
		total += n.svc.CacheLen()
	}
	return total
}

// Snapshot copies the cluster's instrumentation: coordinator counters,
// membership and per-node service counters.
func (c *Cluster) Snapshot() Snapshot {
	s := Snapshot{
		Requests:   c.counters.requests.load(),
		Failovers:  c.counters.failovers.load(),
		Overflows:  c.counters.overflows.load(),
		Replicated: c.counters.replicated.load(),
		Rebalanced: c.counters.rebalanced.load(),
		Deaths:     c.counters.deaths.load(),
		Rejoins:    c.counters.rejoins.load(),
		Errors:     c.counters.errors.load(),
		Canceled:   c.counters.canceled.load(),
		Replicas:   c.cfg.Replicas,
		PerNode:    make(map[string]NodeSnapshot),
	}
	c.mu.Lock()
	type nodeRef struct {
		n    *node
		dead bool
	}
	refs := make(map[string]nodeRef, len(c.nodes))
	for id, n := range c.nodes {
		dead := c.state[id].dead
		refs[id] = nodeRef{n, dead}
		if dead {
			s.DeadNodes = append(s.DeadNodes, id)
		} else {
			s.AliveNodes = append(s.AliveNodes, id)
		}
	}
	c.mu.Unlock()

	var served, warm, hits, misses uint64
	var hitUS, missUS float64
	merged := &service.LatencySet{}
	s.Backends = make(map[string]service.BackendCounts)
	for id, ref := range refs {
		snap := ref.n.svc.Counters().Snapshot()
		s.PerNode[id] = NodeSnapshot{Snapshot: snap, CacheLen: ref.n.svc.CacheLen(), Dead: ref.dead}
		served += snap.Hits + snap.Misses + snap.Coalesced
		warm += snap.Hits + snap.Coalesced
		hits += snap.Hits
		misses += snap.Misses
		hitUS += snap.AvgHitMicros * float64(snap.Hits)
		missUS += snap.AvgMissMicros * float64(snap.Misses)
		s.Shed += snap.Shed
		s.Queued += snap.Queued
		s.QueueDepth += snap.QueueDepth
		s.InFlight += snap.InFlight
		ref.n.svc.Counters().MergeLatencies(merged)
		for bid, bc := range snap.Backends {
			agg := s.Backends[bid]
			agg.Routed += bc.Routed
			agg.Served += bc.Served
			agg.Hits += bc.Hits
			agg.Fallbacks += bc.Fallbacks
			s.Backends[bid] = agg
		}
	}
	if served > 0 {
		s.HitRate = float64(warm) / float64(served)
	}
	// Request-weighted cluster means of the per-node service times — the
	// roll-up of the avg_hit_us/avg_miss_us fields each node reports.
	if hits > 0 {
		s.AvgHitMicros = hitUS / float64(hits)
	}
	if misses > 0 {
		s.AvgMissMicros = missUS / float64(misses)
	}
	s.Latency = merged.Quantiles()
	sort.Strings(s.AliveNodes)
	sort.Strings(s.DeadNodes)
	return s
}

// WriteMetrics emits the cluster's live metrics in Prometheus text
// exposition format: the coordinator's own counters (mpdp_cluster_*),
// cluster-wide sums of the node counters, and the node latency histograms
// merged bucket-wise — one scrape of the front door answers cluster-wide
// p50/p95/p99 per backend.
func (c *Cluster) WriteMetrics(w io.Writer) error {
	s := c.Snapshot()
	mw := obs.NewMetricsWriter(w)
	mw.Counter("mpdp_cluster_requests_total", "Requests entering the cluster front door.", nil, s.Requests)
	mw.Counter("mpdp_cluster_failovers_total", "Requests a replica served after an owner was unreachable.", nil, s.Failovers)
	mw.Counter("mpdp_cluster_overflows_total", "Requests a replica absorbed after every earlier owner shed.", nil, s.Overflows)
	mw.Counter("mpdp_cluster_replicated_entries_total", "Plan-cache entries pushed to replica owners.", nil, s.Replicated)
	mw.Counter("mpdp_cluster_rebalanced_entries_total", "Plan-cache entries migrated on topology changes.", nil, s.Rebalanced)
	mw.Counter("mpdp_cluster_deaths_total", "Nodes declared dead by the failure detector.", nil, s.Deaths)
	mw.Counter("mpdp_cluster_rejoins_total", "Dead nodes that rejoined the ring.", nil, s.Rejoins)
	mw.Counter("mpdp_cluster_errors_total", "Front-door requests that failed.", nil, s.Errors)
	mw.Counter("mpdp_cluster_canceled_total", "Front-door requests whose caller cancelled.", nil, s.Canceled)
	mw.Gauge("mpdp_cluster_alive_nodes", "Ring members alive.", nil, float64(len(s.AliveNodes)))
	mw.Gauge("mpdp_cluster_cache_plans", "Cached plans summed over all nodes.", nil, float64(c.CacheLen()))

	// Node-level sums under the same names mpdp-serve exposes, so the same
	// dashboards read either binary.
	var requests, hits, misses, coalesced, fallbacks, errs, canceled uint64
	var rDPCCP, rMPDP, rGPU, rIDP2, rUnion uint64
	for _, ns := range s.PerNode {
		requests += ns.Requests
		hits += ns.Hits
		misses += ns.Misses
		coalesced += ns.Coalesced
		fallbacks += ns.Fallbacks
		errs += ns.Errors
		canceled += ns.Canceled
		rDPCCP += ns.RouteDPCCP
		rMPDP += ns.RouteMPDP
		rGPU += ns.RouteMPDPGPU
		rIDP2 += ns.RouteIDP2
		rUnion += ns.RouteUnionDP
	}
	mw.Counter("mpdp_requests_total", "Optimize calls accepted for processing (all nodes).", nil, requests)
	mw.Counter("mpdp_cache_hits_total", "Requests served from a plan cache (all nodes).", nil, hits)
	mw.Counter("mpdp_cache_misses_total", "Requests that ran an optimization (all nodes).", nil, misses)
	mw.Counter("mpdp_coalesced_total", "Requests coalesced onto an in-flight optimization (all nodes).", nil, coalesced)
	mw.Counter("mpdp_fallbacks_total", "Heuristic fallbacks after budget overruns (all nodes).", nil, fallbacks)
	mw.Counter("mpdp_errors_total", "Failed requests (all nodes).", nil, errs)
	mw.Counter("mpdp_canceled_total", "Cancelled requests (all nodes).", nil, canceled)
	mw.Counter("mpdp_shed_total", "Requests rejected by admission control (all nodes).", nil, s.Shed)
	mw.Counter("mpdp_queued_total", "Requests that entered a worker queue (all nodes).", nil, s.Queued)
	mw.Gauge("mpdp_queue_depth", "Worker-queue slots occupied (all nodes).", nil, float64(s.QueueDepth))
	mw.Gauge("mpdp_inflight", "Node-side requests in progress (all nodes).", nil, float64(s.InFlight))
	mw.Gauge("mpdp_cache_plans", "Cached plans summed over all nodes.", nil, float64(c.CacheLen()))
	const routeHelp = "Routing decisions by algorithm (all nodes)."
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "dpccp"}, rDPCCP)
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "mpdp_cpu"}, rMPDP)
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "mpdp_gpu"}, rGPU)
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "idp2"}, rIDP2)
	mw.Counter("mpdp_route_total", routeHelp, obs.Labels{"algorithm": "uniondp"}, rUnion)

	// Sort the backend keys: exposition output must be deterministic for
	// the golden-format tests.
	const backendHelp = "Per-backend counters summed over all nodes."
	bids := make([]string, 0, len(s.Backends))
	for bid := range s.Backends {
		bids = append(bids, bid)
	}
	sort.Strings(bids)
	for _, bid := range bids {
		bc := s.Backends[bid]
		l := obs.Labels{"backend": bid}
		mw.Counter("mpdp_backend_routed_total", backendHelp, l, bc.Routed)
		mw.Counter("mpdp_backend_served_total", backendHelp, l, bc.Served)
		mw.Counter("mpdp_backend_cache_hits_total", backendHelp, l, bc.Hits)
		mw.Counter("mpdp_backend_fallbacks_total", backendHelp, l, bc.Fallbacks)
	}

	c.mergedLatencies().WriteMetrics(mw)
	return mw.Flush()
}

// mergedLatencies merges every node's latency histograms into one set.
func (c *Cluster) mergedLatencies() *service.LatencySet {
	c.mu.Lock()
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	l := &service.LatencySet{}
	for _, n := range nodes {
		n.svc.Counters().MergeLatencies(l)
	}
	return l
}
