package cluster

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/workload"
)

// TestClusterStatsLatencyMatchesMeasured is the rollup acceptance test: the
// quantiles the front door reports in /v1/stats (merged bucket-wise from
// every node's histograms) must match a client-side, loadgen-measured
// distribution of the same requests within the histogram's 6.25% relative
// error bound. The merge is lossless, so counts must agree exactly.
func TestClusterStatsLatencyMatchesMeasured(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	ctx := context.Background()

	// A loadgen-style client-side mirror: one histogram per stats key.
	measured := make(map[string]*loadgen.Hist)
	record := func(key string, d time.Duration) {
		h := measured[key]
		if h == nil {
			h = &loadgen.Hist{}
			measured[key] = h
		}
		h.Record(d)
	}

	// Sequential traffic (no coalescing): 40 distinct queries, then the
	// same 40 again so every fingerprint also gets a cache hit, spread over
	// shapes so more than one backend shows up.
	var queries []*cost.Query
	for i := 0; i < 20; i++ {
		queries = append(queries, genQuery(t, workload.KindChain, 8+i%5, int64(i)))
	}
	for i := 0; i < 20; i++ {
		queries = append(queries, genQuery(t, workload.KindStar, 8+i%5, int64(100+i)))
	}
	for round := 0; round < 2; round++ {
		for _, q := range queries {
			res, err := c.Optimize(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			outcome := "miss"
			if res.CacheHit {
				outcome = "hit"
			}
			record(outcome+":"+string(res.Backend), res.Elapsed)
		}
	}

	got := c.Snapshot().Latency
	if len(got) == 0 {
		t.Fatal("cluster snapshot has no latency section")
	}
	if len(measured) == 0 {
		t.Fatal("mirror recorded nothing")
	}
	toMS := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	for key, h := range measured {
		q, ok := got[key]
		if !ok {
			t.Errorf("stats lack latency key %q (have %v)", key, keysOf(got))
			continue
		}
		if q.Count != h.Count() {
			t.Errorf("%s: count %d != measured %d", key, q.Count, h.Count())
		}
		checks := []struct {
			name string
			want float64
			got  float64
		}{
			{"p50", toMS(h.Quantile(0.50)), q.P50MS},
			{"p95", toMS(h.Quantile(0.95)), q.P95MS},
			{"p99", toMS(h.Quantile(0.99)), q.P99MS},
			{"max", toMS(h.Max()), q.MaxMS},
		}
		for _, ck := range checks {
			if !within(ck.got, ck.want, 0.0625) {
				t.Errorf("%s %s: stats %.4fms vs measured %.4fms (>6.25%% apart)",
					key, ck.name, ck.got, ck.want)
			}
		}
	}

	// Satellite: the request-weighted hit/miss averages must be rolled up
	// (they were computed per node but never merged before).
	s := c.Snapshot()
	if s.AvgHitMicros <= 0 || s.AvgMissMicros <= 0 {
		t.Errorf("avg_hit_us = %g, avg_miss_us = %g, want both > 0",
			s.AvgHitMicros, s.AvgMissMicros)
	}
}

func keysOf(m map[string]service.Quantiles) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func within(got, want, rel float64) bool {
	if got == want {
		return true
	}
	return math.Abs(got-want) <= rel*math.Max(math.Abs(got), math.Abs(want))
}

// TestClusterSlowLogRecordsNodeAndTrace checks the coordinator's slow ring:
// every request lands in it (the ring is always on), stamped with the
// serving node and, when the caller attached a trace, the request id and
// phase spans including the coordinator's replicate span.
func TestClusterSlowLogRecordsNodeAndTrace(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	tr := obs.NewTrace("rid-slow-7")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := c.Optimize(ctx, genQuery(t, workload.KindChain, 10, 1)); err != nil {
		t.Fatal(err)
	}
	entries := c.SlowLog().Slowest(0)
	if len(entries) != 1 {
		t.Fatalf("slow ring has %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.RequestID != "rid-slow-7" {
		t.Errorf("slow entry request_id = %q, want rid-slow-7", e.RequestID)
	}
	if e.Node == "" {
		t.Error("slow entry has no node")
	}
	if e.WallUS <= 0 {
		t.Errorf("slow entry wall_us = %g", e.WallUS)
	}
	if len(e.Spans) == 0 {
		t.Error("slow entry has no spans")
	}
	hasReplicate := false
	for _, s := range e.Spans {
		if s.Phase == obs.PhaseReplicate {
			hasReplicate = true
		}
	}
	if !hasReplicate {
		t.Errorf("miss with replication recorded no replicate span: %+v", e.Spans)
	}

	// Without a caller trace the coordinator mints one, so the slow entry
	// still gets a phase breakdown (just no request id).
	if _, err := c.Optimize(context.Background(), genQuery(t, workload.KindChain, 11, 2)); err != nil {
		t.Fatal(err)
	}
	entries = c.SlowLog().Slowest(0)
	if len(entries) != 2 {
		t.Fatalf("slow ring has %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if len(e.Spans) == 0 {
			t.Errorf("entry %q has no spans", e.RequestID)
		}
	}
}
