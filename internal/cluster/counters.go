package cluster

import (
	"encoding/json"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/service"
)

// atomicCounter is a tiny wrapper so counter structs stay copy-proof and
// the call sites short.
type atomicCounter struct{ v atomic.Uint64 }

func (c *atomicCounter) add(n uint64) { c.v.Add(n) }
func (c *atomicCounter) load() uint64 { return c.v.Load() }

// counters is the coordinator's own instrumentation, distinct from each
// node's service.Counters: it counts routing-layer events (failovers,
// replication, rebalancing, membership changes) that no single node can
// see.
type counters struct {
	requests   atomicCounter
	failovers  atomicCounter
	overflows  atomicCounter
	replicated atomicCounter
	rebalanced atomicCounter
	deaths     atomicCounter
	rejoins    atomicCounter
	errors     atomicCounter
	canceled   atomicCounter

	// The guarded-transport layer: retries counts extra attempts after a
	// transport fault; breakerSkips counts owners skipped because their
	// circuit breaker was open (distinct from failovers — the skip happens
	// before any call is made); breakerForced counts calls pushed through an
	// open breaker because every owner was open; transportCalls/Fails count
	// individual attempts and their transport-level failures; quarantined
	// counts ring re-entries deferred because the node was flapping.
	retries        atomicCounter
	breakerSkips   atomicCounter
	breakerForced  atomicCounter
	transportCalls atomicCounter
	transportFails atomicCounter
	quarantined    atomicCounter
}

// NodeStats answers the stats RPC: one node's service counters, cache size
// and latency histograms in serializable form. It is how a remote
// (node-mode) peer's instrumentation reaches the coordinator's /v1/stats
// rollup and /metrics exposition.
type NodeStats struct {
	Snapshot service.Snapshot `json:"snapshot"`
	CacheLen int              `json:"cache_len"`
	// SubLen is the node's subgraph-memo entry count.
	SubLen    int                              `json:"sub_len,omitempty"`
	Latencies map[string]obs.HistogramSnapshot `json:"latencies,omitempty"`
}

// NodeSnapshot is one node's view in a cluster snapshot: its service
// counters plus cluster-level health.
type NodeSnapshot struct {
	service.Snapshot
	CacheLen int  `json:"cache_len"`
	SubLen   int  `json:"sub_len"`
	Dead     bool `json:"dead"`
}

// Snapshot is a point-in-time copy of the whole cluster's instrumentation:
// coordinator counters, membership, and per-node service counters.
type Snapshot struct {
	Requests  uint64 `json:"requests"`
	Failovers uint64 `json:"failovers"`
	// Overflows counts requests a replica served because every earlier
	// owner shed them (admission control), with no node unreachable — the
	// hot-shard relief valve, distinct from failure-driven failovers.
	Overflows  uint64 `json:"overflows"`
	Replicated uint64 `json:"replicated_entries"`
	Rebalanced uint64 `json:"rebalanced_entries"`
	Deaths     uint64 `json:"deaths"`
	Rejoins    uint64 `json:"rejoins"`
	Errors     uint64 `json:"errors"`
	// Canceled counts requests whose caller context was cancelled (client
	// disconnects included); they are not errors.
	Canceled uint64 `json:"canceled"`
	// Retries counts extra transport attempts made after a fault;
	// TransportCalls and TransportFails count individual attempts and the
	// transport-level failures among them.
	Retries        uint64 `json:"retries"`
	TransportCalls uint64 `json:"transport_calls"`
	TransportFails uint64 `json:"transport_fails"`
	// BreakerSkips counts owners bypassed without a call because their
	// circuit breaker was open — routing went straight to the next replica.
	// Distinct from Failovers (a call failed first) and Overflows (the node
	// shed the request itself). BreakerForced counts calls pushed through an
	// open breaker because every owner in the sweep was open; BreakerOpens
	// sums closed→open transitions across all nodes.
	BreakerSkips  uint64 `json:"breaker_skips"`
	BreakerForced uint64 `json:"breaker_forced"`
	BreakerOpens  uint64 `json:"breaker_opens"`
	// Breakers maps each node to its breaker state (closed/open/half_open).
	Breakers map[string]string `json:"breakers,omitempty"`
	// Quarantined counts ring re-entries deferred because the node was
	// flapping (repeated death/rejoin inside the flap window).
	Quarantined uint64 `json:"quarantined"`
	// Shed, Queued, QueueDepth and InFlight sum the per-node admission-
	// control counters: requests rejected with ErrOverloaded, requests that
	// entered a worker queue, the queue slots occupied and the node-side
	// requests in progress at snapshot time.
	Shed       uint64 `json:"shed"`
	Queued     uint64 `json:"queued"`
	QueueDepth int64  `json:"queue_depth"`
	InFlight   int64  `json:"in_flight"`

	// StatsEpoch is the highest catalog stats epoch any node reports; a
	// node lagging behind re-costs its stale entries lazily.
	StatsEpoch uint64 `json:"stats_epoch"`

	Replicas   int      `json:"replicas"`
	AliveNodes []string `json:"alive_nodes"`
	DeadNodes  []string `json:"dead_nodes,omitempty"`

	// HitRate aggregates hits+coalesced over served requests across all
	// nodes — the cluster-wide warm ratio. AvgHitMicros and AvgMissMicros
	// are the request-weighted means of the per-node service times.
	HitRate       float64 `json:"hit_rate"`
	AvgHitMicros  float64 `json:"avg_hit_us"`
	AvgMissMicros float64 `json:"avg_miss_us"`

	// Latency holds cluster-wide latency quantiles, merged bucket-wise from
	// every node's histograms (lossless — same error bound as one node),
	// keyed "hit:<backend>", "miss:<backend>", "shed" and "queue_wait".
	Latency map[string]service.Quantiles `json:"latency,omitempty"`

	// Backends sums the per-backend counters over every node, so the
	// front door reports which execution substrate (cpu-seq,
	// cpu-parallel, gpu, heuristic) produced the cluster's plans.
	Backends map[string]service.BackendCounts `json:"backends"`

	PerNode map[string]NodeSnapshot `json:"per_node"`
}

// String renders the snapshot as JSON.
func (s Snapshot) String() string {
	b, err := json.Marshal(s)
	if err != nil {
		return "{}"
	}
	return string(b)
}
