package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestEveryAlgorithmOptimizesAStarQuery(t *testing.T) {
	q := workload.Star(10, rand.New(rand.NewSource(1)))
	var optimal float64
	for _, alg := range Algorithms() {
		res, err := Optimize(context.Background(), q, Options{Algorithm: alg, Timeout: 30 * time.Second, K: 5})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Plan == nil {
			t.Fatalf("%s: nil plan", alg)
		}
		if alg.IsExact() {
			if optimal == 0 {
				optimal = res.Plan.Cost
			} else if math.Abs(res.Plan.Cost-optimal) > 1e-6*optimal {
				t.Errorf("%s: exact cost %.4f differs from %.4f", alg, res.Plan.Cost, optimal)
			}
		} else if res.Plan.Cost < optimal*(1-1e-9) {
			t.Errorf("%s: heuristic cost %.4f beats optimal %.4f", alg, res.Plan.Cost, optimal)
		}
		if err := res.Plan.Validate([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}); err != nil {
			t.Errorf("%s: invalid plan: %v", alg, err)
		}
	}
}

func TestGPUAlgorithmsReportDeviceStats(t *testing.T) {
	q := workload.Snowflake(12, rand.New(rand.NewSource(2)))
	for _, alg := range []Algorithm{AlgMPDPGPU, AlgDPSubGPU, AlgDPSizeGPU} {
		res, err := Optimize(context.Background(), q, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if res.GPU == nil || res.GPU.SimTimeMS <= 0 || res.GPU.KernelLaunches == 0 {
			t.Errorf("%s: missing GPU stats: %+v", alg, res.GPU)
		}
	}
	res, err := Optimize(context.Background(), q, Options{Algorithm: AlgMPDP})
	if err != nil {
		t.Fatal(err)
	}
	if res.GPU != nil {
		t.Error("CPU algorithm must not report GPU stats")
	}
}

func TestAutoPolicySwitchesAtFallbackLimit(t *testing.T) {
	small := workload.Star(8, rand.New(rand.NewSource(3)))
	res, err := Optimize(context.Background(), small, Options{Algorithm: AlgAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res.GPU == nil {
		t.Error("Auto below the fall-back limit must plan exactly (GPU MPDP)")
	}
	big := workload.Snowflake(40, rand.New(rand.NewSource(4)))
	res, err = Optimize(context.Background(), big, Options{Algorithm: AlgAuto, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.GPU != nil {
		t.Error("Auto above the fall-back limit must use the heuristic")
	}
	// A custom limit flips the decision.
	res, err = Optimize(context.Background(), small, Options{Algorithm: AlgAuto, FallbackLimit: 4, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.GPU != nil {
		t.Error("lowered fall-back limit ignored")
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	q := workload.Star(5, rand.New(rand.NewSource(5)))
	if _, err := Optimize(context.Background(), q, Options{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm must error")
	}
}

func TestExplainUsesRelationNames(t *testing.T) {
	q := workload.MusicBrainzQuery(6, rand.New(rand.NewSource(6)))
	res, err := Optimize(context.Background(), q, Options{Algorithm: AlgMPDP})
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(q, res.Plan)
	found := false
	for _, name := range q.Names() {
		if strings.Contains(out, name) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("Explain output has no relation names:\n%s", out)
	}
}

func TestTimeoutPropagates(t *testing.T) {
	q := workload.Clique(18, rand.New(rand.NewSource(7)))
	start := time.Now()
	_, err := Optimize(context.Background(), q, Options{Algorithm: AlgDPSub, Timeout: 50 * time.Millisecond})
	if err == nil {
		t.Skip("machine fast enough to finish; nothing to assert")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout ignored")
	}
}
