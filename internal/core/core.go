// Package core is the library's public entry point: a single Optimize call
// that dispatches to any of the join-order optimizers implemented in
// this repository — the sequential exact algorithms (DPSize, DPSub, DPCCP,
// MPDP), the CPU-parallel ones (PDP, DPE, MPDP-parallel), the GPU-model ones
// (DPSize-GPU, DPSub-GPU, MPDP-GPU) and the heuristics (GEQO, GOO, IKKBZ,
// LinDP/adaptive, IDP1, IDP2-MPDP, UnionDP-MPDP) — plus the paper's
// recommended automatic policy (exact MPDP up to the raised fall-back limit
// of 25 relations, UnionDP beyond it).
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/gpusim"
	"repro/internal/heuristic"
	"repro/internal/parallel"
	"repro/internal/plan"
)

// Algorithm names an optimizer selectable through Options.
type Algorithm string

// The optimizer registry.
const (
	// Exact, sequential.
	AlgDPSize Algorithm = "dpsize" // PostgreSQL's standard DP
	AlgDPSub  Algorithm = "dpsub"
	AlgDPCCP  Algorithm = "dpccp"
	AlgMPDP   Algorithm = "mpdp"
	// Exact, CPU-parallel.
	AlgPDP          Algorithm = "pdp"
	AlgDPE          Algorithm = "dpe"
	AlgMPDPParallel Algorithm = "mpdp-cpu"
	// Exact, GPU execution model.
	AlgDPSizeGPU Algorithm = "dpsize-gpu"
	AlgDPSubGPU  Algorithm = "dpsub-gpu"
	AlgMPDPGPU   Algorithm = "mpdp-gpu"
	// Heuristics.
	AlgGEQO    Algorithm = "geqo"
	AlgGOO     Algorithm = "goo"
	AlgMinSel  Algorithm = "minsel"
	AlgIKKBZ   Algorithm = "ikkbz"
	AlgLinDP   Algorithm = "lindp" // adaptive LinDP of Neumann & Radke
	AlgIDP1    Algorithm = "idp1"
	AlgIDP2    Algorithm = "idp2-mpdp"
	AlgUnionDP Algorithm = "uniondp-mpdp"
	AlgAuto    Algorithm = "auto" // MPDP up to 25 rels, UnionDP beyond
)

// Algorithms lists every registered optimizer name.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgDPSize, AlgDPSub, AlgDPCCP, AlgMPDP,
		AlgPDP, AlgDPE, AlgMPDPParallel,
		AlgDPSizeGPU, AlgDPSubGPU, AlgMPDPGPU,
		AlgGEQO, AlgGOO, AlgMinSel, AlgIKKBZ, AlgLinDP, AlgIDP1, AlgIDP2, AlgUnionDP,
		AlgAuto,
	}
}

// IsExact reports whether the algorithm guarantees the optimal plan.
func (a Algorithm) IsExact() bool {
	switch a {
	case AlgDPSize, AlgDPSub, AlgDPCCP, AlgMPDP, AlgPDP, AlgDPE,
		AlgMPDPParallel, AlgDPSizeGPU, AlgDPSubGPU, AlgMPDPGPU:
		return true
	}
	return false
}

// Options configures one optimization.
type Options struct {
	Algorithm Algorithm
	// Model is the cost model (nil: cost.DefaultModel()).
	Model *cost.Model
	// Timeout bounds optimization time (0: unlimited).
	Timeout time.Duration
	// Threads for CPU-parallel algorithms (0: all cores).
	Threads int
	// K is the sub-problem bound for IDP/UnionDP (0: 15, the paper default).
	K int
	// Seed for randomized heuristics.
	Seed int64
	// GPU configures the device model for the *-gpu algorithms.
	GPU *gpusim.Config
	// Arena, when non-nil, supplies the plan nodes of the result for the
	// exact algorithms (heuristics allocate normally). The returned
	// Result.Plan aliases the arena: callers must copy the tree before
	// calling Arena.Reset for the next query. Long-lived workers use this
	// to make steady-state plan materialization allocation-free.
	Arena *plan.Arena
	// FallbackLimit is the relation count up to which Auto plans exactly
	// (0: 25, the paper's raised heuristic-fall-back limit).
	FallbackLimit int
	// Warm and Harvest are the subplan-memo hooks (see dp.Input); only the
	// level drivers (MPDP sequential and CPU-parallel) honour them.
	Warm    func(tab *plan.Table, buckets [][]bitset.Mask) int
	Harvest func(tab *plan.Table)
}

// Result is the outcome of one optimization.
type Result struct {
	Plan    *plan.Node
	Stats   dp.Stats
	Elapsed time.Duration
	// GPU carries the device work model for the *-gpu algorithms;
	// GPU.SimTimeMS is the modeled device time (see internal/gpusim).
	GPU *gpusim.Stats
}

// Optimize plans the query with the selected algorithm. The context is
// checked cooperatively throughout the enumeration: cancelling it aborts an
// in-flight run promptly with the context's error, independently of (and in
// addition to) Options.Timeout. A nil ctx means context.Background().
func Optimize(ctx context.Context, q *cost.Query, opts Options) (*Result, error) {
	if opts.Algorithm == "" {
		opts.Algorithm = AlgAuto
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m := opts.Model
	if m == nil {
		m = cost.DefaultModel()
	}
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	in := dp.Input{
		Q: q, M: m, Ctx: ctx, Arena: opts.Arena, Deadline: deadline,
		Threads: opts.Threads, Warm: opts.Warm, Harvest: opts.Harvest,
	}
	hOpt := heuristic.Options{
		Model: m, K: opts.K, Ctx: ctx, Deadline: deadline, Threads: opts.Threads, Seed: opts.Seed,
	}
	gcfg := gpusim.DefaultConfig()
	if opts.GPU != nil {
		gcfg = *opts.GPU
	}

	start := time.Now()
	res := &Result{}
	var err error
	switch opts.Algorithm {
	case AlgDPSize:
		res.Plan, res.Stats, err = dp.DPSize(in)
	case AlgDPSub:
		res.Plan, res.Stats, err = dp.DPSub(in)
	case AlgDPCCP:
		res.Plan, res.Stats, err = dp.DPCCP(in)
	case AlgMPDP:
		res.Plan, res.Stats, err = dp.MPDP(in)
	case AlgPDP:
		res.Plan, res.Stats, err = parallel.PDP(in)
	case AlgDPE:
		res.Plan, res.Stats, err = parallel.DPE(in)
	case AlgMPDPParallel:
		res.Plan, res.Stats, err = parallel.MPDP(in)
	case AlgDPSizeGPU:
		res.Plan, res.Stats, res.GPU, err = gpuWrap(gpusim.DPSizeGPU(in, gcfg))
	case AlgDPSubGPU:
		res.Plan, res.Stats, res.GPU, err = gpuWrap(gpusim.DPSubGPU(in, gcfg))
	case AlgMPDPGPU:
		res.Plan, res.Stats, res.GPU, err = gpuWrap(gpusim.MPDPGPU(in, gcfg))
	case AlgGEQO:
		res.Plan, err = heuristic.GEQO(q, hOpt)
	case AlgGOO:
		res.Plan, err = heuristic.GOO(q, hOpt)
	case AlgMinSel:
		res.Plan, err = heuristic.MinSel(q, hOpt)
	case AlgIKKBZ:
		res.Plan, err = heuristic.IKKBZ(q, hOpt)
	case AlgLinDP:
		res.Plan, err = heuristic.Adaptive(q, hOpt)
	case AlgIDP1:
		res.Plan, err = heuristic.IDP1(q, hOpt)
	case AlgIDP2:
		res.Plan, err = heuristic.IDP2(q, hOpt)
	case AlgUnionDP:
		res.Plan, err = heuristic.UnionDP(q, hOpt)
	case AlgAuto:
		limit := opts.FallbackLimit
		if limit == 0 {
			limit = 25
		}
		if q.N() <= limit {
			res.Plan, res.Stats, res.GPU, err = gpuWrap(gpusim.MPDPGPU(in, gcfg))
		} else {
			res.Plan, err = heuristic.UnionDP(q, hOpt)
		}
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", opts.Algorithm)
	}
	res.Elapsed = time.Since(start)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func gpuWrap(p *plan.Node, st dp.Stats, gs gpusim.Stats, err error) (*plan.Node, dp.Stats, *gpusim.Stats, error) {
	return p, st, &gs, err
}

// Explain renders a plan as an indented operator tree with relation names.
func Explain(q *cost.Query, p *plan.Node) string {
	return p.Explain(q.Names())
}
