// Package chaos is the deterministic fault-injection suite for the cluster:
// it replays a seeded schedule of kills, revives, asymmetric partitions,
// slow links and flaps against a cluster under open-loop load, then checks
// the invariants that make the cluster's fault story honest rather than
// anecdotal:
//
//   - no request is lost or mis-errored — every offered request ends in
//     success, a shed (503-class), an unavailable (503-class), or the
//     caller's own deadline (499-class); any other error is a violation;
//   - every plan served during the storm is cost-identical to a
//     single-node reference optimizer — failover and replication must
//     never change an answer;
//   - after the storm heals, the goroutine count settles back to the
//     pre-cluster baseline — faults must not leak workers, waiters or
//     timers;
//   - the guarded-transport counters reconcile with the injected faults:
//     a storm with real faults must show failovers, retries, overflows or
//     breaker skips, and a control run with no faults must show none.
//
// Schedules are pure data (Schedule, built by MustEvents or the named
// constructors) and are deterministic given a seed: the same seed yields
// the same schedule, the same fault decisions inside FaultTransport, and
// the same offered load mix.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/leaktest"
	"repro/internal/loadgen"
	"repro/internal/service"
)

// EventKind names one fault-schedule action.
type EventKind string

const (
	// Kill crashes a node (its transport endpoint vanishes).
	Kill EventKind = "kill"
	// Revive restores a killed node; it rejoins the ring at the next
	// health check, quarantine permitting.
	Revive EventKind = "revive"
	// Partition cuts a link to the node with probability P in direction
	// Dir (request, reply, or both) — P=1 is a hard cut, P<1 a lossy link.
	Partition EventKind = "partition"
	// HealLink clears every fault on the node's link (partitions, loss,
	// latency, slowness).
	HealLink EventKind = "heal"
	// Slow adds D of service delay to every call to the node — the
	// degraded-but-alive failure mode that kills tail latency without
	// tripping the failure detector.
	Slow EventKind = "slow"
)

// Event is one scheduled fault action, At after the load phase starts.
type Event struct {
	At   time.Duration
	Kind EventKind
	// Node indexes the cluster's nodes ("node-<Node>").
	Node int
	// Dir and P parameterize Partition; D parameterizes Slow.
	Dir cluster.Direction
	P   float64
	D   time.Duration
}

// Schedule is a named, seeded fault schedule. The seed drives the
// FaultTransport's probabilistic decisions and the load mix, so a schedule
// replays identically.
type Schedule struct {
	Name   string
	Seed   int64
	Events []Event
}

// faulty reports whether the event degrades its target (used to track the
// healthy set for the warm-healthy latency histogram).
func (e Event) faulty() bool { return e.Kind != Revive && e.Kind != HealLink }

// KillSchedule is the basic crash-failover storm: the first replica owner
// dies a tenth of the way in and comes back at 60%, leaving the tail of
// the phase to observe recovery.
func KillSchedule(seed int64, phase time.Duration) Schedule {
	return Schedule{
		Name: "kill",
		Seed: seed,
		Events: []Event{
			{At: phase / 10, Kind: Kill, Node: 1},
			{At: phase * 6 / 10, Kind: Revive, Node: 1},
		},
	}
}

// PartitionSchedule is the asymmetric-partition storm: node 1 stops
// receiving requests entirely (requests cut, replies fine) while node 2
// answers but loses 70% of its replies — the direction split exercises
// both halves of the fault model, and the lossy link exercises retries.
func PartitionSchedule(seed int64, phase time.Duration) Schedule {
	return Schedule{
		Name: "partition",
		Seed: seed,
		Events: []Event{
			{At: phase / 10, Kind: Partition, Node: 1, Dir: cluster.DirRequest, P: 1},
			{At: phase / 10, Kind: Partition, Node: 2, Dir: cluster.DirReply, P: 0.7},
			{At: phase * 6 / 10, Kind: HealLink, Node: 1},
			{At: phase * 6 / 10, Kind: HealLink, Node: 2},
		},
	}
}

// SlowFlapSchedule combines the two detector-hostile failure modes: node 1
// degrades (every call +D delay, alive the whole time) while node 2 flaps
// — dies and returns twice in quick succession, which must land it in
// quarantine rather than churning the ring.
func SlowFlapSchedule(seed int64, phase time.Duration) Schedule {
	return Schedule{
		Name: "slow+flap",
		Seed: seed,
		Events: []Event{
			{At: phase / 20, Kind: Slow, Node: 1, D: 5 * time.Millisecond},
			{At: phase * 2 / 10, Kind: Kill, Node: 2},
			{At: phase * 25 / 100, Kind: Revive, Node: 2},
			{At: phase * 3 / 10, Kind: Kill, Node: 2},
			{At: phase * 35 / 100, Kind: Revive, Node: 2},
			{At: phase * 6 / 10, Kind: HealLink, Node: 1},
		},
	}
}

// ControlSchedule injects nothing: the null hypothesis every chaos run is
// compared against. Its reconciliation invariant is inverted — any
// failover or breaker skip on a fault-free run is a bug.
func ControlSchedule(seed int64) Schedule {
	return Schedule{Name: "control", Seed: seed}
}

// Config sizes one chaos run.
type Config struct {
	// Nodes and Replicas shape the cluster (defaults 3 and 2).
	Nodes    int
	Replicas int
	// Rate is the offered load in req/s (default 200); Phase is the fault
	// window (default 1s) — events fire inside it, load runs through it.
	// After the phase the run heals everything, waits for the ring to
	// recover, and offers Phase/2 more load to measure the healed state.
	Rate  float64
	Phase time.Duration
	// PoolSize and PoolSpan shape the warm working set (defaults 6
	// queries of 6..7 relations).
	PoolSize int
	PoolSpan []int
	// HealthEvery is the health-check cadence during the run (default
	// 10ms) — the chaos driver plays the role cmd/mpdp-cluster's health
	// loop plays in production.
	HealthEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Rate == 0 {
		c.Rate = 200
	}
	if c.Phase == 0 {
		c.Phase = time.Second
	}
	if c.PoolSize == 0 {
		c.PoolSize = 6
	}
	if len(c.PoolSpan) == 0 {
		c.PoolSpan = []int{6, 7}
	}
	if c.HealthEvery == 0 {
		c.HealthEvery = 10 * time.Millisecond
	}
	return c
}

// Report is one chaos run's outcome. Violations() renders the failed
// invariants; an empty slice means the run held every guarantee.
type Report struct {
	Schedule string `json:"schedule"`
	Seed     int64  `json:"seed"`
	// Faults counts schedule events that degrade a node; LinkFaults the
	// subset routed through the fault transport (partitions, slow links),
	// whose firing shows up in Injected. Kills bypass the transport — the
	// endpoint just vanishes — so a kill-only schedule has Injected 0.
	Faults     int             `json:"faults"`
	LinkFaults int             `json:"link_faults"`
	Injected   uint64          `json:"faults_injected"`
	Storm      *loadgen.Result `json:"-"`
	Healed     *loadgen.Result `json:"-"`

	// The request ledger: every offered request must be accounted for in
	// an allowed class. Unavailable counts ErrNoNodes (503-class);
	// MisErrored counts everything outside the allowed classes and must
	// be zero. Lost is offered minus all accounted classes and must be
	// zero.
	Offered     int `json:"offered"`
	OK          int `json:"ok"`
	Shed        int `json:"shed"`
	Timeouts    int `json:"timeouts"`
	Unavailable int `json:"unavailable"`
	MisErrored  int `json:"mis_errored"`
	Lost        int `json:"lost"`

	// CostMismatches counts served plans whose cost differed from the
	// single-node reference — must be zero: faults may slow answers,
	// never change them.
	CostMismatches int `json:"cost_mismatches"`

	// Goroutine hygiene: the post-heal count must settle back to the
	// pre-cluster baseline.
	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`

	// Latency evidence for the breaker story: p99 of all served requests
	// during the storm and after heal, and p99 of warm hits served by
	// healthy nodes during the storm (the population the breaker is
	// supposed to protect).
	StormP99       time.Duration `json:"storm_p99_ns"`
	HealedP99      time.Duration `json:"healed_p99_ns"`
	WarmHealthyP99 time.Duration `json:"warm_healthy_p99_ns"`

	// Cluster is the final counter snapshot, for reconciliation.
	Cluster cluster.Snapshot `json:"cluster"`
}

// Violations lists every invariant the run broke, empty when none.
func (r *Report) Violations() []string {
	var v []string
	badge := func(format string, args ...any) {
		v = append(v, fmt.Sprintf(format, args...))
	}
	if r.Storm.Dropped > 0 || r.Healed.Dropped > 0 {
		badge("harness saturated: dropped %d storm / %d healed arrivals", r.Storm.Dropped, r.Healed.Dropped)
	}
	if r.OK == 0 {
		badge("no request succeeded at all")
	}
	if r.MisErrored > 0 {
		badge("%d request(s) mis-errored outside the allowed classes", r.MisErrored)
	}
	if r.Lost != 0 {
		badge("%d request(s) unaccounted for", r.Lost)
	}
	if r.CostMismatches > 0 {
		badge("%d plan(s) diverged from the single-node reference cost", r.CostMismatches)
	}
	if r.GoroutinesAfter > r.GoroutinesBefore {
		badge("goroutines leaked: %d before, %d after heal", r.GoroutinesBefore, r.GoroutinesAfter)
	}
	guarded := r.Cluster.Failovers + r.Cluster.Overflows + r.Cluster.BreakerSkips + r.Cluster.Retries
	if r.LinkFaults > 0 && r.Injected == 0 {
		badge("schedule declared link faults but the fault transport injected none")
	}
	// Reconciliation: every fault must leave a counter trace somewhere —
	// the guarded path (failovers, retries, skips), the failure detector
	// (deaths, quarantines) or the transport itself (injected). A storm
	// that shows up nowhere means the instrumentation is lying.
	evidence := guarded + r.Cluster.Deaths + r.Cluster.Quarantined + r.Injected
	if r.Faults > 0 && evidence == 0 {
		badge("faults fired but left no counter trace (guarded path, detector and transport all zero)")
	}
	if r.Faults == 0 {
		if r.Cluster.Failovers != 0 || r.Cluster.BreakerSkips != 0 {
			badge("control run recorded %d failover(s) and %d breaker skip(s)", r.Cluster.Failovers, r.Cluster.BreakerSkips)
		}
		if r.Unavailable != 0 || r.Timeouts != 0 {
			badge("control run had %d unavailable and %d timeout(s)", r.Unavailable, r.Timeouts)
		}
	}
	return v
}

// Run replays sched against a fresh cluster under open-loop load and
// returns the full report. It is synchronous and self-contained: it builds
// the cluster, plays the schedule, heals, measures recovery and tears
// everything down. Cancelling ctx cuts the load phases short; a nil ctx
// is normalized to context.Background().
func Run(ctx context.Context, cfg Config, sched Schedule) *Report {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	rep := &Report{Schedule: sched.Name, Seed: sched.Seed}
	for _, e := range sched.Events {
		if e.faulty() {
			rep.Faults++
		}
		if e.Kind == Partition || e.Kind == Slow {
			rep.LinkFaults++
		}
	}

	// The reference optimizer: one plain service, no cluster, no faults.
	// Every fingerprint the load can offer (pool entries and their
	// isomorphic twins — ColdFrac is 0) must cost exactly what it says.
	pool := loadgen.NewPool(cfg.PoolSize, cfg.PoolSpan, sched.Seed)
	refCost := make(map[string]float64, len(pool))
	ref := service.New(service.Config{Workers: 2})
	for _, q := range pool {
		res, err := ref.Optimize(ctx, q)
		if err != nil {
			ref.Close()
			panic("chaos: reference optimize failed: " + err.Error())
		}
		refCost[res.Key] = res.Plan.Cost
	}
	ref.Close()

	rep.GoroutinesBefore = leaktest.Count()

	ft := cluster.NewFaultTransport(cluster.NewLocalTransport(), sched.Seed)
	c := cluster.New(cluster.Config{
		Nodes:     cfg.Nodes,
		Replicas:  cfg.Replicas,
		Transport: ft,
		Seed:      sched.Seed,
		Retry: cluster.RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
		},
		Breaker: cluster.BreakerConfig{
			Threshold: 4,
			Window:    200 * time.Millisecond,
			OpenFor:   50 * time.Millisecond,
		},
		FlapThreshold:  2,
		FlapWindow:     10 * time.Second,
		QuarantineBase: 100 * time.Millisecond,
		QuarantineMax:  time.Second,
		Service:        service.Config{Workers: 2},
	})

	nodes := c.AliveNodes()
	nodeID := func(i int) string { return nodes[i%len(nodes)] }

	// faulted is the set of currently-degraded nodes, maintained by the
	// event player and read by the measuring target: warm hits on nodes
	// NOT in this set are the breaker's protected population.
	var faultedMu sync.Mutex
	faulted := map[string]bool{}
	setFaulted := func(id string, bad bool) {
		faultedMu.Lock()
		if bad {
			faulted[id] = true
		} else {
			delete(faulted, id)
		}
		faultedMu.Unlock()
	}
	isFaulted := func(id string) bool {
		faultedMu.Lock()
		defer faultedMu.Unlock()
		return faulted[id]
	}

	var unavailable, misErrored, costMismatch atomic.Int64
	warmHealthy := &loadgen.Hist{}
	target := func(ctx context.Context, q *cost.Query) error {
		start := time.Now()
		res, err := c.Optimize(ctx, q)
		switch {
		case err == nil:
			if want, ok := refCost[res.Key]; ok && res.Plan.Cost != want {
				costMismatch.Add(1)
			}
			if res.CacheHit && !isFaulted(res.Node) {
				warmHealthy.Record(time.Since(start))
			}
			return nil
		case errors.Is(err, service.ErrOverloaded):
			return err // loadgen counts the shed
		case errors.Is(err, cluster.ErrNoNodes):
			// 503-class on the wire, same as a shed: the cluster said "not
			// now", honestly and promptly. Tracked separately in the report.
			unavailable.Add(1)
			return service.ErrOverloaded
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			return err
		default:
			misErrored.Add(1)
			return err
		}
	}

	// Warm the working set before the storm: replicate every pool entry
	// so failover has warm replicas to land on.
	for _, q := range pool {
		if _, err := c.Optimize(ctx, q); err != nil {
			misErrored.Add(1)
		}
	}

	// The event player and the health loop: apply each event at its time,
	// run CheckHealth on a steady cadence (detection, rejoin, quarantine).
	events := append([]Event(nil), sched.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	stop := make(chan struct{})
	var player sync.WaitGroup
	player.Add(1)
	phaseStart := time.Now()
	go func() {
		defer player.Done()
		next := 0
		tick := time.NewTicker(cfg.HealthEvery)
		defer tick.Stop()
		for {
			for next < len(events) && time.Since(phaseStart) >= events[next].At {
				e := events[next]
				id := nodeID(e.Node)
				switch e.Kind {
				case Kill:
					c.KillNode(id)
					setFaulted(id, true)
				case Revive:
					c.ReviveNode(id)
					setFaulted(id, false)
				case Partition:
					ft.Partition(id, e.Dir, e.P)
					setFaulted(id, true)
				case HealLink:
					ft.Clear(id)
					setFaulted(id, false)
				case Slow:
					ft.Slow(id, e.D)
					setFaulted(id, true)
				}
				next++
			}
			select {
			case <-stop:
				return
			case <-tick.C:
				c.CheckHealth()
			}
		}
	}()

	storm := loadgen.Run(ctx, target, loadgen.Config{
		Rate:     cfg.Rate,
		Duration: cfg.Phase,
		Pool:     pool,
		TwinFrac: 0.3,
		Timeout:  2 * time.Second,
		Seed:     sched.Seed,
	})

	// Heal the world: clear every link fault, revive everyone, and keep
	// health-checking until the full membership is back (quarantines are
	// bounded, so this converges).
	ft.ClearAll()
	for _, id := range nodes {
		c.ReviveNode(id)
		setFaulted(id, false)
	}
	healDeadline := time.Now().Add(5 * time.Second)
	for len(c.AliveNodes()) < len(nodes) && time.Now().Before(healDeadline) {
		if !sleepCtx(ctx, cfg.HealthEvery) {
			break
		}
		c.CheckHealth()
	}

	healed := loadgen.Run(ctx, target, loadgen.Config{
		Rate:     cfg.Rate,
		Duration: cfg.Phase / 2,
		Pool:     pool,
		TwinFrac: 0.3,
		Timeout:  2 * time.Second,
		Seed:     sched.Seed + 1,
	})

	close(stop)
	player.Wait()

	rep.Injected = ft.Injected()
	rep.Cluster = c.Snapshot()
	c.Close()

	// Post-heal goroutine settle: orderly shutdown is asynchronous.
	settleDeadline := time.Now().Add(5 * time.Second)
	rep.GoroutinesAfter = leaktest.Count()
	for rep.GoroutinesAfter > rep.GoroutinesBefore && time.Now().Before(settleDeadline) {
		if !sleepCtx(ctx, 10*time.Millisecond) {
			break
		}
		rep.GoroutinesAfter = leaktest.Count()
	}

	rep.Storm, rep.Healed = storm, healed
	rep.Offered = storm.Offered + healed.Offered
	rep.OK = storm.OK + healed.OK
	rep.Shed = storm.Shed + healed.Shed
	rep.Timeouts = storm.Timeout + healed.Timeout
	rep.Unavailable = int(unavailable.Load())
	rep.MisErrored = int(misErrored.Load())
	rep.Lost = rep.Offered - rep.OK - rep.Shed - rep.Timeouts -
		(storm.Dropped + healed.Dropped) - (storm.Errors + healed.Errors)
	rep.CostMismatches = int(costMismatch.Load())
	rep.StormP99 = storm.Hist.Quantile(0.99)
	rep.HealedP99 = healed.Hist.Quantile(0.99)
	rep.WarmHealthyP99 = warmHealthy.Quantile(0.99)
	return rep
}

// sleepCtx waits for d or until ctx is done, reporting whether the full
// duration elapsed. The poll loops above use it so a cancelled harness
// stops promptly instead of sleeping through its own shutdown.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
