package chaos

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/leaktest"
)

// TestMain installs the goroutine-leak guard: chaos runs spin up whole
// clusters and the suite must leave nothing behind.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}

// testCfg keeps chaos runs CI-sized: ~1.2s of load per run.
var testCfg = Config{Rate: 150, Phase: 800 * time.Millisecond}

// runAndCheck replays sched and fails the test on any invariant
// violation, returning the report for schedule-specific assertions.
//
// Determinism note: the schedule, the fault transport's probabilistic
// decisions and the offered load mix are all derived from sched.Seed, so a
// failing run replays with the same faults and the same queries. Wall-
// clock interleaving still varies; the invariants hold for every
// interleaving, which is the point.
func runAndCheck(t *testing.T, sched Schedule) *Report {
	t.Helper()
	rep := Run(context.Background(), testCfg, sched)
	for _, v := range rep.Violations() {
		t.Error(v)
	}
	t.Logf("%s/seed=%d: offered=%d ok=%d shed=%d timeouts=%d unavailable=%d injected=%d "+
		"failovers=%d overflows=%d breaker_skips=%d retries=%d storm_p99=%v healed_p99=%v",
		rep.Schedule, rep.Seed, rep.Offered, rep.OK, rep.Shed, rep.Timeouts, rep.Unavailable,
		rep.Injected, rep.Cluster.Failovers, rep.Cluster.Overflows, rep.Cluster.BreakerSkips,
		rep.Cluster.Retries, rep.StormP99, rep.HealedP99)
	return rep
}

func TestChaosKill(t *testing.T) {
	rep := runAndCheck(t, KillSchedule(1, testCfg.Phase))
	if rep.Cluster.Deaths == 0 {
		t.Error("kill schedule detected no death")
	}
	if rep.Cluster.Failovers == 0 {
		t.Error("kill schedule produced no failovers")
	}
}

func TestChaosAsymmetricPartition(t *testing.T) {
	rep := runAndCheck(t, PartitionSchedule(2, testCfg.Phase))
	if rep.Injected == 0 {
		t.Error("partition schedule injected no transport faults")
	}
	if rep.Cluster.Retries == 0 {
		t.Error("lossy reply link never exercised the retry path")
	}
}

func TestChaosSlowFlap(t *testing.T) {
	rep := runAndCheck(t, SlowFlapSchedule(3, testCfg.Phase))
	if rep.Cluster.Deaths < 2 {
		t.Errorf("flap produced %d deaths, want >= 2", rep.Cluster.Deaths)
	}
	if rep.Cluster.Quarantined == 0 {
		t.Error("flapping node was never quarantined")
	}
}

// TestChaosControl is the null hypothesis: a fault-free run must show a
// perfectly quiet guarded path — any failover, breaker skip, timeout or
// unavailable on it means the fault machinery leaks into healthy
// operation.
func TestChaosControl(t *testing.T) {
	runAndCheck(t, ControlSchedule(4))
}

// TestSchedulesDeterministic pins that a schedule is pure data derived
// from (seed, phase): building it twice yields identical events.
func TestSchedulesDeterministic(t *testing.T) {
	phase := testCfg.Phase
	build := map[string]func() Schedule{
		"kill":      func() Schedule { return KillSchedule(7, phase) },
		"partition": func() Schedule { return PartitionSchedule(7, phase) },
		"slow+flap": func() Schedule { return SlowFlapSchedule(7, phase) },
		"control":   func() Schedule { return ControlSchedule(7) },
	}
	for name, f := range build {
		if !reflect.DeepEqual(f(), f()) {
			t.Errorf("%s schedule is not deterministic", name)
		}
	}
}
