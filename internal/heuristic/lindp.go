package heuristic

import (
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/parallel"
	"repro/internal/plan"
)

// LinDP is the linearized DP of Neumann & Radke [26]: it takes the best
// IKKBZ left-deep order and runs an O(n³) interval dynamic program over it,
// recovering bushy plans within the linearization. Cross products remain
// excluded: a split is only considered when the two intervals are joined by
// at least one edge.
func LinDP(q *cost.Query, opt Options) (*plan.Node, error) {
	order, err := IKKBZOrder(q, opt)
	if err != nil {
		return nil, err
	}
	return linDPOverOrder(q, opt, order, nil)
}

// linDPOverOrder runs the interval DP over an explicit relation order.
func linDPOverOrder(q *cost.Query, opt Options, order []int, leaves []*plan.Node) (*plan.Node, error) {
	m := opt.model()
	nn := len(order)
	if nn == 0 {
		return nil, errNoPlan
	}
	leaf := func(i int) *plan.Node {
		if leaves != nil && leaves[i] != nil {
			return leaves[i]
		}
		return m.Scan(q, i)
	}

	// Interval footprints and cardinalities: rows[i][j] is the join
	// cardinality of relations order[i..j], computed incrementally.
	sets := make([][]bitset.Set, nn)
	rows := make([][]float64, nn)
	for i := 0; i < nn; i++ {
		sets[i] = make([]bitset.Set, nn)
		rows[i] = make([]float64, nn)
		s := bitset.SetOf(q.N(), order[i])
		sets[i][i] = s.Clone()
		rows[i][i] = leaf(order[i]).Rows
		for j := i + 1; j < nn; j++ {
			v := order[j]
			single := bitset.SetOf(q.N(), v)
			rows[i][j] = rows[i][j-1] * leaf(v).Rows * q.SelBetweenSets(s, single)
			s.Add(v)
			sets[i][j] = s.Clone()
		}
	}

	hasEdgeBetween := func(a, b bitset.Set) bool {
		connected := false
		a.ForEach(func(v int) {
			if connected {
				return
			}
			for _, w := range q.G.Neighbors(v) {
				if b.Has(w) {
					connected = true
					return
				}
			}
		})
		return connected
	}

	table := make([][]*plan.Node, nn)
	for i := range table {
		table[i] = make([]*plan.Node, nn)
		table[i][i] = leaf(order[i])
	}
	for length := 2; length <= nn; length++ {
		if err := opt.expiredErr(); err != nil {
			return nil, err
		}
		for i := 0; i+length-1 < nn; i++ {
			j := i + length - 1
			var best *plan.Node
			for k := i; k < j; k++ {
				l, r := table[i][k], table[k+1][j]
				if l == nil || r == nil {
					continue
				}
				if !hasEdgeBetween(sets[i][k], sets[k+1][j]) {
					continue
				}
				cand := m.JoinWithRows(q, l, r, rows[i][j])
				if best == nil || cand.Cost < best.Cost {
					best = cand
				}
				cand = m.JoinWithRows(q, r, l, rows[i][j])
				if cand.Cost < best.Cost {
					best = cand
				}
			}
			table[i][j] = best
		}
	}
	if table[0][nn-1] == nil {
		return nil, errNoPlan
	}
	return table[0][nn-1], nil
}

// innerLinDP is the InnerDP that the adaptive baseline uses on contracted
// sub-problems: IKKBZ linearization + interval DP over the local query.
func innerLinDP(c *contractedProblem, opt Options) (*plan.Node, dp.Stats, error) {
	localOpt := opt
	localOpt.Inner = nil
	order, err := IKKBZOrder(c.local, localOpt)
	if err != nil {
		return nil, dp.Stats{}, err
	}
	p, err := linDPOverOrder(c.local, localOpt, order, c.leafWrappers())
	if err != nil {
		return nil, dp.Stats{}, err
	}
	return c.splice(p), dp.Stats{}, nil
}

// Adaptive is the full adaptive optimizer of Neumann & Radke [26] — the
// "LinDP" baseline of the paper's Tables 1 and 2: exact DP below 14
// relations, linearized DP between 14 and 100, and IDP2 with the linearized
// DP as the inner algorithm above 100.
func Adaptive(q *cost.Query, opt Options) (*plan.Node, error) {
	n := q.N()
	switch {
	case n < 14:
		p, _, err := parallel.MPDP(dp.Input{
			Q: q, M: opt.model(), Ctx: opt.Ctx, Deadline: opt.Deadline, Threads: opt.Threads,
		})
		return p, err
	case n <= 100:
		return LinDP(q, opt)
	default:
		idpOpt := opt
		idpOpt.Inner = innerLinDP
		if idpOpt.K == 0 {
			idpOpt.K = 100
		}
		return IDP2(q, idpOpt)
	}
}
