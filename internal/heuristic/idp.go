package heuristic

import (
	"math"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/plan"
)

// IDP1 is the first iterative-DP variant of Kossmann & Stocker [17]: it
// repeatedly runs the exact DP up to plans of k units, materializes the
// cheapest k-unit plan as a single composite relation, and iterates until
// one plan covers the query. O(n^k) — only viable for small k (§4.1).
func IDP1(q *cost.Query, opt Options) (*plan.Node, error) {
	m := opt.model()
	k := opt.k()
	groups, sets := baseScans(q, m)

	for len(groups) > 1 {
		if err := opt.expiredErr(); err != nil {
			return nil, err
		}
		c := newContractedProblem(q, groups, sets)
		if len(groups) <= k {
			p, _, err := opt.inner()(c, opt)
			if err != nil {
				return nil, err
			}
			return Recost(q, m, p), nil
		}
		// Partial DP up to k units over the contracted query.
		in := dp.Input{Q: c.local, M: m, Leaves: c.leafWrappers(), Ctx: opt.Ctx, Deadline: opt.Deadline}
		part, buckets, _, err := dp.RunPartial(in, k)
		if err != nil {
			return nil, err
		}
		// Pick the cheapest plan among the largest reachable size. Costs
		// are scanned by value; only the winning set is materialized.
		pick := bitset.Mask(0)
		bestCost := math.Inf(1)
		for size := k; size >= 2 && pick == 0; size-- {
			for _, s := range buckets[size] {
				if cost, ok := part.Cost(s); ok && cost < bestCost {
					bestCost = cost
					pick = s
				}
			}
		}
		if pick == 0 {
			return nil, ErrDisconnected
		}
		chosen := c.splice(part.Build(pick))
		// Merge the chosen units into one composite.
		mergedSet := bitset.NewSet(q.N())
		var newGroups []*plan.Node
		var newSets []bitset.Set
		pick.ForEach(func(gi int) { mergedSet.UnionWith(sets[gi]) })
		for gi := range groups {
			if pick.Has(gi) {
				continue
			}
			newGroups = append(newGroups, groups[gi])
			newSets = append(newSets, sets[gi])
		}
		newGroups = append(newGroups, chosen)
		newSets = append(newSets, mergedSet)
		groups, sets = newGroups, newSets
	}
	return Recost(q, m, groups[0]), nil
}

// wnode is IDP2's working join tree: leaves reference units (base scans or
// materialized temporaries); inner nodes mirror the current plan shape.
type wnode struct {
	left, right *wnode
	unit        int // valid when leaf (left == right == nil)
	cost, rows  float64
	leaves      int
}

func (w *wnode) isLeaf() bool { return w.left == nil && w.right == nil }

// IDP2 is the second iterative-DP variant [17], with the paper's twist of
// §4.1.1: the inner exact algorithm is MPDP, which allows a much larger k
// than CPU-bound IDP2 for the same time budget. It first builds a tentative
// plan with GOO, then repeatedly re-optimizes the most expensive subtree of
// at most k units with the exact algorithm, replacing it by a temporary
// table, until the whole query has been re-optimized.
func IDP2(q *cost.Query, opt Options) (*plan.Node, error) {
	m := opt.model()
	k := opt.k()
	if k < 2 {
		k = 2
	}

	// Step 1: tentative plan (GOO, as in the paper's evaluation).
	initial, err := GOO(q, opt)
	if err != nil {
		return nil, err
	}

	// Units: initially the base relations.
	units, sets := baseScans(q, m)

	// Convert the GOO plan into a working tree over unit ids.
	var convert func(p *plan.Node) *wnode
	convert = func(p *plan.Node) *wnode {
		if p.IsLeaf() {
			return &wnode{unit: p.RelID, cost: p.Cost, rows: p.Rows, leaves: 1}
		}
		l, r := convert(p.Left), convert(p.Right)
		return &wnode{left: l, right: r, cost: p.Cost, rows: p.Rows, leaves: l.leaves + r.leaves}
	}
	root := convert(initial)

	for !root.isLeaf() {
		if opt.expired() {
			// Acceptable-any-time property of IDP2 (§4.1): fall back to the
			// current tree by materializing it as-is.
			return Recost(q, m, expandTree(root, units)), nil
		}
		// Select the most costly subtree with 2..k leaves.
		var pick *wnode
		var walk func(w *wnode)
		walk = func(w *wnode) {
			if w == nil || w.isLeaf() {
				return
			}
			if w.leaves <= k && (pick == nil || w.cost > pick.cost) {
				pick = w
			}
			walk(w.left)
			walk(w.right)
		}
		walk(root)
		if pick == nil {
			// Every subtree exceeds k: optimize an arbitrary deepest join
			// pair to guarantee progress.
			pick = deepestSmallJoin(root)
		}

		// Gather the unit ids under the picked subtree.
		var unitIDs []int
		var gather func(w *wnode)
		gather = func(w *wnode) {
			if w.isLeaf() {
				unitIDs = append(unitIDs, w.unit)
				return
			}
			gather(w.left)
			gather(w.right)
		}
		gather(pick)

		subGroups := make([]*plan.Node, len(unitIDs))
		subSets := make([]bitset.Set, len(unitIDs))
		for i, id := range unitIDs {
			subGroups[i] = units[id]
			subSets[i] = sets[id]
		}
		c := newContractedProblem(q, subGroups, subSets)
		opt2, stats, err := opt.inner()(c, opt)
		_ = stats
		if err != nil {
			return nil, err
		}

		// Materialize as a new unit (temporary table) and replace the
		// subtree by a leaf referencing it.
		mergedSet := bitset.NewSet(q.N())
		for _, s := range subSets {
			mergedSet.UnionWith(s)
		}
		units = append(units, opt2)
		sets = append(sets, mergedSet)
		pick.left, pick.right = nil, nil
		pick.unit = len(units) - 1
		pick.cost = opt2.Cost
		pick.rows = opt2.Rows
		pick.leaves = 1
		refreshTree(root)
	}
	return Recost(q, m, expandTree(root, units)), nil
}

// deepestSmallJoin returns a deepest inner node joining two leaves (which
// always has 2 leaves and is therefore optimizable for any k >= 2).
func deepestSmallJoin(root *wnode) *wnode {
	var pick *wnode
	var walk func(w *wnode)
	walk = func(w *wnode) {
		if w == nil || w.isLeaf() {
			return
		}
		if w.left.isLeaf() && w.right.isLeaf() {
			pick = w
		}
		walk(w.left)
		walk(w.right)
	}
	walk(root)
	return pick
}

// refreshTree recomputes leaf counts and cumulative costs after a subtree
// replacement (join costs keep their operator shape: only child cost deltas
// propagate; the final plan is fully re-costed by Recost).
func refreshTree(w *wnode) (cost float64, leaves int) {
	if w.isLeaf() {
		return w.cost, 1
	}
	lc, ln := refreshTree(w.left)
	rc, rn := refreshTree(w.right)
	selfCost := w.cost // previous cumulative cost
	_ = selfCost
	// Approximate: the join's own work is unchanged (rows identical), so
	// cumulative cost = children + (previous cumulative − previous children).
	w.cost = lc + rc + joinWork(w)
	w.leaves = ln + rn
	return w.cost, w.leaves
}

// joinWork estimates the node's own (non-child) cost from its cardinality;
// used only for subtree selection, never for final plan costs.
func joinWork(w *wnode) float64 {
	return w.rows * 0.01
}

// expandTree converts a working tree back into a plan over the unit plans.
func expandTree(w *wnode, units []*plan.Node) *plan.Node {
	if w.isLeaf() {
		return units[w.unit]
	}
	l := expandTree(w.left, units)
	r := expandTree(w.right, units)
	return &plan.Node{Left: l, Right: r, Op: plan.OpHashJoin, Rows: w.rows, Cost: w.cost}
}
