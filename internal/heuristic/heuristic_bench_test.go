package heuristic

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
)

func benchSnowflake(n int) *cost.Query {
	g := graph.SnowflakeN(n, 4)
	cat := catalog.SnowflakeCatalog(n, 4)
	q := &cost.Query{Cat: cat, G: graph.New(n)}
	for _, e := range g.Edges {
		q.G.AddEdge(e.A, e.B, 1/math.Max(cat.Rels[e.B].Rows, 2))
	}
	return q
}

func BenchmarkHeuristics(b *testing.B) {
	suite := []namedHeuristic{
		{"GOO", GOO},
		{"MinSel", MinSel},
		{"IKKBZ", IKKBZ},
		{"GEQO", GEQO},
		{"IDP2", IDP2},
		{"UnionDP", UnionDP},
	}
	for _, n := range []int{50, 200} {
		q := benchSnowflake(n)
		for _, h := range suite {
			if h.name == "GEQO" && n > 50 {
				continue // quadratic fitness; bench at small size only
			}
			b.Run(fmt.Sprintf("%s/n=%d", h.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p, err := h.f(q, Options{K: 10, Threads: 1, Seed: 1})
					if err != nil {
						b.Fatal(err)
					}
					if p == nil {
						b.Fatal("nil plan")
					}
				}
			})
		}
	}
}

func BenchmarkUnionDPPartitionPhase(b *testing.B) {
	q := benchSnowflake(500)
	m := cost.DefaultModel()
	groups, sets := baseScans(q, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := partitionUnits(q, Options{Model: m}, groups, sets, 15)
		if len(parts) == 0 {
			b.Fatal("no partitions")
		}
	}
}

func BenchmarkIKKBZLinearize(b *testing.B) {
	q := benchSnowflake(100)
	tree, err := spanningTree(q)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order := ikkbzLinearize(q, tree, rng.Intn(q.N()))
		if len(order) != q.N() {
			b.Fatal("incomplete order")
		}
	}
}
