package heuristic

import (
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/plan"
)

// IKKBZ implements the polynomial-time left-deep optimizer of Ibaraki &
// Kameda / Krishnamurthy, Boral & Zaniolo [14, 18]: for every choice of
// root it linearizes the (spanning tree of the) join graph by ascending
// rank with chain normalization, and returns the cheapest left-deep plan
// over the best linearization. Ranks use the Cout cost function, exactly as
// in the paper's baseline (§7.3); the returned plan is costed with the real
// model.
func IKKBZ(q *cost.Query, opt Options) (*plan.Node, error) {
	order, err := IKKBZOrder(q, opt)
	if err != nil {
		return nil, err
	}
	return leftDeepPlan(q, opt.model(), order, nil)
}

// IKKBZOrder returns the best IKKBZ linearization of the query: a
// permutation of relation ids in join order. LinDP consumes this directly.
func IKKBZOrder(q *cost.Query, opt Options) ([]int, error) {
	n := q.N()
	if n == 0 {
		return nil, errNoPlan
	}
	if n == 1 {
		return []int{0}, nil
	}
	span, err := spanningTree(q)
	if err != nil {
		return nil, err
	}
	bestCout := math.Inf(1)
	var best []int
	for root := 0; root < n; root++ {
		if err := opt.expiredErr(); err != nil {
			if best != nil {
				return best, nil // degrade gracefully with what we have
			}
			return nil, err
		}
		order := ikkbzLinearize(q, span, root)
		c := coutOfOrder(q, order)
		if c < bestCout {
			bestCout = c
			best = order
		}
	}
	return best, nil
}

// spanningTree returns a minimum spanning tree of the join graph under
// ascending edge selectivity (the most selective predicates are kept, as in
// Neumann & Radke's adaptive optimizer). Tree graphs pass through
// unchanged.
func spanningTree(q *cost.Query) (*graph.Graph, error) {
	g := q.G
	if g.IsTree() {
		return g, nil
	}
	edges := make([]graph.Edge, len(g.Edges))
	copy(edges, g.Edges)
	sort.Slice(edges, func(i, j int) bool { return edges[i].Sel < edges[j].Sel })
	uf := graph.NewUnionFind(g.N)
	tree := graph.New(g.N)
	added := 0
	for _, e := range edges {
		if uf.Same(e.A, e.B) {
			continue
		}
		uf.Union(e.A, e.B)
		tree.AddEdge(e.A, e.B, e.Sel)
		added++
		if added == g.N-1 {
			break
		}
	}
	if added != g.N-1 {
		return nil, ErrDisconnected
	}
	return tree, nil
}

// ikkbzItem is a (possibly compound) chain element: the relations it
// covers in order, with the classic T and C aggregates under Cout:
// T(S1 S2) = T(S1)·T(S2), C(S1 S2) = C(S1) + T(S1)·C(S2).
type ikkbzItem struct {
	rels []int
	t, c float64
}

func (it ikkbzItem) rank() float64 {
	if it.c == 0 {
		return 0
	}
	return (it.t - 1) / it.c
}

func mergeItems(a, b ikkbzItem) ikkbzItem {
	return ikkbzItem{
		rels: append(append([]int{}, a.rels...), b.rels...),
		t:    a.t * b.t,
		c:    a.c + a.t*b.c,
	}
}

// ikkbzLinearize produces the IKKBZ order for one root over the spanning
// tree: children chains are computed bottom-up, merged by ascending rank,
// and normalized by compounding rank inversions.
func ikkbzLinearize(q *cost.Query, tree *graph.Graph, root int) []int {
	n := q.N()
	parent := make([]int, n)
	orderBFS := make([]int, 0, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[root] = -1
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		orderBFS = append(orderBFS, v)
		for _, w := range tree.Neighbors(v) {
			if parent[w] == -2 {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}

	chains := make([][]ikkbzItem, n) // chain of v's subtree, excluding v for root handling
	// Process in reverse BFS order (children before parents).
	for i := len(orderBFS) - 1; i >= 0; i-- {
		v := orderBFS[i]
		var childChains [][]ikkbzItem
		for _, w := range tree.Neighbors(v) {
			if parent[w] == v {
				childChains = append(childChains, chains[w])
			}
		}
		merged := mergeChainsByRank(childChains)
		if v == root {
			chains[v] = merged
			continue
		}
		t := tree.EdgeSel(v, parent[v]) * q.Rows(v)
		self := ikkbzItem{rels: []int{v}, t: t, c: t}
		chains[v] = normalizeChain(append([]ikkbzItem{self}, merged...))
	}

	out := make([]int, 0, n)
	out = append(out, root)
	for _, it := range chains[root] {
		out = append(out, it.rels...)
	}
	return out
}

// mergeChainsByRank merges rank-sorted chains into one rank-sorted chain
// (precedence within each chain is preserved).
func mergeChainsByRank(chains [][]ikkbzItem) []ikkbzItem {
	var out []ikkbzItem
	idx := make([]int, len(chains))
	for {
		best := -1
		for ci, chain := range chains {
			if idx[ci] >= len(chain) {
				continue
			}
			if best < 0 || chain[idx[ci]].rank() < chains[best][idx[best]].rank() {
				best = ci
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, chains[best][idx[best]])
		idx[best]++
	}
}

// normalizeChain compounds adjacent rank inversions until ranks are
// non-decreasing, preserving precedence order.
func normalizeChain(chain []ikkbzItem) []ikkbzItem {
	i := 0
	for i < len(chain)-1 {
		if chain[i].rank() > chain[i+1].rank() {
			merged := mergeItems(chain[i], chain[i+1])
			chain = append(chain[:i], append([]ikkbzItem{merged}, chain[i+2:]...)...)
			if i > 0 {
				i--
			}
		} else {
			i++
		}
	}
	return chain
}

// coutOfOrder evaluates the Cout cost of a left-deep order: the sum of all
// intermediate result sizes under the full join graph's selectivities.
func coutOfOrder(q *cost.Query, order []int) float64 {
	n := q.N()
	set := bitset.NewSet(n)
	set.Add(order[0])
	rows := q.Rows(order[0])
	total := 0.0
	for _, v := range order[1:] {
		single := bitset.SetOf(n, v)
		rows = rows * q.Rows(v) * q.SelBetweenSets(set, single)
		total += rows
		set.Add(v)
	}
	return total
}

// leftDeepPlan builds the left-deep plan following order, costed with the
// real model. leaves optionally supplies custom unit plans per relation id.
func leftDeepPlan(q *cost.Query, m *cost.Model, order []int, leaves []*plan.Node) (*plan.Node, error) {
	if len(order) == 0 {
		return nil, errNoPlan
	}
	leaf := func(i int) *plan.Node {
		if leaves != nil && leaves[i] != nil {
			return leaves[i]
		}
		return m.Scan(q, i)
	}
	n := q.N()
	cur := leaf(order[0])
	set := bitset.NewSet(n)
	set.Add(order[0])
	for _, v := range order[1:] {
		r := leaf(v)
		single := bitset.SetOf(n, v)
		rows := cur.Rows * r.Rows * q.SelBetweenSets(set, single)
		cur = m.JoinWithRows(q, cur, r, rows)
		set.Add(v)
	}
	return cur, nil
}
