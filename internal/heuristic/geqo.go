package heuristic

import (
	"math/rand"
	"sort"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/plan"
)

// GEQO is PostgreSQL's genetic query optimizer [36], the fallback PostgreSQL
// applies beyond geqo_threshold relations: a steady-state genetic algorithm
// over relation tours with edge-recombination crossover. A tour is decoded
// into a join tree with the clump-merging scheme of PostgreSQL's gimme_tree
// (cross-product-free whenever possible). Default parameters follow
// PostgreSQL: pool scaled with query size, generations = pool size.
func GEQO(q *cost.Query, opt Options) (*plan.Node, error) {
	n := q.N()
	if n == 1 {
		return opt.model().Scan(q, 0), nil
	}
	rng := rand.New(rand.NewSource(opt.seed()))

	// PostgreSQL sizing: pool = 2^(effort+1) clamped; effort 5 by default.
	pool := 2 * n
	if pool < 50 {
		pool = 50
	}
	if pool > 250 {
		pool = 250
	}
	generations := pool * 4

	type individual struct {
		tour []int
		cost float64
	}
	decode := func(tour []int) (*plan.Node, float64) {
		p := decodeTour(q, opt.model(), tour)
		if p == nil {
			return nil, 0
		}
		return p, p.Cost
	}
	newRandomTour := func() []int {
		t := rng.Perm(n)
		return t
	}

	population := make([]individual, 0, pool)
	for i := 0; i < pool; i++ {
		t := newRandomTour()
		if _, c := decode(t); true {
			population = append(population, individual{tour: t, cost: c})
		}
	}
	sortPopulation := func() {
		// Simple insertion by cost; pool is small.
		for i := 1; i < len(population); i++ {
			for j := i; j > 0 && population[j].cost < population[j-1].cost; j-- {
				population[j], population[j-1] = population[j-1], population[j]
			}
		}
	}
	sortPopulation()

	// Linear-bias parent selection, as in PostgreSQL's geqo_selection.
	selectParent := func() individual {
		bias := 2.0
		idx := int(float64(len(population)) *
			(bias - (bias*bias-4*(bias-1)*rng.Float64())/2/(bias-1)) / bias)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(population) {
			idx = len(population) - 1
		}
		return population[idx]
	}

	for gen := 0; gen < generations; gen++ {
		if opt.expired() {
			break // GEQO is any-time: return the best found so far
		}
		p1, p2 := selectParent(), selectParent()
		child := edgeRecombination(p1.tour, p2.tour, rng)
		_, c := decode(child)
		// Steady-state replacement of the worst individual.
		worst := len(population) - 1
		if c < population[worst].cost {
			population[worst] = individual{tour: child, cost: c}
			sortPopulation()
		}
	}
	best, _ := decode(population[0].tour)
	if best == nil {
		return nil, errNoPlan
	}
	return best, nil
}

// decodeTour converts a relation tour into a join tree using PostgreSQL's
// clump-merging: relations are taken in tour order, each forming a clump
// that is merged with the first existing clump it has a join edge to;
// whenever a merge happens, further merges are retried. Clumps that remain
// at the end are cross-joined (PostgreSQL does the same as a last resort).
func decodeTour(q *cost.Query, m *cost.Model, tour []int) *plan.Node {
	type clump struct {
		node *plan.Node
		set  bitset.Set
	}
	n := q.N()
	var clumps []*clump
	hasEdge := func(a, b bitset.Set) bool {
		found := false
		a.ForEach(func(v int) {
			if found {
				return
			}
			for _, w := range q.G.Neighbors(v) {
				if b.Has(w) {
					found = true
					return
				}
			}
		})
		return found
	}
	join := func(a, b *clump) *clump {
		rows := a.node.Rows * b.node.Rows * q.SelBetweenSets(a.set, b.set)
		l, r := a, b
		if l.node.Rows < r.node.Rows {
			l, r = r, l
		}
		return &clump{node: m.JoinWithRows(q, l.node, r.node, rows), set: a.set.Union(b.set)}
	}
	for _, rel := range tour {
		cur := &clump{node: m.Scan(q, rel), set: bitset.SetOf(n, rel)}
		for {
			merged := false
			for i, cl := range clumps {
				if hasEdge(cur.set, cl.set) {
					cur = join(cl, cur)
					clumps = append(clumps[:i], clumps[i+1:]...)
					merged = true
					break
				}
			}
			if !merged {
				break
			}
		}
		clumps = append(clumps, cur)
	}
	// Force-join any remaining clumps (cross products, selectivity 1).
	for len(clumps) > 1 {
		a, b := clumps[0], clumps[1]
		clumps = append([]*clump{join(a, b)}, clumps[2:]...)
	}
	return clumps[0].node
}

// edgeRecombination is the ERX crossover used by PostgreSQL's GEQO: the
// child tour follows neighbours shared by the parents where possible.
func edgeRecombination(a, b []int, rng *rand.Rand) []int {
	n := len(a)
	adj := make(map[int]map[int]bool, n)
	addEdges := func(t []int) {
		for i, v := range t {
			if adj[v] == nil {
				adj[v] = map[int]bool{}
			}
			adj[v][t[(i+1)%n]] = true
			adj[v][t[(i+n-1)%n]] = true
		}
	}
	addEdges(a)
	addEdges(b)
	used := make([]bool, n)
	child := make([]int, 0, n)
	cur := a[0]
	if rng.Intn(2) == 1 {
		cur = b[0]
	}
	for {
		child = append(child, cur)
		used[cur] = true
		if len(child) == n {
			return child
		}
		// Remove cur from all adjacency lists.
		for _, nb := range adjKeys(adj[cur]) {
			delete(adj[nb], cur)
		}
		// Next: the unused neighbour with the fewest remaining neighbours.
		next := -1
		bestDeg := 1 << 30
		for _, nb := range adjKeys(adj[cur]) {
			if used[nb] {
				continue
			}
			d := len(adj[nb])
			if d < bestDeg {
				bestDeg = d
				next = nb
			}
		}
		if next < 0 {
			// Dead end: pick a random unused vertex.
			for {
				cand := rng.Intn(n)
				if !used[cand] {
					next = cand
					break
				}
			}
		}
		cur = next
	}
}

// adjKeys returns the neighbours in sorted order so that ERX is
// deterministic for a fixed seed (map iteration order is randomized in Go).
func adjKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
