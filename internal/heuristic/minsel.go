package heuristic

import (
	"math"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/plan"
)

// MinSel is the minimum-selectivity greedy heuristic of Swami [31], cited by
// the paper alongside GOO as the classic greedy family (§6): build a
// left-deep plan by starting from the smallest relation and repeatedly
// joining the relation reachable over the most selective remaining edge.
// Cheaper than GOO (no intermediate-size evaluation) and usually worse; it
// is included as an extra baseline for the heuristic quality experiments.
func MinSel(q *cost.Query, opt Options) (*plan.Node, error) {
	m := opt.model()
	n := q.N()
	if n == 0 {
		return nil, errNoPlan
	}
	if n == 1 {
		return m.Scan(q, 0), nil
	}

	// Start with the smallest base relation.
	start := 0
	for i := 1; i < n; i++ {
		if q.Rows(i) < q.Rows(start) {
			start = i
		}
	}

	in := bitset.NewSet(n)
	in.Add(start)
	cur := m.Scan(q, start)
	for joined := 1; joined < n; joined++ {
		if err := opt.expiredErr(); err != nil {
			return nil, err
		}
		// Most selective edge from the current prefix to an outside vertex;
		// ties broken by smaller outside relation.
		next := -1
		bestSel := math.Inf(1)
		for _, e := range q.G.Edges {
			var out int
			switch {
			case in.Has(e.A) && !in.Has(e.B):
				out = e.B
			case in.Has(e.B) && !in.Has(e.A):
				out = e.A
			default:
				continue
			}
			if e.Sel < bestSel || (e.Sel == bestSel && next >= 0 && q.Rows(out) < q.Rows(next)) {
				bestSel = e.Sel
				next = out
			}
		}
		if next < 0 {
			return nil, ErrDisconnected
		}
		r := m.Scan(q, next)
		single := bitset.SetOf(n, next)
		rows := cur.Rows * r.Rows * q.SelBetweenSets(in, single)
		cur = m.JoinWithRows(q, cur, r, rows)
		in.Add(next)
	}
	return cur, nil
}
