package heuristic

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/plan"
)

// contractedProblem is a sub-problem over composite units: each unit is an
// already-planned subtree (a base relation scan or a materialized temporary
// table) covering a set of base relations. IDP2's temp tables and UnionDP's
// composite nodes are both expressed this way.
type contractedProblem struct {
	q      *cost.Query  // the base query
	groups []*plan.Node // unit plans (joined as leaves by the inner DP)
	sets   []bitset.Set // base-relation footprint of each unit
	local  *cost.Query  // contracted query: one relation per unit
}

// newContractedProblem builds the contracted query: one local relation per
// unit whose cardinality is the unit plan's output, and one local edge per
// pair of units connected by at least one base edge, with the product of the
// crossing base selectivities.
func newContractedProblem(q *cost.Query, groups []*plan.Node, sets []bitset.Set) *contractedProblem {
	n := len(groups)
	owner := make(map[int]int) // base relation -> unit
	for gi, s := range sets {
		s.ForEach(func(v int) { owner[v] = gi })
	}
	lg := graph.New(n)
	for _, e := range q.G.Edges {
		ga, okA := owner[e.A]
		gb, okB := owner[e.B]
		if !okA || !okB || ga == gb {
			continue
		}
		lg.AddEdge(ga, gb, e.Sel) // parallel edges multiply selectivities
	}
	var cat catalog.Catalog
	for gi, g := range groups {
		rows := g.Rows
		r := catalog.Relation{
			Name:  fmt.Sprintf("unit_%d", gi),
			Rows:  rows,
			Pages: rows / 100,
			Width: 64,
		}
		// A unit that is a plain base-relation scan keeps its index; a
		// materialized temporary has none.
		if g.IsLeaf() && g.Op == plan.OpScan && g.RelID >= 0 {
			r.HasPKIndex = q.Cat.Rels[g.RelID].HasPKIndex
		}
		cat.Add(r)
	}
	return &contractedProblem{
		q:      q,
		groups: groups,
		sets:   sets,
		local:  &cost.Query{Cat: cat, G: lg},
	}
}

// leafWrappers builds the synthetic leaf nodes handed to the inner DP: leaf
// i stands for unit i, carrying its cardinality and cumulative cost.
func (c *contractedProblem) leafWrappers() []*plan.Node {
	leaves := make([]*plan.Node, len(c.groups))
	for i, g := range c.groups {
		leaves[i] = &plan.Node{RelID: i, Rows: g.Rows, Cost: g.Cost}
	}
	return leaves
}

// splice replaces the wrapper leaves of an inner-DP plan by the unit plans
// they stand for, preserving shared subtrees.
func (c *contractedProblem) splice(n *plan.Node) *plan.Node {
	memo := map[*plan.Node]*plan.Node{}
	var rec func(*plan.Node) *plan.Node
	rec = func(m *plan.Node) *plan.Node {
		if out, ok := memo[m]; ok {
			return out
		}
		var out *plan.Node
		if m.IsLeaf() {
			out = c.groups[m.RelID]
		} else {
			cp := *m
			cp.Left = rec(m.Left)
			cp.Right = rec(m.Right)
			out = &cp
		}
		memo[m] = out
		return out
	}
	return rec(n)
}

// innerMPDP is the default InnerDP: the paper's MPDP (CPU-parallel) on the
// contracted query.
func innerMPDP(c *contractedProblem, opt Options) (*plan.Node, dp.Stats, error) {
	in := dp.Input{
		Q:        c.local,
		M:        opt.model(),
		Leaves:   c.leafWrappers(),
		Ctx:      opt.Ctx,
		Deadline: opt.Deadline,
		Threads:  opt.Threads,
	}
	var (
		p   *plan.Node
		st  dp.Stats
		err error
	)
	if opt.Threads == 1 {
		p, st, err = dp.MPDP(in)
	} else {
		p, st, err = parallel.MPDP(in)
	}
	if err != nil {
		return nil, st, err
	}
	return c.splice(p), st, nil
}

// Recost recomputes every join of a heuristic plan bottom-up with the cost
// model, returning a tree with consistent Rows/Cost (heuristic construction
// may have replaced subtrees, leaving stale ancestor costs). Leaves are kept
// as-is. The relation footprints are rebuilt from the leaves.
func Recost(q *cost.Query, m *cost.Model, n *plan.Node) *plan.Node {
	type res struct {
		node *plan.Node
		set  bitset.Set
	}
	var rec func(*plan.Node) res
	rec = func(nd *plan.Node) res {
		if nd.IsLeaf() {
			s := bitset.NewSet(q.N())
			if nd.RelID >= 0 {
				s.Add(nd.RelID)
			}
			return res{node: nd, set: s}
		}
		l := rec(nd.Left)
		r := rec(nd.Right)
		rows := l.node.Rows * r.node.Rows * q.SelBetweenSets(l.set, r.set)
		out := m.JoinWithRows(q, l.node, r.node, rows)
		return res{node: out, set: l.set.Union(r.set)}
	}
	return rec(n).node
}

// connectedUnits reports whether, in the base graph, the union of the given
// unit footprints induces a connected contracted graph (treating each unit
// as internally connected).
func connectedUnits(q *cost.Query, sets []bitset.Set) bool {
	if len(sets) == 0 {
		return false
	}
	uf := graph.NewUnionFind(len(sets))
	owner := make(map[int]int)
	for gi, s := range sets {
		s.ForEach(func(v int) { owner[v] = gi })
	}
	for _, e := range q.G.Edges {
		ga, okA := owner[e.A]
		gb, okB := owner[e.B]
		if okA && okB && ga != gb {
			uf.Union(ga, gb)
		}
	}
	root := uf.Find(0)
	for i := 1; i < len(sets); i++ {
		if uf.Find(i) != root {
			return false
		}
	}
	return true
}

// baseScans builds the initial units: one scan per base relation.
func baseScans(q *cost.Query, m *cost.Model) ([]*plan.Node, []bitset.Set) {
	n := q.N()
	groups := make([]*plan.Node, n)
	sets := make([]bitset.Set, n)
	for i := 0; i < n; i++ {
		groups[i] = m.Scan(q, i)
		sets[i] = bitset.SetOf(n, i)
	}
	return groups, sets
}
