package heuristic

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/plan"
)

// UnionDP is the paper's novel graph-partitioning heuristic (§4.2,
// Algorithm 4): it partitions the join graph into connected partitions of at
// most k relations using a union-find sweep that unions cheap/small edges
// first (leaving expensive cut edges for late in the plan), solves each
// partition optimally with MPDP, collapses every partition into a composite
// node, and recurses on the contracted graph until it fits a single MPDP
// call. The recursion lets it scale to thousands of relations.
func UnionDP(q *cost.Query, opt Options) (*plan.Node, error) {
	m := opt.model()
	groups, sets := baseScans(q, m)
	p, err := unionDPRec(q, opt, groups, sets)
	if err != nil {
		return nil, err
	}
	return Recost(q, m, p), nil
}

// unionDPRec is one level of Algorithm 4 over the current composite units.
func unionDPRec(q *cost.Query, opt Options, groups []*plan.Node, sets []bitset.Set) (*plan.Node, error) {
	k := opt.k()
	if k < 2 {
		k = 2
	}
	if err := opt.expiredErr(); err != nil {
		return nil, err
	}
	// Line 1: small enough — hand the whole problem to MPDP.
	if len(groups) <= k {
		c := newContractedProblem(q, groups, sets)
		p, _, err := opt.inner()(c, opt)
		return p, err
	}

	parts := partitionUnits(q, opt, groups, sets, k)

	// Lines 15-18: optimize each partition with MPDP, build composites.
	var newGroups []*plan.Node
	var newSets []bitset.Set
	for _, members := range parts {
		if err := opt.expiredErr(); err != nil {
			return nil, err
		}
		if len(members) == 1 {
			newGroups = append(newGroups, groups[members[0]])
			newSets = append(newSets, sets[members[0]])
			continue
		}
		subGroups := make([]*plan.Node, len(members))
		subSets := make([]bitset.Set, len(members))
		merged := bitset.NewSet(q.N())
		for i, gi := range members {
			subGroups[i] = groups[gi]
			subSets[i] = sets[gi]
			merged.UnionWith(sets[gi])
		}
		c := newContractedProblem(q, subGroups, subSets)
		p, _, err := opt.inner()(c, opt)
		if err != nil {
			return nil, err
		}
		newGroups = append(newGroups, p)
		newSets = append(newSets, merged)
	}
	if len(newGroups) >= len(groups) {
		// No union was possible: the contracted graph cannot shrink, which
		// only happens on disconnected inputs.
		return nil, ErrDisconnected
	}
	// Line 20: recurse on the contracted graph G'.
	return unionDPRec(q, opt, newGroups, newSets)
}

// partitionUnits is the partition phase (lines 5-14): edges are taken in
// ascending (combined partition size, edge weight) order — weights are the
// cost of joining the two endpoint units (line 6) so expensive joins become
// cut edges — and endpoints are unioned while the merged partition stays
// within k. Returns the partition as lists of unit indices.
func partitionUnits(q *cost.Query, opt Options, groups []*plan.Node, sets []bitset.Set, k int) [][]int {
	m := opt.model()
	n := len(groups)
	owner := make(map[int]int)
	for gi, s := range sets {
		s.ForEach(func(v int) { owner[v] = gi })
	}
	type cEdge struct {
		a, b   int
		weight float64
	}
	seen := map[[2]int]*cEdge{}
	var edges []*cEdge
	for _, e := range q.G.Edges {
		ga, gb := owner[e.A], owner[e.B]
		if ga == gb {
			continue
		}
		key := [2]int{ga, gb}
		if ga > gb {
			key = [2]int{gb, ga}
		}
		if seen[key] != nil {
			continue
		}
		// Edge weight: cost of joining the relations across the edge,
		// assigned by the cost model (assignEdgeWeights, line 6).
		ua, ub := groups[ga], groups[gb]
		rows := ua.Rows * ub.Rows * q.SelBetweenSets(sets[ga], sets[gb])
		j := m.JoinWithRows(q, ua, ub, rows)
		ce := &cEdge{a: key[0], b: key[1], weight: j.Cost - ua.Cost - ub.Cost}
		seen[key] = ce
		edges = append(edges, ce)
	}
	// Single traversal in increasing (combined partition size, weight)
	// order (Alg. 4, lines 8-13). Before any union every edge's size sum is
	// 2, so the traversal order reduces to ascending weight — a Kruskal
	// sweep with the k-cap. Expensive edges are visited last and usually
	// find their endpoints' partitions already full, which is exactly how
	// costly joins become cut edges pushed to the top of the plan (§4.2,
	// requirement 2).
	sort.Slice(edges, func(i, j int) bool { return edges[i].weight < edges[j].weight })
	uf := graph.NewUnionFind(n)
	for _, e := range edges {
		if uf.Same(e.a, e.b) {
			continue
		}
		if uf.Size(e.a)+uf.Size(e.b) <= k {
			uf.Union(e.a, e.b)
		}
	}
	var parts [][]int
	for _, members := range uf.Groups() {
		parts = append(parts, members)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i][0] < parts[j][0] })
	return parts
}
