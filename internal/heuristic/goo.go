package heuristic

import (
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/plan"
)

// GOO is Greedy Operator Ordering (Fegaras [8]): starting from one unit per
// base relation, it repeatedly joins the edge-connected pair of units whose
// join output is smallest, until a single plan remains. It runs in
// O(n·E) and scales to thousands of relations, at the price of plan quality
// (Tables 1 and 2). It also serves as the initial-plan heuristic of IDP2,
// exactly as in the paper's experiments (§7.3).
func GOO(q *cost.Query, opt Options) (*plan.Node, error) {
	groups, sets := baseScans(q, opt.model())
	root, _, err := gooOverUnits(q, opt, groups, sets)
	return root, err
}

// gooOverUnits runs GOO on pre-built units and also returns the surviving
// unit's base-relation footprint. Units must form a connected contracted
// graph; otherwise ErrDisconnected is returned.
func gooOverUnits(q *cost.Query, opt Options, groups []*plan.Node, sets []bitset.Set) (*plan.Node, bitset.Set, error) {
	m := opt.model()
	type unit struct {
		node *plan.Node
		set  bitset.Set
	}
	units := make([]*unit, len(groups))
	for i := range groups {
		units[i] = &unit{node: groups[i], set: sets[i]}
	}
	owner := make([]int, q.N()) // base relation -> unit index (live or merged)
	for i := range owner {
		owner[i] = -1
	}
	for gi, s := range sets {
		s.ForEach(func(v int) { owner[v] = gi })
	}

	// Contracted edge list as live unit pairs; rebuilt lazily after merges.
	type cEdge struct{ a, b int }
	liveEdges := func() []cEdge {
		seen := map[[2]int]bool{}
		var out []cEdge
		for _, e := range q.G.Edges {
			ga, gb := owner[e.A], owner[e.B]
			if ga < 0 || gb < 0 || ga == gb {
				continue
			}
			if ga > gb {
				ga, gb = gb, ga
			}
			if !seen[[2]int{ga, gb}] {
				seen[[2]int{ga, gb}] = true
				out = append(out, cEdge{ga, gb})
			}
		}
		return out
	}

	live := len(units)
	for live > 1 {
		if err := opt.expiredErr(); err != nil {
			return nil, bitset.Set{}, err
		}
		edges := liveEdges()
		if len(edges) == 0 {
			return nil, bitset.Set{}, ErrDisconnected
		}
		bestRows := 0.0
		bestIdx := -1
		for i, e := range edges {
			ua, ub := units[e.a], units[e.b]
			rows := ua.node.Rows * ub.node.Rows * q.SelBetweenSets(ua.set, ub.set)
			if bestIdx < 0 || rows < bestRows {
				bestRows = rows
				bestIdx = i
			}
		}
		e := edges[bestIdx]
		ua, ub := units[e.a], units[e.b]
		// Keep the smaller input on the right (build side preference).
		l, r := ua, ub
		if l.node.Rows < r.node.Rows {
			l, r = r, l
		}
		join := m.JoinWithRows(q, l.node, r.node, bestRows)
		merged := &unit{node: join, set: ua.set.Union(ub.set)}
		units[e.a] = merged
		units[e.b] = nil
		merged.set.ForEach(func(v int) { owner[v] = e.a })
		live--
	}
	for _, u := range units {
		if u != nil {
			return u.node, u.set, nil
		}
	}
	return nil, bitset.Set{}, errNoPlan
}
