package heuristic

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/plan"
)

func randomQuery(n, extraEdges int, rng *rand.Rand) *cost.Query {
	g := graph.RandomConnected(n, extraEdges, rng)
	g2 := graph.New(n)
	for _, e := range g.Edges {
		g2.AddEdge(e.A, e.B, math.Pow(10, -1-3*rng.Float64()))
	}
	var cat catalog.Catalog
	for i := 0; i < n; i++ {
		r := catalog.NewRelation("r", math.Pow(10, 1+4*rng.Float64()), 60)
		r.HasPKIndex = true
		cat.Add(r)
	}
	return &cost.Query{Cat: cat, G: g2}
}

func starQuery(n int) *cost.Query {
	g := graph.Star(n)
	cat := catalog.StarCatalog(n)
	g2 := graph.New(n)
	for _, e := range g.Edges {
		dim := e.B
		if dim == 0 {
			dim = e.A
		}
		g2.AddEdge(e.A, e.B, 1/cat.Rels[dim].Rows)
	}
	return &cost.Query{Cat: cat, G: g2}
}

type namedHeuristic struct {
	name string
	f    func(q *cost.Query, opt Options) (*plan.Node, error)
}

var allHeuristics = []namedHeuristic{
	{"GOO", GOO},
	{"MinSel", MinSel},
	{"IKKBZ", IKKBZ},
	{"LinDP", LinDP},
	{"Adaptive", Adaptive},
	{"GEQO", GEQO},
	{"IDP1", IDP1},
	{"IDP2", IDP2},
	{"UnionDP", UnionDP},
}

func allRels(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestHeuristicsNeverBeatOptimalAndAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := cost.DefaultModel()
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(8)
		q := randomQuery(n, rng.Intn(n/2+1), rng)
		optPlan, _, err := dp.MPDPGeneral(dp.Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range allHeuristics {
			p, err := h.f(q, Options{Model: m, K: 5, Threads: 1, Seed: int64(trial + 1)})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, h.name, err)
			}
			if err := p.Validate(allRels(n)); err != nil {
				t.Errorf("trial %d %s: invalid plan: %v", trial, h.name, err)
			}
			// Recost to guard against stale costs, then compare.
			rp := Recost(q, m, p)
			if rp.Cost < optPlan.Cost*(1-1e-9) {
				t.Errorf("trial %d %s: heuristic cost %.4f beats optimal %.4f",
					trial, h.name, rp.Cost, optPlan.Cost)
			}
			if math.Abs(rp.Rows-optPlan.Rows) > 1e-6*math.Max(1, optPlan.Rows) {
				t.Errorf("trial %d %s: output rows %.3f, want %.3f", trial, h.name, rp.Rows, optPlan.Rows)
			}
		}
	}
}

func TestIDP2AndUnionDPFindOptimalWhenKCoversQuery(t *testing.T) {
	// With k >= n the heuristics reduce to a single MPDP call.
	rng := rand.New(rand.NewSource(22))
	m := cost.DefaultModel()
	for trial := 0; trial < 8; trial++ {
		n := 5 + rng.Intn(5)
		q := randomQuery(n, 2, rng)
		optPlan, _, err := dp.MPDPGeneral(dp.Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []namedHeuristic{{"IDP2", IDP2}, {"UnionDP", UnionDP}, {"IDP1", IDP1}} {
			p, err := h.f(q, Options{Model: m, K: n, Threads: 1})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(p.Cost-optPlan.Cost) > 1e-6*math.Max(1, optPlan.Cost) {
				t.Errorf("trial %d: %s with k=n cost %.4f, optimal %.4f", trial, h.name, p.Cost, optPlan.Cost)
			}
		}
	}
}

func TestUnionDPPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := randomQuery(40, 10, rng)
	m := cost.DefaultModel()
	groups, sets := baseScans(q, m)
	k := 7
	parts := partitionUnits(q, Options{Model: m, K: k}, groups, sets, k)
	covered := 0
	for _, members := range parts {
		if len(members) > k {
			t.Errorf("partition size %d exceeds k=%d", len(members), k)
		}
		covered += len(members)
		if len(members) >= 2 {
			// Each multi-unit partition must induce a connected subgraph.
			subSets := make([]bitsetSetList, 0)
			_ = subSets
			ss := make([]int, len(members))
			copy(ss, members)
			sub, _ := q.G.Subgraph(ss)
			if !sub.IsTree() && !connectedLocal(sub) {
				t.Errorf("partition %v is disconnected", members)
			}
		}
	}
	if covered != 40 {
		t.Errorf("partitions cover %d relations, want 40", covered)
	}
}

type bitsetSetList struct{}

func connectedLocal(g *graph.Graph) bool {
	if g.N == 0 {
		return true
	}
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.N
}

func TestHeuristicsScaleToLargeQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("large-query test skipped in -short mode")
	}
	n := 300
	g := graph.SnowflakeN(n, 4)
	cat := catalog.SnowflakeCatalog(n, 4)
	q := &cost.Query{Cat: cat, G: graph.New(n)}
	for _, e := range g.Edges {
		q.G.AddEdge(e.A, e.B, 1/math.Max(cat.Rels[e.B].Rows, 2))
	}
	opt := Options{K: 10, Deadline: time.Now().Add(60 * time.Second), Threads: 4}
	for _, h := range []namedHeuristic{{"GOO", GOO}, {"IDP2", IDP2}, {"UnionDP", UnionDP}, {"Adaptive", Adaptive}} {
		start := time.Now()
		p, err := h.f(q, opt)
		if err != nil {
			t.Fatalf("%s on %d relations: %v", h.name, n, err)
		}
		if err := p.Validate(allRels(n)); err != nil {
			t.Errorf("%s: invalid plan: %v", h.name, err)
		}
		t.Logf("%s: n=%d cost=%.3g in %v", h.name, n, p.Cost, time.Since(start))
	}
}

func TestIKKBZProducesLeftDeepPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(8+rng.Intn(6), rng.Intn(4), rng)
		p, err := IKKBZ(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !p.IsLeftDeep() {
			t.Errorf("trial %d: IKKBZ plan is not left-deep: %v", trial, p)
		}
	}
}

func TestIKKBZOptimalOnLeftDeepChainSpace(t *testing.T) {
	// On a star query whose optimal plan is left-deep, IKKBZ should be near
	// the best left-deep order found by brute force over permutations.
	q := starQuery(7)
	m := cost.DefaultModel()
	p, err := IKKBZ(q, Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	best := bruteForceLeftDeepCout(q)
	got := coutOfOrder(q, leftDeepOrder(p))
	if got > best*1.000001 {
		t.Errorf("IKKBZ Cout %.4g worse than best left-deep %.4g", got, best)
	}
}

func leftDeepOrder(p *plan.Node) []int {
	var out []int
	for !p.IsLeaf() {
		out = append([]int{p.Right.RelID}, out...)
		p = p.Left
	}
	return append([]int{p.RelID}, out...)
}

func bruteForceLeftDeepCout(q *cost.Query) float64 {
	n := q.N()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if validOrder(q, perm) {
				if c := coutOfOrder(q, perm); c < best {
					best = c
				}
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

// validOrder reports whether each prefix of the order is connected (no
// cross products in the left-deep chain).
func validOrder(q *cost.Query, order []int) bool {
	in := map[int]bool{order[0]: true}
	for _, v := range order[1:] {
		ok := false
		for _, w := range q.G.Neighbors(v) {
			if in[w] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
		in[v] = true
	}
	return true
}

func TestGEQODeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	q := randomQuery(15, 5, rng)
	a, err := GEQO(q, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GEQO(q, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("GEQO not deterministic for fixed seed: %.4f vs %.4f", a.Cost, b.Cost)
	}
}

func TestHeuristicTimeoutRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	q := randomQuery(30, 10, rng)
	opt := Options{Deadline: time.Now().Add(-time.Second), K: 10}
	// Heuristics either return ErrTimeout or degrade to an any-time answer;
	// they must not run long.
	for _, h := range allHeuristics {
		start := time.Now()
		_, err := h.f(q, opt)
		if err != nil && err != ErrTimeout {
			t.Errorf("%s: unexpected error %v", h.name, err)
		}
		if time.Since(start) > 5*time.Second {
			t.Errorf("%s: ignored expired deadline (%v)", h.name, time.Since(start))
		}
	}
}
